package stburst

import (
	"context"
	"fmt"
	"io"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/expect"
	"stburst/internal/geo"
	"stburst/internal/stream"
	"stburst/internal/textproc"
)

// Point is a location on the 2-D map.
type Point = geo.Point

// Rect is an axis-oriented rectangle on the 2-D map.
type Rect = geo.Rect

// LatLon is a geographic coordinate in degrees.
type LatLon = geo.LatLon

// StreamInfo describes one document stream: a named, fixed geostamp.
type StreamInfo = stream.Info

// RegionalPattern is a regional spatiotemporal pattern mined by STLocal:
// a rectangle on the map and the inclusive timeframe [Start, End] during
// which it was bursty, scored by the w-score of Eq. 9 of the paper.
type RegionalPattern = core.Window

// CombinatorialPattern is a combinatorial spatiotemporal pattern mined by
// STComb: a set of streams simultaneously bursty over a common temporal
// segment, scored by cumulative temporal burstiness (Eq. 3 of the paper).
type CombinatorialPattern = core.CombPattern

// TemporalInterval is a bursty temporal interval of a single (or merged)
// stream.
type TemporalInterval = burst.Interval

// BaselineKind selects the expected-frequency model E_x[i][t] of Eq. 7.
type BaselineKind int

const (
	// BaselineRunningMean predicts the mean of all earlier snapshots —
	// the paper's default.
	BaselineRunningMean BaselineKind = iota
	// BaselineWindowMean predicts the mean of the most recent
	// BaselineParam snapshots.
	BaselineWindowMean
	// BaselineEWMA predicts an exponentially weighted moving average
	// with smoothing factor BaselineParam.
	BaselineEWMA
	// BaselineSeasonal predicts the mean of snapshots whole periods
	// (BaselineParam timestamps) earlier.
	BaselineSeasonal
)

// DetectorKind selects the per-stream temporal burst detector used by
// combinatorial mining.
type DetectorKind int

const (
	// DetectorDiscrepancy is the discrepancy-normalized framework of the
	// authors' KDD'09 work — the paper's default.
	DetectorDiscrepancy DetectorKind = iota
	// DetectorKleinberg is Kleinberg's two-state burst automaton.
	DetectorKleinberg
)

// RegionalOptions configures STLocal mining. The zero value (or nil)
// reproduces the paper's defaults: running-mean baseline, exact
// maximum-discrepancy rectangles.
type RegionalOptions struct {
	Baseline      BaselineKind
	BaselineParam float64
	// Grid > 0 aggregates streams into a Grid×Grid partition of Bounds
	// before rectangle search — the paper's §2 granularity mechanism,
	// recommended beyond ~10,000 streams. Bounds must be set with Grid.
	Grid   int
	Bounds Rect
	// KeepDominated disables the cross-region maximality filter of
	// Definition 2.
	KeepDominated bool
}

// CombinatorialOptions configures STComb mining. The zero value (or nil)
// reproduces the paper's defaults.
type CombinatorialOptions struct {
	Detector DetectorKind
	// KleinbergS and KleinbergGamma tune DetectorKleinberg (defaults 2
	// and 1).
	KleinbergS     float64
	KleinbergGamma float64
	// MinIntervalScore drops per-stream intervals scoring at or below
	// the threshold.
	MinIntervalScore float64
	// MinIntervalMass drops streams whose total term frequency is below
	// the threshold (a stream observed once has no burst structure).
	MinIntervalMass float64
	// MaxPatterns bounds the number of patterns extracted; 0 means all.
	MaxPatterns int
}

func (o *RegionalOptions) coreOptions() core.STLocalOptions {
	if o == nil {
		return core.STLocalOptions{}
	}
	opts := core.STLocalOptions{KeepDominated: o.KeepDominated}
	switch o.Baseline {
	case BaselineWindowMean:
		k := int(o.BaselineParam)
		if k < 1 {
			k = 4
		}
		opts.Baseline = expect.NewWindowMean(k)
	case BaselineEWMA:
		a := o.BaselineParam
		if a <= 0 || a > 1 {
			a = 0.3
		}
		opts.Baseline = expect.NewEWMA(a)
	case BaselineSeasonal:
		p := int(o.BaselineParam)
		if p < 1 {
			p = 7
		}
		opts.Baseline = expect.NewSeasonal(p)
	}
	if o.Grid > 0 {
		opts.Finder = core.GridFinder(o.Bounds, o.Grid)
	}
	return opts
}

func (o *CombinatorialOptions) coreOptions() core.STCombOptions {
	if o == nil {
		return core.STCombOptions{}
	}
	opts := core.STCombOptions{MaxPatterns: o.MaxPatterns}
	switch o.Detector {
	case DetectorKleinberg:
		opts.Detector = burst.Kleinberg{S: o.KleinbergS, Gamma: o.KleinbergGamma}
	default:
		opts.Detector = burst.Discrepancy{MinScore: o.MinIntervalScore, MinMass: o.MinIntervalMass}
	}
	return opts
}

// Collection is a spatiotemporal document collection: documents arriving
// on geostamped streams over a discrete timeline.
//
// Concurrency: perform the initial load (AddText/AddTokens) from a
// single goroutine first; after that, every read and mining method
// (RegionalPatterns, CombinatorialPatterns, TemporalBursts,
// TermFrequency, the batch miners, engine construction and search) is
// safe to call from any number of goroutines concurrently, and Append
// may publish further documents while those reads run: each read sees
// one atomic snapshot of the collection, either wholly before or wholly
// after any append batch.
type Collection struct {
	col *stream.Collection
	tok *textproc.Tokenizer
}

// NewCollection creates an empty collection over the given streams and
// timeline length (number of discrete timestamps).
func NewCollection(streams []StreamInfo, timeline int) *Collection {
	return &Collection{
		col: stream.NewCollection(streams, timeline),
		tok: textproc.NewTokenizer(),
	}
}

// AddText tokenizes text (lowercasing, stopword removal) and adds it as
// one document of the given stream at the given timestamp, returning the
// assigned document ID.
func (c *Collection) AddText(streamIdx, time int, text string) (int, error) {
	return c.col.AddTokens(streamIdx, time, c.tok.Tokenize(text))
}

// AddTokens adds a pre-tokenized document.
func (c *Collection) AddTokens(streamIdx, time int, tokens []string) (int, error) {
	return c.col.AddTokens(streamIdx, time, tokens)
}

// LoadCorpus reads a JSONL corpus in the interchange format emitted by
// cmd/stgen (a topix header line followed by one document per line) and
// returns the rebuilt collection, with stream locations projected by MDS
// over their geographic distances as in §6.1 of the paper. Loading the
// same corpus always interns terms in the same order, so a pattern-index
// snapshot mined from a corpus loads cleanly into any collection rebuilt
// from that corpus with LoadCorpus (see LoadPatternIndex).
func LoadCorpus(r io.Reader) (*Collection, error) {
	c, _, err := LoadCorpusLabeled(r)
	return c, err
}

// LoadCorpusLabeled is LoadCorpus plus the per-document ground-truth
// event labels the synthetic generator embeds (labels[docID] is the
// event the document belongs to, 0 for background chatter; nil when the
// corpus carries no labels). Evaluation tooling uses the labels to
// check retrieved documents against the planted events.
func LoadCorpusLabeled(r io.Reader) (*Collection, []int, error) {
	col, labels, err := corpusio.Load(r)
	if err != nil {
		return nil, nil, err
	}
	return &Collection{col: col, tok: textproc.NewTokenizer()}, labels, nil
}

// IncomingDocument is one document arriving after the initial corpus
// load — the unit of the live ingestion path (Collection.Append,
// Store.Ingest, the Ingester, and stserve's POST /v1/documents).
type IncomingDocument struct {
	// Stream is the index of the originating stream.
	Stream int
	// Time is the document's timestamp on the collection's discrete
	// timeline, in [0, Timeline()). The timeline is fixed at collection
	// creation: live arrival fills the existing timeline, it does not
	// extend it.
	Time int
	// Text is the document body, tokenized with the collection's
	// pipeline (lowercasing, stopword removal) exactly like AddText.
	Text string
	// Tokens is the pre-tokenized alternative to Text and takes
	// precedence when non-nil, exactly like AddTokens.
	Tokens []string
}

// AppendResult reports one applied Collection.Append batch.
type AppendResult struct {
	// FirstID is the document ID assigned to the first document of the
	// batch; IDs are dense and consecutive from there.
	FirstID int
	// Docs is the number of documents appended.
	Docs int
	// DirtyTerms lists every distinct term whose frequency surface the
	// batch changed — including terms the batch introduced — sorted by
	// interned ID (i.e. first-seen order). These are exactly the terms
	// whose patterns must be re-mined for an index over the collection
	// to be exact again; Store.Ingest does so automatically.
	DirtyTerms []string
}

// Append publishes a batch of documents arriving after the initial load,
// atomically and safely under any number of concurrent readers,
// searches and miners: a concurrent reader observes the collection
// either wholly before or wholly after the batch, never a torn mix.
// Batches are all-or-nothing — any out-of-range stream or timestamp
// rejects the whole batch with nothing published. Existing interned
// term IDs never move (the frozen prefix), and each document's new
// terms are interned in sorted order, so replaying the same appends
// always assigns identical IDs and previously mined indexes and
// snapshots stay attached; only the returned dirty terms go stale.
// Concurrent Append calls serialize. The context is checked once up
// front: batches apply quickly and atomically, so there is no
// mid-batch cancellation point.
//
// Append alone leaves mined indexes describing the pre-append corpus;
// use Store.Ingest (or an Ingester) to append and incrementally
// re-mine in one step.
func (c *Collection) Append(ctx context.Context, docs []IncomingDocument) (*AppendResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	first, dirty, err := c.appendDocs(docs)
	if err != nil {
		return nil, err
	}
	dict := c.col.Dict()
	terms := make([]string, len(dirty))
	for i, id := range dirty {
		terms[i] = dict.Term(id)
	}
	return &AppendResult{FirstID: first, Docs: len(docs), DirtyTerms: terms}, nil
}

// prepareBatch tokenizes a batch into the stream layer's append shape —
// the form the write-ahead log frames and Collection.Append interns, so
// logging and applying agree byte for byte on what the batch contains.
func (c *Collection) prepareBatch(docs []IncomingDocument) []stream.AppendDoc {
	batch := make([]stream.AppendDoc, len(docs))
	for i, d := range docs {
		tokens := d.Tokens
		if tokens == nil {
			tokens = c.tok.Tokenize(d.Text)
		}
		counts := make(map[string]int, len(tokens))
		for _, t := range tokens {
			counts[t]++
		}
		batch[i] = stream.AppendDoc{Stream: d.Stream, Time: d.Time, Counts: counts}
	}
	return batch
}

// appendDocs tokenizes and appends a batch, returning the first assigned
// ID and the ascending dirty term IDs — the shared back half of Append
// and Store.Ingest.
func (c *Collection) appendDocs(docs []IncomingDocument) (int, []int, error) {
	return c.col.Append(c.prepareBatch(docs))
}

// NumDocs returns the number of documents added.
func (c *Collection) NumDocs() int { return c.col.NumDocs() }

// Checksum returns a hex digest over the collection's entire logical
// content — documents, posting lists and vocabulary. Two collections
// with equal checksums are interchangeable for every consumer in this
// package: same document IDs, same interned term IDs, same frequency
// surfaces. The crash-recovery suite uses it to prove a corpus load
// plus WAL replay reproduces the pre-crash collection bit for bit.
func (c *Collection) Checksum() string { return c.col.Checksum() }

// NumStreams returns the number of streams.
func (c *Collection) NumStreams() int { return c.col.NumStreams() }

// Timeline returns the timeline length.
func (c *Collection) Timeline() int { return c.col.Length() }

// Stream returns the description of stream x.
func (c *Collection) Stream(x int) StreamInfo { return c.col.Stream(x) }

// Document describes one stored document.
type Document struct {
	ID     int
	Stream int
	Time   int
}

// Doc returns the document with the given ID.
func (c *Collection) Doc(id int) Document {
	d := c.col.Doc(id)
	return Document{ID: d.ID, Stream: d.Stream, Time: d.Time}
}

// Terms returns every distinct term in the collection.
func (c *Collection) Terms() []string {
	ids := c.col.Terms()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.col.Dict().Term(id)
	}
	return out
}

// TermFrequency returns the total frequency of term in stream x at the
// given timestamp (D_x[i][t], Eq. 6 of the paper).
func (c *Collection) TermFrequency(term string, streamIdx, time int) float64 {
	id, ok := c.col.Dict().Lookup(c.normalize(term))
	if !ok {
		return 0
	}
	return c.col.Surface(id)[streamIdx][time]
}

func (c *Collection) normalize(term string) string {
	toks := c.tok.Tokenize(term)
	if len(toks) == 0 {
		return term
	}
	return toks[0]
}

// RegionalPatterns mines the maximal regional spatiotemporal windows of a
// term with STLocal (§4 of the paper), sorted by descending w-score.
// A nil opts uses the paper's defaults.
func (c *Collection) RegionalPatterns(term string, opts *RegionalOptions) []RegionalPattern {
	id, ok := c.col.Dict().Lookup(c.normalize(term))
	if !ok {
		return nil
	}
	ws, err := core.MineLocal(c.col.Surface(id), c.col.Points(), opts.coreOptions())
	if err != nil {
		panic(fmt.Sprintf("stburst: internal mismatch mining %q: %v", term, err))
	}
	return ws
}

// CombinatorialPatterns mines the combinatorial spatiotemporal patterns
// of a term with STComb (§3 of the paper), in descending score order.
// A nil opts uses the paper's defaults.
func (c *Collection) CombinatorialPatterns(term string, opts *CombinatorialOptions) []CombinatorialPattern {
	id, ok := c.col.Dict().Lookup(c.normalize(term))
	if !ok {
		return nil
	}
	return core.STComb(c.col.Surface(id), opts.coreOptions())
}

// TemporalBursts extracts the term's bursty temporal intervals on the
// merged stream (all streams folded into one), as used by temporal-only
// burstiness systems.
func (c *Collection) TemporalBursts(term string) []TemporalInterval {
	id, ok := c.col.Dict().Lookup(c.normalize(term))
	if !ok {
		return nil
	}
	return burst.Discrepancy{}.Detect(c.col.MergedSeries(id))
}

// RegionalMiner is the streaming STLocal miner for a single term: push
// one snapshot of per-stream frequencies per timestamp and read the
// maximal windows at any point (Algorithm 2 of the paper).
type RegionalMiner struct {
	m *core.STLocal
}

// NewRegionalMiner creates a streaming regional miner over streams fixed
// at the given locations.
func NewRegionalMiner(points []Point, opts *RegionalOptions) *RegionalMiner {
	return &RegionalMiner{m: core.NewSTLocal(points, opts.coreOptions())}
}

// Push processes the next snapshot: observed[x] is the term's frequency
// in stream x at the next timestamp.
func (rm *RegionalMiner) Push(observed []float64) error { return rm.m.Push(observed) }

// Windows returns the maximal spatiotemporal windows found so far, by
// descending score.
func (rm *RegionalMiner) Windows() []RegionalPattern { return rm.m.Windows() }

// Timestamps returns the number of snapshots processed.
func (rm *RegionalMiner) Timestamps() int { return rm.m.Timestamps() }

// CombinatorialMiner is the online variant of STComb (the paper's §8
// future-work item): per-stream bursty intervals are maintained
// incrementally over residual weights and patterns are assembled on
// demand.
type CombinatorialMiner struct {
	m *core.OnlineSTComb
}

// NewCombinatorialMiner creates a streaming combinatorial miner over n
// streams. A nil opts keeps the defaults (matching the batch miner's
// convention). MinIntervalScore, MinIntervalMass and MaxPatterns carry
// over from batch mining — with MinIntervalScore on the online miner's
// residual scale rather than the [0,1]-normalized B_T. The Detector
// choice is ignored: the online variant always maintains intervals
// incrementally over residual weights (see CombinatorialMiner).
func NewCombinatorialMiner(n int, opts *CombinatorialOptions) *CombinatorialMiner {
	var oo core.OnlineSTCombOptions
	if opts != nil {
		oo.MinIntervalScore = opts.MinIntervalScore
		oo.MinIntervalMass = opts.MinIntervalMass
		oo.MaxPatterns = opts.MaxPatterns
	}
	return &CombinatorialMiner{m: core.NewOnlineSTCombOpts(n, oo)}
}

// Push processes the next snapshot of per-stream frequencies.
func (cm *CombinatorialMiner) Push(observed []float64) error { return cm.m.Push(observed) }

// Patterns returns up to max patterns (0 = all) over the data so far.
func (cm *CombinatorialMiner) Patterns(max int) []CombinatorialPattern { return cm.m.Patterns(max) }
