package stburst

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stburst/internal/search"
)

// liveBatch is the append batch the ingestion tests share: more arrival
// on an existing bursty term, a brand-new term, and a document for a
// previously quiet stream.
func liveBatch() []IncomingDocument {
	return []IncomingDocument{
		{Stream: 2, Time: 13, Text: "earthquake aftershocks continue rescue"},
		{Stream: 3, Time: 13, Text: "earthquake volcano eruption volcano"},
		{Stream: 0, Time: 14, Text: "volcano ash cloud grounds flights"},
	}
}

// applyBatch replays the same documents through the plain Append path —
// the "from scratch" side of the incremental-vs-full oracle.
func applyBatch(t *testing.T, c *Collection, docs []IncomingDocument) *AppendResult {
	t.Helper()
	res, err := c.Append(context.Background(), docs)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return res
}

func TestAppendBasics(t *testing.T) {
	c := twoBurstCollection(t)
	before := c.NumDocs()
	res := applyBatch(t, c, liveBatch())
	if res.FirstID != before || res.Docs != 3 {
		t.Fatalf("AppendResult = %+v, want FirstID %d, Docs 3", res, before)
	}
	if c.NumDocs() != before+3 {
		t.Fatalf("NumDocs = %d, want %d", c.NumDocs(), before+3)
	}
	// Dirty terms are the batch's distinct normalized tokens ("ash",
	// "volcano", ... — stopwords removed), each reported once.
	dirty := map[string]bool{}
	for _, term := range res.DirtyTerms {
		if dirty[term] {
			t.Errorf("dirty term %q reported twice", term)
		}
		dirty[term] = true
	}
	for _, want := range []string{"earthquake", "volcano", "rescue", "ash"} {
		if !dirty[want] {
			t.Errorf("dirty terms %v missing %q", res.DirtyTerms, want)
		}
	}
	if dirty["continue"] == false && dirty["aftershocks"] == false {
		t.Errorf("dirty terms %v miss the batch's vocabulary", res.DirtyTerms)
	}
	// The appended frequencies are visible through every read path.
	if got := c.TermFrequency("volcano", 3, 13); got != 2 {
		t.Errorf("TermFrequency(volcano, 3, 13) = %v, want 2", got)
	}
	if d := c.Doc(res.FirstID); d.Stream != 2 || d.Time != 13 {
		t.Errorf("appended doc = %+v, want stream 2 time 13", d)
	}
}

func TestAppendValidationAtomic(t *testing.T) {
	c := twoBurstCollection(t)
	before := c.NumDocs()
	bad := [][]IncomingDocument{
		{{Stream: 0, Time: 3, Text: "fine"}, {Stream: 99, Time: 3, Text: "bad stream"}},
		{{Stream: 0, Time: 3, Text: "fine"}, {Stream: 0, Time: 99, Text: "bad time"}},
		{{Stream: -1, Time: 3, Text: "bad stream"}},
		{{Stream: 0, Time: -1, Text: "bad time"}},
	}
	for _, docs := range bad {
		if _, err := c.Append(context.Background(), docs); err == nil {
			t.Errorf("Append accepted %+v", docs)
		}
	}
	if c.NumDocs() != before {
		t.Fatalf("failed appends published documents: %d docs, want %d", c.NumDocs(), before)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Append(ctx, liveBatch()); !errors.Is(err, context.Canceled) {
		t.Errorf("Append with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestAppendDeterministicInterning: replaying the same load + appends
// assigns identical dictionary IDs, so independently rebuilt collections
// mine to identical fingerprints (the snapshot-portability guarantee
// extended past the frozen prefix).
func TestAppendDeterministicInterning(t *testing.T) {
	build := func() *Collection {
		c := twoBurstCollection(t)
		applyBatch(t, c, liveBatch())
		return c
	}
	a, b := build(), build()
	da, db := a.col.Dict(), b.col.Dict()
	if da.Len() != db.Len() {
		t.Fatalf("replayed interning diverged: %d vs %d terms", da.Len(), db.Len())
	}
	for id := 0; id < da.Len(); id++ {
		if da.Term(id) != db.Term(id) {
			t.Fatalf("replayed interning diverged at ID %d: %q vs %q", id, da.Term(id), db.Term(id))
		}
	}
	for _, kind := range Kinds() {
		ixA, err := a.Mine(context.Background(), kind, nil)
		if err != nil {
			t.Fatal(err)
		}
		ixB, err := b.Mine(context.Background(), kind, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ixA.Fingerprint() != ixB.Fingerprint() {
			t.Errorf("kind %v: replayed append mined different fingerprints", kind)
		}
	}
}

// TestIngestIncrementalOracle is the acceptance oracle: after Ingest,
// every resident index's fingerprint is byte-identical to a from-scratch
// MineStore over the appended collection, for all three kinds — and the
// incremental path mined only the dirty terms.
func TestIngestIncrementalOracle(t *testing.T) {
	live := twoBurstCollection(t)
	s, err := live.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	minedBefore := search.TermsMined()
	res, err := s.Ingest(context.Background(), liveBatch())
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	minedDelta := search.TermsMined() - minedBefore
	if res.Docs != 3 || res.DirtyTerms == 0 {
		t.Fatalf("IngestResult = %+v, want 3 docs and dirty terms", res)
	}
	if want := int64(3 * res.DirtyTerms); minedDelta != want {
		t.Errorf("incremental ingest mined %d (term, kind) jobs, want %d (3 kinds x %d dirty terms)",
			minedDelta, want, res.DirtyTerms)
	}
	if res.DirtyTerms >= len(live.Terms()) {
		t.Fatalf("every term dirty (%d of %d): the oracle would not exercise the clean-term carry-over",
			res.DirtyTerms, len(live.Terms()))
	}

	// From scratch: rebuild the same appended corpus and mine everything.
	oracle := twoBurstCollection(t)
	applyBatch(t, oracle, liveBatch())
	full, err := oracle.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds() {
		got, want := s.Index(kind).Fingerprint(), full.Index(kind).Fingerprint()
		if got != want {
			t.Errorf("kind %v: incremental fingerprint %.12s != from-scratch %.12s", kind, got, want)
		}
	}

	// The refreshed indexes serve the appended documents: the new term
	// retrieves its documents through every surface.
	page, err := s.Query(context.Background(), Query{Text: "volcano", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) == 0 {
		t.Error("ingested term retrieves nothing after the incremental refresh")
	}
}

// TestIngestMatchesFullRemineWithOptions: Ingest re-mines with the
// recorded (non-default) options, staying exact against the oracle.
func TestIngestMatchesFullRemineWithOptions(t *testing.T) {
	opts := NewMineOptions(WithRegional(&RegionalOptions{Baseline: BaselineEWMA}))
	live := twoBurstCollection(t)
	s, err := live.MineStore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), liveBatch()); err != nil {
		t.Fatal(err)
	}
	oracle := twoBurstCollection(t)
	applyBatch(t, oracle, liveBatch())
	full, err := oracle.MineStore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds() {
		if got, want := s.Index(kind).Fingerprint(), full.Index(kind).Fingerprint(); got != want {
			t.Errorf("kind %v: incremental (EWMA opts) fingerprint %.12s != from-scratch %.12s", kind, got, want)
		}
	}
}

// TestIngestPartialResidency: a store holding a subset of kinds
// refreshes just those kinds.
func TestIngestPartialResidency(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindTemporal, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(c)
	if _, err := s.Swap(KindTemporal, ix); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), liveBatch()); err != nil {
		t.Fatalf("Ingest on partial store: %v", err)
	}
	if got := s.Kinds(); len(got) != 1 || got[0] != KindTemporal {
		t.Fatalf("residency changed across Ingest: %v", got)
	}
	oracle := twoBurstCollection(t)
	applyBatch(t, oracle, liveBatch())
	want, err := oracle.Mine(context.Background(), KindTemporal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Index(KindTemporal).Fingerprint() != want.Fingerprint() {
		t.Error("partial-residency refresh is not exact")
	}
}

// TestIngestEmptyStore: with nothing resident, Ingest appends and bumps
// the generation — the corpus changed even though no index did.
func TestIngestEmptyStore(t *testing.T) {
	c := twoBurstCollection(t)
	s := NewStore(c)
	before := s.Generation()
	res, err := s.Ingest(context.Background(), liveBatch())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation <= before {
		t.Errorf("generation %d did not advance past %d", res.Generation, before)
	}
	if c.NumDocs() != twoBurstCollection(t).NumDocs()+3 {
		t.Error("empty-store ingest did not append")
	}
}

// TestStoreGeneration: every mutation advances the generation, and
// Save/LoadStore persists it.
func TestStoreGeneration(t *testing.T) {
	c := twoBurstCollection(t)
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g0 := s.Generation()
	if g0 == 0 {
		t.Error("MineStore left generation 0; its swaps are mutations")
	}
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(KindRegional, ix); err != nil {
		t.Fatal(err)
	}
	if s.Generation() <= g0 {
		t.Error("Swap did not advance the generation")
	}
	g1 := s.Generation()
	res, err := s.Ingest(context.Background(), liveBatch())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation <= g1 || s.Generation() != res.Generation {
		t.Errorf("Ingest generation %d (store %d), want past %d", res.Generation, s.Generation(), g1)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Generation() != res.Generation {
		t.Errorf("loaded generation %d, want the saved %d", loaded.Generation(), res.Generation)
	}
}

// TestIngesterBatching: Add buffers until the flush size, Flush drains
// on demand, Close drains the rest.
func TestIngesterBatching(t *testing.T) {
	c := twoBurstCollection(t)
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var flushes int
	ing := NewIngester(s, WithFlushDocs(3), WithOnFlush(func(IngestResult, error) { flushes++ }))
	batch := liveBatch()

	res, err := ing.Add(batch[0])
	if err != nil || res != nil {
		t.Fatalf("Add below flush size = (%+v, %v), want buffered", res, err)
	}
	if ing.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", ing.Pending())
	}
	res, err = ing.Add(batch[1], batch[2])
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Docs != 3 {
		t.Fatalf("Add at flush size = %+v, want a 3-doc flush", res)
	}
	if ing.Pending() != 0 || flushes != 1 {
		t.Fatalf("after flush: pending %d, flushes %d", ing.Pending(), flushes)
	}

	// Flush with an empty buffer is a generation-reporting no-op.
	res, err = ing.Flush(context.Background())
	if err != nil || res == nil || res.Docs != 0 || res.Generation != s.Generation() {
		t.Fatalf("empty Flush = (%+v, %v)", res, err)
	}
	if flushes != 1 {
		t.Error("empty flush invoked the callback")
	}

	// Close drains the remainder and seals the ingester.
	if _, err := ing.Add(IncomingDocument{Stream: 0, Time: 15, Text: "late arrival wildfire"}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := c.TermFrequency("wildfire", 0, 15); got != 1 {
		t.Errorf("document buffered at Close was dropped (freq %v)", got)
	}
	if _, err := ing.Add(batch[0]); !errors.Is(err, ErrIngesterClosed) {
		t.Errorf("Add after Close = %v, want ErrIngesterClosed", err)
	}
	if _, err := ing.Flush(context.Background()); !errors.Is(err, ErrIngesterClosed) {
		t.Errorf("Flush after Close = %v, want ErrIngesterClosed", err)
	}
	if err := ing.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// TestIngesterInterval: the background flusher drains a trickle that
// never reaches the flush size.
func TestIngesterInterval(t *testing.T) {
	c := twoBurstCollection(t)
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	flushed := make(chan struct{}, 1)
	ing := NewIngester(s, WithFlushDocs(100), WithFlushInterval(10*time.Millisecond),
		WithOnFlush(func(res IngestResult, err error) {
			if err == nil && res.Docs > 0 {
				select {
				case flushed <- struct{}{}:
				default:
				}
			}
		}))
	defer ing.Close()
	if _, err := ing.Add(IncomingDocument{Stream: 1, Time: 15, Text: "landslide blocks highway"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-flushed:
	case <-time.After(5 * time.Second):
		t.Fatal("interval flusher never fired")
	}
	if ing.Pending() != 0 {
		t.Errorf("pending %d after interval flush", ing.Pending())
	}
}

// trippingContext reports healthy for its first n Err() checks and
// cancelled afterwards — the deterministic way to abort an Ingest after
// the append (which checks the context once up front) but before the
// re-mine finishes.
type trippingContext struct {
	context.Context
	calls atomic.Int32
	after int32
}

func (c *trippingContext) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestIngestIncompleteRepairs: an Ingest aborted after the append
// reports ErrIngestIncomplete, keeps the documents (they must not be
// re-submitted), and the next Ingest — even of an empty batch —
// re-mines the owed dirty terms, converging on the from-scratch oracle.
func TestIngestIncompleteRepairs(t *testing.T) {
	live := twoBurstCollection(t)
	s, err := live.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	docsBefore := live.NumDocs()
	tripping := &trippingContext{Context: context.Background(), after: 1}
	_, err = s.Ingest(tripping, liveBatch())
	if !errors.Is(err, ErrIngestIncomplete) || !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted ingest = %v, want ErrIngestIncomplete wrapping context.Canceled", err)
	}
	if live.NumDocs() != docsBefore+3 {
		t.Fatalf("aborted ingest holds %d docs, want the batch appended (%d)", live.NumDocs(), docsBefore+3)
	}

	// Repair with an empty batch: the store owes the batch's dirty terms.
	res, err := s.Ingest(context.Background(), nil)
	if err != nil {
		t.Fatalf("repair ingest: %v", err)
	}
	if res.DirtyTerms == 0 {
		t.Fatal("repair ingest re-mined nothing; the stale dirty terms were lost")
	}

	oracle := twoBurstCollection(t)
	applyBatch(t, oracle, liveBatch())
	full, err := oracle.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Kinds() {
		if got, want := s.Index(kind).Fingerprint(), full.Index(kind).Fingerprint(); got != want {
			t.Errorf("kind %v: repaired fingerprint %.12s != from-scratch %.12s", kind, got, want)
		}
	}
}

// TestIngesterDropsAppendedBatchOnIncomplete: after ErrIngestIncomplete
// the ingester must not retry the batch — the documents are already in
// the collection, and a retry would duplicate them.
func TestIngesterDropsAppendedBatchOnIncomplete(t *testing.T) {
	live := twoBurstCollection(t)
	s, err := live.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(s, WithFlushDocs(100))
	defer ing.Close()
	if _, err := ing.Add(liveBatch()...); err != nil {
		t.Fatal(err)
	}
	docsAfterBuffer := live.NumDocs()
	tripping := &trippingContext{Context: context.Background(), after: 1}
	if _, err := ing.Flush(tripping); !errors.Is(err, ErrIngestIncomplete) {
		t.Fatalf("aborted flush = %v, want ErrIngestIncomplete", err)
	}
	if ing.Pending() != 0 {
		t.Fatalf("aborted-after-append flush left %d docs buffered for a duplicating retry", ing.Pending())
	}
	if _, err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("repair flush: %v", err)
	}
	if got, want := live.NumDocs(), docsAfterBuffer+3; got != want {
		t.Fatalf("collection holds %d docs, want %d (batch applied exactly once)", got, want)
	}
}

// TestIngesterAddCloseRace: concurrent Adds racing one Close never
// panic, never deadlock, and never lose a document — every Add that
// returned without ErrIngesterClosed is in the collection afterwards,
// and every Add after the seal reports ErrIngesterClosed.
func TestIngesterAddCloseRace(t *testing.T) {
	c := twoBurstCollection(t)
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := c.NumDocs()
	ing := NewIngester(s, WithFlushDocs(4))

	const adders = 8
	var accepted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < adders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 16; j++ {
				_, err := ing.Add(IncomingDocument{Stream: 0, Time: 3, Text: "aftershock tremor"})
				if errors.Is(err, ErrIngesterClosed) {
					return
				}
				if err != nil {
					t.Errorf("racing Add: %v", err)
					return
				}
				accepted.Add(1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := ing.Close(); err != nil {
			t.Errorf("racing Close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	if got, want := c.NumDocs(), before+int(accepted.Load()); got != want {
		t.Fatalf("collection holds %d docs, want %d: an accepted Add was dropped across Close", got, want)
	}
	if _, err := ing.Add(liveBatch()[0]); !errors.Is(err, ErrIngesterClosed) {
		t.Errorf("Add after racing Close = %v, want ErrIngesterClosed", err)
	}
}

// TestIngesterFlushErrorPropagates: a batch the store rejects before the
// append (invalid stream) surfaces its error from Flush, from a
// size-triggered Add, from the OnFlush callback and finally from Close —
// and the rejected documents stay buffered rather than vanishing.
func TestIngesterFlushErrorPropagates(t *testing.T) {
	c := twoBurstCollection(t)
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var cbErrs int
	ing := NewIngester(s, WithFlushDocs(100), WithOnFlush(func(_ IngestResult, err error) {
		if err != nil {
			cbErrs++
		}
	}))
	bad := IncomingDocument{Stream: 99, Time: 3, Text: "no such stream"}
	if _, err := ing.Add(bad); err != nil {
		t.Fatalf("Add below flush size must buffer, got %v", err)
	}
	if _, err := ing.Flush(context.Background()); err == nil {
		t.Fatal("Flush of an invalid batch reported success")
	}
	if cbErrs != 1 {
		t.Errorf("OnFlush saw %d errors, want 1", cbErrs)
	}
	if ing.Pending() != 1 {
		t.Errorf("Pending = %d after a pre-append failure, want the batch kept for retry", ing.Pending())
	}
	if err := ing.Close(); err == nil {
		t.Error("Close swallowed the final flush failure")
	}

	// The same error also surfaces synchronously from the Add that
	// trips the flush size.
	ing2 := NewIngester(s, WithFlushDocs(1))
	defer ing2.Close()
	if _, err := ing2.Add(bad); err == nil {
		t.Error("size-triggered Add of an invalid batch reported success")
	}
}

// TestIngesterPendingAfterFailedFlush: a flush that fails before the
// append (cancelled context) must leave Pending exactly as it was —
// the documents are still owed — and a later healthy flush drains them
// exactly once.
func TestIngesterPendingAfterFailedFlush(t *testing.T) {
	c := twoBurstCollection(t)
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := c.NumDocs()
	ing := NewIngester(s, WithFlushDocs(100))
	defer ing.Close()
	if _, err := ing.Add(liveBatch()...); err != nil {
		t.Fatal(err)
	}
	if ing.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3 buffered", ing.Pending())
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ing.Flush(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Flush(cancelled) = %v, want context.Canceled", err)
	}
	if ing.Pending() != 3 {
		t.Fatalf("Pending = %d after a cancelled flush, want 3 still buffered", ing.Pending())
	}
	if c.NumDocs() != before {
		t.Fatal("cancelled flush published documents")
	}
	res, err := ing.Flush(context.Background())
	if err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if res.Docs != 3 || ing.Pending() != 0 || c.NumDocs() != before+3 {
		t.Fatalf("retry flush = %+v (pending %d, docs %d), want the batch applied exactly once",
			res, ing.Pending(), c.NumDocs())
	}
}

// TestIngestNoDirtyTermsSkipsRefresh: a batch that tokenizes to nothing
// appends and bumps the generation (the corpus changed) but keeps the
// resident indexes — rebuilding engines for bit-identical content would
// be reload-scale work for nothing. A fully empty no-op call does not
// even bump.
func TestIngestNoDirtyTermsSkipsRefresh(t *testing.T) {
	c := twoBurstCollection(t)
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := [3]*PatternIndex{s.Index(KindRegional), s.Index(KindCombinatorial), s.Index(KindTemporal)}
	g0 := s.Generation()
	minedBefore := search.TermsMined()
	res, err := s.Ingest(context.Background(), []IncomingDocument{
		{Stream: 0, Time: 3, Text: "the and of"}, // stopwords only
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyTerms != 0 || res.Docs != 1 {
		t.Fatalf("stopword ingest = %+v, want 1 doc, 0 dirty terms", res)
	}
	if res.Generation <= g0 {
		t.Error("appending a document did not advance the generation")
	}
	if search.TermsMined() != minedBefore {
		t.Error("a zero-dirty ingest re-mined terms")
	}
	for i, kind := range Kinds() {
		if s.Index(kind) != before[i] {
			t.Errorf("kind %v: zero-dirty ingest replaced the resident index", kind)
		}
	}
	// A completely empty call is a pure no-op: same generation.
	g1 := s.Generation()
	res, err = s.Ingest(context.Background(), nil)
	if err != nil || res.Generation != g1 || s.Generation() != g1 {
		t.Errorf("no-op ingest = (%+v, %v), want generation unchanged at %d", res, err, g1)
	}
}
