package stburst_test

import (
	"fmt"
	"log"

	"stburst"
)

// build a deterministic demo collection: a two-city burst of "storm"
// during weeks 3-4, far from a quiet third city.
func demo() *stburst.Collection {
	streams := []stburst.StreamInfo{
		{Name: "miami", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "havana", Location: stburst.Point{X: 2, Y: -2}},
		{Name: "oslo", Location: stburst.Point{X: 70, Y: 90}},
	}
	c := stburst.NewCollection(streams, 8)
	add := func(s, w int, text string) {
		if _, err := c.AddText(s, w, text); err != nil {
			log.Fatal(err)
		}
	}
	for w := 0; w < 8; w++ {
		add(0, w, "harbor traffic and fishing report")
		add(1, w, "harbor traffic and baseball scores")
		add(2, w, "northern lights viewing forecast")
	}
	for w := 3; w <= 4; w++ {
		for i := 0; i < 3; i++ {
			add(0, w, "storm surge warnings as the storm strengthens")
			add(1, w, "storm damages coastal roads")
		}
	}
	return c
}

func ExampleCollection_RegionalPatterns() {
	c := demo()
	top, ok := stburst.Best(c.RegionalPatterns("storm", nil))
	if !ok {
		log.Fatal("no pattern")
	}
	fmt.Printf("weeks [%d,%d], streams %v\n", top.Start, top.End, top.Streams)
	// Output: weeks [3,4], streams [0 1]
}

func ExampleCollection_CombinatorialPatterns() {
	c := demo()
	ps := c.CombinatorialPatterns("storm", nil)
	fmt.Printf("weeks [%d,%d], streams %v\n", ps[0].Start, ps[0].End, ps[0].Streams)
	// Output: weeks [3,4], streams [0 1]
}

func ExampleEngine_Search() {
	c := demo()
	engine := stburst.NewRegionalEngine(c, nil)
	hits := engine.Search("storm surge", 2)
	for _, h := range hits {
		fmt.Printf("%s week %d\n", h.Stream, h.Doc.Time)
	}
	// Output:
	// miami week 3
	// miami week 3
}

func ExampleNewRegionalMiner() {
	points := []stburst.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	m := stburst.NewRegionalMiner(points, nil)
	for week := 0; week < 6; week++ {
		freq := []float64{1, 1}
		if week == 3 {
			freq = []float64{9, 11}
		}
		if err := m.Push(freq); err != nil {
			log.Fatal(err)
		}
	}
	top, _ := stburst.Best(m.Windows())
	fmt.Printf("burst at week %d covering %d streams\n", top.Start, len(top.Streams))
	// Output: burst at week 3 covering 2 streams
}
