package stburst

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"

	"stburst/internal/search"
)

// fullStore mines every kind into a store over the collection.
func fullStore(t *testing.T, c *Collection) *Store {
	t.Helper()
	s, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatalf("MineStore: %v", err)
	}
	return s
}

func TestStoreSwapAndKinds(t *testing.T) {
	c := twoBurstCollection(t)
	ixs := mineKinds(t, c)
	s := NewStore(c)
	if got := s.Kinds(); len(got) != 0 {
		t.Fatalf("empty store reports kinds %v", got)
	}

	prev, err := s.Swap(KindRegional, ixs[KindRegional])
	if err != nil || prev != nil {
		t.Fatalf("first Swap = (%v, %v), want (nil, nil)", prev, err)
	}
	if got := s.Kinds(); len(got) != 1 || got[0] != KindRegional {
		t.Fatalf("Kinds after one swap = %v", got)
	}
	if s.Index(KindRegional) != ixs[KindRegional] {
		t.Fatal("Index does not return the swapped-in index")
	}
	if s.Index(KindTemporal) != nil || s.Index(KindAny) != nil {
		t.Fatal("absent kinds must read as nil")
	}

	// Swapping again returns the previous resident.
	prev, err = s.Swap(KindRegional, ixs[KindRegional])
	if err != nil || prev != ixs[KindRegional] {
		t.Fatalf("re-Swap = (%v, %v), want the previous index", prev, err)
	}

	// A slot only holds its own kind, never KindAny, never a foreign
	// collection's index.
	if _, err := s.Swap(KindTemporal, ixs[KindRegional]); err == nil {
		t.Error("Swap accepted a regional index into the temporal slot")
	}
	if _, err := s.Swap(KindAny, ixs[KindRegional]); err == nil {
		t.Error("Swap accepted the KindAny slot")
	}
	other := twoBurstCollection(t)
	foreign, err := other.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(KindRegional, foreign); err == nil {
		t.Error("Swap accepted an index attached to a different collection")
	}

	// Swapping nil removes the kind.
	if _, err := s.Swap(KindRegional, nil); err != nil {
		t.Fatalf("Swap(nil): %v", err)
	}
	if got := s.Kinds(); len(got) != 0 {
		t.Fatalf("Kinds after removal = %v", got)
	}
}

func TestStoreReplace(t *testing.T) {
	c := twoBurstCollection(t)
	ixs := mineKinds(t, c)
	s := NewStore(c)
	if _, err := s.Swap(KindTemporal, ixs[KindTemporal]); err != nil {
		t.Fatal(err)
	}
	// Replace swaps the whole set: temporal out, regional+combinatorial in.
	if err := s.Replace(ixs[KindRegional], ixs[KindCombinatorial]); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	want := []Kind{KindRegional, KindCombinatorial}
	if got := s.Kinds(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Kinds after Replace = %v, want %v", got, want)
	}
	if s.Index(KindTemporal) != nil {
		t.Error("Replace kept a kind that was not in the new set")
	}
	// Invalid sets leave the store untouched.
	for name, bad := range map[string][]*PatternIndex{
		"duplicate kind": {ixs[KindRegional], ixs[KindRegional]},
		"nil entry":      {ixs[KindRegional], nil},
	} {
		if err := s.Replace(bad...); err == nil {
			t.Errorf("Replace accepted %s", name)
		}
		if got := s.Kinds(); len(got) != 2 {
			t.Fatalf("failed Replace (%s) mutated the store: %v", name, got)
		}
	}
}

// TestStoreQuerySingleKindParity: a concrete Query.Kind routed through
// the store answers exactly like the resident index itself.
func TestStoreQuerySingleKindParity(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	queries := []Query{
		{Text: "earthquake", K: 20},
		{Text: "earthquake rescue", K: 10},
		{Text: "earthquake", K: 50, Region: &andesRegion},
		{Text: "earthquake", K: 50, Time: &japanTime},
		{Text: "earthquake", K: 5, Offset: 3},
	}
	for _, kind := range Kinds() {
		for _, q := range queries {
			q.Kind = kind
			want, err := s.Index(kind).Query(context.Background(), q)
			if err != nil {
				t.Fatalf("index query %v: %v", kind, err)
			}
			got, err := s.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("store query %v: %v", kind, err)
			}
			if len(got.Hits) != len(want.Hits) || got.More != want.More {
				t.Fatalf("kind %v: store page (%d hits, more=%v) != index page (%d hits, more=%v)",
					kind, len(got.Hits), got.More, len(want.Hits), want.More)
			}
			for i := range got.Hits {
				if got.Hits[i] != want.Hits[i] {
					t.Errorf("kind %v hit %d: store %+v != index %+v", kind, i, got.Hits[i], want.Hits[i])
				}
				if got.Hits[i].Kind != kind {
					t.Errorf("kind %v hit %d attributed to %v", kind, i, got.Hits[i].Kind)
				}
			}
		}
	}
}

// anyBruteForce computes the KindAny answer the slow way: run every
// resident kind's full ranking, concatenate, sort by the documented
// merge order (score desc, doc asc, kind asc), and page.
func anyBruteForce(t *testing.T, s *Store, q Query) ResultPage {
	t.Helper()
	var union []Hit
	for _, kind := range s.Kinds() {
		full := q
		full.Kind = kind
		full.K = MaxK
		full.Offset = 0
		page, err := s.Index(kind).Query(context.Background(), full)
		if err != nil {
			t.Fatalf("brute force %v: %v", kind, err)
		}
		union = append(union, page.Hits...)
	}
	sort.SliceStable(union, func(i, j int) bool {
		if union[i].Score != union[j].Score {
			return union[i].Score > union[j].Score
		}
		if union[i].Doc.ID != union[j].Doc.ID {
			return union[i].Doc.ID < union[j].Doc.ID
		}
		return union[i].Kind < union[j].Kind
	})
	k := q.K
	if k == 0 {
		k = DefaultK
	}
	if q.Offset >= len(union) {
		return ResultPage{}
	}
	end := q.Offset + k
	more := len(union) > end
	if end > len(union) {
		end = len(union)
	}
	return ResultPage{Hits: union[q.Offset:end], More: more}
}

// TestStoreQueryAnyMergeBruteForce: the KindAny fan-out merge matches
// the per-kind brute-force union for plain, filtered, thresholded and
// paged queries.
func TestStoreQueryAnyMergeBruteForce(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	queries := []Query{
		{Text: "earthquake"},
		{Text: "earthquake", K: 200},
		{Text: "earthquake rescue", K: 50},
		{Text: "earthquake", K: 100, Region: &andesRegion},
		{Text: "earthquake", K: 100, Time: &andesTime},
		{Text: "earthquake", K: 100, Region: &japanRegion, Time: &japanTime},
		{Text: "earthquake", K: 100, MinScore: 2},
		{Text: "earthquake", K: 7, Offset: 5},
		{Text: "earthquake", K: 3, Offset: 250},
		{Text: "weather", K: 30},
		{Text: "nosuchterm", K: 10},
	}
	for _, q := range queries {
		got, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("store query %+v: %v", q, err)
		}
		want := anyBruteForce(t, s, q)
		if len(got.Hits) != len(want.Hits) || got.More != want.More {
			t.Fatalf("query %+v: merged page (%d hits, more=%v) != union (%d hits, more=%v)",
				q, len(got.Hits), got.More, len(want.Hits), want.More)
		}
		for i := range got.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Errorf("query %+v hit %d: merged %+v != union %+v", q, i, got.Hits[i], want.Hits[i])
			}
		}
	}
	// Sanity: with all three kinds resident, a large page attributes hits
	// to more than one kind.
	page, err := s.Query(context.Background(), Query{Text: "earthquake", K: 500})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Kind]bool{}
	for _, h := range page.Hits {
		seen[h.Kind] = true
	}
	if len(seen) < 2 {
		t.Errorf("KindAny fan-out attributed hits to %v, want several kinds", seen)
	}
}

// TestStoreQueryOffsetPastEnd is the public-surface regression test for
// the pathological page: an Offset past the last hit — for a concrete
// kind and for the KindAny fan-out, filtered or not — answers an empty
// page with More=false in at most one retrieval round per consulted
// index, instead of grinding the progressive fetch-doubling to MaxK.
func TestStoreQueryOffsetPastEnd(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	for _, q := range []Query{
		{Text: "earthquake", K: 10, Offset: MaxK, Kind: KindRegional},
		{Text: "earthquake", K: 10, Offset: MaxK},
		{Text: "earthquake", K: 10, Offset: MaxK, Region: &andesRegion},
		{Text: "earthquake rescue", K: 5, Offset: MaxK / 2, Time: &japanTime},
	} {
		before := search.FetchRounds()
		page, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
		if len(page.Hits) != 0 || page.More {
			t.Errorf("query %+v: page = %d hits, more=%v; want empty, false", q, len(page.Hits), page.More)
		}
		if rounds := search.FetchRounds() - before; rounds > 3 {
			t.Errorf("query %+v: %d fetch rounds, want at most one per resident index", q, rounds)
		}
	}
}

func TestStoreQueryNotResident(t *testing.T) {
	c := twoBurstCollection(t)
	s := NewStore(c)
	if _, err := s.Query(context.Background(), Query{Text: "earthquake"}); !errors.Is(err, ErrKindNotResident) {
		t.Errorf("KindAny query on empty store = %v, want ErrKindNotResident", err)
	}
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(KindRegional, ix); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), Query{Text: "earthquake", Kind: KindTemporal}); !errors.Is(err, ErrKindNotResident) {
		t.Errorf("non-resident kind query = %v, want ErrKindNotResident", err)
	}
	if _, err := s.Query(context.Background(), Query{Text: "earthquake", Kind: KindRegional}); err != nil {
		t.Errorf("resident kind query failed: %v", err)
	}
}

// TestEngineKindMismatch: a single-kind surface rejects queries for a
// different concrete kind instead of answering with the wrong model.
func TestEngineKindMismatch(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(context.Background(), Query{Text: "earthquake", Kind: KindTemporal}); err == nil {
		t.Error("regional index answered a temporal query")
	}
	for _, kind := range []Kind{KindAny, KindRegional} {
		if _, err := ix.Query(context.Background(), Query{Text: "earthquake", Kind: kind}); err != nil {
			t.Errorf("regional index rejected Kind=%v: %v", kind, err)
		}
	}
}

// TestMineStoreParity: the one-pass three-kind miner produces indexes
// bit-identical to the per-kind miners, for any worker count.
func TestMineStoreParity(t *testing.T) {
	c := twoBurstCollection(t)
	ixs := mineKinds(t, c)
	for _, workers := range []int{1, 4} {
		s, err := c.MineStore(context.Background(), NewMineOptions(WithParallelism(workers)))
		if err != nil {
			t.Fatalf("MineStore(workers=%d): %v", workers, err)
		}
		if got := s.Kinds(); len(got) != 3 {
			t.Fatalf("MineStore resident kinds = %v, want all three", got)
		}
		for _, kind := range Kinds() {
			if got, want := s.Index(kind).Fingerprint(), ixs[kind].Fingerprint(); got != want {
				t.Errorf("workers=%d kind %v: MineStore fingerprint %.12s != Mine fingerprint %.12s",
					workers, kind, got, want)
			}
		}
	}
}

// TestMineStoreCancel: a cancelled context aborts the one-pass miner.
func TestMineStoreCancel(t *testing.T) {
	c := twoBurstCollection(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.MineStore(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("MineStore with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestStoreHotSwapUnderQueries: queries hammer the store while indexes
// are swapped and the whole set replaced; every page observed must be
// internally consistent (all hits attributed to resident kinds). Run
// under -race this is the torn-read detector for the atomic swap.
func TestStoreHotSwapUnderQueries(t *testing.T) {
	c := twoBurstCollection(t)
	ixs := mineKinds(t, c)
	// A second generation of indexes to swap against (different options,
	// same collection).
	reg2 := c.MineAllRegional(&RegionalOptions{Baseline: BaselineEWMA}, 0)
	s := fullStore(t, c)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				page, err := s.Query(context.Background(), Query{Text: "earthquake", K: 20})
				if err != nil {
					t.Errorf("query during swaps: %v", err)
					return
				}
				for _, h := range page.Hits {
					if _, ok := h.Kind.patternKind(); !ok {
						t.Errorf("hit attributed to non-concrete kind %v", h.Kind)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var next *PatternIndex
		if i%2 == 0 {
			next = reg2
		} else {
			next = ixs[KindRegional]
		}
		if _, err := s.Swap(KindRegional, next); err != nil {
			t.Errorf("swap %d: %v", i, err)
			break
		}
		if i%10 == 0 {
			if err := s.Replace(next, ixs[KindCombinatorial], ixs[KindTemporal]); err != nil {
				t.Errorf("replace %d: %v", i, err)
				break
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentIngestQueryReplace extends the hot-swap hammer with a
// live writer: queries and pattern listings run nonstop while one
// goroutine ingests document batches (append + dirty-term re-mine +
// atomic Replace) and another swaps and replaces indexes
// administratively. Under -race this is the torn-read detector for the
// whole write path: the copy-on-write collection append, the shared
// clean-term pattern slices, and the atomic resident-set installs.
func TestConcurrentIngestQueryReplace(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	ixs := mineKinds(t, c)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				page, err := s.Query(context.Background(), Query{Text: "earthquake volcano", K: 20})
				if err != nil {
					// The two-term query needs "volcano", which only exists
					// after the first ingest; an empty page is fine, an
					// error is not.
					t.Errorf("query during ingest: %v", err)
					return
				}
				for _, h := range page.Hits {
					if _, ok := h.Kind.patternKind(); !ok {
						t.Errorf("hit attributed to non-concrete kind %v", h.Kind)
						return
					}
				}
				if _, err := s.Query(context.Background(), Query{Text: "earthquake", K: 10, Region: &andesRegion}); err != nil {
					t.Errorf("filtered query during ingest: %v", err)
					return
				}
			}
		}()
	}
	// The administrative writer: swaps one kind back and forth and
	// occasionally replaces the whole set, racing the ingest writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Swap(KindRegional, ixs[KindRegional]); err != nil {
				t.Errorf("swap during ingest: %v", err)
				return
			}
			if i%5 == 0 {
				if err := s.Replace(ixs[KindRegional], ixs[KindCombinatorial], ixs[KindTemporal]); err != nil {
					t.Errorf("replace during ingest: %v", err)
					return
				}
			}
		}
	}()

	lastGen := s.Generation()
	for i := 0; i < 12; i++ {
		res, err := s.Ingest(context.Background(), []IncomingDocument{
			{Stream: i % c.NumStreams(), Time: (7 + i) % c.Timeline(), Text: "earthquake volcano wave"},
			{Stream: (i + 1) % c.NumStreams(), Time: (3 + i) % c.Timeline(), Text: "volcano plume drifting"},
		})
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if res.Generation <= lastGen {
			t.Fatalf("ingest %d: generation %d did not advance past %d", i, res.Generation, lastGen)
		}
		lastGen = res.Generation
	}
	close(stop)
	wg.Wait()

	if got := c.NumDocs(); got != twoBurstCollection(t).NumDocs()+24 {
		t.Errorf("collection holds %d docs after 12 ingests of 2", got)
	}
}

// TestStoreSaveLoadRoundTrip: a bundle round-trips every resident index
// bit for bit and the loaded store answers queries identically.
func TestStoreSaveLoadRoundTrip(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadStore(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	if got := loaded.Kinds(); len(got) != 3 {
		t.Fatalf("loaded store kinds = %v, want all three", got)
	}
	for _, kind := range Kinds() {
		if got, want := loaded.Index(kind).Fingerprint(), s.Index(kind).Fingerprint(); got != want {
			t.Errorf("kind %v: loaded fingerprint %.12s != saved %.12s", kind, got, want)
		}
	}
	q := Query{Text: "earthquake", K: 30}
	want, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("loaded store returned %d hits, original %d", len(got.Hits), len(want.Hits))
	}
	for i := range got.Hits {
		if got.Hits[i] != want.Hits[i] {
			t.Errorf("hit %d: loaded %+v != original %+v", i, got.Hits[i], want.Hits[i])
		}
	}
}

// TestStoreSavePartial: a store holding a subset of kinds saves and
// loads just those kinds; an empty store cannot be saved.
func TestStoreSavePartial(t *testing.T) {
	c := twoBurstCollection(t)
	ixs := mineKinds(t, c)
	s := NewStore(c)
	if err := s.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save accepted an empty store")
	}
	if err := s.Replace(ixs[KindCombinatorial], ixs[KindTemporal]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindCombinatorial, KindTemporal}
	if got := loaded.Kinds(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("loaded kinds = %v, want %v", got, want)
	}
}

// TestLoadStoreSingleSnapshot: LoadStore accepts a bare single-index
// snapshot, booting a one-kind store — the pre-bundle artifact keeps
// working.
func TestLoadStoreSingleSnapshot(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindCombinatorial, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := LoadStore(&buf, c)
	if err != nil {
		t.Fatalf("LoadStore(snapshot): %v", err)
	}
	if got := s.Kinds(); len(got) != 1 || got[0] != KindCombinatorial {
		t.Fatalf("kinds = %v, want [combinatorial]", got)
	}
	if s.Index(KindCombinatorial).Fingerprint() != ix.Fingerprint() {
		t.Error("loaded snapshot fingerprint differs")
	}
}

// TestLoadStoreForeignCollection: a bundle mined from a different corpus
// is rejected, not silently mis-attached.
func TestLoadStoreForeignCollection(t *testing.T) {
	c := twoBurstCollection(t)
	s := fullStore(t, c)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewCollection([]StreamInfo{{Name: "solo", Location: Point{}}}, 4)
	if _, err := other.AddText(0, 0, "entirely different vocabulary"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStore(&buf, other); err == nil {
		t.Error("LoadStore attached a bundle to a foreign collection")
	}
}

// TestLoadStoreGarbage: junk input fails cleanly with a format error.
func TestLoadStoreGarbage(t *testing.T) {
	c := twoBurstCollection(t)
	for _, in := range []string{"", "short", "not a bundle or a snapshot at all"} {
		if _, err := LoadStore(strings.NewReader(in), c); err == nil {
			t.Errorf("LoadStore accepted %q", in)
		}
	}
}

// TestKindJSON: the Kind JSON codec speaks the /v1 wire names.
func TestKindJSON(t *testing.T) {
	for kind, name := range map[Kind]string{
		KindAny: `"any"`, KindRegional: `"regional"`,
		KindCombinatorial: `"combinatorial"`, KindTemporal: `"temporal"`,
	} {
		b, err := json.Marshal(kind)
		if err != nil || string(b) != name {
			t.Errorf("Marshal(%v) = %s, %v; want %s", kind, b, err, name)
		}
		var back Kind
		if err := json.Unmarshal([]byte(name), &back); err != nil || back != kind {
			t.Errorf("Unmarshal(%s) = %v, %v; want %v", name, back, err, kind)
		}
	}
	if _, err := json.Marshal(Kind(99)); err == nil {
		t.Error("Marshal accepted an unknown kind")
	}
	var k Kind
	for _, bad := range []string{`"nope"`, `7`, `{}`} {
		if err := json.Unmarshal([]byte(bad), &k); err == nil {
			t.Errorf("Unmarshal accepted %s", bad)
		}
	}
	// An absent kind field decodes to KindAny.
	var q Query
	if err := json.Unmarshal([]byte(`{"text":"x"}`), &q); err != nil || q.Kind != KindAny {
		t.Errorf("absent kind decoded to %v, %v; want KindAny", q.Kind, err)
	}
	// A query with a kind round-trips.
	out, err := json.Marshal(Query{Text: "x", Kind: KindTemporal})
	if err != nil || !strings.Contains(string(out), `"kind":"temporal"`) {
		t.Errorf("query marshal = %s, %v; want a kind field", out, err)
	}
}
