package stburst

import (
	"context"
	"fmt"
	"math"

	"stburst/internal/search"
)

// Timespan is an inclusive timeframe [Start, End] on the collection's
// discrete timeline, the temporal half of every mined pattern.
type Timespan struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Overlaps reports whether the inclusive timeframe [start, end]
// intersects the span.
func (ts Timespan) Overlaps(start, end int) bool {
	return start <= ts.End && ts.Start <= end
}

// Query is a structured spatiotemporal search request, the first-class
// way to ask the §5 retrieval model for "bursty documents about X, in
// this region, during this timeframe".
//
// Exactly one of Text (free text, tokenized with the collection's
// pipeline) or Terms (pre-normalized query terms) must be set. Kind
// selects which burstiness model answers: a concrete kind routes the
// query to that pattern index, and KindAny (the zero value, so an
// absent kind in JSON) makes Store.Query fan out to every resident
// index and merge the hits; single-index surfaces (Engine.Run,
// PatternIndex.Query) accept KindAny and their own kind only. Region and
// Time restrict the hits to documents with a contributing pattern — a
// pattern of some query term that overlaps the document — intersecting
// the rectangle and/or timeframe: regional windows intersect through
// their rectangle, combinatorial patterns through their member streams'
// locations, and temporal intervals (mined on the merged stream,
// deliberately geography-free) span the whole map. MinScore drops hits
// scoring below the threshold, and Offset/K page through the ranked list.
//
// The zero K asks for DefaultK results.
type Query struct {
	Text     string    `json:"text,omitempty"`
	Terms    []string  `json:"terms,omitempty"`
	Kind     Kind      `json:"kind,omitempty"`
	Region   *Rect     `json:"region,omitempty"`
	Time     *Timespan `json:"time,omitempty"`
	K        int       `json:"k,omitempty"`
	Offset   int       `json:"offset,omitempty"`
	MinScore float64   `json:"min_score,omitempty"`
}

// DefaultK is the page size used when Query.K is zero.
const DefaultK = 10

// MaxK bounds Query.K and Query.Offset. Queries are an unauthenticated
// surface through cmd/stserve, and both values size retrieval work —
// without a ceiling a single request could demand a multi-gigabyte page.
const MaxK = 1 << 20

// Validate checks the query's shape: exactly one of Text or Terms set,
// K and Offset in [0, MaxK], a finite MinScore, a non-inverted Region
// (zero-area rectangles are valid: Rect is closed, so a degenerate
// rectangle still intersects patterns containing that point) and a
// non-inverted Time. It does not consult any collection — unknown terms
// are not an error, they simply match nothing (Eq. 10).
func (q Query) Validate() error {
	hasText := q.Text != ""
	hasTerms := len(q.Terms) > 0
	switch {
	case !hasText && !hasTerms:
		return fmt.Errorf("stburst: query needs Text or Terms")
	case hasText && hasTerms:
		return fmt.Errorf("stburst: query must set exactly one of Text or Terms")
	}
	if _, ok := q.Kind.patternKind(); !ok && q.Kind != KindAny {
		return fmt.Errorf("stburst: query Kind %d is not a pattern kind", int(q.Kind))
	}
	if q.K < 0 || q.K > MaxK {
		return fmt.Errorf("stburst: query K must be in [0, %d], got %d", MaxK, q.K)
	}
	if q.Offset < 0 || q.Offset > MaxK {
		return fmt.Errorf("stburst: query Offset must be in [0, %d], got %d", MaxK, q.Offset)
	}
	if math.IsNaN(q.MinScore) || math.IsInf(q.MinScore, 0) {
		return fmt.Errorf("stburst: query MinScore must be finite")
	}
	if r := q.Region; r != nil && (r.MinX > r.MaxX || r.MinY > r.MaxY) {
		return fmt.Errorf("stburst: query Region is inverted: %v", *r)
	}
	if t := q.Time; t != nil && t.Start > t.End {
		return fmt.Errorf("stburst: query Time is inverted: [%d, %d]", t.Start, t.End)
	}
	return nil
}

// k returns the effective page size.
func (q Query) k() int {
	if q.K == 0 {
		return DefaultK
	}
	return q.K
}

// ResultPage is one window of a ranked result list.
type ResultPage struct {
	// Hits holds the hits [Offset, Offset+K) of the filtered ranked list;
	// nil when the page is past the end of the results.
	Hits []Hit
	// More reports whether hits beyond this page exist.
	More bool
}

// Run executes a structured query against the engine's mined patterns:
// Threshold-Algorithm top-k retrieval, the spatiotemporal pattern-overlap
// post-filter for Region/Time, MinScore thresholding and Offset/K
// pagination. The context is checked between retrieval rounds, so long
// queries are cancellable; a cancelled context returns ctx.Err(). A
// query term absent from every pattern yields an empty page, not an
// error. Plain Search(query, k) is a thin wrapper over Run.
//
// An Engine answers for one pattern kind: Query.Kind must be KindAny or
// the engine's own kind. Asking a single-kind engine for a different
// kind is a caller error, not an empty result — use Store.Query to
// route across kinds.
func (e *Engine) Run(ctx context.Context, q Query) (ResultPage, error) {
	if err := q.Validate(); err != nil {
		return ResultPage{}, err
	}
	if q.Kind != KindAny && q.Kind != e.kind {
		return ResultPage{}, fmt.Errorf("stburst: query asks for %v patterns but the engine serves %v (route multi-kind queries through a Store)", q.Kind, e.kind)
	}
	sq := search.Query{K: q.k(), Offset: q.Offset, MinScore: q.MinScore}
	if q.Region != nil {
		r := *q.Region
		sq.Region = &r
	}
	if q.Time != nil {
		sq.Span = &search.Timespan{Start: q.Time.Start, End: q.Time.End}
	}
	if len(q.Terms) > 0 {
		ids, ok := e.resolveTerms(q.Terms)
		if !ok {
			return ResultPage{}, nil // some term matches nothing: Eq. 10
		}
		sq.Terms = ids
	} else {
		sq.Text = q.Text
	}
	page, err := e.eng.Run(ctx, sq)
	if err != nil {
		return ResultPage{}, err
	}
	if len(page.Results) == 0 {
		return ResultPage{More: page.More}, nil
	}
	hits := make([]Hit, len(page.Results))
	for i, r := range page.Results {
		d := e.c.Doc(r.Doc)
		hits[i] = Hit{Doc: d, Score: r.Score, Stream: e.c.Stream(d.Stream).Name, Kind: e.kind}
	}
	return ResultPage{Hits: hits, More: page.More}, nil
}

// resolveTerms normalizes pre-split query terms through the collection's
// tokenizer (a multi-word entry contributes every token) and interns
// them. It reports false when any entry resolves to a term the
// collection has never seen, or when nothing survives tokenization —
// under Eq. 10 such a query retrieves nothing.
func (e *Engine) resolveTerms(terms []string) ([]int, bool) {
	var ids []int
	for _, t := range terms {
		for _, tok := range e.c.tok.Tokenize(t) {
			id, ok := e.c.col.Dict().Lookup(tok)
			if !ok {
				return nil, false
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, false
	}
	return ids, true
}

// Query executes a structured query against the stored patterns, building
// the cached engine on first use. See Engine.Run.
func (ix *PatternIndex) Query(ctx context.Context, q Query) (ResultPage, error) {
	return ix.Engine().Run(ctx, q)
}
