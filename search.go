package stburst

import (
	"stburst/internal/core"
	"stburst/internal/search"
)

// Hit is one retrieved document with its aggregate score (Eq. 10 of the
// paper: Σ_t relevance × burstiness).
type Hit struct {
	Doc    Document
	Score  float64
	Stream string // name of the originating stream
}

// Engine is a bursty-document search engine (§5 of the paper): it
// retrieves documents that are both relevant to the query and inside
// mined spatiotemporal burstiness patterns. Build one engine per pattern
// type with NewRegionalEngine, NewCombinatorialEngine or
// NewTemporalEngine.
type Engine struct {
	c   *Collection
	eng *search.Engine
}

// NewRegionalEngine builds a search engine over STLocal regional
// patterns, mining every term of the collection. A nil opts uses the
// paper's defaults.
func NewRegionalEngine(c *Collection, opts *RegionalOptions) *Engine {
	windows := search.MineWindows(c.col, opts.coreOptions())
	return &Engine{c: c, eng: search.Build(c.col, search.WindowBurstiness(windows))}
}

// NewCombinatorialEngine builds a search engine over STComb combinatorial
// patterns, mining every term of the collection. A nil opts uses the
// paper's defaults.
func NewCombinatorialEngine(c *Collection, opts *CombinatorialOptions) *Engine {
	patterns := search.MineCombPatterns(c.col, opts.coreOptions())
	return &Engine{c: c, eng: search.Build(c.col, search.CombBurstiness(patterns))}
}

// NewTemporalEngine builds the temporal-only comparison engine (the TB
// system of §6.3): burstiness is mined on the merged stream and the
// documents' origins are disregarded.
func NewTemporalEngine(c *Collection) *Engine {
	temporal := search.MineTemporal(c.col, nil)
	return &Engine{c: c, eng: search.Build(c.col, search.TemporalBurstiness(temporal))}
}

// Search retrieves the top-k documents for a free-text query. Documents
// must overlap a burstiness pattern of every query term (Eq. 10/11).
func (e *Engine) Search(query string, k int) []Hit {
	rs := e.eng.Query(query, k)
	out := make([]Hit, len(rs))
	for i, r := range rs {
		d := e.c.Doc(r.Doc)
		out[i] = Hit{Doc: d, Score: r.Score, Stream: e.c.Stream(d.Stream).Name}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Best returns the highest-scoring regional pattern of a slice, if any.
func Best(ws []RegionalPattern) (RegionalPattern, bool) { return core.BestWindow(ws) }
