package stburst

import (
	"context"

	"stburst/internal/core"
	"stburst/internal/search"
)

// Hit is one retrieved document with its aggregate score (Eq. 10 of the
// paper: Σ_t relevance × burstiness). Kind attributes the hit to the
// burstiness model that retrieved it — under a KindAny fan-out through
// Store.Query, the same document can appear once per resident kind,
// each appearance scored by that kind's patterns.
type Hit struct {
	Doc    Document
	Score  float64
	Stream string // name of the originating stream
	Kind   Kind   // pattern kind that scored the hit
}

// Engine is a bursty-document search engine (§5 of the paper): it
// retrieves documents that are both relevant to the query and inside
// mined spatiotemporal burstiness patterns. Build one with
// Collection.Mine (or the MineAll* batch miners) and PatternIndex.Engine;
// structured queries — including Region/Time filters, pagination and
// score thresholds — go through Run, and Search remains the free-text
// convenience wrapper.
type Engine struct {
	c    *Collection
	eng  *search.Engine
	kind Kind // the concrete pattern kind the engine serves
}

// NewRegionalEngine builds a search engine over STLocal regional
// patterns, mining every term of the collection in parallel (one worker
// per CPU; the output is identical to the sequential loop). A nil opts
// uses the paper's defaults.
//
// Deprecated: use Collection.Mine with KindRegional — it is cancellable,
// reports errors, and returns the PatternIndex so the mined patterns can
// be reused and saved; its Engine method (or PatternIndex.Query) answers
// searches. NewRegionalEngine mines with a background context and
// discards the index.
func NewRegionalEngine(c *Collection, opts *RegionalOptions) *Engine {
	return c.MineAllRegional(opts, 0).Engine()
}

// NewCombinatorialEngine builds a search engine over STComb combinatorial
// patterns, mining every term of the collection in parallel. A nil opts
// uses the paper's defaults.
//
// Deprecated: use Collection.Mine with KindCombinatorial. See
// NewRegionalEngine for the rationale.
func NewCombinatorialEngine(c *Collection, opts *CombinatorialOptions) *Engine {
	return c.MineAllCombinatorial(opts, 0).Engine()
}

// NewTemporalEngine builds the temporal-only comparison engine (the TB
// system of §6.3): burstiness is mined on the merged stream, in parallel,
// and the documents' origins are disregarded.
//
// Deprecated: use Collection.Mine with KindTemporal. See
// NewRegionalEngine for the rationale.
func NewTemporalEngine(c *Collection) *Engine {
	return c.MineAllTemporal(0).Engine()
}

// Search retrieves the top-k documents for a free-text query. Documents
// must overlap a burstiness pattern of every query term (Eq. 10/11). It
// is a thin wrapper over Run with no spatiotemporal filter; use Run for
// Region/Time restrictions, pagination and score thresholds.
func (e *Engine) Search(query string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	page, err := e.Run(context.Background(), Query{Text: query, K: k})
	if err != nil || len(page.Hits) == 0 {
		return nil
	}
	return page.Hits
}

// Best returns the highest-scoring regional pattern of a slice, if any.
func Best(ws []RegionalPattern) (RegionalPattern, bool) { return core.BestWindow(ws) }
