package stburst

import (
	"stburst/internal/core"
	"stburst/internal/search"
)

// Hit is one retrieved document with its aggregate score (Eq. 10 of the
// paper: Σ_t relevance × burstiness).
type Hit struct {
	Doc    Document
	Score  float64
	Stream string // name of the originating stream
}

// Engine is a bursty-document search engine (§5 of the paper): it
// retrieves documents that are both relevant to the query and inside
// mined spatiotemporal burstiness patterns. Build one engine per pattern
// type with NewRegionalEngine, NewCombinatorialEngine or
// NewTemporalEngine.
type Engine struct {
	c   *Collection
	eng *search.Engine
}

// NewRegionalEngine builds a search engine over STLocal regional
// patterns, mining every term of the collection in parallel (one worker
// per CPU; the output is identical to the sequential loop). A nil opts
// uses the paper's defaults. To reuse the mined patterns — or to answer
// repeated queries without rebuilding — mine once with MineAllRegional
// and use the returned PatternIndex instead.
func NewRegionalEngine(c *Collection, opts *RegionalOptions) *Engine {
	return c.MineAllRegional(opts, 0).Engine()
}

// NewCombinatorialEngine builds a search engine over STComb combinatorial
// patterns, mining every term of the collection in parallel. A nil opts
// uses the paper's defaults.
func NewCombinatorialEngine(c *Collection, opts *CombinatorialOptions) *Engine {
	return c.MineAllCombinatorial(opts, 0).Engine()
}

// NewTemporalEngine builds the temporal-only comparison engine (the TB
// system of §6.3): burstiness is mined on the merged stream, in parallel,
// and the documents' origins are disregarded.
func NewTemporalEngine(c *Collection) *Engine {
	return c.MineAllTemporal(0).Engine()
}

// Search retrieves the top-k documents for a free-text query. Documents
// must overlap a burstiness pattern of every query term (Eq. 10/11).
func (e *Engine) Search(query string, k int) []Hit {
	rs := e.eng.Query(query, k)
	out := make([]Hit, len(rs))
	for i, r := range rs {
		d := e.c.Doc(r.Doc)
		out[i] = Hit{Doc: d, Score: r.Score, Stream: e.c.Stream(d.Stream).Name}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Best returns the highest-scoring regional pattern of a slice, if any.
func Best(ws []RegionalPattern) (RegionalPattern, bool) { return core.BestWindow(ws) }
