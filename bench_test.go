package stburst

// One benchmark per table and figure of the paper's evaluation (§6).
// Each benchmark regenerates the corresponding result through the shared
// experiment harness (internal/exp) and reports it with b.Log, so
// `go test -bench=. -benchmem` both times the experiments and prints the
// reproduced rows. Scales are reduced from the paper's (181×48 corpus at
// a lower article rate, shortened Fig. 8 sweep) so the full suite runs in
// minutes; cmd/stbench exposes the full-scale runs.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"stburst/internal/core"
	"stburst/internal/exp"
	"stburst/internal/gen"
	"stburst/internal/index"
	"stburst/internal/search"
	"stburst/internal/textproc"
)

var (
	labOnce  sync.Once
	benchLab *exp.Lab
	labErr   error
)

// sharedLab builds one small Topix-like corpus (plus all three mined
// pattern sets) for every corpus-based benchmark.
func sharedLab(b *testing.B) *exp.Lab {
	b.Helper()
	labOnce.Do(func() {
		benchLab, labErr = exp.NewLab(gen.TopixConfig{Seed: 1, WeeklyArticles: 3, Vocab: 2500})
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return benchLab
}

// BenchmarkMineAllRegional measures the corpus-wide STLocal batch miner
// at worker counts 1 (the sequential loop) and GOMAXPROCS, on the shared
// multi-term synthetic corpus. The parent benchmark logs the measured
// sequential-vs-parallel speedup; output is bit-identical at every count.
func BenchmarkMineAllRegional(b *testing.B) {
	col := sharedLab(b).Col()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				search.MineWindowsPar(col, core.STLocalOptions{}, workers)
			}
		})
	}
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			search.MineWindowsPar(col, core.STLocalOptions{}, 1)
			seq := time.Since(t0)
			t1 := time.Now()
			search.MineWindowsPar(col, core.STLocalOptions{}, 0)
			par := time.Since(t1)
			b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
			b.Logf("STLocal MineAll: sequential %v, %d workers %v (speedup %.2fx, %d terms)",
				seq.Round(time.Millisecond), runtime.GOMAXPROCS(0), par.Round(time.Millisecond),
				seq.Seconds()/par.Seconds(), len(col.Terms()))
		}
	})
}

// BenchmarkMineAllCombinatorial is the STComb counterpart of
// BenchmarkMineAllRegional.
func BenchmarkMineAllCombinatorial(b *testing.B) {
	col := sharedLab(b).Col()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				search.MineCombPatternsPar(col, core.STCombOptions{}, workers)
			}
		})
	}
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			search.MineCombPatternsPar(col, core.STCombOptions{}, 1)
			seq := time.Since(t0)
			t1 := time.Now()
			search.MineCombPatternsPar(col, core.STCombOptions{}, 0)
			par := time.Since(t1)
			b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
			b.Logf("STComb MineAll: sequential %v, %d workers %v (speedup %.2fx)",
				seq.Round(time.Millisecond), runtime.GOMAXPROCS(0), par.Round(time.Millisecond),
				seq.Seconds()/par.Seconds())
		}
	})
}

// queryBenchSetup builds one pattern-set-backed STLocal engine over the
// shared corpus and deterministically picks a reference term and window
// (the lowest interned bursty term's top window), so the filtered and
// unfiltered query benchmarks exercise the same index and query.
func queryBenchSetup(b *testing.B) (*search.Engine, string, core.Window) {
	b.Helper()
	lab := sharedLab(b)
	eng := search.BuildFromPatterns(lab.Col(), index.NewWindowSet(lab.Windows))
	terms := make([]int, 0, len(lab.Windows))
	for t := range lab.Windows {
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		b.Fatal("no bursty terms in the benchmark corpus")
	}
	sort.Ints(terms)
	term := terms[0]
	return eng, lab.Col().Dict().Term(term), lab.Windows[term][0]
}

// BenchmarkQueryUnfiltered measures plain structured top-k retrieval, the
// baseline for the overlap filter's overhead.
func BenchmarkQueryUnfiltered(b *testing.B) {
	eng, term, _ := queryBenchSetup(b)
	q := search.Query{Text: term, K: 10}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryFiltered measures the same retrieval through the
// spatiotemporal pattern-overlap post-filter (region and timespan pinned
// to the reference window), so the filter's overhead is tracked release
// over release.
func BenchmarkQueryFiltered(b *testing.B) {
	eng, term, w := queryBenchSetup(b)
	q := search.Query{
		Text:   term,
		K:      10,
		Region: &w.Rect,
		Span:   &search.Timespan{Start: w.Start, End: w.End},
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// storeBenchSetup wraps the shared lab's three mined pattern maps into a
// public multi-kind store with warmed engines, plus a reference query
// term (the lowest interned bursty term, as in queryBenchSetup).
func storeBenchSetup(b *testing.B) (*Store, string) {
	b.Helper()
	lab := sharedLab(b)
	c := &Collection{col: lab.Col(), tok: textproc.NewTokenizer()}
	store := NewStore(c)
	if err := store.Replace(
		&PatternIndex{c: c, set: index.NewWindowSet(lab.Windows)},
		&PatternIndex{c: c, set: index.NewCombSet(lab.Combs)},
		&PatternIndex{c: c, set: index.NewTemporalSet(lab.Temporal)},
	); err != nil {
		b.Fatal(err)
	}
	terms := make([]int, 0, len(lab.Windows))
	for t := range lab.Windows {
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		b.Fatal("no bursty terms in the benchmark corpus")
	}
	sort.Ints(terms)
	for _, k := range Kinds() {
		store.Index(k).Engine() // build outside the timed loop
	}
	return store, lab.Col().Dict().Term(terms[0])
}

// BenchmarkStoreQuerySingleKind measures a concrete-kind query routed
// through the store — the per-request cost of the multi-kind dispatch
// over querying the index directly.
func BenchmarkStoreQuerySingleKind(b *testing.B) {
	store, term := storeBenchSetup(b)
	q := Query{Text: term, Kind: KindRegional, K: 10}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreQueryAny measures the KindAny fan-out: three per-kind
// retrievals plus the merge, the price of comparing all burstiness
// models in one request.
func BenchmarkStoreQueryAny(b *testing.B) {
	store, term := storeBenchSetup(b)
	q := Query{Text: term, K: 10}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineStore compares the one-pass three-kind miner against the
// three single-kind passes it replaces, on the shared corpus. The
// one-pass variant drains a single (term, kind) work list, so its
// wall-clock should approach the sum of the per-kind costs divided by
// the worker count, without three separate pool ramp-downs.
func BenchmarkMineStore(b *testing.B) {
	lab := sharedLab(b)
	c := &Collection{col: lab.Col(), tok: textproc.NewTokenizer()}
	ctx := context.Background()
	b.Run("onepass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.MineStore(ctx, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("threepasses", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, kind := range Kinds() {
				if _, err := c.Mine(ctx, kind, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// ingestBenchCollection builds a deterministic mid-sized corpus for the
// live-ingestion benchmarks: enough vocabulary that a realistic arrival
// batch dirties well under 5% of the terms, which is exactly the regime
// where incremental re-mining should beat a full re-mine.
func ingestBenchCollection(b *testing.B) *Collection {
	b.Helper()
	const streams, weeks, vocab = 12, 30, 600
	infos := make([]StreamInfo, streams)
	for i := range infos {
		infos[i] = StreamInfo{Name: fmt.Sprintf("s%02d", i), Location: Point{X: float64(i % 4), Y: float64(i / 4)}}
	}
	c := NewCollection(infos, weeks)
	rng := rand.New(rand.NewSource(7))
	for w := 0; w < weeks; w++ {
		for s := 0; s < streams; s++ {
			for d := 0; d < 2; d++ {
				toks := make([]string, 6)
				for i := range toks {
					toks[i] = fmt.Sprintf("term%04d", rng.Intn(vocab))
				}
				if _, err := c.AddTokens(s, w, toks); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return c
}

// ingestBenchBatch is the arrival batch: a handful of documents over a
// small fixed vocabulary slice (a few existing terms plus new ones), so
// the dirty set stays far below 5% of the corpus vocabulary.
func ingestBenchBatch() []IncomingDocument {
	docs := make([]IncomingDocument, 6)
	for i := range docs {
		docs[i] = IncomingDocument{
			Stream: i % 12,
			Time:   20 + i,
			Tokens: []string{
				fmt.Sprintf("term%04d", i),       // existing term goes dirty
				fmt.Sprintf("breaking%02d", i%4), // new vocabulary
				fmt.Sprintf("breaking%02d", i%4),
				"alert",
			},
		}
	}
	return docs
}

// BenchmarkIngestIncremental measures the live write path: one Ingest
// call — append, dirty-term re-mine across all three resident kinds,
// engine warm-up and the atomic install — against a store freshly mined
// outside the timed region.
func BenchmarkIngestIncremental(b *testing.B) {
	ctx := context.Background()
	batch := ingestBenchBatch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := ingestBenchCollection(b)
		s, err := c.MineStore(ctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := s.Ingest(ctx, batch)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("batch dirties %d of %d terms (%.1f%%)",
				res.DirtyTerms, len(c.Terms()), 100*float64(res.DirtyTerms)/float64(len(c.Terms())))
		}
	}
}

// BenchmarkIngestFullRemine is the cold path the incremental ingest
// replaces: append the same batch, then re-mine the entire vocabulary
// from scratch and warm the engines — what a pre-ingest deployment had
// to do (stmine + reload) to fold new documents in.
func BenchmarkIngestFullRemine(b *testing.B) {
	ctx := context.Background()
	batch := ingestBenchBatch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := ingestBenchCollection(b)
		if _, err := c.MineStore(ctx, nil); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.Append(ctx, batch); err != nil {
			b.Fatal(err)
		}
		s, err := c.MineStore(ctx, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, kind := range Kinds() {
			s.Index(kind).Engine()
		}
	}
}

func BenchmarkTable1TopPatterns(b *testing.B) {
	lab := sharedLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []exp.Table1Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table1(lab)
	}
	b.StopTimer()
	b.Log("\n" + exp.FormatTable1(rows))
}

func BenchmarkFig4Timeframes(b *testing.B) {
	lab := sharedLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []exp.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig4(lab)
	}
	b.StopTimer()
	b.Log("\n" + exp.FormatFig4(rows))
}

func BenchmarkTable2PatternRetrieval(b *testing.B) {
	cfg := exp.Table2Config{Streams: 40, Timeline: 80, Terms: 200, Patterns: 30}
	b.ReportAllocs()
	b.ResetTimer()
	var rows []exp.Table2Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table2(cfg)
	}
	b.StopTimer()
	b.Log("\n" + exp.FormatTable2(rows))
}

func BenchmarkTable3Precision(b *testing.B) {
	lab := sharedLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res exp.Table3Result
	for i := 0; i < b.N; i++ {
		res = exp.Table3(lab, 10)
	}
	b.StopTimer()
	b.Log("\n" + exp.FormatTable3(res))
}

func BenchmarkFig5RectangleDistribution(b *testing.B) {
	lab := sharedLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res exp.Fig5Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig5(lab)
	}
	b.StopTimer()
	b.Log("\n" + exp.FormatFig5(res))
}

func BenchmarkFig6OpenWindows(b *testing.B) {
	lab := sharedLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res exp.Fig6Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig6(lab)
	}
	b.StopTimer()
	b.Logf("\npeak open windows per term: %.2f (upper bound at last timestamp: %d)",
		res.Peak, res.UpperBound[len(res.UpperBound)-1])
}

func BenchmarkFig7PerTimestampTime(b *testing.B) {
	lab := sharedLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res exp.Fig7Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig7(lab, 40)
	}
	b.StopTimer()
	last := len(res.Timestamps) - 1
	b.Logf("\nSTLocal %.4f ms/term vs STComb %.4f ms/term at final timestamp (%d terms sampled)",
		res.STLocalMs[last], res.STCombMs[last], res.TermSample)
}

func BenchmarkFig8Scalability(b *testing.B) {
	cfg := exp.Fig8Config{Sizes: []int{500, 1000, 2000}, TermCount: 2, Timeline: 120}
	b.ReportAllocs()
	b.ResetTimer()
	var rows []exp.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig8(cfg)
	}
	b.StopTimer()
	b.Log("\n" + exp.FormatFig8(rows))
}

func BenchmarkFig9WeibullCurves(b *testing.B) {
	b.ReportAllocs()
	var rows []exp.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig9()
	}
	b.StopTimer()
	b.Log("\n" + exp.FormatFig9(rows))
}
