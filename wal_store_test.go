package stburst

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stburst/internal/search"
	"stburst/internal/wal"
)

// This file tests crash recovery end to end at the Store level: ingest
// through an attached write-ahead log, "crash" (abandon the process
// state), reboot through OpenWAL → ReplayWAL → MineStore/LoadStore →
// AttachWAL, and assert the recovered store is bit-identical to the
// pre-crash one — collection checksum, per-kind index fingerprints and
// generation. The byte-level torn-tail and corruption sweeps live in
// internal/wal; here the oracle is a live store that never crashed.

func mustMineStore(t *testing.T, c *Collection, opts *MineOptions) *Store {
	t.Helper()
	s, err := c.MineStore(context.Background(), opts)
	if err != nil {
		t.Fatalf("MineStore: %v", err)
	}
	return s
}

func mustOpenWAL(t *testing.T, dir string, opts ...WALOption) *WAL {
	t.Helper()
	w, err := OpenWAL(dir, opts...)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", dir, err)
	}
	return w
}

func mustAttachWAL(t *testing.T, s *Store, w *WAL) AttachResult {
	t.Helper()
	res, err := s.AttachWAL(context.Background(), w)
	if err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	return res
}

func mustIngest(t *testing.T, s *Store, docs []IncomingDocument) IngestResult {
	t.Helper()
	res, err := s.Ingest(context.Background(), docs)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return res
}

// storeState is the identity of a store for recovery assertions: what
// must survive a crash bit-for-bit.
type storeState struct {
	sum  string
	gen  uint64
	fps  map[string]string // kind name -> fingerprint
	docs int
}

func captureState(s *Store) storeState {
	st := storeState{
		sum:  s.Collection().Checksum(),
		gen:  s.Generation(),
		fps:  map[string]string{},
		docs: s.Collection().NumDocs(),
	}
	for _, ix := range s.Resident() {
		st.fps[ix.Kind()] = ix.Fingerprint()
	}
	return st
}

func assertState(t *testing.T, label string, s *Store, want storeState) {
	t.Helper()
	got := captureState(s)
	if got.docs != want.docs {
		t.Errorf("%s: NumDocs = %d, want %d", label, got.docs, want.docs)
	}
	if got.sum != want.sum {
		t.Errorf("%s: collection checksum diverged from the oracle", label)
	}
	if got.gen != want.gen {
		t.Errorf("%s: generation = %d, want %d", label, got.gen, want.gen)
	}
	if len(got.fps) != len(want.fps) {
		t.Errorf("%s: %d resident kinds, want %d", label, len(got.fps), len(want.fps))
	}
	for kind, fp := range want.fps {
		if got.fps[kind] != fp {
			t.Errorf("%s: %s fingerprint diverged from the oracle", label, kind)
		}
	}
}

// secondBatch has no term overlap with liveBatch, so its dirty-term
// count is exactly its own distinct vocabulary.
func secondBatch() []IncomingDocument {
	return []IncomingDocument{
		{Stream: 1, Time: 15, Text: "tsunami warning coastal sirens"},
		{Stream: 2, Time: 15, Text: "tsunami evacuation routes crowded"},
	}
}

// TestWALRecoveryMatchesLiveStore is the basic crash round trip: two
// logged ingests, kill, reboot through replay + full re-mine + attach.
// The recovered store must equal the live one on every axis, and must
// keep ingesting on the recovered log without a sequence anomaly.
func TestWALRecoveryMatchesLiveStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	c1 := twoBurstCollection(t)
	s1 := mustMineStore(t, c1, nil)
	w1 := mustOpenWAL(t, dir)
	att1 := mustAttachWAL(t, s1, w1)
	if att1.Batches != 0 || att1.DirtyTerms != 0 {
		t.Fatalf("fresh-log attach = %+v, want nothing replayed", att1)
	}
	mustIngest(t, s1, liveBatch())
	mustIngest(t, s1, secondBatch())
	want := captureState(s1)
	// Crash: the WAL is deliberately not closed.

	c2 := twoBurstCollection(t)
	w2 := mustOpenWAL(t, dir)
	rep, err := c2.ReplayWAL(ctx, w2)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rep.Batches != 2 || rep.Docs != 5 {
		t.Fatalf("ReplayWAL = %+v, want 2 batches, 5 docs", rep)
	}
	s2 := mustMineStore(t, c2, nil)
	att2 := mustAttachWAL(t, s2, w2)
	if att2.Generation != want.gen {
		t.Errorf("AttachWAL restored generation %d, want %d", att2.Generation, want.gen)
	}
	assertState(t, "recovered store", s2, want)

	// The recovered log keeps accepting ingests, and a second recovery
	// sees a gap-free sequence.
	mustIngest(t, s2, []IncomingDocument{{Stream: 0, Time: 15, Text: "aftershocks rattle harbor"}})
	if w2.LastSeq() != 3 {
		t.Fatalf("LastSeq after post-recovery ingest = %d, want 3", w2.LastSeq())
	}
	c3 := twoBurstCollection(t)
	w3 := mustOpenWAL(t, dir)
	if rep3, err := c3.ReplayWAL(ctx, w3); err != nil || rep3.Batches != 3 {
		t.Fatalf("second recovery: ReplayWAL = %+v, %v, want 3 batches", rep3, err)
	}
	_ = w3.Close()
	_ = w2.Close()
}

// TestWALRecoveryAfterSaveSkipsMinedBatches covers the interaction
// between Store.Save and replay: the save rotates the log (bounding the
// active segment) and persists the generation, so a reboot that loads
// the bundle must re-mine ONLY the batches logged at or after the
// bundle's generation — the earlier ones are already mined into it.
func TestWALRecoveryAfterSaveSkipsMinedBatches(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	bundle := filepath.Join(t.TempDir(), "store.bundle")

	c1 := twoBurstCollection(t)
	s1 := mustMineStore(t, c1, nil)
	w1 := mustOpenWAL(t, dir)
	mustAttachWAL(t, s1, w1)
	mustIngest(t, s1, liveBatch())
	if err := s1.SaveFile(bundle); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	st, ok := s1.WALStats()
	if !ok {
		t.Fatal("WALStats: no wal attached")
	}
	if st.Segments != 2 || st.Batches != 1 {
		t.Fatalf("after save: WALStats = %+v, want the save to have rotated to 2 segments around 1 batch", st)
	}
	res2 := mustIngest(t, s1, secondBatch())
	want := captureState(s1)
	// Crash.

	c2 := twoBurstCollection(t)
	w2 := mustOpenWAL(t, dir)
	rep, err := c2.ReplayWAL(ctx, w2)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rep.Batches != 2 || rep.Docs != 5 {
		t.Fatalf("ReplayWAL = %+v, want both batches re-appended", rep)
	}
	f, err := os.Open(bundle)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadStore(f, c2)
	f.Close()
	if err != nil {
		t.Fatalf("LoadStore after replay: %v", err)
	}
	minedBefore := search.TermsMined()
	att, err := s2.AttachWAL(ctx, w2)
	if err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	// Batch 1 predates the bundle's generation: only batch 2's terms
	// may be re-mined, once per resident kind.
	if att.DirtyTerms != res2.DirtyTerms {
		t.Errorf("attach re-mined %d terms, want only the post-save batch's %d", att.DirtyTerms, res2.DirtyTerms)
	}
	if delta, wantMined := search.TermsMined()-minedBefore, int64(res2.DirtyTerms)*3; delta != wantMined {
		t.Errorf("attach mined %d (term, kind) pairs, want %d", delta, wantMined)
	}
	assertState(t, "bundle-loaded recovery", s2, want)
	_ = w2.Close()
}

// TestWALHealsIncompleteIngest is the satellite-1 regression: an ingest
// that aborts AFTER the append (ErrIngestIncomplete) leaves its WAL
// entry intact, so a crash in the half-finished state — batch appended,
// index refresh still owed — heals on replay: the recovered store
// equals an oracle whose ingest completed normally.
func TestWALHealsIncompleteIngest(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	c1 := twoBurstCollection(t)
	s1 := mustMineStore(t, c1, nil)
	w1 := mustOpenWAL(t, dir)
	mustAttachWAL(t, s1, w1)
	tctx := &trippingContext{Context: context.Background(), after: 1}
	_, err := s1.Ingest(tctx, liveBatch())
	if !errors.Is(err, ErrIngestIncomplete) {
		t.Fatalf("tripped Ingest error = %v, want ErrIngestIncomplete", err)
	}
	// The abort must NOT have rolled the logged frame back: it is the
	// durable copy of documents that are already in the collection.
	if st, _ := s1.WALStats(); st.Batches != 1 || st.LastSeq != 1 {
		t.Fatalf("after aborted refresh: WALStats = %+v, want the batch still logged", st)
	}
	// Crash now, before any repair flush runs.

	oc := twoBurstCollection(t)
	os1 := mustMineStore(t, oc, nil)
	if _, err := os1.Ingest(ctx, liveBatch()); err != nil {
		t.Fatalf("oracle Ingest: %v", err)
	}
	want := captureState(os1)

	c2 := twoBurstCollection(t)
	w2 := mustOpenWAL(t, dir)
	rep, err := c2.ReplayWAL(ctx, w2)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rep.Batches != 1 || rep.Docs != 3 {
		t.Fatalf("ReplayWAL = %+v, want the aborted ingest's batch", rep)
	}
	s2 := mustMineStore(t, c2, nil)
	att := mustAttachWAL(t, s2, w2)
	if att.DirtyTerms == 0 {
		t.Error("attach re-mined nothing; the healed batch's terms should be dirty")
	}
	assertState(t, "healed store", s2, want)
	_ = w2.Close()
}

// TestWALCrashRecoverySweep is the randomized crash-recovery property
// test: a seeded schedule of ingest batches over all three pattern
// kinds with non-default EWMA regional options, then a kill at every
// frame boundary and at sampled mid-frame offsets of the log. For each
// cut the rebooted store must equal the synchronous oracle that stopped
// after exactly the batches the truncated log still holds.
func TestWALCrashRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery sweep is slow; skipped with -short")
	}
	ctx := context.Background()
	opts := NewMineOptions(WithRegional(&RegionalOptions{Baseline: BaselineEWMA, BaselineParam: 0.5}))
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"quake", "flood", "storm", "sirens", "levee", "ashfall"}
	schedule := make([][]IncomingDocument, 4)
	for i := range schedule {
		batch := make([]IncomingDocument, 1+rng.Intn(3))
		for j := range batch {
			words := make([]string, 3+rng.Intn(3))
			for k := range words {
				words[k] = vocab[rng.Intn(len(vocab))]
			}
			batch[j] = IncomingDocument{
				Stream: rng.Intn(4),
				Time:   13 + rng.Intn(3),
				Text:   strings.Join(words, " "),
			}
		}
		schedule[i] = batch
	}

	// Live run: ingest the schedule, recording the log's size after
	// every batch (the frame boundaries) and the store state each
	// boundary corresponds to — the oracle for every cut point.
	dir := t.TempDir()
	c1 := twoBurstCollection(t)
	s1 := mustMineStore(t, c1, opts)
	w1 := mustOpenWAL(t, dir)
	mustAttachWAL(t, s1, w1)
	boundaries := []int64{mustWALBytes(t, s1)} // segment header only
	oracle := []storeState{captureState(s1)}
	for _, batch := range schedule {
		mustIngest(t, s1, batch)
		boundaries = append(boundaries, mustWALBytes(t, s1))
		oracle = append(oracle, captureState(s1))
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.stwal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected exactly one segment file, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != boundaries[len(boundaries)-1] {
		t.Fatalf("segment is %d bytes, WALStats says %d", len(full), boundaries[len(boundaries)-1])
	}

	// Cut points: every frame boundary, its neighbors, and sampled
	// mid-frame offsets. (The exhaustive every-byte sweep runs at the
	// frame level in internal/wal; this one pays a full store boot per
	// cut.)
	cuts := map[int64]bool{0: true, 5: true}
	for _, b := range boundaries {
		cuts[b] = true
		if b > 0 {
			cuts[b-1] = true
		}
		cuts[b+1] = true
	}
	for off := int64(0); off < int64(len(full)); off += 5 {
		cuts[off] = true
	}
	for cut := range cuts {
		if cut > int64(len(full)) {
			delete(cuts, cut)
		}
	}

	// expected batches for a cut: frames wholly before it survive.
	expect := func(cut int64) int {
		n := 0
		for j := 1; j < len(boundaries); j++ {
			if boundaries[j] <= cut {
				n = j
			}
		}
		return n
	}

	name := filepath.Base(segs[0])
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		if !cuts[cut] {
			continue
		}
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, name), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j := expect(cut)
		w2, err := OpenWAL(cutDir)
		if err != nil {
			t.Fatalf("cut %d: OpenWAL: %v", cut, err)
		}
		c2 := twoBurstCollection(t)
		rep, err := c2.ReplayWAL(ctx, w2)
		if err != nil {
			t.Fatalf("cut %d: ReplayWAL: %v", cut, err)
		}
		if rep.Batches != j {
			t.Fatalf("cut %d: replayed %d batches, want %d", cut, rep.Batches, j)
		}
		s2 := mustMineStore(t, c2, opts)
		if _, err := s2.AttachWAL(ctx, w2); err != nil {
			t.Fatalf("cut %d: AttachWAL: %v", cut, err)
		}
		assertState(t, fmt.Sprintf("cut %d (%d batches)", cut, j), s2, oracle[j])
		if t.Failed() {
			t.Fatalf("cut %d diverged from the oracle", cut)
		}
		_ = w2.Close()
	}
}

func mustWALBytes(t *testing.T, s *Store) int64 {
	t.Helper()
	st, ok := s.WALStats()
	if !ok {
		t.Fatal("WALStats: no wal attached")
	}
	return st.Bytes
}

// TestWALIngestFaultInjection drives Store.Ingest through injected WAL
// failures: a write that dies mid-frame and an fsync that fails must
// both surface as plain retryable errors — store, collection and log
// untouched, frame rolled back — and the verbatim retry must succeed.
// A reboot afterwards sees exactly the acknowledged batches.
func TestWALIngestFaultInjection(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	errBoom := errors.New("boom")

	c1 := twoBurstCollection(t)
	s1 := mustMineStore(t, c1, nil)
	inj := &wal.Injector{}
	l, pending, err := wal.Open(dir, wal.Options{Injector: inj})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh log scanned %d batches", len(pending))
	}
	w := &WAL{l: l, pending: pending}
	mustAttachWAL(t, s1, w)
	clean := captureState(s1)

	// Write fault mid-frame: the error must be the injected one, not
	// ErrIngestIncomplete — nothing was applied, the batch may retry.
	inj.FailWritesAfter(20, errBoom)
	_, err = s1.Ingest(ctx, liveBatch())
	if !errors.Is(err, errBoom) {
		t.Fatalf("Ingest under write fault = %v, want errBoom", err)
	}
	if errors.Is(err, ErrIngestIncomplete) {
		t.Fatal("a failed WAL write must be pre-append, not ErrIngestIncomplete")
	}
	assertState(t, "store after failed WAL write", s1, clean)
	if st, _ := s1.WALStats(); st.Batches != 0 || st.LastSeq != 0 {
		t.Fatalf("torn frame not rolled back: WALStats = %+v", st)
	}

	// Verbatim retry succeeds once the fault clears.
	inj.Clear()
	mustIngest(t, s1, liveBatch())

	// Sync fault: acknowledged durability is impossible, so the ingest
	// must fail retryably too.
	inj.FailBeforeSync(errBoom)
	if _, err := s1.Ingest(ctx, secondBatch()); !errors.Is(err, errBoom) {
		t.Fatalf("Ingest under sync fault = %v, want errBoom", err)
	}
	inj.Clear()
	mustIngest(t, s1, secondBatch())
	want := captureState(s1)
	// Crash.

	c2 := twoBurstCollection(t)
	w2 := mustOpenWAL(t, dir)
	rep, err := c2.ReplayWAL(ctx, w2)
	if err != nil {
		t.Fatalf("ReplayWAL after injected faults: %v", err)
	}
	if rep.Batches != 2 {
		t.Fatalf("replayed %d batches, want the 2 acknowledged ones", rep.Batches)
	}
	s2 := mustMineStore(t, c2, nil)
	mustAttachWAL(t, s2, w2)
	assertState(t, "recovery after injected faults", s2, want)
	_ = w2.Close()
}

// TestWALReplayRejectsForeignCorpus: a frame's recorded base document
// count must match the collection, or the log belongs to a different
// corpus and replay must refuse rather than misnumber every document.
func TestWALReplayRejectsForeignCorpus(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c1 := twoBurstCollection(t)
	s1 := mustMineStore(t, c1, nil)
	w1 := mustOpenWAL(t, dir)
	mustAttachWAL(t, s1, w1)
	mustIngest(t, s1, liveBatch())
	// Crash; reboot against a corpus with extra documents.
	c2 := twoBurstCollection(t)
	applyBatch(t, c2, secondBatch())
	w2 := mustOpenWAL(t, dir)
	if _, err := c2.ReplayWAL(ctx, w2); err == nil || !strings.Contains(err.Error(), "different corpus") {
		t.Fatalf("ReplayWAL into a foreign corpus = %v, want a corpus-mismatch error", err)
	}
	_ = w2.Close()
}

// TestWALLifecycleGuards locks down the misuse errors of the replay /
// attach protocol: attach before replay, double replay, replay into one
// collection and attach to another, double attach, and a second log on
// an already-armed store.
func TestWALLifecycleGuards(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	{
		c := twoBurstCollection(t)
		s := mustMineStore(t, c, nil)
		w := mustOpenWAL(t, dir)
		mustAttachWAL(t, s, w)
		mustIngest(t, s, liveBatch())
	}

	c := twoBurstCollection(t)
	s := mustMineStore(t, c, nil)
	w := mustOpenWAL(t, dir)
	if _, err := s.AttachWAL(ctx, w); err == nil || !strings.Contains(err.Error(), "unreplayed") {
		t.Fatalf("attach before replay = %v, want an unreplayed-batches error", err)
	}
	if _, err := c.ReplayWAL(ctx, w); err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if _, err := c.ReplayWAL(ctx, w); err == nil {
		t.Fatal("second ReplayWAL succeeded, want an already-replayed error")
	}
	other := twoBurstCollection(t)
	otherStore := mustMineStore(t, other, nil)
	if _, err := otherStore.AttachWAL(ctx, w); err == nil || !strings.Contains(err.Error(), "different collection") {
		t.Fatalf("attach to a foreign store = %v, want a collection-mismatch error", err)
	}
	mustAttachWAL(t, s, w)
	if _, err := s.AttachWAL(ctx, w); err == nil {
		t.Fatal("second AttachWAL succeeded, want an already-attached error")
	}
	if _, err := c.ReplayWAL(ctx, w); err == nil {
		t.Fatal("ReplayWAL after attach succeeded, want an error")
	}
	w2 := mustOpenWAL(t, t.TempDir())
	if _, err := s.AttachWAL(ctx, w2); err == nil || !strings.Contains(err.Error(), "already has a wal") {
		t.Fatalf("second log on an armed store = %v, want an already-has-a-wal error", err)
	}
	_ = w2.Close()
	_ = w.Close()

	// Ingest on a closed log fails before the append: retryable, store
	// untouched.
	before := captureState(s)
	if _, err := s.Ingest(ctx, secondBatch()); err == nil || errors.Is(err, ErrIngestIncomplete) {
		t.Fatalf("Ingest on a closed wal = %v, want a plain pre-append error", err)
	}
	assertState(t, "store after ingest on closed wal", s, before)
}
