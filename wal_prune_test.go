package stburst

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stburst/internal/corpusio"
)

// This file tests save-time WAL pruning (WithWALPrune): a save absorbs
// the sealed batches' documents into the corpus file and deletes the
// sealed segments, and every reboot afterwards — including one from a
// crash between the absorb and the prune — recovers the store
// bit-identically from corpus + bundle + whatever the log still holds.

// writePruneCorpus writes a small topix corpus file mirroring the
// twoBurstCollection shape: four streams, a 16-week timeline, ambient
// vocabulary everywhere and two regional earthquake bursts.
func writePruneCorpus(t *testing.T) string {
	t.Helper()
	streams := []string{"Peru", "Chile", "Japan", "Australia"}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(corpusio.Header{Kind: "topix", Streams: streams, Timeline: 16}); err != nil {
		t.Fatal(err)
	}
	doc := func(stream string, week int, counts map[string]int) {
		t.Helper()
		if err := enc.Encode(corpusio.DocLine{Stream: stream, Time: week, Counts: counts}); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 16; w++ {
		for _, s := range streams {
			doc(s, w, map[string]int{"news": 2, "report": 1})
		}
	}
	for w := 4; w <= 6; w++ {
		doc("Peru", w, map[string]int{"earthquake": 4, "rescue": 2})
		doc("Chile", w, map[string]int{"earthquake": 3})
	}
	for w := 10; w <= 12; w++ {
		doc("Japan", w, map[string]int{"earthquake": 5, "tsunami": 2})
	}
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func loadCorpusFile(t *testing.T, path string) *Collection {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := LoadCorpus(f)
	if err != nil {
		t.Fatalf("LoadCorpus(%s): %v", path, err)
	}
	return c
}

func loadBundleStore(t *testing.T, path string, c *Collection) *Store {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := LoadStore(f, c)
	if err != nil {
		t.Fatalf("LoadStore(%s): %v", path, err)
	}
	return s
}

// copyDirFiles snapshots a directory's regular files into a fresh temp
// directory — the "crashed here" disk image for recovery scenarios.
func copyDirFiles(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// countDocLines returns the number of document lines (everything after
// the header) the corpus file holds.
func countDocLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n - 1
}

// TestWALPruneRecoversBitIdentically is the pruning round trip: two
// logged ingests, a pruning save (absorb + delete), and three reboots —
// from the pruned log, from a second pruned save, and from a log
// snapshot taken as if the process crashed between the absorb and the
// prune (both copies of the batches on disk). Every reboot must equal
// the live store bit-for-bit.
func TestWALPruneRecoversBitIdentically(t *testing.T) {
	ctx := context.Background()
	corpus := writePruneCorpus(t)
	walDir := t.TempDir()
	bundle := filepath.Join(t.TempDir(), "store.bundle")
	baseDocs := countDocLines(t, corpus)

	c1 := loadCorpusFile(t, corpus)
	s1 := mustMineStore(t, c1, nil)
	w1 := mustOpenWAL(t, walDir, WithWALPrune(corpus))
	mustAttachWAL(t, s1, w1)
	mustIngest(t, s1, liveBatch())
	mustIngest(t, s1, secondBatch())

	// Snapshot the log as a crash between absorb and prune would leave
	// it: both batches still on disk alongside the absorbed corpus.
	crashDir := copyDirFiles(t, walDir)

	if err := s1.SaveFile(bundle); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	want := captureState(s1)
	if st, _ := s1.WALStats(); st.Segments != 1 || st.Batches != 0 {
		t.Fatalf("after pruning save: WALStats = %+v, want only an empty fresh segment", st)
	}
	if got := countDocLines(t, corpus); got != baseDocs+5 {
		t.Fatalf("corpus holds %d docs after absorption, want %d", got, baseDocs+5)
	}

	// Reboot 1: the pruned log has nothing to replay; the absorbed
	// corpus plus the bundle carry the whole store.
	c2 := loadCorpusFile(t, corpus)
	w2 := mustOpenWAL(t, walDir, WithWALPrune(corpus))
	rep, err := c2.ReplayWAL(ctx, w2)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rep.Batches != 0 || rep.Skipped != 0 {
		t.Fatalf("ReplayWAL = %+v, want an empty replay", rep)
	}
	s2 := loadBundleStore(t, bundle, c2)
	mustAttachWAL(t, s2, w2)
	assertState(t, "reboot after pruning save", s2, want)

	// The rebooted store keeps ingesting and pruning on the same log.
	mustIngest(t, s2, []IncomingDocument{{Stream: 0, Time: 15, Text: "aftershocks rattle harbor"}})
	if err := s2.SaveFile(bundle); err != nil {
		t.Fatalf("second SaveFile: %v", err)
	}
	if got := countDocLines(t, corpus); got != baseDocs+6 {
		t.Fatalf("corpus holds %d docs after the second absorption, want %d", got, baseDocs+6)
	}
	want2 := captureState(s2)

	// Reboot 2: after the second pruning save.
	c3 := loadCorpusFile(t, corpus)
	w3 := mustOpenWAL(t, walDir)
	if rep3, err := c3.ReplayWAL(ctx, w3); err != nil || rep3.Batches != 0 {
		t.Fatalf("ReplayWAL after second save = %+v, %v, want an empty replay", rep3, err)
	}
	s3 := loadBundleStore(t, bundle, c3)
	mustAttachWAL(t, s3, w3)
	assertState(t, "reboot after second pruning save", s3, want2)
	_ = w3.Close()

	// Reboot 3: the crash-between-absorb-and-prune image. The corpus
	// already contains the snapshot's two batches, so replay must skip
	// them rather than append duplicates, and the recovered store must
	// still match the live one exactly.
	c4 := loadCorpusFile(t, corpus)
	w4 := mustOpenWAL(t, crashDir, WithWALPrune(corpus))
	rep4, err := c4.ReplayWAL(ctx, w4)
	if err != nil {
		t.Fatalf("ReplayWAL over an absorbed log: %v", err)
	}
	if rep4.Skipped != 2 || rep4.Batches != 0 || rep4.Docs != 0 {
		t.Fatalf("ReplayWAL = %+v, want both batches skipped as absorbed", rep4)
	}
	s4 := loadBundleStore(t, bundle, c4)
	mustAttachWAL(t, s4, w4)
	assertState(t, "reboot from a crash between absorb and prune", s4, want2)
	_ = w4.Close()
	_ = w2.Close()
}

// ingestDuringWrite wraps a buffer so the first bundle byte written
// triggers one live Ingest — deterministically forcing the interleaving
// where a batch lands between Save's index snapshot (under writeMu) and
// the post-write rotation (Save serializes the bundle with no locks
// held, so ingestion continues underneath).
type ingestDuringWrite struct {
	buf  bytes.Buffer
	once sync.Once
	do   func()
}

func (w *ingestDuringWrite) Write(p []byte) (int, error) {
	w.once.Do(w.do)
	return w.buf.Write(p)
}

// TestWALPruneSaveIngestRace pins the absorption boundary: a batch
// ingested while Save is serializing the bundle is sealed by the save's
// rotation but must NOT be absorbed and pruned — the just-written
// bundle predates it, so after a crash replay would skip it (documents
// already in the corpus) and nothing would ever re-mine its dirty
// terms.
func TestWALPruneSaveIngestRace(t *testing.T) {
	ctx := context.Background()
	corpus := writePruneCorpus(t)
	walDir := t.TempDir()
	baseDocs := countDocLines(t, corpus)

	c1 := loadCorpusFile(t, corpus)
	s1 := mustMineStore(t, c1, nil)
	w1 := mustOpenWAL(t, walDir, WithWALPrune(corpus))
	mustAttachWAL(t, s1, w1)
	mustIngest(t, s1, liveBatch())

	iw := &ingestDuringWrite{}
	iw.do = func() { mustIngest(t, s1, secondBatch()) }
	if err := s1.Save(iw); err != nil {
		t.Fatalf("Save: %v", err)
	}
	want := captureState(s1)

	// Only the pre-snapshot batch was absorbed; the mid-save one must
	// still be logged, and its segment kept whole (pruning only removes
	// segments every frame of which the bundle covers).
	if st, _ := s1.WALStats(); st.Batches != 2 {
		t.Fatalf("WALStats after racing save = %+v, want both frames kept (the sealed segment spans the boundary)", st)
	}
	if got := countDocLines(t, corpus); got != baseDocs+3 {
		t.Fatalf("corpus holds %d docs after absorption, want %d (the pre-snapshot batch only)", got, baseDocs+3)
	}

	// Crash now: reboot from corpus + bundle + log. The absorbed batch
	// is skipped, the mid-save batch replays, and AttachWAL re-mines its
	// dirty terms — the recovered store must equal the live one exactly.
	c2 := loadCorpusFile(t, corpus)
	w2 := mustOpenWAL(t, walDir, WithWALPrune(corpus))
	rep, err := c2.ReplayWAL(ctx, w2)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rep.Skipped != 1 || rep.Batches != 1 {
		t.Fatalf("ReplayWAL = %+v, want the absorbed batch skipped and the mid-save batch replayed", rep)
	}
	s2, err := LoadStore(bytes.NewReader(iw.buf.Bytes()), c2)
	if err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	mustAttachWAL(t, s2, w2)
	assertState(t, "reboot after a mid-save ingest", s2, want)
	_ = w2.Close()
	_ = w1.Close()
}

// TestWALPruneRefusesForeignCorpus: absorption must abort — corpus file
// untouched, segments kept — when the prune path does not hold the very
// corpus the collection was loaded from.
func TestWALPruneRefusesForeignCorpus(t *testing.T) {
	corpusA := writePruneCorpus(t)
	// corpusB diverges from A by one extra document, so the logged
	// batches no longer abut its document count.
	corpusB := filepath.Join(t.TempDir(), "other.jsonl")
	data, err := os.ReadFile(corpusA)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := json.Marshal(corpusio.DocLine{Stream: "Peru", Time: 0, Counts: map[string]int{"extra": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corpusB, append(data, append(extra, '\n')...), 0o644); err != nil {
		t.Fatal(err)
	}
	wantDocs := countDocLines(t, corpusB)

	c1 := loadCorpusFile(t, corpusA)
	s1 := mustMineStore(t, c1, nil)
	w1 := mustOpenWAL(t, t.TempDir(), WithWALPrune(corpusB))
	mustAttachWAL(t, s1, w1)
	mustIngest(t, s1, liveBatch())

	var buf bytes.Buffer
	if err := s1.Save(&buf); err == nil || !strings.Contains(err.Error(), "refusing to absorb") {
		t.Fatalf("Save with a foreign prune path = %v, want a refusing-to-absorb error", err)
	}
	if got := countDocLines(t, corpusB); got != wantDocs {
		t.Fatalf("foreign corpus grew to %d docs, want untouched %d", got, wantDocs)
	}
	// The batch must still be logged: nothing was pruned.
	if st, _ := s1.WALStats(); st.Batches != 1 {
		t.Fatalf("WALStats after refused absorb = %+v, want the batch kept", st)
	}
	_ = w1.Close()
}
