package stburst

import (
	"testing"
)

// demoCollection: two nearby cities and one far city over 10 weeks, with
// a localized "earthquake" burst in the nearby pair at weeks 4-6.
func demoCollection(t *testing.T) *Collection {
	t.Helper()
	streams := []StreamInfo{
		{Name: "lima", Location: Point{X: 0, Y: 0}},
		{Name: "quito", Location: Point{X: 2, Y: 1}},
		{Name: "tokyo", Location: Point{X: 90, Y: 80}},
	}
	c := NewCollection(streams, 10)
	add := func(s, w int, text string) {
		t.Helper()
		if _, err := c.AddText(s, w, text); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 10; w++ {
		add(0, w, "local politics and weather report")
		add(1, w, "markets update and weather report")
		add(2, w, "technology news and weather report")
	}
	for w := 4; w <= 6; w++ {
		for i := 0; i < 4; i++ {
			add(0, w, "earthquake damage rescue earthquake")
			add(1, w, "earthquake tremors felt across the border")
		}
	}
	return c
}

func TestCollectionBasics(t *testing.T) {
	c := demoCollection(t)
	if c.NumStreams() != 3 || c.Timeline() != 10 {
		t.Fatalf("dims %d/%d", c.NumStreams(), c.Timeline())
	}
	if c.NumDocs() != 30+24 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	if c.Stream(2).Name != "tokyo" {
		t.Fatal("Stream name")
	}
	if got := c.TermFrequency("earthquake", 0, 4); got != 8 {
		t.Fatalf("TermFrequency = %v, want 8 (4 docs x 2)", got)
	}
	if got := c.TermFrequency("absent", 0, 4); got != 0 {
		t.Fatalf("unknown term frequency = %v", got)
	}
	d := c.Doc(0)
	if d.Stream != 0 || d.Time != 0 {
		t.Fatalf("Doc(0) = %+v", d)
	}
	if len(c.Terms()) == 0 {
		t.Fatal("no terms")
	}
}

func TestRegionalPatternsFacade(t *testing.T) {
	c := demoCollection(t)
	ws := c.RegionalPatterns("earthquake", nil)
	if len(ws) == 0 {
		t.Fatal("no regional patterns")
	}
	top, ok := Best(ws)
	if !ok {
		t.Fatal("no best window")
	}
	if !top.ContainsStream(0) || !top.ContainsStream(1) {
		t.Fatalf("top pattern should contain lima+quito: %+v", top)
	}
	if top.ContainsStream(2) {
		t.Fatalf("top pattern should exclude tokyo: %+v", top)
	}
	if top.Start > 4 || top.End < 6 {
		t.Fatalf("timeframe [%d,%d] should cover [4,6]", top.Start, top.End)
	}
	if got := c.RegionalPatterns("absent", nil); got != nil {
		t.Fatal("unknown term should yield nil")
	}
}

func TestRegionalPatternsCaseAndOptions(t *testing.T) {
	c := demoCollection(t)
	// Query normalization: uppercase input matches the indexed term.
	if len(c.RegionalPatterns("EARTHQUAKE", nil)) == 0 {
		t.Fatal("case normalization failed")
	}
	for _, opts := range []*RegionalOptions{
		{Baseline: BaselineWindowMean, BaselineParam: 3},
		{Baseline: BaselineEWMA, BaselineParam: 0.5},
		{Baseline: BaselineSeasonal, BaselineParam: 5},
		{Grid: 8, Bounds: Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}},
		{KeepDominated: true},
	} {
		if ws := c.RegionalPatterns("earthquake", opts); len(ws) == 0 {
			t.Fatalf("no patterns under options %+v", opts)
		}
	}
}

func TestCombinatorialPatternsFacade(t *testing.T) {
	c := demoCollection(t)
	ps := c.CombinatorialPatterns("earthquake", nil)
	if len(ps) == 0 {
		t.Fatal("no combinatorial patterns")
	}
	top := ps[0]
	if len(top.Streams) != 2 {
		t.Fatalf("top pattern streams %v, want the two bursting cities", top.Streams)
	}
	if top.Streams[0] != 0 || top.Streams[1] != 1 {
		t.Fatalf("streams %v", top.Streams)
	}
	// Kleinberg detector variant.
	ps = c.CombinatorialPatterns("earthquake", &CombinatorialOptions{Detector: DetectorKleinberg})
	if len(ps) == 0 {
		t.Fatal("no Kleinberg patterns")
	}
	if got := c.CombinatorialPatterns("absent", nil); got != nil {
		t.Fatal("unknown term should yield nil")
	}
}

func TestTemporalBurstsFacade(t *testing.T) {
	c := demoCollection(t)
	ivs := c.TemporalBursts("earthquake")
	if len(ivs) == 0 {
		t.Fatal("no temporal bursts")
	}
	if ivs[0].Start > 4 || ivs[0].End < 6 {
		t.Fatalf("merged burst [%d,%d] should cover [4,6]", ivs[0].Start, ivs[0].End)
	}
	if got := c.TemporalBursts("absent"); got != nil {
		t.Fatal("unknown term should yield nil")
	}
}

func TestRegionalMinerStreaming(t *testing.T) {
	points := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	m := NewRegionalMiner(points, nil)
	for i := 0; i < 10; i++ {
		obs := []float64{1, 1}
		if i >= 3 && i <= 5 {
			obs = []float64{12, 14}
		}
		if err := m.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
	if m.Timestamps() != 10 {
		t.Fatalf("Timestamps = %d", m.Timestamps())
	}
	ws := m.Windows()
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	top, _ := Best(ws)
	if top.Start > 3 || top.End < 5 {
		t.Fatalf("window [%d,%d] should cover [3,5]", top.Start, top.End)
	}
}

func TestCombinatorialMinerStreaming(t *testing.T) {
	m := NewCombinatorialMiner(2, nil)
	for i := 0; i < 8; i++ {
		obs := []float64{1, 1}
		if i == 4 {
			obs = []float64{9, 9}
		}
		if err := m.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
	ps := m.Patterns(0)
	if len(ps) == 0 {
		t.Fatal("no online patterns")
	}
	if len(ps[0].Streams) != 2 {
		t.Fatalf("top online pattern %+v", ps[0])
	}
}

func TestRegionalEngineSearch(t *testing.T) {
	c := demoCollection(t)
	e := NewRegionalEngine(c, nil)
	hits := e.Search("earthquake", 5)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range hits {
		if h.Stream == "tokyo" {
			t.Fatalf("regional engine returned far-city hit: %+v", h)
		}
		if h.Doc.Time < 4 || h.Doc.Time > 6 {
			t.Fatalf("hit outside burst: %+v", h)
		}
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("hits unsorted: %+v", hits)
		}
	}
	if got := e.Search("absent", 5); got != nil {
		t.Fatal("unknown query should yield nil")
	}
}

func TestCombinatorialEngineSearch(t *testing.T) {
	c := demoCollection(t)
	e := NewCombinatorialEngine(c, nil)
	hits := e.Search("earthquake", 5)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range hits {
		if h.Doc.Time < 4 || h.Doc.Time > 6 {
			t.Fatalf("hit outside burst: %+v", h)
		}
	}
}

func TestTemporalEngineSearch(t *testing.T) {
	c := demoCollection(t)
	e := NewTemporalEngine(c)
	hits := e.Search("earthquake", 10)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// The temporal engine does not filter spatially, so all burst-window
	// docs qualify regardless of stream.
	for _, h := range hits {
		if h.Doc.Time < 4 || h.Doc.Time > 6 {
			t.Fatalf("hit outside burst window: %+v", h)
		}
	}
}

func TestMultiTermSearch(t *testing.T) {
	c := demoCollection(t)
	e := NewRegionalEngine(c, nil)
	hits := e.Search("earthquake damage", 5)
	for _, h := range hits {
		// "damage" appears only in lima's docs.
		if h.Stream != "lima" {
			t.Fatalf("conjunctive hit from wrong stream: %+v", h)
		}
	}
}
