package stburst

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/corpusio"
	"stburst/internal/index"
	"stburst/internal/search"
	"stburst/internal/sub"
	"stburst/internal/wal"
)

// ErrKindNotResident is returned (wrapped) by Store.Query when the query
// names a concrete kind the store holds no index for, and by a KindAny
// query against an empty store. The HTTP layer maps it to 404.
var ErrKindNotResident = errors.New("stburst: pattern kind not resident in store")

// Store holds up to one query-ready PatternIndex per concrete pattern
// kind over a single shared Collection — the paper's three burstiness
// models (regional, combinatorial, temporal) served side by side from
// one process. Store.Query routes a Query to the index of its Kind, or
// fans a KindAny query out to every resident index and merges the hits.
//
// The resident set lives behind one atomic pointer to an immutable
// kind-indexed array, so indexes can be hot-swapped (Swap) or the whole
// set replaced in a single atomic step (Replace) while any number of
// queries run concurrently: a query observes either the old index or
// the new one, never a torn mix, and never blocks behind a reload.
//
// A store is also the write path of a live deployment: Ingest appends a
// batch of freshly arrived documents to the collection and re-mines only
// the dirty terms, installing the refreshed indexes with the same atomic
// Replace a reload uses. Every mutation — Swap, Replace, Ingest — bumps
// the monotonically increasing Generation, the cache-busting token the
// serving layer hands to clients.
type Store struct {
	c       *Collection
	indexes atomic.Pointer[[3]*PatternIndex] // slot k-1 holds the index of concrete kind k
	gen     atomic.Uint64
	// writeMu serializes every writer — Swap, Replace, and Ingest end to
	// end (snapshot → append → re-mine → install) — plus Save's
	// (resident set, generation) read pair. Without it a Swap or Replace
	// landing inside an in-flight Ingest's window would be silently
	// overwritten by indexes derived from the pre-mutation resident set,
	// and a Save racing an Ingest could stamp one generation onto
	// another generation's indexes. Readers stay lock-free on the atomic
	// pointer.
	writeMu sync.Mutex
	// staleDirty accumulates (under writeMu) dirty terms whose re-mine
	// was aborted after their documents were already appended — a
	// cancelled Ingest must not lose them, so the next Ingest re-mines
	// them along with its own batch.
	staleDirty map[int]struct{}
	// mineOpts are the options Ingest re-mines dirty terms with; they
	// must match the options the resident indexes were mined with for
	// the refresh to be exact.
	mineOpts atomic.Pointer[MineOptions]
	// wal, when non-nil, is the attached write-ahead log (AttachWAL):
	// Ingest fsyncs every batch to it before applying. Behind an atomic
	// pointer so WALStats never blocks behind an in-flight ingest.
	wal atomic.Pointer[wal.Log]
	// walPrune, when non-empty, is the corpus file save-time pruning
	// absorbs sealed WAL segments into (WithWALPrune). Written once by
	// AttachWAL, before the log is armed; read only by Save.
	walPrune string
	// shard is the store's immutable shard identity, recorded by
	// LoadStore from a sharded bundle (whole-partition otherwise).
	shard ShardInfo
	// subs holds the registered standing queries (see subscribe.go);
	// Ingest matches each batch's dirty terms against them after the
	// refreshed indexes install, and Save persists them in the bundle.
	subs *sub.Registry
	// alertSink, when set, receives each Ingest's matched alerts once
	// writeMu is released (SetAlertSink).
	alertSink atomic.Pointer[AlertSink]
}

// NewStore creates an empty store over the collection. Populate it with
// Swap or Replace, or mine all kinds in one pass with
// Collection.MineStore.
func NewStore(c *Collection) *Store {
	s := &Store{c: c, shard: ShardInfo{Shards: 1}, subs: sub.NewRegistry()}
	s.indexes.Store(new([3]*PatternIndex))
	return s
}

// ShardInfo identifies which slice of a partitioned vocabulary a store
// holds. A store mined or loaded whole is the entire partition: shard 0
// of 1 with no scheme. A store loaded from an `stmine -shards` bundle
// holds only the terms that hash to its shard under Scheme;
// CorpusFingerprint is the checksum of the corpus the shard set was
// mined from, shared by every member of the set.
type ShardInfo struct {
	Shard             int
	Shards            int
	Scheme            string
	CorpusFingerprint string
}

// Sharded reports whether the store holds a true slice of a larger
// partition rather than the whole vocabulary.
func (si ShardInfo) Sharded() bool { return si.Shards > 1 }

// TermShard returns the shard index owning a term under the canonical
// vocabulary partition (the fnv1a64/term scheme stmine -shards writes).
// Exported so out-of-process routers — the stgate coordinator — place
// every term on the same shard the miner did.
func TermShard(term string, shards int) int { return index.TermShard(term, shards) }

// ShardInfo returns the store's shard identity, recorded at LoadStore
// time from the bundle's shard block (whole-partition for any other
// provenance). It is immutable for the life of the store.
func (s *Store) ShardInfo() ShardInfo { return s.shard }

// Generation returns the store's current generation: a monotonically
// increasing counter bumped by every mutation (Swap, Replace, Ingest),
// persisted in saved bundles and restored by LoadStore. Clients use it
// to bust caches — two responses observed under the same generation were
// served from the same resident set over the same corpus.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// SetMineOptions records the options Ingest re-mines dirty terms with.
// They must match the options the resident indexes were originally mined
// with, or the incrementally refreshed indexes would mix two parameter
// settings; Collection.MineStore records its options automatically, so
// only stores populated by hand (Swap/Replace/LoadStore) need this. A
// nil opts restores the paper's defaults.
func (s *Store) SetMineOptions(opts *MineOptions) { s.mineOpts.Store(opts) }

// Collection returns the collection the store's indexes are mined from.
func (s *Store) Collection() *Collection { return s.c }

// slot maps a concrete kind to its array slot.
func slot(kind Kind) (int, error) {
	if _, ok := kind.patternKind(); !ok {
		return 0, fmt.Errorf("stburst: store slots hold concrete pattern kinds, not %v", kind)
	}
	return int(kind) - 1, nil
}

// checkResident validates an index against the slot it is headed for:
// the kind must match the patterns the index actually stores, and the
// index must be attached to the store's own collection — an index mined
// from (or loaded against) a different collection would answer queries
// with foreign document IDs.
func (s *Store) checkResident(kind Kind, ix *PatternIndex) error {
	if ix.PatternKind() != kind {
		return fmt.Errorf("stburst: store slot %v cannot hold a %v index", kind, ix.PatternKind())
	}
	if ix.c != s.c {
		return fmt.Errorf("stburst: %v index is attached to a different collection than the store", kind)
	}
	return nil
}

// Swap atomically installs ix as the resident index of the given
// concrete kind and returns the index it replaced (nil when the slot
// was empty). A nil ix removes the kind from the store. In-flight
// queries keep the index they already resolved; new queries see the
// replacement immediately. Like Replace, Swap serializes against an
// in-flight Ingest: it blocks until the ingest's refreshed set is
// installed, then applies on top — never silently undone by it.
func (s *Store) Swap(kind Kind, ix *PatternIndex) (*PatternIndex, error) {
	i, err := slot(kind)
	if err != nil {
		return nil, err
	}
	if ix != nil {
		if err := s.checkResident(kind, ix); err != nil {
			return nil, err
		}
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	old := s.indexes.Load()
	next := *old
	next[i] = ix
	s.indexes.Store(&next)
	s.gen.Add(1)
	return old[i], nil
}

// Replace atomically replaces the whole resident set with the given
// indexes — the reload primitive: a concurrent query sees either the
// complete old set or the complete new set, never one kind from each.
// Kinds absent from ixs become non-resident. Two indexes of the same
// kind, a foreign-collection index, or a nil entry is an error, and on
// any error the store is left untouched. Replace and Ingest serialize
// against each other: a Replace issued during an in-flight Ingest
// blocks until the ingest's refreshed set is installed, then supersedes
// it — never the silent reverse.
func (s *Store) Replace(ixs ...*PatternIndex) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.replaceLocked(ixs...)
}

// replaceLocked is Replace's body; callers hold writeMu.
func (s *Store) replaceLocked(ixs ...*PatternIndex) error {
	var next [3]*PatternIndex
	for _, ix := range ixs {
		if ix == nil {
			return errors.New("stburst: Replace: nil index (omit the kind instead)")
		}
		kind := ix.PatternKind()
		i, err := slot(kind)
		if err != nil {
			return err
		}
		if err := s.checkResident(kind, ix); err != nil {
			return err
		}
		if next[i] != nil {
			return fmt.Errorf("stburst: Replace: two %v indexes", kind)
		}
		next[i] = ix
	}
	s.indexes.Store(&next)
	s.gen.Add(1)
	return nil
}

// Index returns the resident index of a concrete kind, or nil when the
// kind is not resident (or kind is KindAny).
func (s *Store) Index(kind Kind) *PatternIndex {
	i, err := slot(kind)
	if err != nil {
		return nil
	}
	return s.indexes.Load()[i]
}

// Kinds returns the resident kinds in canonical (regional,
// combinatorial, temporal) order.
func (s *Store) Kinds() []Kind {
	var kinds []Kind
	for _, ix := range s.Resident() {
		kinds = append(kinds, ix.PatternKind())
	}
	return kinds
}

// Resident returns the resident indexes in canonical kind order, all
// taken from one atomic snapshot of the resident set — unlike a
// Kinds()/Index() loop, the result can never interleave two
// generations across a concurrent Swap or Replace.
func (s *Store) Resident() []*PatternIndex {
	resident := s.indexes.Load()
	var out []*PatternIndex
	for _, k := range Kinds() {
		if ix := resident[int(k)-1]; ix != nil {
			out = append(out, ix)
		}
	}
	return out
}

// Query executes a structured query against the store. A concrete
// Query.Kind routes to that kind's resident index (ErrKindNotResident,
// wrapped, when the store holds none). KindAny — the zero Kind, so also
// an absent "kind" in the JSON shape — fans out to every resident index
// over one consistent atomic snapshot of the resident set and merges
// the per-kind rankings into a single list ordered by descending score
// (ties by document ID, then kind). Each hit carries the Kind that
// scored it, and a document retrieved by several kinds appears once per
// kind: the fan-out deliberately surfaces how the models rank the same
// document differently rather than collapsing them.
//
// MinScore, Region and Time apply within each kind exactly as in
// Engine.Run; Offset/K page the merged list. The page's More flag
// reports whether hits exist beyond it in the merged ranking.
func (s *Store) Query(ctx context.Context, q Query) (ResultPage, error) {
	if err := q.Validate(); err != nil {
		return ResultPage{}, err
	}
	if q.Kind != KindAny {
		ix := s.Index(q.Kind)
		if ix == nil {
			return ResultPage{}, fmt.Errorf("%w: %v", ErrKindNotResident, q.Kind)
		}
		return ix.Query(ctx, q)
	}

	resident := s.indexes.Load() // one snapshot for the whole fan-out
	// Each kind must contribute enough of its own ranking to fill the
	// merged page: the first Offset+K merged hits can in the worst case
	// all come from one kind. Fetch one beyond the page to learn whether
	// more exist, capping at MaxK (which Validate guarantees each of
	// Offset and K respects individually).
	need := q.Offset + q.k() + 1
	if need > MaxK {
		need = MaxK
	}
	var merged []Hit
	more := false
	queried := false
	for _, kind := range Kinds() {
		ix := resident[int(kind)-1]
		if ix == nil {
			continue
		}
		queried = true
		sub := q
		sub.Kind = kind
		sub.K = need
		sub.Offset = 0
		page, err := ix.Query(ctx, sub)
		if err != nil {
			return ResultPage{}, err
		}
		merged = append(merged, page.Hits...)
		more = more || page.More
	}
	if !queried {
		return ResultPage{}, fmt.Errorf("%w: store holds no indexes", ErrKindNotResident)
	}
	SortHits(merged)
	if q.Offset >= len(merged) {
		return ResultPage{More: false}, nil
	}
	end := q.Offset + q.k()
	if end > len(merged) {
		end = len(merged)
	} else if end < len(merged) {
		more = true
	}
	out := make([]Hit, end-q.Offset)
	copy(out, merged[q.Offset:end])
	return ResultPage{Hits: out, More: more}, nil
}

// SortHits sorts hits into the store's canonical merged ranking:
// descending score, ties broken by ascending document ID, then ascending
// kind. This is the total order Store.Query's KindAny fan-out merges
// per-kind rankings with, exported so an out-of-process merger (the
// stgate scatter-gather coordinator) produces bit-identical pages. The
// sort is stable, though the order is total whenever no two hits share
// (score, doc, kind).
func SortHits(hits []Hit) {
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Doc.ID != hits[j].Doc.ID {
			return hits[i].Doc.ID < hits[j].Doc.ID
		}
		return hits[i].Kind < hits[j].Kind
	})
}

// IngestResult reports one applied ingest batch.
type IngestResult struct {
	// Generation is the store generation after the batch was installed —
	// the cache-busting token: any response observed under an older
	// generation predates this batch.
	Generation uint64
	// Docs is the number of documents appended.
	Docs int
	// DirtyTerms is the number of distinct terms whose pattern streams
	// the batch changed — exactly the terms that were re-mined.
	DirtyTerms int
	// TotalDocs is the collection's document count immediately after
	// this batch applied, read under the write lock — so with this
	// batch as the last appended, the count is exact, not a racy
	// after-the-fact read. Streaming connectors checkpoint it next to
	// their byte offset to make crash-resume dedupe precise.
	TotalDocs int
}

// ErrIngestIncomplete wraps errors from the back half of Ingest: the
// batch WAS appended to the collection, but the index refresh did not
// complete (e.g. the context was cancelled mid-re-mine). The documents
// are never lost — the store remembers their dirty terms and the next
// Ingest (even of an empty batch) re-mines them — but the resident
// indexes are stale for those terms until it runs. Callers must not
// re-submit the same documents after this error.
//
// With a write-ahead log attached (AttachWAL), the guarantee is
// stronger: logged ⇒ replayable. The batch was fsync'd to the WAL
// before it applied, and an aborted refresh deliberately leaves the
// WAL entry intact, so even a crash in this half-finished state loses
// nothing — boot-time replay re-appends the batch and re-mines its
// dirty terms, healing the refresh the abort skipped.
var ErrIngestIncomplete = errors.New("stburst: ingest appended documents but the index refresh is incomplete; a later Ingest repairs it")

// Ingest is the live write path: it appends a batch of freshly arrived
// documents to the collection and incrementally refreshes every resident
// index — only the dirty terms (those whose frequency surfaces the batch
// changed, including brand-new terms) are re-mined, per resident kind,
// on one shared worker pool. The refreshed indexes are warmed and then
// installed with the same atomic install a reload uses, so concurrent
// queries never block and never observe a torn resident set; the
// refreshed indexes are bit-identical to a from-scratch MineStore over
// the appended collection (the per-term miners are independent, and the
// oracle tests assert fingerprint equality for every kind).
//
// Re-mining uses the options recorded by Collection.MineStore or
// SetMineOptions — they must match the resident indexes' original mining
// options for the refresh to be exact. Ingest calls serialize, and
// Replace serializes against an in-flight Ingest (see Replace).
//
// With a write-ahead log attached (AttachWAL), Ingest logs before it
// applies: the batch is validated, framed and fsync'd to the WAL, and
// only then appended — so from the moment Ingest can no longer return
// a plain retryable error, the batch is already on stable storage and
// a crash anywhere in the rest of the path replays it on boot.
//
// Failure semantics: an error before the append — cancelled context,
// invalid batch, or a failed WAL write (the torn frame is rolled back
// off the log) — leaves the store, collection and log untouched, and
// the batch may be retried verbatim. An error after the append wraps
// ErrIngestIncomplete: the documents are already in the collection —
// never re-submit them — and their dirty terms are remembered and
// re-mined by the next Ingest, so an aborted refresh can only delay
// freshness, never corrupt it; the batch's WAL entry is left intact,
// so a crash before that repair heals on replay. On a store with no
// resident indexes, Ingest just appends and bumps the generation.
//
// After a successful refresh, the dirty terms' freshly installed
// patterns are matched against the registered standing queries
// (Subscribe) and any alerts are handed to the alert sink
// (SetAlertSink) once the write lock is released.
func (s *Store) Ingest(ctx context.Context, docs []IncomingDocument) (IngestResult, error) {
	var alerts []Alert
	defer func() { s.emitAlerts(alerts) }() // registered first: runs after writeMu unlocks
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := ctx.Err(); err != nil {
		return IngestResult{}, err
	}
	// The resident set is read under writeMu: these indexes describe the
	// pre-append corpus, their clean terms carry over unchanged, and no
	// Replace can land between here and the install below.
	resident := s.indexes.Load()
	batch := s.c.prepareBatch(docs)
	// Validate before logging: a frame that reaches the WAL must never
	// fail to apply, or replay could not reproduce this store.
	if err := s.c.col.CheckBatch(batch); err != nil {
		return IngestResult{}, err
	}
	if l := s.wal.Load(); l != nil && len(batch) > 0 {
		if _, err := l.Append(s.Generation(), uint64(s.c.NumDocs()), batch); err != nil {
			return IngestResult{}, err
		}
	}
	_, dirty, err := s.c.col.Append(batch)
	if err != nil {
		// Unreachable: CheckBatch ran Append's exact validation. Surface
		// it as pre-append (nothing applied) rather than strand the
		// logged frame silently — replay would heal it after a restart.
		return IngestResult{}, err
	}
	// Fold in dirty terms a previously aborted refresh left stale; they
	// are cleared only once an install succeeds.
	if len(s.staleDirty) > 0 {
		merged := make(map[int]struct{}, len(s.staleDirty)+len(dirty))
		for t := range s.staleDirty {
			merged[t] = struct{}{}
		}
		for _, t := range dirty {
			merged[t] = struct{}{}
		}
		dirty = make([]int, 0, len(merged))
		for t := range merged {
			dirty = append(dirty, t)
		}
	}
	if len(dirty) == 0 {
		// Nothing to re-mine (e.g. every document tokenized to nothing,
		// and no repair owed): the resident indexes are already exact,
		// so skip the refresh — rebuilding and warming engines for
		// bit-identical content is reload-scale work for nothing. The
		// generation still advances when documents were appended (the
		// corpus changed), but not for a pure no-op call.
		gen := s.Generation()
		if len(docs) > 0 {
			gen = s.gen.Add(1)
		}
		return IngestResult{Generation: gen, Docs: len(docs), TotalDocs: s.c.NumDocs()}, nil
	}
	rememberStale := func() {
		if s.staleDirty == nil {
			s.staleDirty = make(map[int]struct{}, len(dirty))
		}
		for _, t := range dirty {
			s.staleDirty[t] = struct{}{}
		}
	}
	refreshed, err := s.refreshLocked(ctx, resident, dirty)
	if err != nil {
		rememberStale()
		return IngestResult{}, fmt.Errorf("%w: %w", ErrIngestIncomplete, err)
	}
	if !refreshed {
		// Nothing resident to refresh: the append alone is the mutation.
		s.staleDirty = nil
		return IngestResult{Generation: s.gen.Add(1), Docs: len(docs), DirtyTerms: len(dirty), TotalDocs: s.c.NumDocs()}, nil
	}
	s.staleDirty = nil
	alerts = s.matchDirtyLocked(dirty)
	return IngestResult{Generation: s.Generation(), Docs: len(docs), DirtyTerms: len(dirty), TotalDocs: s.c.NumDocs()}, nil
}

// refreshLocked incrementally re-mines the dirty terms against the
// given resident snapshot and atomically installs the refreshed indexes
// (bumping the generation); callers hold writeMu. It reports false —
// with nothing installed and no error — when no index is resident, in
// which case the caller owns whatever generation bump the mutation
// deserves. The shared back half of Ingest and AttachWAL's boot-time
// replay: both must refresh identically for a replayed store to be
// bit-identical to the pre-crash one.
func (s *Store) refreshLocked(ctx context.Context, resident *[3]*PatternIndex, dirty []int) (bool, error) {
	opts := s.mineOpts.Load()
	if opts == nil {
		opts = &MineOptions{}
	}
	var (
		prevW map[int][]core.Window
		prevC map[int][]core.CombPattern
		prevT map[int][]burst.Interval
	)
	if ix := resident[int(KindRegional)-1]; ix != nil {
		prevW = ix.set.AllWindows()
	}
	if ix := resident[int(KindCombinatorial)-1]; ix != nil {
		prevC = ix.set.AllCombs()
	}
	if ix := resident[int(KindTemporal)-1]; ix != nil {
		prevT = ix.set.AllTemporal()
	}
	if prevW == nil && prevC == nil && prevT == nil {
		return false, nil
	}
	w, cb, tp, err := search.RemineDirtyParCtx(ctx, s.c.col, dirty,
		prevW, prevC, prevT,
		opts.Regional.coreOptions(), opts.Combinatorial.coreOptions(), nil, opts.Parallelism)
	if err != nil {
		return true, err
	}
	var fresh []*PatternIndex
	if w != nil {
		fresh = append(fresh, &PatternIndex{c: s.c, set: index.NewWindowSet(w)})
	}
	if cb != nil {
		fresh = append(fresh, &PatternIndex{c: s.c, set: index.NewCombSet(cb)})
	}
	if tp != nil {
		fresh = append(fresh, &PatternIndex{c: s.c, set: index.NewTemporalSet(tp)})
	}
	for _, ix := range fresh {
		ix.Engine() // warm before the swap: no query pays the build
	}
	if err := s.replaceLocked(fresh...); err != nil {
		return true, err
	}
	return true, nil
}

// residentSets returns the pattern sets of the resident indexes in
// canonical kind order — the bundle member order.
func (s *Store) residentSets() ([]*index.PatternSet, error) {
	resident := s.indexes.Load()
	var sets []*index.PatternSet
	for _, k := range Kinds() {
		if ix := resident[int(k)-1]; ix != nil {
			sets = append(sets, ix.set)
		}
	}
	if len(sets) == 0 {
		return nil, errors.New("stburst: cannot save an empty store")
	}
	return sets, nil
}

// Save serializes every resident index into one versioned bundle: a
// manifest listing each member's kind, byte length and canonical
// fingerprint, followed by the members as ordinary snapshot streams and
// a stream checksum over the whole file (see DESIGN.md for the layout).
// The store's current Generation is recorded in the v2 header and
// restored by LoadStore, and any registered standing queries are
// persisted in a v4 subscriptions block (a store without them keeps the
// earlier byte-exact formats). LoadStore verifies all of it on the way
// back in. An empty store cannot be saved. Save serializes against writers
// (Swap/Replace/Ingest), so the recorded generation always matches the
// serialized indexes — never one mutation's number on another's data.
//
// With a write-ahead log attached, a successful save rotates the log:
// the active segment seals and a fresh one opens, so segment files
// stay bounded under sustained ingestion. By default the sealed
// segments are NOT deleted — a bundle persists patterns, not
// documents, so the logged batches remain the only durable copy of the
// appended documents. A log opened WithWALPrune goes further: the
// sealed batches are absorbed into the corpus file itself (atomically)
// and only then are the sealed segments deleted (see DESIGN.md).
// Absorption stops at the last batch the saved bundle covers: a batch
// ingested while the bundle was being serialized stays logged until a
// later save covers it.
func (s *Store) Save(w io.Writer) error {
	s.writeMu.Lock()
	sets, err := s.residentSets()
	gen := s.Generation()
	l, walBoundary := s.walSnapshotLocked()
	var subBlobs [][]byte
	if err == nil {
		subBlobs, err = s.subscriptionBlobs()
	}
	s.writeMu.Unlock()
	if err != nil {
		return err
	}
	if err := s.writeBundle(func(info index.ShardInfo) error {
		if len(subBlobs) > 0 {
			return index.WriteBundleSubs(w, sets, s.c.col.Dict().Term, gen, info, subBlobs)
		}
		if info.Shards > 1 {
			return index.WriteBundleSharded(w, sets, s.c.col.Dict().Term, gen, info)
		}
		return index.WriteBundle(w, sets, s.c.col.Dict().Term, gen)
	}); err != nil {
		return err
	}
	return s.rotateWAL(l, walBoundary)
}

// writeBundle invokes write with the store's shard identity in the
// bundle codec's terms, so a re-saved shard store keeps its shard block
// (and an unsharded store keeps the plain portable format).
func (s *Store) writeBundle(write func(index.ShardInfo) error) error {
	return write(index.ShardInfo{
		Shard:             s.shard.Shard,
		Shards:            s.shard.Shards,
		Scheme:            s.shard.Scheme,
		CorpusFingerprint: s.shard.CorpusFingerprint,
	})
}

// walSnapshotLocked captures, under writeMu, the attached log together
// with the sequence number of its last appended frame — the absorption
// boundary of the save in progress. Every frame at or below the
// boundary was ingested before the save's index snapshot, so the
// bundle being written covers it; frames appended after the snapshot
// (Save serializes the bundle outside writeMu, so ingestion continues
// underneath) are NOT covered and must survive rotation un-absorbed.
func (s *Store) walSnapshotLocked() (*wal.Log, uint64) {
	l := s.wal.Load()
	if l == nil {
		return nil, 0
	}
	return l, l.Stats().LastSeq
}

// rotateWAL seals the attached log's active segment after a successful
// save; a rotation failure surfaces (the bundle itself is intact). When
// the log was opened WithWALPrune, the sealed segments are then
// absorbed into the corpus file and deleted (absorbWAL) up to the
// boundary the save's snapshot captured, so the log stays bounded
// instead of growing forever. l and boundary come from
// walSnapshotLocked under the same writeMu hold as the index snapshot;
// a log attached after the snapshot is left alone (its every frame
// postdates the bundle).
func (s *Store) rotateWAL(l *wal.Log, boundary uint64) error {
	if l == nil {
		return nil
	}
	if err := l.Rotate(); err != nil {
		return fmt.Errorf("stburst: rotating wal after save: %w", err)
	}
	if s.walPrune == "" {
		return nil
	}
	return s.absorbWAL(l, boundary)
}

// absorbWAL makes the sealed segments' documents durable in the corpus
// file itself — the step that licenses deleting them from the log. The
// corpus is rewritten atomically (temp copy + rename), so a crash
// leaves either the old file with the log intact, or the new file with
// the log intact (ReplayWAL then skips the doubly-held batches); only
// after the rename do the sealed segments go. Batches a previous
// absorb already folded in (its prune failed) are skipped, and a batch
// that does not abut the file's document count aborts the whole
// absorption — the file is not the corpus this collection was loaded
// from, and appending to it would corrupt the next boot.
//
// Only frames with sequence number <= boundary (the last frame logged
// before the save's index snapshot) are absorbed and pruned: a batch
// ingested while the bundle was being written may already sit in a
// sealed segment, but the bundle does not cover it — absorbing it
// would let recovery skip the batch (its documents already in the
// corpus) without ever re-mining its dirty terms, silently regressing
// the indexes. It stays logged until a later save's bundle covers it.
func (s *Store) absorbWAL(l *wal.Log, boundary uint64) error {
	batches, last, err := l.SealedBatches()
	if err != nil {
		return fmt.Errorf("stburst: pruning wal after save: %w", err)
	}
	// Frames are in ascending sequence order; trim everything past the
	// boundary off the tail.
	for len(batches) > 0 && batches[len(batches)-1].Seq > boundary {
		batches = batches[:len(batches)-1]
	}
	if last > boundary {
		last = boundary
	}
	if len(batches) == 0 {
		return nil
	}
	var abutErr error
	_, err = corpusio.AppendDocs(s.walPrune, func(existing int) []corpusio.DocLine {
		var lines []corpusio.DocLine
		for _, b := range batches {
			if b.BaseDocs+uint64(len(b.Docs)) <= uint64(existing) {
				continue // an earlier save absorbed it; only its prune failed
			}
			if b.BaseDocs != uint64(existing)+uint64(len(lines)) {
				abutErr = fmt.Errorf(
					"stburst: wal batch %d was logged at document count %d but the corpus file holds %d — refusing to absorb into a file that is not this store's corpus",
					b.Seq, b.BaseDocs, uint64(existing)+uint64(len(lines)))
				return nil
			}
			for _, d := range b.Docs {
				lines = append(lines, corpusio.DocLine{
					Stream: s.c.col.Stream(d.Stream).Name,
					Time:   d.Time,
					Counts: d.Counts,
				})
			}
		}
		return lines
	})
	if err != nil {
		return fmt.Errorf("stburst: absorbing wal into corpus: %w", err)
	}
	if abutErr != nil {
		return abutErr
	}
	if err := l.Prune(last); err != nil {
		return fmt.Errorf("stburst: pruning wal after save: %w", err)
	}
	return nil
}

// SaveFile saves the store as a bundle file, atomically: the bundle is
// written to a temp file in the destination directory and renamed over
// the target, so an interrupted save never leaves a truncated file.
// Like Save, a successful SaveFile rotates the attached write-ahead
// log.
func (s *Store) SaveFile(path string) error {
	s.writeMu.Lock()
	sets, err := s.residentSets()
	gen := s.Generation()
	l, walBoundary := s.walSnapshotLocked()
	var subBlobs [][]byte
	if err == nil {
		subBlobs, err = s.subscriptionBlobs()
	}
	s.writeMu.Unlock()
	if err != nil {
		return err
	}
	if err := s.writeBundle(func(info index.ShardInfo) error {
		if len(subBlobs) > 0 {
			return index.WriteBundleSubsFile(path, sets, s.c.col.Dict().Term, gen, info, subBlobs)
		}
		if info.Shards > 1 {
			return index.WriteBundleShardedFile(path, sets, s.c.col.Dict().Term, gen, info)
		}
		return index.WriteBundleFile(path, sets, s.c.col.Dict().Term, gen)
	}); err != nil {
		return err
	}
	return s.rotateWAL(l, walBoundary)
}

// LoadStore reads a store from r and attaches it to a collection
// holding the same corpus. It accepts both on-disk formats: a bundle
// written by Store.Save (every member index becomes resident) and a
// plain single-index snapshot written by PatternIndex.Save (the store
// holds that one kind), so a serving process boots from whichever
// artifact the mining pipeline produced. Every member is integrity-
// checked exactly as LoadPatternIndex would: stream checksums, the
// canonical per-kind fingerprints (which must also match the bundle
// manifest), vocabulary membership and structural fit against the
// collection. Any failure is an error; no partially loaded store is
// returned.
func LoadStore(r io.Reader, c *Collection) (*Store, error) {
	snaps, gen, si, subBlobs, err := index.ReadStoreSubs(r)
	if err != nil {
		return nil, fmt.Errorf("stburst: loading store: %w", err)
	}
	ixs := make([]*PatternIndex, len(snaps))
	for i, snap := range snaps {
		ix, err := attachSnapshot(snap, c)
		if err != nil {
			return nil, fmt.Errorf("stburst: loading store: %v member: %w", kindOf(snap.Set.Kind()), err)
		}
		ixs[i] = ix
	}
	s := NewStore(c)
	s.shard = ShardInfo{
		Shard:             si.Shard,
		Shards:            si.Shards,
		Scheme:            si.Scheme,
		CorpusFingerprint: si.CorpusFingerprint,
	}
	if err := s.Replace(ixs...); err != nil {
		return nil, fmt.Errorf("stburst: loading store: %w", err)
	}
	// Resume the saved store's generation sequence (a version-1 artifact
	// predates generations and resumes from 0); the Replace above only
	// counts as a mutation within this process.
	s.gen.Store(gen)
	// Re-register the persisted standing queries under their saved IDs
	// (a pre-subscription artifact simply has none).
	if err := s.restoreSubscriptions(subBlobs); err != nil {
		return nil, fmt.Errorf("stburst: loading store: %w", err)
	}
	return s, nil
}
