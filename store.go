package stburst

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"stburst/internal/index"
)

// ErrKindNotResident is returned (wrapped) by Store.Query when the query
// names a concrete kind the store holds no index for, and by a KindAny
// query against an empty store. The HTTP layer maps it to 404.
var ErrKindNotResident = errors.New("stburst: pattern kind not resident in store")

// Store holds up to one query-ready PatternIndex per concrete pattern
// kind over a single shared Collection — the paper's three burstiness
// models (regional, combinatorial, temporal) served side by side from
// one process. Store.Query routes a Query to the index of its Kind, or
// fans a KindAny query out to every resident index and merges the hits.
//
// The resident set lives behind one atomic pointer to an immutable
// kind-indexed array, so indexes can be hot-swapped (Swap) or the whole
// set replaced in a single atomic step (Replace) while any number of
// queries run concurrently: a query observes either the old index or
// the new one, never a torn mix, and never blocks behind a reload.
type Store struct {
	c       *Collection
	indexes atomic.Pointer[[3]*PatternIndex] // slot k-1 holds the index of concrete kind k
}

// NewStore creates an empty store over the collection. Populate it with
// Swap or Replace, or mine all kinds in one pass with
// Collection.MineStore.
func NewStore(c *Collection) *Store {
	s := &Store{c: c}
	s.indexes.Store(new([3]*PatternIndex))
	return s
}

// Collection returns the collection the store's indexes are mined from.
func (s *Store) Collection() *Collection { return s.c }

// slot maps a concrete kind to its array slot.
func slot(kind Kind) (int, error) {
	if _, ok := kind.patternKind(); !ok {
		return 0, fmt.Errorf("stburst: store slots hold concrete pattern kinds, not %v", kind)
	}
	return int(kind) - 1, nil
}

// checkResident validates an index against the slot it is headed for:
// the kind must match the patterns the index actually stores, and the
// index must be attached to the store's own collection — an index mined
// from (or loaded against) a different collection would answer queries
// with foreign document IDs.
func (s *Store) checkResident(kind Kind, ix *PatternIndex) error {
	if ix.PatternKind() != kind {
		return fmt.Errorf("stburst: store slot %v cannot hold a %v index", kind, ix.PatternKind())
	}
	if ix.c != s.c {
		return fmt.Errorf("stburst: %v index is attached to a different collection than the store", kind)
	}
	return nil
}

// Swap atomically installs ix as the resident index of the given
// concrete kind and returns the index it replaced (nil when the slot
// was empty). A nil ix removes the kind from the store. In-flight
// queries keep the index they already resolved; new queries see the
// replacement immediately.
func (s *Store) Swap(kind Kind, ix *PatternIndex) (*PatternIndex, error) {
	i, err := slot(kind)
	if err != nil {
		return nil, err
	}
	if ix != nil {
		if err := s.checkResident(kind, ix); err != nil {
			return nil, err
		}
	}
	for {
		old := s.indexes.Load()
		next := *old
		next[i] = ix
		if s.indexes.CompareAndSwap(old, &next) {
			return old[i], nil
		}
	}
}

// Replace atomically replaces the whole resident set with the given
// indexes — the reload primitive: a concurrent query sees either the
// complete old set or the complete new set, never one kind from each.
// Kinds absent from ixs become non-resident. Two indexes of the same
// kind, a foreign-collection index, or a nil entry is an error, and on
// any error the store is left untouched.
func (s *Store) Replace(ixs ...*PatternIndex) error {
	var next [3]*PatternIndex
	for _, ix := range ixs {
		if ix == nil {
			return errors.New("stburst: Replace: nil index (omit the kind instead)")
		}
		kind := ix.PatternKind()
		i, err := slot(kind)
		if err != nil {
			return err
		}
		if err := s.checkResident(kind, ix); err != nil {
			return err
		}
		if next[i] != nil {
			return fmt.Errorf("stburst: Replace: two %v indexes", kind)
		}
		next[i] = ix
	}
	s.indexes.Store(&next)
	return nil
}

// Index returns the resident index of a concrete kind, or nil when the
// kind is not resident (or kind is KindAny).
func (s *Store) Index(kind Kind) *PatternIndex {
	i, err := slot(kind)
	if err != nil {
		return nil
	}
	return s.indexes.Load()[i]
}

// Kinds returns the resident kinds in canonical (regional,
// combinatorial, temporal) order.
func (s *Store) Kinds() []Kind {
	var kinds []Kind
	for _, ix := range s.Resident() {
		kinds = append(kinds, ix.PatternKind())
	}
	return kinds
}

// Resident returns the resident indexes in canonical kind order, all
// taken from one atomic snapshot of the resident set — unlike a
// Kinds()/Index() loop, the result can never interleave two
// generations across a concurrent Swap or Replace.
func (s *Store) Resident() []*PatternIndex {
	resident := s.indexes.Load()
	var out []*PatternIndex
	for _, k := range Kinds() {
		if ix := resident[int(k)-1]; ix != nil {
			out = append(out, ix)
		}
	}
	return out
}

// Query executes a structured query against the store. A concrete
// Query.Kind routes to that kind's resident index (ErrKindNotResident,
// wrapped, when the store holds none). KindAny — the zero Kind, so also
// an absent "kind" in the JSON shape — fans out to every resident index
// over one consistent atomic snapshot of the resident set and merges
// the per-kind rankings into a single list ordered by descending score
// (ties by document ID, then kind). Each hit carries the Kind that
// scored it, and a document retrieved by several kinds appears once per
// kind: the fan-out deliberately surfaces how the models rank the same
// document differently rather than collapsing them.
//
// MinScore, Region and Time apply within each kind exactly as in
// Engine.Run; Offset/K page the merged list. The page's More flag
// reports whether hits exist beyond it in the merged ranking.
func (s *Store) Query(ctx context.Context, q Query) (ResultPage, error) {
	if err := q.Validate(); err != nil {
		return ResultPage{}, err
	}
	if q.Kind != KindAny {
		ix := s.Index(q.Kind)
		if ix == nil {
			return ResultPage{}, fmt.Errorf("%w: %v", ErrKindNotResident, q.Kind)
		}
		return ix.Query(ctx, q)
	}

	resident := s.indexes.Load() // one snapshot for the whole fan-out
	// Each kind must contribute enough of its own ranking to fill the
	// merged page: the first Offset+K merged hits can in the worst case
	// all come from one kind. Fetch one beyond the page to learn whether
	// more exist, capping at MaxK (which Validate guarantees each of
	// Offset and K respects individually).
	need := q.Offset + q.k() + 1
	if need > MaxK {
		need = MaxK
	}
	var merged []Hit
	more := false
	queried := false
	for _, kind := range Kinds() {
		ix := resident[int(kind)-1]
		if ix == nil {
			continue
		}
		queried = true
		sub := q
		sub.Kind = kind
		sub.K = need
		sub.Offset = 0
		page, err := ix.Query(ctx, sub)
		if err != nil {
			return ResultPage{}, err
		}
		merged = append(merged, page.Hits...)
		more = more || page.More
	}
	if !queried {
		return ResultPage{}, fmt.Errorf("%w: store holds no indexes", ErrKindNotResident)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		if merged[i].Doc.ID != merged[j].Doc.ID {
			return merged[i].Doc.ID < merged[j].Doc.ID
		}
		return merged[i].Kind < merged[j].Kind
	})
	if q.Offset >= len(merged) {
		return ResultPage{More: false}, nil
	}
	end := q.Offset + q.k()
	if end > len(merged) {
		end = len(merged)
	} else if end < len(merged) {
		more = true
	}
	out := make([]Hit, end-q.Offset)
	copy(out, merged[q.Offset:end])
	return ResultPage{Hits: out, More: more}, nil
}

// residentSets returns the pattern sets of the resident indexes in
// canonical kind order — the bundle member order.
func (s *Store) residentSets() ([]*index.PatternSet, error) {
	resident := s.indexes.Load()
	var sets []*index.PatternSet
	for _, k := range Kinds() {
		if ix := resident[int(k)-1]; ix != nil {
			sets = append(sets, ix.set)
		}
	}
	if len(sets) == 0 {
		return nil, errors.New("stburst: cannot save an empty store")
	}
	return sets, nil
}

// Save serializes every resident index into one versioned bundle: a
// manifest listing each member's kind, byte length and canonical
// fingerprint, followed by the members as ordinary snapshot streams and
// a stream checksum over the whole file (see DESIGN.md for the layout).
// LoadStore verifies all of it on the way back in. An empty store
// cannot be saved.
func (s *Store) Save(w io.Writer) error {
	sets, err := s.residentSets()
	if err != nil {
		return err
	}
	return index.WriteBundle(w, sets, s.c.col.Dict().Term)
}

// SaveFile saves the store as a bundle file, atomically: the bundle is
// written to a temp file in the destination directory and renamed over
// the target, so an interrupted save never leaves a truncated file.
func (s *Store) SaveFile(path string) error {
	sets, err := s.residentSets()
	if err != nil {
		return err
	}
	return index.WriteBundleFile(path, sets, s.c.col.Dict().Term)
}

// LoadStore reads a store from r and attaches it to a collection
// holding the same corpus. It accepts both on-disk formats: a bundle
// written by Store.Save (every member index becomes resident) and a
// plain single-index snapshot written by PatternIndex.Save (the store
// holds that one kind), so a serving process boots from whichever
// artifact the mining pipeline produced. Every member is integrity-
// checked exactly as LoadPatternIndex would: stream checksums, the
// canonical per-kind fingerprints (which must also match the bundle
// manifest), vocabulary membership and structural fit against the
// collection. Any failure is an error; no partially loaded store is
// returned.
func LoadStore(r io.Reader, c *Collection) (*Store, error) {
	snaps, err := index.ReadStore(r)
	if err != nil {
		return nil, fmt.Errorf("stburst: loading store: %w", err)
	}
	ixs := make([]*PatternIndex, len(snaps))
	for i, snap := range snaps {
		ix, err := attachSnapshot(snap, c)
		if err != nil {
			return nil, fmt.Errorf("stburst: loading store: %v member: %w", kindOf(snap.Set.Kind()), err)
		}
		ixs[i] = ix
	}
	s := NewStore(c)
	if err := s.Replace(ixs...); err != nil {
		return nil, fmt.Errorf("stburst: loading store: %w", err)
	}
	return s, nil
}
