package stburst

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrIngesterClosed is returned by Add and Flush after Close.
var ErrIngesterClosed = errors.New("stburst: ingester is closed")

// Ingester batches live document arrival in front of Store.Ingest: every
// ingest pays one incremental re-mine of the dirty terms, so feeding
// documents one by one re-mines per document while a batch amortizes the
// cost over its whole window. Documents queue in memory until the batch
// reaches the flush size (flushed synchronously inside Add, providing
// natural backpressure) or the flush interval elapses (flushed by a
// background goroutine), whichever comes first.
//
// An Ingester is safe for concurrent use. Close flushes whatever is
// still buffered and stops the background flusher; documents added and
// not yet flushed are never dropped except by a failing Ingest, whose
// error Close (or the OnFlush callback) reports.
//
// The Ingester buffers in memory: documents become crash-durable only
// when a flush hands them to Store.Ingest, which — on a store with a
// write-ahead log attached — fsyncs the batch before applying it. A
// process crash loses at most the documents still buffered here, never
// a batch a flush already logged.
type Ingester struct {
	s         *Store
	flushDocs int
	interval  time.Duration
	onFlush   func(IngestResult, error)

	mu      sync.Mutex
	buf     []IncomingDocument
	closed  bool
	lastErr error // most recent asynchronous flush failure, surfaced by Close
	// repair is set when a flush ended in ErrIngestIncomplete: the batch
	// was appended and dropped from the buffer, but the store still owes
	// its index refresh — the next flush must run even with an empty
	// buffer so the owed dirty terms get re-mined.
	repair bool

	// pendingN mirrors len(buf) so Pending never blocks behind an
	// in-flight flush (mu is held across Store.Ingest, which can take
	// seconds on a large corpus — a stats poll must not stall on it).
	pendingN atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// IngesterOption configures an Ingester functional-style.
type IngesterOption func(*Ingester)

// WithFlushDocs sets the flush size: Add flushes synchronously once the
// buffer holds at least n documents. Values below 1 are clamped to 1
// (the default), which flushes every Add call immediately — each call's
// whole batch still amortizes one re-mine.
func WithFlushDocs(n int) IngesterOption {
	return func(g *Ingester) {
		if n < 1 {
			n = 1
		}
		g.flushDocs = n
	}
}

// WithFlushInterval sets the flush interval: a background goroutine
// flushes any buffered documents every d, so a trickle of arrivals
// never waits indefinitely for the flush size. d <= 0 (the default)
// disables the background flusher.
func WithFlushInterval(d time.Duration) IngesterOption {
	return func(g *Ingester) { g.interval = d }
}

// WithOnFlush installs a callback invoked after every attempted flush
// with its result or error — the observability hook for asynchronous
// (interval-driven) flushes, whose errors otherwise surface only from
// Close. The callback runs on the flushing goroutine while the ingester
// is locked: it must not call back into the Ingester (Add, Flush,
// Pending, Close), or it deadlocks.
func WithOnFlush(f func(IngestResult, error)) IngesterOption {
	return func(g *Ingester) { g.onFlush = f }
}

// NewIngester creates an ingester over the store. The zero configuration
// flushes every Add immediately and runs no background flusher.
func NewIngester(s *Store, opts ...IngesterOption) *Ingester {
	g := &Ingester{s: s, flushDocs: 1}
	for _, o := range opts {
		o(g)
	}
	if g.interval > 0 {
		g.stop = make(chan struct{})
		g.done = make(chan struct{})
		go g.loop()
	}
	return g
}

// loop is the background flusher: every interval it flushes whatever is
// buffered.
func (g *Ingester) loop() {
	defer close(g.done)
	t := time.NewTicker(g.interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.mu.Lock()
			if !g.closed && (len(g.buf) > 0 || g.repair) {
				g.flushLocked(context.Background())
			}
			g.mu.Unlock()
		}
	}
}

// Add queues documents, flushing synchronously when the buffer reaches
// the flush size. When a flush happened it returns the batch's result;
// a nil result means the documents are buffered and will ride a later
// flush. A flush error that precedes the append (invalid batch,
// cancelled context) leaves the documents buffered for retry; an
// ErrIngestIncomplete means they were appended and are dropped from the
// buffer — the store repairs the index refresh on the next flush.
func (g *Ingester) Add(docs ...IncomingDocument) (*IngestResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrIngesterClosed
	}
	g.buf = append(g.buf, docs...)
	g.pendingN.Store(int64(len(g.buf)))
	if len(g.buf) < g.flushDocs {
		return nil, nil
	}
	res, err := g.flushLocked(context.Background())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Pending returns the number of buffered documents not yet ingested.
// During a flush the documents being applied still count as pending —
// they are not applied to the store until Ingest returns, and with a
// write-ahead log attached they become durable partway through the
// flush, the moment Ingest has fsync'd the batch (logged ⇒ replayable:
// from that point a crash replays them on boot even though Pending
// still counts them). Without a WAL they are memory-only either way.
// Pending never blocks behind an in-flight flush.
func (g *Ingester) Pending() int {
	return int(g.pendingN.Load())
}

// Flush applies everything buffered right now, regardless of the flush
// size. With an empty buffer it is a no-op reporting the store's
// current generation.
func (g *Ingester) Flush(ctx context.Context) (*IngestResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrIngesterClosed
	}
	return g.flushLocked(ctx)
}

// flushLocked ingests the buffered batch; callers hold mu. On success
// the buffer resets. An error from before the append leaves the buffer
// intact so the documents retry on the next flush; ErrIngestIncomplete
// means the documents WERE appended, so the buffer resets too —
// retrying them would duplicate the batch in the collection, and the
// store itself remembers the terms whose refresh is still owed.
func (g *Ingester) flushLocked(ctx context.Context) (*IngestResult, error) {
	if len(g.buf) == 0 && !g.repair {
		return &IngestResult{Generation: g.s.Generation(), TotalDocs: g.s.c.NumDocs()}, nil
	}
	// With an empty buffer but repair owed, the empty Ingest re-mines
	// the store's remembered stale dirty terms.
	res, err := g.s.Ingest(ctx, g.buf)
	if err != nil {
		if errors.Is(err, ErrIngestIncomplete) {
			g.buf = nil
			g.pendingN.Store(0)
			g.repair = true
		}
		g.lastErr = err
		if g.onFlush != nil {
			g.onFlush(IngestResult{}, err)
		}
		return nil, err
	}
	g.buf = nil
	g.pendingN.Store(0)
	g.repair = false
	g.lastErr = nil
	if g.onFlush != nil {
		g.onFlush(res, nil)
	}
	return &res, nil
}

// Close stops the background flusher, flushes whatever is still
// buffered, and marks the ingester closed: subsequent Add/Flush calls
// return ErrIngesterClosed. It returns the final flush's error, or —
// when nothing was left to flush — the most recent asynchronous flush
// failure, so a silently failing interval flusher cannot drop documents
// without anyone noticing.
func (g *Ingester) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	if g.stop != nil {
		close(g.stop)
		<-g.done
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.buf) > 0 || g.repair {
		if _, err := g.flushLocked(context.Background()); err != nil {
			return err
		}
		return nil
	}
	return g.lastErr
}
