package stburst

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// twoBurstCollection builds a corpus with the same term bursting in two
// geographically and temporally separated clusters: "earthquake" in the
// andes pair (around the origin) at weeks 4-6 and in the japan pair
// (far corner of the map) at weeks 10-12. Spatiotemporal filters can
// then isolate either wave.
func twoBurstCollection(t *testing.T) *Collection {
	t.Helper()
	streams := []StreamInfo{
		{Name: "lima", Location: Point{X: 0, Y: 0}},
		{Name: "quito", Location: Point{X: 2, Y: 1}},
		{Name: "tokyo", Location: Point{X: 90, Y: 80}},
		{Name: "osaka", Location: Point{X: 92, Y: 78}},
	}
	c := NewCollection(streams, 16)
	add := func(s, w int, text string) {
		t.Helper()
		if _, err := c.AddText(s, w, text); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 16; w++ {
		add(0, w, "local politics and weather report")
		add(1, w, "markets update and weather report")
		add(2, w, "technology news and weather report")
		add(3, w, "shipping schedules and weather report")
	}
	for w := 4; w <= 6; w++ {
		for i := 0; i < 4; i++ {
			add(0, w, "earthquake damage rescue earthquake")
			add(1, w, "earthquake tremors felt across the border")
		}
	}
	for w := 10; w <= 12; w++ {
		for i := 0; i < 4; i++ {
			add(2, w, "earthquake strikes offshore rescue crews deploy")
			add(3, w, "earthquake aftershocks rattle the coast")
		}
	}
	return c
}

var (
	andesRegion = Rect{MinX: -1, MinY: -1, MaxX: 5, MaxY: 5}
	japanRegion = Rect{MinX: 85, MinY: 75, MaxX: 95, MaxY: 85}
	andesTime   = Timespan{Start: 4, End: 6}
	japanTime   = Timespan{Start: 10, End: 12}
)

func TestQueryValidate(t *testing.T) {
	valid := Query{Text: "earthquake", K: 5}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	cases := map[string]Query{
		"empty":             {},
		"text and terms":    {Text: "a", Terms: []string{"b"}},
		"negative k":        {Text: "a", K: -1},
		"negative offset":   {Text: "a", Offset: -2},
		"k beyond MaxK":     {Text: "a", K: MaxK + 1},
		"offset beyond max": {Text: "a", Offset: MaxK + 1},
		"nan min score":     {Text: "a", MinScore: math.NaN()},
		"inf min score":     {Text: "a", MinScore: math.Inf(1)},
		"inverted region x": {Text: "a", Region: &Rect{MinX: 5, MaxX: 1, MinY: 0, MaxY: 1}},
		"inverted region y": {Text: "a", Region: &Rect{MinX: 0, MaxX: 1, MinY: 5, MaxY: 1}},
		"inverted timespan": {Text: "a", Time: &Timespan{Start: 7, End: 3}},
	}
	for name, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, q)
		}
	}
	// Zero-area regions and single-timestamp spans are valid: Rect is
	// closed and Timespan inclusive.
	point := Query{Text: "a", Region: &Rect{MinX: 3, MinY: 3, MaxX: 3, MaxY: 3}, Time: &Timespan{Start: 5, End: 5}}
	if err := point.Validate(); err != nil {
		t.Fatalf("degenerate region/span rejected: %v", err)
	}
}

// mineKinds mines the collection with every pattern kind.
func mineKinds(t *testing.T, c *Collection) map[Kind]*PatternIndex {
	t.Helper()
	out := make(map[Kind]*PatternIndex)
	for _, kind := range []Kind{KindRegional, KindCombinatorial, KindTemporal} {
		ix, err := c.Mine(context.Background(), kind, nil)
		if err != nil {
			t.Fatalf("Mine(%v): %v", kind, err)
		}
		out[kind] = ix
	}
	return out
}

// contributingPatternIntersects is the brute-force oracle for the
// spatiotemporal post-filter: does some pattern of some query term both
// overlap the hit's document and intersect the filter region/span?
func contributingPatternIntersects(c *Collection, ix *PatternIndex, terms []string, h Hit, region *Rect, span *Timespan) bool {
	spanOK := func(start, end int) bool {
		return span == nil || (start <= span.End && span.Start <= end)
	}
	for _, term := range terms {
		switch ix.PatternKind() {
		case KindRegional:
			for _, w := range ix.RegionalPatterns(term) {
				if w.Overlaps(h.Doc.Stream, h.Doc.Time) &&
					(region == nil || w.Rect.Intersects(*region)) &&
					spanOK(w.Start, w.End) {
					return true
				}
			}
		case KindCombinatorial:
			for _, p := range ix.CombinatorialPatterns(term) {
				if !p.OverlapsMember(h.Doc.Stream, h.Doc.Time) || !spanOK(p.Start, p.End) {
					continue
				}
				if region == nil {
					return true
				}
				for _, x := range p.Streams {
					if region.Contains(c.Stream(x).Location) {
						return true
					}
				}
			}
		case KindTemporal:
			// Merged-stream intervals carry no geography: they span the
			// whole map, so any region intersects.
			for _, iv := range ix.TemporalBursts(term) {
				if h.Doc.Time >= iv.Start && h.Doc.Time <= iv.End && spanOK(iv.Start, iv.End) {
					return true
				}
			}
		}
	}
	return false
}

// TestRunFilteredMatchesBruteForce is the acceptance check of the
// redesign: a Region/Time-filtered Run returns exactly the subset of the
// unfiltered hits whose contributing patterns intersect the filter.
func TestRunFilteredMatchesBruteForce(t *testing.T) {
	c := twoBurstCollection(t)
	ctx := context.Background()
	queries := []struct {
		name   string
		region *Rect
		span   *Timespan
	}{
		{"andes region", &andesRegion, nil},
		{"japan region", &japanRegion, nil},
		{"andes time", nil, &andesTime},
		{"japan time", nil, &japanTime},
		{"andes region+time", &andesRegion, &andesTime},
		{"mismatched region+time", &andesRegion, &japanTime},
	}
	terms := []string{"earthquake", "rescue"}
	for kind, ix := range mineKinds(t, c) {
		base, err := ix.Query(ctx, Query{Text: "earthquake rescue", K: c.NumDocs()})
		if err != nil {
			t.Fatalf("%v: unfiltered Query: %v", kind, err)
		}
		if base.More {
			t.Fatalf("%v: K=NumDocs still reports more hits", kind)
		}
		for _, tc := range queries {
			got, err := ix.Query(ctx, Query{
				Text: "earthquake rescue", K: c.NumDocs(),
				Region: tc.region, Time: tc.span,
			})
			if err != nil {
				t.Fatalf("%v/%s: filtered Query: %v", kind, tc.name, err)
			}
			var want []Hit
			for _, h := range base.Hits {
				if contributingPatternIntersects(c, ix, terms, h, tc.region, tc.span) {
					want = append(want, h)
				}
			}
			if !reflect.DeepEqual(got.Hits, want) {
				t.Errorf("%v/%s: filtered hits = %d docs, brute force wants %d\n got: %+v\nwant: %+v",
					kind, tc.name, len(got.Hits), len(want), got.Hits, want)
			}
		}
	}
}

// TestRunFilterSeparatesWaves pins the headline behavior: region and
// timeframe filters isolate the right burst cluster.
func TestRunFilterSeparatesWaves(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, q Query, wantStreams map[string]bool) {
		t.Helper()
		page, err := ix.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(page.Hits) == 0 && len(wantStreams) > 0 {
			t.Fatalf("%s: no hits", name)
		}
		for _, h := range page.Hits {
			if !wantStreams[h.Stream] {
				t.Errorf("%s: hit from unexpected stream %s (doc %d, week %d)", name, h.Stream, h.Doc.ID, h.Doc.Time)
			}
		}
	}
	check("andes region", Query{Text: "earthquake", K: 100, Region: &andesRegion},
		map[string]bool{"lima": true, "quito": true})
	check("japan region", Query{Text: "earthquake", K: 100, Region: &japanRegion},
		map[string]bool{"tokyo": true, "osaka": true})
	check("andes time", Query{Text: "earthquake", K: 100, Time: &andesTime},
		map[string]bool{"lima": true, "quito": true})
	check("japan time", Query{Text: "earthquake", K: 100, Time: &japanTime},
		map[string]bool{"tokyo": true, "osaka": true})
	// A region and a timeframe that belong to different waves share no
	// contributing pattern.
	page, err := ix.Query(context.Background(), Query{Text: "earthquake", K: 100, Region: &japanRegion, Time: &andesTime})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) != 0 {
		t.Errorf("mismatched region+time returned %d hits", len(page.Hits))
	}
}

// TestSearchMatchesRun: the legacy free-text entry point is a thin
// wrapper over Run and returns identical hits.
func TestSearchMatchesRun(t *testing.T) {
	c := twoBurstCollection(t)
	for kind, ix := range mineKinds(t, c) {
		e := ix.Engine()
		for _, q := range []string{"earthquake", "earthquake rescue", "nosuchterm", "", "and"} {
			for _, k := range []int{0, 1, 3, 1000} {
				legacy := e.Search(q, k)
				page, err := e.Run(context.Background(), Query{Text: q, K: k})
				if q == "" || k <= 0 {
					// Validate rejects these; the wrapper maps them to nil.
					if legacy != nil {
						t.Errorf("%v: Search(%q, %d) = %v, want nil", kind, q, k, legacy)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%v: Run(%q, %d): %v", kind, q, k, err)
				}
				if !reflect.DeepEqual(legacy, page.Hits) {
					t.Errorf("%v: Search(%q, %d) and Run disagree:\n%v\n%v", kind, q, k, legacy, page.Hits)
				}
			}
		}
	}
}

// TestRunTermsQuery: pre-split Terms behave like the equivalent Text.
func TestRunTermsQuery(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	text, err := ix.Query(ctx, Query{Text: "earthquake rescue", K: 50})
	if err != nil {
		t.Fatal(err)
	}
	terms, err := ix.Query(ctx, Query{Terms: []string{"earthquake", "rescue"}, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(text.Hits, terms.Hits) {
		t.Errorf("Terms query diverges from Text query:\n%v\n%v", text.Hits, terms.Hits)
	}
	// A multi-word entry contributes every token.
	multi, err := ix.Query(ctx, Query{Terms: []string{"earthquake rescue"}, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(text.Hits, multi.Hits) {
		t.Errorf("multi-word Terms entry diverges from Text query")
	}
	// Unknown and stopword-only terms match nothing, without error.
	for _, ts := range [][]string{{"nosuchterm"}, {"and"}, {"earthquake", "nosuchterm"}} {
		page, err := ix.Query(ctx, Query{Terms: ts, K: 50})
		if err != nil {
			t.Fatalf("Terms %v: %v", ts, err)
		}
		if len(page.Hits) != 0 {
			t.Errorf("Terms %v returned %d hits, want 0", ts, len(page.Hits))
		}
	}
}

// TestRunPagination: Offset/K window the ranked list without gaps or
// overlaps, More flags the existence of later pages, and an Offset past
// the result set yields an empty page.
func TestRunPagination(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all, err := ix.Query(ctx, Query{Text: "earthquake", K: c.NumDocs()})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Hits) < 5 {
		t.Fatalf("need at least 5 hits to paginate, got %d", len(all.Hits))
	}
	var paged []Hit
	const k = 3
	for offset := 0; ; offset += k {
		page, err := ix.Query(ctx, Query{Text: "earthquake", K: k, Offset: offset})
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, page.Hits...)
		wantMore := offset+len(page.Hits) < len(all.Hits)
		if page.More != wantMore {
			t.Fatalf("offset %d: More = %v, want %v", offset, page.More, wantMore)
		}
		if !page.More {
			break
		}
	}
	if !reflect.DeepEqual(paged, all.Hits) {
		t.Errorf("concatenated pages diverge from the full list: %d vs %d hits", len(paged), len(all.Hits))
	}
	// Offset past the end of the result set.
	past, err := ix.Query(ctx, Query{Text: "earthquake", K: k, Offset: len(all.Hits) + 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(past.Hits) != 0 || past.More {
		t.Errorf("offset past the results: page %+v, want empty and no more", past)
	}
}

// TestRunMinScore: the threshold prunes the tail, and one above every
// score empties the page.
func TestRunMinScore(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all, err := ix.Query(ctx, Query{Text: "earthquake", K: c.NumDocs()})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Hits) < 2 {
		t.Fatalf("need hits, got %d", len(all.Hits))
	}
	top, bottom := all.Hits[0].Score, all.Hits[len(all.Hits)-1].Score
	if top <= bottom {
		t.Skipf("degenerate score distribution: top %v bottom %v", top, bottom)
	}
	mid := (top + bottom) / 2
	page, err := ix.Query(ctx, Query{Text: "earthquake", K: c.NumDocs(), MinScore: mid})
	if err != nil {
		t.Fatal(err)
	}
	var want []Hit
	for _, h := range all.Hits {
		if h.Score >= mid {
			want = append(want, h)
		}
	}
	if !reflect.DeepEqual(page.Hits, want) {
		t.Errorf("MinScore %v kept %d hits, want %d", mid, len(page.Hits), len(want))
	}
	empty, err := ix.Query(ctx, Query{Text: "earthquake", K: 10, MinScore: top + 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Hits) != 0 || empty.More {
		t.Errorf("MinScore above every hit: page %+v, want empty", empty)
	}
}

// TestRunDegenerateRegions: a zero-area region is a valid point filter —
// inside a burst's rectangle it keeps the wave, in empty space it
// excludes everything.
func TestRunDegenerateRegions(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	at := func(x, y float64) *Rect { return &Rect{MinX: x, MinY: y, MaxX: x, MaxY: y} }
	hit, err := ix.Query(ctx, Query{Text: "earthquake", K: 100, Region: at(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(hit.Hits) == 0 {
		t.Error("point region at lima matched nothing")
	}
	for _, h := range hit.Hits {
		if h.Stream == "tokyo" || h.Stream == "osaka" {
			t.Errorf("point region at lima returned %s hit", h.Stream)
		}
	}
	miss, err := ix.Query(ctx, Query{Text: "earthquake", K: 100, Region: at(50, 50)})
	if err != nil {
		t.Fatal(err)
	}
	if len(miss.Hits) != 0 {
		t.Errorf("point region in empty space returned %d hits", len(miss.Hits))
	}
}

// TestRunCancelled: a cancelled context aborts the query with ctx.Err().
func TestRunCancelled(t *testing.T) {
	c := twoBurstCollection(t)
	ix, err := c.Mine(context.Background(), KindRegional, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.Query(ctx, Query{Text: "earthquake", K: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query with cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestMineCancelled: a cancelled context makes Mine return promptly with
// ctx.Err() instead of an index.
func TestMineCancelled(t *testing.T) {
	c := twoBurstCollection(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range []Kind{KindRegional, KindCombinatorial, KindTemporal} {
		ix, err := c.Mine(ctx, kind, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Mine(%v) with cancelled context: err = %v, want context.Canceled", kind, err)
		}
		if ix != nil {
			t.Errorf("Mine(%v) with cancelled context returned an index", kind)
		}
	}
}

// TestMineMatchesBatchMiners: the unified entry point reproduces the
// MineAll* convenience miners bit for bit, for every kind and option
// style.
func TestMineMatchesBatchMiners(t *testing.T) {
	c := twoBurstCollection(t)
	ctx := context.Background()
	cases := []struct {
		kind Kind
		opts *MineOptions
		want *PatternIndex
	}{
		{KindRegional, nil, c.MineAllRegional(nil, 0)},
		{KindRegional, NewMineOptions(WithParallelism(1)), c.MineAllRegional(nil, 1)},
		{KindRegional, NewMineOptions(WithRegional(&RegionalOptions{Baseline: BaselineEWMA})),
			c.MineAllRegional(&RegionalOptions{Baseline: BaselineEWMA}, 0)},
		{KindCombinatorial, nil, c.MineAllCombinatorial(nil, 0)},
		{KindCombinatorial, NewMineOptions(WithCombinatorial(&CombinatorialOptions{MaxPatterns: 2})),
			c.MineAllCombinatorial(&CombinatorialOptions{MaxPatterns: 2}, 0)},
		{KindTemporal, nil, c.MineAllTemporal(0)},
	}
	for _, tc := range cases {
		ix, err := c.Mine(ctx, tc.kind, tc.opts)
		if err != nil {
			t.Fatalf("Mine(%v): %v", tc.kind, err)
		}
		if ix.Fingerprint() != tc.want.Fingerprint() {
			t.Errorf("Mine(%v, %+v) fingerprint diverges from the batch miner", tc.kind, tc.opts)
		}
	}
	if _, err := c.Mine(ctx, Kind(99), nil); err == nil {
		t.Error("Mine with unknown kind succeeded")
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"any":      KindAny,
		"regional": KindRegional, "stlocal": KindRegional,
		"combinatorial": KindCombinatorial, "stcomb": KindCombinatorial,
		"temporal": KindTemporal, "tb": KindTemporal,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
	if KindAny.String() != "any" || KindRegional.String() != "regional" ||
		KindCombinatorial.String() != "combinatorial" || KindTemporal.String() != "temporal" {
		t.Error("Kind.String mismatch")
	}
	// KindAny is the zero value: an absent kind means "every resident
	// index" on the Store surface.
	var zero Kind
	if zero != KindAny {
		t.Error("zero Kind is not KindAny")
	}
	// Mine needs a concrete kind.
	if _, err := twoBurstCollection(t).Mine(context.Background(), KindAny, nil); err == nil {
		t.Error("Mine accepted KindAny")
	}
}

// TestCombinatorialMinerOptions: the streaming miner honors the batch
// options it shares with STComb.
func TestCombinatorialMinerOptions(t *testing.T) {
	push := func(m *CombinatorialMiner) {
		t.Helper()
		for i := 0; i < 8; i++ {
			obs := []float64{1, 1}
			if i == 4 {
				obs = []float64{9, 9}
			}
			if err := m.Push(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := NewCombinatorialMiner(2, nil)
	push(base)
	if len(base.Patterns(0)) == 0 {
		t.Fatal("nil-options miner found no patterns")
	}
	capped := NewCombinatorialMiner(2, &CombinatorialOptions{MaxPatterns: 1})
	push(capped)
	if got := len(capped.Patterns(0)); got > 1 {
		t.Errorf("MaxPatterns 1 returned %d patterns", got)
	}
	heavy := NewCombinatorialMiner(2, &CombinatorialOptions{MinIntervalMass: 1e9})
	push(heavy)
	if got := len(heavy.Patterns(0)); got != 0 {
		t.Errorf("MinIntervalMass 1e9 returned %d patterns, want 0", got)
	}
	strict := NewCombinatorialMiner(2, &CombinatorialOptions{MinIntervalScore: 1e9})
	push(strict)
	if got := len(strict.Patterns(0)); got != 0 {
		t.Errorf("MinIntervalScore 1e9 returned %d patterns, want 0", got)
	}
}
