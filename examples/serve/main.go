// Serve walkthrough: the mine-once/serve-many workflow in one process.
// A collection is mined into a PatternIndex, saved as a snapshot file,
// reloaded with integrity verification, and queried — exactly what the
// stmine -o / stserve pair does across process boundaries (see README.md
// in this directory for the CLI version).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"stburst"
)

func main() {
	// A tiny corpus: an earthquake story bursting in two Andean capitals.
	streams := []stburst.StreamInfo{
		{Name: "lima", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "quito", Location: stburst.Point{X: 3, Y: 2}},
		{Name: "tokyo", Location: stburst.Point{X: 95, Y: 80}},
	}
	c := stburst.NewCollection(streams, 12)
	add := func(s, w int, text string) {
		if _, err := c.AddText(s, w, text); err != nil {
			log.Fatal(err)
		}
	}
	for w := 0; w < 12; w++ {
		add(0, w, "markets steady calm trading")
		add(1, w, "football results weather outlook")
		add(2, w, "technology exports quarterly report")
	}
	for w := 5; w <= 7; w++ {
		for i := 0; i < 4; i++ {
			add(0, w, "earthquake shakes coast rescue teams respond")
			add(1, w, "earthquake tremors felt across the border")
		}
	}

	// Mine once: every term, in parallel.
	mined := c.MineAllRegional(nil, 0)
	fmt.Printf("mined: %d terms, %d patterns\n", mined.NumTerms(), mined.NumPatterns())
	fmt.Printf("fingerprint: %.16s...\n", mined.Fingerprint())

	// Save the snapshot — this file is what stserve loads at boot.
	path := filepath.Join(os.TempDir(), "serve-example.stb")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := mined.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %s (%d bytes)\n", path, info.Size())
	defer os.Remove(path)

	// Load it back. The codec verifies a stream checksum and the
	// canonical fingerprint; a truncated or corrupted file is rejected.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := stburst.LoadPatternIndex(f, c)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded fingerprint matches: %v\n", loaded.Fingerprint() == mined.Fingerprint())

	// Serve queries from the loaded index: per-term pattern lookups and
	// TA-backed top-k search, with nothing ever re-mined.
	for _, p := range loaded.RegionalPatterns("earthquake") {
		fmt.Printf("pattern: weeks [%d,%d]  w-score %.2f  %d streams\n",
			p.Start, p.End, p.Score, len(p.Streams))
	}
	for i, h := range loaded.Search("earthquake rescue", 3) {
		fmt.Printf("hit %d: doc %d from %s at week %d (score %.2f)\n",
			i+1, h.Doc.ID, h.Stream, h.Doc.Time, h.Score)
	}
}
