// Trendsearch: trend identification and bursty-document retrieval (§1.1
// of the paper). A product launch trends in two regions at different
// times; the example mines when and where each wave happened and then
// uses all three search-engine variants to retrieve launch coverage,
// showing how the temporal-only engine mixes the two waves while the
// spatial engines separate them.
package main

import (
	"fmt"
	"log"

	"stburst"
)

func main() {
	streams := []stburst.StreamInfo{
		{Name: "san-francisco", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "seattle", Location: stburst.Point{X: 2, Y: 5}},
		{Name: "berlin", Location: stburst.Point{X: 80, Y: 10}},
		{Name: "paris", Location: stburst.Point{X: 78, Y: 14}},
	}
	c := stburst.NewCollection(streams, 24)
	add := func(s, w int, text string) {
		if _, err := c.AddText(s, w, text); err != nil {
			log.Fatal(err)
		}
	}
	for w := 0; w < 24; w++ {
		for s := range streams {
			add(s, w, "city council news traffic housing")
		}
	}
	// US launch wave: weeks 4-6 on the west coast.
	for w := 4; w <= 6; w++ {
		for i := 0; i < 3; i++ {
			add(0, w, "gadget launch lines around the block, gadget reviews glowing")
			add(1, w, "gadget launch draws crowds downtown")
		}
	}
	// European launch wave: weeks 14-16.
	for w := 14; w <= 16; w++ {
		for i := 0; i < 3; i++ {
			add(2, w, "gadget launch hits stores, gadget demand strong")
			add(3, w, "gadget launch specials and gadget reviews")
		}
	}

	fmt.Println("== where and when did \"gadget\" trend? (STLocal) ==")
	for _, p := range c.RegionalPatterns("gadget", nil) {
		var names []string
		for _, s := range p.Streams {
			names = append(names, c.Stream(s).Name)
		}
		fmt.Printf("  weeks [%2d,%2d]  w-score %5.1f  %v\n", p.Start, p.End, p.Score, names)
	}

	fmt.Println("\n== top launch coverage per engine ==")
	show := func(name string, hits []stburst.Hit) {
		fmt.Printf("  %-9s:", name)
		for _, h := range hits {
			fmt.Printf(" %s/w%d", h.Stream, h.Doc.Time)
		}
		fmt.Println()
	}
	show("regional", stburst.NewRegionalEngine(c, nil).Search("gadget launch", 4))
	show("comb", stburst.NewCombinatorialEngine(c, nil).Search("gadget launch", 4))
	show("temporal", stburst.NewTemporalEngine(c).Search("gadget launch", 4))
}
