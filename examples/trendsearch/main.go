// Trendsearch: trend identification and bursty-document retrieval (§1.1
// of the paper). A product launch trends in two regions at different
// times; the example mines when and where each wave happened and then
// uses all three search-engine variants to retrieve launch coverage,
// showing how the temporal-only engine mixes the two waves while the
// spatial engines separate them.
package main

import (
	"context"
	"fmt"
	"log"

	"stburst"
)

func main() {
	streams := []stburst.StreamInfo{
		{Name: "san-francisco", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "seattle", Location: stburst.Point{X: 2, Y: 5}},
		{Name: "berlin", Location: stburst.Point{X: 80, Y: 10}},
		{Name: "paris", Location: stburst.Point{X: 78, Y: 14}},
	}
	c := stburst.NewCollection(streams, 24)
	add := func(s, w int, text string) {
		if _, err := c.AddText(s, w, text); err != nil {
			log.Fatal(err)
		}
	}
	for w := 0; w < 24; w++ {
		for s := range streams {
			add(s, w, "city council news traffic housing")
		}
	}
	// US launch wave: weeks 4-6 on the west coast.
	for w := 4; w <= 6; w++ {
		for i := 0; i < 3; i++ {
			add(0, w, "gadget launch lines around the block, gadget reviews glowing")
			add(1, w, "gadget launch draws crowds downtown")
		}
	}
	// European launch wave: weeks 14-16.
	for w := 14; w <= 16; w++ {
		for i := 0; i < 3; i++ {
			add(2, w, "gadget launch hits stores, gadget demand strong")
			add(3, w, "gadget launch specials and gadget reviews")
		}
	}

	fmt.Println("== where and when did \"gadget\" trend? (STLocal) ==")
	for _, p := range c.RegionalPatterns("gadget", nil) {
		var names []string
		for _, s := range p.Streams {
			names = append(names, c.Stream(s).Name)
		}
		fmt.Printf("  weeks [%2d,%2d]  w-score %5.1f  %v\n", p.Start, p.End, p.Score, names)
	}

	fmt.Println("\n== top launch coverage per engine ==")
	show := func(name string, hits []stburst.Hit) {
		fmt.Printf("  %-9s:", name)
		for _, h := range hits {
			fmt.Printf(" %s/w%d", h.Stream, h.Doc.Time)
		}
		fmt.Println()
	}
	// One pass over a shared worker pool mines every kind into a store
	// that serves the three models side by side.
	ctx := context.Background()
	store, err := c.MineStore(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, kind := range store.Kinds() {
		show(kind.String(), store.Index(kind).Search("gadget launch", 4))
	}

	// A KindAny query fans out to every model and merges the rankings;
	// each hit names the model that scored it.
	fmt.Println("\n== kind \"any\": all models merged, hits attributed ==")
	merged, err := store.Query(ctx, stburst.Query{Text: "gadget launch", K: 6})
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range merged.Hits {
		fmt.Printf("  %-13s %s/w%-2d score %5.1f\n", h.Kind, h.Stream, h.Doc.Time, h.Score)
	}

	// Structured queries isolate each wave by asking where and when:
	// the US launch near the west coast at weeks 4-6, the European one
	// around Berlin/Paris at weeks 14-16.
	fmt.Println("\n== structured queries: one wave at a time (regional engine) ==")
	ix := store.Index(stburst.KindRegional)
	waves := []struct {
		name   string
		region stburst.Rect
		time   stburst.Timespan
	}{
		{"US wave", stburst.Rect{MinX: -5, MinY: -5, MaxX: 10, MaxY: 10}, stburst.Timespan{Start: 4, End: 6}},
		{"EU wave", stburst.Rect{MinX: 70, MinY: 5, MaxX: 90, MaxY: 20}, stburst.Timespan{Start: 14, End: 16}},
	}
	for _, wave := range waves {
		page, err := ix.Query(ctx, stburst.Query{
			Text:   "gadget launch",
			K:      4,
			Region: &wave.region,
			Time:   &wave.time,
		})
		if err != nil {
			log.Fatal(err)
		}
		show(wave.name, page.Hits)
	}
}
