// Pandemic: the paper's motivating combinatorial scenario (§1) — a
// large-scale pandemic affects countries across the globe, with no
// spatial locality. STComb's clique-based patterns capture the arbitrary
// set of affected streams, while the regional miner can only offer
// rectangles; the example contrasts the two on the same data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stburst"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 40 countries scattered over the map; the outbreak hits 10 of them
	// chosen arbitrarily (no geographic structure), weeks 12-18.
	streams := make([]stburst.StreamInfo, 40)
	for i := range streams {
		streams[i] = stburst.StreamInfo{
			Name:     fmt.Sprintf("country-%02d", i),
			Location: stburst.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		}
	}
	affected := rng.Perm(40)[:10]

	c := stburst.NewCollection(streams, 30)
	for w := 0; w < 30; w++ {
		for s := range streams {
			if _, err := c.AddTokens(s, w, []string{"health", "ministry", "report"}); err != nil {
				log.Fatal(err)
			}
		}
	}
	for w := 12; w <= 18; w++ {
		for _, s := range affected {
			n := 2 + rng.Intn(3)
			for i := 0; i < n; i++ {
				if _, err := c.AddTokens(s, w, []string{"influenza", "outbreak", "influenza", "cases"}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	fmt.Printf("outbreak injected into countries %v, weeks 12-18\n\n", affected)

	comb := c.CombinatorialPatterns("influenza", nil)
	if len(comb) == 0 {
		log.Fatal("no combinatorial patterns found")
	}
	top := comb[0]
	fmt.Printf("STComb top pattern: weeks [%d,%d], %d countries %v\n",
		top.Start, top.End, len(top.Streams), top.Streams)

	reg := c.RegionalPatterns("influenza", nil)
	if best, ok := stburst.Best(reg); ok {
		fmt.Printf("STLocal top window: weeks [%d,%d], %d countries inside its rectangle\n",
			best.Start, best.End, len(best.Streams))
	}
	fmt.Println("\nthe clique recovers the arbitrary affected set; the rectangle")
	fmt.Println("necessarily sweeps in unaffected countries lying between them —")
	fmt.Println("exactly the contrast Table 1 of the paper shows for global events")
}
