// Earthquake: the paper's motivating regional scenario (§1) — a
// medium-scale earthquake affects a specific region of the world. The
// example streams weekly frequency snapshots into the online STLocal
// miner and shows how the mined regional window pins down both the
// affected area and the timeframe, while a temporally-identical burst
// elsewhere stays a separate pattern.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stburst"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A 6x6 grid of cities; the quake hits the north-west corner on week
	// 20, with aftershock coverage decaying over four weeks. A second,
	// unrelated event bursts in the south-east at week 30.
	var points []stburst.Point
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			points = append(points, stburst.Point{X: float64(c) * 10, Y: float64(r) * 10})
		}
	}
	miner := stburst.NewRegionalMiner(points, nil)

	const weeks = 52
	for w := 0; w < weeks; w++ {
		obs := make([]float64, len(points))
		for i := range obs {
			obs[i] = rng.ExpFloat64() * 0.15 // ambient mentions of "earthquake"
		}
		// The north-west quake: cities within the corner 2x2 block.
		if w >= 20 && w <= 23 {
			decay := float64(24-w) / 4
			for _, i := range []int{0, 1, 6, 7} {
				obs[i] += 20 * decay
			}
		}
		// The unrelated south-east burst.
		if w >= 30 && w <= 31 {
			for _, i := range []int{28, 29, 34, 35} {
				obs[i] += 15
			}
		}
		if err := miner.Push(obs); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("processed %d weekly snapshots over %d cities\n\n", miner.Timestamps(), len(points))
	windows := miner.Windows()
	if len(windows) > 4 {
		windows = windows[:4]
	}
	for i, w := range windows {
		fmt.Printf("#%d  weeks [%d,%d]  w-score %.1f  region %v  cities %v\n",
			i+1, w.Start, w.End, w.Score, w.Rect, w.Streams)
	}

	top, _ := stburst.Best(miner.Windows())
	fmt.Printf("\ntop window covers the NW quake: weeks [%d,%d], %d cities\n",
		top.Start, top.End, len(top.Streams))
}
