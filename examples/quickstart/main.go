// Quickstart: build a tiny spatiotemporal collection, mine both kinds of
// burstiness patterns for a term, and run bursty-document searches — a
// free-text one, and a structured Query restricted to a region and
// timeframe.
package main

import (
	"context"
	"fmt"
	"log"

	"stburst"
)

func main() {
	// Three news streams: two nearby Andean capitals and Tokyo.
	streams := []stburst.StreamInfo{
		{Name: "lima", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "quito", Location: stburst.Point{X: 3, Y: 2}},
		{Name: "tokyo", Location: stburst.Point{X: 95, Y: 80}},
	}
	c := stburst.NewCollection(streams, 12) // 12 weekly timestamps

	add := func(s, week int, text string) {
		if _, err := c.AddText(s, week, text); err != nil {
			log.Fatal(err)
		}
	}
	// Steady background coverage everywhere.
	for w := 0; w < 12; w++ {
		add(0, w, "markets open steady amid calm trading week")
		add(1, w, "football results and weather outlook")
		add(2, w, "technology exports rise in quarterly report")
	}
	// A localized earthquake story: heavy coverage in Lima and Quito
	// during weeks 5-7, nothing in Tokyo.
	for w := 5; w <= 7; w++ {
		for i := 0; i < 4; i++ {
			add(0, w, "earthquake shakes the coast, rescue teams respond to earthquake damage")
			add(1, w, "earthquake tremors felt across the border region")
		}
	}

	fmt.Println("== regional patterns (STLocal) for \"earthquake\" ==")
	for _, p := range c.RegionalPatterns("earthquake", nil) {
		fmt.Printf("  weeks [%d,%d]  w-score %.2f  region %v  streams %v\n",
			p.Start, p.End, p.Score, p.Rect, p.Streams)
	}

	fmt.Println("== combinatorial patterns (STComb) for \"earthquake\" ==")
	for _, p := range c.CombinatorialPatterns("earthquake", nil) {
		fmt.Printf("  weeks [%d,%d]  score %.2f  streams %v\n", p.Start, p.End, p.Score, p.Streams)
	}

	// Mine the whole vocabulary once; the index answers every query.
	ix, err := c.Mine(context.Background(), stburst.KindRegional, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== bursty-document search ==")
	for _, h := range ix.Search("earthquake rescue", 5) {
		fmt.Printf("  doc %d from %s at week %d (score %.2f)\n",
			h.Doc.ID, h.Stream, h.Doc.Time, h.Score)
	}

	// The same retrieval as a structured query: only documents whose
	// contributing patterns touch the Andes during weeks 5-7.
	fmt.Println("== structured query: near the Andes, weeks 5-7 ==")
	page, err := ix.Query(context.Background(), stburst.Query{
		Text:   "earthquake rescue",
		K:      5,
		Region: &stburst.Rect{MinX: -5, MinY: -5, MaxX: 10, MaxY: 10},
		Time:   &stburst.Timespan{Start: 5, End: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range page.Hits {
		fmt.Printf("  doc %d from %s at week %d (score %.2f)\n",
			h.Doc.ID, h.Stream, h.Doc.Time, h.Score)
	}
}
