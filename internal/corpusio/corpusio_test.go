package corpusio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(Header{Kind: "topix", Streams: []string{"Peru", "Chile"}, Timeline: 4}); err != nil {
		t.Fatal(err)
	}
	docs := []DocLine{
		{Stream: "Peru", Time: 1, Counts: map[string]int{"fujimori": 2, "trial": 1}, Event: 17},
		{Stream: "Chile", Time: 3, Counts: map[string]int{"fujimori": 1}, Event: 0},
	}
	for _, d := range docs {
		if err := enc.Encode(d); err != nil {
			t.Fatal(err)
		}
	}
	col, labels, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumStreams() != 2 || col.Length() != 4 || col.NumDocs() != 2 {
		t.Fatalf("dims %d/%d/%d", col.NumStreams(), col.Length(), col.NumDocs())
	}
	if labels[0] != 17 || labels[1] != 0 {
		t.Fatalf("labels %v", labels)
	}
	id, ok := col.Dict().Lookup("fujimori")
	if !ok {
		t.Fatal("term missing")
	}
	s := col.Surface(id)
	if s[0][1] != 2 || s[1][3] != 1 {
		t.Fatalf("surface wrong: %v", s)
	}
	// Stream locations must be projected (non-identical points).
	if col.Stream(0).Location == col.Stream(1).Location {
		t.Fatal("MDS projection collapsed the streams")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := Load(strings.NewReader(`{"kind":"other"}`)); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, _, err := Load(strings.NewReader(`{"kind":"topix","streams":["Atlantis"],"timeline":4}`)); err == nil {
		t.Fatal("unknown country should error")
	}
	bad := `{"kind":"topix","streams":["Peru"],"timeline":4}` + "\n" + `{"stream":"Nowhere","time":0}`
	if _, _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown document stream should error")
	}
	bad = `{"kind":"topix","streams":["Peru"],"timeline":4}` + "\n" + `{"stream":"Peru","time":9}`
	if _, _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range time should error")
	}
}
