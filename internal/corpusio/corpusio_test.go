package corpusio

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(Header{Kind: "topix", Streams: []string{"Peru", "Chile"}, Timeline: 4}); err != nil {
		t.Fatal(err)
	}
	docs := []DocLine{
		{Stream: "Peru", Time: 1, Counts: map[string]int{"fujimori": 2, "trial": 1}, Event: 17},
		{Stream: "Chile", Time: 3, Counts: map[string]int{"fujimori": 1}, Event: 0},
	}
	for _, d := range docs {
		if err := enc.Encode(d); err != nil {
			t.Fatal(err)
		}
	}
	col, labels, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumStreams() != 2 || col.Length() != 4 || col.NumDocs() != 2 {
		t.Fatalf("dims %d/%d/%d", col.NumStreams(), col.Length(), col.NumDocs())
	}
	if labels[0] != 17 || labels[1] != 0 {
		t.Fatalf("labels %v", labels)
	}
	id, ok := col.Dict().Lookup("fujimori")
	if !ok {
		t.Fatal("term missing")
	}
	s := col.Surface(id)
	if s[0][1] != 2 || s[1][3] != 1 {
		t.Fatalf("surface wrong: %v", s)
	}
	// Stream locations must be projected (non-identical points).
	if col.Stream(0).Location == col.Stream(1).Location {
		t.Fatal("MDS projection collapsed the streams")
	}
}

func TestAppendDocs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.jsonl")
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(Header{Kind: "topix", Streams: []string{"Peru", "Chile"}, Timeline: 4}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(DocLine{Stream: "Peru", Time: 0, Counts: map[string]int{"a": 1}}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	n, err := AppendDocs(path, func(existing int) []DocLine {
		if existing != 1 {
			t.Fatalf("existing = %d, want 1", existing)
		}
		return []DocLine{{Stream: "Chile", Time: 2, Counts: map[string]int{"b": 2, "a": 1}}}
	})
	if err != nil || n != 1 {
		t.Fatalf("AppendDocs = %d, %v", n, err)
	}

	// Idempotent retry: pick sees the grown count and appends nothing;
	// the file must be byte-identical afterwards.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err = AppendDocs(path, func(existing int) []DocLine {
		if existing != 2 {
			t.Fatalf("retry existing = %d, want 2", existing)
		}
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("no-op AppendDocs = %d, %v", n, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("no-op append modified the file")
	}

	col, _, err := Load(bytes.NewReader(after))
	if err != nil {
		t.Fatalf("Load after append: %v", err)
	}
	if col.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", col.NumDocs())
	}
	id, ok := col.Dict().Lookup("b")
	if !ok {
		t.Fatal("appended term missing from the dictionary")
	}
	if s := col.Surface(id); s[1][2] != 2 {
		t.Fatalf("appended surface wrong: %v", s)
	}

	// A non-topix file refuses before any write.
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"kind":"other"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendDocs(bad, func(int) []DocLine { return nil }); err == nil {
		t.Fatal("append to a non-topix corpus should error")
	}
	if _, err := AppendDocs(filepath.Join(dir, "missing.jsonl"), func(int) []DocLine { return nil }); err == nil {
		t.Fatal("append to a missing corpus should error")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := Load(strings.NewReader(`{"kind":"other"}`)); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, _, err := Load(strings.NewReader(`{"kind":"topix","streams":["Atlantis"],"timeline":4}`)); err == nil {
		t.Fatal("unknown country should error")
	}
	bad := `{"kind":"topix","streams":["Peru"],"timeline":4}` + "\n" + `{"stream":"Nowhere","time":0}`
	if _, _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown document stream should error")
	}
	bad = `{"kind":"topix","streams":["Peru"],"timeline":4}` + "\n" + `{"stream":"Peru","time":9}`
	if _, _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range time should error")
	}
}
