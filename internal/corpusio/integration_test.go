package corpusio

import (
	"bytes"
	"encoding/json"
	"testing"

	"stburst/internal/gen"
)

// TestExportImportPreservesSurfaces generates a small Topix corpus with
// retained counts, serializes it in the stgen JSONL format, loads it
// back, and verifies the frequency surfaces the miners consume are
// identical.
func TestExportImportPreservesSurfaces(t *testing.T) {
	tp, err := gen.NewTopix(gen.TopixConfig{Seed: 5, WeeklyArticles: 0.5, Vocab: 200, RetainCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	col := tp.Col

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	h := Header{Kind: "topix", Timeline: col.Length()}
	for i := 0; i < col.NumStreams(); i++ {
		h.Streams = append(h.Streams, col.Stream(i).Name)
	}
	if err := enc.Encode(h); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < col.NumDocs(); id++ {
		d := col.Doc(id)
		counts := make(map[string]int, len(d.Counts))
		for term, n := range d.Counts {
			counts[col.Dict().Term(term)] = n
		}
		if err := enc.Encode(DocLine{
			Stream: col.Stream(d.Stream).Name,
			Time:   d.Time,
			Counts: counts,
			Event:  tp.Labels[id],
		}); err != nil {
			t.Fatal(err)
		}
	}

	got, labels, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != col.NumDocs() {
		t.Fatalf("docs %d, want %d", got.NumDocs(), col.NumDocs())
	}
	for i, l := range labels {
		if l != tp.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
	// Spot-check several term surfaces end to end.
	for _, ev := range []int{5, 13, 17} {
		term := tp.QueryTerms[ev][0]
		name := col.Dict().Term(term)
		gotID, ok := got.Dict().Lookup(name)
		if !ok {
			t.Fatalf("term %q lost in round trip", name)
		}
		want := col.Surface(term)
		have := got.Surface(gotID)
		for x := range want {
			for i := range want[x] {
				if want[x][i] != have[x][i] {
					t.Fatalf("surface of %q differs at (%d,%d): %v vs %v",
						name, x, i, want[x][i], have[x][i])
				}
			}
		}
	}
}
