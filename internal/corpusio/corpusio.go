// Package corpusio reads and writes the JSONL corpus interchange format
// used by the command-line tools: a header line describing the streams
// and the timeline, followed by one document per line.
package corpusio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"stburst/internal/gen"
	"stburst/internal/geo"
	"stburst/internal/stream"
)

// Header is the first JSONL line of a corpus.
type Header struct {
	Kind     string   `json:"kind"`
	Streams  []string `json:"streams"`
	Timeline int      `json:"timeline"`
}

// DocLine is one document line.
type DocLine struct {
	Stream string         `json:"stream"`
	Time   int            `json:"time"`
	Counts map[string]int `json:"counts"`
	Event  int            `json:"event"`
}

// Load reads a topix-kind corpus, rebuilding the collection with stream
// locations projected by MDS over country distances (as §6.1 of the
// paper does), and returns the per-document ground-truth event labels.
func Load(r io.Reader) (*stream.Collection, []int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("corpusio: reading input: %w", err)
		}
		return nil, nil, fmt.Errorf("corpusio: empty corpus (missing header line)")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, nil, fmt.Errorf("corpusio: reading header: %w", err)
	}
	if h.Kind != "topix" {
		return nil, nil, fmt.Errorf("corpusio: unsupported corpus kind %q", h.Kind)
	}
	infos := make([]stream.Info, len(h.Streams))
	streamIdx := make(map[string]int, len(h.Streams))
	coords := make([]geo.LatLon, len(h.Streams))
	for i, name := range h.Streams {
		ci := gen.CountryIndex(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("corpusio: unknown country %q", name)
		}
		coords[i] = gen.Countries[ci].Geo
		infos[i] = stream.Info{Name: name, Geo: coords[i]}
		streamIdx[name] = i
	}
	pts, err := geo.MDS(geo.DistanceMatrix(coords, geo.Haversine), rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, nil, err
	}
	for i := range infos {
		infos[i].Location = pts[i]
	}
	col := stream.NewCollection(infos, h.Timeline)
	col.SetRetainCounts(false)
	var labels []int
	for sc.Scan() {
		var d DocLine
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, nil, fmt.Errorf("corpusio: reading document: %w", err)
		}
		x, ok := streamIdx[d.Stream]
		if !ok {
			return nil, nil, fmt.Errorf("corpusio: document from unknown stream %q", d.Stream)
		}
		// AddStringCounts interns each document's terms in sorted order:
		// map iteration is randomized per process, and snapshot
		// portability (plus stable cross-process index fingerprints)
		// needs every load of a corpus to assign identical dictionary
		// IDs. Collection.Append interns post-load batches the same way,
		// so a corpus replayed as load-then-append still assigns the
		// loaded prefix identically.
		if _, err := col.AddStringCounts(x, d.Time, d.Counts); err != nil {
			return nil, nil, err
		}
		labels = append(labels, d.Event)
	}
	return col, labels, sc.Err()
}

// AppendDocs atomically appends document lines to the corpus file at
// path: the existing file is copied line by line to a temp file in the
// same directory, the new lines are appended, and the temp file is
// fsync'd and renamed over the original — a crash leaves either the old
// corpus or the new one, never a torn tail. The pick callback receives
// the number of document lines the existing file holds and returns the
// lines to append, so a caller that may retry after a partial failure
// (WAL absorption whose prune step crashed) can skip documents a
// previous append already folded in; returning no lines leaves the file
// untouched. The header is validated and preserved verbatim; appended
// lines must reference its streams and timeline (enforced by the next
// Load, not here). Document counts marshal with sorted keys, so the
// appended bytes are deterministic.
func AppendDocs(path string, pick func(existing int) []DocLine) (int, error) {
	src, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("corpusio: %w", err)
	}
	defer src.Close()
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".absorb-*")
	if err != nil {
		return 0, fmt.Errorf("corpusio: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	w := bufio.NewWriter(tmp)
	existing := -1 // the first line is the header, not a document
	for sc.Scan() {
		line := sc.Bytes()
		if existing < 0 {
			var h Header
			if err := json.Unmarshal(line, &h); err != nil {
				return 0, fmt.Errorf("corpusio: reading header: %w", err)
			}
			if h.Kind != "topix" {
				return 0, fmt.Errorf("corpusio: unsupported corpus kind %q", h.Kind)
			}
		}
		existing++
		if _, err := w.Write(line); err != nil {
			return 0, fmt.Errorf("corpusio: %w", err)
		}
		if err := w.WriteByte('\n'); err != nil {
			return 0, fmt.Errorf("corpusio: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("corpusio: reading corpus: %w", err)
	}
	if existing < 0 {
		return 0, fmt.Errorf("corpusio: empty corpus (missing header line)")
	}

	docs := pick(existing)
	if len(docs) == 0 {
		return 0, nil
	}
	enc := json.NewEncoder(w)
	for _, d := range docs {
		if err := enc.Encode(d); err != nil {
			return 0, fmt.Errorf("corpusio: appending document: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return 0, fmt.Errorf("corpusio: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return 0, fmt.Errorf("corpusio: %w", err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(tmpName)
		return 0, fmt.Errorf("corpusio: %w", err)
	}
	tmp = nil
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("corpusio: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return len(docs), err
	}
	return len(docs), nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("corpusio: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("corpusio: syncing directory: %w", err)
	}
	return nil
}
