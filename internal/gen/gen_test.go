package gen

import (
	"math"
	"math/rand"
	"testing"
)

func TestWeibullPDFBasics(t *testing.T) {
	if got := WeibullPDF(-1, 2, 2); got != 0 {
		t.Fatalf("negative x: %v", got)
	}
	// k=1 reduces to the exponential density 1/c·e^{-x/c}.
	if got, want := WeibullPDF(0, 2, 1), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("exp at 0: got %v want %v", got, want)
	}
	if got, want := WeibullPDF(2, 2, 1), math.Exp(-1)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("exp at 2: got %v want %v", got, want)
	}
	// Density integrates to ~1 (trapezoid over a wide range).
	for _, kk := range []float64{1, 1.5, 2, 3, 5} {
		sum := 0.0
		dx := 0.001
		for x := 0.0; x < 30; x += dx {
			sum += WeibullPDF(x+dx/2, 3, kk) * dx
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("k=%v: density integrates to %v", kk, sum)
		}
	}
}

func TestWeibullMode(t *testing.T) {
	if got := WeibullMode(5, 1); got != 0 {
		t.Fatalf("k<=1 mode should be 0, got %v", got)
	}
	// For k=2, mode = c/√2; the PDF there must dominate neighbours.
	c := 4.0
	m := WeibullMode(c, 2)
	if math.Abs(m-c/math.Sqrt2) > 1e-12 {
		t.Fatalf("mode = %v, want %v", m, c/math.Sqrt2)
	}
	pm := WeibullPDF(m, c, 2)
	if WeibullPDF(m-0.1, c, 2) >= pm || WeibullPDF(m+0.1, c, 2) >= pm {
		t.Fatal("PDF not maximal at mode")
	}
}

func TestWeibullEnvelopePeaksAtP(t *testing.T) {
	env := WeibullEnvelope(20, 8, 2.5, 42)
	if len(env) != 20 {
		t.Fatalf("len %d", len(env))
	}
	maxVal := 0.0
	for _, v := range env {
		if v < 0 {
			t.Fatalf("negative envelope value %v", v)
		}
		if v > maxVal {
			maxVal = v
		}
	}
	if math.Abs(maxVal-42) > 1e-9 {
		t.Fatalf("peak %v, want 42", maxVal)
	}
	if got := WeibullEnvelope(0, 8, 2, 1); got != nil {
		t.Fatalf("n=0: got %v", got)
	}
}

func TestHashDeterminismAndSpread(t *testing.T) {
	a := hash4(1, 2, 3, 4)
	if a != hash4(1, 2, 3, 4) {
		t.Fatal("hash not deterministic")
	}
	if a == hash4(1, 2, 3, 5) || a == hash4(2, 2, 3, 4) {
		t.Fatal("hash collisions on adjacent inputs")
	}
	// uniform01 stays in [0,1) and has a plausible mean.
	sum := 0.0
	n := 10000
	for i := 0; i < n; i++ {
		u := uniform01(mix64(uint64(i)))
		if u < 0 || u >= 1 {
			t.Fatalf("uniform01 out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("uniform01 mean = %v", mean)
	}
}

func TestExpFromHashMean(t *testing.T) {
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += expFromHash(mix64(uint64(i)+977), 3)
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.12 {
		t.Fatalf("exponential mean = %v, want ~3", mean)
	}
}

func TestSynthDeterminism(t *testing.T) {
	cfg := SynthConfig{Streams: 40, Timeline: 60, Terms: 50, Patterns: 10, Seed: 5}
	a := NewSynth(cfg)
	b := NewSynth(cfg)
	if len(a.Patterns()) != len(b.Patterns()) {
		t.Fatal("pattern counts differ")
	}
	for i := 0; i < 100; i++ {
		term, x, ts := i%50, (i*7)%40, (i*13)%60
		if a.At(term, x, ts) != b.At(term, x, ts) {
			t.Fatalf("At(%d,%d,%d) differs", term, x, ts)
		}
	}
}

func TestSynthPatternsWithinBounds(t *testing.T) {
	cfg := SynthConfig{Streams: 60, Timeline: 100, Terms: 200, Patterns: 50, Seed: 6}
	s := NewSynth(cfg)
	if len(s.Patterns()) != 50 {
		t.Fatalf("got %d patterns, want 50", len(s.Patterns()))
	}
	for _, p := range s.Patterns() {
		if p.Term < 0 || p.Term >= 200 {
			t.Fatalf("term out of range: %+v", p)
		}
		if p.Start < 0 || p.End >= 100 || p.Start > p.End {
			t.Fatalf("timeframe out of range: %+v", p)
		}
		if len(p.Streams) < s.Config().MinStreams || len(p.Streams) > s.Config().MaxStreams {
			t.Fatalf("stream count out of bounds: %+v (cfg %+v)", p, s.Config())
		}
		for i, x := range p.Streams {
			if x < 0 || x >= 60 {
				t.Fatalf("stream out of range: %+v", p)
			}
			if i > 0 && p.Streams[i-1] >= x {
				t.Fatalf("streams not strictly ascending: %+v", p)
			}
		}
	}
}

func TestSynthInjectedLiftVisible(t *testing.T) {
	cfg := SynthConfig{Streams: 30, Timeline: 80, Terms: 20, Patterns: 8, Seed: 7}
	s := NewSynth(cfg)
	for _, p := range s.Patterns() {
		// Average frequency inside the pattern (member streams) must
		// clearly exceed the background mean.
		var inside float64
		var n int
		for _, x := range p.Streams {
			for i := p.Start; i <= p.End; i++ {
				inside += s.At(p.Term, x, i)
				n++
			}
		}
		inside /= float64(n)
		if inside < 2*cfg.MeanFreq {
			// The envelope has low tails, but the average should still
			// be well above the background mean of 1.
			t.Fatalf("pattern %+v: inside mean %v too close to background", p, inside)
		}
	}
}

func TestSynthDistGenIsLocal(t *testing.T) {
	// distGen patterns must be spatially tighter than randGen patterns.
	span := func(mode Mode) float64 {
		s := NewSynth(SynthConfig{Streams: 300, Timeline: 50, Terms: 500, Patterns: 60, Seed: 8, Mode: mode})
		var total float64
		var n int
		for _, p := range s.Patterns() {
			for i := 1; i < len(p.Streams); i++ {
				// mean pairwise distance to the first member
				d := distOf(s, p.Streams[0], p.Streams[i])
				total += d
				n++
			}
		}
		return total / float64(n)
	}
	d := span(DistGen)
	r := span(RandGen)
	if d >= r*0.6 {
		t.Fatalf("distGen mean spread %v not clearly below randGen %v", d, r)
	}
}

func distOf(s *Synth, a, b int) float64 {
	pa, pb := s.Points()[a], s.Points()[b]
	dx, dy := pa.X-pb.X, pa.Y-pb.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func TestSynthSeriesSurfaceSnapshotAgree(t *testing.T) {
	s := NewSynth(SynthConfig{Streams: 10, Timeline: 20, Terms: 5, Patterns: 3, Seed: 9})
	surface := s.Surface(2)
	for x := 0; x < 10; x++ {
		series := s.Series(2, x)
		for i := 0; i < 20; i++ {
			if surface[x][i] != series[i] || series[i] != s.At(2, x, i) {
				t.Fatalf("access paths disagree at (%d,%d)", x, i)
			}
		}
	}
	snap := s.Snapshot(2, 7, nil)
	for x := 0; x < 10; x++ {
		if snap[x] != surface[x][7] {
			t.Fatalf("snapshot disagrees at stream %d", x)
		}
	}
}

func TestSynthPatternTermsAndLookup(t *testing.T) {
	s := NewSynth(SynthConfig{Streams: 20, Timeline: 30, Terms: 10, Patterns: 12, Seed: 10})
	terms := s.PatternTerms()
	if len(terms) == 0 {
		t.Fatal("no pattern terms")
	}
	count := 0
	for _, term := range terms {
		ps := s.PatternsForTerm(term)
		if len(ps) == 0 {
			t.Fatalf("term %d listed but has no patterns", term)
		}
		count += len(ps)
		for _, p := range ps {
			if p.Term != term {
				t.Fatalf("pattern term mismatch: %+v for term %d", p, term)
			}
		}
	}
	if count != 12 {
		t.Fatalf("pattern total %d, want 12", count)
	}
}

func TestCountriesWorld(t *testing.T) {
	if len(Countries) != 181 {
		t.Fatalf("world has %d countries, want 181 (the paper's count)", len(Countries))
	}
	seen := map[string]bool{}
	for _, c := range Countries {
		if seen[c.Name] {
			t.Fatalf("duplicate country %q", c.Name)
		}
		seen[c.Name] = true
		if c.Geo.Lat < -90 || c.Geo.Lat > 90 || c.Geo.Lon < -180 || c.Geo.Lon > 180 {
			t.Fatalf("bad coordinates for %q: %+v", c.Name, c.Geo)
		}
	}
	if CountryIndex("Peru") < 0 || CountryIndex("Atlantis") != -1 {
		t.Fatal("CountryIndex misbehaves")
	}
}

func TestEventsTable(t *testing.T) {
	if len(Events) != 18 {
		t.Fatalf("got %d events, want 18 (Table 9)", len(Events))
	}
	for i, ev := range Events {
		if ev.ID != i+1 {
			t.Fatalf("event IDs must be 1..18 in order, got %d at %d", ev.ID, i)
		}
		if len(ev.Query) == 0 || len(ev.Episodes) == 0 {
			t.Fatalf("event %d incomplete: %+v", ev.ID, ev)
		}
		switch {
		case ev.ID <= 6 && ev.Tier != TierGlobal:
			t.Fatalf("event %d should be global", ev.ID)
		case ev.ID > 6 && ev.ID <= 12 && ev.Tier != TierMajor:
			t.Fatalf("event %d should be major", ev.ID)
		case ev.ID > 12 && ev.Tier != TierLocal:
			t.Fatalf("event %d should be local", ev.ID)
		}
		for _, ep := range ev.Episodes {
			if CountryIndex(ep.Epicenter) < 0 {
				t.Fatalf("event %d: unknown epicenter %q", ev.ID, ep.Epicenter)
			}
			if ep.Start < 0 || ep.Start+ep.Length > Weeks {
				t.Fatalf("event %d: episode exceeds timeline: %+v", ev.ID, ep)
			}
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
	for _, mean := range []float64{0.5, 3, 12, 80} {
		sum := 0.0
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestNewTopixSmall(t *testing.T) {
	tp, err := NewTopix(TopixConfig{Seed: 1, WeeklyArticles: 2, Vocab: 300})
	if err != nil {
		t.Fatal(err)
	}
	col := tp.Col
	if col.NumStreams() != 181 {
		t.Fatalf("streams = %d, want 181", col.NumStreams())
	}
	if col.Length() != Weeks {
		t.Fatalf("timeline = %d, want %d", col.Length(), Weeks)
	}
	if col.NumDocs() == 0 {
		t.Fatal("no documents generated")
	}
	if len(tp.Labels) != col.NumDocs() {
		t.Fatalf("labels %d, docs %d", len(tp.Labels), col.NumDocs())
	}
	// Every event must have produced at least one labeled document and
	// have its query terms in the dictionary.
	for _, ev := range Events {
		if len(tp.Relevant(ev.ID)) == 0 {
			t.Fatalf("event %d produced no documents", ev.ID)
		}
		ids := tp.QueryTerms[ev.ID]
		if len(ids) != len(ev.Query) {
			t.Fatalf("event %d query terms: %v", ev.ID, ids)
		}
	}
}

func TestTopixEventLocality(t *testing.T) {
	tp, err := NewTopix(TopixConfig{Seed: 2, WeeklyArticles: 2, Vocab: 300})
	if err != nil {
		t.Fatal(err)
	}
	// A local event's documents must be concentrated near its epicenter;
	// a global event's must not.
	spread := func(eventID int) int {
		countries := map[int]bool{}
		for doc := range tp.Relevant(eventID) {
			countries[tp.Col.Doc(doc).Stream] = true
		}
		return len(countries)
	}
	local := spread(15) // Tsvangirai
	global := spread(5) // swine flu
	if local >= global {
		t.Fatalf("local event in %d countries, global in %d; want local < global", local, global)
	}
	if global < 60 {
		t.Fatalf("global event only reached %d countries", global)
	}
	if local > 40 {
		t.Fatalf("local event reached %d countries", local)
	}
}

func TestTopixDeterminism(t *testing.T) {
	a, err := NewTopix(TopixConfig{Seed: 3, WeeklyArticles: 1, Vocab: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTopix(TopixConfig{Seed: 3, WeeklyArticles: 1, Vocab: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a.Col.NumDocs() != b.Col.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", a.Col.NumDocs(), b.Col.NumDocs())
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}
