package gen

import (
	"fmt"
	"math"
	"math/rand"

	"stburst/internal/geo"
	"stburst/internal/stream"
)

// TopixConfig parameterizes the synthetic Topix-like corpus (§6.1 of the
// paper). The real Topix crawl (305,641 articles from 181 countries,
// Sep-08..Jul-09) is not available; this generator reproduces its shape —
// country streams, a 48-week timeline, Zipf background text, the 18
// Major Events of Table 9 injected with tier-dependent spatial reach and
// Weibull temporal envelopes — together with the ground-truth relevance
// labels a human annotator provided in the paper.
type TopixConfig struct {
	Seed int64
	// WeeklyArticles is the mean number of background articles per
	// country per week. The paper's corpus averages ≈35.2; the default
	// is 12 to keep the default harness fast — pass 35 to match the
	// paper's 305k scale.
	WeeklyArticles float64
	// Vocab is the background vocabulary size (defaults to 6000). Small
	// vocabularies make every term dense; real text has a long sparse
	// tail, which Figs. 5-6 depend on.
	Vocab int
	// TokensPerArticle is the mean article length in kept terms
	// (defaults to 30).
	TokensPerArticle float64
	// RetainCounts keeps per-document term counts in the collection
	// (needed when exporting the corpus); off by default to save memory.
	RetainCounts bool
	// AmbientEventTermRate is the probability that a background article
	// mentions an event term ("earthquake", "piracy", ... appear in
	// unrelated contexts too). Terms of global events are mentioned far
	// more often than names of local figures. This ambient usage plays
	// two roles from the paper's real corpus: it puts a small negative
	// drag (observed < expected) on every stream outside an event's
	// region, which keeps STLocal rectangles tight, and it gives the
	// temporal-only TB engine its false positives on localized queries
	// (Table 3). Defaults to 0.10.
	AmbientEventTermRate float64
}

func (c TopixConfig) withDefaults() TopixConfig {
	if c.WeeklyArticles == 0 {
		c.WeeklyArticles = 12
	}
	if c.Vocab == 0 {
		c.Vocab = 6000
	}
	if c.TokensPerArticle == 0 {
		c.TokensPerArticle = 30
	}
	if c.AmbientEventTermRate == 0 {
		c.AmbientEventTermRate = 0.06
	}
	return c
}

// Weeks is the timeline length of the Topix-like corpus: 48 weekly
// timestamps spanning September 2008 through July 2009.
const Weeks = 48

// Topix is the generated corpus plus its ground truth.
type Topix struct {
	Col *stream.Collection
	// Labels[docID] is the 1-based event ID that generated the document,
	// or 0 for background articles.
	Labels []int
	// QueryTerms[eventID] holds the interned term IDs of the event's
	// query (Table 9, 2nd column).
	QueryTerms map[int][]int
	cfg        TopixConfig
}

// NewTopix generates the corpus deterministically from cfg.Seed.
func NewTopix(cfg TopixConfig) (*Topix, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Project the 181 countries onto the 2-D plane with MDS over their
	// pairwise geographic distances, exactly as the paper does (§6.1).
	coords := make([]geo.LatLon, len(Countries))
	for i, c := range Countries {
		coords[i] = c.Geo
	}
	pts, err := geo.MDS(geo.DistanceMatrix(coords, geo.Haversine), rng)
	if err != nil {
		return nil, fmt.Errorf("gen: projecting countries: %w", err)
	}
	infos := make([]stream.Info, len(Countries))
	for i, c := range Countries {
		infos[i] = stream.Info{Name: c.Name, Location: pts[i], Geo: c.Geo}
	}
	col := stream.NewCollection(infos, Weeks)
	col.SetRetainCounts(cfg.RetainCounts)

	t := &Topix{Col: col, QueryTerms: make(map[int][]int), cfg: cfg}

	// Intern the vocabulary: event query terms first, then background
	// words. Event terms are part of the ambient vocabulary as well,
	// weighted by tier: "earthquake" or "financial" appear in unrelated
	// articles all the time, the name of a local political figure only
	// rarely.
	var eventTermIDs []int
	var eventTermWeights []float64
	for _, ev := range Events {
		var ids []int
		w := ev.Ambient
		for _, q := range ev.Query {
			id := col.Dict().ID(q)
			ids = append(ids, id)
			eventTermIDs = append(eventTermIDs, id)
			eventTermWeights = append(eventTermWeights, w)
		}
		t.QueryTerms[ev.ID] = ids
	}
	var weightSum float64
	for _, w := range eventTermWeights {
		weightSum += w
	}
	sampleEventTerm := func() int {
		r := rng.Float64() * weightSum
		for i, w := range eventTermWeights {
			r -= w
			if r < 0 {
				return eventTermIDs[i]
			}
		}
		return eventTermIDs[len(eventTermIDs)-1]
	}
	background := make([]int, cfg.Vocab)
	for i := range background {
		background[i] = col.Dict().ID(fmt.Sprintf("w%04d", i))
	}
	zipf := rand.NewZipf(rng, 1.2, 4, uint64(cfg.Vocab-1))

	addArticle := func(country, week int, counts map[int]int, label int) error {
		if _, err := col.AddCounts(country, week, counts); err != nil {
			return err
		}
		t.Labels = append(t.Labels, label)
		return nil
	}
	backgroundCounts := func() map[int]int {
		n := 1 + poisson(rng, cfg.TokensPerArticle)
		counts := make(map[int]int, n/2+2)
		for j := 0; j < n; j++ {
			counts[background[zipf.Uint64()]]++
		}
		if rng.Float64() < cfg.AmbientEventTermRate {
			counts[sampleEventTerm()] += 1 + poisson(rng, 0.5)
		}
		return counts
	}

	// Background articles.
	for country := range Countries {
		for week := 0; week < Weeks; week++ {
			for a := poisson(rng, cfg.WeeklyArticles); a > 0; a-- {
				if err := addArticle(country, week, backgroundCounts(), 0); err != nil {
					return nil, err
				}
			}
		}
	}

	// Event articles: every episode radiates from its epicenter with its
	// reach's distance decay; the weekly volume follows the episode's
	// Weibull envelope.
	for _, ev := range Events {
		for _, ep := range ev.Episodes {
			epi := CountryIndex(ep.Epicenter)
			if epi < 0 {
				return nil, fmt.Errorf("gen: unknown epicenter %q", ep.Epicenter)
			}
			spec := ep.reach(ev.Tier)
			envelope := WeibullEnvelope(ep.Length, float64(ep.Length)*0.45, ep.ShapeK, 1)
			for country := range Countries {
				d := geo.Haversine(Countries[epi].Geo, Countries[country].Geo)
				affinity := math.Exp(-d / spec.TauKm)
				if rng.Float64() < spec.Floor {
					// Worldwide media echo: a far country still covers
					// the story, at reduced volume.
					if pick := (0.3 + rng.Float64()*0.7) * spec.Pickup; pick > affinity {
						affinity = pick
					}
				}
				if affinity < 0.02 {
					continue
				}
				scale := cfg.WeeklyArticles / 12
				emit := func(week int, mean, freqBoost float64, label int) error {
					if week < 0 || week >= Weeks {
						return nil
					}
					for a := poisson(rng, mean); a > 0; a-- {
						counts := backgroundCounts()
						for _, id := range t.QueryTerms[ev.ID] {
							counts[id] += 1 + poisson(rng, freqBoost)
						}
						if err := addArticle(country, week, counts, label); err != nil {
							return err
						}
					}
					return nil
				}
				// Light regional pre-event chatter (the rebel leader's
				// earlier campaign, tremors before the quake): lifts the
				// merged temporal series just before the event so the
				// TB engine's burst window starts early, but its articles
				// are too low-relevance to crack a top-10.
				for w := 1; w <= 6; w++ {
					if err := emit(ep.Start-w, ep.Peak*0.06*affinity*scale, 0.1, 0); err != nil {
						return nil, err
					}
				}
				// The event itself.
				for w := 0; w < ep.Length; w++ {
					if err := emit(ep.Start+w, ep.Peak*envelope[w]*affinity*scale, 0.9, ev.ID); err != nil {
						return nil, err
					}
				}
				// Localized aftermath: tier-local stories "remain in the
				// local spotlight even after the event has faded in
				// locations further from the source" (§6.2.1) — this is
				// what stretches STLocal's timeframes in Fig. 4.
				if ev.Tier == TierLocal && affinity > 0.15 {
					for w := 1; w <= 8; w++ {
						mean := ep.Peak * 0.18 * math.Exp(-float64(w)/3) * affinity * scale
						if err := emit(ep.Start+ep.Length-1+w, mean, 0.9, ev.ID); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		// Confuser coverage: related-but-not-relevant stories that use
		// the query terms (label 0).
		for _, cf := range ev.Confusers {
			country := CountryIndex(cf.Country)
			if country < 0 {
				return nil, fmt.Errorf("gen: unknown confuser country %q", cf.Country)
			}
			for w := 0; w < cf.Length; w++ {
				week := cf.Start + w
				if week < 0 || week >= Weeks {
					continue
				}
				mean := cf.Rate * cfg.WeeklyArticles / 12
				for a := poisson(rng, mean); a > 0; a-- {
					counts := backgroundCounts()
					for _, id := range t.QueryTerms[ev.ID] {
						counts[id] += 1 + poisson(rng, cf.FreqBoost)
					}
					if err := addArticle(country, week, counts, 0); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return t, nil
}

// Relevant returns the set of document IDs generated by the given event —
// the ground truth replacing the paper's human annotator in the Table 3
// evaluation.
func (t *Topix) Relevant(eventID int) map[int]bool {
	out := make(map[int]bool)
	for doc, label := range t.Labels {
		if label == eventID {
			out[doc] = true
		}
	}
	return out
}

// Config returns the effective (defaulted) configuration.
func (t *Topix) Config() TopixConfig { return t.cfg }

// poisson draws a Poisson variate with the given mean (Knuth's method
// for small means, normal approximation above 30).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
