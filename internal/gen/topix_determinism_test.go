package gen

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"testing"
)

// Determinism audit of the topix generator (PR 6). Everything NewTopix
// emits must be a pure function of TopixConfig: the load harness seeds
// its workload from the same world model, corpus snapshots carry
// cross-process index fingerprints, and CI regenerates corpora on every
// run. The code was audited for the two classic leaks:
//
//   - time-seeded randomness: none — every rand.Rand in the package is
//     seeded from cfg.Seed (NewTopix, NewSynth) or the fixed MDS seed,
//     and hash.go's counter-based randomness is seedless by design;
//   - map iteration: QueryTerms and per-document Counts are maps, but
//     every ordering that reaches an output is keyed access or an
//     explicitly sorted/slice-ordered walk (events and vocabulary intern
//     in slice order; stream.AddCounts sorts term IDs before interning).
//
// The fingerprint test below is the regression tripwire for both: it
// hashes a short corpus trace in document order — sorting each
// document's term multiset itself, so the *test* is insensitive to map
// order while the generator's document/stream/label sequence stays
// pinned — and compares against a constant captured at audit time. If
// it fires without a deliberate generator change, nondeterminism (or an
// accidental behavior change) crept in.

// pinnedTopixTrace is the seed-1 trace fingerprint captured when the
// audit landed. Update it only for deliberate generator changes, and
// say so in the commit message.
const pinnedTopixTrace = 0x68582308f440de76

func topixTrace(t *testing.T, seed int64) uint64 {
	t.Helper()
	tp, err := NewTopix(TopixConfig{
		Seed:             seed,
		WeeklyArticles:   0.3,
		Vocab:            200,
		TokensPerArticle: 6,
		RetainCounts:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := tp.Col
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	word(uint64(col.NumStreams()))
	word(uint64(col.Length()))
	word(uint64(col.NumDocs()))
	for id := 0; id < col.NumDocs(); id++ {
		d := col.Doc(id)
		word(uint64(d.Stream))
		word(uint64(d.Time))
		word(uint64(tp.Labels[id]))
		terms := make([]int, 0, len(d.Counts))
		for term := range d.Counts {
			terms = append(terms, term)
		}
		sort.Ints(terms)
		for _, term := range terms {
			h.Write([]byte(col.Dict().Term(term)))
			word(uint64(d.Counts[term]))
		}
	}
	// The ground-truth query terms are part of the contract too.
	for _, ev := range Events {
		for _, id := range tp.QueryTerms[ev.ID] {
			h.Write([]byte(col.Dict().Term(id)))
		}
	}
	return h.Sum64()
}

func TestTopixTraceFingerprint(t *testing.T) {
	f1 := topixTrace(t, 1)
	if again := topixTrace(t, 1); again != f1 {
		t.Fatalf("same seed, different trace: %#x vs %#x", f1, again)
	}
	if f2 := topixTrace(t, 2); f2 == f1 {
		t.Fatalf("seeds 1 and 2 produced the same trace %#x", f1)
	}
	if f1 != pinnedTopixTrace {
		t.Errorf("seed-1 trace = %#x, pinned %#x — the generator's output changed; "+
			"if deliberate, update pinnedTopixTrace", f1, pinnedTopixTrace)
	}
}
