package gen

// Tier classifies the spatiotemporal reach of a major event, following
// the paper's three "loosely-defined categories" (§6.1): global impact
// (events 1–6), major multi-country impact (7–12), localized impact
// (13–18).
type Tier int

const (
	// TierGlobal events are reflected in the large majority of streams.
	TierGlobal Tier = iota
	// TierMajor events reach tens of countries around their epicenters.
	TierMajor
	// TierLocal events stay close to their epicenters.
	TierLocal
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierGlobal:
		return "global"
	case TierMajor:
		return "major"
	default:
		return "local"
	}
}

// ReachSpec controls how an episode's coverage decays over distance from
// the epicenter.
type ReachSpec struct {
	// TauKm is the e-folding distance of coverage intensity.
	TauKm float64
	// Floor is the probability that an arbitrary far-away country still
	// picks the story up (worldwide media echo).
	Floor float64
	// Pickup scales the intensity of such far pickups relative to the
	// epicenter's.
	Pickup float64
}

// Episode is one geographically anchored outbreak of an event: some
// events in the paper's list ("earthquake", "terrorists", "piracy")
// recur from several epicenters at different weeks, which is exactly why
// STLocal and STComb treat them so differently (§6.3: STLocal's top-10
// for "earthquake" all discuss the Costa Rica quake; STComb's span
// quakes across the world).
type Episode struct {
	Epicenter string // country name
	Start     int    // week index (0-based) within the Sep-08..Jul-09 timeline
	Length    int    // weeks
	Peak      float64
	ShapeK    float64    // Weibull shape of the temporal envelope
	Reach     *ReachSpec // nil uses the event tier's default reach
}

// Event is one entry of the paper's Major Events List (Table 9).
type Event struct {
	ID          int      // 1-based, as in Table 9
	Query       []string // query terms the annotator chose
	Description string
	Tier        Tier
	// Ambient weighs how often the query terms appear in unrelated
	// background articles ("fires" and "france" are everyday words,
	// "nkunda" is not). Ambient usage creates the negative drag that
	// keeps STLocal rectangles from spanning the globe.
	Ambient  float64
	Episodes []Episode
	// Confusers model coverage that uses the query terms without being
	// about the event: the rebel campaign before the capture, the
	// footballer who shares the politician's surname, the trial before
	// the sentencing. Their articles carry ground-truth label 0, and
	// they — not random noise — are what the temporal-only TB engine
	// confuses with the event (§6.3).
	Confusers []Confuser
}

// Confuser is one stream of related-but-not-relevant coverage.
type Confuser struct {
	Country   string
	Start     int     // first week (0-based)
	Length    int     // weeks
	Rate      float64 // mean articles per week (at WeeklyArticles=12 scale)
	FreqBoost float64 // extra query-term occurrences per article (Poisson mean)
}

// Events is the Major Events List between September 2008 and July 2009
// (Table 9 of the paper), with epicenters and week offsets reconstructed
// from the event descriptions. Week 0 is the first week of September
// 2008; the timeline has 48 weeks (through July 2009).
var Events = []Event{
	{1, []string{"obama"}, "Actions of B. Obama, new US President since January 2009", TierGlobal, 6, []Episode{
		{Epicenter: "United States", Start: 8, Length: 40, Peak: 30, ShapeK: 2},    // campaign + presidency
		{Epicenter: "United States", Start: 20, Length: 24, Peak: 35, ShapeK: 1.5}, // inauguration onward
	}, nil},
	{2, []string{"financial", "crisis"}, "Global financial crisis", TierGlobal, 8, []Episode{
		{Epicenter: "United States", Start: 1, Length: 46, Peak: 32, ShapeK: 1.3},
		{Epicenter: "United Kingdom", Start: 2, Length: 44, Peak: 25, ShapeK: 1.4},
	}, nil},
	{3, []string{"terrorists"}, "Events regarding terrorism", TierGlobal, 6, []Episode{
		{Epicenter: "India", Start: 12, Length: 10, Peak: 28, ShapeK: 2.5}, // Mumbai, Nov 2008
		{Epicenter: "Pakistan", Start: 26, Length: 12, Peak: 22, ShapeK: 2},
		{Epicenter: "United Kingdom", Start: 30, Length: 8, Peak: 15, ShapeK: 2},
	}, nil},
	{4, []string{"jackson"}, "Michael Jackson passes away", TierGlobal, 5, []Episode{
		{Epicenter: "United States", Start: 42, Length: 6, Peak: 45, ShapeK: 3.5}, // June 25, 2009
	}, []Confuser{{Country: "United Kingdom", Start: 0, Length: 48, Rate: 0.4, FreqBoost: 0.8}}},
	{5, []string{"swine"}, "2009 swine flu pandemic", TierGlobal, 4, []Episode{
		{Epicenter: "Mexico", Start: 33, Length: 14, Peak: 40, ShapeK: 2.2}, // April 2009 onward
	}, nil},
	{6, []string{"earthquake"}, "Events regarding earthquakes", TierGlobal, 8, []Episode{
		// Individual quakes travel regionally even though the topic is
		// global; this is what makes STLocal lock onto a single quake
		// (Costa Rica, §6.3) while STComb spans them all.
		{Epicenter: "Costa Rica", Start: 18, Length: 4, Peak: 30, ShapeK: 3, Reach: regional},
		{Epicenter: "Italy", Start: 31, Length: 5, Peak: 28, ShapeK: 3, Reach: regional},
		{Epicenter: "China", Start: 4, Length: 4, Peak: 18, ShapeK: 3, Reach: regional},
		{Epicenter: "Mexico", Start: 38, Length: 3, Peak: 15, ShapeK: 3, Reach: regional},
		{Epicenter: "Bulgaria", Start: 36, Length: 3, Peak: 12, ShapeK: 3, Reach: regional},
	}, nil},
	{7, []string{"gaza"}, "Israeli-Palestinian conflict in the Gaza Strip", TierMajor, 4, []Episode{
		// The Gaza War was covered essentially worldwide (Table 1: 174
		// countries in the top STLocal pattern).
		{Epicenter: "Israel", Start: 16, Length: 8, Peak: 38, ShapeK: 2.5,
			Reach: &ReachSpec{TauKm: 4000, Floor: 0.55, Pickup: 0.7}},
	}, nil},
	{8, []string{"ceasefire"}, "Israel announces a unilateral ceasefire in the Gaza War", TierMajor, 3, []Episode{
		{Epicenter: "Israel", Start: 19, Length: 4, Peak: 30, ShapeK: 3.5,
			Reach: &ReachSpec{TauKm: 2000, Floor: 0.03, Pickup: 0.35}},
	}, []Confuser{{Country: "Sri Lanka", Start: 25, Length: 15, Rate: 0.5, FreqBoost: 0.6}, {Country: "Somalia", Start: 5, Length: 30, Rate: 0.3, FreqBoost: 0.5}}},
	{9, []string{"yemenia"}, "Yemenia Flight 626 crashes off Moroni, Comoros", TierMajor, 0, []Episode{
		{Epicenter: "Comoros", Start: 43, Length: 3, Peak: 28, ShapeK: 3.5,
			Reach: &ReachSpec{TauKm: 1500, Floor: 0.012, Pickup: 0.25}},
	}, nil},
	{10, []string{"piracy"}, "Piracy off the Somali coast", TierMajor, 3, []Episode{
		{Epicenter: "Somalia", Start: 10, Length: 6, Peak: 22, ShapeK: 2,
			Reach: &ReachSpec{TauKm: 2000, Floor: 0.015, Pickup: 0.3}},
		{Epicenter: "Somalia", Start: 31, Length: 6, Peak: 26, ShapeK: 2.5,
			Reach: &ReachSpec{TauKm: 2000, Floor: 0.02, Pickup: 0.35}},
	}, []Confuser{{Country: "Nigeria", Start: 0, Length: 48, Rate: 0.3, FreqBoost: 0.5}}},
	{11, []string{"air", "france"}, "Air France Flight 447 crashes into the Atlantic", TierMajor, 2, []Episode{
		{Epicenter: "France", Start: 39, Length: 4, Peak: 34, ShapeK: 3.5,
			Reach: &ReachSpec{TauKm: 3000, Floor: 0.05, Pickup: 0.4}},
		{Epicenter: "Brazil", Start: 39, Length: 4, Peak: 28, ShapeK: 3.5,
			Reach: &ReachSpec{TauKm: 3000, Floor: 0.03, Pickup: 0.3}},
	}, nil},
	{12, []string{"bush", "fires"}, "Deadly bush fires in Australia kill 173", TierMajor, 0.5, []Episode{
		// Heavy local coverage, thin worldwide echo (Table 1: 3
		// countries in the top STLocal pattern).
		{Epicenter: "Australia", Start: 22, Length: 5, Peak: 32, ShapeK: 3,
			Reach: &ReachSpec{TauKm: 700, Floor: 0.05, Pickup: 0.25}},
	}, nil},
	{13, []string{"nkunda"}, "Congolese rebel leader L. Nkunda captured by Rwandan forces", TierLocal, 0, []Episode{
		{Epicenter: "Rwanda", Start: 20, Length: 4, Peak: 26, ShapeK: 3.5},
	}, []Confuser{{Country: "DR Congo", Start: 10, Length: 12, Rate: 1.2, FreqBoost: 0.6}, {Country: "Uganda", Start: 10, Length: 12, Rate: 0.6, FreqBoost: 0.6}}},
	{14, []string{"vieira"}, "President of Guinea-Bissau J. B. Vieira assassinated", TierLocal, 0, []Episode{
		{Epicenter: "Guinea-Bissau", Start: 26, Length: 4, Peak: 26, ShapeK: 3.5},
	}, []Confuser{{Country: "France", Start: 0, Length: 48, Rate: 0.5, FreqBoost: 0.8}, {Country: "Brazil", Start: 0, Length: 48, Rate: 0.4, FreqBoost: 0.8}, {Country: "Portugal", Start: 20, Length: 10, Rate: 0.6, FreqBoost: 0.8}}},
	{15, []string{"tsvangirai"}, "M. Tsvangirai sworn in as Prime Minister of Zimbabwe", TierLocal, 0, []Episode{
		{Epicenter: "Zimbabwe", Start: 23, Length: 5, Peak: 26, ShapeK: 3},
	}, []Confuser{{Country: "Zimbabwe", Start: 5, Length: 16, Rate: 1.0, FreqBoost: 0.6}, {Country: "South Africa", Start: 5, Length: 16, Rate: 0.5, FreqBoost: 0.6}}},
	{16, []string{"rajoelina"}, "Andry Rajoelina becomes President of Madagascar after coup", TierLocal, 0, []Episode{
		{Epicenter: "Madagascar", Start: 28, Length: 5, Peak: 26, ShapeK: 3},
	}, []Confuser{{Country: "Madagascar", Start: 22, Length: 6, Rate: 1.0, FreqBoost: 0.6}}},
	{17, []string{"fujimori"}, "Former Peruvian President Fujimori sentenced to 25 years", TierLocal, 0, []Episode{
		{Epicenter: "Peru", Start: 31, Length: 4, Peak: 26, ShapeK: 3.5},
	}, []Confuser{{Country: "Peru", Start: 10, Length: 18, Rate: 0.8, FreqBoost: 0.6}, {Country: "Chile", Start: 12, Length: 10, Rate: 0.3, FreqBoost: 0.6}}},
	{18, []string{"zelaya"}, "Supreme Court of Honduras orders arrest and exile of President Zelaya", TierLocal, 0, []Episode{
		{Epicenter: "Honduras", Start: 43, Length: 4, Peak: 30, ShapeK: 3.5},
	}, []Confuser{{Country: "Honduras", Start: 38, Length: 5, Rate: 0.8, FreqBoost: 0.6}, {Country: "Nicaragua", Start: 38, Length: 5, Rate: 0.3, FreqBoost: 0.6}}},
}

// defaultReach returns the tier's default coverage decay. Individual
// episodes override it to reflect how differently real stories travelled
// (the paper's Table 1 shows gaza reaching 174 countries while bush
// fires stayed at 3).
func (t Tier) defaultReach() ReachSpec {
	switch t {
	case TierGlobal:
		return ReachSpec{TauKm: 12000, Floor: 0.6, Pickup: 0.8}
	case TierMajor:
		return ReachSpec{TauKm: 2000, Floor: 0.05, Pickup: 0.4}
	default:
		return ReachSpec{TauKm: 350, Floor: 0.004, Pickup: 0.2}
	}
}

// reach resolves an episode's effective coverage decay.
func (ep Episode) reach(t Tier) ReachSpec {
	if ep.Reach != nil {
		return *ep.Reach
	}
	return t.defaultReach()
}

// regional is the reach of geographically confined episodes of otherwise
// global stories (individual earthquakes, localized attacks).
var regional = &ReachSpec{TauKm: 1200, Floor: 0.012, Pickup: 0.3}
