package gen

import "math"

// Counter-based deterministic randomness. The artificial datasets of the
// paper reach 128,000 streams × 365 timestamps × 10,000 terms — far too
// many frequency values to materialize. A splitmix64-style hash of
// (seed, term, stream, timestamp) yields any background frequency in O(1)
// with no storage, deterministically for a given seed, which lets the
// miners stream over the data in any access order.

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash4 mixes four 64-bit values into one.
func hash4(a, b, c, d uint64) uint64 {
	h := mix64(a)
	h = mix64(h ^ b)
	h = mix64(h ^ c)
	h = mix64(h ^ d)
	return h
}

// uniform01 maps a hash to a float64 in [0, 1).
func uniform01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// expFromHash converts a hash to an exponential variate with the given
// mean via inverse-CDF sampling.
func expFromHash(h uint64, mean float64) float64 {
	u := uniform01(h)
	return -mean * math.Log(1-u)
}
