package gen

import (
	"math/rand"
	"sort"

	"stburst/internal/geo"
)

// Mode selects the pattern generator of Appendix B.
type Mode int

const (
	// DistGen emulates realistic events: the streams of a pattern are
	// chosen with probability decaying in their distance from a randomly
	// chosen epicenter stream, giving patterns spatial locality.
	DistGen Mode = iota
	// RandGen samples a pattern's stream count and then its streams
	// uniformly at random, with no spatial structure.
	RandGen
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == DistGen {
		return "distGen"
	}
	return "randGen"
}

// SynthConfig parameterizes a synthetic dataset. The defaults applied by
// NewSynth reproduce the paper's setup (§6.2.2, §6.4.1): timeline 365,
// 10,000 terms, 1,000 injected patterns.
type SynthConfig struct {
	Streams  int
	Timeline int     // defaults to 365
	Terms    int     // defaults to 10000
	Patterns int     // defaults to 1000
	Mode     Mode    // DistGen or RandGen
	Seed     int64   // drives everything; same seed ⇒ same dataset
	MapSize  float64 // streams placed uniformly in [0, MapSize]²; defaults to 100
	MeanFreq float64 // exponential background mean; defaults to 1

	// MinStreams/MaxStreams bound the number of streams per pattern;
	// defaults 3 and max(8, Streams/20).
	MinStreams int
	MaxStreams int
	// MinLen/MaxLen bound a pattern's timeframe length; defaults 5 and
	// Timeline/6.
	MinLen int
	MaxLen int
	// PeakMin/PeakMax bound the Weibull envelope peak (injected lift at
	// the burst's top), relative to nothing — absolute frequencies.
	// Defaults 8·MeanFreq and 25·MeanFreq.
	PeakMin float64
	PeakMax float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Timeline == 0 {
		c.Timeline = 365
	}
	if c.Terms == 0 {
		c.Terms = 10000
	}
	if c.Patterns == 0 {
		c.Patterns = 1000
	}
	if c.MapSize == 0 {
		c.MapSize = 100
	}
	if c.MeanFreq == 0 {
		c.MeanFreq = 1
	}
	if c.MinStreams == 0 {
		c.MinStreams = 3
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = c.Streams / 20
		if c.MaxStreams < 8 {
			c.MaxStreams = 8
		}
	}
	if c.MaxStreams > c.Streams {
		c.MaxStreams = c.Streams
	}
	if c.MinStreams > c.MaxStreams {
		c.MinStreams = c.MaxStreams
	}
	if c.MinLen == 0 {
		c.MinLen = 5
	}
	if c.MaxLen == 0 {
		c.MaxLen = c.Timeline / 6
		if c.MaxLen < c.MinLen {
			c.MaxLen = c.MinLen
		}
	}
	if c.PeakMin == 0 {
		c.PeakMin = 8 * c.MeanFreq
	}
	if c.PeakMax == 0 {
		c.PeakMax = 25 * c.MeanFreq
	}
	return c
}

// InjectedPattern is the ground truth of one generated spatiotemporal
// pattern: which term bursts, in which streams, over which timeframe.
type InjectedPattern struct {
	Term    int
	Streams []int // ascending
	Start   int   // inclusive
	End     int   // inclusive
	// envelope parameters per member stream (aligned with Streams):
	// the paper draws c, k and the peak P independently per stream so
	// "the frequency pattern of the same event may differ from stream to
	// stream". scale premultiplies the PDF so the sampled curve peaks at
	// the drawn P.
	c, k, scale []float64
}

// Synth is a synthetic spatiotemporal dataset: stream locations, injected
// ground-truth patterns, and O(1) random access to any frequency value
// (background exponential noise plus the Weibull envelopes of the
// patterns overlapping that cell).
type Synth struct {
	cfg      SynthConfig
	points   []geo.Point
	patterns []InjectedPattern
	byTerm   map[int][]int // term -> pattern indices
	// perCell[term] lists (pattern, memberIdx) pairs per stream for fast
	// lookup during Series generation.
	memberOf map[int]map[int][]memberRef // term -> stream -> refs
}

type memberRef struct {
	pat    int // index into patterns
	member int // index into the pattern's Streams
}

// NewSynth builds the dataset skeleton: stream locations and injected
// patterns. Frequency values are generated on demand.
func NewSynth(cfg SynthConfig) *Synth {
	cfg = cfg.withDefaults()
	if cfg.Streams <= 0 {
		panic("gen: SynthConfig.Streams must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Synth{
		cfg:      cfg,
		points:   make([]geo.Point, cfg.Streams),
		byTerm:   make(map[int][]int),
		memberOf: make(map[int]map[int][]memberRef),
	}
	for i := range s.points {
		s.points[i] = geo.Point{X: rng.Float64() * cfg.MapSize, Y: rng.Float64() * cfg.MapSize}
	}
	for p := 0; p < cfg.Patterns; p++ {
		s.addPattern(rng)
	}
	return s
}

func (s *Synth) addPattern(rng *rand.Rand) {
	cfg := s.cfg
	term := rng.Intn(cfg.Terms)
	length := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
	start := rng.Intn(cfg.Timeline - length + 1)
	count := cfg.MinStreams + rng.Intn(cfg.MaxStreams-cfg.MinStreams+1)

	var streams []int
	switch cfg.Mode {
	case DistGen:
		streams = s.pickSpatial(rng, count)
	default:
		streams = rng.Perm(cfg.Streams)[:count]
	}
	sort.Ints(streams)

	p := InjectedPattern{
		Term:    term,
		Streams: streams,
		Start:   start,
		End:     start + length - 1,
		c:       make([]float64, len(streams)),
		k:       make([]float64, len(streams)),
		scale:   make([]float64, len(streams)),
	}
	for i := range streams {
		// c, k, P uniformly at random per stream (Appendix B), with
		// ranges that keep the envelope's mass inside the timeframe.
		p.k[i] = 1 + rng.Float64()*3                         // shape in [1,4]
		p.c[i] = float64(length) * (0.3 + rng.Float64()*0.5) // scale in [0.3L, 0.8L]
		peak := cfg.PeakMin + rng.Float64()*(cfg.PeakMax-cfg.PeakMin)
		// Rescale so the curve sampled at positions 1..length peaks at P.
		maxVal := 0.0
		for pos := 1; pos <= length; pos++ {
			if v := WeibullPDF(float64(pos), p.c[i], p.k[i]); v > maxVal {
				maxVal = v
			}
		}
		if maxVal > 0 {
			p.scale[i] = peak / maxVal
		}
	}
	idx := len(s.patterns)
	s.patterns = append(s.patterns, p)
	s.byTerm[term] = append(s.byTerm[term], idx)
	perStream, ok := s.memberOf[term]
	if !ok {
		perStream = make(map[int][]memberRef)
		s.memberOf[term] = perStream
	}
	for i, x := range streams {
		perStream[x] = append(perStream[x], memberRef{pat: idx, member: i})
	}
}

// pickSpatial chooses count streams around a random epicenter (the
// distGen mechanism: the intent of Appendix B's distance-driven inclusion
// is spatial locality, which the paper's Table 2 discussion confirms —
// "the spatial locality of the more realistic patterns"). Streams are
// taken in order of distance from the epicenter, each skipped with a
// small probability, so patterns are near-contiguous neighbourhoods with
// occasional holes — the structure a real localized event produces.
func (s *Synth) pickSpatial(rng *rand.Rand, count int) []int {
	n := s.cfg.Streams
	epi := rng.Intn(n)
	order := make([]int, 0, n)
	for x := 0; x < n; x++ {
		order = append(order, x)
	}
	sort.Slice(order, func(i, j int) bool {
		return geo.Dist(s.points[epi], s.points[order[i]]) <
			geo.Dist(s.points[epi], s.points[order[j]])
	})
	out := make([]int, 0, count)
	for _, cand := range order {
		if len(out) == count {
			break
		}
		if cand != epi && rng.Float64() < 0.15 {
			continue // an occasional nearby stream misses the story
		}
		out = append(out, cand)
	}
	return out
}

// Config returns the dataset's effective (defaulted) configuration.
func (s *Synth) Config() SynthConfig { return s.cfg }

// Points returns the stream locations.
func (s *Synth) Points() []geo.Point { return s.points }

// Bounds returns the generation area (for grid-mode mining).
func (s *Synth) Bounds() geo.Rect {
	return geo.Rect{MinX: 0, MinY: 0, MaxX: s.cfg.MapSize, MaxY: s.cfg.MapSize}
}

// Patterns returns every injected pattern.
func (s *Synth) Patterns() []InjectedPattern { return s.patterns }

// PatternsForTerm returns the injected patterns of one term.
func (s *Synth) PatternsForTerm(term int) []InjectedPattern {
	idxs := s.byTerm[term]
	out := make([]InjectedPattern, len(idxs))
	for i, idx := range idxs {
		out[i] = s.patterns[idx]
	}
	return out
}

// PatternTerms returns the distinct terms that have at least one injected
// pattern, in ascending order.
func (s *Synth) PatternTerms() []int {
	out := make([]int, 0, len(s.byTerm))
	for t := range s.byTerm {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// At returns the frequency of term in stream x at timestamp i:
// exponential background noise plus the Weibull lift of any injected
// pattern covering (term, x, i). O(overlapping patterns), no storage.
func (s *Synth) At(term, x, i int) float64 {
	v := expFromHash(hash4(uint64(s.cfg.Seed), uint64(term), uint64(x), uint64(i)), s.cfg.MeanFreq)
	if perStream, ok := s.memberOf[term]; ok {
		for _, ref := range perStream[x] {
			p := s.patterns[ref.pat]
			if i < p.Start || i > p.End {
				continue
			}
			m := ref.member
			v += WeibullPDF(float64(i-p.Start+1), p.c[m], p.k[m]) * p.scale[m]
		}
	}
	return v
}

// Series materializes one stream's frequency series for a term.
func (s *Synth) Series(term, x int) []float64 {
	out := make([]float64, s.cfg.Timeline)
	for i := range out {
		out[i] = s.At(term, x, i)
	}
	return out
}

// Surface materializes the full streams × timeline frequency surface of a
// term. For very large stream counts prefer Snapshot or Series to bound
// memory.
func (s *Synth) Surface(term int) [][]float64 {
	out := make([][]float64, s.cfg.Streams)
	for x := range out {
		out[x] = s.Series(term, x)
	}
	return out
}

// Snapshot fills buf (length Streams) with every stream's frequency for
// term at timestamp i and returns it; a nil buf allocates.
func (s *Synth) Snapshot(term, i int, buf []float64) []float64 {
	if buf == nil {
		buf = make([]float64, s.cfg.Streams)
	}
	for x := range buf {
		buf[x] = s.At(term, x, i)
	}
	return buf
}
