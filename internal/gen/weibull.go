// Package gen implements the paper's data generation machinery
// (Appendix B): the Weibull burst envelopes, the exponential background
// frequencies, the distGen and randGen spatiotemporal pattern generators,
// and a synthetic Topix-like corpus (§6.1) with 181 country streams,
// a weekly Sep-08..Jul-09 timeline, and the 18 Major Events of Table 9
// injected with ground-truth relevance labels.
package gen

import "math"

// WeibullPDF evaluates the Weibull density of Eq. 12 at x for shape k and
// scale c. It is 0 for x < 0.
func WeibullPDF(x, c, k float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if k == 1 {
			return 1 / c
		}
		if k < 1 {
			return math.Inf(1)
		}
		return 0
	}
	r := x / c
	return k / c * math.Pow(r, k-1) * math.Exp(-math.Pow(r, k))
}

// WeibullMode returns the location of the density's maximum: c·((k−1)/k)^(1/k)
// for k > 1, and 0 for k <= 1 (monotone decreasing density).
func WeibullMode(c, k float64) float64 {
	if k <= 1 {
		return 0
	}
	return c * math.Pow((k-1)/k, 1/k)
}

// WeibullEnvelope samples the density at timestamps 1..n and rescales so
// the curve peaks at exactly peak — the paper's recipe for injecting an
// event's frequency lift: "we can easily set the frequency P at which the
// curve peeks to any given value v, by simply multiplying all the values
// in the sequence with v/m" where m is the density's maximum.
func WeibullEnvelope(n int, c, k, peak float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	maxVal := 0.0
	for i := 0; i < n; i++ {
		out[i] = WeibullPDF(float64(i+1), c, k)
		if out[i] > maxVal {
			maxVal = out[i]
		}
	}
	if maxVal <= 0 {
		return out
	}
	scale := peak / maxVal
	for i := range out {
		out[i] *= scale
	}
	return out
}
