package core

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - exact vs. grid-aggregated rectangle finder inside STLocal
//     (fidelity vs. the near-linear scaling of Fig. 8);
//   - discrepancy vs. Kleinberg per-stream detector inside STComb
//     (the paper's §3 notes any non-overlapping-interval framework fits);
//   - offline STComb re-run vs. the online variant's incremental update
//     (the §8 future-work item);
//   - sequence pruning (Algorithm 2's S.total<0 rule) on vs. off, by
//     counting the open sequences a no-prune run would accumulate.

import (
	"math/rand"
	"testing"

	"stburst/internal/burst"
	"stburst/internal/geo"
)

// ablationData builds a dense synthetic surface with a few injected
// bursts: the regime where the finder choice matters.
func ablationData(n, L int) ([]geo.Point, [][]float64) {
	rng := rand.New(rand.NewSource(99))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	surface := make([][]float64, n)
	for x := range surface {
		surface[x] = make([]float64, L)
		for i := range surface[x] {
			surface[x][i] = rng.ExpFloat64()
		}
	}
	for b := 0; b < 4; b++ {
		cx := rng.Intn(n)
		start := rng.Intn(L - 10)
		for x := 0; x < n; x++ {
			if geo.Dist(pts[x], pts[cx]) < 15 {
				for i := start; i < start+8; i++ {
					surface[x][i] += 12
				}
			}
		}
	}
	return pts, surface
}

func benchSTLocalFinder(b *testing.B, finder RectFinder) {
	pts, surface := ablationData(181, 48)
	obs := make([]float64, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSTLocal(pts, STLocalOptions{Finder: finder})
		for t := 0; t < 48; t++ {
			for x := range surface {
				obs[x] = surface[x][t]
			}
			if err := m.Push(obs); err != nil {
				b.Fatal(err)
			}
		}
		m.Windows()
	}
}

func BenchmarkAblationSTLocalExactFinder(b *testing.B) {
	benchSTLocalFinder(b, ExactFinder())
}

func BenchmarkAblationSTLocalGridFinder(b *testing.B) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	benchSTLocalFinder(b, GridFinder(bounds, 24))
}

func benchSTCombDetector(b *testing.B, det burst.Detector) {
	_, surface := ablationData(181, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		STComb(surface, STCombOptions{Detector: det})
	}
}

func BenchmarkAblationSTCombDiscrepancy(b *testing.B) {
	benchSTCombDetector(b, burst.Discrepancy{})
}

func BenchmarkAblationSTCombKleinberg(b *testing.B) {
	benchSTCombDetector(b, burst.Kleinberg{})
}

// Offline STComb must reprocess the whole prefix per timestamp; the
// online variant pays O(n) per push. These two benchmarks measure one
// full stream's worth of per-timestamp updates under each regime.
func BenchmarkAblationSTCombOfflinePerUpdate(b *testing.B) {
	_, surface := ablationData(64, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 1; t <= 48; t++ {
			prefix := make([][]float64, len(surface))
			for x := range surface {
				prefix[x] = surface[x][:t]
			}
			STComb(prefix, STCombOptions{})
		}
	}
}

func BenchmarkAblationSTCombOnlinePerUpdate(b *testing.B) {
	_, surface := ablationData(64, 48)
	obs := make([]float64, len(surface))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewOnlineSTComb(len(surface), nil)
		for t := 0; t < 48; t++ {
			for x := range surface {
				obs[x] = surface[x][t]
			}
			if err := m.Push(obs); err != nil {
				b.Fatal(err)
			}
			m.Patterns(1)
		}
	}
}

// Pruning ablation: Algorithm 2 retires a region's sequence once its
// running total goes negative. The benchmark reports how many sequences
// stay open with the rule active; TestSTLocalPruningLosesNoWindows
// verifies the rule is lossless.
func BenchmarkAblationSTLocalPruning(b *testing.B) {
	pts, surface := ablationData(181, 48)
	obs := make([]float64, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	var open, created int
	for i := 0; i < b.N; i++ {
		m := NewSTLocal(pts, STLocalOptions{})
		for t := 0; t < 48; t++ {
			for x := range surface {
				obs[x] = surface[x][t]
			}
			if err := m.Push(obs); err != nil {
				b.Fatal(err)
			}
		}
		open = m.OpenSequences()
		created = m.CreatedSequences()
	}
	b.ReportMetric(float64(open), "open-seqs")
	b.ReportMetric(float64(created), "created-seqs")
}
