package core

import (
	"math"
	"math/rand"
	"testing"

	"stburst/internal/expect"
	"stburst/internal/geo"
)

// pushSurface feeds a full surface (streams × timeline) into the miner.
func pushSurface(t *testing.T, m *STLocal, surface [][]float64) {
	t.Helper()
	obs := make([]float64, len(surface))
	for i := 0; i < len(surface[0]); i++ {
		for x := range surface {
			obs[x] = surface[x][i]
		}
		if err := m.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSTLocalPushValidation(t *testing.T) {
	m := NewSTLocal(line(3), STLocalOptions{})
	if err := m.Push([]float64{1}); err == nil {
		t.Fatal("short snapshot should error")
	}
}

func TestSTLocalQuietStreamsNoWindows(t *testing.T) {
	m := NewSTLocal(line(4), STLocalOptions{})
	for i := 0; i < 10; i++ {
		if err := m.Push([]float64{1, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if ws := m.Windows(); len(ws) != 0 {
		t.Fatalf("flat input produced windows: %+v", ws)
	}
	if m.TotalRectCount() != 0 {
		t.Fatalf("flat input produced %d rectangles", m.TotalRectCount())
	}
}

func TestSTLocalDetectsLocalizedBurst(t *testing.T) {
	// Streams 0,1 are adjacent; 2,3 far away. Streams 0,1 burst during
	// timestamps [4,7].
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 100, Y: 100}, {X: 101, Y: 100}}
	m := NewSTLocal(pts, STLocalOptions{})
	L := 12
	for i := 0; i < L; i++ {
		obs := []float64{1, 1, 1, 1}
		if i >= 4 && i <= 7 {
			obs[0], obs[1] = 20, 25
		}
		if err := m.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
	ws := m.Windows()
	if len(ws) == 0 {
		t.Fatal("no windows found")
	}
	best, _ := BestWindow(ws)
	if !best.ContainsStream(0) || !best.ContainsStream(1) {
		t.Fatalf("best window %+v should contain streams 0 and 1", best)
	}
	if best.ContainsStream(2) || best.ContainsStream(3) {
		t.Fatalf("best window %+v should exclude the far streams", best)
	}
	if best.Start > 4 || best.End < 7 {
		t.Fatalf("best window [%d,%d] should cover the burst [4,7]", best.Start, best.End)
	}
	if best.Score <= 0 {
		t.Fatalf("best window score %v, want positive", best.Score)
	}
}

func TestSTLocalTwoSeparateRegions(t *testing.T) {
	// Two distant clusters burst at different times: two distinct windows.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 200, Y: 200}, {X: 201, Y: 201}}
	m := NewSTLocal(pts, STLocalOptions{})
	for i := 0; i < 20; i++ {
		obs := []float64{1, 1, 1, 1}
		if i >= 3 && i <= 5 {
			obs[0], obs[1] = 15, 15
		}
		if i >= 12 && i <= 14 {
			obs[2], obs[3] = 18, 18
		}
		if err := m.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
	ws := m.Windows()
	var west, east bool
	for _, w := range ws {
		if w.ContainsStream(0) && w.ContainsStream(1) && !w.ContainsStream(2) {
			if w.Start <= 3 && w.End >= 5 || (w.Start >= 3 && w.Start <= 5) {
				west = true
			}
		}
		if w.ContainsStream(2) && w.ContainsStream(3) && !w.ContainsStream(0) {
			east = true
		}
	}
	if !west || !east {
		t.Fatalf("expected one window per cluster, got %+v", ws)
	}
}

func TestSTLocalSequencePruning(t *testing.T) {
	// A region bursts then goes persistently sub-baseline: its sequence
	// total must go negative and the sequence must be dropped, while the
	// burst window survives.
	pts := line(2)
	m := NewSTLocal(pts, STLocalOptions{})
	obsAt := func(i int) []float64 {
		switch {
		case i < 3:
			return []float64{5, 5} // establish baseline
		case i < 5:
			return []float64{30, 30} // burst
		default:
			return []float64{0, 0} // collapse far below baseline
		}
	}
	for i := 0; i < 30; i++ {
		if err := m.Push(obsAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.OpenSequences() != 0 {
		t.Fatalf("%d sequences still open after collapse, want 0", m.OpenSequences())
	}
	ws := m.Windows()
	if len(ws) == 0 {
		t.Fatal("burst window lost by pruning")
	}
	best, _ := BestWindow(ws)
	if best.Start > 4 || best.End < 3 {
		t.Fatalf("window [%d,%d] should cover the burst [3,4]", best.Start, best.End)
	}
}

// Pruning safety: dropping a sequence when its total goes negative never
// loses a maximal window. Compare against an oracle miner that never
// prunes (KeepDominated to disable cross-filtering as well).
func TestSTLocalPruningLosesNoWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(4)
		L := 25
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		surface := make([][]float64, n)
		for x := range surface {
			surface[x] = make([]float64, L)
			for i := range surface[x] {
				surface[x][i] = float64(rng.Intn(4))
				if rng.Intn(8) == 0 {
					surface[x][i] += float64(10 + rng.Intn(20))
				}
			}
		}
		pruned := NewSTLocal(pts, STLocalOptions{KeepDominated: true})
		pushSurface(t, pruned, surface)

		oracle := newNoPruneOracle(pts)
		oracle.run(surface)

		got := pruned.Windows()
		// Every window the pruned miner reports must be found by the
		// oracle with the same score, and the oracle's best must equal
		// the pruned miner's best: pruning only removes sequences whose
		// suffix cannot start a maximal segment.
		gb, okG := BestWindow(got)
		ob, okO := BestWindow(oracle.windows)
		if okG != okO {
			t.Fatalf("iter %d: best existence mismatch %v vs %v", iter, okG, okO)
		}
		if okG && math.Abs(gb.Score-ob.Score) > 1e-9 {
			t.Fatalf("iter %d: best scores differ: pruned %v oracle %v", iter, gb.Score, ob.Score)
		}
	}
}

// noPruneOracle replays STLocal's bookkeeping without the total<0 pruning
// rule, keeping every sequence alive to the end of the stream.
type noPruneOracle struct {
	pts     []geo.Point
	windows []Window
}

func newNoPruneOracle(pts []geo.Point) *noPruneOracle {
	return &noPruneOracle{pts: pts}
}

func (o *noPruneOracle) run(surface [][]float64) {
	n := len(o.pts)
	L := len(surface[0])
	baselines := make([]expect.Baseline, n)
	factory := expect.NewRunningMean()
	for i := range baselines {
		baselines[i] = factory()
	}
	type seq struct {
		streams []int
		rect    geo.Rect
		start   int
		scores  []float64
	}
	seqs := map[string]*seq{}
	weights := make([]float64, n)
	for i := 0; i < L; i++ {
		for x := 0; x < n; x++ {
			weights[x] = surface[x][i] - baselines[x].Next(surface[x][i])
		}
		for _, r := range RBursty(o.pts, weights, ExactFinder()) {
			key := streamsKey(r.Streams)
			if _, ok := seqs[key]; !ok {
				seqs[key] = &seq{streams: r.Streams, rect: r.Rect, start: i}
			}
		}
		for _, sq := range seqs {
			var score float64
			for _, x := range sq.streams {
				score += weights[x]
			}
			sq.scores = append(sq.scores, score)
		}
	}
	for _, sq := range seqs {
		var rt maxseqRT
		for _, s := range sq.scores {
			rt.add(s)
		}
		for _, seg := range rt.maximals() {
			o.windows = append(o.windows, Window{
				Rect:    sq.rect,
				Streams: sq.streams,
				Start:   sq.start + seg[0],
				End:     sq.start + seg[1] - 1,
				Score:   seg2score(sq.scores, seg),
			})
		}
	}
}

// maxseqRT is a tiny independent maximal-segments implementation (simple
// quadratic scan) so the oracle does not share code with the system under
// test.
type maxseqRT struct{ scores []float64 }

func (r *maxseqRT) add(s float64) { r.scores = append(r.scores, s) }

func (r *maxseqRT) maximals() [][2]int {
	n := len(r.scores)
	cum := make([]float64, n+1)
	for i, s := range r.scores {
		cum[i+1] = cum[i] + s
	}
	var segs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j <= n; j++ {
			okLeft := true
			for k := i + 1; k < j; k++ {
				if cum[k] <= cum[i] {
					okLeft = false
					break
				}
			}
			okRight := true
			for k := i + 1; k < j; k++ {
				if cum[k] >= cum[j] {
					okRight = false
					break
				}
			}
			if okLeft && okRight && cum[j] > cum[i] {
				segs = append(segs, [2]int{i, j})
			}
		}
	}
	var out [][2]int
	for _, s := range segs {
		contained := false
		for _, tseg := range segs {
			if tseg != s && tseg[0] <= s[0] && s[1] <= tseg[1] {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, s)
		}
	}
	return out
}

func seg2score(scores []float64, seg [2]int) float64 {
	var sum float64
	for i := seg[0]; i < seg[1]; i++ {
		sum += scores[i]
	}
	return sum
}

func TestSTLocalInstrumentation(t *testing.T) {
	pts := line(3)
	m := NewSTLocal(pts, STLocalOptions{})
	if err := m.Push([]float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Push([]float64{9, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if m.Timestamps() != 2 {
		t.Fatalf("Timestamps = %d, want 2", m.Timestamps())
	}
	if m.LastRectCount() != 1 {
		t.Fatalf("LastRectCount = %d, want 1", m.LastRectCount())
	}
	if m.TotalRectCount() != 1 {
		t.Fatalf("TotalRectCount = %d, want 1", m.TotalRectCount())
	}
	hist := m.OpenHistory()
	if len(hist) != 2 || hist[0] != 0 || hist[1] != 1 {
		t.Fatalf("OpenHistory = %v, want [0 1]", hist)
	}
	if m.CreatedSequences() != 1 {
		t.Fatalf("CreatedSequences = %d, want 1", m.CreatedSequences())
	}
	if m.OpenSequences() != 1 {
		t.Fatalf("OpenSequences = %d, want 1", m.OpenSequences())
	}
}

func TestSTLocalWindowScoreEqualsWScore(t *testing.T) {
	// The reported w-score must equal Σ_i r-score(R, i, t) over the
	// window's timeframe (Eq. 9), reconstructed independently here.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	surface := [][]float64{
		{2, 2, 2, 12, 14, 2, 2, 2, 2, 2},
		{2, 2, 2, 11, 13, 2, 2, 2, 2, 2},
	}
	m := NewSTLocal(pts, STLocalOptions{})
	pushSurface(t, m, surface)
	ws := m.Windows()
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	best, _ := BestWindow(ws)
	// Reconstruct weights with an independent running mean.
	var want float64
	for _, x := range best.Streams {
		sum, cnt := 0.0, 0
		for i := 0; i < len(surface[x]); i++ {
			var exp float64
			if cnt == 0 {
				exp = surface[x][i]
			} else {
				exp = sum / float64(cnt)
			}
			if i >= best.Start && i <= best.End {
				want += surface[x][i] - exp
			}
			sum += surface[x][i]
			cnt++
		}
	}
	if math.Abs(best.Score-want) > 1e-9 {
		t.Fatalf("w-score %v, want %v", best.Score, want)
	}
}

func TestSTLocalGridMode(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pts := []geo.Point{{X: 10, Y: 10}, {X: 12, Y: 12}, {X: 90, Y: 90}}
	m := NewSTLocal(pts, STLocalOptions{Finder: GridFinder(bounds, 10)})
	for i := 0; i < 10; i++ {
		obs := []float64{1, 1, 1}
		if i >= 4 && i <= 6 {
			obs[0], obs[1] = 10, 12
		}
		if err := m.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
	ws := m.Windows()
	if len(ws) == 0 {
		t.Fatal("grid mode found no windows")
	}
	best, _ := BestWindow(ws)
	if !best.ContainsStream(0) || !best.ContainsStream(1) || best.ContainsStream(2) {
		t.Fatalf("grid-mode best window %+v", best)
	}
}

func TestMineLocalMatchesStreaming(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}
	surface := [][]float64{
		{1, 1, 8, 9, 1, 1},
		{1, 1, 7, 8, 1, 1},
	}
	batch, err := MineLocal(surface, pts, STLocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewSTLocal(pts, STLocalOptions{})
	pushSurface(t, m, surface)
	streamed := m.Windows()
	if len(batch) != len(streamed) {
		t.Fatalf("batch %d windows, streaming %d", len(batch), len(streamed))
	}
	for i := range batch {
		if batch[i].Start != streamed[i].Start || batch[i].End != streamed[i].End ||
			math.Abs(batch[i].Score-streamed[i].Score) > 1e-12 {
			t.Fatalf("window %d differs: %+v vs %+v", i, batch[i], streamed[i])
		}
	}
}

func TestMineLocalValidation(t *testing.T) {
	if _, err := MineLocal([][]float64{{1}}, line(2), STLocalOptions{}); err == nil {
		t.Fatal("mismatched surface should error")
	}
	ws, err := MineLocal(nil, nil, STLocalOptions{})
	if err != nil || ws != nil {
		t.Fatalf("empty mine: %v, %v", ws, err)
	}
}

func TestWindowOverlapsAndSubWindow(t *testing.T) {
	w := Window{
		Rect:    geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		Streams: []int{2, 5},
		Start:   3, End: 8,
	}
	if !w.Overlaps(5, 3) || w.Overlaps(5, 9) || w.Overlaps(1, 4) {
		t.Fatal("Overlaps misbehaves")
	}
	super := Window{
		Rect:  geo.Rect{MinX: -1, MinY: -1, MaxX: 11, MaxY: 11},
		Start: 2, End: 9,
	}
	if !w.SubWindowOf(super) {
		t.Fatal("w should be a sub-window of super")
	}
	if super.SubWindowOf(w) {
		t.Fatal("super is not a sub-window of w")
	}
}

func TestFilterMaximal(t *testing.T) {
	small := Window{Rect: geo.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, Start: 5, End: 6, Score: 1}
	big := Window{Rect: geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, Start: 4, End: 8, Score: 3}
	other := Window{Rect: geo.Rect{MinX: 50, MinY: 50, MaxX: 60, MaxY: 60}, Start: 0, End: 2, Score: 0.5}
	got := FilterMaximal([]Window{small, big, other})
	if len(got) != 2 {
		t.Fatalf("got %d windows, want 2 (small dominated): %+v", len(got), got)
	}
	if got[0].Score != 3 || got[1].Score != 0.5 {
		t.Fatalf("sorted scores wrong: %+v", got)
	}
	// Equal scores do not dominate.
	twin := small
	twin.Score = 1
	got = FilterMaximal([]Window{small, twin})
	if len(got) != 2 {
		t.Fatalf("equal-score windows should both survive, got %+v", got)
	}
}

func TestBestWindowEmpty(t *testing.T) {
	if _, ok := BestWindow(nil); ok {
		t.Fatal("BestWindow(nil) should report false")
	}
}

func TestSTLocalDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n, L := 6, 30
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	surface := make([][]float64, n)
	for x := range surface {
		surface[x] = make([]float64, L)
		for i := range surface[x] {
			surface[x][i] = float64(rng.Intn(20))
		}
	}
	a, err := MineLocal(surface, pts, STLocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MineLocal(surface, pts, STLocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic window count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || a[i].Score != b[i].Score {
			t.Fatalf("non-deterministic window %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func BenchmarkSTLocalPush181(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	pts := make([]geo.Point, 181)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	m := NewSTLocal(pts, STLocalOptions{})
	obs := make([]float64, 181)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := range obs {
			obs[x] = rng.ExpFloat64()
		}
		if err := m.Push(obs); err != nil {
			b.Fatal(err)
		}
	}
}
