package core

import (
	"sort"

	"stburst/internal/burst"
	"stburst/internal/interval"
)

// STCombOptions configures the STComb miner.
//
// Concurrency: an options value may be shared by any number of concurrent
// STComb calls. Detector implementations must be stateless per Detect
// call (both provided detectors are value types whose Detect reads only
// its arguments), so one detector value can serve every worker of a
// corpus-wide batch run.
type STCombOptions struct {
	// Detector extracts per-stream bursty temporal intervals. The zero
	// value uses the discrepancy framework of the authors' KDD'09 work
	// (the paper's default); burst.Kleinberg is a drop-in alternative.
	Detector burst.Detector
	// MaxPatterns bounds the number of patterns extracted by iterative
	// maxClique removal; 0 extracts every positive pattern.
	MaxPatterns int
}

// STComb mines combinatorial spatiotemporal patterns for a single term
// (§3 of the paper). surface[x][i] is the term's frequency in stream x at
// timestamp i. Patterns are returned in extraction order, i.e. descending
// score: the first is the Highest-Scoring Subset (Problem 1), the rest are
// obtained by removing the clique's intervals and re-running maxClique.
func STComb(surface [][]float64, opts STCombOptions) []CombPattern {
	det := opts.Detector
	if det == nil {
		det = burst.Discrepancy{}
	}
	var ivs []interval.Interval
	for x, series := range surface {
		for _, b := range det.Detect(series) {
			ivs = append(ivs, interval.Interval{
				Start:  b.Start,
				End:    b.End,
				Weight: b.Score,
				Stream: x,
			})
		}
	}
	return cliquesToPatterns(interval.TopCliques(ivs, opts.MaxPatterns))
}

func cliquesToPatterns(cliques []interval.Clique) []CombPattern {
	out := make([]CombPattern, 0, len(cliques))
	for _, c := range cliques {
		streams := make([]int, 0, len(c.Members))
		members := make([]interval.Interval, len(c.Members))
		copy(members, c.Members)
		sort.Slice(members, func(i, j int) bool {
			if members[i].Stream != members[j].Stream {
				return members[i].Stream < members[j].Stream
			}
			return members[i].Start < members[j].Start
		})
		for _, m := range members {
			streams = append(streams, m.Stream)
		}
		out = append(out, CombPattern{
			Streams:   streams,
			Start:     c.Start,
			End:       c.End,
			Score:     c.Weight,
			Intervals: members,
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
