package core

import (
	"math"
	"math/rand"
	"testing"

	"stburst/internal/geo"
)

func TestRShapeBurstyEmpty(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if got := RShapeBursty(nil, nil, bounds, 4); got != nil {
		t.Fatalf("empty input: got %v", got)
	}
	if got := RShapeBursty(line(3), []float64{-1, -1, -1}, bounds, 4); got != nil {
		t.Fatalf("all-negative: got %v", got)
	}
}

func TestRShapeBurstyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RShapeBursty(line(2), []float64{1}, geo.Rect{MaxX: 1, MaxY: 1}, 2)
}

func TestRShapeBurstyLShapedRegion(t *testing.T) {
	// Positive cells form an L shape a rectangle could not capture
	// without swallowing the heavily negative corner.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}
	pts := []geo.Point{
		{X: 0.5, Y: 0.5}, // cell (0,0)
		{X: 1.5, Y: 0.5}, // cell (1,0)
		{X: 2.5, Y: 0.5}, // cell (2,0)
		{X: 0.5, Y: 1.5}, // cell (0,1)
		{X: 0.5, Y: 2.5}, // cell (0,2)
		{X: 2.5, Y: 2.5}, // cell (2,2): heavy negative
	}
	w := []float64{2, 2, 2, 2, 2, -100}
	regions := RShapeBursty(pts, w, bounds, 3)
	if len(regions) != 1 {
		t.Fatalf("got %d regions, want 1: %+v", len(regions), regions)
	}
	r := regions[0]
	if math.Abs(r.Score-10) > 1e-12 {
		t.Fatalf("score %v, want 10", r.Score)
	}
	if len(r.Streams) != 5 {
		t.Fatalf("streams %v, want the five positive streams", r.Streams)
	}
	if len(r.Cells) != 5 {
		t.Fatalf("cells %v, want 5 L-shaped cells", r.Cells)
	}
	for _, x := range r.Streams {
		if x == 5 {
			t.Fatal("negative stream included")
		}
	}
}

func TestRShapeBurstySeparateComponents(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	pts := []geo.Point{
		{X: 0.5, Y: 0.5},
		{X: 3.5, Y: 3.5},
	}
	w := []float64{1, 5}
	regions := RShapeBursty(pts, w, bounds, 4)
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2: %+v", len(regions), regions)
	}
	if regions[0].Score != 5 || regions[1].Score != 1 {
		t.Fatalf("scores %v, %v; want 5, 1 (descending)", regions[0].Score, regions[1].Score)
	}
}

func TestRShapeBurstyDiagonalNotConnected(t *testing.T) {
	// Diagonal adjacency is not 4-connectivity: two diagonal cells are
	// separate regions.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	pts := []geo.Point{
		{X: 0.5, Y: 0.5}, // cell (0,0)
		{X: 1.5, Y: 1.5}, // cell (1,1)
	}
	regions := RShapeBursty(pts, []float64{1, 1}, bounds, 2)
	if len(regions) != 2 {
		t.Fatalf("diagonal cells merged: %+v", regions)
	}
}

func TestRShapeBurstyNegativeCellBreaksBridge(t *testing.T) {
	// A middle cell whose aggregate is negative separates two positives.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 1}
	pts := []geo.Point{
		{X: 0.5, Y: 0.5},
		{X: 1.5, Y: 0.5},
		{X: 2.5, Y: 0.5},
	}
	regions := RShapeBursty(pts, []float64{4, -1, 3}, bounds, 3)
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2: %+v", len(regions), regions)
	}
}

func TestRShapeBurstyStreamsDisjointInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(40)
		pts := make([]geo.Point, n)
		w := make([]float64, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			w[i] = rng.NormFloat64()
		}
		regions := RShapeBursty(pts, w, bounds, 5)
		seen := map[int]bool{}
		for _, r := range regions {
			if r.Score <= 0 {
				t.Fatalf("non-positive region score %v", r.Score)
			}
			for _, x := range r.Streams {
				if seen[x] {
					t.Fatalf("stream %d in two regions", x)
				}
				seen[x] = true
			}
		}
	}
}
