package core

import (
	"fmt"
	"strconv"
	"strings"

	"stburst/internal/expect"
	"stburst/internal/geo"
	"stburst/internal/maxseq"
)

// STLocalOptions configures the STLocal miner.
//
// Concurrency: an options value may be shared by any number of concurrent
// miners. Baseline is a factory precisely so that no baseline *instance*
// is ever shared — every NewSTLocal call creates its own per-stream
// instances — and Finder implementations must be stateless per call (both
// provided finders are). Individual STLocal instances are NOT safe for
// concurrent use; create one per goroutine (MineLocal does).
type STLocalOptions struct {
	// Baseline supplies the expected-frequency model E_x[i][t] of Eq. 7.
	// nil uses the paper's default, the running mean over all earlier
	// snapshots.
	Baseline expect.Factory
	// Finder locates the maximum r-score rectangle per R-Bursty
	// iteration. nil uses the exact finder.
	Finder RectFinder
	// KeepDominated, when set, makes Windows return every per-region
	// maximal segment without the cross-region maximality filter of
	// Definition 2.
	KeepDominated bool
}

// sequence tracks one bursty region: the per-timestamp r-scores of a
// fixed stream set, fed into an online Ruzzo–Tompa instance whose maximal
// segments are the region's maximal windows.
type sequence struct {
	key     string // streamsKey of the region, for map removal
	streams []int  // ascending stream indices defining the region
	rect    geo.Rect
	start   int // timestamp at which tracking began
	rt      maxseq.RuzzoTompa
}

// STLocal is the online regional pattern miner of §4 (Algorithm 2) for a
// single term. Feed it one snapshot of per-stream frequencies per
// timestamp with Push; at any point Windows returns the maximal
// spatiotemporal windows found so far.
type STLocal struct {
	opts      STLocalOptions
	points    []geo.Point
	baselines []expect.Baseline
	weights   []float64
	finder    RectFinder

	// seqs answers "is this region already tracked?"; order holds the
	// same open sequences in creation order. Every loop that can reach
	// the output must walk order, never the map: map iteration order is
	// randomized, and with it the order equal-scoring windows would
	// reach the (unstable) final sort — output must be byte-identical
	// across runs and processes for the snapshot/serving pipeline.
	seqs  map[string]*sequence
	order []*sequence
	done  []Window
	now   int

	lastRects   int   // rectangles reported at the most recent snapshot
	totalRects  int   // rectangles reported across all snapshots
	openHistory []int // open sequences after each snapshot (Fig. 6)
	created     int   // sequences ever created
}

// NewSTLocal creates a miner over streams fixed at the given locations.
func NewSTLocal(points []geo.Point, opts STLocalOptions) *STLocal {
	factory := opts.Baseline
	if factory == nil {
		factory = expect.NewRunningMean()
	}
	finder := opts.Finder
	if finder == nil {
		finder = ExactFinder()
	}
	baselines := make([]expect.Baseline, len(points))
	for i := range baselines {
		baselines[i] = factory()
	}
	return &STLocal{
		opts:      opts,
		points:    points,
		baselines: baselines,
		weights:   make([]float64, len(points)),
		finder:    finder,
		seqs:      make(map[string]*sequence),
	}
}

// Push processes one snapshot: observed[x] is the term's frequency in
// stream x at the next timestamp (D_x[i][t], Eq. 6).
func (s *STLocal) Push(observed []float64) error {
	if len(observed) != len(s.points) {
		return fmt.Errorf("core: snapshot has %d streams, want %d", len(observed), len(s.points))
	}
	// Line 9 precursor: burstiness weights B(t, D_x[i]) = obs − expected.
	for x, obs := range observed {
		s.weights[x] = obs - s.baselines[x].Next(obs)
	}
	// Line 6: find this snapshot's bursty rectangles.
	rects := RBursty(s.points, s.weights, s.finder)
	s.lastRects = len(rects)
	s.totalRects += len(rects)
	// Line 7: open a sequence for every newly seen region.
	for _, r := range rects {
		key := streamsKey(r.Streams)
		if _, ok := s.seqs[key]; ok {
			continue
		}
		seq := &sequence{key: key, streams: r.Streams, rect: r.Rect, start: s.now}
		s.seqs[key] = seq
		s.order = append(s.order, seq)
		s.created++
	}
	// Lines 8–12: append the region's current r-score to every open
	// sequence; retire sequences whose running total went negative (no
	// maximal segment can have a suffix of such a sequence as a prefix).
	// Iterate in creation order so retiring sequences finalize their
	// windows deterministically.
	live := s.order[:0]
	for _, seq := range s.order {
		var score float64
		for _, x := range seq.streams {
			score += s.weights[x]
		}
		seq.rt.Add(score)
		if seq.rt.Total() < 0 {
			s.finalize(seq)
			delete(s.seqs, seq.key)
		} else {
			live = append(live, seq)
		}
	}
	for i := len(live); i < len(s.order); i++ {
		s.order[i] = nil // release retired sequences
	}
	s.order = live
	s.now++
	s.openHistory = append(s.openHistory, len(s.seqs))
	return nil
}

// finalize converts a retiring sequence's maximal segments into windows.
func (s *STLocal) finalize(seq *sequence) {
	for _, seg := range seq.rt.Maximals() {
		s.done = append(s.done, Window{
			Rect:    seq.rect,
			Streams: seq.streams,
			Start:   seq.start + seg.Start,
			End:     seq.start + seg.End - 1,
			Score:   seg.Score,
		})
	}
}

// Windows returns the maximal spatiotemporal windows W_t accumulated so
// far: segments of retired sequences plus the current maximal segments of
// every open sequence. Unless KeepDominated was set, windows strictly
// dominated by a super-window (Definition 2) are dropped. The result is
// sorted by descending score.
func (s *STLocal) Windows() []Window {
	out := make([]Window, len(s.done))
	copy(out, s.done)
	for _, seq := range s.order {
		for _, seg := range seq.rt.Maximals() {
			out = append(out, Window{
				Rect:    seq.rect,
				Streams: seq.streams,
				Start:   seq.start + seg.Start,
				End:     seq.start + seg.End - 1,
				Score:   seg.Score,
			})
		}
	}
	if s.opts.KeepDominated {
		SortWindows(out)
		return out
	}
	return FilterMaximal(out)
}

// Timestamps returns the number of snapshots processed so far.
func (s *STLocal) Timestamps() int { return s.now }

// LastRectCount returns the number of bursty rectangles reported at the
// most recent snapshot (the quantity histogrammed in Fig. 5).
func (s *STLocal) LastRectCount() int { return s.lastRects }

// TotalRectCount returns the number of bursty rectangles reported across
// all snapshots so far.
func (s *STLocal) TotalRectCount() int { return s.totalRects }

// OpenSequences returns the number of regions currently being tracked
// (the "open spatiotemporal windows" of Fig. 6).
func (s *STLocal) OpenSequences() int { return len(s.seqs) }

// OpenHistory returns, per processed timestamp, the number of open
// sequences after that snapshot.
func (s *STLocal) OpenHistory() []int {
	out := make([]int, len(s.openHistory))
	copy(out, s.openHistory)
	return out
}

// CreatedSequences returns the number of sequences ever opened, whose
// worst case is n·|L| (Appendix A).
func (s *STLocal) CreatedSequences() int { return s.created }

// streamsKey encodes an ascending stream-index list as a map key.
func streamsKey(streams []int) string {
	var b strings.Builder
	for i, x := range streams {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// MineLocal runs STLocal over a whole frequency surface (streams ×
// timeline) and returns its maximal windows. It is the batch convenience
// wrapper over the streaming API.
func MineLocal(surface [][]float64, points []geo.Point, opts STLocalOptions) ([]Window, error) {
	if len(surface) != len(points) {
		return nil, fmt.Errorf("core: surface has %d streams, want %d", len(surface), len(points))
	}
	m := NewSTLocal(points, opts)
	if len(surface) == 0 {
		return nil, nil
	}
	obs := make([]float64, len(points))
	for i := 0; i < len(surface[0]); i++ {
		for x := range surface {
			obs[x] = surface[x][i]
		}
		if err := m.Push(obs); err != nil {
			return nil, err
		}
	}
	return m.Windows(), nil
}
