package core

import (
	"sort"

	"stburst/internal/geo"
)

// ShapeRegion is a bursty region of arbitrary shape: a 4-connected set of
// grid cells whose aggregate burstiness is positive. It addresses the
// paper's future-work item of extending STLocal "to handle geographical
// regions of arbitrary size, as opposed to the rectangular shapes" (§8).
type ShapeRegion struct {
	Cells   [][2]int // (col, row) grid cells, in discovery order
	Streams []int    // indices of member streams, ascending
	Score   float64
}

// RShapeBursty finds all maximal arbitrary-shape bursty regions of one
// snapshot: streams are aggregated into a grid×grid partition of bounds,
// and every 4-connected component of positive-total cells whose aggregate
// weight is positive becomes a region. Components are maximal by
// construction (no positive cell is left unassigned) and mutually
// disjoint, mirroring R-Bursty's no-overlap guarantee. Regions are
// returned by descending score.
func RShapeBursty(points []geo.Point, weights []float64, bounds geo.Rect, grid int) []ShapeRegion {
	if len(points) != len(weights) {
		panic("core: RShapeBursty points/weights length mismatch")
	}
	if grid < 1 {
		grid = 1
	}
	w := bounds.Width()
	h := bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	cellW := make([][]float64, grid)
	cellStreams := make([][][]int, grid)
	for r := range cellW {
		cellW[r] = make([]float64, grid)
		cellStreams[r] = make([][]int, grid)
	}
	for i, p := range points {
		if !bounds.Contains(p) {
			continue
		}
		cx := int((p.X - bounds.MinX) / w * float64(grid))
		cy := int((p.Y - bounds.MinY) / h * float64(grid))
		if cx == grid {
			cx = grid - 1
		}
		if cy == grid {
			cy = grid - 1
		}
		cellW[cy][cx] += weights[i]
		cellStreams[cy][cx] = append(cellStreams[cy][cx], i)
	}
	visited := make([][]bool, grid)
	for r := range visited {
		visited[r] = make([]bool, grid)
	}
	var regions []ShapeRegion
	var stack [][2]int
	for r := 0; r < grid; r++ {
		for c := 0; c < grid; c++ {
			if visited[r][c] || cellW[r][c] <= 0 {
				continue
			}
			// Flood-fill the 4-connected component of positive cells.
			var reg ShapeRegion
			stack = append(stack[:0], [2]int{c, r})
			visited[r][c] = true
			for len(stack) > 0 {
				cell := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				cc, cr := cell[0], cell[1]
				reg.Cells = append(reg.Cells, cell)
				reg.Score += cellW[cr][cc]
				reg.Streams = append(reg.Streams, cellStreams[cr][cc]...)
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nc, nr := cc+d[0], cr+d[1]
					if nc < 0 || nc >= grid || nr < 0 || nr >= grid {
						continue
					}
					if visited[nr][nc] || cellW[nr][nc] <= 0 {
						continue
					}
					visited[nr][nc] = true
					stack = append(stack, [2]int{nc, nr})
				}
			}
			if reg.Score > 0 {
				sort.Ints(reg.Streams)
				regions = append(regions, reg)
			}
		}
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].Score != regions[j].Score {
			return regions[i].Score > regions[j].Score
		}
		a, b := regions[i].Cells[0], regions[j].Cells[0]
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[0] < b[0]
	})
	return regions
}
