package core

import (
	"fmt"
	"sort"

	"stburst/internal/expect"
	"stburst/internal/interval"
	"stburst/internal/maxseq"
)

// OnlineSTComb is the "purely online version of STComb" the paper lists
// as future work (§8). Offline STComb must recompute every stream's
// bursty intervals when new data arrives, because the B_T normalization
// of Eq. 1 depends on the series total. The online variant instead scores
// timestamps with the residual weights of Eq. 7 (observed − expected,
// exactly the quantity STLocal uses) and maintains each stream's maximal
// bursty intervals incrementally with an online Ruzzo–Tompa instance:
// Push costs O(n) amortized, and Patterns assembles the current interval
// set and runs the maxClique extraction on demand.
//
// Interval scores are therefore residual sums rather than the
// [0,1]-normalized B_T; ranking behaviour is preserved (bigger deviations
// score higher) but absolute pattern scores are not comparable between
// the two variants.
type OnlineSTComb struct {
	baselines []expect.Baseline
	rts       []maxseq.RuzzoTompa
	mass      []float64 // cumulative observed frequency per stream
	opts      OnlineSTCombOptions
	now       int
}

// OnlineSTCombOptions tunes the online miner. The zero value reproduces
// the defaults. The thresholds mirror STCombOptions' discrepancy-detector
// knobs, with one caveat: online interval scores are residual sums rather
// than the [0,1]-normalized B_T, so MinIntervalScore is on the residual
// scale.
type OnlineSTCombOptions struct {
	// Baseline creates the per-stream expected-frequency baselines; nil
	// uses the running-mean default.
	Baseline expect.Factory
	// MinIntervalScore drops per-stream intervals whose residual score is
	// at or below the threshold.
	MinIntervalScore float64
	// MinIntervalMass drops streams whose cumulative observed frequency
	// is below the threshold (a stream observed once has no burst
	// structure).
	MinIntervalMass float64
	// MaxPatterns bounds Patterns(0); 0 means all.
	MaxPatterns int
}

// NewOnlineSTComb creates an online combinatorial miner over n streams.
// baseline nil uses the running-mean default.
func NewOnlineSTComb(n int, baseline expect.Factory) *OnlineSTComb {
	return NewOnlineSTCombOpts(n, OnlineSTCombOptions{Baseline: baseline})
}

// NewOnlineSTCombOpts creates an online combinatorial miner over n
// streams with the given options.
func NewOnlineSTCombOpts(n int, opts OnlineSTCombOptions) *OnlineSTComb {
	baseline := opts.Baseline
	if baseline == nil {
		baseline = expect.NewRunningMean()
	}
	baselines := make([]expect.Baseline, n)
	for i := range baselines {
		baselines[i] = baseline()
	}
	return &OnlineSTComb{
		baselines: baselines,
		rts:       make([]maxseq.RuzzoTompa, n),
		mass:      make([]float64, n),
		opts:      opts,
	}
}

// Push processes one snapshot of per-stream frequencies.
func (o *OnlineSTComb) Push(observed []float64) error {
	if len(observed) != len(o.rts) {
		return fmt.Errorf("core: snapshot has %d streams, want %d", len(observed), len(o.rts))
	}
	for x, obs := range observed {
		o.mass[x] += obs
		o.rts[x].Add(obs - o.baselines[x].Next(obs))
	}
	o.now++
	return nil
}

// Timestamps returns the number of snapshots processed so far.
func (o *OnlineSTComb) Timestamps() int { return o.now }

// Patterns returns up to max combinatorial patterns (0 = all, capped by
// the options' MaxPatterns) over the bursty intervals accumulated so far,
// after the options' interval-score and stream-mass thresholds.
func (o *OnlineSTComb) Patterns(max int) []CombPattern {
	if max == 0 {
		max = o.opts.MaxPatterns
	}
	var ivs []interval.Interval
	for x := range o.rts {
		if o.mass[x] < o.opts.MinIntervalMass {
			continue
		}
		for _, seg := range o.rts[x].Maximals() {
			// Mirror burst.Discrepancy: keep only intervals scoring
			// strictly above the threshold (maximal Ruzzo–Tompa segments
			// score positively, so the zero threshold drops nothing).
			if seg.Score <= o.opts.MinIntervalScore {
				continue
			}
			ivs = append(ivs, interval.Interval{
				Start:  seg.Start,
				End:    seg.End - 1,
				Weight: seg.Score,
				Stream: x,
			})
		}
	}
	return cliquesToPatterns(interval.TopCliques(ivs, max))
}

// Intervals returns the current per-stream maximal bursty intervals,
// sorted by stream then start, mainly for inspection and testing.
func (o *OnlineSTComb) Intervals() []interval.Interval {
	var ivs []interval.Interval
	for x := range o.rts {
		for _, seg := range o.rts[x].Maximals() {
			ivs = append(ivs, interval.Interval{
				Start:  seg.Start,
				End:    seg.End - 1,
				Weight: seg.Score,
				Stream: x,
			})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Stream != ivs[j].Stream {
			return ivs[i].Stream < ivs[j].Stream
		}
		return ivs[i].Start < ivs[j].Start
	})
	return ivs
}
