package core

import (
	"math"
	"math/rand"
	"testing"

	"stburst/internal/burst"
)

// quiet returns a flat background series of the given length.
func quiet(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// withBurst returns a flat series with a strong burst over [a, b].
func withBurst(n, a, b int, height float64) []float64 {
	s := quiet(n)
	for i := a; i <= b; i++ {
		s[i] = height
	}
	return s
}

func TestSTCombEmpty(t *testing.T) {
	if got := STComb(nil, STCombOptions{}); got != nil {
		t.Fatalf("empty surface: got %v", got)
	}
	if got := STComb([][]float64{{0, 0}, {0, 0}}, STCombOptions{}); got != nil {
		t.Fatalf("zero surface: got %v", got)
	}
}

func TestSTCombSingleSharedBurst(t *testing.T) {
	// Three streams bursting over overlapping windows, one quiet stream.
	surface := [][]float64{
		withBurst(20, 5, 9, 30),
		withBurst(20, 6, 10, 30),
		withBurst(20, 5, 8, 30),
		quiet(20),
	}
	pats := STComb(surface, STCombOptions{})
	if len(pats) == 0 {
		t.Fatal("expected at least one pattern")
	}
	top := pats[0]
	if len(top.Streams) != 3 {
		t.Fatalf("top pattern streams %v, want the three bursting streams", top.Streams)
	}
	for _, x := range top.Streams {
		if x == 3 {
			t.Fatal("quiet stream included in pattern")
		}
	}
	// Common segment of [5,9], [6,10], [5,8] is [6,8].
	if top.Start != 6 || top.End != 8 {
		t.Fatalf("timeframe [%d,%d], want [6,8]", top.Start, top.End)
	}
	// Score is the sum of the member intervals' B_T scores, each in (0,1].
	if top.Score <= 0 || top.Score > 3 {
		t.Fatalf("score %v outside (0,3]", top.Score)
	}
}

func TestSTCombDisjointBurstsMakeSeparatePatterns(t *testing.T) {
	surface := [][]float64{
		withBurst(30, 2, 4, 40),
		withBurst(30, 20, 22, 40),
	}
	pats := STComb(surface, STCombOptions{})
	if len(pats) != 2 {
		t.Fatalf("got %d patterns, want 2: %+v", len(pats), pats)
	}
	for _, p := range pats {
		if len(p.Streams) != 1 {
			t.Fatalf("pattern should contain a single stream: %+v", p)
		}
	}
}

func TestSTCombMaxPatterns(t *testing.T) {
	surface := [][]float64{
		withBurst(30, 2, 4, 40),
		withBurst(30, 20, 22, 40),
	}
	pats := STComb(surface, STCombOptions{MaxPatterns: 1})
	if len(pats) != 1 {
		t.Fatalf("got %d patterns, want 1", len(pats))
	}
}

func TestSTCombKleinbergDetector(t *testing.T) {
	surface := [][]float64{
		withBurst(20, 5, 9, 50),
		withBurst(20, 6, 10, 50),
	}
	pats := STComb(surface, STCombOptions{Detector: burst.Kleinberg{}})
	if len(pats) == 0 {
		t.Fatal("Kleinberg detector found no patterns")
	}
	if len(pats[0].Streams) != 2 {
		t.Fatalf("top pattern streams %v, want both", pats[0].Streams)
	}
}

func TestSTCombScoresDescendAndDisjointIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(6)
		L := 30
		surface := make([][]float64, n)
		for x := range surface {
			surface[x] = quiet(L)
			bursts := rng.Intn(3)
			for b := 0; b < bursts; b++ {
				a := rng.Intn(L - 3)
				for i := a; i <= a+2; i++ {
					surface[x][i] += float64(10 + rng.Intn(40))
				}
			}
		}
		pats := STComb(surface, STCombOptions{})
		prev := math.Inf(1)
		for _, p := range pats {
			if p.Score > prev+1e-9 {
				t.Fatalf("pattern scores increased: %+v", pats)
			}
			prev = p.Score
			if p.Start > p.End {
				t.Fatalf("inverted timeframe: %+v", p)
			}
			if len(p.Streams) == 0 {
				t.Fatalf("empty stream set: %+v", p)
			}
			seen := map[int]bool{}
			for _, x := range p.Streams {
				if x < 0 || x >= n {
					t.Fatalf("stream index out of range: %+v", p)
				}
				if seen[x] {
					t.Fatalf("duplicate stream in pattern (per-stream intervals must be disjoint): %+v", p)
				}
				seen[x] = true
			}
		}
	}
}

func TestCombPatternOverlaps(t *testing.T) {
	p := CombPattern{Streams: []int{1, 4, 7}, Start: 10, End: 20}
	if !p.Overlaps(4, 15) {
		t.Fatal("member stream within timeframe should overlap")
	}
	if p.Overlaps(4, 21) {
		t.Fatal("outside timeframe should not overlap")
	}
	if p.Overlaps(2, 15) {
		t.Fatal("non-member stream should not overlap")
	}
	if !p.ContainsStream(7) || p.ContainsStream(5) {
		t.Fatal("ContainsStream misbehaves")
	}
}

func TestOnlineSTCombMatchesBatchIntervals(t *testing.T) {
	// With a constant-zero baseline the online residuals equal the raw
	// frequencies, so per-stream maximal intervals are deterministic.
	o := NewOnlineSTComb(2, nil)
	series := [][]float64{
		{1, 1, 9, 9, 1, 1},
		{1, 1, 1, 9, 9, 1},
	}
	for i := 0; i < 6; i++ {
		if err := o.Push([]float64{series[0][i], series[1][i]}); err != nil {
			t.Fatal(err)
		}
	}
	if o.Timestamps() != 6 {
		t.Fatalf("Timestamps = %d, want 6", o.Timestamps())
	}
	pats := o.Patterns(0)
	if len(pats) == 0 {
		t.Fatal("no online patterns found")
	}
	top := pats[0]
	if len(top.Streams) != 2 {
		t.Fatalf("top online pattern streams %v, want both streams", top.Streams)
	}
	// Shared segment must include timestamp 3 where both burst.
	if top.Start > 3 || top.End < 3 {
		t.Fatalf("timeframe [%d,%d] should include 3", top.Start, top.End)
	}
}

func TestOnlineSTCombPushValidation(t *testing.T) {
	o := NewOnlineSTComb(3, nil)
	if err := o.Push([]float64{1, 2}); err == nil {
		t.Fatal("short snapshot should error")
	}
}

func TestOnlineSTCombIntervalsSorted(t *testing.T) {
	o := NewOnlineSTComb(2, nil)
	for _, obs := range [][]float64{{5, 0}, {0, 0}, {0, 7}, {6, 0}} {
		if err := o.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
	ivs := o.Intervals()
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Stream < ivs[i-1].Stream ||
			(ivs[i].Stream == ivs[i-1].Stream && ivs[i].Start < ivs[i-1].Start) {
			t.Fatalf("intervals unsorted: %+v", ivs)
		}
	}
}

func BenchmarkSTComb181x48(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	surface := make([][]float64, 181)
	for x := range surface {
		surface[x] = make([]float64, 48)
		for i := range surface[x] {
			surface[x][i] = rng.ExpFloat64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		STComb(surface, STCombOptions{})
	}
}
