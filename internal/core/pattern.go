// Package core implements the paper's primary contribution: simultaneous
// mining of spatial and temporal term burstiness. It provides the two
// pattern miners of the paper —
//
//   - STComb (§3): combinatorial spatiotemporal patterns, obtained by
//     extracting per-stream bursty temporal intervals and solving the
//     Highest-Scoring Subset problem as a maximum-weight clique on the
//     intervals' intersection graph (Proposition 1);
//
//   - STLocal (§4): regional spatiotemporal patterns, obtained by finding
//     non-overlapping bursty rectangles per snapshot (R-Bursty,
//     Algorithm 1) and maintaining maximal spatiotemporal windows online
//     (Algorithm 2);
//
// plus the two extensions the paper lists as future work (§8): an online
// variant of STComb and a miner for non-rectangular (arbitrary-shape)
// regions.
package core

import (
	"sort"

	"stburst/internal/geo"
	"stburst/internal/interval"
)

// CombPattern is a combinatorial spatiotemporal pattern (§3): a set of
// streams that were simultaneously bursty during a common temporal
// segment, scored by the cumulative temporal burstiness of the member
// intervals (Eq. 3).
type CombPattern struct {
	Streams []int // indices of member streams, ascending
	Start   int   // first timestamp of the common segment (inclusive)
	End     int   // last timestamp of the common segment (inclusive)
	Score   float64
	// Intervals holds each member stream's contributing bursty interval,
	// sorted by stream index. The pattern's [Start, End] is their common
	// segment; the member intervals themselves are what the search
	// engine overlaps documents against (a document sits inside the
	// pattern through its own stream's burst).
	Intervals []interval.Interval
}

// ContainsStream reports whether stream x participates in the pattern.
func (p CombPattern) ContainsStream(x int) bool {
	i := sort.SearchInts(p.Streams, x)
	return i < len(p.Streams) && p.Streams[i] == x
}

// Overlaps reports whether a document from stream x at timestamp i
// overlaps the pattern's common segment (both its stream and its
// timestamp are included, §5).
func (p CombPattern) Overlaps(x, i int) bool {
	return i >= p.Start && i <= p.End && p.ContainsStream(x)
}

// OverlapsMember reports whether a document from stream x at timestamp i
// falls inside stream x's own contributing interval of the pattern. This
// is the overlap notion the search engine uses: the common segment of a
// large clique can shrink to a single timestamp, but a document belongs
// to the pattern through its stream's full bursty interval.
func (p CombPattern) OverlapsMember(x, i int) bool {
	idx := sort.Search(len(p.Intervals), func(j int) bool { return p.Intervals[j].Stream >= x })
	for ; idx < len(p.Intervals) && p.Intervals[idx].Stream == x; idx++ {
		if p.Intervals[idx].Contains(i) {
			return true
		}
	}
	return false
}

// Window is a regional spatiotemporal pattern (§4): an axis-oriented
// rectangle on the map and a timeframe during which the rectangle was
// bursty, scored by the w-score of Eq. 9.
type Window struct {
	Rect    geo.Rect
	Streams []int // indices of streams inside Rect, ascending
	Start   int   // first timestamp (inclusive)
	End     int   // last timestamp (inclusive)
	Score   float64
}

// ContainsStream reports whether stream x lies inside the window's region.
func (w Window) ContainsStream(x int) bool {
	i := sort.SearchInts(w.Streams, x)
	return i < len(w.Streams) && w.Streams[i] == x
}

// Overlaps reports whether a document from stream x at timestamp i
// overlaps the window (§5).
func (w Window) Overlaps(x, i int) bool {
	return i >= w.Start && i <= w.End && w.ContainsStream(x)
}

// SubWindowOf reports whether w is completely contained in o in both
// space and time (Definition 2 of the paper).
func (w Window) SubWindowOf(o Window) bool {
	return o.Rect.ContainsRect(w.Rect) && o.Start <= w.Start && w.End <= o.End
}

// FilterMaximal drops every window that has a strict super-window with a
// strictly higher w-score (Definition 2: a window is maximal iff no
// super-window outscores it). The result is sorted by descending score,
// ties broken by earlier start and smaller region.
func FilterMaximal(windows []Window) []Window {
	out := make([]Window, 0, len(windows))
	for i, w := range windows {
		dominated := false
		for j, o := range windows {
			if i == j {
				continue
			}
			if w.SubWindowOf(o) && o.Score > w.Score {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, w)
		}
	}
	SortWindows(out)
	return out
}

// SortWindows orders windows by descending score, breaking ties by start
// time, end time, region extent and member streams. The tie-break is a
// total order over distinct windows: the sort is unstable, so anything
// less would let the caller's input order — and upstream, randomized map
// iteration — leak into results that must be byte-identical across runs.
func SortWindows(ws []Window) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Rect.MinX != b.Rect.MinX {
			return a.Rect.MinX < b.Rect.MinX
		}
		if a.Rect.MinY != b.Rect.MinY {
			return a.Rect.MinY < b.Rect.MinY
		}
		if a.Rect.MaxX != b.Rect.MaxX {
			return a.Rect.MaxX < b.Rect.MaxX
		}
		if a.Rect.MaxY != b.Rect.MaxY {
			return a.Rect.MaxY < b.Rect.MaxY
		}
		for k := 0; k < len(a.Streams) && k < len(b.Streams); k++ {
			if a.Streams[k] != b.Streams[k] {
				return a.Streams[k] < b.Streams[k]
			}
		}
		return len(a.Streams) < len(b.Streams)
	})
}

// BestWindow returns the highest-scoring window under the SortWindows
// order and reports whether any window exists.
func BestWindow(ws []Window) (Window, bool) {
	if len(ws) == 0 {
		return Window{}, false
	}
	best := ws[0]
	for _, w := range ws[1:] {
		if w.Score > best.Score ||
			(w.Score == best.Score && (w.Start < best.Start ||
				(w.Start == best.Start && w.End < best.End))) {
			best = w
		}
	}
	return best, true
}
