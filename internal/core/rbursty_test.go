package core

import (
	"math"
	"math/rand"
	"testing"

	"stburst/internal/geo"
)

func line(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i), Y: 0}
	}
	return pts
}

func TestRBurstyEmpty(t *testing.T) {
	if got := RBursty(nil, nil, ExactFinder()); got != nil {
		t.Fatalf("empty input: got %v", got)
	}
}

func TestRBurstyAllNegative(t *testing.T) {
	pts := line(4)
	w := []float64{-1, -2, -0.5, -3}
	if got := RBursty(pts, w, ExactFinder()); got != nil {
		t.Fatalf("all-negative weights: got %v", got)
	}
}

func TestRBurstyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	RBursty(line(3), []float64{1}, ExactFinder())
}

func TestRBurstySingleRegion(t *testing.T) {
	pts := line(5)
	w := []float64{-1, 2, 3, -1, -1}
	rects := RBursty(pts, w, ExactFinder())
	if len(rects) != 1 {
		t.Fatalf("got %d rects, want 1: %+v", len(rects), rects)
	}
	r := rects[0]
	if r.Score != 5 {
		t.Fatalf("score %v, want 5", r.Score)
	}
	if len(r.Streams) != 2 || r.Streams[0] != 1 || r.Streams[1] != 2 {
		t.Fatalf("streams %v, want [1 2]", r.Streams)
	}
}

func TestRBurstySplitsAcrossHeavyNegative(t *testing.T) {
	// Paper §4: the algorithm automatically determines whether to expand
	// one rectangle or report several smaller ones.
	pts := line(5)
	w := []float64{2, -10, 3, -10, 1}
	rects := RBursty(pts, w, ExactFinder())
	if len(rects) != 3 {
		t.Fatalf("got %d rects, want 3: %+v", len(rects), rects)
	}
	// Extraction order is by descending score.
	if rects[0].Score != 3 || rects[1].Score != 2 || rects[2].Score != 1 {
		t.Fatalf("scores %v,%v,%v want 3,2,1", rects[0].Score, rects[1].Score, rects[2].Score)
	}
}

func TestRBurstyMergesAcrossLightNegative(t *testing.T) {
	pts := line(3)
	w := []float64{2, -0.5, 3}
	rects := RBursty(pts, w, ExactFinder())
	if len(rects) != 1 {
		t.Fatalf("got %d rects, want 1 merged: %+v", len(rects), rects)
	}
	if math.Abs(rects[0].Score-4.5) > 1e-12 {
		t.Fatalf("score %v, want 4.5", rects[0].Score)
	}
	if len(rects[0].Streams) != 3 {
		t.Fatalf("streams %v, want all three", rects[0].Streams)
	}
}

// Invariants from Algorithm 1 and Definition 1: rectangles are
// stream-disjoint, every score is positive and equals the member-weight
// sum, and at most n rectangles are reported.
func TestRBurstyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(30)
		pts := make([]geo.Point, n)
		w := make([]float64, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			w[i] = rng.NormFloat64()
		}
		rects := RBursty(pts, w, ExactFinder())
		if len(rects) > n {
			t.Fatalf("%d rects for %d streams", len(rects), n)
		}
		seen := make(map[int]bool)
		for _, r := range rects {
			if r.Score <= 0 {
				t.Fatalf("non-positive rect score %v", r.Score)
			}
			var sum float64
			for _, x := range r.Streams {
				if seen[x] {
					t.Fatalf("stream %d in two rectangles", x)
				}
				seen[x] = true
				sum += w[x]
			}
			if math.Abs(sum-r.Score) > 1e-9 {
				t.Fatalf("score %v != member sum %v", r.Score, sum)
			}
			for _, x := range r.Streams {
				if !r.Rect.Contains(pts[x]) {
					t.Fatalf("member %d outside reported rect", x)
				}
			}
		}
	}
}

// The union of reported rectangles captures every positive stream that is
// not dominated by neighbours: in a configuration of isolated positives
// (far apart), every positive stream must be reported.
func TestRBurstyIsolatedPositivesAllReported(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}}
	w := []float64{1, 2, 3, 4}
	rects := RBursty(pts, w, ExactFinder())
	covered := 0
	for _, r := range rects {
		covered += len(r.Streams)
	}
	if covered != 4 {
		t.Fatalf("covered %d positives, want 4: %+v", covered, rects)
	}
}

func TestRBurstyGridFinder(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pts := []geo.Point{{X: 10, Y: 10}, {X: 12, Y: 11}, {X: 50, Y: 50}, {X: 90, Y: 90}}
	w := []float64{2, 3, -6, 4}
	rects := RBursty(pts, w, GridFinder(bounds, 10))
	if len(rects) != 2 {
		t.Fatalf("got %d rects, want 2: %+v", len(rects), rects)
	}
	if rects[0].Score != 5 || rects[1].Score != 4 {
		t.Fatalf("scores %v, %v; want 5, 4", rects[0].Score, rects[1].Score)
	}
	for _, r := range rects {
		for _, x := range r.Streams {
			if x == 2 {
				t.Fatal("negative stream 2 must not be a member")
			}
		}
	}
}

func TestRBurstyGridBlockedCellsNotReused(t *testing.T) {
	// After reporting a cell, planting -Inf must prevent any later
	// rectangle from spanning it.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30}
	pts := []geo.Point{{X: 5, Y: 5}, {X: 15, Y: 5}, {X: 25, Y: 5}}
	w := []float64{1, -5, 10}
	rects := RBursty(pts, w, GridFinder(bounds, 3))
	if len(rects) != 2 {
		t.Fatalf("got %d rects, want 2: %+v", len(rects), rects)
	}
	if rects[0].Score != 10 || rects[1].Score != 1 {
		t.Fatalf("scores %v, %v; want 10, 1", rects[0].Score, rects[1].Score)
	}
	seen := map[int]bool{}
	for _, r := range rects {
		for _, x := range r.Streams {
			if seen[x] {
				t.Fatalf("stream %d reported twice", x)
			}
			seen[x] = true
		}
	}
	if seen[1] {
		t.Fatal("negative stream 1 should never be reported alone")
	}
}
