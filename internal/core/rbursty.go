package core

import (
	"math"

	"stburst/internal/discrepancy"
	"stburst/internal/geo"
)

// RectFinder returns the maximum-weight rectangle over a weighted point
// set, playing the role of the Dobkin et al. module in Algorithm 1.
// Implementations must honour -Inf blocker weights: a reported rectangle
// containing a blocker must score -Inf. Implementations must also be
// safe for concurrent use — stateless per call — since one finder value
// is shared by every worker of a corpus-wide batch run (ExactFinder and
// GridFinder both qualify: they read only their arguments).
type RectFinder func(pts []discrepancy.WeightedPoint) (discrepancy.Rectangle, bool)

// ExactFinder returns the exact maximum-weight rectangle finder.
func ExactFinder() RectFinder { return discrepancy.MaxRect }

// GridFinder returns a rectangle finder that aggregates points into a
// grid×grid partition of bounds — the granularity mechanism of §2 of the
// paper, which keeps STLocal near-linear for very large stream counts.
func GridFinder(bounds geo.Rect, grid int) RectFinder {
	return func(pts []discrepancy.WeightedPoint) (discrepancy.Rectangle, bool) {
		return discrepancy.GridMaxRect(pts, bounds, grid)
	}
}

// BurstyRect is one rectangle reported by R-Bursty: a region whose
// cumulative burstiness (r-score, Eq. 8) is positive at the current
// snapshot.
type BurstyRect struct {
	Rect    geo.Rect
	Streams []int // indices of streams inside Rect, ascending
	Score   float64
}

// RBursty implements Algorithm 1 of the paper: it repeatedly retrieves
// the maximum r-score rectangle, reports it, plants -Inf on every stream
// it contains (eliminating overlap among reported rectangles), and stops
// as soon as the best remaining rectangle scores at or below zero. The
// returned rectangles are stream-disjoint and all score positively; there
// are at most len(points) of them.
//
// weights[x] is B(t, D_x[i]) for stream x at the current snapshot
// (Eq. 7). points and weights must have equal length.
func RBursty(points []geo.Point, weights []float64, finder RectFinder) []BurstyRect {
	if len(points) != len(weights) {
		panic("core: RBursty points/weights length mismatch")
	}
	pts := make([]discrepancy.WeightedPoint, len(points))
	for i, p := range points {
		pts[i] = discrepancy.WeightedPoint{X: p.X, Y: p.Y, W: weights[i]}
	}
	var out []BurstyRect
	for iter := 0; iter <= len(points); iter++ {
		r, ok := finder(pts)
		if !ok || r.Score <= 0 || math.IsInf(r.Score, -1) {
			break
		}
		streams := make([]int, len(r.Points))
		copy(streams, r.Points)
		out = append(out, BurstyRect{Rect: r.Rect, Streams: streams, Score: r.Score})
		for _, i := range r.Points {
			pts[i].W = math.Inf(-1)
		}
	}
	return out
}
