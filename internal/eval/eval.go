// Package eval implements the evaluation metrics of the paper's §6:
// Jaccard similarity of stream sets, timeframe start/end errors (Table 2),
// precision@k against ground-truth relevance (Table 3), pairwise top-k
// overlap (§6.3), and the histogram utility behind Figs. 5–6.
package eval

import "sort"

// JaccardInt returns |A∩B| / |A∪B| for two integer sets given as slices
// (duplicates are ignored). The Jaccard coefficient of two empty sets is
// defined as 1.
func JaccardInt(a, b []int) float64 {
	sa := make(map[int]struct{}, len(a))
	for _, x := range a {
		sa[x] = struct{}{}
	}
	sb := make(map[int]struct{}, len(b))
	for _, x := range b {
		sb[x] = struct{}{}
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for x := range sa {
		if _, ok := sb[x]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// AbsErr returns |a − b| as a float64 — the Start-Error/End-Error measure
// of §6.2.2 for timestamp indices.
func AbsErr(a, b int) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

// PrecisionAtK returns the fraction of the first k retrieved items that
// are relevant. When fewer than k items were retrieved, the denominator
// is still k (missing items count as irrelevant), matching a fixed-k
// evaluation. k must be positive.
func PrecisionAtK(retrieved []int, relevant map[int]bool, k int) float64 {
	if k <= 0 {
		panic("eval: PrecisionAtK requires k > 0")
	}
	if len(retrieved) > k {
		retrieved = retrieved[:k]
	}
	hits := 0
	for _, d := range retrieved {
		if relevant[d] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// TopKOverlap returns |A∩B| / k for two top-k result lists — the
// "similarity between their top-k sets (defined as the size of the
// overlap divided by 10)" of §6.3. k must be positive.
func TopKOverlap(a, b []int, k int) float64 {
	if k <= 0 {
		panic("eval: TopKOverlap requires k > 0")
	}
	if len(a) > k {
		a = a[:k]
	}
	if len(b) > k {
		b = b[:k]
	}
	sa := make(map[int]struct{}, len(a))
	for _, x := range a {
		sa[x] = struct{}{}
	}
	inter := 0
	for _, x := range b {
		if _, ok := sa[x]; ok {
			inter++
		}
	}
	return float64(inter) / float64(k)
}

// Histogram buckets values into [edges[i], edges[i+1]) bins plus a final
// overflow bin for values at or above the last edge. It returns one count
// per bin (len(edges) bins in total).
func Histogram(values []float64, edges []float64) []int {
	counts := make([]int, len(edges))
	for _, v := range values {
		// Find the last edge <= v.
		i := sort.SearchFloat64s(edges, v)
		if i < len(edges) && edges[i] == v {
			// v is exactly an edge: belongs to the bin starting at v.
		} else {
			i--
		}
		if i < 0 {
			continue // below the first edge: not counted
		}
		if i >= len(edges) {
			i = len(edges) - 1
		}
		counts[i]++
	}
	return counts
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
