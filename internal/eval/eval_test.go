package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaccardInt(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{[]int{1}, []int{1}, 1},
		{[]int{1}, []int{2}, 0},
		{nil, nil, 1},
		{[]int{1}, nil, 0},
		{[]int{1, 1, 2}, []int{2, 2}, 1.0 / 2.0}, // duplicates ignored
	}
	for _, tc := range cases {
		if got := JaccardInt(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("JaccardInt(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := JaccardInt(tc.b, tc.a); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("JaccardInt symmetric (%v,%v) = %v, want %v", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestJaccardIntRange(t *testing.T) {
	f := func(a, b []int8) bool {
		ai := make([]int, len(a))
		for i, v := range a {
			ai[i] = int(v)
		}
		bi := make([]int, len(b))
		for i, v := range b {
			bi[i] = int(v)
		}
		j := JaccardInt(ai, bi)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbsErr(t *testing.T) {
	if AbsErr(3, 7) != 4 || AbsErr(7, 3) != 4 || AbsErr(5, 5) != 0 {
		t.Fatal("AbsErr misbehaves")
	}
}

func TestPrecisionAtK(t *testing.T) {
	rel := map[int]bool{1: true, 2: true, 3: true}
	if got := PrecisionAtK([]int{1, 2, 9, 8, 3}, rel, 5); got != 0.6 {
		t.Fatalf("got %v, want 0.6", got)
	}
	// Short result lists are penalized against fixed k.
	if got := PrecisionAtK([]int{1}, rel, 10); got != 0.1 {
		t.Fatalf("got %v, want 0.1", got)
	}
	// Over-long lists are truncated.
	if got := PrecisionAtK([]int{9, 9, 1}, rel, 2); got != 0 {
		t.Fatalf("got %v, want 0", got)
	}
}

func TestPrecisionAtKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PrecisionAtK(nil, nil, 0)
}

func TestTopKOverlap(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	b := []int{3, 4, 5, 6, 7}
	if got := TopKOverlap(a, b, 5); got != 0.6 {
		t.Fatalf("got %v, want 0.6", got)
	}
	if got := TopKOverlap(a, a, 5); got != 1 {
		t.Fatalf("self overlap = %v, want 1", got)
	}
	if got := TopKOverlap(a, []int{9}, 5); got != 0 {
		t.Fatalf("got %v, want 0", got)
	}
	// Truncation to k.
	if got := TopKOverlap([]int{1, 2}, []int{2, 1}, 1); got != 0 {
		t.Fatalf("got %v, want 0 (only heads compared)", got)
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{0, 1, 2, 5}
	got := Histogram([]float64{0, 0.5, 1, 1.9, 3, 5, 100, -1}, edges)
	// [0,1): 0, 0.5 → 2; [1,2): 1, 1.9 → 2; [2,5): 3 → 1; [5,∞): 5, 100 → 2.
	want := []int{2, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", got, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	got := Histogram(nil, []float64{0, 1})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("got %v, want 2", got)
	}
}
