package textproc

import (
	"reflect"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("The earthquake struck Costa Rica on Thursday.")
	want := []string{"earthquake", "struck", "costa", "rica", "thursday"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	tk := NewTokenizer()
	if got := tk.Tokenize(""); got != nil {
		t.Fatalf("empty text: got %v", got)
	}
	if got := tk.Tokenize("   \t\n "); got != nil {
		t.Fatalf("whitespace: got %v", got)
	}
}

func TestTokenizeStopwords(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("the and of with")
	if got != nil {
		t.Fatalf("all-stopword text: got %v", got)
	}
}

func TestTokenizeCustomStopwords(t *testing.T) {
	tk := NewTokenizer(WithStopwords([]string{"quake"}))
	got := tk.Tokenize("the quake hit")
	want := []string{"the", "hit"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeHyphenAndApostrophe(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("medium-scale quake; Zimbabwe's PM")
	want := []string{"mediumscale", "quake", "zimbabwes", "pm"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeTrailingHyphen(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("broken- word")
	want := []string{"broken", "word"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	plain := NewTokenizer()
	if got := plain.Tokenize("2009 earthquake 7"); !reflect.DeepEqual(got, []string{"earthquake"}) {
		t.Fatalf("numbers should drop: got %v", got)
	}
	nums := NewTokenizer(WithNumbers())
	want := []string{"2009", "earthquake"}
	if got := nums.Tokenize("2009 earthquake 7"); !reflect.DeepEqual(got, want) {
		t.Fatalf("WithNumbers: got %v, want %v (single digit below min length)", got, want)
	}
}

func TestTokenizeMinMaxLen(t *testing.T) {
	tk := NewTokenizer(WithMinLen(4), WithMaxLen(6))
	got := tk.Tokenize("go gaza ceasefire quake")
	want := []string{"gaza", "quake"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("São Paulo: 地震 reported")
	want := []string{"são", "paulo", "地震", "reported"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeCaseFolding(t *testing.T) {
	tk := NewTokenizer()
	got := tk.Tokenize("OBAMA Obama obama")
	want := []string{"obama", "obama", "obama"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
