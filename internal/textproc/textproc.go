// Package textproc provides the tokenization pipeline used to turn raw
// document text into the term streams consumed by the burstiness miners:
// Unicode-aware word splitting, case folding, and stopword removal.
package textproc

import (
	"strings"
	"unicode"
)

// DefaultStopwords is a compact English stopword list suitable for news
// text. Callers needing custom behaviour can construct a Tokenizer with
// their own list.
var DefaultStopwords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from",
	"had", "has", "have", "he", "her", "his", "i", "in", "is", "it", "its",
	"may", "more", "not", "of", "on", "or", "she", "that", "the", "their",
	"they", "this", "to", "was", "were", "which", "will", "with", "would",
}

// Tokenizer splits text into normalized terms.
type Tokenizer struct {
	stop    map[string]struct{}
	minLen  int
	maxLen  int
	keepNum bool
}

// Option configures a Tokenizer.
type Option func(*Tokenizer)

// WithStopwords replaces the stopword list.
func WithStopwords(words []string) Option {
	return func(t *Tokenizer) {
		t.stop = make(map[string]struct{}, len(words))
		for _, w := range words {
			t.stop[strings.ToLower(w)] = struct{}{}
		}
	}
}

// WithMinLen drops tokens shorter than n runes (default 2).
func WithMinLen(n int) Option { return func(t *Tokenizer) { t.minLen = n } }

// WithMaxLen drops tokens longer than n runes (default 40).
func WithMaxLen(n int) Option { return func(t *Tokenizer) { t.maxLen = n } }

// WithNumbers keeps purely numeric tokens (dropped by default).
func WithNumbers() Option { return func(t *Tokenizer) { t.keepNum = true } }

// NewTokenizer builds a tokenizer with the default configuration modified
// by opts.
func NewTokenizer(opts ...Option) *Tokenizer {
	t := &Tokenizer{minLen: 2, maxLen: 40}
	WithStopwords(DefaultStopwords)(t)
	for _, o := range opts {
		o(t)
	}
	return t
}

// Tokenize splits text into lowercase terms, dropping stopwords, tokens
// outside the configured length bounds, and (unless WithNumbers) purely
// numeric tokens. Splitting happens at any rune that is neither a letter
// nor a digit, except that single apostrophes and hyphens inside a word
// are removed rather than treated as separators ("mid-scale" → "midscale").
func (t *Tokenizer) Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		n := len([]rune(tok))
		if n < t.minLen || n > t.maxLen {
			return
		}
		if _, bad := t.stop[tok]; bad {
			return
		}
		if !t.keepNum && isNumeric(tok) {
			return
		}
		out = append(out, tok)
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case (r == '\'' || r == '-') && b.Len() > 0 && i+1 < len(runes) &&
			(unicode.IsLetter(runes[i+1]) || unicode.IsDigit(runes[i+1])):
			// Interior apostrophe/hyphen: join the two halves.
		default:
			flush()
		}
	}
	flush()
	return out
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}
