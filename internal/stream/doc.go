// Package stream models spatiotemporal document collections: a set of
// document streams D = {D_1[·], ..., D_n[·]}, each fixed at a geographic
// location (its geostamp), receiving sets of documents at discrete
// timestamps (§2 of the paper).
//
// Collection stores documents as packed posting lists and derives the
// views every other layer consumes: the per-term frequency surfaces
// D_x[i][t] of Eq. 6 for the pattern miners, the merged single-stream
// series for the temporal-only TB baseline of §6.3, and the per-term
// document/frequency pairs for the search engine's indexer. Dictionary
// interns terms to the dense integer IDs used throughout the repository —
// including inside persisted pattern-index snapshots, which is why
// loaders that rebuild a collection from a corpus file must intern
// deterministically (see internal/corpusio).
//
// # Concurrency
//
// Loading (AddTokens, AddCounts, SetRetainCounts, Dictionary.ID) must
// happen from a single goroutine. Once loading is done, every read path —
// Surface, MergedSeries, TermDocs, Terms, Doc, Dict().Lookup/Term, and
// the rest of the accessors — is safe for unlimited concurrent use: the
// corpus-wide batch miners read one collection from many workers at once,
// and a serving process answers queries over it from many requests.
package stream
