package stream

import (
	"fmt"

	"stburst/internal/geo"
)

// Info describes one document stream: a named, fixed geostamp.
type Info struct {
	Name     string     // e.g. a country or city name
	Location geo.Point  // projected position on the 2-D map
	Geo      geo.LatLon // original geographic coordinate, if known
}

// Document is one geostamped, timestamped document. Counts maps interned
// term IDs to their within-document frequency freq(t, d).
type Document struct {
	ID     int
	Stream int // index into the collection's stream list
	Time   int // timestamp index in [0, Length)
	Counts map[int]int
}

// Dictionary interns terms to dense integer IDs.
type Dictionary struct {
	ids   map[string]int
	terms []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]int)}
}

// ID interns term and returns its dense ID.
func (d *Dictionary) ID(term string) int {
	if id, ok := d.ids[term]; ok {
		return id
	}
	id := len(d.terms)
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the ID of term without interning, and whether it exists.
func (d *Dictionary) Lookup(term string) (int, bool) {
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the string for an ID; it panics on an unknown ID.
func (d *Dictionary) Term(id int) string { return d.terms[id] }

// Len returns the number of interned terms.
func (d *Dictionary) Len() int { return len(d.terms) }

// posting records one (document, stream, time, count) occurrence of a
// term. Fields are packed: corpora at the paper's scale (305k articles,
// ~9M postings) stay in tens of megabytes.
type posting struct {
	doc    int32
	stream int32
	time   int32
	count  int32
}

// Collection is a spatiotemporal document collection: n streams observed
// over a timeline of Length discrete timestamps.
//
// Concurrency: loading (AddTokens/AddCounts/SetRetainCounts and
// Dictionary.ID) must happen from a single goroutine. Once loading is
// done, every read path — Surface, MergedSeries, TermDocs, Terms, Doc,
// Dict().Lookup/Term, and the rest of the accessors — is safe for
// unlimited concurrent use: the corpus-wide batch miners read one
// collection from many workers at once.
type Collection struct {
	streams      []Info
	length       int
	dict         *Dictionary
	docs         []Document
	postings     map[int][]posting // term ID -> occurrences
	retainCounts bool
}

// NewCollection creates an empty collection over the given streams and
// timeline length.
func NewCollection(streams []Info, length int) *Collection {
	return &Collection{
		streams:      streams,
		length:       length,
		dict:         NewDictionary(),
		postings:     make(map[int][]posting),
		retainCounts: true,
	}
}

// SetRetainCounts controls whether documents keep their per-term count
// maps after indexing (default true). Large corpus builders disable it:
// every consumer in this repository reads term frequencies through the
// posting lists, and dropping the per-document maps cuts memory by an
// order of magnitude at the 305k-article scale.
func (c *Collection) SetRetainCounts(retain bool) { c.retainCounts = retain }

// NumStreams returns the number of document streams.
func (c *Collection) NumStreams() int { return len(c.streams) }

// Length returns the timeline length (number of timestamps).
func (c *Collection) Length() int { return c.length }

// Stream returns the description of stream x.
func (c *Collection) Stream(x int) Info { return c.streams[x] }

// Points returns the projected 2-D locations of all streams, indexed by
// stream.
func (c *Collection) Points() []geo.Point {
	pts := make([]geo.Point, len(c.streams))
	for i, s := range c.streams {
		pts[i] = s.Location
	}
	return pts
}

// Dict returns the collection's term dictionary.
func (c *Collection) Dict() *Dictionary { return c.dict }

// NumDocs returns the number of documents added so far.
func (c *Collection) NumDocs() int { return len(c.docs) }

// Doc returns document id (IDs are assigned densely by AddTokens/AddCounts
// in insertion order).
func (c *Collection) Doc(id int) Document { return c.docs[id] }

// AddTokens adds a document given its token list, interning terms through
// the collection dictionary, and returns the assigned document ID.
func (c *Collection) AddTokens(streamIdx, time int, tokens []string) (int, error) {
	counts := make(map[int]int, len(tokens))
	for _, tok := range tokens {
		counts[c.dict.ID(tok)]++
	}
	return c.AddCounts(streamIdx, time, counts)
}

// AddCounts adds a document given pre-interned term counts and returns the
// assigned document ID.
func (c *Collection) AddCounts(streamIdx, time int, counts map[int]int) (int, error) {
	if streamIdx < 0 || streamIdx >= len(c.streams) {
		return 0, fmt.Errorf("stream: document stream %d out of range [0,%d)", streamIdx, len(c.streams))
	}
	if time < 0 || time >= c.length {
		return 0, fmt.Errorf("stream: document time %d out of range [0,%d)", time, c.length)
	}
	id := len(c.docs)
	doc := Document{ID: id, Stream: streamIdx, Time: time}
	if c.retainCounts {
		doc.Counts = counts
	}
	c.docs = append(c.docs, doc)
	for term, n := range counts {
		c.postings[term] = append(c.postings[term], posting{
			doc:    int32(id),
			stream: int32(streamIdx),
			time:   int32(time),
			count:  int32(n),
		})
	}
	return id, nil
}

// Terms returns the IDs of all terms that occur in the collection, in
// unspecified order.
func (c *Collection) Terms() []int {
	out := make([]int, 0, len(c.postings))
	for t := range c.postings {
		out = append(out, t)
	}
	return out
}

// DocFreq returns the number of documents containing the term.
func (c *Collection) DocFreq(term int) int { return len(c.postings[term]) }

// Surface returns the dense frequency surface of a term:
// surface[x][i] = D_x[i][t], the total frequency of the term in the
// documents of stream x at timestamp i (Eq. 6 of the paper).
func (c *Collection) Surface(term int) [][]float64 {
	surface := make([][]float64, len(c.streams))
	flat := make([]float64, len(c.streams)*c.length)
	for x := range surface {
		surface[x], flat = flat[:c.length], flat[c.length:]
	}
	for _, p := range c.postings[term] {
		surface[p.stream][p.time] += float64(p.count)
	}
	return surface
}

// MergedSeries returns the term's frequency series with all streams merged
// into one, as consumed by the temporal-only TB baseline (§6.3: "the
// streams from the various countries were merged to a single stream").
func (c *Collection) MergedSeries(term int) []float64 {
	series := make([]float64, c.length)
	for _, p := range c.postings[term] {
		series[p.time] += float64(p.count)
	}
	return series
}

// TermDocs returns the IDs of all documents containing the term together
// with freq(term, d), in insertion order.
func (c *Collection) TermDocs(term int) (ids []int, freqs []int) {
	ps := c.postings[term]
	ids = make([]int, len(ps))
	freqs = make([]int, len(ps))
	for i, p := range ps {
		ids[i] = int(p.doc)
		freqs[i] = int(p.count)
	}
	return ids, freqs
}
