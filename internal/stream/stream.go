package stream

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"stburst/internal/geo"
)

// Info describes one document stream: a named, fixed geostamp.
type Info struct {
	Name     string     // e.g. a country or city name
	Location geo.Point  // projected position on the 2-D map
	Geo      geo.LatLon // original geographic coordinate, if known
}

// Document is one geostamped, timestamped document. Counts maps interned
// term IDs to their within-document frequency freq(t, d).
type Document struct {
	ID     int
	Stream int // index into the collection's stream list
	Time   int // timestamp index in [0, Length)
	Counts map[int]int
}

// Dictionary interns terms to dense integer IDs.
//
// Concurrency: ID (interning) must only run from the collection's writer
// path; Lookup/Term/Len are safe for unlimited concurrent use against a
// dictionary reached through a published collection state, because
// appends never mutate entries a published state can see (see
// Collection.Append).
type Dictionary struct {
	ids   map[string]int
	terms []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]int)}
}

// ID interns term and returns its dense ID.
func (d *Dictionary) ID(term string) int {
	if id, ok := d.ids[term]; ok {
		return id
	}
	id := len(d.terms)
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the ID of term without interning, and whether it exists.
func (d *Dictionary) Lookup(term string) (int, bool) {
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the string for an ID; it panics on an unknown ID.
func (d *Dictionary) Term(id int) string { return d.terms[id] }

// Len returns the number of interned terms.
func (d *Dictionary) Len() int { return len(d.terms) }

// clone returns a dictionary the appender may intern into without
// disturbing readers of the original: the ids map is copied (map writes
// race with reads), while the terms slice is shared — ID only ever
// appends, and a reader of the original dictionary never indexes past
// its own frozen length.
func (d *Dictionary) clone() *Dictionary {
	ids := make(map[string]int, len(d.ids))
	for t, id := range d.ids {
		ids[t] = id
	}
	return &Dictionary{ids: ids, terms: d.terms}
}

// posting records one (document, stream, time, count) occurrence of a
// term. Fields are packed: corpora at the paper's scale (305k articles,
// ~9M postings) stay in tens of megabytes.
type posting struct {
	doc    int32
	stream int32
	time   int32
	count  int32
}

// state is one immutable-once-published snapshot of the collection's
// mutable content. Readers load the current state exactly once per
// operation and never observe a torn mix of two generations; appenders
// build the next state and publish it with a single atomic store.
type state struct {
	dict     *Dictionary
	docs     []Document
	postings map[int][]posting // term ID -> occurrences
}

// Collection is a spatiotemporal document collection: n streams observed
// over a timeline of Length discrete timestamps.
//
// Concurrency: the initial load (AddTokens/AddCounts/AddStringCounts,
// SetRetainCounts and Dictionary.ID) must happen from a single goroutine
// with no concurrent readers, exactly as before. Once loading is done,
// every read path — Surface, MergedSeries, TermDocs, Terms, Doc,
// Dict().Lookup/Term, and the rest of the accessors — is safe for
// unlimited concurrent use, and Append may publish further documents
// while those reads run: each reader operation sees one atomic snapshot
// of the collection, either wholly before or wholly after any batch.
type Collection struct {
	streams      []Info
	length       int
	retainCounts bool
	mu           sync.Mutex // serializes writers: load-phase adds and Append batches
	st           atomic.Pointer[state]
}

// NewCollection creates an empty collection over the given streams and
// timeline length.
func NewCollection(streams []Info, length int) *Collection {
	c := &Collection{
		streams:      streams,
		length:       length,
		retainCounts: true,
	}
	c.st.Store(&state{
		dict:     NewDictionary(),
		postings: make(map[int][]posting),
	})
	return c
}

// SetRetainCounts controls whether documents keep their per-term count
// maps after indexing (default true). Large corpus builders disable it:
// every consumer in this repository reads term frequencies through the
// posting lists, and dropping the per-document maps cuts memory by an
// order of magnitude at the 305k-article scale.
func (c *Collection) SetRetainCounts(retain bool) { c.retainCounts = retain }

// NumStreams returns the number of document streams.
func (c *Collection) NumStreams() int { return len(c.streams) }

// Length returns the timeline length (number of timestamps).
func (c *Collection) Length() int { return c.length }

// Stream returns the description of stream x.
func (c *Collection) Stream(x int) Info { return c.streams[x] }

// Points returns the projected 2-D locations of all streams, indexed by
// stream.
func (c *Collection) Points() []geo.Point {
	pts := make([]geo.Point, len(c.streams))
	for i, s := range c.streams {
		pts[i] = s.Location
	}
	return pts
}

// Dict returns the collection's term dictionary (the current snapshot's;
// after an Append, a fresh Dict() call sees the extended vocabulary).
func (c *Collection) Dict() *Dictionary { return c.st.Load().dict }

// NumDocs returns the number of documents added so far.
func (c *Collection) NumDocs() int { return len(c.st.Load().docs) }

// Doc returns document id (IDs are assigned densely by AddTokens/AddCounts
// and Append in insertion order).
func (c *Collection) Doc(id int) Document { return c.st.Load().docs[id] }

// AddTokens adds a document given its token list, interning terms through
// the collection dictionary, and returns the assigned document ID. Load
// phase only; see Append for post-load arrival.
func (c *Collection) AddTokens(streamIdx, time int, tokens []string) (int, error) {
	st := c.st.Load()
	counts := make(map[int]int, len(tokens))
	for _, tok := range tokens {
		counts[st.dict.ID(tok)]++
	}
	return c.AddCounts(streamIdx, time, counts)
}

// AddStringCounts adds a document given per-term counts keyed by the term
// string, interning the document's terms in sorted order: map iteration
// is randomized per process, and snapshot portability (plus stable
// cross-process index fingerprints) needs every load of a corpus to
// assign identical dictionary IDs. Load phase only; Append interns the
// same way for post-load batches.
func (c *Collection) AddStringCounts(streamIdx, time int, counts map[string]int) (int, error) {
	st := c.st.Load()
	ids, _ := internSorted(st.dict, counts)
	return c.AddCounts(streamIdx, time, ids)
}

// internSorted interns one document's terms into dict in sorted string
// order and returns the ID-keyed count map plus the interned IDs in that
// same sorted-term order — the single definition of deterministic
// per-document interning shared by the load and append paths.
func internSorted(dict *Dictionary, counts map[string]int) (map[int]int, []int) {
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	out := make(map[int]int, len(counts))
	ids := make([]int, len(terms))
	for i, t := range terms {
		id := dict.ID(t)
		out[id] = counts[t]
		ids[i] = id
	}
	return out, ids
}

// checkDoc validates a document's stream and timestamp against the
// collection's shape.
func (c *Collection) checkDoc(streamIdx, time int) error {
	if streamIdx < 0 || streamIdx >= len(c.streams) {
		return fmt.Errorf("stream: document stream %d out of range [0,%d)", streamIdx, len(c.streams))
	}
	if time < 0 || time >= c.length {
		return fmt.Errorf("stream: document time %d out of range [0,%d)", time, c.length)
	}
	return nil
}

// AddCounts adds a document given pre-interned term counts and returns the
// assigned document ID. Load phase only: it mutates the current snapshot
// in place (single goroutine, no concurrent readers); see Append for the
// post-load write path.
func (c *Collection) AddCounts(streamIdx, time int, counts map[int]int) (int, error) {
	if err := c.checkDoc(streamIdx, time); err != nil {
		return 0, err
	}
	st := c.st.Load()
	id := len(st.docs)
	doc := Document{ID: id, Stream: streamIdx, Time: time}
	if c.retainCounts {
		doc.Counts = counts
	}
	st.docs = append(st.docs, doc)
	for term, n := range counts {
		st.postings[term] = append(st.postings[term], posting{
			doc:    int32(id),
			stream: int32(streamIdx),
			time:   int32(time),
			count:  int32(n),
		})
	}
	return id, nil
}

// AppendDoc is one document arriving after the initial load: a stream, a
// timestamp, and per-term counts keyed by the term string (interned in
// sorted order, preserving the deterministic ID assignment of the load
// path for replayed appends).
type AppendDoc struct {
	Stream int
	Time   int
	Counts map[string]int
}

// CheckBatch validates a batch against the collection's shape without
// applying it — exactly the checks Append performs before touching any
// state. The write-ahead log runs it before logging a batch, making
// "logged but unappendable" impossible: a frame that reached the log
// always replays cleanly into a collection of the same shape.
func (c *Collection) CheckBatch(docs []AppendDoc) error {
	for i, d := range docs {
		if err := c.checkDoc(d.Stream, d.Time); err != nil {
			return fmt.Errorf("appending document %d: %w", i, err)
		}
	}
	return nil
}

// Append atomically publishes a batch of documents arriving after the
// initial load, safely under any number of concurrent readers: the next
// snapshot is built aside (sharing all untouched structure with the
// current one) and installed with a single atomic store, so a concurrent
// reader observes the collection either wholly before or wholly after
// the batch, never a torn mix. Batches are all-or-nothing: any invalid
// document rejects the whole batch with nothing published. Concurrent
// Append calls serialize.
//
// It returns the ID assigned to the first appended document (IDs are
// dense and consecutive from there) and the ascending IDs of every
// dirty term — a term whose frequency surface the batch changed,
// including terms the batch interned for the first time. The frozen
// prefix of the dictionary is untouched: existing IDs never move, so
// pattern indexes and snapshots mined before the append remain attached
// and only the dirty terms need re-mining.
func (c *Collection) Append(docs []AppendDoc) (firstID int, dirty []int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, d := range docs {
		if err := c.checkDoc(d.Stream, d.Time); err != nil {
			return 0, nil, fmt.Errorf("appending document %d: %w", i, err)
		}
	}
	cur := c.st.Load()
	next := &state{
		dict: cur.dict.clone(),
		// Appending to the current slices beyond their published length
		// is reader-safe: a reader's snapshot caps every index at the
		// length it was published with, so writes land either past every
		// visible length (shared backing array) or in a fresh copy.
		docs:     cur.docs,
		postings: make(map[int][]posting, len(cur.postings)),
	}
	for t, ps := range cur.postings {
		next.postings[t] = ps
	}
	firstID = len(cur.docs)
	dirtySet := make(map[int]struct{})
	for i, d := range docs {
		id := firstID + i
		counts, ids := internSorted(next.dict, d.Counts)
		doc := Document{ID: id, Stream: d.Stream, Time: d.Time}
		if c.retainCounts {
			doc.Counts = counts
		}
		next.docs = append(next.docs, doc)
		// Walk the IDs in sorted-term order rather than the count map so
		// posting order — and with it every downstream fingerprint — is
		// deterministic across replays.
		for _, tid := range ids {
			next.postings[tid] = append(next.postings[tid], posting{
				doc:    int32(id),
				stream: int32(d.Stream),
				time:   int32(d.Time),
				count:  int32(counts[tid]),
			})
			dirtySet[tid] = struct{}{}
		}
	}
	dirty = make([]int, 0, len(dirtySet))
	for t := range dirtySet {
		dirty = append(dirty, t)
	}
	sort.Ints(dirty)
	c.st.Store(next)
	return firstID, dirty, nil
}

// Checksum returns a hex SHA-256 digest over the collection's entire
// logical content — every document (in ID order), every posting list
// (in ascending term-ID order) and the dictionary strings — so two
// collections built by different routes (a live run vs. a corpus load
// plus WAL replay) can be compared for bit-identity. The per-document
// count maps are deliberately excluded: SetRetainCounts varies by
// deployment, and the posting lists carry the same content.
func (c *Collection) Checksum() string {
	st := c.st.Load()
	h := sha256.New()
	var b8 [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		h.Write(b8[:])
	}
	w(uint64(len(c.streams)))
	w(uint64(c.length))
	w(uint64(len(st.docs)))
	for _, d := range st.docs {
		w(uint64(d.Stream))
		w(uint64(d.Time))
	}
	terms := make([]int, 0, len(st.postings))
	for t := range st.postings {
		terms = append(terms, t)
	}
	sort.Ints(terms)
	w(uint64(len(terms)))
	for _, t := range terms {
		name := st.dict.Term(t)
		w(uint64(len(name)))
		h.Write([]byte(name))
		ps := st.postings[t]
		w(uint64(len(ps)))
		for _, p := range ps {
			w(uint64(p.doc))
			w(uint64(p.stream))
			w(uint64(p.time))
			w(uint64(p.count))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Terms returns the IDs of all terms that occur in the collection, in
// unspecified order.
func (c *Collection) Terms() []int {
	st := c.st.Load()
	out := make([]int, 0, len(st.postings))
	for t := range st.postings {
		out = append(out, t)
	}
	return out
}

// DocFreq returns the number of documents containing the term.
func (c *Collection) DocFreq(term int) int { return len(c.st.Load().postings[term]) }

// Surface returns the dense frequency surface of a term:
// surface[x][i] = D_x[i][t], the total frequency of the term in the
// documents of stream x at timestamp i (Eq. 6 of the paper).
func (c *Collection) Surface(term int) [][]float64 {
	st := c.st.Load()
	surface := make([][]float64, len(c.streams))
	flat := make([]float64, len(c.streams)*c.length)
	for x := range surface {
		surface[x], flat = flat[:c.length], flat[c.length:]
	}
	for _, p := range st.postings[term] {
		surface[p.stream][p.time] += float64(p.count)
	}
	return surface
}

// MergedSeries returns the term's frequency series with all streams merged
// into one, as consumed by the temporal-only TB baseline (§6.3: "the
// streams from the various countries were merged to a single stream").
func (c *Collection) MergedSeries(term int) []float64 {
	st := c.st.Load()
	series := make([]float64, c.length)
	for _, p := range st.postings[term] {
		series[p.time] += float64(p.count)
	}
	return series
}

// TermDocs returns the IDs of all documents containing the term together
// with freq(term, d), in insertion order.
func (c *Collection) TermDocs(term int) (ids []int, freqs []int) {
	ps := c.st.Load().postings[term]
	ids = make([]int, len(ps))
	freqs = make([]int, len(ps))
	for i, p := range ps {
		ids[i] = int(p.doc)
		freqs[i] = int(p.count)
	}
	return ids, freqs
}
