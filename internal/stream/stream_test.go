package stream

import (
	"testing"

	"stburst/internal/geo"
)

func twoStreams() *Collection {
	streams := []Info{
		{Name: "A", Location: geo.Point{X: 0, Y: 0}},
		{Name: "B", Location: geo.Point{X: 5, Y: 5}},
	}
	return NewCollection(streams, 4)
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.ID("quake")
	b := d.ID("flood")
	if a == b {
		t.Fatal("distinct terms must get distinct IDs")
	}
	if got := d.ID("quake"); got != a {
		t.Fatalf("re-interning returned %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Term(a) != "quake" || d.Term(b) != "flood" {
		t.Fatal("Term round-trip failed")
	}
	if id, ok := d.Lookup("quake"); !ok || id != a {
		t.Fatalf("Lookup = (%d,%v)", id, ok)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup of absent term should report false")
	}
}

func TestAddTokensAndSurface(t *testing.T) {
	c := twoStreams()
	if _, err := c.AddTokens(0, 0, []string{"quake", "quake", "news"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTokens(0, 2, []string{"quake"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTokens(1, 2, []string{"quake", "flood"}); err != nil {
		t.Fatal(err)
	}
	quake, _ := c.Dict().Lookup("quake")
	s := c.Surface(quake)
	if len(s) != 2 || len(s[0]) != 4 {
		t.Fatalf("surface dims %dx%d, want 2x4", len(s), len(s[0]))
	}
	want := [][]float64{{2, 0, 1, 0}, {0, 0, 1, 0}}
	for x := range want {
		for i := range want[x] {
			if s[x][i] != want[x][i] {
				t.Fatalf("surface[%d][%d] = %v, want %v", x, i, s[x][i], want[x][i])
			}
		}
	}
}

func TestAddCountsValidation(t *testing.T) {
	c := twoStreams()
	if _, err := c.AddCounts(-1, 0, nil); err == nil {
		t.Fatal("negative stream should error")
	}
	if _, err := c.AddCounts(2, 0, nil); err == nil {
		t.Fatal("out-of-range stream should error")
	}
	if _, err := c.AddCounts(0, -1, nil); err == nil {
		t.Fatal("negative time should error")
	}
	if _, err := c.AddCounts(0, 4, nil); err == nil {
		t.Fatal("out-of-range time should error")
	}
}

func TestMergedSeries(t *testing.T) {
	c := twoStreams()
	term := c.Dict().ID("quake")
	mustAdd(t, c, 0, 0, map[int]int{term: 2})
	mustAdd(t, c, 1, 0, map[int]int{term: 3})
	mustAdd(t, c, 1, 3, map[int]int{term: 1})
	got := c.MergedSeries(term)
	want := []float64{5, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTermDocsAndDocFreq(t *testing.T) {
	c := twoStreams()
	term := c.Dict().ID("quake")
	id0, _ := c.AddCounts(0, 0, map[int]int{term: 2})
	id1, _ := c.AddCounts(1, 1, map[int]int{term: 7})
	ids, freqs := c.TermDocs(term)
	if len(ids) != 2 || ids[0] != id0 || ids[1] != id1 {
		t.Fatalf("ids = %v, want [%d %d]", ids, id0, id1)
	}
	if freqs[0] != 2 || freqs[1] != 7 {
		t.Fatalf("freqs = %v, want [2 7]", freqs)
	}
	if c.DocFreq(term) != 2 {
		t.Fatalf("DocFreq = %d, want 2", c.DocFreq(term))
	}
	if c.DocFreq(999) != 0 {
		t.Fatal("DocFreq of unknown term should be 0")
	}
}

func TestDocAccessors(t *testing.T) {
	c := twoStreams()
	term := c.Dict().ID("x")
	id, _ := c.AddCounts(1, 2, map[int]int{term: 1})
	if c.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d, want 1", c.NumDocs())
	}
	d := c.Doc(id)
	if d.Stream != 1 || d.Time != 2 || d.Counts[term] != 1 {
		t.Fatalf("Doc = %+v", d)
	}
	if c.NumStreams() != 2 || c.Length() != 4 {
		t.Fatalf("dims %d, %d", c.NumStreams(), c.Length())
	}
	if c.Stream(0).Name != "A" {
		t.Fatal("Stream(0) should be A")
	}
	pts := c.Points()
	if len(pts) != 2 || pts[1] != (geo.Point{X: 5, Y: 5}) {
		t.Fatalf("Points = %v", pts)
	}
}

func TestTerms(t *testing.T) {
	c := twoStreams()
	a := c.Dict().ID("a")
	b := c.Dict().ID("b")
	mustAdd(t, c, 0, 0, map[int]int{a: 1, b: 2})
	terms := c.Terms()
	if len(terms) != 2 {
		t.Fatalf("Terms = %v, want 2 entries", terms)
	}
	seen := map[int]bool{}
	for _, id := range terms {
		seen[id] = true
	}
	if !seen[a] || !seen[b] {
		t.Fatalf("Terms missing entries: %v", terms)
	}
}

func TestSurfaceUnknownTerm(t *testing.T) {
	c := twoStreams()
	s := c.Surface(42)
	for x := range s {
		for i := range s[x] {
			if s[x][i] != 0 {
				t.Fatal("surface of unknown term should be all-zero")
			}
		}
	}
}

func mustAdd(t *testing.T, c *Collection, stream, time int, counts map[int]int) {
	t.Helper()
	if _, err := c.AddCounts(stream, time, counts); err != nil {
		t.Fatal(err)
	}
}
