package exp

import (
	"strings"
	"sync"
	"testing"

	"stburst/internal/gen"
)

var (
	labOnce sync.Once
	testLab *Lab
	labErr  error
)

// lab builds one small shared corpus for all experiment tests.
func lab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("corpus experiments skipped in -short mode")
	}
	labOnce.Do(func() {
		testLab, labErr = NewLab(gen.TopixConfig{Seed: 7, WeeklyArticles: 2, Vocab: 2500})
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return testLab
}

func TestTable1Shapes(t *testing.T) {
	l := lab(t)
	rows := Table1(l)
	if len(rows) != 18 {
		t.Fatalf("got %d rows, want 18", len(rows))
	}
	var globalLocal, localLocal float64
	for _, r := range rows {
		if r.STLocal < 0 || r.STLocal > 181 || r.STComb < 0 || r.STComb > 181 {
			t.Fatalf("counts out of range: %+v", r)
		}
		// The MBR of the STComb pattern always contains at least its own
		// members.
		if r.STComb > 0 && r.MBR < r.STComb {
			t.Fatalf("MBR %d smaller than member count %d: %+v", r.MBR, r.STComb, r)
		}
		switch {
		case r.EventID <= 6:
			globalLocal += float64(r.STLocal)
		case r.EventID > 12:
			localLocal += float64(r.STLocal)
		}
	}
	// Paper shape: global events cover far more countries than local
	// events under STLocal.
	if globalLocal/6 < 3*(localLocal/6) {
		t.Fatalf("global tier STLocal mean %.1f not clearly above local tier %.1f",
			globalLocal/6, localLocal/6)
	}
	if s := FormatTable1(rows); !strings.Contains(s, "obama") {
		t.Fatal("FormatTable1 missing queries")
	}
}

func TestFig4Shapes(t *testing.T) {
	l := lab(t)
	rows := Fig4(l)
	if len(rows) != 18 {
		t.Fatalf("got %d rows, want 18", len(rows))
	}
	for _, r := range rows {
		if r.STLocal < 0 || r.STLocal > gen.Weeks || r.STComb < 0 || r.STComb > gen.Weeks {
			t.Fatalf("timeframe out of range: %+v", r)
		}
	}
	if s := FormatFig4(rows); !strings.Contains(s, "#") {
		t.Fatal("FormatFig4 missing bars")
	}
}

func TestTable2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	rows := Table2(Table2Config{Streams: 40, Timeline: 80, Terms: 150, Patterns: 25, Seed: 9})
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	get := func(method, ds string) Table2Row {
		for _, r := range rows {
			if r.Method == method && r.Dataset == ds {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", method, ds)
		return Table2Row{}
	}
	for _, ds := range []string{"distGen", "randGen"} {
		stl, stc, base := get("STLocal", ds), get("STComb", ds), get("Base", ds)
		// Paper shape: both proposed methods clearly beat Base on stream
		// retrieval.
		if stl.JaccardSim <= base.JaccardSim {
			t.Fatalf("%s: STLocal %.2f not above Base %.2f", ds, stl.JaccardSim, base.JaccardSim)
		}
		if stc.JaccardSim <= base.JaccardSim {
			t.Fatalf("%s: STComb %.2f not above Base %.2f", ds, stc.JaccardSim, base.JaccardSim)
		}
		// And Base's timeframe errors are much larger.
		if base.StartErr < stl.StartErr || base.EndErr < stl.EndErr {
			t.Fatalf("%s: Base errors (%.1f/%.1f) should exceed STLocal's (%.1f/%.1f)",
				ds, base.StartErr, base.EndErr, stl.StartErr, stl.EndErr)
		}
		for _, r := range []Table2Row{stl, stc, base} {
			if r.JaccardSim < 0 || r.JaccardSim > 1 {
				t.Fatalf("Jaccard out of range: %+v", r)
			}
		}
	}
	if s := FormatTable2(rows); !strings.Contains(s, "distGen") {
		t.Fatal("FormatTable2 missing dataset")
	}
}

func TestTable3Shapes(t *testing.T) {
	l := lab(t)
	res := Table3(l, 10)
	if len(res.Rows) != 18 {
		t.Fatalf("got %d rows, want 18", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, p := range []float64{r.TB, r.STLocal, r.STComb} {
			if p < 0 || p > 1 {
				t.Fatalf("precision out of range: %+v", r)
			}
		}
	}
	// Paper shape: all three engines achieve high precision, and the
	// spatially-aware STLocal does not lose to the temporal-only TB.
	if res.MeanSTLocal < 0.75 {
		t.Fatalf("STLocal mean precision %.2f too low", res.MeanSTLocal)
	}
	if res.MeanSTLocal+0.05 < res.MeanTB {
		t.Fatalf("STLocal (%.2f) should be at least on par with TB (%.2f)",
			res.MeanSTLocal, res.MeanTB)
	}
	// Global-tier queries are essentially perfect for all engines.
	for _, r := range res.Rows[:5] {
		if r.TB < 0.9 || r.STLocal < 0.9 || r.STComb < 0.9 {
			t.Fatalf("tier-1 query %q should be near-perfect: %+v", r.Query, r)
		}
	}
	for _, o := range []float64{res.OverlapCombTB, res.OverlapCombLocal, res.OverlapTBLocal} {
		if o < 0 || o > 1 {
			t.Fatalf("overlap out of range: %+v", res)
		}
	}
	if s := FormatTable3(res); !strings.Contains(s, "top-k overlap") {
		t.Fatal("FormatTable3 missing overlap line")
	}
}

func TestFig5Shapes(t *testing.T) {
	l := lab(t)
	res := Fig5(l)
	if res.NumTerms == 0 {
		t.Fatal("no terms measured")
	}
	var total float64
	for _, p := range res.Percent {
		if p < 0 || p > 100 {
			t.Fatalf("percentage out of range: %v", res.Percent)
		}
		total += p
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("percentages sum to %v", total)
	}
	// Paper shape: the vast majority of terms average fewer than 2
	// bursty rectangles per timestamp (the paper reports 92% below 1 on
	// the denser real corpus).
	if res.Percent[0]+res.Percent[1] < 70 {
		t.Fatalf("only %.1f%% of terms below 2 rects/timestamp", res.Percent[0]+res.Percent[1])
	}
	if s := FormatFig5(res); !strings.Contains(s, "share of terms") {
		t.Fatal("FormatFig5 missing header")
	}
}

func TestFig6Shapes(t *testing.T) {
	l := lab(t)
	res := Fig6(l)
	if len(res.Open) != gen.Weeks || len(res.UpperBound) != gen.Weeks {
		t.Fatalf("series length %d/%d", len(res.Open), len(res.UpperBound))
	}
	// Paper shape: observed open windows are orders of magnitude below
	// the n·i worst case (the paper peaks around 10 with a bound of
	// thousands).
	last := gen.Weeks - 1
	if res.Peak*20 > float64(res.UpperBound[last]) {
		t.Fatalf("peak %.1f not far below bound %d", res.Peak, res.UpperBound[last])
	}
	if res.UpperBound[0] != 181 || res.UpperBound[1] != 362 {
		t.Fatalf("upper bound wrong: %v", res.UpperBound[:2])
	}
	if s := FormatFig6(res); !strings.Contains(s, "upper bound") {
		t.Fatal("FormatFig6 missing header")
	}
}

func TestFig7Shapes(t *testing.T) {
	l := lab(t)
	res := Fig7(l, 25)
	if len(res.Timestamps) != gen.Weeks {
		t.Fatalf("series length %d", len(res.Timestamps))
	}
	var localTotal, combTotal float64
	for i := range res.Timestamps {
		if res.STLocalMs[i] < 0 || res.STCombMs[i] < 0 {
			t.Fatalf("negative timing at %d", i)
		}
		localTotal += res.STLocalMs[i]
		combTotal += res.STCombMs[i]
	}
	// Paper shape (Fig. 7): the online STLocal's per-timestamp cost is
	// below STComb's recompute-everything cost overall.
	if localTotal >= combTotal {
		t.Fatalf("STLocal total %.3f ms not below STComb %.3f ms", localTotal, combTotal)
	}
	if s := FormatFig7(res); !strings.Contains(s, "STComb ms/term") {
		t.Fatal("FormatFig7 missing header")
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	rows := Fig8(Fig8Config{Sizes: []int{300, 600, 1200}, TermCount: 2, Timeline: 60, Seed: 11})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.STLocalS <= 0 || r.STCombS <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
	// Paper shape: near-linear scaling — 4x the streams should cost far
	// less than 16x the time (allowing wide margins for timer noise).
	if rows[2].STLocalS > rows[0].STLocalS*16 {
		t.Fatalf("STLocal scaling looks super-linear: %+v", rows)
	}
	if rows[2].STCombS > rows[0].STCombS*16 {
		t.Fatalf("STComb scaling looks super-linear: %+v", rows)
	}
	if s := FormatFig8(rows); !strings.Contains(s, "#streams") {
		t.Fatal("FormatFig8 missing header")
	}
}

func TestFig9Shapes(t *testing.T) {
	rows := Fig9()
	if len(rows) == 0 {
		t.Fatal("no curves")
	}
	for _, r := range rows {
		if len(r.X) != len(r.Values) {
			t.Fatalf("ragged curve: %+v", r)
		}
		for _, v := range r.Values {
			if v < 0 {
				t.Fatalf("negative density in %+v", r)
			}
		}
	}
	// k=1 decays monotonically; k=3 peaks in the interior.
	for _, r := range rows {
		switch {
		case r.K == 1:
			if r.Values[1] < r.Values[10] {
				t.Fatalf("k=1 should decay: %+v", r.Values[:12])
			}
		case r.K == 3:
			if r.Values[0] >= r.Values[8] {
				t.Fatalf("k=3 should rise to an interior peak: %+v", r.Values[:12])
			}
		}
	}
	if s := FormatFig9(rows); !strings.Contains(s, "peak x") {
		t.Fatal("FormatFig9 missing header")
	}
}

func TestFormatTable9(t *testing.T) {
	s := FormatTable9()
	for _, q := range []string{"obama", "zelaya", "earthquake"} {
		if !strings.Contains(s, q) {
			t.Fatalf("Table 9 missing %q", q)
		}
	}
}

func TestFormatTableAlignment(t *testing.T) {
	s := formatTable([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header and separator misaligned:\n%s", s)
	}
}

func TestSortedTerms(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	got := sortedTerms(m)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}
