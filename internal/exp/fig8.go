package exp

import (
	"fmt"
	"time"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/gen"
	"stburst/internal/interval"
)

// Fig8Row is one point of Figure 8: per-term mining time against the
// number of streams.
type Fig8Row struct {
	Streams  int
	STLocalS float64 // seconds per term
	STCombS  float64 // seconds per term
}

// Fig8Config scales the scalability sweep. The paper sweeps 500 ..
// 128,000 streams on distGen data (timeline 365, 10,000 terms, 1,000
// patterns), timing the per-term cost.
type Fig8Config struct {
	Sizes     []int // default {500, 1000, 2000, 4000, 8000}
	TermCount int   // terms timed per size; default 3
	Timeline  int   // default 365
	Seed      int64 // default 43
	Grid      int   // STLocal grid resolution; default 24
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{500, 1000, 2000, 4000, 8000}
	}
	if c.TermCount == 0 {
		c.TermCount = 3
	}
	if c.Timeline == 0 {
		c.Timeline = 365
	}
	if c.Seed == 0 {
		c.Seed = 43
	}
	if c.Grid == 0 {
		c.Grid = 24
	}
	return c
}

// FullFig8Sizes is the paper's full sweep.
var FullFig8Sizes = []int{500, 1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000}

// Fig8 measures per-term mining time as the stream count grows. Both
// miners stream over hash-generated frequencies so memory stays O(n):
// STLocal uses the grid rectangle finder (the §2 granularity mechanism —
// the exact finder's positive-coordinate search would be cubic in the
// dense synthetic noise), and STComb detects per-stream intervals series
// by series before one clique extraction.
func Fig8(cfg Fig8Config) []Fig8Row {
	cfg = cfg.withDefaults()
	rows := make([]Fig8Row, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		ds := gen.NewSynth(gen.SynthConfig{
			Streams:  n,
			Timeline: cfg.Timeline,
			Seed:     cfg.Seed,
			Mode:     gen.DistGen,
		})
		terms := ds.PatternTerms()
		if len(terms) > cfg.TermCount {
			terms = terms[:cfg.TermCount]
		}
		var localNs, combNs float64
		for _, term := range terms {
			localNs += float64(timeSTLocalStream(ds, term, cfg.Grid).Nanoseconds())
			combNs += float64(timeSTCombStream(ds, term).Nanoseconds())
		}
		rows = append(rows, Fig8Row{
			Streams:  n,
			STLocalS: localNs / float64(len(terms)) / 1e9,
			STCombS:  combNs / float64(len(terms)) / 1e9,
		})
	}
	return rows
}

func timeSTLocalStream(ds *gen.Synth, term, grid int) time.Duration {
	m := core.NewSTLocal(ds.Points(), core.STLocalOptions{
		Finder: core.GridFinder(ds.Bounds(), grid),
	})
	buf := make([]float64, ds.Config().Streams)
	start := time.Now()
	for i := 0; i < ds.Config().Timeline; i++ {
		ds.Snapshot(term, i, buf)
		if err := m.Push(buf); err != nil {
			panic(err)
		}
	}
	m.Windows()
	return time.Since(start)
}

func timeSTCombStream(ds *gen.Synth, term int) time.Duration {
	det := burst.Discrepancy{}
	start := time.Now()
	var ivs []interval.Interval
	for x := 0; x < ds.Config().Streams; x++ {
		series := ds.Series(term, x)
		for _, b := range det.Detect(series) {
			ivs = append(ivs, interval.Interval{Start: b.Start, End: b.End, Weight: b.Score, Stream: x})
		}
	}
	interval.TopCliques(ivs, 0) // extract every pattern, as STLocal does
	return time.Since(start)
}

// FormatFig8 renders the scalability series.
func FormatFig8(rows []Fig8Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.Streams),
			fmt.Sprintf("%.3f", r.STLocalS),
			fmt.Sprintf("%.3f", r.STCombS),
		}
	}
	return formatTable([]string{"#streams", "STLocal s/term", "STComb s/term"}, out)
}

// FormatTable9 renders the Major Events List (Table 9 of the paper's
// appendix, Table 4 in some printings).
func FormatTable9() string {
	rows := make([][]string, len(gen.Events))
	for i, ev := range gen.Events {
		rows[i] = []string{
			fmt.Sprint(ev.ID),
			queryString(ev),
			ev.Tier.String(),
			ev.Description,
		}
	}
	return formatTable([]string{"#", "Query", "Tier", "Event Description"}, rows)
}
