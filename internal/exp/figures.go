package exp

import (
	"fmt"
	"sort"
	"time"

	"stburst/internal/core"
	"stburst/internal/eval"
	"stburst/internal/gen"
	"stburst/internal/par"
)

// Fig5Result is the Figure 5 histogram: the share of terms whose average
// number of bursty rectangles per timestamp falls into each bucket. The
// paper reports 92% of terms in [0,1).
type Fig5Result struct {
	Edges    []float64 // bucket lower edges: 0,1,2,3,4,5 (last is 5+)
	Percent  []float64 // share of terms per bucket
	NumTerms int
}

// Fig5 measures the average number of bursty rectangles reported per
// term per timestamp on the Topix-like corpus. The per-term STLocal
// replays are independent, so they fan out across the lab's worker pool.
func Fig5(l *Lab) Fig5Result {
	col := l.Col()
	points := col.Points()
	terms := col.Terms()
	sort.Ints(terms)
	avgs := make([]float64, len(terms))
	par.ForEach(len(terms), l.Workers(), func(ti int) {
		m := core.NewSTLocal(points, core.STLocalOptions{})
		surface := col.Surface(terms[ti])
		obs := make([]float64, len(points))
		for i := 0; i < col.Length(); i++ {
			for x := range surface {
				obs[x] = surface[x][i]
			}
			if err := m.Push(obs); err != nil {
				panic(err)
			}
		}
		avgs[ti] = float64(m.TotalRectCount()) / float64(col.Length())
	})
	edges := []float64{0, 1, 2, 3, 4, 5}
	counts := eval.Histogram(avgs, edges)
	res := Fig5Result{Edges: edges, Percent: make([]float64, len(edges)), NumTerms: len(avgs)}
	for i, c := range counts {
		res.Percent[i] = 100 * float64(c) / float64(len(avgs))
	}
	return res
}

// FormatFig5 renders the Figure 5 distribution.
func FormatFig5(r Fig5Result) string {
	rows := make([][]string, len(r.Edges))
	for i := range r.Edges {
		label := fmt.Sprintf("[%g,%g)", r.Edges[i], r.Edges[i]+1)
		if i == len(r.Edges)-1 {
			label = fmt.Sprintf("[%g,∞)", r.Edges[i])
		}
		rows[i] = []string{label, fmt.Sprintf("%.1f%%", r.Percent[i])}
	}
	return fmt.Sprintf("terms: %d\n", r.NumTerms) +
		formatTable([]string{"avg rectangles/timestamp", "share of terms"}, rows)
}

// Fig6Result is Figure 6: the average number of open spatiotemporal
// windows per term at each timestamp, against the worst-case upper bound
// n·i of the complexity analysis.
type Fig6Result struct {
	Open       []float64 // mean open sequences per term, per timestamp
	UpperBound []int     // n·(i+1)
	Peak       float64
}

// Fig6 measures the open-window population of STLocal on the Topix-like
// corpus.
func Fig6(l *Lab) Fig6Result {
	col := l.Col()
	points := col.Points()
	terms := col.Terms()
	sort.Ints(terms)
	// Per-term replays run in parallel; each writes its own history row,
	// and the rows are reduced sequentially so the sums stay deterministic
	// (float addition order is fixed by term order, not schedule).
	histories := make([][]int, len(terms))
	par.ForEach(len(terms), l.Workers(), func(ti int) {
		m := core.NewSTLocal(points, core.STLocalOptions{})
		surface := col.Surface(terms[ti])
		obs := make([]float64, len(points))
		for i := 0; i < col.Length(); i++ {
			for x := range surface {
				obs[x] = surface[x][i]
			}
			if err := m.Push(obs); err != nil {
				panic(err)
			}
		}
		histories[ti] = m.OpenHistory()
	})
	sums := make([]float64, col.Length())
	for _, hist := range histories {
		for i, open := range hist {
			sums[i] += float64(open)
		}
	}
	res := Fig6Result{
		Open:       make([]float64, col.Length()),
		UpperBound: make([]int, col.Length()),
	}
	for i := range sums {
		res.Open[i] = sums[i] / float64(len(terms))
		res.UpperBound[i] = col.NumStreams() * (i + 1)
		if res.Open[i] > res.Peak {
			res.Peak = res.Open[i]
		}
	}
	return res
}

// FormatFig6 renders the Figure 6 series.
func FormatFig6(r Fig6Result) string {
	rows := make([][]string, len(r.Open))
	for i := range r.Open {
		rows[i] = []string{
			fmt.Sprint(i + 1),
			fmt.Sprintf("%.2f", r.Open[i]),
			fmt.Sprint(r.UpperBound[i]),
		}
	}
	return fmt.Sprintf("peak open windows per term: %.2f\n", r.Peak) +
		formatTable([]string{"timestamp", "open windows/term", "upper bound n·i"}, rows)
}

// Fig7Result is Figure 7: mean per-term processing time per timestamp for
// both miners, emulating the streaming scenario on the Topix-like corpus.
type Fig7Result struct {
	Timestamps []int
	STLocalMs  []float64 // per-term time at each timestamp
	STCombMs   []float64
	TermSample int
}

// Fig7 times the two miners per timestamp. STLocal is online: one Push
// per snapshot. STComb must be re-applied to the whole prefix at every
// timestamp (the very limitation §6.4 discusses), so its cost grows with
// the prefix; to keep the experiment affordable the timing averages over
// a sample of terms.
func Fig7(l *Lab, termSample int) Fig7Result {
	col := l.Col()
	points := col.Points()
	terms := col.Terms()
	if termSample <= 0 {
		termSample = 100
	}
	if termSample > len(terms) {
		termSample = len(terms)
	}
	terms = terms[:termSample]

	L := col.Length()
	res := Fig7Result{TermSample: termSample}
	localNs := make([]float64, L)
	combNs := make([]float64, L)

	// STLocal: per-term streaming push.
	miners := make([]*core.STLocal, len(terms))
	surfaces := make([][][]float64, len(terms))
	for ti, term := range terms {
		miners[ti] = core.NewSTLocal(points, core.STLocalOptions{})
		surfaces[ti] = col.Surface(term)
	}
	obs := make([]float64, len(points))
	for i := 0; i < L; i++ {
		for ti := range terms {
			for x := range surfaces[ti] {
				obs[x] = surfaces[ti][x][i]
			}
			start := time.Now()
			if err := miners[ti].Push(obs); err != nil {
				panic(err)
			}
			localNs[i] += float64(time.Since(start).Nanoseconds())
		}
	}
	// STComb: re-run on the prefix [0..i] for every timestamp.
	for i := 0; i < L; i++ {
		for ti := range terms {
			prefix := make([][]float64, len(surfaces[ti]))
			for x := range prefix {
				prefix[x] = surfaces[ti][x][:i+1]
			}
			start := time.Now()
			core.STComb(prefix, core.STCombOptions{})
			combNs[i] += float64(time.Since(start).Nanoseconds())
		}
	}
	for i := 0; i < L; i++ {
		res.Timestamps = append(res.Timestamps, i+1)
		res.STLocalMs = append(res.STLocalMs, localNs[i]/float64(len(terms))/1e6)
		res.STCombMs = append(res.STCombMs, combNs[i]/float64(len(terms))/1e6)
	}
	return res
}

// FormatFig7 renders the Figure 7 series.
func FormatFig7(r Fig7Result) string {
	rows := make([][]string, len(r.Timestamps))
	for i := range r.Timestamps {
		rows[i] = []string{
			fmt.Sprint(r.Timestamps[i]),
			fmt.Sprintf("%.4f", r.STLocalMs[i]),
			fmt.Sprintf("%.4f", r.STCombMs[i]),
		}
	}
	return fmt.Sprintf("terms sampled: %d\n", r.TermSample) +
		formatTable([]string{"timestamp", "STLocal ms/term", "STComb ms/term"}, rows)
}

// Fig9Row is one curve of Figure 9: Weibull PDF values for a (k, c)
// setting, demonstrating the envelope shapes the generators can emulate.
type Fig9Row struct {
	K, C   float64
	X      []float64
	Values []float64
}

// Fig9 evaluates the PDF curves shown in the paper's Figure 9.
func Fig9() []Fig9Row {
	settings := []struct{ k, c float64 }{
		{1, 10}, {1.5, 10}, {2, 10}, {3, 10}, {5, 10}, {2, 20},
	}
	xs := make([]float64, 41)
	for i := range xs {
		xs[i] = float64(i)
	}
	rows := make([]Fig9Row, len(settings))
	for si, s := range settings {
		vals := make([]float64, len(xs))
		for i, x := range xs {
			vals[i] = gen.WeibullPDF(x, s.c, s.k)
		}
		rows[si] = Fig9Row{K: s.k, C: s.c, X: xs, Values: vals}
	}
	return rows
}

// FormatFig9 renders the curves as sparklines plus peak locations.
func FormatFig9(rows []Fig9Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		peakX, peakV := 0.0, 0.0
		for j, v := range r.Values {
			if v > peakV {
				peakV, peakX = v, r.X[j]
			}
		}
		out[i] = []string{
			fmt.Sprintf("k=%g c=%g", r.K, r.C),
			fmt.Sprintf("%g", peakX),
			fmt.Sprintf("%.4f", peakV),
			spark(r.Values),
		}
	}
	return formatTable([]string{"setting", "peak x", "peak f(x)", "curve"}, out)
}

func spark(vals []float64) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return ""
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		g := int(v / maxV * float64(len(glyphs)-1))
		out[i] = glyphs[g]
	}
	return string(out)
}
