// Package exp implements the paper's experimental evaluation (§6): one
// function per table and figure, shared by cmd/stbench and the top-level
// benchmark suite. Every experiment is seeded and deterministic; scale
// knobs default to laptop-friendly sizes with the paper's full-scale
// parameters available behind options. EXPERIMENTS.md records the
// paper-reported versus measured values for each experiment.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/gen"
	"stburst/internal/search"
	"stburst/internal/stream"
)

// Lab bundles one generated Topix-like corpus with the pattern sets mined
// from it by the three systems, so the real-data experiments (Tables 1
// and 3, Figures 4–7) can share the expensive mining passes.
type Lab struct {
	TP       *gen.Topix
	Windows  map[int][]core.Window      // STLocal regional patterns per term
	Combs    map[int][]core.CombPattern // STComb combinatorial patterns per term
	Temporal map[int][]burst.Interval   // TB temporal bursts per term (merged stream)
	workers  int                        // worker count for per-term experiment replays
}

// NewLab generates the corpus and mines all three pattern sets, fanning
// the vocabulary out across one worker per CPU. Mining output is
// bit-identical to the sequential path for every worker count.
func NewLab(cfg gen.TopixConfig) (*Lab, error) { return NewLabPar(cfg, 0) }

// NewLabPar is NewLab with an explicit mining worker count (<1 means one
// worker per CPU, 1 is fully sequential).
func NewLabPar(cfg gen.TopixConfig, workers int) (*Lab, error) {
	tp, err := gen.NewTopix(cfg)
	if err != nil {
		return nil, err
	}
	// STComb's per-stream detector requires a minimal series mass: a
	// stream that mentioned the term once or twice has no burst
	// structure to contribute (see burst.Discrepancy.MinMass).
	combDet := burst.Discrepancy{MinMass: 3}
	return &Lab{
		TP:       tp,
		Windows:  search.MineWindowsPar(tp.Col, core.STLocalOptions{}, workers),
		Combs:    search.MineCombPatternsPar(tp.Col, core.STCombOptions{Detector: combDet}, workers),
		Temporal: search.MineTemporalPar(tp.Col, nil, workers),
		workers:  workers,
	}, nil
}

// Workers returns the lab's mining worker count, reused by the
// experiments that replay per-term mining (Fig. 5/6).
func (l *Lab) Workers() int { return l.workers }

// Col returns the lab's collection.
func (l *Lab) Col() *stream.Collection { return l.TP.Col }

// bestWindowForQuery returns the highest-scoring STLocal window across
// the query's terms.
func (l *Lab) bestWindowForQuery(terms []int) (core.Window, bool) {
	var best core.Window
	found := false
	for _, t := range terms {
		if w, ok := core.BestWindow(l.Windows[t]); ok {
			if !found || w.Score > best.Score {
				best = w
				found = true
			}
		}
	}
	return best, found
}

// bestCombForQuery returns the highest-scoring STComb pattern across the
// query's terms.
func (l *Lab) bestCombForQuery(terms []int) (core.CombPattern, bool) {
	var best core.CombPattern
	found := false
	for _, t := range terms {
		for _, p := range l.Combs[t] {
			if !found || p.Score > best.Score {
				best = p
				found = true
			}
		}
	}
	return best, found
}

// queryString joins an event's query terms for display.
func queryString(ev gen.Event) string { return strings.Join(ev.Query, " ") }

// formatTable renders rows of cells as an aligned text table.
func formatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// sortedTerms returns map keys in ascending order (deterministic output).
func sortedTerms[M ~map[int]V, V any](m M) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
