package exp

import (
	"fmt"

	"stburst/internal/eval"
	"stburst/internal/gen"
	"stburst/internal/search"
)

// Table3Row is one row of Table 3: the precision in the top-10 documents
// retrieved for a Major Events List query by the three engines.
type Table3Row struct {
	EventID int
	Query   string
	TB      float64
	STLocal float64
	STComb  float64
}

// Table3Result bundles the per-query precisions with the pairwise top-k
// overlap analysis of §6.3.
type Table3Result struct {
	Rows []Table3Row
	// Mean pairwise top-10 overlaps (the paper reports 0.61, 0.58, 0.67).
	OverlapCombTB    float64
	OverlapCombLocal float64
	OverlapTBLocal   float64
	// Mean precision per engine.
	MeanTB, MeanSTLocal, MeanSTComb float64
}

// Table3 runs the Bursty Documents evaluation (§6.3): build one engine
// per pattern type over the same corpus, retrieve the top-10 documents
// per query, and score precision against the generator's ground-truth
// event labels (replacing the paper's human annotator).
func Table3(l *Lab, k int) Table3Result {
	if k <= 0 {
		k = 10
	}
	col := l.Col()
	engLocal := search.Build(col, search.WindowBurstiness(l.Windows))
	engComb := search.Build(col, search.CombBurstiness(l.Combs))
	engTB := search.Build(col, search.TemporalBurstiness(l.Temporal))

	var res Table3Result
	var oCombTB, oCombLocal, oTBLocal float64
	for _, ev := range gen.Events {
		terms := l.TP.QueryTerms[ev.ID]
		relevant := l.TP.Relevant(ev.ID)
		topTB := docsOf(engTB.QueryTerms(terms, k))
		topLocal := docsOf(engLocal.QueryTerms(terms, k))
		topComb := docsOf(engComb.QueryTerms(terms, k))
		row := Table3Row{
			EventID: ev.ID,
			Query:   queryString(ev),
			TB:      eval.PrecisionAtK(topTB, relevant, k),
			STLocal: eval.PrecisionAtK(topLocal, relevant, k),
			STComb:  eval.PrecisionAtK(topComb, relevant, k),
		}
		res.Rows = append(res.Rows, row)
		oCombTB += eval.TopKOverlap(topComb, topTB, k)
		oCombLocal += eval.TopKOverlap(topComb, topLocal, k)
		oTBLocal += eval.TopKOverlap(topTB, topLocal, k)
		res.MeanTB += row.TB
		res.MeanSTLocal += row.STLocal
		res.MeanSTComb += row.STComb
	}
	n := float64(len(res.Rows))
	res.OverlapCombTB = oCombTB / n
	res.OverlapCombLocal = oCombLocal / n
	res.OverlapTBLocal = oTBLocal / n
	res.MeanTB /= n
	res.MeanSTLocal /= n
	res.MeanSTComb /= n
	return res
}

func docsOf(rs []search.Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Doc
	}
	return out
}

// FormatTable3 renders Table 3 plus the overlap analysis.
func FormatTable3(res Table3Result) string {
	out := make([][]string, 0, len(res.Rows)+1)
	for _, r := range res.Rows {
		out = append(out, []string{
			fmt.Sprint(r.EventID), r.Query,
			fmt.Sprintf("%.1f", r.TB),
			fmt.Sprintf("%.1f", r.STLocal),
			fmt.Sprintf("%.1f", r.STComb),
		})
	}
	out = append(out, []string{"", "mean",
		fmt.Sprintf("%.2f", res.MeanTB),
		fmt.Sprintf("%.2f", res.MeanSTLocal),
		fmt.Sprintf("%.2f", res.MeanSTComb),
	})
	table := formatTable([]string{"#", "Query", "TB", "STLocal", "STComb"}, out)
	return table + fmt.Sprintf(
		"\ntop-k overlap: STComb-TB %.2f, STComb-STLocal %.2f, TB-STLocal %.2f\n",
		res.OverlapCombTB, res.OverlapCombLocal, res.OverlapTBLocal)
}
