package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"stburst/internal/baseline"
	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/eval"
	"stburst/internal/expect"
	"stburst/internal/gen"
	"stburst/internal/par"
)

// Table2Row is one cell group of Table 2: the retrieval quality of one
// method on one generator.
type Table2Row struct {
	Method     string // STLocal, STComb, Base
	Dataset    string // distGen, randGen
	JaccardSim float64
	StartErr   float64
	EndErr     float64
}

// Table2Config scales the §6.2.2 experiment. The paper uses timeline 365,
// 10,000 terms and 1,000 injected patterns; the defaults here keep the
// same structure at a size that runs in seconds. Pass Full for the
// paper's parameters.
type Table2Config struct {
	Streams  int   // default 60
	Timeline int   // default 120
	Terms    int   // default 400
	Patterns int   // default 60
	Seed     int64 // default 42
	// Workers bounds the per-term retrieval pool: <1 means one worker
	// per CPU, 1 is fully sequential. Results are identical either way.
	Workers int
}

func (c Table2Config) withDefaults() Table2Config {
	if c.Streams == 0 {
		c.Streams = 60
	}
	if c.Timeline == 0 {
		c.Timeline = 120
	}
	if c.Terms == 0 {
		c.Terms = 400
	}
	if c.Patterns == 0 {
		c.Patterns = 60
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// FullTable2 is the paper-scale configuration (slow: hours of CPU).
var FullTable2 = Table2Config{Streams: 500, Timeline: 365, Terms: 10000, Patterns: 1000, Seed: 42}

// Table2 runs the artificial-data pattern-retrieval experiment: inject
// spatiotemporal patterns with distGen and randGen, retrieve them with
// STLocal, STComb and the tuned Base, and report mean JaccardSim,
// Start-Error and End-Error over all injected patterns.
func Table2(cfg Table2Config) []Table2Row {
	cfg = cfg.withDefaults()
	var rows []Table2Row
	for _, mode := range []gen.Mode{gen.DistGen, gen.RandGen} {
		ds := gen.NewSynth(gen.SynthConfig{
			Streams:    cfg.Streams,
			Timeline:   cfg.Timeline,
			Terms:      cfg.Terms,
			Patterns:   cfg.Patterns,
			Mode:       mode,
			Seed:       cfg.Seed,
			MinStreams: cfg.Streams/6 + 1,
			MaxStreams: cfg.Streams/3 + 1,
		})
		rows = append(rows,
			table2Method(ds, "STLocal", retrieveSTLocal, cfg.Workers),
			table2Method(ds, "STComb", retrieveSTComb, cfg.Workers),
			table2Method(ds, "Base", tunedBase(ds, cfg.Seed), cfg.Workers),
		)
	}
	// Group rows by method as the paper's table does.
	ordered := make([]Table2Row, 0, len(rows))
	for _, m := range []string{"STLocal", "STComb", "Base"} {
		for _, r := range rows {
			if r.Method == m {
				ordered = append(ordered, r)
			}
		}
	}
	return ordered
}

// retrieved is one candidate pattern produced by a method for a term.
type retrieved struct {
	streams []int
	start   int
	end     int
	score   float64
}

// retriever mines a term's candidates.
type retriever func(ds *gen.Synth, term int) []retrieved

func retrieveSTLocal(ds *gen.Synth, term int) []retrieved {
	surface := ds.Surface(term)
	ws, err := core.MineLocal(surface, ds.Points(), core.STLocalOptions{})
	if err != nil {
		panic(err)
	}
	// §4 of the paper: a bursty rectangle may contain a small number of
	// non-bursty streams, and "it is computationally trivial to
	// remember, and ultimately exclude, such 'false positives' for each
	// pattern". A stream stays in the retrieved set only if its own
	// burstiness mass over the window clears a noise-significance bar
	// (2σ√len of its weight series).
	weights := expect.WeightSurface(surface, expect.NewRunningMean())
	sd := make([]float64, len(weights))
	for x, row := range weights {
		var sum, sq float64
		for _, v := range row {
			sum += v
			sq += v * v
		}
		n := float64(len(row))
		variance := sq/n - (sum/n)*(sum/n)
		if variance < 1e-9 {
			variance = 1e-9
		}
		sd[x] = math.Sqrt(variance)
	}
	out := make([]retrieved, len(ws))
	for i, w := range ws {
		length := float64(w.End - w.Start + 1)
		var kept []int
		for _, x := range w.Streams {
			var mass float64
			for j := w.Start; j <= w.End; j++ {
				mass += weights[x][j]
			}
			if mass > 2*sd[x]*math.Sqrt(length) {
				kept = append(kept, x)
			}
		}
		out[i] = retrieved{streams: kept, start: w.Start, end: w.End, score: w.Score}
	}
	return out
}

func retrieveSTComb(ds *gen.Synth, term int) []retrieved {
	// The per-stream interval detector drops intervals whose burstiness
	// is within the range maximal noise segments reach on exponential
	// background (≈1/√L): the KDD'09 framework likewise reports only
	// significant bursts.
	threshold := 2.0 / math.Sqrt(float64(ds.Config().Timeline))
	ps := core.STComb(ds.Surface(term), core.STCombOptions{
		Detector: burst.Discrepancy{MinScore: threshold},
	})
	out := make([]retrieved, len(ps))
	for i, p := range ps {
		out[i] = retrieved{streams: p.Streams, start: p.Start, end: p.End, score: p.Score}
	}
	return out
}

// tunedBase grid-searches Base's ℓ and δ on the dataset's first few
// patterns ("we tune both the ℓ and δ parameters to yield the best
// results") and returns a retriever with the winning setting.
func tunedBase(ds *gen.Synth, seed int64) retriever {
	type setting struct {
		l     int
		delta float64
	}
	settings := []setting{}
	for _, l := range []int{1, 2, 3} {
		for _, d := range []float64{0.2, 0.4, 0.6} {
			settings = append(settings, setting{l, d})
		}
	}
	tuneTerms := ds.PatternTerms()
	if len(tuneTerms) > 10 {
		tuneTerms = tuneTerms[:10]
	}
	best := settings[0]
	bestScore := -1.0
	for _, s := range settings {
		b := baseline.Base{L: s.l, Delta: s.delta}
		var total float64
		var n int
		for _, term := range tuneTerms {
			pats := b.Mine(ds.Surface(term), rand.New(rand.NewSource(seed)))
			cands := make([]retrieved, len(pats))
			for i, p := range pats {
				cands[i] = retrieved{streams: p.Streams, start: p.Start, end: p.End, score: float64(len(p.Streams))}
			}
			for _, inj := range ds.PatternsForTerm(term) {
				j, _, _ := scoreMatch(inj, cands, ds.Config().Timeline)
				total += j
				n++
			}
		}
		if n > 0 && total/float64(n) > bestScore {
			bestScore = total / float64(n)
			best = s
		}
	}
	return func(ds *gen.Synth, term int) []retrieved {
		b := baseline.Base{L: best.l, Delta: best.delta}
		pats := b.Mine(ds.Surface(term), rand.New(rand.NewSource(seed)))
		out := make([]retrieved, len(pats))
		for i, p := range pats {
			out[i] = retrieved{streams: p.Streams, start: p.Start, end: p.End, score: float64(len(p.Streams))}
		}
		return out
	}
}

func table2Method(ds *gen.Synth, name string, r retriever, workers int) Table2Row {
	// Terms are retrieved in parallel (each worker mines private miner
	// instances over a private surface); the per-term partial sums are
	// reduced sequentially in term order so the means are deterministic.
	terms := ds.PatternTerms()
	type partial struct {
		jacc, se, ee float64
		n            int
	}
	partials := make([]partial, len(terms))
	par.ForEach(len(terms), workers, func(ti int) {
		cands := r(ds, terms[ti])
		for _, inj := range ds.PatternsForTerm(terms[ti]) {
			j, s, e := scoreMatch(inj, cands, ds.Config().Timeline)
			partials[ti].jacc += j
			partials[ti].se += s
			partials[ti].ee += e
			partials[ti].n++
		}
	})
	var jacc, se, ee float64
	var n int
	for _, p := range partials {
		jacc += p.jacc
		se += p.se
		ee += p.ee
		n += p.n
	}
	if n == 0 {
		return Table2Row{Method: name, Dataset: ds.Config().Mode.String()}
	}
	return Table2Row{
		Method:     name,
		Dataset:    ds.Config().Mode.String(),
		JaccardSim: jacc / float64(n),
		StartErr:   se / float64(n),
		EndErr:     ee / float64(n),
	}
}

// scoreMatch pairs an injected pattern with a retrieved candidate and
// reports JaccardSim of the stream sets plus the Start/End errors. The
// candidate is chosen among the top-scored few (a term carries roughly
// one injected pattern, so retrieval means "take the method's strongest
// answers"), breaking ties toward the best temporal overlap — noise
// artifacts score far below injected bursts, so this is the pattern the
// method actually "retrieved". A term with no candidates scores Jaccard
// 0 with errors of a quarter timeline (a conservative miss penalty,
// recorded in EXPERIMENTS.md).
func scoreMatch(inj gen.InjectedPattern, cands []retrieved, timeline int) (jacc, startErr, endErr float64) {
	missPenalty := float64(timeline) / 4
	if len(cands) == 0 {
		return 0, missPenalty, missPenalty
	}
	ranked := make([]retrieved, len(cands))
	copy(ranked, cands)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	if len(ranked) > 3 {
		ranked = ranked[:3]
	}
	best := ranked[0]
	bestOverlap := temporalJaccard(inj.Start, inj.End, best.start, best.end)
	for _, c := range ranked[1:] {
		if o := temporalJaccard(inj.Start, inj.End, c.start, c.end); o > bestOverlap {
			best, bestOverlap = c, o
		}
	}
	return eval.JaccardInt(inj.Streams, best.streams),
		eval.AbsErr(inj.Start, best.start),
		eval.AbsErr(inj.End, best.end)
}

func temporalJaccard(a1, a2, b1, b2 int) float64 {
	lo := a1
	if b1 > lo {
		lo = b1
	}
	hi := a2
	if b2 < hi {
		hi = b2
	}
	inter := hi - lo + 1
	if inter <= 0 {
		return 0
	}
	l := a1
	if b1 < l {
		l = b1
	}
	h := a2
	if b2 > h {
		h = b2
	}
	return float64(inter) / float64(h-l+1)
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Method, r.Dataset,
			fmt.Sprintf("%.2f", r.JaccardSim),
			fmt.Sprintf("%.1f", r.StartErr),
			fmt.Sprintf("%.1f", r.EndErr),
		}
	}
	return formatTable([]string{"Method", "Dataset", "JaccardSim", "Start-Error", "End-Error"}, out)
}
