package exp

import (
	"fmt"

	"stburst/internal/gen"
	"stburst/internal/geo"
)

// Table1Row reproduces one row of Table 1 ("Top-Scoring Bursty Source
// Patterns"): the number of countries in the top STLocal pattern, the
// top STComb pattern, and the MBR of the top STComb pattern's countries.
type Table1Row struct {
	EventID int
	Query   string
	Tier    string
	STLocal int // countries inside the top regional pattern's rectangle
	STComb  int // countries in the top combinatorial pattern's clique
	MBR     int // countries inside the MBR of the STComb pattern
}

// Table1 runs the §6.2 experiment: for each Major Events List query,
// retrieve the top-scoring pattern with both approaches and report the
// stream counts.
func Table1(l *Lab) []Table1Row {
	points := l.Col().Points()
	rows := make([]Table1Row, 0, len(l.TP.QueryTerms))
	for _, ev := range gen.Events {
		terms := l.TP.QueryTerms[ev.ID]
		row := Table1Row{EventID: ev.ID, Query: queryString(ev), Tier: ev.Tier.String()}
		if w, ok := l.bestWindowForQuery(terms); ok {
			row.STLocal = len(w.Streams)
		}
		if p, ok := l.bestCombForQuery(terms); ok {
			row.STComb = len(p.Streams)
			memberPts := make([]geo.Point, len(p.Streams))
			for i, x := range p.Streams {
				memberPts[i] = points[x]
			}
			if mbr, ok := geo.MBR(memberPts); ok {
				for _, pt := range points {
					if mbr.Contains(pt) {
						row.MBR++
					}
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.EventID), r.Query, r.Tier,
			fmt.Sprint(r.STLocal), fmt.Sprint(r.STComb), fmt.Sprint(r.MBR),
		}
	}
	return formatTable(
		[]string{"#", "Query", "Tier", "#countries STLocal", "#countries STComb", "#countries MBR"},
		out)
}

// Fig4Row reproduces one bar pair of Figure 4: the timeframe length (in
// weeks) of the top-scoring pattern per query, for both approaches.
type Fig4Row struct {
	EventID int
	Query   string
	STLocal int // weeks spanned by the top regional pattern
	STComb  int // weeks spanned by the top combinatorial pattern
}

// Fig4 runs the §6.2.1 timeframe evaluation.
func Fig4(l *Lab) []Fig4Row {
	rows := make([]Fig4Row, 0, len(l.TP.QueryTerms))
	for _, ev := range gen.Events {
		terms := l.TP.QueryTerms[ev.ID]
		row := Fig4Row{EventID: ev.ID, Query: queryString(ev)}
		if w, ok := l.bestWindowForQuery(terms); ok {
			row.STLocal = w.End - w.Start + 1
		}
		if p, ok := l.bestCombForQuery(terms); ok {
			row.STComb = p.End - p.Start + 1
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFig4 renders Figure 4's series as a table plus an ASCII bar
// chart.
func FormatFig4(rows []Fig4Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.EventID), r.Query,
			fmt.Sprintf("%2d %s", r.STLocal, bar(r.STLocal)),
			fmt.Sprintf("%2d %s", r.STComb, bar(r.STComb)),
		}
	}
	return formatTable([]string{"#", "Query", "STLocal weeks", "STComb weeks"}, out)
}

func bar(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 48 {
		n = 48
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
