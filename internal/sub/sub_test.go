package sub

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stburst/internal/geo"
	"stburst/internal/search"
)

func TestRegistryAddGetRemove(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add(Subscription{Owner: "x"}); err == nil {
		t.Fatalf("Add with no terms should fail")
	}
	s1, err := r.Add(Subscription{Owner: "alice", Terms: []string{"quake", "tremor"}, MinScore: 1.5})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if s1.ID != 1 {
		t.Fatalf("first ID = %d, want 1", s1.ID)
	}
	s2, err := r.Add(Subscription{Owner: "bob", Terms: []string{"quake"}, Kind: 2})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if s2.ID != 2 {
		t.Fatalf("second ID = %d, want 2", s2.ID)
	}
	if got := r.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	got, ok := r.Get(1)
	if !ok || got.Owner != "alice" || len(got.Terms) != 2 || got.MinScore != 1.5 {
		t.Fatalf("Get(1) = %+v ok=%v", got, ok)
	}
	if cands := r.Candidates("quake"); len(cands) != 2 || cands[0].ID != 1 || cands[1].ID != 2 {
		t.Fatalf("Candidates(quake) = %+v", cands)
	}
	if cands := r.Candidates("tremor"); len(cands) != 1 || cands[0].ID != 1 {
		t.Fatalf("Candidates(tremor) = %+v", cands)
	}
	if cands := r.Candidates("nobody"); cands != nil {
		t.Fatalf("Candidates(nobody) = %+v, want nil", cands)
	}
	if !r.Remove(1) {
		t.Fatalf("Remove(1) = false")
	}
	if r.Remove(1) {
		t.Fatalf("Remove(1) twice = true")
	}
	if cands := r.Candidates("tremor"); cands != nil {
		t.Fatalf("after remove, Candidates(tremor) = %+v", cands)
	}
	if cands := r.Candidates("quake"); len(cands) != 1 || cands[0].ID != 2 {
		t.Fatalf("after remove, Candidates(quake) = %+v", cands)
	}
	list := r.List()
	if len(list) != 1 || list[0].ID != 2 {
		t.Fatalf("List = %+v", list)
	}
}

func TestRegistryCopiesAreDeep(t *testing.T) {
	r := NewRegistry()
	region := &geo.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}
	span := &search.Timespan{Start: 2, End: 5}
	in := Subscription{Owner: "o", Terms: []string{"a"}, Region: region, Time: span}
	added, err := r.Add(in)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Mutating what the caller handed in (or got back) must not leak
	// into the registry.
	region.MaxX = 99
	span.End = 99
	added.Terms[0] = "zzz"
	got, _ := r.Get(added.ID)
	if got.Region.MaxX != 1 || got.Time.End != 5 || got.Terms[0] != "a" {
		t.Fatalf("registry aliased caller memory: %+v", got)
	}
}

func TestRegistryRestore(t *testing.T) {
	r := NewRegistry()
	if err := r.Restore(Subscription{ID: 7, Terms: []string{"x"}}); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := r.Restore(Subscription{ID: 7, Terms: []string{"y"}}); err == nil {
		t.Fatalf("duplicate Restore should fail")
	}
	if err := r.Restore(Subscription{Terms: []string{"y"}}); err == nil {
		t.Fatalf("zero-ID Restore should fail")
	}
	s, err := r.Add(Subscription{Terms: []string{"z"}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if s.ID != 8 {
		t.Fatalf("Add after Restore(7) assigned ID %d, want 8", s.ID)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s, err := r.Add(Subscription{Terms: []string{"hot", "cold"}})
				if err != nil {
					t.Error(err)
					return
				}
				r.Candidates("hot")
				r.List()
				r.Remove(s.ID)
			}
		}()
	}
	wg.Wait()
	if got := r.Count(); got != 0 {
		t.Fatalf("Count after churn = %d, want 0", got)
	}
}

func TestDispatcherDeliversAndRetries(t *testing.T) {
	var hits atomic.Int64
	var failFirst atomic.Bool
	failFirst.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failFirst.Swap(false) {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	d := NewDispatcher(DispatcherOptions{Workers: 1, Retries: 3, Backoff: time.Millisecond, AllowPrivate: true})
	d.Enqueue(Batch{SubscriptionID: 1, URL: srv.URL, Alerts: 3, Body: []byte(`{"a":1}`)})
	d.Close()

	if got := hits.Load(); got != 2 {
		t.Fatalf("sink hit %d times, want 2 (one failure + one success)", got)
	}
	st := d.Stats()
	if st.DeliveredBatches != 1 || st.DeliveredAlerts != 3 || st.DroppedBatches != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDispatcherDropsAfterRetriesExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	d := NewDispatcher(DispatcherOptions{Workers: 1, Retries: 2, Backoff: time.Millisecond, AllowPrivate: true})
	d.Enqueue(Batch{SubscriptionID: 1, URL: srv.URL, Alerts: 2, Body: []byte(`{}`)})
	d.Close()

	st := d.Stats()
	if st.DroppedBatches != 1 || st.DroppedAlerts != 2 || st.DeliveredBatches != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDispatcherQueueOverflowDrops(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()

	d := NewDispatcher(DispatcherOptions{Workers: 1, QueueLen: 1, Retries: 1, Timeout: 5 * time.Second, AllowPrivate: true})
	// First batch occupies the worker, second fills the queue, third
	// must be dropped without blocking.
	for i := 0; i < 3; i++ {
		d.Enqueue(Batch{SubscriptionID: 1, URL: srv.URL, Alerts: 1, Body: []byte(`{}`)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().DroppedBatches == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := d.Stats(); st.DroppedBatches == 0 {
		t.Fatalf("expected an overflow drop, stats = %+v", st)
	}
	close(block)
	d.Close()
}

// TestDispatcherEnqueueCloseRace: Enqueue racing Close must never panic
// with a send on the closed queue — late batches are silently refused
// instead. Exercised under -race by the race suite.
func TestDispatcherEnqueueCloseRace(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	d := NewDispatcher(DispatcherOptions{Workers: 2, Retries: 1, Backoff: time.Millisecond, AllowPrivate: true})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				d.Enqueue(Batch{SubscriptionID: 1, URL: srv.URL, Alerts: 1, Body: []byte(`{}`)})
			}
		}()
	}
	close(start)
	d.Close() // races the enqueuers
	wg.Wait()
	d.Close() // and stays idempotent afterwards
}

func TestBrokerFanOutAndSlowClientDrop(t *testing.T) {
	b := NewBroker()
	fast, cancelFast := b.Subscribe(4)
	slow, cancelSlow := b.Subscribe(1)
	defer cancelFast()
	defer cancelSlow()
	if b.Clients() != 2 {
		t.Fatalf("Clients = %d, want 2", b.Clients())
	}
	b.Publish([]byte("one"))
	b.Publish([]byte("two")) // overflows slow's buffer of 1
	if got := string(<-fast); got != "one" {
		t.Fatalf("fast got %q", got)
	}
	if got := string(<-fast); got != "two" {
		t.Fatalf("fast got %q", got)
	}
	if got := string(<-slow); got != "one" {
		t.Fatalf("slow got %q", got)
	}
	select {
	case extra := <-slow:
		t.Fatalf("slow client should have dropped, got %q", extra)
	default:
	}
	if b.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", b.Dropped())
	}
	cancelSlow()
	if b.Clients() != 1 {
		t.Fatalf("Clients after cancel = %d, want 1", b.Clients())
	}
	// Double-cancel is safe.
	cancelSlow()
}

func TestFormatEvent(t *testing.T) {
	got := string(FormatEvent([]byte(`{"x":1}`)))
	want := "event: alert\ndata: {\"x\":1}\n\n"
	if got != want {
		t.Fatalf("FormatEvent = %q, want %q", got, want)
	}
}

// TestRegistryLimit: Add refuses past SetLimit with ErrRegistryFull,
// Remove frees a slot, and Restore is exempt — a persisted set must
// always load regardless of the runtime limit.
func TestRegistryLimit(t *testing.T) {
	r := NewRegistry()
	r.SetLimit(2)
	for i := 0; i < 2; i++ {
		if _, err := r.Add(Subscription{Terms: []string{"quake"}}); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if _, err := r.Add(Subscription{Terms: []string{"quake"}}); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("Add past limit = %v, want ErrRegistryFull", err)
	}
	if err := r.Restore(Subscription{ID: 99, Terms: []string{"quake"}}); err != nil {
		t.Fatalf("Restore at limit: %v", err)
	}
	if !r.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	// 2 live after the remove, but the restored one pushed len to 2 again;
	// limit still enforced against live count.
	if _, err := r.Add(Subscription{Terms: []string{"quake"}}); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("Add at limit after restore = %v, want ErrRegistryFull", err)
	}
}
