package sub

import (
	"fmt"
	"net"
	"net/netip"
	"strings"
	"syscall"
)

// Webhook target policy. The /v1/subscriptions surface is
// unauthenticated, so a registered webhook must not be able to aim the
// server's own network position at loopback services, RFC 1918/4193
// ranges or the link-local metadata endpoints cloud providers expose —
// a blind-SSRF POST proxy. The default policy refuses such targets
// twice: at registration time for addresses visible in the URL itself,
// and at dial time, after DNS resolution, so a hostname that resolves
// (or later rebinds) to a private address is caught too.
// DispatcherOptions.AllowPrivate — the stserve -webhook-allow-private
// flag — lifts both checks for local development and tests.

// CheckWebhookHost rejects a webhook URL host that is visibly a
// blocked delivery target: a literal IP in a private, loopback,
// link-local or unspecified range, or the name "localhost". Other
// hostnames pass — what they actually resolve to is enforced at dial
// time by the dispatcher's default client.
func CheckWebhookHost(host string) error {
	if strings.EqualFold(host, "localhost") {
		return fmt.Errorf("sub: webhook host %q is a blocked delivery target (loopback); deliveries to private addresses are refused by default", host)
	}
	if addr, err := netip.ParseAddr(host); err == nil {
		return checkWebhookAddr(addr)
	}
	return nil
}

// checkWebhookAddr refuses the address ranges the default policy
// blocks. IPv4-mapped IPv6 addresses are unmapped first so ::ffff:10.x
// cannot smuggle an RFC 1918 target past the check.
func checkWebhookAddr(addr netip.Addr) error {
	a := addr.Unmap()
	if a.IsLoopback() || a.IsPrivate() || a.IsLinkLocalUnicast() || a.IsLinkLocalMulticast() || a.IsUnspecified() {
		return fmt.Errorf("sub: webhook target %s is a private, loopback or link-local address; deliveries to it are refused by default", addr)
	}
	return nil
}

// guardDial is the net.Dialer Control hook enforcing the policy after
// name resolution: address here is always the literal ip:port about to
// be connected, so a public hostname resolving privately is refused at
// the last possible moment.
func guardDial(network, address string, _ syscall.RawConn) error {
	host, _, err := net.SplitHostPort(address)
	if err != nil {
		return fmt.Errorf("sub: webhook dial to %q: %w", address, err)
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return fmt.Errorf("sub: webhook dial resolved to unparseable address %q", address)
	}
	return checkWebhookAddr(addr)
}
