package sub

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestCheckWebhookHost(t *testing.T) {
	blocked := []string{
		"localhost",
		"LOCALHOST",
		"127.0.0.1",
		"127.8.9.10",
		"::1",
		"10.0.0.7",
		"172.16.4.1",
		"192.168.1.50",
		"169.254.169.254", // cloud metadata
		"fe80::1",
		"::ffff:10.1.2.3", // IPv4-mapped IPv6 dodge
		"0.0.0.0",
		"::",
		"fd00::5", // IPv6 ULA
	}
	for _, h := range blocked {
		if err := CheckWebhookHost(h); err == nil {
			t.Errorf("CheckWebhookHost(%q) = nil, want refusal", h)
		}
	}
	allowed := []string{
		"93.184.216.34",                      // public IPv4
		"2606:2800:220:1:248:1893:25c8:1946", // public IPv6
		"example.com",                        // hostnames pass; the dial guard covers what they resolve to
		"hooks.internal",
	}
	for _, h := range allowed {
		if err := CheckWebhookHost(h); err != nil {
			t.Errorf("CheckWebhookHost(%q) = %v, want nil", h, err)
		}
	}
}

// TestDispatcherBlocksPrivateDial proves the second enforcement layer:
// even when a private target slips past registration (here by handing
// the dispatcher a loopback URL directly), the default transport's dial
// guard refuses the connection and the batch is dropped, not delivered.
func TestDispatcherBlocksPrivateDial(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	d := NewDispatcher(DispatcherOptions{Workers: 1, Retries: 1, Backoff: time.Millisecond})
	d.Enqueue(Batch{SubscriptionID: 1, URL: srv.URL, Alerts: 1, Body: []byte(`{}`)})
	d.Close()

	if got := hits.Load(); got != 0 {
		t.Fatalf("loopback sink was hit %d times; dial guard should have refused", got)
	}
	if st := d.Stats(); st.DroppedBatches != 1 || st.DeliveredBatches != 0 {
		t.Fatalf("stats = %+v, want the batch dropped", st)
	}
}
