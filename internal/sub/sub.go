// Package sub implements the standing-query subsystem behind burst
// alerting: a concurrent subscription registry with an inverted
// term→subscription index (so post-ingest matching costs O(dirty
// terms), never O(subscriptions)), and the delivery layer — a webhook
// dispatcher with bounded retry and an SSE broker — that turns matches
// into pushed alerts.
//
// The package deliberately knows nothing about pattern mining: the
// store's ingest path owns the matching (it holds the fresh indexes and
// the dirty-term set) and hands finished alert batches to the delivery
// layer here. The registry's Subscription is the predicate in internal
// terms (normalized term strings, a geo rectangle, a timespan, a kind
// ordinal); the root package converts its public Query-shaped form to
// and from this one.
package sub

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"stburst/internal/geo"
	"stburst/internal/search"
)

// DefaultMaxSubscriptions bounds Add-registered subscriptions when no
// explicit limit is set. The registration surface is unauthenticated,
// so an unbounded registry would let one client grow memory without
// limit — and past the bundle codec's 1<<20 subscriptions ceiling,
// every subsequent save would fail. The default stays well below that
// ceiling so a registry at its limit always remains saveable.
const DefaultMaxSubscriptions = 1 << 16

// ErrRegistryFull is wrapped by Add when the registry holds its
// limit's worth of subscriptions; the HTTP layer maps it to 429.
var ErrRegistryFull = errors.New("sub: subscription limit reached")

// Subscription is one registered standing query.
type Subscription struct {
	// ID is the registry-assigned identifier, unique for the life of
	// the registry (and, once persisted, of the store).
	ID uint64
	// Owner is a free-form label identifying who registered the query.
	Owner string
	// Terms are the normalized (collection-tokenizer) term strings the
	// subscription watches. Matching is keyed on strings, not interned
	// IDs: a standing query may name vocabulary the corpus has not seen
	// yet, and must start matching the moment ingestion interns it.
	Terms []string
	// Kind is the pattern kind ordinal the subscription watches: 0
	// matches every kind, 1..3 the concrete kinds in the root package's
	// canonical order (regional, combinatorial, temporal).
	Kind int
	// Region, when non-nil, requires the matching pattern to intersect
	// the rectangle (per-kind geometry, shared with retrieval).
	Region *geo.Rect
	// Time, when non-nil, requires the matching pattern's timeframe to
	// overlap the span.
	Time *search.Timespan
	// MinScore drops patterns scoring below the threshold.
	MinScore float64
	// Webhook is the delivery URL alert batches are POSTed to; empty
	// means the subscription is observed through the SSE feed only.
	Webhook string
}

// clone deep-copies the subscription so registry internals never alias
// caller-held slices or pointers.
func (s Subscription) clone() Subscription {
	c := s
	c.Terms = append([]string(nil), s.Terms...)
	if s.Region != nil {
		r := *s.Region
		c.Region = &r
	}
	if s.Time != nil {
		t := *s.Time
		c.Time = &t
	}
	return c
}

// Registry is a concurrent subscription store with an inverted
// term→subscriptions index. Reads (Candidates, Get, List) take the
// read lock; mutations are rare next to ingest-path lookups.
type Registry struct {
	mu     sync.RWMutex
	subs   map[uint64]Subscription
	byTerm map[string]map[uint64]struct{}
	nextID uint64
	max    int
}

// NewRegistry returns an empty registry with the default Add limit.
func NewRegistry() *Registry {
	return &Registry{
		subs:   make(map[uint64]Subscription),
		byTerm: make(map[string]map[uint64]struct{}),
		max:    DefaultMaxSubscriptions,
	}
}

// SetLimit bounds the number of subscriptions Add accepts; n <= 0
// restores DefaultMaxSubscriptions. Restore is deliberately exempt —
// a persisted set the bundle codec accepted must always load.
func (r *Registry) SetLimit(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 {
		n = DefaultMaxSubscriptions
	}
	r.max = n
}

// Add registers a subscription, assigns it the next free ID and returns
// the stored form. Terms must be non-empty — a termless subscription
// would have no inverted-index home and silently never match. A
// registry at its limit (SetLimit) refuses with ErrRegistryFull.
func (r *Registry) Add(s Subscription) (Subscription, error) {
	if len(s.Terms) == 0 {
		return Subscription{}, fmt.Errorf("sub: subscription needs at least one term")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.subs) >= r.max {
		return Subscription{}, fmt.Errorf("%w (%d registered)", ErrRegistryFull, len(r.subs))
	}
	r.nextID++
	s.ID = r.nextID
	r.insertLocked(s.clone())
	return s.clone(), nil
}

// Restore re-registers a persisted subscription under its saved ID —
// the load path's Add. A duplicate or zero ID is an error; the ID
// counter advances past every restored ID so later Adds never collide.
func (r *Registry) Restore(s Subscription) error {
	if len(s.Terms) == 0 {
		return fmt.Errorf("sub: subscription %d has no terms", s.ID)
	}
	if s.ID == 0 {
		return fmt.Errorf("sub: cannot restore a subscription without an ID")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.subs[s.ID]; ok {
		return fmt.Errorf("sub: duplicate subscription ID %d", s.ID)
	}
	if s.ID > r.nextID {
		r.nextID = s.ID
	}
	r.insertLocked(s.clone())
	return nil
}

// insertLocked indexes one subscription; callers hold the write lock
// and pass an already-cloned value.
func (r *Registry) insertLocked(s Subscription) {
	r.subs[s.ID] = s
	for _, t := range s.Terms {
		m := r.byTerm[t]
		if m == nil {
			m = make(map[uint64]struct{})
			r.byTerm[t] = m
		}
		m[s.ID] = struct{}{}
	}
}

// Remove deletes a subscription, reporting whether it existed.
func (r *Registry) Remove(id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok {
		return false
	}
	delete(r.subs, id)
	for _, t := range s.Terms {
		if m := r.byTerm[t]; m != nil {
			delete(m, id)
			if len(m) == 0 {
				delete(r.byTerm, t)
			}
		}
	}
	return true
}

// Get returns a copy of one subscription.
func (r *Registry) Get(id uint64) (Subscription, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.subs[id]
	if !ok {
		return Subscription{}, false
	}
	return s.clone(), true
}

// List returns copies of every subscription in ascending ID order.
func (r *Registry) List() []Subscription {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		out = append(out, s.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Count returns the number of registered subscriptions.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.subs)
}

// Candidates returns copies of the subscriptions watching a term — the
// inverted-index lookup the post-ingest matcher does once per dirty
// term. A term nobody watches costs one map probe.
func (r *Registry) Candidates(term string) []Subscription {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := r.byTerm[term]
	if len(m) == 0 {
		return nil
	}
	out := make([]Subscription, 0, len(m))
	for id := range m {
		out = append(out, r.subs[id].clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
