package sub

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Batch is one delivery unit: every alert a single ingest produced for
// a single subscription, already marshaled by the caller. Batching is
// the fan-out contract — one ingest matching N patterns for one
// subscriber costs one POST and one SSE event, not N.
type Batch struct {
	// SubscriptionID identifies the subscriber the batch belongs to.
	SubscriptionID uint64
	// URL is the webhook target; empty batches are SSE-only.
	URL string
	// Alerts counts the alerts inside Body, for accounting.
	Alerts int
	// Body is the JSON payload to POST / stream.
	Body []byte
}

// DispatcherStats is a point-in-time snapshot of delivery accounting.
type DispatcherStats struct {
	// DeliveredBatches / DeliveredAlerts count successful webhook POSTs
	// and the alerts they carried.
	DeliveredBatches uint64
	DeliveredAlerts  uint64
	// DroppedBatches / DroppedAlerts count batches abandoned because
	// the queue was full or every retry failed.
	DroppedBatches uint64
	DroppedAlerts  uint64
}

// DispatcherOptions tune the webhook dispatcher; the zero value picks
// the documented defaults.
type DispatcherOptions struct {
	// Workers is the number of concurrent delivery goroutines
	// (default 4).
	Workers int
	// QueueLen bounds the pending-batch queue; a full queue drops the
	// newest batch rather than stalling ingest (default 256).
	QueueLen int
	// Retries is the number of attempts per batch (default 3).
	Retries int
	// Backoff is the sleep after the first failed attempt, doubled per
	// retry (default 100ms).
	Backoff time.Duration
	// Timeout bounds each POST (default 5s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil uses a client with
	// the configured Timeout whose dialer enforces the webhook target
	// policy (see AllowPrivate). A non-nil Client bypasses that policy —
	// the caller owns transport security.
	Client *http.Client
	// AllowPrivate permits deliveries to loopback, private (RFC
	// 1918/4193) and link-local addresses. Off by default: the
	// subscription surface is unauthenticated, and a webhook aimed at
	// the server's own network would otherwise turn it into a blind-SSRF
	// POST proxy (see policy.go). Enable for local development and
	// tests only.
	AllowPrivate bool
	// OnDelivery, when non-nil, observes the wall-clock seconds each
	// successful delivery took (queue wait + POST), feeding the
	// latency histogram.
	OnDelivery func(seconds float64)
}

// Dispatcher POSTs alert batches to subscriber webhooks from a bounded
// queue with bounded retry — delivery is at-most-once per batch, and
// a slow or dead sink can never back-pressure the ingest path.
type Dispatcher struct {
	opts   DispatcherOptions
	client *http.Client
	queue  chan queued
	wg     sync.WaitGroup
	// mu serializes Enqueue's channel send against Close's channel
	// close: Enqueue holds the read lock across its closed-check and
	// send, so Close (write lock) can never close the queue between the
	// two — the send-on-closed-channel panic an atomic flag alone would
	// allow.
	mu     sync.RWMutex
	closed bool

	deliveredBatches atomic.Uint64
	deliveredAlerts  atomic.Uint64
	droppedBatches   atomic.Uint64
	droppedAlerts    atomic.Uint64
}

type queued struct {
	b        Batch
	enqueued time.Time
}

// NewDispatcher starts the delivery workers.
func NewDispatcher(opts DispatcherOptions) *Dispatcher {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 256
	}
	if opts.Retries <= 0 {
		opts.Retries = 3
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	d := &Dispatcher{opts: opts, client: opts.Client}
	if d.client == nil {
		d.client = &http.Client{Timeout: opts.Timeout}
		if !opts.AllowPrivate {
			// Enforce the webhook target policy post-resolution: the
			// Control hook sees the literal IP being dialed, so a DNS
			// name resolving to a private range is refused even though
			// registration-time validation could only see the name.
			dialer := &net.Dialer{Timeout: opts.Timeout, Control: guardDial}
			d.client.Transport = &http.Transport{DialContext: dialer.DialContext}
		}
	}
	d.queue = make(chan queued, opts.QueueLen)
	d.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go d.worker()
	}
	return d
}

// Enqueue hands a batch to the delivery workers without blocking: when
// the queue is full the batch is dropped and counted, keeping ingest
// latency independent of sink health.
func (d *Dispatcher) Enqueue(b Batch) {
	if b.URL == "" {
		return
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return
	}
	select {
	case d.queue <- queued{b: b, enqueued: time.Now()}:
	default:
		d.droppedBatches.Add(1)
		d.droppedAlerts.Add(uint64(b.Alerts))
	}
}

// Stats snapshots the delivery counters.
func (d *Dispatcher) Stats() DispatcherStats {
	return DispatcherStats{
		DeliveredBatches: d.deliveredBatches.Load(),
		DeliveredAlerts:  d.deliveredAlerts.Load(),
		DroppedBatches:   d.droppedBatches.Load(),
		DroppedAlerts:    d.droppedAlerts.Load(),
	}
}

// Close stops accepting batches, drains the queue and waits for the
// workers to finish their in-flight deliveries. Safe to call
// concurrently with Enqueue (late batches are silently refused) and
// idempotent.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.queue)
	d.mu.Unlock()
	d.wg.Wait()
}

func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for q := range d.queue {
		if d.deliver(q.b) {
			d.deliveredBatches.Add(1)
			d.deliveredAlerts.Add(uint64(q.b.Alerts))
			if d.opts.OnDelivery != nil {
				d.opts.OnDelivery(time.Since(q.enqueued).Seconds())
			}
		} else {
			d.droppedBatches.Add(1)
			d.droppedAlerts.Add(uint64(q.b.Alerts))
		}
	}
}

// deliver attempts the POST up to Retries times with doubling backoff.
// Any 2xx is success; everything else (including transport errors)
// retries until attempts run out.
func (d *Dispatcher) deliver(b Batch) bool {
	backoff := d.opts.Backoff
	for attempt := 0; attempt < d.opts.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if d.post(b) {
			return true
		}
	}
	return false
}

func (d *Dispatcher) post(b Batch) bool {
	ctx, cancel := context.WithTimeout(context.Background(), d.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.URL, bytes.NewReader(b.Body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// Broker fans alert batches out to SSE clients. Publish never blocks:
// each client has a bounded buffer and a client that falls behind has
// events dropped (counted per client) rather than stalling ingest or
// other clients.
type Broker struct {
	mu      sync.Mutex
	nextID  uint64
	clients map[uint64]*client
	dropped atomic.Uint64
}

type client struct {
	ch chan []byte
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{clients: make(map[uint64]*client)}
}

// Subscribe registers an SSE client and returns its event channel and
// a cancel function. buffer bounds how many pending events the client
// may lag before events are dropped.
func (b *Broker) Subscribe(buffer int) (<-chan []byte, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	c := &client{ch: make(chan []byte, buffer)}
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.clients[id] = c
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.clients[id]; ok {
			delete(b.clients, id)
			close(c.ch)
		}
		b.mu.Unlock()
	}
	return c.ch, cancel
}

// Publish fans one event body out to every connected client,
// non-blocking; full client buffers drop the event for that client.
func (b *Broker) Publish(body []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, c := range b.clients {
		select {
		case c.ch <- body:
		default:
			b.dropped.Add(1)
		}
	}
}

// Clients returns the number of connected SSE clients.
func (b *Broker) Clients() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// Dropped returns the number of events dropped on full client buffers.
func (b *Broker) Dropped() uint64 {
	return b.dropped.Load()
}

// FormatEvent renders one SSE frame ("event: alert\ndata: ...\n\n").
// The body must be a single line (compact JSON).
func FormatEvent(body []byte) []byte {
	return []byte(fmt.Sprintf("event: alert\ndata: %s\n\n", body))
}
