package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below 1 mean "use
// one worker per available CPU" (GOMAXPROCS), and the count is capped at n
// so no goroutine is spawned without work.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach calls fn(i) exactly once for every i in [0, n), fanning the
// indices out across a pool of bounded size. workers < 1 uses one worker
// per CPU. It returns after every call has completed. fn must not panic;
// a panic in fn propagates to the caller of ForEach (the first one wins,
// remaining workers are drained).
func ForEach(n, workers int, fn func(i int)) {
	// Background is never cancelled, so the error is impossible.
	ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: each worker checks
// ctx before claiming the next index and stops dispatching once the
// context is cancelled. Calls already in flight run to completion — fn is
// never interrupted mid-item — so on cancellation some indices may have
// been processed and others not. It returns ctx.Err() when the context
// was cancelled before every index was dispatched, and nil after a
// complete pass.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		panicked  any
		cancelled atomic.Bool
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
					// Drain remaining work so sibling workers exit promptly.
					next.Store(int64(n))
				}
			}()
			for {
				if ctx.Err() != nil {
					// Only a cancellation that leaves indices undispatched
					// makes the pass incomplete; mirrors the sequential path,
					// which never re-checks after the final call.
					if next.Load() < int64(n) {
						cancelled.Store(true)
					}
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}
