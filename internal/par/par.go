package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below 1 mean "use
// one worker per available CPU" (GOMAXPROCS), and the count is capped at n
// so no goroutine is spawned without work.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach calls fn(i) exactly once for every i in [0, n), fanning the
// indices out across a pool of bounded size. workers < 1 uses one worker
// per CPU. It returns after every call has completed. fn must not panic;
// a panic in fn propagates to the caller of ForEach (the first one wins,
// remaining workers are drained).
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
					// Drain remaining work so sibling workers exit promptly.
					next.Store(int64(n))
				}
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
