package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},   // capped at n
		{1, 0, 1},   // floor of 1
		{100, 1, 1}, // capped at n
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Fatalf("Workers(%d,%d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 500
		counts := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachSequentialOrder(t *testing.T) {
	// One worker must preserve index order (the sequential fallback).
	var got []int
	ForEach(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order violated: %v", got)
		}
	}
}
