package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},   // capped at n
		{1, 0, 1},   // floor of 1
		{100, 1, 1}, // capped at n
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Fatalf("Workers(%d,%d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 500
		counts := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachSequentialOrder(t *testing.T) {
	// One worker must preserve index order (the sequential fallback).
	var got []int
	ForEach(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order violated: %v", got)
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int64{}
		err := ForEachCtx(ctx, 100, workers, func(int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d calls ran under a pre-cancelled context", workers, ran.Load())
		}
	}
}

func TestForEachCtxMidCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := ForEachCtx(ctx, 100, 1, func(i int) {
		ran++
		if i == 4 {
			cancel() // observed before the next dispatch
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 5 {
		t.Fatalf("ran %d calls, want 5 (cancellation never interrupts a call in flight)", ran)
	}
}

func TestForEachCtxMidCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := atomic.Int64{}
	err := ForEachCtx(ctx, 10_000, 4, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Fatal("cancellation did not stop dispatch early")
	}
}

func TestForEachCtxCompletePass(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := atomic.Int64{}
		if err := ForEachCtx(context.Background(), 50, workers, func(int) { ran.Add(1) }); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, ran.Load())
		}
	}
}
