// Package par provides the bounded worker pool underneath the corpus-wide
// batch miners: a deterministic parallel for-each over an index range.
//
// # Determinism contract
//
// ForEach assigns indices to workers dynamically, so the *schedule* varies
// run to run, but every index is processed exactly once and callers write
// results only to their own index-addressed slot. As long as fn(i) is a
// pure function of i — which the per-term miners are: each mines a private
// STLocal/STComb instance over a private frequency surface — the assembled
// result is bit-identical for every worker count, including 1. The
// concurrency suite (concurrency_test.go at the repository root) asserts
// this via the pattern index's canonical fingerprint, and the snapshot
// pipeline (internal/index) extends the guarantee across processes.
//
// # Sizing
//
// Workers normalizes a requested worker count: values below 1 mean one
// worker per available CPU (GOMAXPROCS), and the count is capped at the
// job size so no goroutine is spawned without work. A panic in fn is
// captured, sibling workers are drained, and the first panic re-raises on
// the calling goroutine.
package par
