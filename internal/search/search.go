package search

import (
	"math"
	"strings"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/geo"
	"stburst/internal/index"
	"stburst/internal/stream"
	"stburst/internal/textproc"
)

// Burstiness returns f(P_{t,d}) for a document from the given stream at
// the given timestamp, and whether any pattern of the term overlaps it
// (Eq. 11: no overlap means burstiness -inf, i.e. the document does not
// participate for this term).
type Burstiness func(term, streamIdx, time int) (float64, bool)

// Engine is a bursty-document search engine over one collection and one
// pattern type.
type Engine struct {
	col *stream.Collection
	idx *index.Index
	tok *textproc.Tokenizer
	// ps is the pattern set the engine was built from, when built through
	// BuildFromPatterns. It powers the spatiotemporal post-filter of Run;
	// engines built from a bare Burstiness closure (Build) have none and
	// reject filtered queries.
	ps *index.PatternSet
	// points caches the stream locations for combinatorial region checks.
	points []geo.Point
}

// Result is one retrieved document.
type Result struct {
	Doc   int
	Score float64
}

// Build indexes the collection: for every term and every document
// containing it, the per-term score relevance × burstiness is added when
// the document overlaps at least one pattern of the term.
func Build(col *stream.Collection, b Burstiness) *Engine {
	ix := index.New()
	for _, term := range col.Terms() {
		ids, freqs := col.TermDocs(term)
		for i, docID := range ids {
			d := col.Doc(docID)
			bs, ok := b(term, d.Stream, d.Time)
			if !ok || bs <= 0 {
				continue
			}
			rel := math.Log(float64(freqs[i]) + 1)
			ix.Add(term, docID, rel*bs)
		}
	}
	ix.Finalize()
	return &Engine{col: col, idx: ix, tok: textproc.NewTokenizer()}
}

// Query retrieves the top-k documents for a whitespace-separated query
// string (terms are tokenized with the default pipeline, mirroring the
// indexing side).
func (e *Engine) Query(q string, k int) []Result {
	terms := e.tok.Tokenize(strings.ToLower(q))
	ids := make([]int, 0, len(terms))
	for _, t := range terms {
		id, ok := e.col.Dict().Lookup(t)
		if !ok {
			return nil // Eq. 10: a term with no patterns/documents zeroes the query
		}
		ids = append(ids, id)
	}
	return e.QueryTerms(ids, k)
}

// QueryTerms retrieves the top-k documents for pre-interned term IDs.
func (e *Engine) QueryTerms(terms []int, k int) []Result {
	if len(terms) == 0 {
		return nil
	}
	rs := e.idx.TopK(terms, k, index.MissingExcludes)
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{Doc: r.Doc, Score: r.Score}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Index exposes the underlying inverted index (for diagnostics/tests).
func (e *Engine) Index() *index.Index { return e.idx }

// WindowBurstiness adapts per-term STLocal windows to the engine:
// burstiness(d, t) is the maximum w-score over the windows of t whose
// region contains d's stream and whose timeframe contains d's timestamp.
func WindowBurstiness(byTerm map[int][]core.Window) Burstiness {
	return func(term, streamIdx, time int) (float64, bool) {
		best := math.Inf(-1)
		found := false
		for _, w := range byTerm[term] {
			if w.Overlaps(streamIdx, time) && (!found || w.Score > best) {
				best = w.Score
				found = true
			}
		}
		return best, found
	}
}

// CombBurstiness adapts per-term STComb patterns to the engine. A
// document overlaps a pattern through its own stream's contributing
// interval (see core.CombPattern.OverlapsMember): large cliques can have
// single-timestamp common segments, but every member document inside its
// stream's burst belongs to the pattern.
func CombBurstiness(byTerm map[int][]core.CombPattern) Burstiness {
	return func(term, streamIdx, time int) (float64, bool) {
		best := math.Inf(-1)
		found := false
		for _, p := range byTerm[term] {
			if p.OverlapsMember(streamIdx, time) && (!found || p.Score > best) {
				best = p.Score
				found = true
			}
		}
		return best, found
	}
}

// TemporalBurstiness adapts per-term temporal bursty intervals (mined on
// the merged stream) to the engine: the TB comparison system of §6.3,
// which disregards the document's stream of origin.
func TemporalBurstiness(byTerm map[int][]burst.Interval) Burstiness {
	return func(term, _ /* stream */, time int) (float64, bool) {
		best := math.Inf(-1)
		found := false
		for _, iv := range byTerm[term] {
			if time >= iv.Start && time <= iv.End && (!found || iv.Score > best) {
				best = iv.Score
				found = true
			}
		}
		return best, found
	}
}

// PatternBurstiness adapts a mined pattern set of any kind to the engine,
// dispatching to the kind's overlap notion.
func PatternBurstiness(ps *index.PatternSet) Burstiness {
	switch ps.Kind() {
	case index.KindRegional:
		return WindowBurstiness(ps.AllWindows())
	case index.KindCombinatorial:
		return CombBurstiness(ps.AllCombs())
	default:
		return TemporalBurstiness(ps.AllTemporal())
	}
}

// BuildFromPatterns indexes the collection against an already-mined
// pattern set: the engine-build path that consults the pattern index
// instead of re-mining the corpus. Unlike Build, the resulting engine
// retains the pattern set and therefore answers spatiotemporally filtered
// queries (Query.Region / Query.Span).
func BuildFromPatterns(col *stream.Collection, ps *index.PatternSet) *Engine {
	e := Build(col, PatternBurstiness(ps))
	e.ps = ps
	e.points = col.Points()
	return e
}

// MineWindows runs STLocal over every term of the collection on a single
// worker and returns the per-term maximal windows — the pattern side of an
// STLocal engine. See MineWindowsPar for the concurrent variant.
func MineWindows(col *stream.Collection, opts core.STLocalOptions) map[int][]core.Window {
	return MineWindowsPar(col, opts, 1)
}

// MineCombPatterns runs STComb over every term of the collection on a
// single worker and returns the per-term combinatorial patterns. See
// MineCombPatternsPar for the concurrent variant.
func MineCombPatterns(col *stream.Collection, opts core.STCombOptions) map[int][]core.CombPattern {
	return MineCombPatternsPar(col, opts, 1)
}

// MineTemporal extracts per-term temporal bursty intervals over the
// merged stream with the given detector (nil uses the discrepancy
// default) — the pattern side of a TB engine. See MineTemporalPar for the
// concurrent variant.
func MineTemporal(col *stream.Collection, det burst.Detector) map[int][]burst.Interval {
	return MineTemporalPar(col, det, 1)
}
