package search

import (
	"reflect"
	"testing"

	"stburst/internal/core"
	"stburst/internal/index"
)

func TestMineWindowsParMatchesSequential(t *testing.T) {
	col := testCollection(t)
	want := MineWindows(col, core.STLocalOptions{})
	for _, workers := range []int{2, 4, 0} {
		got := MineWindowsPar(col, core.STLocalOptions{}, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel windows differ from sequential", workers)
		}
	}
}

func TestMineCombPatternsParMatchesSequential(t *testing.T) {
	col := testCollection(t)
	want := MineCombPatterns(col, core.STCombOptions{})
	got := MineCombPatternsPar(col, core.STCombOptions{}, 3)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel comb patterns differ from sequential")
	}
}

func TestMineTemporalParMatchesSequential(t *testing.T) {
	col := testCollection(t)
	want := MineTemporal(col, nil)
	got := MineTemporalPar(col, nil, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel temporal intervals differ from sequential")
	}
}

func TestTermsMinedCounter(t *testing.T) {
	col := testCollection(t)
	before := TermsMined()
	MineWindowsPar(col, core.STLocalOptions{}, 2)
	delta := TermsMined() - before
	if want := int64(len(col.Terms())); delta != want {
		t.Fatalf("counter advanced by %d, want %d (one per vocabulary term)", delta, want)
	}
}

func TestBuildFromPatternsMatchesDirectBuild(t *testing.T) {
	col := testCollection(t)
	windows := MineWindows(col, core.STLocalOptions{})
	direct := Build(col, WindowBurstiness(windows))
	fromSet := BuildFromPatterns(col, index.NewWindowSet(windows))
	for _, q := range []string{"quake", "quake damage", "news"} {
		a := direct.Query(q, 10)
		b := fromSet.Query(q, 10)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %q: index-backed engine diverged: %+v vs %+v", q, a, b)
		}
	}
}

func TestPatternBurstinessDispatch(t *testing.T) {
	col := testCollection(t)
	quake, _ := col.Dict().Lookup("quake")

	ws := MineWindows(col, core.STLocalOptions{})
	rb := PatternBurstiness(index.NewWindowSet(ws))
	if _, ok := rb(quake, 0, 2); !ok {
		t.Fatal("regional dispatch found no overlap for the bursty doc")
	}

	cs := MineCombPatterns(col, core.STCombOptions{})
	cb := PatternBurstiness(index.NewCombSet(cs))
	if _, ok := cb(quake, 0, 2); !ok {
		t.Fatal("combinatorial dispatch found no overlap for the bursty doc")
	}

	tsPat := MineTemporal(col, nil)
	tb := PatternBurstiness(index.NewTemporalSet(tsPat))
	if _, ok := tb(quake, 1, 2); !ok {
		t.Fatal("temporal dispatch must ignore the stream")
	}
}
