package search

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"stburst/internal/core"
	"stburst/internal/stream"
)

// appendTestBatch dirties a strict subset of the vocabulary: the
// existing "quake" term plus a brand-new "flood" term.
func appendTestBatch(t *testing.T, col *stream.Collection) []int {
	t.Helper()
	_, dirty, err := col.Append([]stream.AppendDoc{
		{Stream: 1, Time: 4, Counts: map[string]int{"quake": 2, "flood": 1}},
		{Stream: 0, Time: 5, Counts: map[string]int{"flood": 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirty
}

// TestRemineDirtyMatchesFullRemine is the internal oracle: refreshing
// only the dirty terms reproduces, map for map, a full re-mine of the
// whole vocabulary over the appended collection — for every kind and
// worker count.
func TestRemineDirtyMatchesFullRemine(t *testing.T) {
	col := testCollection(t)
	prevW := MineWindows(col, core.STLocalOptions{})
	prevC := MineCombPatterns(col, core.STCombOptions{})
	prevT := MineTemporal(col, nil)

	dirty := appendTestBatch(t, col)
	if len(dirty) == 0 || len(dirty) >= len(col.Terms()) {
		t.Fatalf("batch dirtied %d of %d terms; the oracle needs a strict non-empty subset", len(dirty), len(col.Terms()))
	}

	wantW := MineWindows(col, core.STLocalOptions{})
	wantC := MineCombPatterns(col, core.STCombOptions{})
	wantT := MineTemporal(col, nil)

	for _, workers := range []int{1, 3, 0} {
		gotW, gotC, gotT, err := RemineDirtyParCtx(context.Background(), col, dirty,
			prevW, prevC, prevT, core.STLocalOptions{}, core.STCombOptions{}, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotW, wantW) {
			t.Errorf("workers=%d: windows diverge from full re-mine", workers)
		}
		if !reflect.DeepEqual(gotC, wantC) {
			t.Errorf("workers=%d: comb patterns diverge from full re-mine", workers)
		}
		if !reflect.DeepEqual(gotT, wantT) {
			t.Errorf("workers=%d: temporal intervals diverge from full re-mine", workers)
		}
	}
}

// TestRemineDirtyCountsOnlyDirtyTerms: the incremental path mines
// exactly |dirty| x |active kinds| jobs, never the full vocabulary.
func TestRemineDirtyCountsOnlyDirtyTerms(t *testing.T) {
	col := testCollection(t)
	prevW := MineWindows(col, core.STLocalOptions{})
	prevT := MineTemporal(col, nil)
	dirty := appendTestBatch(t, col)

	before := TermsMined()
	if _, _, _, err := RemineDirtyParCtx(context.Background(), col, dirty,
		prevW, nil, prevT, core.STLocalOptions{}, core.STCombOptions{}, nil, 2); err != nil {
		t.Fatal(err)
	}
	if delta, want := TermsMined()-before, int64(2*len(dirty)); delta != want {
		t.Errorf("re-mined %d jobs, want %d (2 active kinds x %d dirty terms)", delta, want, len(dirty))
	}
}

// TestRemineDirtySkipsInactiveKinds: a nil prev map keeps its kind out
// of the work list and returns nil for it.
func TestRemineDirtySkipsInactiveKinds(t *testing.T) {
	col := testCollection(t)
	prevT := MineTemporal(col, nil)
	dirty := appendTestBatch(t, col)
	w, c, tp, err := RemineDirtyParCtx(context.Background(), col, dirty,
		nil, nil, prevT, core.STLocalOptions{}, core.STCombOptions{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil || c != nil {
		t.Error("inactive kinds were re-mined")
	}
	if want := MineTemporal(col, nil); !reflect.DeepEqual(tp, want) {
		t.Error("temporal refresh diverges from full re-mine")
	}
}

// TestRemineDirtyDoesNotMutatePrev: the previous maps — still serving
// live queries during a refresh — are never written.
func TestRemineDirtyDoesNotMutatePrev(t *testing.T) {
	col := testCollection(t)
	prevW := MineWindows(col, core.STLocalOptions{})
	frozen := make(map[int][]core.Window, len(prevW))
	for k, v := range prevW {
		frozen[k] = append([]core.Window(nil), v...)
	}
	dirty := appendTestBatch(t, col)
	if _, _, _, err := RemineDirtyParCtx(context.Background(), col, dirty,
		prevW, nil, nil, core.STLocalOptions{}, core.STCombOptions{}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if len(prevW) != len(frozen) {
		t.Fatal("refresh changed the previous map's size")
	}
	for k, v := range frozen {
		if !reflect.DeepEqual(prevW[k], v) {
			t.Fatalf("refresh mutated the previous windows of term %d", k)
		}
	}
}

// TestRemineDirtyCancel: a cancelled context aborts the pass.
func TestRemineDirtyCancel(t *testing.T) {
	col := testCollection(t)
	prevW := MineWindows(col, core.STLocalOptions{})
	dirty := appendTestBatch(t, col)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := RemineDirtyParCtx(ctx, col, dirty,
		prevW, nil, nil, core.STLocalOptions{}, core.STCombOptions{}, nil, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled re-mine = %v, want context.Canceled", err)
	}
}
