package search

import (
	"sort"
	"sync/atomic"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/par"
	"stburst/internal/stream"
)

// termsMined counts per-term miner invocations across all corpus-wide
// mining calls in the process. It exists so tests (and diagnostics) can
// assert that query paths backed by a pattern index never re-mine.
var termsMined atomic.Int64

// TermsMined returns the cumulative number of per-term mining invocations
// performed by the corpus-wide miners since process start.
func TermsMined() int64 { return termsMined.Load() }

// sortedCorpusTerms returns the collection's term IDs in ascending order,
// giving the batch miners a deterministic work list regardless of map
// iteration order.
func sortedCorpusTerms(col *stream.Collection) []int {
	terms := col.Terms()
	sort.Ints(terms)
	return terms
}

// mineAll fans the corpus vocabulary out across a bounded worker pool and
// assembles the per-term results into a map, dropping empty results. Each
// worker invocation mines one term through fn, which must be safe for
// concurrent use (the per-term miners are: every call builds private
// miner/baseline instances over a private frequency surface).
func mineAll[P any](col *stream.Collection, workers int, fn func(term int) []P) map[int][]P {
	terms := sortedCorpusTerms(col)
	results := make([][]P, len(terms))
	par.ForEach(len(terms), workers, func(i int) {
		termsMined.Add(1)
		results[i] = fn(terms[i])
	})
	out := make(map[int][]P, len(terms))
	for i, term := range terms {
		if len(results[i]) > 0 {
			out[term] = results[i]
		}
	}
	return out
}

// MineWindowsPar runs STLocal over every term of the collection with the
// given worker count (<1 means one worker per CPU) and returns the
// per-term maximal windows. Output is identical to MineWindows for every
// worker count: terms are mined independently, each on a private miner
// instance with baselines created through the options' factory.
func MineWindowsPar(col *stream.Collection, opts core.STLocalOptions, workers int) map[int][]core.Window {
	points := col.Points()
	return mineAll(col, workers, func(term int) []core.Window {
		ws, err := core.MineLocal(col.Surface(term), points, opts)
		if err != nil {
			// Surfaces are always well-formed here; an error indicates a
			// programming bug, not bad input.
			panic(err)
		}
		return ws
	})
}

// MineCombPatternsPar runs STComb over every term of the collection with
// the given worker count (<1 means one worker per CPU) and returns the
// per-term combinatorial patterns.
func MineCombPatternsPar(col *stream.Collection, opts core.STCombOptions, workers int) map[int][]core.CombPattern {
	return mineAll(col, workers, func(term int) []core.CombPattern {
		return core.STComb(col.Surface(term), opts)
	})
}

// MineTemporalPar extracts per-term temporal bursty intervals over the
// merged stream with the given detector (nil uses the discrepancy default)
// and worker count (<1 means one worker per CPU).
func MineTemporalPar(col *stream.Collection, det burst.Detector, workers int) map[int][]burst.Interval {
	if det == nil {
		det = burst.Discrepancy{}
	}
	return mineAll(col, workers, func(term int) []burst.Interval {
		return det.Detect(col.MergedSeries(term))
	})
}
