package search

import (
	"context"
	"sort"
	"sync/atomic"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/par"
	"stburst/internal/stream"
)

// termsMined counts per-term miner invocations across all corpus-wide
// mining calls in the process. It exists so tests (and diagnostics) can
// assert that query paths backed by a pattern index never re-mine.
var termsMined atomic.Int64

// TermsMined returns the cumulative number of per-term mining invocations
// performed by the corpus-wide miners since process start.
func TermsMined() int64 { return termsMined.Load() }

// sortedCorpusTerms returns the collection's term IDs in ascending order,
// giving the batch miners a deterministic work list regardless of map
// iteration order.
func sortedCorpusTerms(col *stream.Collection) []int {
	terms := col.Terms()
	sort.Ints(terms)
	return terms
}

// mineAll fans the corpus vocabulary out across a bounded worker pool and
// assembles the per-term results into a map, dropping empty results. Each
// worker invocation mines one term through fn, which must be safe for
// concurrent use (the per-term miners are: every call builds private
// miner/baseline instances over a private frequency surface). A cancelled
// context stops dispatching further terms and returns ctx.Err(); per-term
// mining already in flight runs to completion, so cancellation is prompt
// but never interrupts a miner mid-term.
func mineAll[P any](ctx context.Context, col *stream.Collection, workers int, fn func(term int) []P) (map[int][]P, error) {
	terms := sortedCorpusTerms(col)
	results := make([][]P, len(terms))
	if err := par.ForEachCtx(ctx, len(terms), workers, func(i int) {
		termsMined.Add(1)
		results[i] = fn(terms[i])
	}); err != nil {
		return nil, err
	}
	out := make(map[int][]P, len(terms))
	for i, term := range terms {
		if len(results[i]) > 0 {
			out[term] = results[i]
		}
	}
	return out, nil
}

// MineWindowsParCtx runs STLocal over every term of the collection with
// the given worker count (<1 means one worker per CPU) and returns the
// per-term maximal windows. Output is identical to MineWindows for every
// worker count: terms are mined independently, each on a private miner
// instance with baselines created through the options' factory. A
// cancelled context aborts the run with ctx.Err().
func MineWindowsParCtx(ctx context.Context, col *stream.Collection, opts core.STLocalOptions, workers int) (map[int][]core.Window, error) {
	points := col.Points()
	return mineAll(ctx, col, workers, func(term int) []core.Window {
		ws, err := core.MineLocal(col.Surface(term), points, opts)
		if err != nil {
			// Surfaces are always well-formed here; an error indicates a
			// programming bug, not bad input.
			panic(err)
		}
		return ws
	})
}

// MineWindowsPar is MineWindowsParCtx without cancellation.
func MineWindowsPar(col *stream.Collection, opts core.STLocalOptions, workers int) map[int][]core.Window {
	ws, _ := MineWindowsParCtx(context.Background(), col, opts, workers)
	return ws
}

// MineCombPatternsParCtx runs STComb over every term of the collection
// with the given worker count (<1 means one worker per CPU) and returns
// the per-term combinatorial patterns. A cancelled context aborts the run
// with ctx.Err().
func MineCombPatternsParCtx(ctx context.Context, col *stream.Collection, opts core.STCombOptions, workers int) (map[int][]core.CombPattern, error) {
	return mineAll(ctx, col, workers, func(term int) []core.CombPattern {
		return core.STComb(col.Surface(term), opts)
	})
}

// MineCombPatternsPar is MineCombPatternsParCtx without cancellation.
func MineCombPatternsPar(col *stream.Collection, opts core.STCombOptions, workers int) map[int][]core.CombPattern {
	ps, _ := MineCombPatternsParCtx(context.Background(), col, opts, workers)
	return ps
}

// MineTemporalParCtx extracts per-term temporal bursty intervals over the
// merged stream with the given detector (nil uses the discrepancy default)
// and worker count (<1 means one worker per CPU). A cancelled context
// aborts the run with ctx.Err().
func MineTemporalParCtx(ctx context.Context, col *stream.Collection, det burst.Detector, workers int) (map[int][]burst.Interval, error) {
	if det == nil {
		det = burst.Discrepancy{}
	}
	return mineAll(ctx, col, workers, func(term int) []burst.Interval {
		return det.Detect(col.MergedSeries(term))
	})
}

// MineTemporalPar is MineTemporalParCtx without cancellation.
func MineTemporalPar(col *stream.Collection, det burst.Detector, workers int) map[int][]burst.Interval {
	ivs, _ := MineTemporalParCtx(context.Background(), col, det, workers)
	return ivs
}

// MineAllKindsParCtx mines all three pattern kinds in a single pass: one
// bounded worker pool drains a (term, kind) work list of 3×|vocabulary|
// items, so a slow regional term overlaps with cheap temporal work
// instead of the three kinds running as separate sequential sweeps. The
// jobs interleave kinds (term-major) to keep the tail of the pass mixed.
// Output is bit-identical to running the three single-kind miners
// separately, for every worker count. A cancelled context aborts the
// pass with ctx.Err().
func MineAllKindsParCtx(ctx context.Context, col *stream.Collection, lopts core.STLocalOptions, copts core.STCombOptions, det burst.Detector, workers int) (map[int][]core.Window, map[int][]core.CombPattern, map[int][]burst.Interval, error) {
	if det == nil {
		det = burst.Discrepancy{}
	}
	terms := sortedCorpusTerms(col)
	points := col.Points()
	var (
		windows  = make([][]core.Window, len(terms))
		combs    = make([][]core.CombPattern, len(terms))
		temporal = make([][]burst.Interval, len(terms))
	)
	if err := par.ForEachCtx(ctx, 3*len(terms), workers, func(i int) {
		termsMined.Add(1)
		term := terms[i/3]
		switch i % 3 {
		case 0:
			ws, err := core.MineLocal(col.Surface(term), points, lopts)
			if err != nil {
				// Surfaces are always well-formed here; an error indicates
				// a programming bug, not bad input.
				panic(err)
			}
			windows[i/3] = ws
		case 1:
			combs[i/3] = core.STComb(col.Surface(term), copts)
		case 2:
			temporal[i/3] = det.Detect(col.MergedSeries(term))
		}
	}); err != nil {
		return nil, nil, nil, err
	}
	wOut := make(map[int][]core.Window, len(terms))
	cOut := make(map[int][]core.CombPattern, len(terms))
	tOut := make(map[int][]burst.Interval, len(terms))
	for i, term := range terms {
		if len(windows[i]) > 0 {
			wOut[term] = windows[i]
		}
		if len(combs[i]) > 0 {
			cOut[term] = combs[i]
		}
		if len(temporal[i]) > 0 {
			tOut[term] = temporal[i]
		}
	}
	return wOut, cOut, tOut, nil
}
