package search

import (
	"context"
	"sort"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/par"
	"stburst/internal/stream"
)

// RemineDirtyParCtx incrementally refreshes mined pattern maps after a
// Collection.Append: only the dirty terms — those whose frequency
// surfaces the append changed, including newly interned ones — are
// re-mined, and every clean term keeps its previous patterns untouched.
// Because each term is mined independently of every other (a term's
// windows, combinatorial patterns and temporal intervals depend only on
// its own surface), the result is bit-identical to a full re-mine of the
// whole vocabulary over the appended collection; the oracle tests assert
// fingerprint equality against MineAllKindsParCtx.
//
// One kind is re-mined per non-nil prev map (the resident set of a
// store need not hold all three); a nil prev map skips its kind and
// returns nil for it. The prev maps are never mutated: each refreshed
// map is a fresh shallow copy sharing the clean terms' pattern slices,
// so indexes built over the prev maps keep serving while the refresh
// runs. The dirty terms fan out across one shared bounded worker pool
// with a (term, kind) work list, exactly like the one-pass MineStore
// machinery; a cancelled context aborts the pass with ctx.Err().
func RemineDirtyParCtx(ctx context.Context, col *stream.Collection, dirty []int,
	prevW map[int][]core.Window, prevC map[int][]core.CombPattern, prevT map[int][]burst.Interval,
	lopts core.STLocalOptions, copts core.STCombOptions, det burst.Detector, workers int,
) (map[int][]core.Window, map[int][]core.CombPattern, map[int][]burst.Interval, error) {
	if det == nil {
		det = burst.Discrepancy{}
	}
	terms := append([]int(nil), dirty...)
	sort.Ints(terms) // deterministic work list regardless of caller order

	// The (term, kind) job list covers only the active kinds, term-major
	// so a slow regional term overlaps cheap temporal work.
	type mineKind int
	const (
		mineWindows mineKind = iota
		mineCombs
		mineTemporal
	)
	var active []mineKind
	if prevW != nil {
		active = append(active, mineWindows)
	}
	if prevC != nil {
		active = append(active, mineCombs)
	}
	if prevT != nil {
		active = append(active, mineTemporal)
	}
	if len(active) == 0 || len(terms) == 0 {
		// Nothing dirty or nothing resident: the previous maps are
		// already exact.
		return prevW, prevC, prevT, nil
	}

	points := col.Points()
	var (
		windows  = make([][]core.Window, len(terms))
		combs    = make([][]core.CombPattern, len(terms))
		temporal = make([][]burst.Interval, len(terms))
	)
	if err := par.ForEachCtx(ctx, len(active)*len(terms), workers, func(i int) {
		termsMined.Add(1)
		term := terms[i/len(active)]
		switch active[i%len(active)] {
		case mineWindows:
			ws, err := core.MineLocal(col.Surface(term), points, lopts)
			if err != nil {
				// Surfaces are always well-formed here; an error indicates
				// a programming bug, not bad input.
				panic(err)
			}
			windows[i/len(active)] = ws
		case mineCombs:
			combs[i/len(active)] = core.STComb(col.Surface(term), copts)
		case mineTemporal:
			temporal[i/len(active)] = det.Detect(col.MergedSeries(term))
		}
	}); err != nil {
		return nil, nil, nil, err
	}

	wOut := refresh(prevW, terms, windows)
	cOut := refresh(prevC, terms, combs)
	tOut := refresh(prevT, terms, temporal)
	return wOut, cOut, tOut, nil
}

// refresh builds the post-append pattern map for one kind: a shallow
// copy of prev with every dirty term's entry replaced by its re-mined
// patterns. Terms whose re-mine came back empty are dropped, matching
// the batch miners (which never store empty per-term results) — more
// data can dissolve a pattern as well as create one, e.g. by raising a
// term's baseline.
func refresh[P any](prev map[int][]P, terms []int, mined [][]P) map[int][]P {
	if prev == nil {
		return nil
	}
	out := make(map[int][]P, len(prev)+len(terms))
	for t, ps := range prev {
		out[t] = ps
	}
	for i, t := range terms {
		if len(mined[i]) > 0 {
			out[t] = mined[i]
		} else {
			delete(out, t)
		}
	}
	return out
}
