package search

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/geo"
	"stburst/internal/index"
)

// Timespan is an inclusive timeframe [Start, End] on the collection's
// discrete timeline.
type Timespan struct {
	Start, End int
}

// Overlaps reports whether the inclusive timeframe [start, end]
// intersects the span.
func (ts Timespan) Overlaps(start, end int) bool {
	return start <= ts.End && ts.Start <= end
}

// Query is a structured spatiotemporal search request. Terms takes
// precedence when non-empty; otherwise Text is tokenized with the
// engine's pipeline (mirroring the indexing side). Region and Span
// restrict hits to documents with a *contributing* pattern — one that
// overlaps the document for some query term — intersecting the given
// rectangle and/or timeframe (the pattern-overlap post-filter over
// Eq. 10/11 scoring). MinScore drops hits whose aggregate score falls
// below the threshold, and Offset/K window the surviving ranked list.
type Query struct {
	Text     string
	Terms    []int // pre-interned term IDs; overrides Text when non-empty
	Region   *geo.Rect
	Span     *Timespan
	K        int
	Offset   int
	MinScore float64
}

// Page is one window of a ranked result list.
type Page struct {
	Results []Result
	// More reports whether hits beyond this page exist (i.e. a request
	// with a larger Offset would return something).
	More bool
}

// fetchRounds counts TopK retrieval rounds across all Run calls in the
// process. It exists so tests can assert that pathological pages — an
// Offset pointing past the last possible hit — resolve without grinding
// the progressive fetch-doubling through the whole index.
var fetchRounds atomic.Int64

// FetchRounds returns the cumulative number of TopK retrieval rounds
// executed by Run since process start.
func FetchRounds() int64 { return fetchRounds.Load() }

// ErrNoPatternSet is returned for spatiotemporally filtered queries on an
// engine built from a bare Burstiness closure: without the pattern set
// there is nothing to intersect the filter against.
var ErrNoPatternSet = errors.New("search: engine was built without a pattern set; Region/Span filters require BuildFromPatterns")

// Run executes a structured query: top-k retrieval with the Threshold
// Algorithm, the pattern-overlap post-filter for Region/Span, MinScore
// thresholding and Offset/K pagination. The context is checked between
// retrieval rounds, so long queries are cancellable; a cancelled context
// returns ctx.Err(). An unknown query term yields an empty page (Eq. 10:
// a term with no patterns or documents zeroes the query), not an error.
func (e *Engine) Run(ctx context.Context, q Query) (Page, error) {
	if err := ctx.Err(); err != nil {
		return Page{}, err
	}
	if (q.Region != nil || q.Span != nil) && e.ps == nil {
		return Page{}, ErrNoPatternSet
	}
	if q.K <= 0 || q.Offset < 0 {
		return Page{}, nil
	}
	terms := q.Terms
	if len(terms) == 0 {
		for _, t := range e.tok.Tokenize(strings.ToLower(q.Text)) {
			id, ok := e.col.Dict().Lookup(t)
			if !ok {
				return Page{}, nil
			}
			terms = append(terms, id)
		}
	}
	if len(terms) == 0 {
		return Page{}, nil
	}

	pass := e.overlapFilter(terms, q.Region, q.Span)
	need := q.Offset + q.K
	if need < 0 {
		return Page{}, nil // K+Offset overflowed; nothing sane to page
	}
	// The shortest query term's posting list bounds the result set: an
	// Offset at or past it can never land on a hit, so the page is empty
	// (More=false) without a single retrieval round — previously such a
	// request ground through the progressive fetch-doubling until the
	// index was exhausted.
	bound := e.idx.CandidateBound(terms)
	if q.Offset >= bound {
		return Page{}, nil
	}
	// Fetch one hit beyond the page to learn whether more exist; with a
	// post-filter in play, double the fetch depth until enough hits
	// survive or the index is exhausted. Fetches never exceed the
	// candidate bound: a request for everything the index can possibly
	// hold completes in one round instead of doubling past it. The
	// capacity hint is bounded: K/Offset are caller-controlled
	// (unauthenticated over HTTP), and the slice should grow with actual
	// hits, not with the request's ambition.
	capHint := need + 1
	if capHint > 4096 {
		capHint = 4096
	}
	kept := make([]Result, 0, capHint)
	fetch := need + 1
	if fetch > bound {
		fetch = bound
	}
	for {
		if err := ctx.Err(); err != nil {
			return Page{}, err
		}
		fetchRounds.Add(1)
		rs := e.idx.TopK(terms, fetch, index.MissingExcludes)
		exhausted := len(rs) < fetch || fetch >= bound
		kept = kept[:0]
		for _, r := range rs {
			if r.Score < q.MinScore {
				// Results are score-descending: nothing below the
				// threshold can follow a qualifying hit.
				exhausted = true
				break
			}
			if pass != nil && !pass(r.Doc) {
				continue
			}
			kept = append(kept, Result{Doc: r.Doc, Score: r.Score})
			if len(kept) > need {
				break
			}
		}
		if len(kept) > need || exhausted {
			break
		}
		if fetch *= 2; fetch > bound {
			fetch = bound
		}
	}

	if q.Offset >= len(kept) {
		return Page{}, nil
	}
	end := q.Offset + q.K
	more := len(kept) > end
	if end > len(kept) {
		end = len(kept)
	}
	out := make([]Result, end-q.Offset)
	copy(out, kept[q.Offset:end])
	return Page{Results: out, More: more}, nil
}

// WindowIntersects reports whether a regional window intersects the
// filter: its rectangle meets the region and its timeframe meets the
// span (nil halves match everything). It is the single definition of
// "pattern intersects the filter" for the regional kind, shared by the
// engine's post-filter and the serving layer's pattern listings.
func WindowIntersects(w core.Window, region *geo.Rect, span *Timespan) bool {
	if region != nil && !w.Rect.Intersects(*region) {
		return false
	}
	return span == nil || span.Overlaps(w.Start, w.End)
}

// CombIntersects reports whether a combinatorial pattern intersects the
// filter: some member stream's location (points is the collection's
// stream-location table) lies inside the region, and the pattern's
// common segment meets the span.
func CombIntersects(p core.CombPattern, points []geo.Point, region *geo.Rect, span *Timespan) bool {
	if region != nil {
		inside := false
		for _, x := range p.Streams {
			if region.Contains(points[x]) {
				inside = true
				break
			}
		}
		if !inside {
			return false
		}
	}
	return span == nil || span.Overlaps(p.Start, p.End)
}

// TemporalIntersects reports whether a merged-stream temporal interval
// intersects the filter. Temporal intervals deliberately disregard
// geography, so they span the whole map and every region intersects
// them; only the span constrains.
func TemporalIntersects(iv burst.Interval, span *Timespan) bool {
	return span == nil || span.Overlaps(iv.Start, iv.End)
}

// overlapFilter returns the post-filter for a query: a document survives
// iff, for some query term, a pattern of that term both overlaps the
// document (the same overlap notion used at indexing time) and intersects
// the query region/timespan under the kind's Intersects predicate above.
// A nil filter means no restriction.
func (e *Engine) overlapFilter(terms []int, region *geo.Rect, span *Timespan) func(doc int) bool {
	if region == nil && span == nil {
		return nil
	}
	return func(doc int) bool {
		d := e.col.Doc(doc)
		for _, t := range terms {
			switch e.ps.Kind() {
			case index.KindRegional:
				for _, w := range e.ps.Windows(t) {
					if w.Overlaps(d.Stream, d.Time) && WindowIntersects(w, region, span) {
						return true
					}
				}
			case index.KindCombinatorial:
				for _, p := range e.ps.Combs(t) {
					if p.OverlapsMember(d.Stream, d.Time) && CombIntersects(p, e.points, region, span) {
						return true
					}
				}
			case index.KindTemporal:
				for _, iv := range e.ps.Temporal(t) {
					if d.Time >= iv.Start && d.Time <= iv.End && TemporalIntersects(iv, span) {
						return true
					}
				}
			}
		}
		return false
	}
}
