// Package search implements the bursty-document search engine of §5 of
// the paper and the corpus-wide batch miners that feed it.
//
// # Scoring and retrieval
//
// Documents are scored per query term as relevance × burstiness (Eq. 10),
// where relevance is log(freq(t,d)+1) — the choice the paper found to
// work best — and burstiness is the maximum score of the mined
// spatiotemporal patterns of t that the document overlaps (Eq. 11, again
// the paper's best-performing aggregate f). Top-k retrieval runs on an
// inverted index via the Threshold Algorithm (internal/index).
//
// An Engine is built against one pattern type at a time (the paper: "a
// separate instance is required for each type"): regional windows
// (STLocal), combinatorial patterns (STComb), or purely temporal bursty
// intervals with all streams merged (the TB comparison engine of §6.3).
// The Burstiness adapters (WindowBurstiness, CombBurstiness,
// TemporalBurstiness, and the kind-dispatching PatternBurstiness) bridge
// mined pattern stores to the engine builder; BuildFromPatterns is the
// path that consults an existing index.PatternSet instead of re-mining.
//
// # Corpus-wide batch mining
//
// MineWindowsPar, MineCombPatternsPar and MineTemporalPar mine the entire
// vocabulary across a bounded worker pool (internal/par): the term list
// is sorted into a deterministic work list, each worker mines one term at
// a time on private miner instances over private frequency surfaces, and
// results land in index-addressed slots — so the assembled per-term maps
// are bit-identical for every worker count, and (because nothing depends
// on map iteration or the process hash seed) across runs and processes.
// TermsMined counts per-term miner invocations so tests can assert that
// index-backed query paths never re-mine.
package search
