// Package search implements the bursty-document search engine of §5 of
// the paper and the corpus-wide batch miners that feed it.
//
// # Scoring and retrieval
//
// Documents are scored per query term as relevance × burstiness (Eq. 10),
// where relevance is log(freq(t,d)+1) — the choice the paper found to
// work best — and burstiness is the maximum score of the mined
// spatiotemporal patterns of t that the document overlaps (Eq. 11, again
// the paper's best-performing aggregate f). Top-k retrieval runs on an
// inverted index via the Threshold Algorithm (internal/index).
//
// An Engine is built against one pattern type at a time (the paper: "a
// separate instance is required for each type"): regional windows
// (STLocal), combinatorial patterns (STComb), or purely temporal bursty
// intervals with all streams merged (the TB comparison engine of §6.3).
// The Burstiness adapters (WindowBurstiness, CombBurstiness,
// TemporalBurstiness, and the kind-dispatching PatternBurstiness) bridge
// mined pattern stores to the engine builder; BuildFromPatterns is the
// path that consults an existing index.PatternSet instead of re-mining,
// and the only path that retains the set for filtered queries.
//
// # Structured queries
//
// Engine.Run executes a Query: term resolution, TA retrieval, the
// spatiotemporal pattern-overlap post-filter (a hit survives only if a
// contributing pattern of some query term intersects the query Region
// and/or Span), MinScore thresholding and Offset/K pagination, with the
// context checked between retrieval rounds so long queries cancel
// promptly. Engine.Query remains the plain free-text top-k entry point
// and is byte-identical to an unfiltered Run.
//
// # Corpus-wide batch mining
//
// MineWindowsParCtx, MineCombPatternsParCtx and MineTemporalParCtx (and
// their non-cancellable *Par wrappers) mine the entire vocabulary across
// a bounded worker pool (internal/par): the term list is sorted into a
// deterministic work list, each worker mines one term at a time on
// private miner instances over private frequency surfaces, and results
// land in index-addressed slots — so the assembled per-term maps are
// bit-identical for every worker count, and (because nothing depends on
// map iteration or the process hash seed) across runs and processes. A
// cancelled context stops dispatching terms and surfaces ctx.Err().
// TermsMined counts per-term miner invocations so tests can assert that
// index-backed query paths never re-mine.
package search
