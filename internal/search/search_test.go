package search

import (
	"math"
	"testing"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/geo"
	"stburst/internal/interval"
	"stburst/internal/stream"
)

// testCollection builds a small two-country corpus with a localized burst
// of "quake" in country A during weeks 2-3, plus ambient mentions of
// "quake" in country B.
func testCollection(t *testing.T) *stream.Collection {
	t.Helper()
	infos := []stream.Info{
		{Name: "A", Location: geo.Point{X: 0, Y: 0}},
		{Name: "B", Location: geo.Point{X: 100, Y: 100}},
	}
	col := stream.NewCollection(infos, 6)
	add := func(s, w int, tokens ...string) int {
		id, err := col.AddTokens(s, w, tokens)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	for w := 0; w < 6; w++ {
		add(0, w, "local", "news", "report")
		add(1, w, "world", "news", "report")
	}
	// The burst: many quake docs in A at weeks 2-3.
	for i := 0; i < 5; i++ {
		add(0, 2, "quake", "quake", "damage")
		add(0, 3, "quake", "rescue")
	}
	// Ambient: a single quake mention in B at week 2 (unrelated usage).
	add(1, 2, "quake", "metaphor")
	return col
}

func docIDs(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Doc
	}
	return out
}

func TestEngineSTLocalFiltersBySpace(t *testing.T) {
	col := testCollection(t)
	windows := MineWindows(col, core.STLocalOptions{})
	quake, _ := col.Dict().Lookup("quake")
	if len(windows[quake]) == 0 {
		t.Fatal("no windows mined for quake")
	}
	eng := Build(col, WindowBurstiness(windows))
	rs := eng.Query("quake", 10)
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rs {
		d := col.Doc(r.Doc)
		if d.Stream != 0 {
			t.Fatalf("STLocal engine returned doc from far stream %d: %+v", d.Stream, d)
		}
	}
}

func TestEngineScoresDescend(t *testing.T) {
	col := testCollection(t)
	eng := Build(col, WindowBurstiness(MineWindows(col, core.STLocalOptions{})))
	rs := eng.Query("quake", 10)
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatalf("scores not descending: %+v", rs)
		}
	}
}

func TestEngineTBIgnoresSpace(t *testing.T) {
	col := testCollection(t)
	temporal := MineTemporal(col, nil)
	eng := Build(col, TemporalBurstiness(temporal))
	rs := eng.Query("quake", 20)
	if len(rs) == 0 {
		t.Fatal("no TB results")
	}
	// TB must include the ambient week-2 document from stream B, because
	// it only checks timestamps.
	foundFar := false
	for _, r := range rs {
		if col.Doc(r.Doc).Stream == 1 {
			foundFar = true
		}
	}
	if !foundFar {
		t.Fatal("TB engine should not filter by stream")
	}
}

func TestEngineCombPatterns(t *testing.T) {
	col := testCollection(t)
	patterns := MineCombPatterns(col, core.STCombOptions{})
	quake, _ := col.Dict().Lookup("quake")
	if len(patterns[quake]) == 0 {
		t.Fatal("no STComb patterns for quake")
	}
	eng := Build(col, CombBurstiness(patterns))
	rs := eng.Query("quake", 10)
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	// All results must overlap the pattern temporally.
	for _, r := range rs {
		d := col.Doc(r.Doc)
		if d.Time < 2 || d.Time > 3 {
			t.Fatalf("result outside burst timeframe: %+v", d)
		}
	}
}

func TestEngineUnknownTerm(t *testing.T) {
	col := testCollection(t)
	eng := Build(col, WindowBurstiness(MineWindows(col, core.STLocalOptions{})))
	if rs := eng.Query("nonexistent", 5); rs != nil {
		t.Fatalf("unknown term: got %v", rs)
	}
	if rs := eng.Query("", 5); rs != nil {
		t.Fatalf("empty query: got %v", rs)
	}
}

func TestEngineMultiTermConjunction(t *testing.T) {
	col := testCollection(t)
	eng := Build(col, WindowBurstiness(MineWindows(col, core.STLocalOptions{})))
	// "quake damage" must only return docs overlapping patterns of both.
	rs := eng.Query("quake damage", 10)
	for _, r := range rs {
		d := col.Doc(r.Doc)
		if d.Time != 2 {
			t.Fatalf("conjunctive result outside joint burst: %+v", d)
		}
	}
}

func TestBurstinessAdapters(t *testing.T) {
	w := core.Window{
		Rect:    geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		Streams: []int{0},
		Start:   2, End: 3, Score: 5,
	}
	wb := WindowBurstiness(map[int][]core.Window{7: {w}})
	if s, ok := wb(7, 0, 2); !ok || s != 5 {
		t.Fatalf("window overlap: (%v,%v)", s, ok)
	}
	if _, ok := wb(7, 1, 2); ok {
		t.Fatal("wrong stream should not overlap")
	}
	if _, ok := wb(8, 0, 2); ok {
		t.Fatal("wrong term should not overlap")
	}

	p := core.CombPattern{
		Streams: []int{1, 3}, Start: 0, End: 4, Score: 2,
		Intervals: []interval.Interval{
			{Start: 0, End: 4, Stream: 1},
			{Start: 0, End: 6, Stream: 3},
		},
	}
	cb := CombBurstiness(map[int][]core.CombPattern{7: {p}})
	if s, ok := cb(7, 3, 4); !ok || s != 2 {
		t.Fatalf("comb overlap: (%v,%v)", s, ok)
	}
	if _, ok := cb(7, 2, 4); ok {
		t.Fatal("non-member stream should not overlap")
	}
	// Member overlap extends beyond the common segment through the
	// member's own interval.
	if s, ok := cb(7, 3, 6); !ok || s != 2 {
		t.Fatalf("member-interval overlap: (%v,%v)", s, ok)
	}
	if _, ok := cb(7, 1, 6); ok {
		t.Fatal("outside the member's own interval should not overlap")
	}

	tb := TemporalBurstiness(map[int][]burst.Interval{7: {{Start: 1, End: 2, Score: 0.4}}})
	if s, ok := tb(7, 99, 1); !ok || s != 0.4 {
		t.Fatalf("temporal overlap: (%v,%v)", s, ok)
	}
	if _, ok := tb(7, 0, 3); ok {
		t.Fatal("outside interval should not overlap")
	}
}

func TestBurstinessMaxAggregation(t *testing.T) {
	// Eq. 11 with f = max: overlapping several patterns yields the
	// highest score.
	ws := []core.Window{
		{Rect: geo.Rect{MaxX: 10, MaxY: 10}, Streams: []int{0}, Start: 0, End: 9, Score: 1},
		{Rect: geo.Rect{MaxX: 10, MaxY: 10}, Streams: []int{0}, Start: 2, End: 4, Score: 7},
	}
	wb := WindowBurstiness(map[int][]core.Window{0: ws})
	if s, _ := wb(0, 0, 3); s != 7 {
		t.Fatalf("max aggregation: got %v, want 7", s)
	}
}

func TestEngineRelevanceWeighting(t *testing.T) {
	// Two docs in the same pattern: the one with higher term frequency
	// must rank first (relevance = log(freq+1)).
	infos := []stream.Info{{Name: "A", Location: geo.Point{X: 0, Y: 0}}}
	col := stream.NewCollection(infos, 4)
	lo, err := col.AddTokens(0, 1, []string{"quake"})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := col.AddTokens(0, 1, []string{"quake", "quake", "quake"})
	if err != nil {
		t.Fatal(err)
	}
	quake, _ := col.Dict().Lookup("quake")
	b := func(term, s, i int) (float64, bool) {
		if term == quake && i == 1 {
			return 2, true
		}
		return math.Inf(-1), false
	}
	eng := Build(col, b)
	rs := eng.Query("quake", 2)
	if len(rs) != 2 || rs[0].Doc != hi || rs[1].Doc != lo {
		t.Fatalf("got %+v, want hi=%d first then lo=%d", rs, hi, lo)
	}
}

func TestMineWindowsSkipsQuietTerms(t *testing.T) {
	col := testCollection(t)
	windows := MineWindows(col, core.STLocalOptions{})
	// Terms present at constant rate everywhere ("news") should have no
	// or only weak windows; the map must not contain empty entries.
	for term, ws := range windows {
		if len(ws) == 0 {
			t.Fatalf("empty window list stored for term %d", term)
		}
	}
	_ = docIDs // silence unused helper when tests are filtered
}
