package search

import (
	"context"
	"errors"
	"math/bits"
	"reflect"
	"testing"

	"stburst/internal/core"
	"stburst/internal/geo"
	"stburst/internal/index"
)

// stlocalEngine builds a pattern-set-backed STLocal engine over the
// shared test collection.
func stlocalEngine(t *testing.T) *Engine {
	t.Helper()
	col := testCollection(t)
	return BuildFromPatterns(col, index.NewWindowSet(MineWindows(col, core.STLocalOptions{})))
}

// TestRunMatchesQuery: an unfiltered Run is the Query path with
// pagination metadata.
func TestRunMatchesQuery(t *testing.T) {
	e := stlocalEngine(t)
	for _, q := range []string{"quake", "quake damage", "nosuchterm"} {
		for _, k := range []int{1, 3, 100} {
			legacy := e.Query(q, k)
			page, err := e.Run(context.Background(), Query{Text: q, K: k})
			if err != nil {
				t.Fatalf("Run(%q, %d): %v", q, k, err)
			}
			got := page.Results
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(legacy, got) {
				t.Errorf("Run(%q, %d) diverges from Query: %v vs %v", q, k, legacy, got)
			}
		}
	}
}

// TestRunRegionFilter: the post-filter keeps exactly the unfiltered hits
// with a contributing window intersecting the region (brute-force
// oracle; note a window may span streams far outside the region — any
// intersecting contributor keeps the hit).
func TestRunRegionFilter(t *testing.T) {
	e := stlocalEngine(t)
	term, ok := e.col.Dict().Lookup("quake")
	if !ok {
		t.Fatal("quake not interned")
	}
	all, err := e.Run(context.Background(), Query{Text: "quake", K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Results) == 0 {
		t.Fatal("no unfiltered hits")
	}
	for _, region := range []geo.Rect{
		{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1},
		{MinX: 99, MinY: 99, MaxX: 101, MaxY: 101},
		{MinX: 40, MinY: 40, MaxX: 60, MaxY: 60},
		{MinX: -10, MinY: -10, MaxX: -5, MaxY: -5},
	} {
		var want []Result
		for _, r := range all.Results {
			d := e.col.Doc(r.Doc)
			for _, w := range e.ps.Windows(term) {
				if w.Overlaps(d.Stream, d.Time) && w.Rect.Intersects(region) {
					want = append(want, r)
					break
				}
			}
		}
		page, err := e.Run(context.Background(), Query{Text: "quake", K: 100, Region: &region})
		if err != nil {
			t.Fatal(err)
		}
		got := page.Results
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("region %v: got %d hits, brute force wants %d", region, len(got), len(want))
		}
	}
}

// TestRunSpanFilter: the temporal filter requires a contributing pattern
// intersecting the span — not merely a document inside it.
func TestRunSpanFilter(t *testing.T) {
	e := stlocalEngine(t)
	burst := Timespan{Start: 2, End: 3}
	page, err := e.Run(context.Background(), Query{Text: "quake", K: 100, Span: &burst})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) == 0 {
		t.Fatal("span over the burst matched nothing")
	}
	outside := Timespan{Start: 5, End: 5}
	page, err = e.Run(context.Background(), Query{Text: "quake", K: 100, Span: &outside})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != 0 {
		t.Errorf("span outside every pattern matched %d hits", len(page.Results))
	}
}

// TestRunOffsetPastLastHit is the regression test for the pathological
// page: an Offset at or beyond the shortest query term's posting list
// can never land on a hit, so Run must answer an empty page with
// More=false without a single retrieval round — previously it ground
// the progressive fetch-doubling through the whole index. An Offset
// past the last hit but within the bound must still resolve in one
// round when no post-filter starves the page.
func TestRunOffsetPastLastHit(t *testing.T) {
	e := stlocalEngine(t)
	term, ok := e.col.Dict().Lookup("quake")
	if !ok {
		t.Fatal("no quake term")
	}
	bound := e.idx.CandidateBound([]int{term})
	if bound == 0 {
		t.Fatal("quake has no postings")
	}

	// Way past every possible hit, filtered and unfiltered: zero rounds.
	region := geo.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}
	for _, q := range []Query{
		{Terms: []int{term}, K: 10, Offset: bound},
		{Terms: []int{term}, K: 10, Offset: 1 << 20},
		{Terms: []int{term}, K: 10, Offset: bound, Region: &region},
	} {
		before := FetchRounds()
		page, err := e.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("Run(offset %d): %v", q.Offset, err)
		}
		if len(page.Results) != 0 || page.More {
			t.Errorf("offset %d: page = %d hits, more=%v; want empty, false", q.Offset, len(page.Results), page.More)
		}
		if rounds := FetchRounds() - before; rounds != 0 {
			t.Errorf("offset %d: %d fetch rounds, want 0 (the candidate bound answers it)", q.Offset, rounds)
		}
	}

	// Just past the last actual hit (but inside the bound): one round.
	full, err := e.Run(context.Background(), Query{Terms: []int{term}, K: bound})
	if err != nil {
		t.Fatal(err)
	}
	hits := len(full.Results)
	if hits == 0 || hits > bound {
		t.Fatalf("full fetch returned %d hits (bound %d)", hits, bound)
	}
	if hits < bound {
		before := FetchRounds()
		page, err := e.Run(context.Background(), Query{Terms: []int{term}, K: 10, Offset: hits})
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Results) != 0 || page.More {
			t.Errorf("offset at last hit: page = %d hits, more=%v; want empty, false", len(page.Results), page.More)
		}
		if rounds := FetchRounds() - before; rounds != 1 {
			t.Errorf("offset at last hit took %d fetch rounds, want 1", rounds)
		}
	}
}

// TestRunFetchCappedAtBound: even a starving post-filter never doubles
// the fetch beyond the candidate bound — one bound-sized round is the
// worst case once the doubling reaches it.
func TestRunFetchCappedAtBound(t *testing.T) {
	e := stlocalEngine(t)
	term, ok := e.col.Dict().Lookup("quake")
	if !ok {
		t.Fatal("no quake term")
	}
	bound := e.idx.CandidateBound([]int{term})
	// A region intersecting nothing starves every page.
	region := geo.Rect{MinX: 900, MinY: 900, MaxX: 901, MaxY: 901}
	before := FetchRounds()
	page, err := e.Run(context.Background(), Query{Terms: []int{term}, K: 1, Offset: 0, Region: &region})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != 0 || page.More {
		t.Errorf("starved page = %d hits, more=%v", len(page.Results), page.More)
	}
	// fetch starts at K+1=2 and doubles to the bound: at most
	// ceil(log2(bound)) + 1 rounds, and never more than bound rounds.
	if rounds := FetchRounds() - before; rounds > int64(bits.Len(uint(bound)))+1 {
		t.Errorf("starved query took %d fetch rounds for bound %d", rounds, bound)
	}
}

// TestRunWithoutPatternSet: engines built from a bare Burstiness closure
// reject filtered queries but answer plain ones.
func TestRunWithoutPatternSet(t *testing.T) {
	col := testCollection(t)
	e := Build(col, WindowBurstiness(MineWindows(col, core.STLocalOptions{})))
	if _, err := e.Run(context.Background(), Query{Text: "quake", K: 5}); err != nil {
		t.Fatalf("plain Run on a closure-built engine: %v", err)
	}
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	if _, err := e.Run(context.Background(), Query{Text: "quake", K: 5, Region: &r}); !errors.Is(err, ErrNoPatternSet) {
		t.Fatalf("filtered Run on a closure-built engine: err = %v, want ErrNoPatternSet", err)
	}
}

// TestRunCancelledContext: cancellation is observed before retrieval.
func TestRunCancelledContext(t *testing.T) {
	e := stlocalEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, Query{Text: "quake", K: 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMineCtxCancelled: the ctx-aware corpus miners abort with ctx.Err().
func TestMineCtxCancelled(t *testing.T) {
	col := testCollection(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineWindowsParCtx(ctx, col, core.STLocalOptions{}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineWindowsParCtx: err = %v, want context.Canceled", err)
	}
	if _, err := MineCombPatternsParCtx(ctx, col, core.STCombOptions{}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineCombPatternsParCtx: err = %v, want context.Canceled", err)
	}
	if _, err := MineTemporalParCtx(ctx, col, nil, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineTemporalParCtx: err = %v, want context.Canceled", err)
	}
}
