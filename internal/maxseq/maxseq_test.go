package maxseq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func segsEqual(a, b []Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End {
			return false
		}
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

func TestMaximalsEmpty(t *testing.T) {
	if got := Maximals(nil); got != nil {
		t.Fatalf("Maximals(nil) = %v, want nil", got)
	}
	if got := Maximals([]float64{}); got != nil {
		t.Fatalf("Maximals(empty) = %v, want nil", got)
	}
}

func TestMaximalsAllNegative(t *testing.T) {
	if got := Maximals([]float64{-1, -2, -0.5}); got != nil {
		t.Fatalf("all-negative input should yield no segments, got %v", got)
	}
}

func TestMaximalsAllZero(t *testing.T) {
	if got := Maximals([]float64{0, 0, 0}); got != nil {
		t.Fatalf("all-zero input should yield no segments, got %v", got)
	}
}

func TestMaximalsSinglePositive(t *testing.T) {
	got := Maximals([]float64{3.5})
	want := []Segment{{Start: 0, End: 1, Score: 3.5}}
	if !segsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMaximalsRuzzoTompaPaperExample(t *testing.T) {
	// Example from Ruzzo & Tompa (1999): the sequence
	// (4, -5, 3, -3, 1, 2, -2, 2, -2, 1, 5) has maximal segments
	// (4), (3), (1,2,-2,2,-2,1,5) with scores 4, 3, 7.
	scores := []float64{4, -5, 3, -3, 1, 2, -2, 2, -2, 1, 5}
	got := Maximals(scores)
	want := []Segment{
		{Start: 0, End: 1, Score: 4},
		{Start: 2, End: 3, Score: 3},
		{Start: 4, End: 11, Score: 7},
	}
	if !segsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMaximalsMergesAcrossDip(t *testing.T) {
	// A small dip between two strong runs must be bridged.
	scores := []float64{5, -1, 5}
	got := Maximals(scores)
	want := []Segment{{Start: 0, End: 3, Score: 9}}
	if !segsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMaximalsKeepsSeparatedRuns(t *testing.T) {
	// A deep dip must keep the runs apart.
	scores := []float64{5, -100, 5}
	got := Maximals(scores)
	want := []Segment{
		{Start: 0, End: 1, Score: 5},
		{Start: 2, End: 3, Score: 5},
	}
	if !segsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMaximalsLeadingTrailingNegatives(t *testing.T) {
	scores := []float64{-2, 1, 1, -2}
	got := Maximals(scores)
	want := []Segment{{Start: 1, End: 3, Score: 2}}
	if !segsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMaximalsMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(14)
		scores := make([]float64, n)
		for i := range scores {
			// Small integer scores avoid ties from float noise while
			// still exercising zero and negative values.
			scores[i] = float64(rng.Intn(9) - 4)
		}
		got := Maximals(scores)
		want := MaximalsBrute(scores)
		if !segsEqual(got, want) {
			t.Fatalf("scores %v:\n got %v\nwant %v", scores, got, want)
		}
	}
}

func TestRuzzoTompaOnlineMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		n := rng.Intn(40)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		var rt RuzzoTompa
		for _, s := range scores {
			rt.Add(s)
		}
		if !segsEqual(rt.Maximals(), Maximals(scores)) {
			t.Fatalf("online and offline disagree on %v", scores)
		}
	}
}

// Property: maximal segments are pairwise disjoint, ordered, positive-score,
// and within bounds.
func TestMaximalsInvariants(t *testing.T) {
	f := func(raw []int8) bool {
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v) / 4
		}
		segs := Maximals(scores)
		prevEnd := -1
		for _, s := range segs {
			if s.Start < 0 || s.End > len(scores) || s.Start >= s.End {
				return false
			}
			if s.Start < prevEnd {
				return false // overlap or out of order
			}
			if s.Score <= 0 {
				return false
			}
			var sum float64
			for i := s.Start; i < s.End; i++ {
				sum += scores[i]
			}
			if math.Abs(sum-s.Score) > 1e-6 {
				return false
			}
			prevEnd = s.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: every maximal segment begins and ends with a positive score.
func TestMaximalsBoundariesPositive(t *testing.T) {
	f := func(raw []int8) bool {
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v)
		}
		for _, s := range Maximals(scores) {
			if scores[s.Start] <= 0 || scores[s.End-1] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRuzzoTompaTotal(t *testing.T) {
	var rt RuzzoTompa
	rt.AddAll([]float64{1, -3, 0.5})
	if got, want := rt.Total(), -1.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	if got := rt.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestRuzzoTompaBest(t *testing.T) {
	var rt RuzzoTompa
	if _, ok := rt.Best(); ok {
		t.Fatal("Best on empty sequence should report false")
	}
	rt.AddAll([]float64{-1, -1})
	if _, ok := rt.Best(); ok {
		t.Fatal("Best with no positive scores should report false")
	}
	rt.AddAll([]float64{2, -5, 7})
	best, ok := rt.Best()
	if !ok {
		t.Fatal("Best should report true after positive scores")
	}
	want := Segment{Start: 4, End: 5, Score: 7}
	if best != want {
		t.Fatalf("Best = %v, want %v", best, want)
	}
}

func TestRuzzoTompaReset(t *testing.T) {
	var rt RuzzoTompa
	rt.AddAll([]float64{1, 2, 3})
	rt.Reset()
	if rt.Len() != 0 || rt.Total() != 0 || rt.Maximals() != nil {
		t.Fatalf("Reset did not clear state: len=%d total=%v maximals=%v",
			rt.Len(), rt.Total(), rt.Maximals())
	}
	rt.Add(1)
	want := []Segment{{Start: 0, End: 1, Score: 1}}
	if !segsEqual(rt.Maximals(), want) {
		t.Fatalf("after Reset+Add got %v, want %v", rt.Maximals(), want)
	}
}

func TestMaxSubarrayEmpty(t *testing.T) {
	if _, ok := MaxSubarray(nil); ok {
		t.Fatal("MaxSubarray(nil) should report false")
	}
}

func TestMaxSubarrayAllNegative(t *testing.T) {
	seg, ok := MaxSubarray([]float64{-3, -1, -2})
	if !ok {
		t.Fatal("expected ok")
	}
	want := Segment{Start: 1, End: 2, Score: -1}
	if seg != want {
		t.Fatalf("got %v, want %v", seg, want)
	}
}

func TestMaxSubarrayClassic(t *testing.T) {
	seg, ok := MaxSubarray([]float64{-2, 1, -3, 4, -1, 2, 1, -5, 4})
	if !ok {
		t.Fatal("expected ok")
	}
	if seg.Score != 6 || seg.Start != 3 || seg.End != 7 {
		t.Fatalf("got %+v, want score 6 over [3,7)", seg)
	}
}

func TestMaxSubarrayMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(20)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(21) - 10)
		}
		got, _ := MaxSubarray(scores)
		best := math.Inf(-1)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := i; j < n; j++ {
				sum += scores[j]
				if sum > best {
					best = sum
				}
			}
		}
		if math.Abs(got.Score-best) > 1e-9 {
			t.Fatalf("scores %v: got %v want %v", scores, got.Score, best)
		}
	}
}

func TestMaxSubarrayHandlesNegInf(t *testing.T) {
	// -Inf blockers (used by R-Bursty to forbid already-reported streams)
	// must never be bridged.
	ninf := math.Inf(-1)
	seg, ok := MaxSubarray([]float64{2, ninf, 3})
	if !ok {
		t.Fatal("expected ok")
	}
	want := Segment{Start: 2, End: 3, Score: 3}
	if seg != want {
		t.Fatalf("got %v, want %v", seg, want)
	}
}

func TestSegmentLen(t *testing.T) {
	if got := (Segment{Start: 2, End: 7}).Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
}

func BenchmarkMaximals(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	scores := make([]float64, 10000)
	for i := range scores {
		scores[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Maximals(scores)
	}
}
