// Package maxseq implements algorithms over real-valued score sequences:
// the Ruzzo–Tompa linear-time algorithm for finding all maximal scoring
// subsequences (both offline and online variants), and Kadane-style
// maximum-subarray primitives.
//
// These are the 1-D engines underneath the paper's burst machinery:
// temporal bursty-interval extraction (Lappas et al., KDD'09) reduces to
// all-maximal-segments over discrepancy weights, and STLocal (Algorithm 2 of
// the VLDB'12 paper) maintains maximal spatiotemporal windows by feeding
// per-timestamp rectangle scores into the online variant (the paper's
// "GetMax", Appendix C).
package maxseq

// Segment is a contiguous subsequence [Start, End) of a score sequence
// together with the sum of the scores it spans.
type Segment struct {
	Start int     // inclusive index of the first score
	End   int     // exclusive index one past the last score
	Score float64 // sum of scores in [Start, End)
}

// Len returns the number of scores spanned by the segment.
func (s Segment) Len() int { return s.End - s.Start }

// candidate is an internal Ruzzo–Tompa candidate segment. L is the
// cumulative score strictly before the segment's leftmost element; R is the
// cumulative score through the segment's rightmost element (inclusive).
type candidate struct {
	start, end int
	l, r       float64
}

// RuzzoTompa incrementally maintains the set of maximal scoring
// subsequences of a growing sequence of real-valued scores, in amortized
// O(1) time per appended score. It is the online "GetMax" of the paper's
// Appendix C.
//
// The zero value is ready to use.
type RuzzoTompa struct {
	stack []candidate // candidate segments, in left-to-right order
	cum   float64     // cumulative sum of all scores appended so far
	n     int         // number of scores appended so far
}

// Add appends one score to the sequence and updates the candidate list.
func (rt *RuzzoTompa) Add(score float64) {
	idx := rt.n
	rt.n++
	rt.cum += score
	if score <= 0 {
		// Non-positive scores require no special handling; they only
		// advance the cumulative sum.
		return
	}
	k := candidate{start: idx, end: idx + 1, l: rt.cum - score, r: rt.cum}
	for {
		// Step 1: search the list from right to left for the maximum j
		// with l_j < l_k.
		j := len(rt.stack) - 1
		for j >= 0 && rt.stack[j].l >= k.l {
			j--
		}
		if j < 0 || rt.stack[j].r >= k.r {
			// Step 2a: no such j, or r_j >= r_k: append I_k.
			rt.stack = append(rt.stack, k)
			return
		}
		// Step 2b: extend I_k left to the leftmost score of I_j and
		// remove candidates j..end, then reconsider the merged segment.
		k.start = rt.stack[j].start
		k.l = rt.stack[j].l
		rt.stack = rt.stack[:j]
	}
}

// AddAll appends every score in order.
func (rt *RuzzoTompa) AddAll(scores []float64) {
	for _, s := range scores {
		rt.Add(s)
	}
}

// Len returns the number of scores appended so far.
func (rt *RuzzoTompa) Len() int { return rt.n }

// Total returns the sum of all scores appended so far. STLocal drops a
// region's sequence once Total goes negative (no maximal segment can have a
// suffix of the sequence as its prefix at that point).
func (rt *RuzzoTompa) Total() float64 { return rt.cum }

// Maximals returns the maximal scoring subsequences of the scores appended
// so far, in left-to-right order. Each has a strictly positive score and
// the segments are pairwise disjoint.
func (rt *RuzzoTompa) Maximals() []Segment {
	if len(rt.stack) == 0 {
		return nil
	}
	out := make([]Segment, len(rt.stack))
	for i, c := range rt.stack {
		out[i] = Segment{Start: c.start, End: c.end, Score: c.r - c.l}
	}
	return out
}

// Best returns the highest-scoring maximal segment appended so far and
// reports whether any exists (there is none until a positive score has been
// appended). Ties are broken toward the earliest segment.
func (rt *RuzzoTompa) Best() (Segment, bool) {
	if len(rt.stack) == 0 {
		return Segment{}, false
	}
	best := rt.stack[0]
	for _, c := range rt.stack[1:] {
		if c.r-c.l > best.r-best.l {
			best = c
		}
	}
	return Segment{Start: best.start, End: best.end, Score: best.r - best.l}, true
}

// Reset restores the receiver to its zero state, retaining allocated
// capacity.
func (rt *RuzzoTompa) Reset() {
	rt.stack = rt.stack[:0]
	rt.cum = 0
	rt.n = 0
}

// Maximals returns all maximal scoring subsequences of scores in
// left-to-right order, in O(len(scores)) time. It is the offline
// Ruzzo–Tompa algorithm.
func Maximals(scores []float64) []Segment {
	var rt RuzzoTompa
	rt.AddAll(scores)
	return rt.Maximals()
}

// MaxSubarray returns the maximum-sum contiguous non-empty subarray of
// scores (Kadane's algorithm) and reports whether scores is non-empty.
// If every score is negative the single largest element is returned.
func MaxSubarray(scores []float64) (Segment, bool) {
	if len(scores) == 0 {
		return Segment{}, false
	}
	best := Segment{Start: 0, End: 1, Score: scores[0]}
	cur := Segment{Start: 0, End: 1, Score: scores[0]}
	for i := 1; i < len(scores); i++ {
		if cur.Score < 0 {
			cur = Segment{Start: i, End: i + 1, Score: scores[i]}
		} else {
			cur.End = i + 1
			cur.Score += scores[i]
		}
		if cur.Score > best.Score {
			best = cur
		}
	}
	return best, true
}

// MaximalsBrute enumerates maximal scoring subsequences by the quadratic
// definition-driven method. It exists as a testing oracle for Maximals and
// the online RuzzoTompa; library code should not call it.
//
// A segment is maximal iff it is a positive-sum segment such that no
// proper super-segment or sub-segment relationship violates the Ruzzo–Tompa
// structural characterization: all its proper prefixes and suffixes have
// strictly positive sums relative to the whole (equivalently: minimal
// cumulative sum on the left boundary, maximal on the right), and it is not
// contained in any larger such segment.
func MaximalsBrute(scores []float64) []Segment {
	// Direct implementation of the Ruzzo–Tompa definition: a candidate
	// [i, j) is "blocking-free" iff every proper prefix and proper suffix
	// has positive score, i.e. the cumulative sum attains its strict
	// minimum over [i-1, j-1] at i-1 and its strict maximum over [i, j]
	// at j. Maximal segments are the blocking-free segments not properly
	// contained in another blocking-free segment.
	n := len(scores)
	cum := make([]float64, n+1)
	for i, s := range scores {
		cum[i+1] = cum[i] + s
	}
	free := func(i, j int) bool { // segment [i, j), 0 <= i < j <= n
		for k := i; k < j; k++ {
			if cum[k] <= cum[i] && k != i {
				return false
			}
		}
		for k := i + 1; k <= j; k++ {
			if cum[k] >= cum[j] && k != j {
				return false
			}
		}
		return cum[j] > cum[i]
	}
	var all []Segment
	for i := 0; i < n; i++ {
		for j := i + 1; j <= n; j++ {
			if free(i, j) {
				all = append(all, Segment{Start: i, End: j, Score: cum[j] - cum[i]})
			}
		}
	}
	var out []Segment
	for _, s := range all {
		contained := false
		for _, t := range all {
			if (t.Start < s.Start && t.End >= s.End) || (t.Start <= s.Start && t.End > s.End) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, s)
		}
	}
	return out
}
