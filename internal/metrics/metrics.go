// Package metrics is a minimal, dependency-free instrumentation layer
// for the serving and load-generation binaries: counters, gauges and
// fixed-bucket latency histograms collected in a Registry and exposed in
// the Prometheus text format.
//
// The package exists because stserve's hot path answers queries in
// microseconds: recording a request must not allocate, must not take a
// lock, and must scale across cores. Every write operation (Counter.Add,
// Gauge.Set, Histogram.Observe) is therefore a handful of atomic
// operations on pre-allocated state — instruments are created once at
// wiring time and only read locks ever appear on the scrape path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to an instrument. Labels are
// ordered: they render in exactly the order given at construction, so
// exposition output is byte-deterministic.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// instrument is the common identity of every metric: a family name, a
// help string (shared across the family) and an ordered label set.
type instrument struct {
	name   string
	help   string
	labels []Label
}

func (m *instrument) Name() string { return m.name }

// suffixed renders name{labels} with extra labels appended (used for
// histogram bucket "le" labels).
func (m *instrument) series(w *strings.Builder, suffix string, extra ...Label) {
	w.WriteString(m.name)
	w.WriteString(suffix)
	if len(m.labels)+len(extra) == 0 {
		return
	}
	w.WriteByte('{')
	first := true
	for _, l := range m.labels {
		if !first {
			w.WriteByte(',')
		}
		first = false
		fmt.Fprintf(w, "%s=%q", l.Name, l.Value)
	}
	for _, l := range extra {
		if !first {
			w.WriteByte(',')
		}
		first = false
		fmt.Fprintf(w, "%s=%q", l.Name, l.Value)
	}
	w.WriteByte('}')
}

// Counter is a monotonically increasing counter.
type Counter struct {
	instrument
	v atomic.Int64
}

// Add increments the counter by n. Negative deltas are ignored: a
// counter only moves forward.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The stored value is a
// float64 kept as raw bits in an atomic word.
type Gauge struct {
	instrument
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeFunc is a gauge whose value is computed at scrape time — the
// natural shape for values the process already tracks elsewhere (store
// generation, resident documents, uptime).
type GaugeFunc struct {
	instrument
	fn func() float64
}

// Value evaluates the callback.
func (g *GaugeFunc) Value() float64 { return g.fn() }

// A Registry holds instruments and renders them in the Prometheus text
// exposition format. Instruments are registered at wiring time;
// registration takes a write lock, scraping a read lock, and the
// instruments themselves are lock-free.
type Registry struct {
	mu      sync.RWMutex
	ordered []renderable
	help    map[string]string // family name -> help of first registration
	types   map[string]string // family name -> prometheus type
}

type renderable interface {
	Name() string
	render(w *strings.Builder)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{help: make(map[string]string), types: make(map[string]string)}
}

func (r *Registry) register(name, typ, help string, m renderable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.types[name]; ok && t != typ {
		panic(fmt.Sprintf("metrics: family %q registered as both %s and %s", name, t, typ))
	}
	if _, ok := r.types[name]; !ok {
		r.types[name] = typ
		r.help[name] = help
	}
	r.ordered = append(r.ordered, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{instrument: instrument{name: name, help: help, labels: labels}}
	r.register(name, "counter", help, c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{instrument: instrument{name: name, help: help, labels: labels}}
	r.register(name, "gauge", help, g)
	return g
}

// NewGaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	g := &GaugeFunc{instrument: instrument{name: name, help: help, labels: labels}, fn: fn}
	r.register(name, "gauge", help, g)
	return g
}

// NewHistogram registers and returns a histogram over the given bucket
// upper bounds (ascending; a final +Inf bucket is implicit). A nil or
// empty bounds slice uses DefLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := newHistogram(name, help, bounds, labels...)
	r.register(name, "histogram", help, h)
	return h
}

// WriteText renders every registered instrument in the Prometheus text
// exposition format (version 0.0.4): families grouped under one
// # HELP/# TYPE pair in first-registration order, series in registration
// order within a family.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	done := make(map[string]bool, len(r.types))
	for _, lead := range r.ordered {
		name := lead.Name()
		if done[name] {
			continue
		}
		done[name] = true
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(r.help[name]))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, r.types[name])
		for _, m := range r.ordered {
			if m.Name() == name {
				m.render(&b)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (c *Counter) render(w *strings.Builder) {
	c.series(w, "")
	fmt.Fprintf(w, " %d\n", c.Value())
}

func (g *Gauge) render(w *strings.Builder) {
	g.series(w, "")
	w.WriteByte(' ')
	w.WriteString(formatFloat(g.Value()))
	w.WriteByte('\n')
}

func (g *GaugeFunc) render(w *strings.Builder) {
	g.series(w, "")
	w.WriteByte(' ')
	w.WriteString(formatFloat(g.Value()))
	w.WriteByte('\n')
}

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative bucket counts over static upper bounds, plus a running sum
// and count. Observe is lock-free and allocation-free — a binary search
// over the bounds and three atomic updates — so it can sit on a path
// answering hundreds of thousands of requests per second.
type Histogram struct {
	instrument
	bounds []float64       // ascending upper bounds; +Inf implicit last
	counts []atomic.Uint64 // len(bounds)+1; counts[i] = observations <= bounds[i]
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	bounds = append([]float64(nil), bounds...) // private copy
	// Drop a trailing +Inf: the overflow bucket is implicit.
	if n := len(bounds); n > 0 && math.IsInf(bounds[n-1], 1) {
		bounds = bounds[:n-1]
	}
	h := &Histogram{
		instrument: instrument{name: name, help: help, labels: labels},
		bounds:     bounds,
		counts:     make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// NewHistogram returns an unregistered histogram — the shape the load
// generator uses for its own latency recording, where no exposition
// endpoint exists and the histogram is read directly.
func NewHistogram(name string, bounds []float64) *Histogram {
	return newHistogram(name, "", bounds)
}

// DefLatencyBuckets are the default request-latency bucket upper bounds
// in seconds: a roughly geometric ladder from 50µs to 10s, dense through
// the microsecond-to-millisecond range where this system's queries live,
// so interpolated tail quantiles stay tight.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the bucket whose "le" covers v; all later
	// (cumulative) buckets are derived at render time.
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
}

func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Min returns the smallest observation (+Inf when empty).
func (h *Histogram) Min() float64 { return math.Float64frombits(h.min.Load()) }

// Max returns the largest observation (-Inf when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Mean returns the arithmetic mean of observations (NaN when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

// snapshot copies the per-bucket counts. Concurrent observers may land
// between bucket and count updates; the skew is at most the handful of
// in-flight observations, which the Prometheus model accepts.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. The error is
// bounded by the width of that bucket; observations beyond the last
// finite bound clamp to it (tracked Max caps the top). Returns NaN for
// an empty histogram or q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper bound to interpolate
				// toward; the tracked maximum is the tightest honest cap.
				return h.Max()
			}
			hi := h.bounds[i]
			if mx := h.Max(); mx < hi {
				hi = mx // no observation exceeds the recorded max
			}
			if mn := h.Min(); mn > lo {
				lo = mn
			}
			if hi < lo {
				return lo
			}
			return lo + (hi-lo)*((rank-cum)/float64(c))
		}
		cum = next
	}
	return h.Max()
}

// render writes the histogram's exposition series: cumulative
// name_bucket{le="..."} lines, name_sum and name_count.
func (h *Histogram) render(w *strings.Builder) {
	counts := h.snapshot()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		h.series(w, "_bucket", L("le", le))
		fmt.Fprintf(w, " %d\n", cum)
	}
	h.series(w, "_sum")
	w.WriteByte(' ')
	w.WriteString(formatFloat(h.Sum()))
	w.WriteByte('\n')
	h.series(w, "_count")
	fmt.Fprintf(w, " %d\n", cum)
}
