package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the boundary semantics: an
// observation equal to a bucket's upper bound lands in that bucket
// (Prometheus "le" = less-or-equal), one just above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2.5, 5, 10}
	cases := []struct {
		v      float64
		bucket int // index into counts (len(bounds)+1 buckets)
	}{
		{-1, 0},   // below everything still lands in the first bucket
		{0, 0},
		{0.999, 0},
		{1, 0},    // le="1" includes 1 exactly
		{1.0001, 1},
		{2.5, 1},
		{2.50001, 2},
		{5, 2},
		{7, 3},
		{10, 3},
		{10.1, 4}, // overflow bucket
		{math.Inf(1), 4},
	}
	for _, tc := range cases {
		h := NewHistogram("test", bounds)
		h.Observe(tc.v)
		for i := range h.counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.v, i, got, want)
			}
		}
		if h.Count() != 1 {
			t.Errorf("Observe(%v): count = %d, want 1", tc.v, h.Count())
		}
	}
}

func TestHistogramTrailingInfBoundDropped(t *testing.T) {
	h := NewHistogram("test", []float64{1, 2, math.Inf(1)})
	if len(h.bounds) != 2 {
		t.Fatalf("explicit +Inf bound kept: bounds = %v", h.bounds)
	}
	if len(h.counts) != 3 {
		t.Fatalf("want 3 buckets (2 finite + overflow), got %d", len(h.counts))
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram("test", []float64{1, 10})
	for _, v := range []float64{0.5, 2, 4, 20} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 26.5 {
		t.Errorf("sum = %v, want 26.5", h.Sum())
	}
	if h.Min() != 0.5 || h.Max() != 20 {
		t.Errorf("min/max = %v/%v, want 0.5/20", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 26.5/4 {
		t.Errorf("mean = %v, want %v", got, 26.5/4)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram("test", nil)
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram Quantile(0.5) = %v, want NaN", q)
	}
	if q := h.Quantile(-0.1); !math.IsNaN(q) {
		t.Errorf("Quantile(-0.1) = %v, want NaN", q)
	}
	if q := h.Quantile(1.5); !math.IsNaN(q) {
		t.Errorf("Quantile(1.5) = %v, want NaN", q)
	}
}

// TestHistogramQuantileErrorBound feeds deterministic pseudo-random
// samples into a histogram and checks the interpolated quantile against
// the exact order statistic: the estimate must lie inside the bucket
// holding the exact value, i.e. the error is bounded by that bucket's
// width — the advertised accuracy contract.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 2 }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 0.01 }},
		{"lognormal-ish", func() float64 { return math.Exp(rng.NormFloat64()*1.5 - 6) }},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			h := NewHistogram("test", DefLatencyBuckets)
			samples := make([]float64, 20000)
			for i := range samples {
				samples[i] = d.draw()
				h.Observe(samples[i])
			}
			sort.Float64s(samples)
			for _, q := range quantiles {
				exact := samples[int(math.Min(q*float64(len(samples)), float64(len(samples)-1)))]
				est := h.Quantile(q)
				lo, hi := bucketOf(DefLatencyBuckets, exact)
				// The overflow bucket has no finite bound: the histogram
				// answers with its tracked max, which is exact at q=1 and
				// an upper bound elsewhere.
				if math.IsInf(hi, 1) {
					hi = h.Max()
				}
				if est < lo-1e-12 || est > hi+1e-12 {
					t.Errorf("q=%v: estimate %v outside bucket [%v, %v] of exact %v",
						q, est, lo, hi, exact)
				}
			}
		})
	}
}

// bucketOf returns the [lo, hi] bounds of the bucket holding v.
func bucketOf(bounds []float64, v float64) (lo, hi float64) {
	i := sort.SearchFloat64s(bounds, v)
	lo = 0
	if i > 0 {
		lo = bounds[i-1]
	}
	if i == len(bounds) {
		return lo, math.Inf(1)
	}
	return lo, bounds[i]
}

// TestConcurrentWriters hammers every instrument type from many
// goroutines; run under -race this is the data-race proof, and the final
// values prove no update was lost.
func TestConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "counter")
	g := reg.NewGauge("g", "gauge")
	h := reg.NewHistogram("h_seconds", "histogram", []float64{0.25, 0.5, 0.75})

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Float64())
				if i%100 == 0 {
					// Concurrent scrape while writers run.
					var sb strings.Builder
					if err := reg.WriteText(&sb); err != nil {
						t.Errorf("WriteText: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var bucketSum uint64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != workers*perWorker {
		t.Errorf("bucket sum = %d, want %d", bucketSum, workers*perWorker)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "help")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter after Add(-3) = %d, want 5", c.Value())
	}
}

func TestRegistryRejectsTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter family name did not panic")
		}
	}()
	r.NewGauge("m", "help")
}

// TestWriteTextGolden pins the exposition format byte for byte: HELP and
// TYPE once per family, series in registration order, histogram buckets
// cumulative with an +Inf terminator, label sets rendered in the given
// order.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("http_requests_total", "Requests served.", L("route", "/v1/search"), L("code", "2xx"))
	b := reg.NewCounter("http_requests_total", "Requests served.", L("route", "/v1/search"), L("code", "4xx"))
	g := reg.NewGauge("http_in_flight", "In-flight requests.")
	reg.NewGaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := reg.NewHistogram("request_seconds", "Request latency.", []float64{0.001, 0.01, 0.1}, L("route", "/v1/search"))

	a.Add(41)
	a.Inc()
	b.Inc()
	g.Set(3)
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 7} {
		h.Observe(v)
	}

	want := strings.Join([]string{
		`# HELP http_requests_total Requests served.`,
		`# TYPE http_requests_total counter`,
		`http_requests_total{route="/v1/search",code="2xx"} 42`,
		`http_requests_total{route="/v1/search",code="4xx"} 1`,
		`# HELP http_in_flight In-flight requests.`,
		`# TYPE http_in_flight gauge`,
		`http_in_flight 3`,
		`# HELP uptime_seconds Uptime.`,
		`# TYPE uptime_seconds gauge`,
		`uptime_seconds 12.5`,
		`# HELP request_seconds Request latency.`,
		`# TYPE request_seconds histogram`,
		`request_seconds_bucket{route="/v1/search",le="0.001"} 1`,
		`request_seconds_bucket{route="/v1/search",le="0.01"} 3`,
		`request_seconds_bucket{route="/v1/search",le="0.1"} 4`,
		`request_seconds_bucket{route="/v1/search",le="+Inf"} 5`,
		`request_seconds_sum 7.0545`,
		`request_seconds_count 5`,
	}, "\n") + "\n"
	// The sum line carries the histogram's labels too.
	want = strings.ReplaceAll(want,
		"request_seconds_sum 7.0545",
		`request_seconds_sum{route="/v1/search"} 7.0545`)
	want = strings.ReplaceAll(want,
		"request_seconds_count 5",
		`request_seconds_count{route="/v1/search"} 5`)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	h := NewHistogram("test", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	// Every observation is exactly 3: min/max clamping must collapse the
	// interpolation to the true value regardless of bucket width.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3 {
			t.Errorf("Quantile(%v) = %v, want 3", q, got)
		}
	}
}
