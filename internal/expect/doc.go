// Package expect implements expected-frequency baselines E_x[i][t] for
// the discrepancy model of Eq. 7 in the paper:
//
//	B(t, D_x[i]) = D_x[i][t] − E_x[i][t]
//
// The paper (§4, "Single Data Stream") leaves the baseline pluggable —
// the average over all earlier snapshots, a recent-window average, or
// seasonal data from previous timeframes — so each of those is provided
// behind a common interface: RunningMean (the paper's default),
// WindowMean, EWMA and Seasonal.
//
// # Concurrency
//
// Baseline instances are stateful (Next folds each observation into the
// model) and must never be shared across goroutines. Factory exists so
// concurrent miners can each materialize private instances per
// (stream, term) series: a Factory itself must be safe to call
// concurrently, and every constructor in this package returns one that is
// — the closures capture only immutable configuration. The corpus-wide
// batch miners rely on this to mine thousands of terms in parallel with
// bit-identical output.
package expect
