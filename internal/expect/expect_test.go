package expect

import (
	"math"
	"testing"
)

func feed(b Baseline, obs ...float64) []float64 {
	out := make([]float64, len(obs))
	for i, o := range obs {
		out[i] = b.Next(o)
	}
	return out
}

func approxEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestRunningMean(t *testing.T) {
	b := NewRunningMean()()
	got := feed(b, 4, 2, 6, 0)
	// First observation predicted perfectly; then 4, (4+2)/2=3, (4+2+6)/3=4.
	want := []float64{4, 4, 3, 4}
	if !approxEq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRunningMeanReset(t *testing.T) {
	b := NewRunningMean()()
	feed(b, 10, 10)
	b.Reset()
	if got := b.Next(3); got != 3 {
		t.Fatalf("after Reset first prediction = %v, want 3 (perfect)", got)
	}
}

func TestWindowMean(t *testing.T) {
	b := NewWindowMean(2)()
	got := feed(b, 4, 2, 6, 0)
	// Perfect first; then 4; (4+2)/2=3; (2+6)/2=4.
	want := []float64{4, 4, 3, 4}
	if !approxEq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestWindowMeanWidth1(t *testing.T) {
	b := NewWindowMean(1)()
	got := feed(b, 5, 1, 9)
	want := []float64{5, 5, 1} // previous value each time
	if !approxEq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestWindowMeanPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewWindowMean(0)
}

func TestWindowMeanReset(t *testing.T) {
	b := NewWindowMean(3)()
	feed(b, 1, 2, 3, 4)
	b.Reset()
	got := feed(b, 10, 0)
	want := []float64{10, 10}
	if !approxEq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEWMA(t *testing.T) {
	b := NewEWMA(0.5)()
	got := feed(b, 4, 0, 8)
	// init 4; predict 4; state 0.5*0+0.5*4=2; predict 2.
	want := []float64{4, 4, 2}
	if !approxEq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for alpha=%v", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestEWMAReset(t *testing.T) {
	b := NewEWMA(0.9)()
	feed(b, 100)
	b.Reset()
	if got := b.Next(2); got != 2 {
		t.Fatalf("after Reset prediction = %v, want 2", got)
	}
}

func TestSeasonal(t *testing.T) {
	b := NewSeasonal(3)()
	// Two full periods of a strongly seasonal series.
	got := feed(b, 10, 0, 0, 12, 0, 0, 14)
	// i=0..2: fallback running-mean. i=3: history[0]=10. i=4: history[1]=0.
	// i=6: mean(history[0], history[3]) = 11.
	if got[3] != 10 {
		t.Fatalf("i=3 expected 10, got %v", got[3])
	}
	if got[4] != 0 {
		t.Fatalf("i=4 expected 0, got %v", got[4])
	}
	if got[6] != 11 {
		t.Fatalf("i=6 expected 11, got %v", got[6])
	}
}

func TestSeasonalFallback(t *testing.T) {
	b := NewSeasonal(5)()
	got := feed(b, 4, 2)
	// No prior period yet: behaves like RunningMean.
	want := []float64{4, 4}
	if !approxEq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSeasonalPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for period=0")
		}
	}()
	NewSeasonal(0)
}

func TestSeasonalReset(t *testing.T) {
	b := NewSeasonal(2)()
	feed(b, 1, 2, 3, 4)
	b.Reset()
	if got := b.Next(7); got != 7 {
		t.Fatalf("after Reset prediction = %v, want 7", got)
	}
}

func TestConstant(t *testing.T) {
	b := NewConstant(2.5)()
	got := feed(b, 0, 100, 3)
	want := []float64{2.5, 2.5, 2.5}
	if !approxEq(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	b.Reset() // no-op, must not panic
}

func TestWeightSurface(t *testing.T) {
	surface := [][]float64{
		{2, 2, 8}, // burst at the end
		{0, 0, 0},
	}
	w := WeightSurface(surface, NewRunningMean())
	// Stream 0: 2-2=0, 2-2=0, 8-2=6. Stream 1: all zero.
	want := [][]float64{{0, 0, 6}, {0, 0, 0}}
	for x := range want {
		if !approxEq(w[x], want[x]) {
			t.Fatalf("stream %d: got %v, want %v", x, w[x], want[x])
		}
	}
}

func TestWeightSurfaceIndependentBaselines(t *testing.T) {
	// Each stream must get its own baseline instance: identical series
	// must produce identical weights regardless of neighbours.
	surface := [][]float64{
		{1, 5},
		{1, 5},
		{100, 100},
	}
	w := WeightSurface(surface, NewRunningMean())
	if !approxEq(w[0], w[1]) {
		t.Fatalf("streams with identical series diverged: %v vs %v", w[0], w[1])
	}
	if w[2][1] != 0 {
		t.Fatalf("flat stream should have zero weight, got %v", w[2][1])
	}
}
