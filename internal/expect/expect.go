package expect

// Baseline predicts the expected next frequency of one series (a single
// term in a single stream). Implementations are stateful: Next first
// returns the expectation for the incoming observation using only earlier
// observations, then folds the observation into the model.
type Baseline interface {
	// Next returns the expected frequency for this observation and then
	// absorbs the observed value into the model state.
	Next(observed float64) (expected float64)
	// Reset returns the model to its initial state.
	Reset()
}

// Factory creates one Baseline instance per (stream, term) series.
//
// Baseline instances are stateful and must never be shared across
// goroutines; factories exist so concurrent miners can each materialize
// private instances. A Factory itself must be safe to call concurrently
// (every constructor in this package returns one that is: the closures
// capture only immutable configuration).
type Factory func() Baseline

// RunningMean predicts the mean of all previous observations — the
// paper's default choice ("the average observed frequency of t in D_x,
// taken over all the snapshots collected before timestamp i"). The first
// observation, which has no history, is predicted perfectly (weight 0) so
// that the opening timestamp is never spuriously bursty.
type RunningMean struct {
	sum float64
	n   int
}

// NewRunningMean returns a Factory producing RunningMean baselines.
func NewRunningMean() Factory {
	return func() Baseline { return &RunningMean{} }
}

// Next implements Baseline.
func (m *RunningMean) Next(observed float64) float64 {
	var expected float64
	if m.n == 0 {
		expected = observed
	} else {
		expected = m.sum / float64(m.n)
	}
	m.sum += observed
	m.n++
	return expected
}

// Reset implements Baseline.
func (m *RunningMean) Reset() { m.sum, m.n = 0, 0 }

// WindowMean predicts the mean of the most recent K observations ("one can
// focus only on the most recent measurements").
type WindowMean struct {
	k    int
	buf  []float64
	head int
	size int
	sum  float64
}

// NewWindowMean returns a Factory producing WindowMean baselines over the
// last k observations. k must be positive.
func NewWindowMean(k int) Factory {
	if k < 1 {
		panic("expect: WindowMean requires k >= 1")
	}
	return func() Baseline { return &WindowMean{k: k, buf: make([]float64, k)} }
}

// Next implements Baseline.
func (m *WindowMean) Next(observed float64) float64 {
	var expected float64
	if m.size == 0 {
		expected = observed
	} else {
		expected = m.sum / float64(m.size)
	}
	if m.size == m.k {
		m.sum -= m.buf[m.head]
	} else {
		m.size++
	}
	m.buf[m.head] = observed
	m.sum += observed
	m.head = (m.head + 1) % m.k
	return expected
}

// Reset implements Baseline.
func (m *WindowMean) Reset() {
	m.head, m.size, m.sum = 0, 0, 0
}

// EWMA predicts an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]: heavier alpha tracks recent activity faster.
type EWMA struct {
	alpha float64
	val   float64
	init  bool
}

// NewEWMA returns a Factory producing EWMA baselines.
func NewEWMA(alpha float64) Factory {
	if alpha <= 0 || alpha > 1 {
		panic("expect: EWMA requires alpha in (0,1]")
	}
	return func() Baseline { return &EWMA{alpha: alpha} }
}

// Next implements Baseline.
func (m *EWMA) Next(observed float64) float64 {
	if !m.init {
		m.val = observed
		m.init = true
		return observed
	}
	expected := m.val
	m.val = m.alpha*observed + (1-m.alpha)*m.val
	return expected
}

// Reset implements Baseline.
func (m *EWMA) Reset() { m.val, m.init = 0, false }

// Seasonal predicts the mean of observations exactly one or more whole
// periods earlier (the paper's example: the expected frequency of a term
// in San Francisco news on Dec-25-09 is its average on Decembers of
// previous years). When no prior-period observation exists yet it falls
// back to a running mean.
type Seasonal struct {
	period   int
	history  []float64
	fallback RunningMean
}

// NewSeasonal returns a Factory producing Seasonal baselines with the
// given period (in timestamps). period must be positive.
func NewSeasonal(period int) Factory {
	if period < 1 {
		panic("expect: Seasonal requires period >= 1")
	}
	return func() Baseline { return &Seasonal{period: period} }
}

// Next implements Baseline.
func (m *Seasonal) Next(observed float64) float64 {
	i := len(m.history)
	var sum float64
	var n int
	for j := i - m.period; j >= 0; j -= m.period {
		sum += m.history[j]
		n++
	}
	var expected float64
	if n > 0 {
		expected = sum / float64(n)
		m.fallback.Next(observed) // keep fallback state warm
	} else {
		expected = m.fallback.Next(observed)
	}
	m.history = append(m.history, observed)
	return expected
}

// Reset implements Baseline.
func (m *Seasonal) Reset() {
	m.history = m.history[:0]
	m.fallback.Reset()
}

// Constant predicts a fixed expected frequency, useful when an external
// model (e.g. corpus-wide rates from previous years) supplies the
// expectation.
type Constant struct{ V float64 }

// NewConstant returns a Factory producing Constant baselines.
func NewConstant(v float64) Factory {
	return func() Baseline { return &Constant{V: v} }
}

// Next implements Baseline.
func (m *Constant) Next(float64) float64 { return m.V }

// Reset implements Baseline.
func (m *Constant) Reset() {}

// WeightSurface converts a frequency surface (streams × timeline) into the
// burstiness-weight surface B(t, D_x[i]) = observed − expected of Eq. 7,
// instantiating one baseline per stream.
func WeightSurface(surface [][]float64, f Factory) [][]float64 {
	out := make([][]float64, len(surface))
	for x, series := range surface {
		b := f()
		row := make([]float64, len(series))
		for i, obs := range series {
			row[i] = obs - b.Next(obs)
		}
		out[x] = row
	}
	return out
}
