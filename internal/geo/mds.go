package geo

import (
	"errors"
	"math"
	"math/rand"
)

// MDS projects n objects with known pairwise distances onto the 2-D plane
// using classical (Torgerson) multidimensional scaling: the Gram matrix
// B = -1/2 · J·D²·J is formed by double-centering the squared distance
// matrix and its two leading eigenpairs, found by power iteration with
// deflation, give the embedding coordinates. The paper uses exactly this
// projection to place the Topix news sources on the 2-D map from their
// pairwise geographic distances (§6.1).
//
// dist must be a symmetric n×n matrix with a zero diagonal. rng drives the
// power-iteration starting vectors so results are deterministic for a
// seeded source.
func MDS(dist [][]float64, rng *rand.Rand) ([]Point, error) {
	n := len(dist)
	if n == 0 {
		return nil, errors.New("geo: MDS on empty distance matrix")
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, errors.New("geo: MDS distance matrix is not square")
		}
		if dist[i][i] != 0 {
			return nil, errors.New("geo: MDS distance matrix has non-zero diagonal")
		}
	}
	if n == 1 {
		return []Point{{}}, nil
	}

	// Double-center the squared distances: B = -1/2 J D² J.
	sq := make([][]float64, n)
	rowMean := make([]float64, n)
	var grand float64
	for i := range sq {
		sq[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d := dist[i][j]
			sq[i][j] = d * d
			rowMean[i] += sq[i][j]
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			b[i][j] = -0.5 * (sq[i][j] - rowMean[i] - rowMean[j] + grand)
		}
	}

	pts := make([]Point, n)
	for dim := 0; dim < 2; dim++ {
		val, vec := powerIteration(b, rng)
		if val <= 1e-12 {
			break // remaining structure is degenerate; leave axis at zero
		}
		scale := math.Sqrt(val)
		for i := range pts {
			if dim == 0 {
				pts[i].X = scale * vec[i]
			} else {
				pts[i].Y = scale * vec[i]
			}
		}
		// Deflate: B ← B − λ v vᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i][j] -= val * vec[i] * vec[j]
			}
		}
	}
	return pts, nil
}

// powerIteration returns the dominant eigenvalue and unit eigenvector of
// the symmetric matrix m.
func powerIteration(m [][]float64, rng *rand.Rand) (float64, []float64) {
	n := len(m)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	w := make([]float64, n)
	var val float64
	for iter := 0; iter < 500; iter++ {
		matVec(m, v, w)
		nw := norm(w)
		if nw < 1e-300 {
			return 0, v
		}
		for i := range w {
			w[i] /= nw
		}
		// Rayleigh quotient for the eigenvalue estimate.
		matVec(m, w, v)
		newVal := dot(w, v)
		copy(v, w)
		normalize(v)
		if math.Abs(newVal-val) <= 1e-12*math.Max(1, math.Abs(newVal)) {
			return newVal, v
		}
		val = newVal
	}
	return val, v
}

func matVec(m [][]float64, v, out []float64) {
	for i, row := range m {
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(v []float64) float64 { return math.Sqrt(dot(v, v)) }

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// DistanceMatrix builds the symmetric pairwise-distance matrix of the
// given geographic coordinates under the provided metric (Haversine or
// Vincenty).
func DistanceMatrix(coords []LatLon, metric func(a, b LatLon) float64) [][]float64 {
	n := len(coords)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := metric(coords[i], coords[j])
			m[i][j] = d
			m[j][i] = d
		}
	}
	return m
}
