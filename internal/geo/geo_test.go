package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 5}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 2}, true},
		{Point{0, 0}, true},  // corner is inside (closed)
		{Point{10, 5}, true}, // opposite corner
		{Point{10.1, 5}, false},
		{Point{-0.1, 2}, false},
		{Point{5, 5.01}, false},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{2, 2, 6, 6}, true},
		{Rect{4, 4, 8, 8}, true}, // touch at corner
		{Rect{5, 5, 8, 8}, false},
		{Rect{-3, -3, -1, -1}, false},
		{Rect{1, 1, 2, 2}, true}, // nested
	}
	for _, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("Intersects(%v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("Intersects symmetric (%v) = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(Rect{2, 2, 8, 8}) {
		t.Error("nested rect should be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
	if outer.ContainsRect(Rect{2, 2, 11, 8}) {
		t.Error("overflowing rect should not be contained")
	}
}

func TestRectDims(t *testing.T) {
	r := Rect{1, 2, 5, 10}
	if r.Width() != 4 || r.Height() != 8 || r.Area() != 32 {
		t.Fatalf("dims: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if s := r.String(); s == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestMBR(t *testing.T) {
	if _, ok := MBR(nil); ok {
		t.Fatal("MBR of empty set should report false")
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r, ok := MBR(pts)
	if !ok {
		t.Fatal("expected ok")
	}
	want := Rect{-2, -1, 4, 5}
	if r != want {
		t.Fatalf("MBR = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("MBR %v does not contain %v", r, p)
		}
	}
}

func TestDist(t *testing.T) {
	if got := Dist(Point{0, 0}, Point{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	london := LatLon{51.5074, -0.1278}
	paris := LatLon{48.8566, 2.3522}
	if d := Haversine(london, paris); math.Abs(d-343.5) > 3 {
		t.Fatalf("London-Paris = %v km, want ~343.5", d)
	}
	// One degree of longitude at the equator.
	if d := Haversine(LatLon{0, 0}, LatLon{0, 1}); math.Abs(d-111.19) > 0.5 {
		t.Fatalf("1 deg at equator = %v km, want ~111.19", d)
	}
	if d := Haversine(london, london); d != 0 {
		t.Fatalf("identical points = %v, want 0", d)
	}
	// Antipodal points: half the Earth's circumference.
	if d := Haversine(LatLon{0, 0}, LatLon{0, 180}); math.Abs(d-math.Pi*EarthRadiusKm) > 1 {
		t.Fatalf("antipodal = %v km, want ~%v", d, math.Pi*EarthRadiusKm)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		a := LatLon{rng.Float64()*180 - 90, rng.Float64()*360 - 180}
		b := LatLon{rng.Float64()*180 - 90, rng.Float64()*360 - 180}
		if d1, d2 := Haversine(a, b), Haversine(b, a); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
	}
}

func TestVincentyAgreesWithHaversine(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		a := LatLon{rng.Float64()*160 - 80, rng.Float64()*360 - 180}
		b := LatLon{rng.Float64()*160 - 80, rng.Float64()*360 - 180}
		dv := Vincenty(a, b)
		dh := Haversine(a, b)
		if dh < 1 {
			continue // relative error unstable at tiny distances
		}
		if rel := math.Abs(dv-dh) / dh; rel > 0.006 {
			t.Fatalf("Vincenty %v vs Haversine %v for %v-%v (rel %v)", dv, dh, a, b, rel)
		}
	}
}

func TestVincentyKnown(t *testing.T) {
	// Flinders Peak to Buninyong, the classic Vincenty test pair:
	// 54972.271 m.
	fl := LatLon{-37.95103342, 144.42486789}
	bu := LatLon{-37.65282114, 143.92649553}
	if d := Vincenty(fl, bu); math.Abs(d-54.972271) > 0.01 {
		t.Fatalf("Flinders-Buninyong = %v km, want 54.972", d)
	}
	if d := Vincenty(fl, fl); d != 0 {
		t.Fatalf("identical points = %v, want 0", d)
	}
}

func TestDistanceMatrix(t *testing.T) {
	coords := []LatLon{{0, 0}, {0, 1}, {1, 0}}
	m := DistanceMatrix(coords, Haversine)
	if len(m) != 3 {
		t.Fatalf("size %d, want 3", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("diagonal m[%d][%d] = %v", i, i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
	if m[0][1] <= 0 {
		t.Fatal("off-diagonal distance should be positive")
	}
}

func TestMDSErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	if _, err := MDS(nil, rng); err == nil {
		t.Fatal("empty matrix should error")
	}
	if _, err := MDS([][]float64{{0, 1}, {1}}, rng); err == nil {
		t.Fatal("ragged matrix should error")
	}
	if _, err := MDS([][]float64{{1}}, rng); err == nil {
		t.Fatal("non-zero diagonal should error")
	}
}

func TestMDSSinglePoint(t *testing.T) {
	pts, err := MDS([][]float64{{0}}, rand.New(rand.NewSource(24)))
	if err != nil || len(pts) != 1 {
		t.Fatalf("got %v, %v", pts, err)
	}
}

// MDS must reconstruct a planar configuration up to rotation/reflection,
// i.e. all pairwise distances are preserved.
func TestMDSRecoversPlanarConfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		orig := make([]Point, n)
		for i := range orig {
			orig[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
			for j := range dist[i] {
				dist[i][j] = Dist(orig[i], orig[j])
			}
		}
		got, err := MDS(dist, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := dist[i][j]
				have := Dist(got[i], got[j])
				if math.Abs(want-have) > 1e-5*math.Max(1, want) {
					t.Fatalf("trial %d: distance (%d,%d) = %v, want %v", trial, i, j, have, want)
				}
			}
		}
	}
}

// MDS on geographic (spherical) distances cannot be exact in the plane but
// must preserve the large-scale ordering of distances: far pairs must map
// farther than near pairs by a clear margin. This mirrors the paper's use
// of MDS on country distances.
func TestMDSGeographicMonotonicity(t *testing.T) {
	coords := []LatLon{
		{51.5, -0.1},   // London
		{48.9, 2.4},    // Paris
		{40.7, -74.0},  // New York
		{35.7, 139.7},  // Tokyo
		{-33.9, 151.2}, // Sydney
		{55.8, 37.6},   // Moscow
	}
	rng := rand.New(rand.NewSource(26))
	pts, err := MDS(DistanceMatrix(coords, Haversine), rng)
	if err != nil {
		t.Fatal(err)
	}
	lonParis := Dist(pts[0], pts[1])
	lonTokyo := Dist(pts[0], pts[3])
	lonSydney := Dist(pts[0], pts[4])
	if lonParis >= lonTokyo {
		t.Fatalf("London-Paris (%v) should embed closer than London-Tokyo (%v)", lonParis, lonTokyo)
	}
	if lonParis >= lonSydney {
		t.Fatalf("London-Paris (%v) should embed closer than London-Sydney (%v)", lonParis, lonSydney)
	}
}

func TestMDSDeterministicForSeed(t *testing.T) {
	coords := []LatLon{{0, 0}, {10, 10}, {20, -5}, {-30, 60}}
	d := DistanceMatrix(coords, Haversine)
	a, err := MDS(d, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MDS(d, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic embedding: %v vs %v", a[i], b[i])
		}
	}
}

func BenchmarkMDS181(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	coords := make([]LatLon, 181)
	for i := range coords {
		coords[i] = LatLon{rng.Float64()*160 - 80, rng.Float64()*360 - 180}
	}
	d := DistanceMatrix(coords, Haversine)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MDS(d, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseRect(t *testing.T) {
	r, err := ParseRect(" -1, 2.5 ,3,4 ")
	if err != nil || r != (Rect{MinX: -1, MinY: 2.5, MaxX: 3, MaxY: 4}) {
		t.Fatalf("ParseRect = %v, %v", r, err)
	}
	if r, err := ParseRect("5,5,5,5"); err != nil || r != (Rect{5, 5, 5, 5}) {
		t.Fatalf("degenerate rect rejected: %v, %v", r, err)
	}
	for _, raw := range []string{"", "1,2,3", "1,2,3,4,5", "a,b,c,d", "5,0,1,1", "0,5,1,1"} {
		if _, err := ParseRect(raw); err == nil {
			t.Errorf("ParseRect(%q) accepted", raw)
		}
	}
}
