// Package geo provides the planar and geographic primitives used by the
// spatiotemporal pattern miners: 2-D points and axis-oriented rectangles
// (the region shape STLocal mines, §4 of the paper), great-circle and
// ellipsoidal geodesic distances, and classical multidimensional scaling,
// which the paper uses to project document-stream locations onto the 2-D
// plane from their pairwise geographic distances (§6.1).
package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a location on the 2-D map onto which streams are projected.
type Point struct {
	X, Y float64
}

// Rect is an axis-oriented rectangle on the 2-D map, closed on all sides.
// STLocal restricts bursty regions to this shape to keep the mining
// problem polynomial (§4). The JSON tags define the wire form of the
// /v1 query API's region field.
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// ParseRect parses the textual "minX,minY,maxX,maxY" rectangle form
// shared by the CLI flags and the HTTP query parameters, rejecting
// malformed and inverted input.
func ParseRect(raw string) (Rect, error) {
	parts := strings.Split(raw, ",")
	if len(parts) != 4 {
		return Rect{}, fmt.Errorf("region must be minX,minY,maxX,maxY, got %q", raw)
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Rect{}, fmt.Errorf("region coordinate %q is not a number", p)
		}
		vals[i] = v
	}
	r := Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if r.MinX > r.MaxX || r.MinY > r.MaxY {
		return Rect{}, fmt.Errorf("region %q is inverted", raw)
	}
	return r, nil
}

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Intersects reports whether two closed rectangles share any point.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// ContainsRect reports whether o is completely inside r (the spatial half
// of the sub-window relation in Definition 2 of the paper).
func (r Rect) ContainsRect(o Rect) bool {
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX && r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// Width returns the extent of the rectangle along the X axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of the rectangle along the Y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// String formats the rectangle for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f]x[%.3f,%.3f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// MBR returns the minimum bounding rectangle of the given points and
// reports whether the point set is non-empty. Table 1 of the paper uses
// the MBR of an STComb pattern's streams to show how spatially spread a
// combinatorial pattern is.
func MBR(points []Point) (Rect, bool) {
	if len(points) == 0 {
		return Rect{}, false
	}
	r := Rect{MinX: points[0].X, MaxX: points[0].X, MinY: points[0].Y, MaxY: points[0].Y}
	for _, p := range points[1:] {
		r.MinX = math.Min(r.MinX, p.X)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r, true
}

// Dist returns the Euclidean distance between two planar points.
func Dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// LatLon is a geographic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// EarthRadiusKm is the mean Earth radius used by Haversine.
const EarthRadiusKm = 6371.0088

// Haversine returns the great-circle distance between two geographic
// coordinates in kilometers.
func Haversine(a, b LatLon) float64 {
	const rad = math.Pi / 180
	la1, lo1 := a.Lat*rad, a.Lon*rad
	la2, lo2 := b.Lat*rad, b.Lon*rad
	sinLat := math.Sin((la2 - la1) / 2)
	sinLon := math.Sin((lo2 - lo1) / 2)
	h := sinLat*sinLat + math.Cos(la1)*math.Cos(la2)*sinLon*sinLon
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// WGS-84 ellipsoid constants used by Vincenty.
const (
	wgs84A = 6378.137          // semi-major axis, km
	wgs84B = 6356.7523142      // semi-minor axis, km
	wgs84F = 1 / 298.257223563 // flattening
)

// Vincenty returns the geodesic distance in kilometers between two
// geographic coordinates on the WGS-84 ellipsoid, using Vincenty's inverse
// formula (the paper's reference [30]). It falls back to Haversine for
// the rare nearly-antipodal pairs on which the iteration fails to
// converge.
func Vincenty(p, q LatLon) float64 {
	const rad = math.Pi / 180
	if p == q {
		return 0
	}
	L := (q.Lon - p.Lon) * rad
	u1 := math.Atan((1 - wgs84F) * math.Tan(p.Lat*rad))
	u2 := math.Atan((1 - wgs84F) * math.Tan(q.Lat*rad))
	sinU1, cosU1 := math.Sincos(u1)
	sinU2, cosU2 := math.Sincos(u2)

	lambda := L
	var sinSigma, cosSigma, sigma, cosSqAlpha, cos2SigmaM float64
	for i := 0; i < 200; i++ {
		sinLambda, cosLambda := math.Sincos(lambda)
		sinSigma = math.Sqrt(math.Pow(cosU2*sinLambda, 2) +
			math.Pow(cosU1*sinU2-sinU1*cosU2*cosLambda, 2))
		if sinSigma == 0 {
			return 0 // coincident points
		}
		cosSigma = sinU1*sinU2 + cosU1*cosU2*cosLambda
		sigma = math.Atan2(sinSigma, cosSigma)
		sinAlpha := cosU1 * cosU2 * sinLambda / sinSigma
		cosSqAlpha = 1 - sinAlpha*sinAlpha
		if cosSqAlpha == 0 {
			cos2SigmaM = 0 // equatorial line
		} else {
			cos2SigmaM = cosSigma - 2*sinU1*sinU2/cosSqAlpha
		}
		c := wgs84F / 16 * cosSqAlpha * (4 + wgs84F*(4-3*cosSqAlpha))
		prev := lambda
		lambda = L + (1-c)*wgs84F*sinAlpha*
			(sigma+c*sinSigma*(cos2SigmaM+c*cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)))
		if math.Abs(lambda-prev) < 1e-12 {
			uSq := cosSqAlpha * (wgs84A*wgs84A - wgs84B*wgs84B) / (wgs84B * wgs84B)
			a := 1 + uSq/16384*(4096+uSq*(-768+uSq*(320-175*uSq)))
			bb := uSq / 1024 * (256 + uSq*(-128+uSq*(74-47*uSq)))
			deltaSigma := bb * sinSigma * (cos2SigmaM + bb/4*
				(cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)-
					bb/6*cos2SigmaM*(-3+4*sinSigma*sinSigma)*(-3+4*cos2SigmaM*cos2SigmaM)))
			return wgs84B * a * (sigma - deltaSigma)
		}
	}
	return Haversine(p, q)
}
