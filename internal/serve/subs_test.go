package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stburst"
	"stburst/internal/sub"
)

// subsServer boots an ingest-enabled server with the standing-query
// surface armed, mirroring `stserve -ingest -subscriptions`. Dispatcher
// retries are shrunk so a dead webhook fails in milliseconds.
func subsServer(t *testing.T) (*stburst.Collection, *stburst.Store, *Server) {
	t.Helper()
	c := serveCollection(t)
	store, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(c, store, "")
	ing := stburst.NewIngester(store, stburst.WithFlushDocs(1))
	s.EnableIngest(ing)
	// AllowPrivate: every test sink is an httptest server on loopback,
	// which the default webhook policy would refuse.
	s.EnableSubscriptions(sub.DispatcherOptions{Retries: 1, Backoff: time.Millisecond, Timeout: 2 * time.Second, AllowPrivate: true})
	t.Cleanup(func() {
		ing.Close()
		s.CloseSubscriptions()
	})
	return c, store, s
}

// do performs a request with an arbitrary method against the handler.
func do(t *testing.T, h http.Handler, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, url, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if len(rec.Body.Bytes()) > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: invalid JSON response %q: %v", method, url, rec.Body.String(), err)
		}
	}
	return rec.Code, out
}

// TestServerSubscriptionsDisabled: without -subscriptions every
// standing-query route is sealed with 403 and registers nothing.
func TestServerSubscriptionsDisabled(t *testing.T) {
	c := serveCollection(t)
	store := storeOf(t, c, c.MineAllRegional(nil, 0))
	s := New(c, store, "")
	routes := []struct{ method, url, body string }{
		{http.MethodPost, "/v1/subscriptions", `{"terms":["earthquake"]}`},
		{http.MethodGet, "/v1/subscriptions", ""},
		{http.MethodGet, "/v1/subscriptions/1", ""},
		{http.MethodDelete, "/v1/subscriptions/1", ""},
		{http.MethodGet, "/v1/alerts/stream", ""},
	}
	for _, rt := range routes {
		code, body := do(t, s, rt.method, rt.url, rt.body)
		if code != http.StatusForbidden {
			t.Errorf("%s %s without -subscriptions = %d %v, want 403", rt.method, rt.url, code, body)
		}
	}
	if store.NumSubscriptions() != 0 {
		t.Errorf("sealed surface registered %d subscriptions", store.NumSubscriptions())
	}
}

// TestServerSubscriptionCRUD drives the full registration lifecycle over
// HTTP: create (ID assigned, terms normalized), list, fetch, delete, and
// every rejection path.
func TestServerSubscriptionCRUD(t *testing.T) {
	_, store, s := subsServer(t)

	code, body := postJSON(t, s, "/v1/subscriptions",
		`{"owner":"geo-team","terms":["Earthquake Rescue"],"kind":"regional","region":{"min_x":-1,"min_y":-1,"max_x":4,"max_y":3},"min_score":0.5}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v, want 201", code, body)
	}
	id := uint64(body["id"].(float64))
	if id == 0 {
		t.Fatal("created subscription has no id")
	}
	terms, _ := body["terms"].([]any)
	if len(terms) != 2 || terms[0] != "earthquake" || terms[1] != "rescue" {
		t.Errorf("created terms %v, want tokenized [earthquake rescue]", terms)
	}
	if store.NumSubscriptions() != 1 {
		t.Errorf("store holds %d subscriptions, want 1", store.NumSubscriptions())
	}

	// Rejections: bad JSON, unknown field, no terms, bad webhook, bad
	// kind, client-supplied id.
	for name, bad := range map[string]string{
		"not json":      `nope`,
		"unknown field": `{"terms":["a"],"priority":9}`,
		"no terms":      `{"owner":"x"}`,
		"bad webhook":   `{"terms":["a"],"webhook":"ftp://host/x"}`,
		"bad kind":      `{"terms":["a"],"kind":"sideways"}`,
		"explicit id":   `{"id":7,"terms":["a"]}`,
	} {
		if code, resp := postJSON(t, s, "/v1/subscriptions", bad); code != http.StatusBadRequest {
			t.Errorf("%s: create = %d %v, want 400", name, code, resp)
		}
	}
	if store.NumSubscriptions() != 1 {
		t.Errorf("rejected creates registered subscriptions: %d", store.NumSubscriptions())
	}

	// List and fetch.
	code, body = get(t, s, "/v1/subscriptions")
	if code != http.StatusOK || int(body["count"].(float64)) != 1 {
		t.Fatalf("list = %d %v, want count 1", code, body)
	}
	code, body = get(t, s, fmt.Sprintf("/v1/subscriptions/%d", id))
	if code != http.StatusOK || uint64(body["id"].(float64)) != id || body["owner"] != "geo-team" {
		t.Errorf("fetch = %d %v, want the stored subscription", code, body)
	}
	if code, body := get(t, s, "/v1/subscriptions/9999"); code != http.StatusNotFound {
		t.Errorf("fetch of unknown id = %d %v, want 404", code, body)
	}
	if code, body := get(t, s, "/v1/subscriptions/zero"); code != http.StatusBadRequest {
		t.Errorf("fetch of garbage id = %d %v, want 400", code, body)
	}

	// Delete, then the id is gone.
	code, body = do(t, s, http.MethodDelete, fmt.Sprintf("/v1/subscriptions/%d", id), "")
	if code != http.StatusOK || body["deleted"] != true {
		t.Fatalf("delete = %d %v, want 200 deleted", code, body)
	}
	if code, _ := do(t, s, http.MethodDelete, fmt.Sprintf("/v1/subscriptions/%d", id), ""); code != http.StatusNotFound {
		t.Errorf("second delete = %d, want 404", code)
	}
	if store.NumSubscriptions() != 0 {
		t.Errorf("store holds %d subscriptions after delete, want 0", store.NumSubscriptions())
	}
}

// TestServerAlertWebhookDelivery closes the push loop over HTTP:
// register a subscription with a webhook, ingest a matching batch, and
// assert the sink receives one batched POST whose body carries the
// alerts — then that /v1/stats and /metrics agree with what arrived.
func TestServerAlertWebhookDelivery(t *testing.T) {
	_, _, s := subsServer(t)

	type received struct {
		body alertBatchJSON
	}
	got := make(chan received, 16)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b alertBatchJSON
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		got <- received{body: b}
	}))
	defer sink.Close()

	code, body := postJSON(t, s, "/v1/subscriptions",
		`{"owner":"geo-team","terms":["earthquake"],"webhook":"`+sink.URL+`"}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v, want 201", code, body)
	}
	subID := uint64(body["id"].(float64))

	code, body = postJSON(t, s, "/v1/documents",
		`{"documents":[{"stream":"lima","time":6,"text":"earthquake rescue teams earthquake aftermath"}]}`)
	if code != http.StatusAccepted || body["flushed"] != true {
		t.Fatalf("ingest = %d %v, want a flushed 202", code, body)
	}
	gen := uint64(body["generation"].(float64))

	var first received
	select {
	case first = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("webhook sink never received an alert batch")
	}
	b := first.body
	if b.SubscriptionID != subID || b.Owner != "geo-team" || b.Generation != gen {
		t.Errorf("batch header = %+v, want subscription %d owner geo-team generation %d", b, subID, gen)
	}
	if b.Count != len(b.Alerts) || b.Count == 0 {
		t.Fatalf("batch count %d with %d alerts", b.Count, len(b.Alerts))
	}
	for _, a := range b.Alerts {
		if a.Term != "earthquake" || a.SubscriptionID != subID || a.Patterns == 0 {
			t.Errorf("alert %+v, want earthquake matches for subscription %d", a, subID)
		}
	}

	// The dispatcher's counters drain asynchronously of the sink's
	// handler returning; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var ds sub.DispatcherStats
	for {
		ds = s.dispatcher.Stats()
		if ds.DeliveredBatches >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ds.DeliveredBatches == 0 || ds.DeliveredAlerts != uint64(b.Count) {
		t.Errorf("dispatcher stats %+v, want %d delivered alerts", ds, b.Count)
	}

	// /v1/stats and /metrics report the same accounting.
	code, body = get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	subsStats := body["subscriptions"].(map[string]any)
	if subsStats["enabled"] != true || int(subsStats["count"].(float64)) != 1 {
		t.Errorf("stats subscriptions %v, want enabled with 1 registered", subsStats)
	}
	if int(subsStats["matched_alerts"].(float64)) != b.Count {
		t.Errorf("stats matched_alerts %v, want %d", subsStats["matched_alerts"], b.Count)
	}
	if int(subsStats["delivered_alerts"].(float64)) != b.Count {
		t.Errorf("stats delivered_alerts %v, want %d", subsStats["delivered_alerts"], b.Count)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	text := rec.Body.String()
	for _, want := range []string{
		"stserve_subscriptions 1",
		fmt.Sprintf("stserve_alerts_matched_total %d", b.Count),
		fmt.Sprintf("stserve_alerts_delivered_total %d", b.Count),
		"stserve_alerts_dropped_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "stserve_alert_delivery_seconds_count 1") {
		t.Errorf("/metrics missing a delivery-latency observation")
	}
}

// TestServerAlertWebhookDrop: a webhook that always fails burns its
// retries and the alerts land in the dropped counters, never blocking
// the ingest response.
func TestServerAlertWebhookDrop(t *testing.T) {
	_, _, s := subsServer(t)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer sink.Close()

	if code, body := postJSON(t, s, "/v1/subscriptions",
		`{"terms":["earthquake"],"webhook":"`+sink.URL+`"}`); code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, body)
	}
	if code, body := postJSON(t, s, "/v1/documents",
		`{"documents":[{"stream":"quito","time":6,"text":"earthquake tremors again earthquake"}]}`); code != http.StatusAccepted {
		t.Fatalf("ingest = %d %v", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ds := s.dispatcher.Stats()
		if ds.DroppedBatches >= 1 {
			if ds.DroppedAlerts == 0 || ds.DeliveredBatches != 0 {
				t.Errorf("dispatcher stats %+v, want only drops", ds)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("failing webhook never registered a drop: %+v", ds)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sseClient connects to /v1/alerts/stream on a live test server and
// feeds every SSE line to a channel, so tests can await events with a
// timeout instead of blocking on a socket read.
func sseClient(t *testing.T, url string) (lines <-chan string, closeFn func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /v1/alerts/stream = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("stream Content-Type %q, want text/event-stream", ct)
	}
	ch := make(chan string, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			ch <- sc.Text()
		}
	}()
	return ch, func() { resp.Body.Close() }
}

// awaitLine reads lines until one has the given prefix or the timeout
// elapses.
func awaitLine(t *testing.T, lines <-chan string, prefix string) string {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed before a %q line", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return line
			}
		case <-deadline:
			t.Fatalf("no %q line within the deadline", prefix)
		}
	}
}

// TestServerAlertSSE: a connected stream client receives the connected
// comment immediately and, after a matching ingest, one alert event
// whose data payload is the same batch shape the webhook gets.
func TestServerAlertSSE(t *testing.T) {
	_, _, s := subsServer(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	lines, closeStream := sseClient(t, srv.URL)
	defer closeStream()
	awaitLine(t, lines, ": connected")

	code, body := postJSON(t, s, "/v1/subscriptions", `{"owner":"sse","terms":["earthquake"]}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, body)
	}
	subID := uint64(body["id"].(float64))

	if code, body := postJSON(t, s, "/v1/documents",
		`{"documents":[{"stream":"lima","time":7,"text":"earthquake damage survey earthquake"}]}`); code != http.StatusAccepted {
		t.Fatalf("ingest = %d %v", code, body)
	}

	awaitLine(t, lines, "event: alert")
	data := awaitLine(t, lines, "data: ")
	var batch alertBatchJSON
	if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &batch); err != nil {
		t.Fatalf("event payload %q: %v", data, err)
	}
	if batch.SubscriptionID != subID || batch.Owner != "sse" || batch.Count == 0 {
		t.Errorf("event batch %+v, want subscription %d with alerts", batch, subID)
	}
	for _, a := range batch.Alerts {
		if a.Term != "earthquake" {
			t.Errorf("event alert %+v, want term earthquake", a)
		}
	}
}

// TestServerConcurrentIngestCRUDSSE is the race case the issue asks for:
// ingest batches, subscription CRUD and SSE readers all running at once.
// Run under -race (the Makefile's race target covers this package) it
// proves the registry, matcher, broker and dispatcher share no unguarded
// state.
func TestServerConcurrentIngestCRUDSSE(t *testing.T) {
	_, _, s := subsServer(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	// A webhook sink that just counts.
	var sunk atomic.Int64
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sunk.Add(1)
	}))
	defer sink.Close()

	// One durable subscription so ingests always match something.
	if code, body := postJSON(t, s, "/v1/subscriptions",
		`{"terms":["earthquake"],"webhook":"`+sink.URL+`"}`); code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, body)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Two SSE clients drain the firehose for the duration.
	for i := 0; i < 2; i++ {
		lines, closeStream := sseClient(t, srv.URL)
		defer closeStream()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case _, ok := <-lines:
					if !ok {
						return
					}
				}
			}
		}()
	}

	// CRUD churn: register and delete short-lived subscriptions.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code, body := postJSON(t, s, "/v1/subscriptions", `{"terms":["earthquake","rescue"]}`)
				if code != http.StatusCreated {
					t.Errorf("concurrent create = %d %v", code, body)
					return
				}
				id := uint64(body["id"].(float64))
				if code, _ := get(t, s, "/v1/subscriptions"); code != http.StatusOK {
					t.Error("concurrent list failed")
					return
				}
				if code, _ := do(t, s, http.MethodDelete, fmt.Sprintf("/v1/subscriptions/%d", id), ""); code != http.StatusOK {
					t.Errorf("concurrent delete of %d failed", id)
					return
				}
			}
		}()
	}

	// The ingest hammer drives matching on every flush.
	for i := 0; i < 12; i++ {
		code, body := postJSON(t, s, "/v1/documents",
			`{"documents":[{"stream":"tokyo","time":9,"text":"earthquake rescue crews earthquake"}]}`)
		if code != http.StatusAccepted {
			t.Fatalf("ingest %d = %d %v", i, code, body)
		}
	}
	close(stop)
	wg.Wait()

	if got := s.alertsMatched.Load(); got == 0 {
		t.Error("no alerts matched across 12 matching ingests")
	}
}

// TestServerRejectsPrivateWebhook: with the default webhook policy, a
// subscription naming a loopback, private-range or metadata-endpoint
// target in its URL is refused at registration with 400 — the
// unauthenticated surface must not become a blind-SSRF POST proxy.
func TestServerRejectsPrivateWebhook(t *testing.T) {
	c := serveCollection(t)
	store := storeOf(t, c, c.MineAllRegional(nil, 0))
	s := New(c, store, "")
	s.EnableSubscriptions(sub.DispatcherOptions{Retries: 1, Backoff: time.Millisecond})
	t.Cleanup(s.CloseSubscriptions)

	for _, hook := range []string{
		"http://127.0.0.1:9999/hook",
		"http://localhost/hook",
		"http://169.254.169.254/latest/meta-data/",
		"http://10.0.0.5/hook",
		"http://[::1]:8080/hook",
	} {
		code, body := postJSON(t, s, "/v1/subscriptions",
			fmt.Sprintf(`{"terms":["earthquake"],"webhook":%q}`, hook))
		if code != http.StatusBadRequest {
			t.Errorf("private webhook %s = %d %v, want 400", hook, code, body)
		}
	}
	if store.NumSubscriptions() != 0 {
		t.Errorf("refused webhooks still registered %d subscriptions", store.NumSubscriptions())
	}
	// A public hostname passes registration; resolution is the dial
	// guard's problem.
	code, body := postJSON(t, s, "/v1/subscriptions",
		`{"terms":["earthquake"],"webhook":"https://hooks.example.com/alerts"}`)
	if code != http.StatusCreated {
		t.Errorf("public webhook = %d %v, want 201", code, body)
	}
}

// TestServerSubscriptionLimit: past the registry's limit the create
// route answers 429, existing subscriptions survive, and deleting one
// frees a slot.
func TestServerSubscriptionLimit(t *testing.T) {
	_, store, s := subsServer(t)
	store.SetSubscriptionLimit(2)

	for i := 0; i < 2; i++ {
		code, body := postJSON(t, s, "/v1/subscriptions", `{"terms":["earthquake"]}`)
		if code != http.StatusCreated {
			t.Fatalf("create %d = %d %v, want 201", i, code, body)
		}
	}
	code, body := postJSON(t, s, "/v1/subscriptions", `{"terms":["rescue"]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("create past limit = %d %v, want 429", code, body)
	}
	if store.NumSubscriptions() != 2 {
		t.Fatalf("store holds %d subscriptions, want 2", store.NumSubscriptions())
	}
	if code, _ := do(t, s, http.MethodDelete, "/v1/subscriptions/1", ""); code != http.StatusOK {
		t.Fatalf("delete = %d, want 200", code)
	}
	if code, body := postJSON(t, s, "/v1/subscriptions", `{"terms":["rescue"]}`); code != http.StatusCreated {
		t.Fatalf("create after delete = %d %v, want 201", code, body)
	}
}
