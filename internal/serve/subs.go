package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"stburst"
	"stburst/internal/sub"
)

// This file is the HTTP face of the standing-query subsystem: the
// /v1/subscriptions CRUD routes, the /v1/alerts/stream SSE feed, and the
// alert sink that fans one ingest's matches out to webhook delivery and
// connected stream clients. The store owns matching (Store.Subscribe and
// the post-ingest matcher); this layer owns registration plumbing and
// delivery only.

// EnableSubscriptions arms the standing-query surface: the CRUD routes
// and the SSE feed start answering, a webhook dispatcher and an SSE
// broker are started, and the store's alert sink is pointed at them.
// Call before serving traffic, like EnableIngest. opts tunes the
// dispatcher (tests shrink its retries); its OnDelivery hook is
// replaced with the delivery-latency histogram.
func (s *Server) EnableSubscriptions(opts sub.DispatcherOptions) {
	s.subsEnabled = true
	s.allowPrivateHooks = opts.AllowPrivate
	s.broker = sub.NewBroker()
	opts.OnDelivery = s.obs.alertLatency.Observe
	s.dispatcher = sub.NewDispatcher(opts)
	s.store.SetAlertSink(s.deliverAlerts)
}

// CloseSubscriptions detaches the alert sink and drains the webhook
// dispatcher — in-flight deliveries finish, queued batches are POSTed.
// Safe to call when subscriptions were never enabled.
func (s *Server) CloseSubscriptions() {
	if s.dispatcher == nil {
		return
	}
	s.store.SetAlertSink(nil)
	s.dispatcher.Close()
}

// requireSubs seals the standing-query routes with 403 until the
// operator opts in, exactly as the write surface does: the /v1 API is
// unauthenticated, and registering webhooks on someone else's server
// must not be the default.
func (s *Server) requireSubs(w http.ResponseWriter) bool {
	if !s.subsEnabled {
		writeError(w, http.StatusForbidden, "subscriptions are disabled; start stserve with -subscriptions")
		return false
	}
	return true
}

// maxSubscriptionBody caps a POST /v1/subscriptions body; a predicate is
// a handful of terms and a rectangle, never megabytes.
const maxSubscriptionBody = 1 << 20

// handleSubscriptionCreate answers POST /v1/subscriptions: the body is
// the stburst.Subscription JSON shape minus the ID (the server assigns
// it), validated and term-normalized by Store.Subscribe. 201 carries the
// stored form — assigned ID, tokenized terms — and a Location header.
func (s *Server) handleSubscriptionCreate(w http.ResponseWriter, r *http.Request) {
	if !s.requireSubs(w) {
		return
	}
	var spec stburst.Subscription
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubscriptionBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("subscription body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid subscription body: "+err.Error())
		return
	}
	if spec.ID != 0 {
		writeError(w, http.StatusBadRequest, "id is assigned by the server; omit it")
		return
	}
	// Refuse visibly-private webhook targets up front (an unparseable
	// URL falls through to Subscribe's own validation error). Hostnames
	// pass here; whatever they resolve to is enforced again at dial
	// time by the dispatcher, which this check cannot replace.
	if spec.Webhook != "" && !s.allowPrivateHooks {
		if u, err := url.Parse(spec.Webhook); err == nil {
			if err := sub.CheckWebhookHost(u.Hostname()); err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
	}
	stored, err := s.store.Subscribe(spec)
	if err != nil {
		if errors.Is(err, stburst.ErrSubscriptionLimit) {
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/subscriptions/"+strconv.FormatUint(stored.ID, 10))
	writeJSON(w, http.StatusCreated, stored)
}

// handleSubscriptionList answers GET /v1/subscriptions with every
// registered standing query in ascending ID order.
func (s *Server) handleSubscriptionList(w http.ResponseWriter, r *http.Request) {
	if !s.requireSubs(w) {
		return
	}
	subs := s.store.Subscriptions()
	if subs == nil {
		subs = []stburst.Subscription{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":         len(subs),
		"subscriptions": subs,
	})
}

// subscriptionID parses the {id} path segment; 0 is never assigned, so
// it is as invalid as garbage.
func subscriptionID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || id == 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid subscription id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func (s *Server) handleSubscriptionGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireSubs(w) {
		return
	}
	id, ok := subscriptionID(w, r)
	if !ok {
		return
	}
	spec, ok := s.store.LookupSubscription(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no subscription %d", id))
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

func (s *Server) handleSubscriptionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireSubs(w) {
		return
	}
	id, ok := subscriptionID(w, r)
	if !ok {
		return
	}
	if !s.store.Unsubscribe(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no subscription %d", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": true, "id": id})
}

// handleAlertStream answers GET /v1/alerts/stream: a Server-Sent Events
// feed carrying every alert batch any subscription matches, until the
// client disconnects. The feed is a firehose — clients filter by the
// subscription_id in each event — and a slow reader has events dropped
// (the broker's buffers are bounded) rather than stalling ingest.
func (s *Server) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	if !s.requireSubs(w) {
		return
	}
	// A stream outlives every per-request deadline by design; lift both
	// (the read deadline too — its expiry would tear the connection down
	// under the handler).
	rc := http.NewResponseController(w)
	if err := rc.SetWriteDeadline(time.Time{}); err != nil {
		log.Printf("alert stream: clearing write deadline: %v", err)
	}
	if err := rc.SetReadDeadline(time.Time{}); err != nil {
		log.Printf("alert stream: clearing read deadline: %v", err)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// An opening comment line flushes the headers immediately, so a
	// client knows it is connected before the first alert fires.
	if _, err := io.WriteString(w, ": connected\n\n"); err != nil {
		return
	}
	if err := rc.Flush(); err != nil {
		return
	}

	events, cancel := s.broker.Subscribe(64)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if _, err := w.Write(ev); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// alertBatchJSON is one delivery unit: every alert a single ingest
// produced for a single subscription. The same body is POSTed to the
// subscription's webhook and published as one SSE event.
type alertBatchJSON struct {
	SubscriptionID uint64          `json:"subscription_id"`
	Owner          string          `json:"owner,omitempty"`
	Generation     uint64          `json:"generation"`
	Count          int             `json:"count"`
	Alerts         []stburst.Alert `json:"alerts"`
}

// deliverAlerts is the store's alert sink: it runs on the ingesting
// goroutine after each batch's matches are computed, so it only groups,
// marshals and enqueues — the dispatcher and broker are both
// non-blocking. Alerts arrive sorted by subscription, so one pass over
// contiguous runs yields exactly one delivery per (ingest,
// subscription).
func (s *Server) deliverAlerts(alerts []stburst.Alert) {
	s.alertsMatched.Add(int64(len(alerts)))
	for start := 0; start < len(alerts); {
		end := start + 1
		for end < len(alerts) && alerts[end].SubscriptionID == alerts[start].SubscriptionID {
			end++
		}
		s.deliverBatch(alerts[start:end])
		start = end
	}
}

// deliverBatch publishes one subscription's alerts to the SSE feed and,
// when the subscription registered a webhook, enqueues the POST.
func (s *Server) deliverBatch(run []stburst.Alert) {
	body, err := json.Marshal(alertBatchJSON{
		SubscriptionID: run[0].SubscriptionID,
		Owner:          run[0].Owner,
		Generation:     run[0].Generation,
		Count:          len(run),
		Alerts:         run,
	})
	if err != nil {
		log.Printf("alerts: encoding batch for subscription %d: %v", run[0].SubscriptionID, err)
		return
	}
	s.broker.Publish(sub.FormatEvent(body))
	// The subscription may have been deleted between matching and
	// delivery; the lookup also picks up the current webhook.
	if spec, ok := s.store.LookupSubscription(run[0].SubscriptionID); ok && spec.Webhook != "" {
		s.dispatcher.Enqueue(sub.Batch{
			SubscriptionID: spec.ID,
			URL:            spec.Webhook,
			Alerts:         len(run),
			Body:           body,
		})
	}
}
