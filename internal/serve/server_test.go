package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stburst"
)

// serveCollection builds a small deterministic corpus with one strongly
// localized burst so every engine kind has patterns to serve.
func serveCollection(t *testing.T) *stburst.Collection {
	t.Helper()
	streams := []stburst.StreamInfo{
		{Name: "lima", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "quito", Location: stburst.Point{X: 3, Y: 2}},
		{Name: "tokyo", Location: stburst.Point{X: 95, Y: 80}},
	}
	c := stburst.NewCollection(streams, 12)
	add := func(s, w int, text string) {
		t.Helper()
		if _, err := c.AddText(s, w, text); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 12; w++ {
		add(0, w, "markets steady calm trading")
		add(1, w, "football results weather outlook")
		add(2, w, "technology exports quarterly report")
	}
	for w := 5; w <= 7; w++ {
		for i := 0; i < 4; i++ {
			add(0, w, "earthquake shakes coast rescue earthquake")
			add(1, w, "earthquake tremors border region")
		}
	}
	return c
}

// storeOf wraps mined indexes into a store over their collection.
func storeOf(t *testing.T, c *stburst.Collection, ixs ...*stburst.PatternIndex) *stburst.Store {
	t.Helper()
	s := stburst.NewStore(c)
	if err := s.Replace(ixs...); err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs a request against the handler and decodes the JSON body.
func get(t *testing.T, h http.Handler, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: Content-Type %q, want application/json", url, ct)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: invalid JSON response %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, body
}

func TestServerHealthz(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("GET /healthz = %d %v, want 200 ok", code, body)
	}
}

func TestServerStats(t *testing.T) {
	c := serveCollection(t)
	ix := c.MineAllRegional(nil, 0)
	s := New(c, storeOf(t, c, ix), "")
	code, body := get(t, s, "/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", code)
	}
	if body["kind"] != "regional" {
		t.Errorf("stats kind %v, want regional", body["kind"])
	}
	if body["fingerprint"] != ix.Fingerprint() {
		t.Errorf("stats fingerprint %v, want %s", body["fingerprint"], ix.Fingerprint())
	}
	if int(body["terms"].(float64)) != ix.NumTerms() {
		t.Errorf("stats terms %v, want %d", body["terms"], ix.NumTerms())
	}
	if int(body["docs"].(float64)) != c.NumDocs() {
		t.Errorf("stats docs %v, want %d", body["docs"], c.NumDocs())
	}
	// The stats request itself is counted.
	if int(body["requests"].(float64)) < 1 {
		t.Errorf("stats requests %v, want >= 1", body["requests"])
	}
	indexes, ok := body["indexes"].([]any)
	if !ok || len(indexes) != 1 {
		t.Fatalf("stats indexes %v, want one entry", body["indexes"])
	}
}

func TestServerPatterns(t *testing.T) {
	c := serveCollection(t)
	kinds := map[string]*stburst.PatternIndex{
		"regional":      c.MineAllRegional(nil, 0),
		"combinatorial": c.MineAllCombinatorial(nil, 0),
		"temporal":      c.MineAllTemporal(0),
	}
	for kind, ix := range kinds {
		t.Run(kind, func(t *testing.T) {
			s := New(c, storeOf(t, c, ix), "")
			code, body := get(t, s, "/patterns/earthquake")
			if code != http.StatusOK {
				t.Fatalf("GET /patterns/earthquake = %d, want 200", code)
			}
			if body["kind"] != kind || body["term"] != "earthquake" {
				t.Errorf("patterns response kind=%v term=%v, want %s earthquake", body["kind"], body["term"], kind)
			}
			patterns, ok := body["patterns"].([]any)
			if !ok || len(patterns) == 0 {
				t.Fatalf("patterns response has no patterns: %v", body)
			}
			first, ok := patterns[0].(map[string]any)
			if !ok {
				t.Fatalf("pattern entry is %T, want object", patterns[0])
			}
			if _, ok := first["score"]; !ok {
				t.Errorf("pattern entry missing score: %v", first)
			}
			if first["kind"] != kind {
				t.Errorf("pattern entry kind %v, want %s", first["kind"], kind)
			}
			if kind == "regional" {
				if _, ok := first["rect"]; !ok {
					t.Errorf("regional pattern missing rect: %v", first)
				}
			}

			code, body = get(t, s, "/patterns/nosuchterm")
			if code != http.StatusNotFound {
				t.Errorf("GET /patterns/nosuchterm = %d %v, want 404", code, body)
			}
		})
	}
}

func TestServerSearch(t *testing.T) {
	c := serveCollection(t)
	ix := c.MineAllRegional(nil, 0)
	s := New(c, storeOf(t, c, ix), "")

	code, body := get(t, s, "/search?q=earthquake&k=5")
	if code != http.StatusOK {
		t.Fatalf("GET /search = %d %v, want 200", code, body)
	}
	hits, ok := body["hits"].([]any)
	if !ok || len(hits) == 0 {
		t.Fatalf("search returned no hits: %v", body)
	}
	want := ix.Search("earthquake", 5)
	if len(hits) != len(want) {
		t.Fatalf("search returned %d hits over HTTP, %d in process", len(hits), len(want))
	}
	first := hits[0].(map[string]any)
	if int(first["doc"].(float64)) != want[0].Doc.ID || first["stream"] != want[0].Stream {
		t.Errorf("first hit %v, want doc %d stream %s", first, want[0].Doc.ID, want[0].Stream)
	}
	// The legacy hit shape is frozen: no kind tag, exactly the pre-store
	// fields, so strict legacy clients keep decoding.
	if _, ok := first["kind"]; ok {
		t.Errorf("legacy /search hit gained a kind field: %v", first)
	}
	if len(first) != 4 {
		t.Errorf("legacy /search hit has %d fields %v, want exactly doc/stream/time/score", len(first), first)
	}

	// A query term outside every pattern yields an empty hit list, not an
	// error (Eq. 10: the document set is empty, the query is still valid).
	code, body = get(t, s, "/search?q=markets&k=5")
	if code != http.StatusOK {
		t.Fatalf("GET /search?q=markets = %d %v, want 200", code, body)
	}
	if n := int(body["total_hits"].(float64)); n != len(ix.Search("markets", 5)) {
		t.Errorf("background-term search: %d hits over HTTP, %d in process", n, len(ix.Search("markets", 5)))
	}
}

func TestServerSearchValidation(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	for _, url := range []string{"/search", "/search?q=", "/search?q=earthquake&k=0", "/search?q=earthquake&k=-3", "/search?q=earthquake&k=abc"} {
		if code, body := get(t, s, url); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d %v, want 400", url, code, body)
		} else if _, ok := body["error"]; !ok {
			t.Errorf("GET %s: 400 body missing error field: %v", url, body)
		}
	}
}

func TestServerMethodAndRouteErrors(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")

	req := httptest.NewRequest(http.MethodPost, "/search?q=earthquake", strings.NewReader(""))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /search = %d, want 405", rec.Code)
	}

	req = httptest.NewRequest(http.MethodGet, "/nosuchroute", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /nosuchroute = %d, want 404", rec.Code)
	}

	// Reload is POST-only.
	req = httptest.NewRequest(http.MethodGet, "/v1/reload", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reload = %d, want 405", rec.Code)
	}
}

func TestServerConcurrentReads(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				if code, _ := get(t, s, "/search?q=earthquake&k=3"); code != http.StatusOK {
					t.Errorf("concurrent search returned %d", code)
					return
				}
				if code, _ := get(t, s, "/patterns/earthquake"); code != http.StatusOK {
					t.Errorf("concurrent patterns returned %d", code)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// postJSON performs a POST with a JSON body against the handler.
func postJSON(t *testing.T, h http.Handler, url, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: invalid JSON response %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, out
}

func TestServerV1Aliases(t *testing.T) {
	c := serveCollection(t)
	ix := c.MineAllRegional(nil, 0)
	s := New(c, storeOf(t, c, ix), "")
	if code, body := get(t, s, "/v1/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("GET /v1/healthz = %d %v, want 200 ok", code, body)
	}
	code, body := get(t, s, "/v1/stats")
	if code != http.StatusOK || body["fingerprint"] != ix.Fingerprint() {
		t.Errorf("GET /v1/stats = %d %v, want the index fingerprint", code, body)
	}
	if code, _ := get(t, s, "/v1/patterns/earthquake"); code != http.StatusOK {
		t.Errorf("GET /v1/patterns/earthquake = %d, want 200", code)
	}
}

// TestServerV1SearchRoundTrip: POST /v1/search returns exactly the hits
// the in-process Query produces, for plain and filtered queries.
func TestServerV1SearchRoundTrip(t *testing.T) {
	c := serveCollection(t)
	ix := c.MineAllRegional(nil, 0)
	s := New(c, storeOf(t, c, ix), "")
	cases := []struct {
		name string
		body string
		q    stburst.Query
	}{
		{"plain", `{"text":"earthquake","k":5}`, stburst.Query{Text: "earthquake", K: 5}},
		{"terms", `{"terms":["earthquake","rescue"],"k":5}`, stburst.Query{Terms: []string{"earthquake", "rescue"}, K: 5}},
		{"kind", `{"text":"earthquake","kind":"regional","k":5}`, stburst.Query{Text: "earthquake", Kind: stburst.KindRegional, K: 5}},
		{"region", `{"text":"earthquake","k":50,"region":{"min_x":-1,"min_y":-1,"max_x":4,"max_y":3}}`,
			stburst.Query{Text: "earthquake", K: 50, Region: &stburst.Rect{MinX: -1, MinY: -1, MaxX: 4, MaxY: 3}}},
		{"time", `{"text":"earthquake","k":50,"time":{"start":5,"end":7}}`,
			stburst.Query{Text: "earthquake", K: 50, Time: &stburst.Timespan{Start: 5, End: 7}}},
		{"paged", `{"text":"earthquake","k":3,"offset":2}`, stburst.Query{Text: "earthquake", K: 3, Offset: 2}},
		{"min_score", `{"text":"earthquake","k":50,"min_score":1}`, stburst.Query{Text: "earthquake", K: 50, MinScore: 1}},
		{"no hits", `{"text":"markets","k":5}`, stburst.Query{Text: "markets", K: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ix.Query(context.Background(), tc.q)
			if err != nil {
				t.Fatal(err)
			}
			code, body := postJSON(t, s, "/v1/search", tc.body)
			if code != http.StatusOK {
				t.Fatalf("POST /v1/search = %d %v, want 200", code, body)
			}
			hits, _ := body["hits"].([]any)
			if len(hits) != len(want.Hits) {
				t.Fatalf("HTTP returned %d hits, in-process %d", len(hits), len(want.Hits))
			}
			for i, raw := range hits {
				h := raw.(map[string]any)
				if int(h["doc"].(float64)) != want.Hits[i].Doc.ID ||
					h["stream"] != want.Hits[i].Stream ||
					int(h["time"].(float64)) != want.Hits[i].Doc.Time ||
					h["score"].(float64) != want.Hits[i].Score ||
					h["kind"] != "regional" {
					t.Errorf("hit %d: HTTP %v, in-process %+v", i, h, want.Hits[i])
				}
			}
			if more, _ := body["more"].(bool); more != want.More {
				t.Errorf("more = %v over HTTP, %v in process", more, want.More)
			}
		})
	}
}

func TestServerV1SearchValidation(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	bodies := []string{
		`not json`,
		`{}`,
		`{"text":"a","terms":["b"]}`,
		`{"text":"a","k":-1}`,
		`{"text":"a","offset":-1}`,
		`{"text":"a","kind":"nope"}`,
		`{"text":"a","kind":7}`,
		`{"text":"a","region":{"min_x":5,"max_x":1,"min_y":0,"max_y":1}}`,
		`{"text":"a","time":{"start":9,"end":2}}`,
		`{"text":"a","bogus_field":1}`,
	}
	for _, body := range bodies {
		if code, out := postJSON(t, s, "/v1/search", body); code != http.StatusBadRequest {
			t.Errorf("POST /v1/search %s = %d %v, want 400", body, code, out)
		} else if _, ok := out["error"]; !ok {
			t.Errorf("POST /v1/search %s: 400 body missing error field: %v", body, out)
		}
	}
	// GET on the v1 search route is not allowed.
	req := httptest.NewRequest(http.MethodGet, "/v1/search", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/search = %d, want 405", rec.Code)
	}
}

// TestServerV1PatternsFiltered: region/from/to prune the stored patterns
// and an all-excluding filter reads as 404.
func TestServerV1PatternsFiltered(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")

	code, body := get(t, s, "/v1/patterns/earthquake")
	if code != http.StatusOK {
		t.Fatalf("unfiltered = %d, want 200", code)
	}
	total := len(body["patterns"].([]any))

	// The burst lives at weeks 5-7 around lima/quito; a matching filter
	// keeps every pattern.
	code, body = get(t, s, "/v1/patterns/earthquake?from=5&to=7")
	if code != http.StatusOK || len(body["patterns"].([]any)) != total {
		t.Errorf("matching time filter = %d with %v patterns, want all %d", code, body["patterns"], total)
	}
	// Before the burst: nothing.
	if code, body = get(t, s, "/v1/patterns/earthquake?from=0&to=2"); code != http.StatusNotFound {
		t.Errorf("pre-burst time filter = %d %v, want 404", code, body)
	}
	// A region far outside every stream: nothing.
	if code, body = get(t, s, "/v1/patterns/earthquake?region=1000,1000,1001,1001"); code != http.StatusNotFound {
		t.Errorf("far region filter = %d %v, want 404", code, body)
	}
	// A region over the burst pair keeps at least one pattern.
	code, body = get(t, s, "/v1/patterns/earthquake?region=-1,-1,4,3")
	if code != http.StatusOK || len(body["patterns"].([]any)) == 0 {
		t.Errorf("burst region filter = %d %v, want patterns", code, body)
	}
	// Malformed filters are 400s.
	for _, url := range []string{
		"/v1/patterns/earthquake?region=1,2,3",
		"/v1/patterns/earthquake?region=a,b,c,d",
		"/v1/patterns/earthquake?region=5,5,1,1",
		"/v1/patterns/earthquake?from=x",
		"/v1/patterns/earthquake?from=9&to=2",
		"/v1/patterns/earthquake?kind=nope",
	} {
		if code, body := get(t, s, url); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d %v, want 400", url, code, body)
		}
	}
}

// TestWriteJSONEncodeFailure: an unencodable value yields a clean 500
// JSON error, not a half-written 200.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("500 body is not JSON: %q", rec.Body.String())
	}
	if _, ok := out["error"]; !ok {
		t.Fatalf("500 body missing error field: %v", out)
	}
}

// TestServerV1SearchResourceLimits: a single request cannot demand an
// unbounded page (stburst.MaxK caps K and Offset at validation time).
func TestServerV1SearchResourceLimits(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	for _, body := range []string{
		`{"text":"earthquake","k":500000000}`,
		`{"text":"earthquake","k":5,"offset":4000000000}`,
	} {
		if code, out := postJSON(t, s, "/v1/search", body); code != http.StatusBadRequest {
			t.Errorf("POST /v1/search %s = %d %v, want 400", body, code, out)
		}
	}
}

// TestServerV1PatternsOpenEndedSpan: a one-sided from/to past the data
// is a valid empty range (404: nothing survives), not a 400 inversion —
// only an explicit from > to is rejected.
func TestServerV1PatternsOpenEndedSpan(t *testing.T) {
	c := serveCollection(t) // timeline 12
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	if code, body := get(t, s, "/v1/patterns/earthquake?from=100"); code != http.StatusNotFound {
		t.Errorf("?from=100 (past the timeline) = %d %v, want 404", code, body)
	}
	if code, body := get(t, s, "/v1/patterns/earthquake?to=-5"); code != http.StatusNotFound {
		t.Errorf("?to=-5 (before the timeline) = %d %v, want 404", code, body)
	}
	if code, body := get(t, s, "/v1/patterns/earthquake?from=100&to=2"); code != http.StatusBadRequest {
		t.Errorf("explicit from>to = %d %v, want 400", code, body)
	}
}

// multiKindServer boots a server over a store holding all three kinds.
func multiKindServer(t *testing.T, snapshotPath string) (*stburst.Collection, *stburst.Store, *Server) {
	t.Helper()
	c := serveCollection(t)
	store, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, store, New(c, store, snapshotPath)
}

// TestServerV1Indexes: the resident kinds are listed with their sizes
// and fingerprints.
func TestServerV1Indexes(t *testing.T) {
	c, store, s := multiKindServer(t, "")
	_ = c
	code, body := get(t, s, "/v1/indexes")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/indexes = %d, want 200", code)
	}
	indexes, ok := body["indexes"].([]any)
	if !ok || len(indexes) != 3 {
		t.Fatalf("indexes = %v, want 3 entries", body["indexes"])
	}
	wantKinds := []string{"regional", "combinatorial", "temporal"}
	for i, raw := range indexes {
		entry := raw.(map[string]any)
		if entry["kind"] != wantKinds[i] {
			t.Errorf("index %d kind %v, want %s", i, entry["kind"], wantKinds[i])
		}
		ix := store.Index(stburst.Kinds()[i])
		if entry["fingerprint"] != ix.Fingerprint() {
			t.Errorf("index %d fingerprint %v, want %s", i, entry["fingerprint"], ix.Fingerprint())
		}
		if int(entry["patterns"].(float64)) != ix.NumPatterns() {
			t.Errorf("index %d patterns %v, want %d", i, entry["patterns"], ix.NumPatterns())
		}
	}
}

// TestServerMultiKindSearch: one process answers /v1/search for each
// concrete kind and for kind:"any", matching the in-process store.
func TestServerMultiKindSearch(t *testing.T) {
	_, store, s := multiKindServer(t, "")
	for _, kind := range []string{"regional", "combinatorial", "temporal", "any"} {
		t.Run(kind, func(t *testing.T) {
			k, err := stburst.ParseKind(kind)
			if err != nil {
				t.Fatal(err)
			}
			want, err := store.Query(context.Background(), stburst.Query{Text: "earthquake", Kind: k, K: 10})
			if err != nil {
				t.Fatal(err)
			}
			code, body := postJSON(t, s, "/v1/search", `{"text":"earthquake","kind":"`+kind+`","k":10}`)
			if code != http.StatusOK {
				t.Fatalf("POST /v1/search kind=%s = %d %v, want 200", kind, code, body)
			}
			hits, _ := body["hits"].([]any)
			if len(hits) != len(want.Hits) {
				t.Fatalf("kind %s: HTTP returned %d hits, in-process %d", kind, len(hits), len(want.Hits))
			}
			for i, raw := range hits {
				h := raw.(map[string]any)
				if int(h["doc"].(float64)) != want.Hits[i].Doc.ID ||
					h["kind"] != want.Hits[i].Kind.String() ||
					h["score"].(float64) != want.Hits[i].Score {
					t.Errorf("kind %s hit %d: HTTP %v, in-process %+v", kind, i, h, want.Hits[i])
				}
			}
		})
	}
	// kind:"any" over a multi-kind store must attribute hits to more than
	// one kind somewhere in a large page.
	code, body := postJSON(t, s, "/v1/search", `{"text":"earthquake","kind":"any","k":200}`)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/search any = %d, want 200", code)
	}
	seen := map[string]bool{}
	for _, raw := range body["hits"].([]any) {
		seen[raw.(map[string]any)["kind"].(string)] = true
	}
	if len(seen) < 2 {
		t.Errorf("kind any returned hits from kinds %v, want several", seen)
	}
}

// TestServerSearchKindNotResident: naming a kind the store does not hold
// is 404, not 400 or an empty 200.
func TestServerSearchKindNotResident(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	code, body := postJSON(t, s, "/v1/search", `{"text":"earthquake","kind":"temporal"}`)
	if code != http.StatusNotFound {
		t.Errorf("POST /v1/search kind=temporal on regional-only store = %d %v, want 404", code, body)
	}
	if code, body := get(t, s, "/v1/patterns/earthquake?kind=temporal"); code != http.StatusNotFound {
		t.Errorf("GET /v1/patterns?kind=temporal on regional-only store = %d %v, want 404", code, body)
	}
}

// TestServerPatternsKindParam: ?kind= narrows the listing; the default
// on a multi-kind store is "any" with per-pattern attribution.
func TestServerPatternsKindParam(t *testing.T) {
	_, _, s := multiKindServer(t, "")
	code, body := get(t, s, "/v1/patterns/earthquake")
	if code != http.StatusOK || body["kind"] != "any" {
		t.Fatalf("default listing = %d kind=%v, want 200 any", code, body["kind"])
	}
	all := body["patterns"].([]any)
	kindsSeen := map[string]int{}
	for _, raw := range all {
		kindsSeen[raw.(map[string]any)["kind"].(string)]++
	}
	if len(kindsSeen) != 3 {
		t.Fatalf("default listing covers kinds %v, want all three", kindsSeen)
	}
	for _, kind := range []string{"regional", "combinatorial", "temporal"} {
		code, body := get(t, s, "/v1/patterns/earthquake?kind="+kind)
		if code != http.StatusOK || body["kind"] != kind {
			t.Fatalf("kind=%s listing = %d kind=%v, want 200 %s", kind, code, body["kind"], kind)
		}
		patterns := body["patterns"].([]any)
		if len(patterns) != kindsSeen[kind] {
			t.Errorf("kind=%s listing has %d patterns, the any listing had %d", kind, len(patterns), kindsSeen[kind])
		}
		for _, raw := range patterns {
			if got := raw.(map[string]any)["kind"]; got != kind {
				t.Errorf("kind=%s listing contains a %v pattern", kind, got)
			}
		}
	}
}

// TestServerReload: POST /v1/reload atomically swaps the resident set to
// the current file contents while a concurrent query hammer observes
// nothing but complete, consistent answers. Run under -race this also
// proves the swap path is data-race free.
func TestServerReload(t *testing.T) {
	c := serveCollection(t)
	path := filepath.Join(t.TempDir(), "corpus.bundle")

	full, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Boot from a single-kind store, then reload into the full bundle.
	regional := c.MineAllRegional(nil, 0)
	s := New(c, storeOf(t, c, regional), path)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := postJSON(t, s, "/v1/search", `{"text":"earthquake","kind":"any","k":5}`)
				if code != http.StatusOK {
					t.Errorf("hammered search = %d %v", code, body)
					return
				}
				if code, _ := get(t, s, "/v1/indexes"); code != http.StatusOK {
					t.Errorf("hammered indexes = %d", code)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		code, body := postJSON(t, s, "/v1/reload", "")
		if code != http.StatusOK || body["reloaded"] != true {
			t.Fatalf("POST /v1/reload #%d = %d %v, want 200 reloaded", i, code, body)
		}
	}
	close(stop)
	wg.Wait()

	// After the reload the store serves all three kinds from the bundle.
	code, body := get(t, s, "/v1/indexes")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/indexes after reload = %d", code)
	}
	indexes := body["indexes"].([]any)
	if len(indexes) != 3 {
		t.Fatalf("after reload %d indexes resident, want 3: %v", len(indexes), body)
	}
	for i, kind := range stburst.Kinds() {
		entry := indexes[i].(map[string]any)
		if entry["fingerprint"] != full.Index(kind).Fingerprint() {
			t.Errorf("reloaded %v fingerprint %v, want %s", kind, entry["fingerprint"], full.Index(kind).Fingerprint())
		}
	}
}

// TestServerReloadErrors: reload without a snapshot path is 409; a
// corrupt file is a 500 that leaves the old resident set serving.
func TestServerReloadErrors(t *testing.T) {
	c := serveCollection(t)
	ix := c.MineAllRegional(nil, 0)
	s := New(c, storeOf(t, c, ix), "")
	if code, body := postJSON(t, s, "/v1/reload", ""); code != http.StatusConflict {
		t.Errorf("reload without path = %d %v, want 409", code, body)
	}

	path := filepath.Join(t.TempDir(), "corrupt.bundle")
	if err := os.WriteFile(path, []byte("not a bundle at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = New(c, storeOf(t, c, ix), path)
	if code, body := postJSON(t, s, "/v1/reload", ""); code != http.StatusInternalServerError {
		t.Errorf("reload of corrupt file = %d %v, want 500", code, body)
	}
	// The old index still serves.
	if code, _ := get(t, s, "/search?q=earthquake&k=3"); code != http.StatusOK {
		t.Errorf("search after failed reload = %d, want 200", code)
	}
	code, body := get(t, s, "/v1/indexes")
	if code != http.StatusOK || len(body["indexes"].([]any)) != 1 {
		t.Errorf("indexes after failed reload = %d %v, want the original single index", code, body)
	}
}

// ingestServer builds an ingest-enabled server over a full three-kind
// store, mirroring `stserve -ingest`.
func ingestServer(t *testing.T, flushDocs int) (*stburst.Collection, *stburst.Store, *Server, *stburst.Ingester) {
	t.Helper()
	c := serveCollection(t)
	store, err := c.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(c, store, "")
	ing := stburst.NewIngester(store, stburst.WithFlushDocs(flushDocs))
	t.Cleanup(func() { ing.Close() })
	s.EnableIngest(ing)
	return c, store, s, ing
}

// TestServerDocumentsDisabled: without -ingest the write surface is
// sealed with 403, and nothing about the store changes.
func TestServerDocumentsDisabled(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	docs := c.NumDocs()
	code, body := postJSON(t, s, "/v1/documents",
		`{"documents":[{"stream":"lima","time":3,"text":"volcano erupts"}]}`)
	if code != http.StatusForbidden {
		t.Fatalf("POST /v1/documents without -ingest = %d %v, want 403", code, body)
	}
	if c.NumDocs() != docs {
		t.Error("rejected ingest still appended documents")
	}
}

// TestServerDocumentsIngest: a flushed batch answers 202 with the new
// generation and dirty-term count, and the refreshed indexes serve the
// new documents immediately.
func TestServerDocumentsIngest(t *testing.T) {
	c, store, s, _ := ingestServer(t, 1)
	gen0 := store.Generation()
	docs0 := c.NumDocs()

	code, body := postJSON(t, s, "/v1/documents",
		`{"documents":[
			{"stream":"tokyo","time":9,"text":"volcano eruption ash volcano"},
			{"stream":"lima","time":10,"text":"volcano ash cloud spreads"}
		]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/documents = %d %v, want 202", code, body)
	}
	if body["flushed"] != true || int(body["accepted"].(float64)) != 2 || int(body["pending"].(float64)) != 0 {
		t.Errorf("ingest response %v, want flushed=true accepted=2 pending=0", body)
	}
	if int(body["dirty_terms"].(float64)) == 0 {
		t.Errorf("ingest response %v reports no dirty terms", body)
	}
	if gen := uint64(body["generation"].(float64)); gen <= gen0 {
		t.Errorf("ingest generation %d did not advance past %d", gen, gen0)
	}
	if c.NumDocs() != docs0+2 {
		t.Errorf("collection holds %d docs, want %d", c.NumDocs(), docs0+2)
	}

	// The new term is immediately searchable and its patterns listable.
	code, body = postJSON(t, s, "/v1/search", `{"text": "volcano", "k": 10}`)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/search after ingest = %d %v", code, body)
	}
	if int(body["count"].(float64)) == 0 {
		t.Error("ingested term retrieves nothing")
	}

	// /v1/generation and /v1/stats report the new state.
	code, body = get(t, s, "/v1/generation")
	if code != http.StatusOK || uint64(body["generation"].(float64)) != store.Generation() {
		t.Errorf("GET /v1/generation = %d %v, want store generation %d", code, body, store.Generation())
	}
	code, body = get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	if body["ingest_enabled"] != true || int(body["pending_ingest"].(float64)) != 0 {
		t.Errorf("stats %v, want ingest_enabled=true pending_ingest=0", body)
	}
	if int(body["ingested_docs"].(float64)) != 2 {
		t.Errorf("stats ingested_docs %v, want 2", body["ingested_docs"])
	}
	if uint64(body["generation"].(float64)) != store.Generation() {
		t.Errorf("stats generation %v, want %d", body["generation"], store.Generation())
	}
}

// TestServerDocumentsBuffered: below the flush size the batch is
// buffered — 202 with flushed=false, pending depth, and the old
// generation — and a later request tips it over.
func TestServerDocumentsBuffered(t *testing.T) {
	c, store, s, _ := ingestServer(t, 3)
	gen0 := store.Generation()
	docs0 := c.NumDocs()

	code, body := postJSON(t, s, "/v1/documents",
		`{"documents":[{"stream":"quito","time":8,"text":"flood waters rising"}]}`)
	if code != http.StatusAccepted || body["flushed"] != false {
		t.Fatalf("buffered ingest = %d %v, want 202 flushed=false", code, body)
	}
	if int(body["pending"].(float64)) != 1 || uint64(body["generation"].(float64)) != gen0 {
		t.Errorf("buffered response %v, want pending=1 generation=%d", body, gen0)
	}
	if c.NumDocs() != docs0 {
		t.Error("buffered documents were applied early")
	}

	code, body = postJSON(t, s, "/v1/documents",
		`{"documents":[
			{"stream":"quito","time":9,"text":"flood rescue boats"},
			{"stream":"lima","time":9,"text":"flood warnings coast"}
		]}`)
	if code != http.StatusAccepted || body["flushed"] != true {
		t.Fatalf("tipping ingest = %d %v, want 202 flushed=true", code, body)
	}
	if int(body["pending"].(float64)) != 0 || c.NumDocs() != docs0+3 {
		t.Errorf("after flush: pending %v, %d docs (want 0, %d)", body["pending"], c.NumDocs(), docs0+3)
	}
}

// TestServerDocumentsValidation: bad bodies, unknown streams and
// out-of-range times are 400s and nothing is applied or buffered.
func TestServerDocumentsValidation(t *testing.T) {
	c, _, s, ing := ingestServer(t, 10)
	docs0 := c.NumDocs()
	for name, body := range map[string]string{
		"not json":        `{"documents": nope}`,
		"unknown field":   `{"documents":[],"mode":"fast"}`,
		"empty batch":     `{"documents":[]}`,
		"no batch":        `{}`,
		"unknown stream":  `{"documents":[{"stream":"atlantis","time":3,"text":"x"}]}`,
		"negative time":   `{"documents":[{"stream":"lima","time":-1,"text":"x"}]}`,
		"time past end":   `{"documents":[{"stream":"lima","time":12,"text":"x"}]}`,
		"mixed good, bad": `{"documents":[{"stream":"lima","time":3,"text":"ok"},{"stream":"lima","time":99,"text":"x"}]}`,
	} {
		code, resp := postJSON(t, s, "/v1/documents", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: POST /v1/documents = %d %v, want 400", name, code, resp)
		}
	}
	if c.NumDocs() != docs0 || ing.Pending() != 0 {
		t.Errorf("rejected batches left state behind: %d docs, %d pending", c.NumDocs()-docs0, ing.Pending())
	}
}

// TestServerIngestUnderQueryHammer: POSTs to /v1/documents proceed while
// searches hammer every kind — the HTTP-level ingest-vs-query drill; run
// it under -race for the full effect.
func TestServerIngestUnderQueryHammer(t *testing.T) {
	_, store, s, _ := ingestServer(t, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, body := postJSON(t, s, "/v1/search", `{"text":"earthquake","k":10}`); code != http.StatusOK {
					t.Errorf("search during ingest = %d %v", code, body)
					return
				}
				if code, _ := get(t, s, "/v1/generation"); code != http.StatusOK {
					t.Error("generation poll failed")
					return
				}
			}
		}()
	}
	lastGen := store.Generation()
	for i := 0; i < 8; i++ {
		code, body := postJSON(t, s, "/v1/documents",
			`{"documents":[{"stream":"tokyo","time":11,"text":"earthquake wave alert"}]}`)
		if code != http.StatusAccepted {
			t.Fatalf("ingest %d = %d %v", i, code, body)
		}
		gen := uint64(body["generation"].(float64))
		if gen <= lastGen {
			t.Fatalf("ingest %d: generation %d did not advance past %d", i, gen, lastGen)
		}
		lastGen = gen
	}
	close(stop)
	wg.Wait()
}
