package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrape fetches GET /metrics from the handler and parses the exposition
// text into series -> value ("name{labels}" exactly as rendered).
func scrape(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type = %q, want text/plain", ct)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func series(route, code string) string {
	return `stserve_http_requests_total{route="` + route + `",code="` + code + `"}`
}

// TestMetricsMonotonicity drives a known query + ingest + patterns
// sequence and asserts every counter moves by exactly the number of
// requests issued, the latency histogram counts every request, and the
// store-state gauges track the ingest.
func TestMetricsMonotonicity(t *testing.T) {
	_, store, s, _ := ingestServer(t, 1)

	before := scrape(t, s)
	if before[series("POST /v1/search", "2xx")] != 0 {
		t.Fatalf("fresh server already counts searches: %v", before)
	}
	gen0 := before["stserve_store_generation"]
	docs0 := before["stserve_collection_docs"]
	if docs0 == 0 {
		t.Fatal("stserve_collection_docs gauge is zero on a loaded corpus")
	}

	const searches = 5
	for i := 0; i < searches; i++ {
		if code, _ := postJSON(t, s, "/v1/search", `{"text":"earthquake","k":3}`); code != http.StatusOK {
			t.Fatalf("search %d failed", i)
		}
	}
	// One 400, one 404 on the same route family.
	postJSON(t, s, "/v1/search", `not json`)
	get(t, s, "/v1/patterns/nosuchterm")
	// One ingest of two documents.
	if code, _ := postJSON(t, s, "/v1/documents",
		`{"documents":[
			{"stream":"tokyo","time":9,"text":"cyclone landfall cyclone"},
			{"stream":"lima","time":9,"text":"cyclone rain flooding"}
		]}`); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}

	after := scrape(t, s)
	wantDelta := map[string]float64{
		series("POST /v1/search", "2xx"):         searches,
		series("POST /v1/search", "4xx"):         1,
		series("GET /v1/patterns/{term}", "4xx"): 1,
		series("POST /v1/documents", "2xx"):      1,
	}
	for key, want := range wantDelta {
		if got := after[key] - before[key]; got != want {
			t.Errorf("%s advanced by %v, want %v", key, got, want)
		}
	}
	if got := after[`stserve_http_request_seconds_count{route="POST /v1/search"}`]; got != searches+1 {
		t.Errorf("search latency histogram counts %v requests, want %d", got, searches+1)
	}
	if after["stserve_store_generation"] <= gen0 {
		t.Errorf("generation gauge %v did not advance past %v after ingest", after["stserve_store_generation"], gen0)
	}
	if got := after["stserve_collection_docs"] - docs0; got != 2 {
		t.Errorf("collection docs gauge advanced by %v, want 2", got)
	}
	if got := after["stserve_ingested_docs_total"]; got != 2 {
		t.Errorf("ingested docs total %v, want 2", got)
	}
	if store.Generation() != uint64(after["stserve_store_generation"]) {
		t.Errorf("generation gauge %v disagrees with store %d", after["stserve_store_generation"], store.Generation())
	}
	// At rest the only in-flight request is the scrape reading the gauge.
	if after["stserve_http_in_flight"] != 1 {
		t.Errorf("in-flight gauge %v during a scrape, want 1 (the scrape itself)", after["stserve_http_in_flight"])
	}

	// A second pass can only grow the counters: monotonicity.
	for key := range wantDelta {
		if after[key] < before[key] {
			t.Errorf("%s went backwards: %v -> %v", key, before[key], after[key])
		}
	}
}

// TestMetricsUnmatchedRoute: garbage paths share one "unmatched" series
// instead of minting a label per attacker-chosen URL.
func TestMetricsUnmatchedRoute(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	for _, path := range []string{"/nosuchroute", "/admin.php", "/x/y/z"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, rec.Code)
		}
	}
	m := scrape(t, s)
	if got := m[series("unmatched", "4xx")]; got != 3 {
		t.Errorf("unmatched 4xx counter = %v, want 3", got)
	}
}

// TestPprofNotOnServingListener: the serving mux must never expose
// /debug/pprof/ — profiling is an operator opt-in on -debug-addr.
func TestPprofNotOnServingListener(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	for _, path := range []string{
		"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/profile",
		"/debug/pprof/cmdline", "/debug/pprof/symbol", "/debug/pprof/trace",
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s on the serving listener = %d, want 404", path, rec.Code)
		}
	}
}

// TestPprofOnDebugHandler: the -debug-addr handler serves the pprof
// index and per-profile pages, plus a second /metrics exposition.
func TestPprofOnDebugHandler(t *testing.T) {
	c := serveCollection(t)
	s := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	dbg := s.DebugHandler()

	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	dbg.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("GET /debug/pprof/ on debug handler = %d, want a profile index", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/debug/pprof/heap?debug=1", nil)
	rec = httptest.NewRecorder()
	dbg.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/heap on debug handler = %d, want 200", rec.Code)
	}

	// The debug /metrics reads the same registry as the serving one.
	if code, _ := get(t, s, "/v1/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	m := scrape(t, dbg)
	if m[series("GET /v1/healthz", "2xx")] != 1 {
		t.Errorf("debug /metrics does not see serving traffic: %v", m[series("GET /v1/healthz", "2xx")])
	}
}

// TestMetricsUnderHammer scrapes /metrics while searches, ingests and
// reload-free traffic hammer the server, then checks the final counters
// equal exactly the requests issued — no lost or double-counted updates
// (run under -race for the full effect).
func TestMetricsUnderHammer(t *testing.T) {
	_, _, s, _ := ingestServer(t, 1)
	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if code, _ := postJSON(t, s, "/v1/search", `{"text":"earthquake","k":3}`); code != http.StatusOK {
					t.Error("hammered search failed")
					return
				}
				if code, _ := postJSON(t, s, "/v1/documents",
					`{"documents":[{"stream":"quito","time":4,"text":"landslide road blocked"}]}`); code != http.StatusAccepted {
					t.Error("hammered ingest failed")
					return
				}
				scrape(t, s) // concurrent exposition must never tear
			}
		}()
	}
	wg.Wait()
	m := scrape(t, s)
	if got := m[series("POST /v1/search", "2xx")]; got != workers*perWorker {
		t.Errorf("search counter = %v, want %d", got, workers*perWorker)
	}
	if got := m[series("POST /v1/documents", "2xx")]; got != workers*perWorker {
		t.Errorf("ingest counter = %v, want %d", got, workers*perWorker)
	}
	if got := m[`stserve_http_request_seconds_count{route="POST /v1/search"}`]; got != workers*perWorker {
		t.Errorf("search histogram count = %v, want %d", got, workers*perWorker)
	}
	if got := m["stserve_ingested_docs_total"]; got != workers*perWorker {
		t.Errorf("ingested docs = %v, want %d", got, workers*perWorker)
	}
}
