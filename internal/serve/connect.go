package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"stburst"
	"stburst/internal/connector"
	"stburst/internal/metrics"
)

// This file is the serve layer's half of the streaming-connector
// subsystem: the durable Sink the sources deliver into, and the
// stats/metrics surface over a running Supervisor. The connector
// package owns transports and supervision; this layer owns validation
// (stream names, timeline bounds) and durability (the Ingester → WAL
// path), exactly the same split POST /v1/documents has between its
// handler and the store.

// IngestSink adapts a dedicated Ingester into connector.Sink. Ingest
// converts feed documents into store form, rejecting (and counting)
// ones that cannot ever apply — unknown stream, out-of-range time —
// rather than wedging the feed behind them, and then flushes
// synchronously, retrying transient store errors with capped backoff
// until the batch is WAL-durable or ctx is cancelled. The synchronous
// flush is the backpressure path: a source blocked here stops reading
// its feed.
//
// Each source must own its sink and its Ingester: the retry loop
// relies on the ingester buffering only this sink's documents, and the
// checkpoint arithmetic relies on IngestResult.TotalDocs being read
// under the store's write lock with this batch last.
type IngestSink struct {
	c   *stburst.Collection
	ing *stburst.Ingester
	// streamIdx resolves feed stream names; built once from the
	// collection's fixed stream list.
	streamIdx map[string]int
	// RetryBase/RetryMax tune the flush retry backoff (defaults
	// 100ms/5s); tests shrink them.
	RetryBase time.Duration
	RetryMax  time.Duration

	mu sync.Mutex
	// buffered counts documents left in the ingester by an Ingest call
	// that gave up on ctx cancellation; the next call (or the
	// ingester's Close) flushes them before accepting new work.
	buffered int
}

// NewIngestSink builds a sink over a collection and a dedicated
// ingester. The ingester should never auto-flush (its flush size and
// interval belong to the sink's callers — the sources batch
// themselves), so build it with a flush size no batch will reach.
func NewIngestSink(c *stburst.Collection, ing *stburst.Ingester) *IngestSink {
	k := &IngestSink{
		c:         c,
		ing:       ing,
		streamIdx: make(map[string]int, c.NumStreams()),
		RetryBase: 100 * time.Millisecond,
		RetryMax:  5 * time.Second,
	}
	for x := 0; x < c.NumStreams(); x++ {
		k.streamIdx[c.Stream(x).Name] = x
	}
	return k
}

// Docs implements connector.Sink: the collection's current document
// count, which sources compare against a checkpoint to dedupe resume.
func (k *IngestSink) Docs() int { return k.c.NumDocs() }

// convert validates one feed document into store form. The Counts map
// is expanded into sorted repeated tokens — prepareBatch recounts
// tokens verbatim, so the round trip reproduces the exact count map a
// corpus load would produce.
func (k *IngestSink) convert(d connector.Doc) (stburst.IncomingDocument, error) {
	x, ok := k.streamIdx[d.Stream]
	if !ok {
		return stburst.IncomingDocument{}, fmt.Errorf("unknown stream %q", d.Stream)
	}
	if d.Time < 0 || d.Time >= k.c.Timeline() {
		return stburst.IncomingDocument{}, fmt.Errorf("time %d outside the timeline [0, %d)", d.Time, k.c.Timeline())
	}
	doc := stburst.IncomingDocument{Stream: x, Time: d.Time, Text: d.Text, Tokens: d.Tokens}
	if len(d.Counts) > 0 {
		terms := make([]string, 0, len(d.Counts))
		for term := range d.Counts {
			terms = append(terms, term)
		}
		sort.Strings(terms)
		var tokens []string
		for _, term := range terms {
			for i := 0; i < d.Counts[term]; i++ {
				tokens = append(tokens, term)
			}
		}
		doc.Tokens = tokens
		doc.Text = ""
	}
	return doc, nil
}

// Ingest implements connector.Sink. On return with a nil error every
// accepted document is applied to the collection (and fsync'd to the
// WAL when one is attached); SinkResult.Total is the store's document
// count with this batch last, read under the write lock.
func (k *IngestSink) Ingest(ctx context.Context, docs []connector.Doc) (connector.SinkResult, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.buffered > 0 {
		// Residue from a call that was cancelled between Add and a
		// durable flush. Land it first — its documents belong to an
		// older batch whose source already moved on, so they are not
		// reported in this result, but they must precede this batch in
		// the collection.
		if _, err := k.flush(ctx); err != nil {
			return connector.SinkResult{}, err
		}
		k.buffered = 0
	}
	var res connector.SinkResult
	valid := make([]stburst.IncomingDocument, 0, len(docs))
	for _, d := range docs {
		doc, err := k.convert(d)
		if err != nil {
			res.Rejected++
			continue
		}
		valid = append(valid, doc)
	}
	if len(valid) == 0 {
		res.Total = k.c.NumDocs()
		return res, nil
	}
	if _, err := k.ing.Add(valid...); err != nil {
		// The ingester never auto-flushes for sink batches, so an Add
		// error means it is closed (shutdown): nothing was buffered.
		return connector.SinkResult{}, err
	}
	k.buffered = len(valid)
	ires, err := k.flush(ctx)
	if err != nil {
		return connector.SinkResult{}, err
	}
	k.buffered = 0
	res.Applied = len(valid)
	res.Total = ires.TotalDocs
	return res, nil
}

// flush drives the ingester until the buffered documents are durable,
// retrying transient errors with capped backoff. It returns only on
// success, ctx cancellation (documents stay buffered; Close or the
// next call lands them), or a permanent error (ingester closed).
func (k *IngestSink) flush(ctx context.Context) (*stburst.IngestResult, error) {
	backoff := k.RetryBase
	for {
		res, err := k.ing.Flush(ctx)
		if err == nil {
			return res, nil
		}
		if errors.Is(err, stburst.ErrIngestIncomplete) {
			// The documents WERE appended (and logged); only the index
			// refresh is owed, and the store repairs it on a later
			// ingest. For delivery accounting this is success.
			return &stburst.IngestResult{Generation: 0, TotalDocs: k.c.NumDocs()}, nil
		}
		if errors.Is(err, stburst.ErrIngesterClosed) || ctx.Err() != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > k.RetryMax {
			backoff = k.RetryMax
		}
	}
}

// EnableConnectors points the stats and metrics surface at a connector
// supervisor. Call after Add-ing every source and before Start, like
// EnableIngest: the per-source gauge families are registered here, and
// a scrape must never race source registration. The server does not
// own the supervisor's lifecycle — the caller starts it after the WAL
// is attached and stops it before the ingesters close.
func (s *Server) EnableConnectors(sup *connector.Supervisor) {
	s.connectors = sup
	for i := 0; i < sup.NumSources(); i++ {
		i := i
		st := sup.StatAt(i)
		label := metrics.L("connector", st.Name)
		s.obs.s.NewGaugeFunc("stserve_connector_docs_total",
			"Documents durably ingested through this connector.",
			func() float64 { return float64(sup.StatAt(i).Docs) }, label)
		s.obs.s.NewGaugeFunc("stserve_connector_errors_total",
			"Parse failures, validation rejects and transport errors on this connector.",
			func() float64 { return float64(sup.StatAt(i).Errors) }, label)
		s.obs.s.NewGaugeFunc("stserve_connector_restarts_total",
			"Times the supervisor restarted this connector after a failure.",
			func() float64 { return float64(sup.StatAt(i).Restarts) }, label)
		if st.Lag >= 0 {
			s.obs.s.NewGaugeFunc("stserve_connector_lag_bytes",
				"Feed bytes not yet read by the tailing connector.",
				func() float64 { return float64(sup.StatAt(i).Lag) }, label)
		}
	}
}

// connectorStats assembles the /v1/stats connectors block.
func (s *Server) connectorStats() map[string]any {
	if s.connectors == nil {
		return map[string]any{"enabled": false}
	}
	states := s.connectors.Stats()
	sources := make([]map[string]any, len(states))
	for i, st := range states {
		src := map[string]any{
			"name":     st.Name,
			"state":    st.State,
			"docs":     st.Docs,
			"errors":   st.Errors,
			"restarts": st.Restarts,
		}
		if st.Lag >= 0 {
			src["lag_bytes"] = st.Lag
		}
		if st.Conns >= 0 {
			src["connections"] = st.Conns
		}
		if st.LastError != "" {
			src["last_error"] = st.LastError
		}
		sources[i] = src
	}
	return map[string]any{"enabled": true, "sources": sources}
}
