package serve

import (
	"log"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"stburst"
	"stburst/internal/metrics"
	"stburst/internal/sub"
)

// observer is the server's metrics surface: per-route request counters
// and latency histograms, an in-flight gauge, and scrape-time gauges
// over store state. Instruments are created lazily the first time a
// route is hit (one registry write-lock each, then lock-free), so the
// per-request cost is one sync.Map load plus a few atomic adds —
// recording must never show up in the latency it measures.
type observer struct {
	s        *metrics.Registry
	inFlight *metrics.Gauge
	// routes maps a mux pattern ("POST /v1/search"; "unmatched" when no
	// route matched) to its instruments.
	routes sync.Map // string -> *routeInstruments
	mu     sync.Mutex
	srv    *Server
	// alertLatency times webhook deliveries (enqueue to 2xx); the
	// dispatcher's OnDelivery hook feeds it.
	alertLatency *metrics.Histogram
}

// routeInstruments holds one route's counters (indexed by status class)
// and latency histogram.
type routeInstruments struct {
	byClass [5]*metrics.Counter // 1xx..5xx
	latency *metrics.Histogram
}

// statusClasses are the code label values, indexed by statusCode/100-1.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

func newObserver(srv *Server) *observer {
	o := &observer{s: metrics.NewRegistry(), srv: srv}
	o.inFlight = o.s.NewGauge("stserve_http_in_flight",
		"Requests currently being served.")
	o.s.NewGaugeFunc("stserve_uptime_seconds",
		"Seconds since the server was wired.",
		func() float64 { return time.Since(srv.started).Seconds() })
	o.s.NewGaugeFunc("stserve_store_generation",
		"Store generation: advances on every swap, reload and ingest.",
		func() float64 { return float64(srv.store.Generation()) })
	o.s.NewGaugeFunc("stserve_collection_docs",
		"Documents resident in the collection (loaded plus ingested).",
		func() float64 { return float64(srv.c.NumDocs()) })
	o.s.NewGaugeFunc("stserve_resident_indexes",
		"Pattern indexes resident in the store.",
		func() float64 { return float64(len(srv.store.Resident())) })
	// Shard identity is immutable for the life of the store, but exposed
	// as gauges so a cluster dashboard can assert every member reports
	// the expected coordinates without scraping /v1/healthz.
	o.s.NewGaugeFunc("stserve_shard_index",
		"This server's shard index within the vocabulary partition (0 when unsharded).",
		func() float64 { return float64(srv.store.ShardInfo().Shard) })
	o.s.NewGaugeFunc("stserve_shard_count",
		"Total shard count of the vocabulary partition (1 when unsharded).",
		func() float64 { return float64(srv.store.ShardInfo().Shards) })
	o.s.NewGaugeFunc("stserve_pending_ingest_docs",
		"Documents buffered in the ingester awaiting a flush.",
		func() float64 {
			if srv.ing == nil {
				return 0
			}
			return float64(srv.ing.Pending())
		})
	o.s.NewGaugeFunc("stserve_ingested_docs_total",
		"Documents accepted through POST /v1/documents.",
		func() float64 { return float64(srv.ingests.Load()) })
	// WAL gauges read a lock-free stats snapshot (Store.WALStats never
	// blocks behind an in-flight ingest) and report 0 with no log
	// attached, so the exposition is stable across deployments.
	walStat := func(f func(stburst.WALStats) float64) func() float64 {
		return func() float64 {
			st, ok := srv.store.WALStats()
			if !ok {
				return 0
			}
			return f(st)
		}
	}
	o.s.NewGaugeFunc("stserve_wal_last_seq",
		"Sequence number of the most recent batch fsync'd to the write-ahead log (0 with no WAL).",
		walStat(func(st stburst.WALStats) float64 { return float64(st.LastSeq) }))
	o.s.NewGaugeFunc("stserve_wal_batches",
		"Batches held across all write-ahead log segments.",
		walStat(func(st stburst.WALStats) float64 { return float64(st.Batches) }))
	o.s.NewGaugeFunc("stserve_wal_segments",
		"Write-ahead log segment files on disk.",
		walStat(func(st stburst.WALStats) float64 { return float64(st.Segments) }))
	o.s.NewGaugeFunc("stserve_wal_bytes",
		"Total size of the write-ahead log in bytes.",
		walStat(func(st stburst.WALStats) float64 { return float64(st.Bytes) }))
	o.s.NewGaugeFunc("stserve_wal_syncs_total",
		"Fsyncs performed by the write-ahead log since it opened.",
		walStat(func(st stburst.WALStats) float64 { return float64(st.Syncs) }))
	// Standing-query metrics are registered whether or not -subscriptions
	// armed the surface (everything reads 0 when disabled), keeping the
	// exposition stable across deployments. The dispatcher/broker reads
	// are nil-safe: EnableSubscriptions runs before traffic, like
	// EnableIngest, but a scrape may land on a server that never arms it.
	o.s.NewGaugeFunc("stserve_subscriptions",
		"Standing queries currently registered.",
		func() float64 { return float64(srv.store.NumSubscriptions()) })
	o.s.NewGaugeFunc("stserve_alerts_matched_total",
		"Alerts the post-ingest matcher has produced.",
		func() float64 { return float64(srv.alertsMatched.Load()) })
	dispStat := func(f func(sub.DispatcherStats) float64) func() float64 {
		return func() float64 {
			d := srv.dispatcher
			if d == nil {
				return 0
			}
			return f(d.Stats())
		}
	}
	o.s.NewGaugeFunc("stserve_alerts_delivered_total",
		"Alerts successfully POSTed to subscriber webhooks.",
		dispStat(func(ds sub.DispatcherStats) float64 { return float64(ds.DeliveredAlerts) }))
	o.s.NewGaugeFunc("stserve_alerts_dropped_total",
		"Alerts abandoned because the delivery queue was full or every retry failed.",
		dispStat(func(ds sub.DispatcherStats) float64 { return float64(ds.DroppedAlerts) }))
	o.s.NewGaugeFunc("stserve_sse_clients",
		"Connected /v1/alerts/stream clients.",
		func() float64 {
			if srv.broker == nil {
				return 0
			}
			return float64(srv.broker.Clients())
		})
	o.s.NewGaugeFunc("stserve_sse_dropped_events_total",
		"SSE events dropped on full client buffers.",
		func() float64 {
			if srv.broker == nil {
				return 0
			}
			return float64(srv.broker.Dropped())
		})
	o.alertLatency = o.s.NewHistogram("stserve_alert_delivery_seconds",
		"Webhook delivery latency from enqueue to 2xx, in seconds.", nil)
	return o
}

// route returns (creating on first use) the instruments of one route.
func (o *observer) route(pattern string) *routeInstruments {
	if pattern == "" {
		pattern = "unmatched"
	}
	if ri, ok := o.routes.Load(pattern); ok {
		return ri.(*routeInstruments)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if ri, ok := o.routes.Load(pattern); ok { // lost the creation race
		return ri.(*routeInstruments)
	}
	ri := &routeInstruments{
		latency: o.s.NewHistogram("stserve_http_request_seconds",
			"Request latency by route.", nil, metrics.L("route", pattern)),
	}
	for i, class := range statusClasses {
		ri.byClass[i] = o.s.NewCounter("stserve_http_requests_total",
			"Requests served by route and status class.",
			metrics.L("route", pattern), metrics.L("code", class))
	}
	o.routes.Store(pattern, ri)
	return ri
}

// statusWriter records the response status. Unwrap keeps
// http.ResponseController (the reload/ingest handlers lift their write
// deadlines through it) working across the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument serves r through next, recording in-flight depth, status
// class and latency against the matched mux pattern. The pattern is read
// off the request after routing — the mux stamps r.Pattern during the
// match — so route labels never explode on unmatched garbage paths
// (those all share the "unmatched" series).
func (o *observer) instrument(next http.Handler, w http.ResponseWriter, r *http.Request) {
	o.inFlight.Inc()
	defer o.inFlight.Dec()
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	next.ServeHTTP(sw, r)
	elapsed := time.Since(start).Seconds()
	status := sw.status
	if status == 0 {
		// Nothing was written: net/http will send 200 with an empty body.
		status = http.StatusOK
	}
	ri := o.route(r.Pattern)
	if cls := status/100 - 1; cls >= 0 && cls < len(ri.byClass) {
		ri.byClass[cls].Inc()
	}
	ri.latency.Observe(elapsed)
}

// handleMetrics answers GET /metrics with the Prometheus text format.
func (o *observer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := o.s.WriteText(w); err != nil {
		// The header is out; all that remains is to note the dead client.
		log.Printf("writing /metrics: %v", err)
	}
}

// Registry exposes the server's metrics registry — the load generator's
// in-process smoke test and the stserve debug listener both read it.
func (s *Server) Registry() *metrics.Registry { return s.obs.s }

// DebugHandler returns the handler stserve binds to -debug-addr: pprof
// under /debug/pprof/ plus a second /metrics exposition. Profiling is
// deliberately kept off the serving listener — a heap or CPU profile
// holds the process's attention for seconds, and an unauthenticated
// public port must not offer that to arbitrary clients.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.obs.handleMetrics)
	return mux
}
