// Package serve implements the stserve HTTP layer: the versioned /v1
// query, ingest and admin API over one collection and one multi-kind
// pattern store, the legacy pre-/v1 aliases, and the observability
// surface (Prometheus-text GET /metrics on the serving listener, pprof
// on a separate debug handler). It lives under internal/ rather than in
// cmd/stserve so the load generator's tests can boot the real server
// in-process against a generated corpus.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stburst"
	"stburst/internal/connector"
	"stburst/internal/geo"
	"stburst/internal/search"
	"stburst/internal/sub"
)

// server is the HTTP query layer over one collection and one multi-kind
// pattern store. The store holds up to one immutable index per pattern
// kind behind an atomic pointer, so any number of requests may run
// concurrently and POST /v1/reload can swap in freshly mined indexes
// without pausing traffic: a request observes either the old resident
// set or the new one, never a torn mix.
//
// The stable contract is the versioned /v1/ JSON API:
//
//	POST /v1/search          structured spatiotemporal query (stburst.Query
//	                         JSON, including "kind": regional |
//	                         combinatorial | temporal | any)
//	GET  /v1/patterns/{term} stored patterns, filterable by ?kind=&region=&from=&to=
//	GET  /v1/indexes         the resident kinds with their sizes and fingerprints
//	POST /v1/documents       live batch ingest (requires -ingest): append
//	                         documents and incrementally re-mine the dirty
//	                         terms under traffic
//	GET  /v1/generation      the store generation, for cache-busting
//	POST /v1/reload          atomically reload the snapshot/bundle from disk
//	                         (the cold-path alternative to /v1/documents)
//	POST /v1/subscriptions   register a standing query (requires
//	                         -subscriptions); GET lists, GET/{id} fetches,
//	                         DELETE /{id} removes
//	GET  /v1/alerts/stream   Server-Sent Events feed of every alert batch
//	                         the post-ingest matcher produces
//	GET  /v1/stats           index and traffic statistics
//	GET  /v1/healthz         liveness probe
//
// The pre-/v1 routes (/healthz, /stats, /patterns/{term}, /search?q=&k=)
// remain as aliases for existing clients; on a single-kind store they
// behave exactly as before the store existed.
type Server struct {
	c     *stburst.Collection
	store *stburst.Store
	// ing is the batching front of the write surface; nil keeps the
	// server read-only and POST /v1/documents answers 403 (the -ingest
	// flag gates it).
	ing *stburst.Ingester
	// streamIdx resolves incoming documents' stream names. It is built
	// from the collection's fixed stream list, never mutated.
	streamIdx map[string]int
	// snapshotPath is the file POST /v1/reload re-reads; empty disables
	// the route (the server was started without -snapshot).
	snapshotPath string
	// reloadMu serializes reloads: the swap itself is atomic, but two
	// interleaved file reads racing to Replace would make "which file
	// won" arbitrary. A reload is the cold path — on an ingesting server
	// it installs whatever the snapshot file holds, superseding any
	// incremental refreshes since it was written (the appended documents
	// themselves always survive: they live in the collection, and the
	// next ingest re-mines from the current corpus).
	reloadMu sync.Mutex
	// points caches the stream locations for the combinatorial
	// pattern-vs-region intersection checks.
	points []stburst.Point
	// fpOnce caches the corpus fingerprint reported by /v1/healthz and
	// /v1/stats: the shard bundle's recorded checksum when it carries
	// one, otherwise the collection checksum computed once on first use
	// (a full corpus walk — too hot for a health probe to repeat).
	fpOnce   sync.Once
	fp       string
	started  time.Time
	requests atomic.Int64
	searches atomic.Int64
	reloads  atomic.Int64
	ingests  atomic.Int64 // documents accepted through POST /v1/documents
	// Standing queries: false/nil until EnableSubscriptions arms the
	// surface (the -subscriptions flag gates it, like -ingest gates the
	// write surface). alertsMatched counts every alert the post-ingest
	// matcher handed the sink, before delivery fan-out.
	subsEnabled bool
	// allowPrivateHooks mirrors the dispatcher's AllowPrivate option so
	// registration can refuse visibly-private webhook targets with a
	// clean 400 instead of letting every delivery fail at dial time.
	allowPrivateHooks bool
	dispatcher        *sub.Dispatcher
	broker            *sub.Broker
	alertsMatched     atomic.Int64
	// connectors is the streaming-source supervisor, nil until
	// EnableConnectors points the stats/metrics surface at it (the
	// -tail / -listen-ingest flags gate it). Lifecycle stays with the
	// caller; the server only reads its stats.
	connectors *connector.Supervisor
	mux        *http.ServeMux
	obs        *observer
}

// New wires the endpoint handlers. snapshotPath may be empty, in
// which case POST /v1/reload is rejected. The write surface starts
// disabled; EnableIngest arms it.
func New(c *stburst.Collection, store *stburst.Store, snapshotPath string) *Server {
	s := &Server{c: c, store: store, snapshotPath: snapshotPath, started: time.Now(), mux: http.NewServeMux()}
	s.points = make([]stburst.Point, c.NumStreams())
	s.streamIdx = make(map[string]int, c.NumStreams())
	for x := range s.points {
		s.points[x] = c.Stream(x).Location
		s.streamIdx[c.Stream(x).Name] = x
	}
	// The versioned contract.
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/generation", s.handleGeneration)
	s.mux.HandleFunc("GET /v1/indexes", s.handleIndexes)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/documents", s.handleDocuments)
	s.mux.HandleFunc("GET /v1/patterns/{term}", s.handlePatterns)
	s.mux.HandleFunc("POST /v1/search", s.handleSearchV1)
	// The standing-query surface: registered unconditionally so the
	// routes answer a clean 403 (not 404) until -subscriptions arms them.
	s.mux.HandleFunc("POST /v1/subscriptions", s.handleSubscriptionCreate)
	s.mux.HandleFunc("GET /v1/subscriptions", s.handleSubscriptionList)
	s.mux.HandleFunc("GET /v1/subscriptions/{id}", s.handleSubscriptionGet)
	s.mux.HandleFunc("DELETE /v1/subscriptions/{id}", s.handleSubscriptionDelete)
	s.mux.HandleFunc("GET /v1/alerts/stream", s.handleAlertStream)
	// Legacy aliases, kept verbatim for pre-/v1 clients.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /patterns/{term}", s.handlePatterns)
	s.mux.HandleFunc("GET /search", s.handleSearchLegacy)
	// Observability: the Prometheus text exposition shares the serving
	// listener (a scrape is as cheap as a query); pprof deliberately does
	// not — see DebugHandler.
	s.obs = newObserver(s)
	s.mux.HandleFunc("GET /metrics", s.obs.handleMetrics)
	return s
}

// enableIngest arms the write surface with a batching ingester. Call
// before serving traffic.
func (s *Server) EnableIngest(ing *stburst.Ingester) { s.ing = ing }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.obs.instrument(s.mux, w, r)
}

// writeJSON encodes v into a buffer before touching the ResponseWriter,
// so an encoding failure still produces a clean 500 (no header has been
// written yet) instead of a truncated 200 body. Encode and write errors
// are logged — a failed write after the header means the client is gone,
// and the only remaining duty is to record it, never to write again.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		if _, err := fmt.Fprintln(w, `{"error":"internal: response encoding failed"}`); err != nil {
			log.Printf("writing encoding-failure response: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := buf.WriteTo(w); err != nil {
		log.Printf("writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// corpusFingerprint returns the fingerprint identifying the corpus this
// server answers for: the shard bundle's recorded checksum when one was
// mined in, else the boot-time collection checksum, computed lazily and
// cached. On an ingesting server it identifies the corpus as mined —
// the generation, not the fingerprint, tracks live mutation.
func (s *Server) corpusFingerprint() string {
	s.fpOnce.Do(func() {
		if fp := s.store.ShardInfo().CorpusFingerprint; fp != "" {
			s.fp = fp
			return
		}
		s.fp = s.c.Checksum()
	})
	return s.fp
}

// handleHealthz answers the liveness probe. Beyond the legacy
// {"status": "ok"} (still present, so existing probes keep matching),
// the body carries the cheap membership facts a cluster gateway polls:
// the store generation, the corpus fingerprint, and the shard identity.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	si := s.store.ShardInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"generation":  s.store.Generation(),
		"fingerprint": s.corpusFingerprint(),
		"shard":       si.Shard,
		"shards":      si.Shards,
		"scheme":      si.Scheme,
	})
}

// indexJSON is one resident index in /v1/indexes and /v1/stats.
type indexJSON struct {
	Kind        string `json:"kind"`
	Terms       int    `json:"terms"`
	Patterns    int    `json:"patterns"`
	Fingerprint string `json:"fingerprint"`
}

// indexes snapshots the resident set for a response, atomically: one
// generation of the store, never a mix across a concurrent reload.
func (s *Server) indexes() []indexJSON {
	var out []indexJSON
	for _, ix := range s.store.Resident() {
		out = append(out, indexJSON{
			Kind:        ix.PatternKind().String(),
			Terms:       ix.NumTerms(),
			Patterns:    ix.NumPatterns(),
			Fingerprint: ix.Fingerprint(),
		})
	}
	return out
}

func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"indexes": s.indexes()})
}

func (s *Server) handleGeneration(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"generation": s.store.Generation()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One snapshot of the resident set for the whole response: a reload
	// landing mid-handler must not leave the legacy top-level fields
	// describing a different index generation than the indexes array.
	ixs := s.indexes()
	pending := 0
	if s.ing != nil {
		pending = s.ing.Pending()
	}
	si := s.store.ShardInfo()
	stats := map[string]any{
		"indexes":        ixs,
		"docs":           s.c.NumDocs(),
		"streams":        s.c.NumStreams(),
		"timeline":       s.c.Timeline(),
		"generation": s.store.Generation(),
		// The corpus fingerprint lives inside the shard object: the legacy
		// top-level "fingerprint" below is the first resident index's
		// pattern fingerprint and must keep meaning exactly that.
		"shard": map[string]any{
			"shard":       si.Shard,
			"shards":      si.Shards,
			"scheme":      si.Scheme,
			"fingerprint": s.corpusFingerprint(),
		},
		"ingest_enabled": s.ing != nil,
		"pending_ingest": pending,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"requests":       s.requests.Load(),
		"searches":       s.searches.Load(),
		"reloads":        s.reloads.Load(),
		"ingested_docs":  s.ingests.Load(),
	}
	// Standing queries: the enabled flag distinguishes "surface sealed"
	// from "no one subscribed yet"; delivery counters appear only when a
	// dispatcher exists, mirroring the WAL block below.
	subsStats := map[string]any{
		"enabled":        s.subsEnabled,
		"count":          s.store.NumSubscriptions(),
		"matched_alerts": s.alertsMatched.Load(),
	}
	if d := s.dispatcher; d != nil {
		ds := d.Stats()
		subsStats["delivered_alerts"] = ds.DeliveredAlerts
		subsStats["dropped_alerts"] = ds.DroppedAlerts
	}
	if b := s.broker; b != nil {
		subsStats["sse_clients"] = b.Clients()
	}
	stats["subscriptions"] = subsStats
	// Streaming connectors: enabled=false until -tail/-listen-ingest
	// arm the subsystem; per-source counters mirror the
	// stserve_connector_* gauge families.
	stats["connectors"] = s.connectorStats()
	// Durability: absent entirely (enabled=false) without a WAL, so
	// dashboards can tell "no log configured" from "log at sequence 0".
	if wst, ok := s.store.WALStats(); ok {
		stats["wal"] = map[string]any{
			"enabled":  true,
			"last_seq": wst.LastSeq,
			"batches":  wst.Batches,
			"segments": wst.Segments,
			"bytes":    wst.Bytes,
			"syncs":    wst.Syncs,
		}
	} else {
		stats["wal"] = map[string]any{"enabled": false}
	}
	// Legacy top-level fields describe the first resident index, which
	// on a pre-store single-kind deployment is exactly the old payload.
	if len(ixs) > 0 {
		stats["kind"] = ixs[0].Kind
		stats["terms"] = ixs[0].Terms
		stats["patterns"] = ixs[0].Patterns
		stats["fingerprint"] = ixs[0].Fingerprint
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleReload re-reads the snapshot/bundle file and atomically replaces
// the store's resident set with its contents. Every member is integrity-
// checked and its search engine warmed before the swap, so a failed or
// corrupt reload leaves the old indexes serving and a successful one
// never exposes a cold engine to traffic.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		writeError(w, http.StatusConflict, "server was started without -snapshot; nothing to reload")
		return
	}
	// Reloading is an admin operation that decodes a multi-gigabyte-class
	// artifact and warms three search engines: on a large corpus it
	// outlives the query-sized WriteTimeout, which would kill the
	// connection before the response is written. Lift the deadline for
	// this request only.
	if err := http.NewResponseController(w).SetWriteDeadline(time.Time{}); err != nil {
		log.Printf("reload: clearing write deadline: %v", err)
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	f, err := os.Open(s.snapshotPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload: "+err.Error())
		return
	}
	defer f.Close()
	fresh, err := stburst.LoadStore(f, s.c)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload: "+err.Error())
		return
	}
	ixs := fresh.Resident()
	for _, ix := range ixs {
		ix.Engine() // warm before the swap: no query pays the build
	}
	if err := s.store.Replace(ixs...); err != nil {
		writeError(w, http.StatusInternalServerError, "reload: "+err.Error())
		return
	}
	s.reloads.Add(1)
	log.Printf("reloaded %s: %d indexes", s.snapshotPath, len(ixs))
	writeJSON(w, http.StatusOK, map[string]any{"reloaded": true, "indexes": s.indexes()})
}

// documentJSON is one incoming document of POST /v1/documents: a stream
// name (as in the corpus header), a timestamp on the collection's
// timeline, and the document text.
type documentJSON struct {
	Stream string `json:"stream"`
	Time   int    `json:"time"`
	Text   string `json:"text"`
}

// documentsRequest is the POST /v1/documents body.
type documentsRequest struct {
	Documents []documentJSON `json:"documents"`
}

// maxIngestBody caps a POST /v1/documents body. The write surface is
// unauthenticated like the rest of /v1, and the decoder materializes
// the whole batch in memory — without a ceiling one request could
// demand gigabytes (the same concern MaxK addresses on the read side).
// 8 MiB comfortably fits thousands of news-sized documents per request;
// larger corpora arrive as multiple batches.
const maxIngestBody = 8 << 20

// handleDocuments answers POST /v1/documents, the live write surface:
// the batch is validated, handed to the ingester, and acknowledged with
// 202 Accepted. When the add flushed (the default ingester flushes every
// request), the response carries the new store generation and the
// batch's dirty-term count; when the batch is buffered for a later
// size- or interval-driven flush, it reports the pending depth and the
// still-current generation instead. Without -ingest the route answers
// 403: the write surface is an operator opt-in on an otherwise
// read-only, unauthenticated service.
func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		writeError(w, http.StatusForbidden, "ingestion is disabled; start stserve with -ingest")
		return
	}
	var req documentsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("documents body exceeds %d bytes; split the batch", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid documents body: "+err.Error())
		return
	}
	if len(req.Documents) == 0 {
		writeError(w, http.StatusBadRequest, "documents must be a non-empty array")
		return
	}
	docs := make([]stburst.IncomingDocument, len(req.Documents))
	for i, d := range req.Documents {
		x, ok := s.streamIdx[d.Stream]
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("document %d: unknown stream %q", i, d.Stream))
			return
		}
		if d.Time < 0 || d.Time >= s.c.Timeline() {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("document %d: time %d outside the timeline [0, %d)", i, d.Time, s.c.Timeline()))
			return
		}
		docs[i] = stburst.IncomingDocument{Stream: x, Time: d.Time, Text: d.Text}
	}

	// An add that triggers a flush re-mines the dirty terms and warms
	// fresh engines; on a large corpus that can outlive the query-sized
	// WriteTimeout, which would kill the connection before the response.
	// Lift the deadline for this request only, as the reload path does.
	if err := http.NewResponseController(w).SetWriteDeadline(time.Time{}); err != nil {
		log.Printf("ingest: clearing write deadline: %v", err)
	}
	res, err := s.ing.Add(docs...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "ingest: "+err.Error())
		return
	}
	s.ingests.Add(int64(len(docs)))
	body := map[string]any{
		"accepted": len(docs),
		"pending":  s.ing.Pending(),
	}
	if res != nil {
		body["flushed"] = true
		body["generation"] = res.Generation
		body["dirty_terms"] = res.DirtyTerms
	} else {
		body["flushed"] = false
		body["generation"] = s.store.Generation()
	}
	writeJSON(w, http.StatusAccepted, body)
}

// streamNames resolves stream indices to their names for human-readable
// responses.
func (s *Server) streamNames(streams []int) []string {
	out := make([]string, len(streams))
	for i, x := range streams {
		out[i] = s.c.Stream(x).Name
	}
	return out
}

type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

type intervalJSON struct {
	Stream string  `json:"stream"`
	Start  int     `json:"start"`
	End    int     `json:"end"`
	Weight float64 `json:"weight"`
}

type patternJSON struct {
	Kind      string         `json:"kind"`
	Start     int            `json:"start"`
	End       int            `json:"end"`
	Score     float64        `json:"score"`
	Rect      *rectJSON      `json:"rect,omitempty"`
	Streams   []string       `json:"streams,omitempty"`
	Intervals []intervalJSON `json:"intervals,omitempty"`
}

// parseSpan parses the ?from=&to= pair into a timespan. Either bound may
// be omitted; the other defaults to the start or end of the timeline. A
// one-sided bound beyond the timeline is a valid (empty) range, not an
// inversion: only an explicit from > to is rejected, matching what
// POST /v1/search accepts in its time field.
func (s *Server) parseSpan(from, to string) (*stburst.Timespan, error) {
	if from == "" && to == "" {
		return nil, nil
	}
	span := &stburst.Timespan{Start: 0, End: s.c.Timeline() - 1}
	if from != "" {
		v, err := strconv.Atoi(from)
		if err != nil {
			return nil, fmt.Errorf("from must be an integer timestamp, got %q", from)
		}
		span.Start = v
	}
	if to != "" {
		v, err := strconv.Atoi(to)
		if err != nil {
			return nil, fmt.Errorf("to must be an integer timestamp, got %q", to)
		}
		span.End = v
	}
	if span.Start > span.End {
		if from != "" && to != "" {
			return nil, fmt.Errorf("timespan [%d, %d] is inverted", span.Start, span.End)
		}
		// Only the defaulted bound made it inverted (e.g. ?from= past the
		// timeline): degenerate it into a span that overlaps nothing.
		if from != "" {
			span.End = span.Start
		} else {
			span.Start = span.End
		}
	}
	return span, nil
}

// patternsOf assembles the JSON form of one index's stored patterns of a
// term that intersect the given region/timespan (nil filters match
// everything). Intersection is decided by the same per-kind predicates
// the search engine's post-filter uses (search.WindowIntersects etc.),
// so the /v1 routes can never disagree about what "intersects" means.
func (s *Server) patternsOf(ix *stburst.PatternIndex, term string, region *stburst.Rect, span *stburst.Timespan) []patternJSON {
	var sp *search.Timespan
	if span != nil {
		sp = &search.Timespan{Start: span.Start, End: span.End}
	}
	kind := ix.PatternKind()
	var patterns []patternJSON
	switch kind {
	case stburst.KindRegional:
		for _, p := range ix.RegionalPatterns(term) {
			if !search.WindowIntersects(p, region, sp) {
				continue
			}
			patterns = append(patterns, patternJSON{
				Kind: kind.String(), Start: p.Start, End: p.End, Score: p.Score,
				Rect:    &rectJSON{MinX: p.Rect.MinX, MinY: p.Rect.MinY, MaxX: p.Rect.MaxX, MaxY: p.Rect.MaxY},
				Streams: s.streamNames(p.Streams),
			})
		}
	case stburst.KindCombinatorial:
		for _, p := range ix.CombinatorialPatterns(term) {
			if !search.CombIntersects(p, s.points, region, sp) {
				continue
			}
			pj := patternJSON{
				Kind: kind.String(), Start: p.Start, End: p.End, Score: p.Score,
				Streams: s.streamNames(p.Streams),
			}
			for _, iv := range p.Intervals {
				pj.Intervals = append(pj.Intervals, intervalJSON{
					Stream: s.c.Stream(iv.Stream).Name,
					Start:  iv.Start, End: iv.End, Weight: iv.Weight,
				})
			}
			patterns = append(patterns, pj)
		}
	case stburst.KindTemporal:
		for _, p := range ix.TemporalBursts(term) {
			if !search.TemporalIntersects(p, sp) {
				continue
			}
			patterns = append(patterns, patternJSON{Kind: kind.String(), Start: p.Start, End: p.End, Score: p.Score})
		}
	}
	return patterns
}

// handlePatterns serves GET /v1/patterns/{term}?kind=&region=&from=&to=
// and the legacy GET /patterns/{term} alias. An absent kind defaults to
// the sole resident kind when the store holds one index (the exact
// pre-store behavior) and to "any" — every resident kind, patterns
// concatenated in canonical kind order — otherwise.
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	term := r.PathValue("term")
	kind := stburst.KindAny
	if raw := r.URL.Query().Get("kind"); raw != "" {
		var err error
		if kind, err = stburst.ParseKind(raw); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	var region *stburst.Rect
	if raw := r.URL.Query().Get("region"); raw != "" {
		rect, err := geo.ParseRect(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		region = &rect
	}
	span, err := s.parseSpan(r.URL.Query().Get("from"), r.URL.Query().Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	resident := s.store.Resident() // one snapshot for the whole listing
	if kind != stburst.KindAny {
		match := resident[:0:0]
		for _, ix := range resident {
			if ix.PatternKind() == kind {
				match = append(match, ix)
			}
		}
		if len(match) == 0 {
			writeError(w, http.StatusNotFound, fmt.Sprintf("kind %v is not resident (have %v)", kind, s.store.Kinds()))
			return
		}
		resident = match
	}
	effective := kind
	if kind == stburst.KindAny && len(resident) == 1 {
		effective = resident[0].PatternKind()
	}
	var patterns []patternJSON
	for _, ix := range resident {
		patterns = append(patterns, s.patternsOf(ix, term, region, span)...)
	}
	if len(patterns) == 0 {
		writeError(w, http.StatusNotFound, "no patterns for term "+strconv.Quote(term))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"term":     term,
		"kind":     effective.String(),
		"patterns": patterns,
	})
}

type hitJSON struct {
	Doc    int     `json:"doc"`
	Kind   string  `json:"kind"`
	Stream string  `json:"stream"`
	Time   int     `json:"time"`
	Score  float64 `json:"score"`
}

// runQuery executes a structured query against the store and writes the
// response shared by both search routes. The request context is threaded
// through, so a client that disconnects mid-query cancels the retrieval
// loop.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, q stburst.Query) {
	s.searches.Add(1)
	start := time.Now()
	page, err := s.store.Query(r.Context(), q)
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; there is no one left to answer.
		log.Printf("search cancelled: %v", err)
		return
	case errors.Is(err, stburst.ErrKindNotResident):
		writeError(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hits := make([]hitJSON, len(page.Hits))
	for i, h := range page.Hits {
		hits[i] = hitJSON{Doc: h.Doc.ID, Kind: h.Kind.String(), Stream: h.Stream, Time: h.Doc.Time, Score: h.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":   q,
		"took_ms": float64(time.Since(start).Microseconds()) / 1000,
		// count is the size of *this page*; with offset paging the full
		// result-set size is unknown (the TA never enumerates it), and
		// more flags whether later pages exist.
		"count": len(hits),
		"more":  page.More,
		"hits":  hits,
	})
}

// handleSearchV1 answers POST /v1/search: the body is the stburst.Query
// JSON shape — including the kind field routing the query to one
// burstiness model or fanning it out with "any" — validated by
// Store.Query via Query.Validate.
func (s *Server) handleSearchV1(w http.ResponseWriter, r *http.Request) {
	var q stburst.Query
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "invalid query body: "+err.Error())
		return
	}
	s.runQuery(w, r, q)
}

// legacyHitJSON is the pre-/v1 hit shape, frozen without the kind tag:
// legacy clients may validate response fields strictly, so the alias
// keeps emitting exactly the bytes it always has.
type legacyHitJSON struct {
	Doc    int     `json:"doc"`
	Stream string  `json:"stream"`
	Time   int     `json:"time"`
	Score  float64 `json:"score"`
}

// handleSearchLegacy answers the pre-/v1 GET /search?q=&k= route with the
// original response shape. The query runs with KindAny, which on a
// single-kind store is exactly the pre-store behavior.
func (s *Server) handleSearchLegacy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		var err error
		if k, err = strconv.Atoi(raw); err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "parameter k must be a positive integer")
			return
		}
	}
	s.searches.Add(1)
	start := time.Now()
	page, err := s.store.Query(r.Context(), stburst.Query{Text: q, K: k})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			log.Printf("search cancelled: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := make([]legacyHitJSON, len(page.Hits))
	for i, h := range page.Hits {
		out[i] = legacyHitJSON{Doc: h.Doc.ID, Stream: h.Stream, Time: h.Doc.Time, Score: h.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":      q,
		"k":          k,
		"took_ms":    float64(time.Since(start).Microseconds()) / 1000,
		"total_hits": len(out),
		"hits":       out,
	})
}
