package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stburst"
	"stburst/internal/connector"
)

// This file tests the streaming-connector glue end to end: the
// IngestSink's validation and durability contract, and — the
// acceptance oracle — a tailing connector killed mid-stream whose
// reboot (WAL replay + checkpoint resume) reproduces a never-crashed
// store checksum-for-checksum.

// connectorIngester builds the dedicated never-auto-flush ingester a
// connector sink requires.
func connectorIngester(s *stburst.Store) *stburst.Ingester {
	return stburst.NewIngester(s, stburst.WithFlushDocs(1<<30))
}

// fastSink builds an IngestSink with test-speed retry backoff.
func fastSink(c *stburst.Collection, ing *stburst.Ingester) *IngestSink {
	k := NewIngestSink(c, ing)
	k.RetryBase = time.Millisecond
	k.RetryMax = 10 * time.Millisecond
	return k
}

func TestIngestSinkValidatesAndApplies(t *testing.T) {
	c := serveCollection(t)
	s := storeOf(t, c, c.MineAllRegional(nil, 0))
	ing := connectorIngester(s)
	defer ing.Close()
	sink := fastSink(c, ing)
	base := c.NumDocs()

	res, err := sink.Ingest(context.Background(), []connector.Doc{
		{Stream: "lima", Time: 3, Counts: map[string]int{"earthquake": 2, "rescue": 1}},
		{Stream: "atlantis", Time: 3, Text: "no such stream"},
		{Stream: "quito", Time: 99, Text: "time beyond the timeline"},
		{Stream: "tokyo", Time: 0, Tokens: []string{"exports", "surge", "import"}},
	})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Applied != 2 || res.Rejected != 2 {
		t.Fatalf("result = %+v, want 2 applied, 2 rejected", res)
	}
	if res.Total != base+2 || c.NumDocs() != base+2 {
		t.Fatalf("Total = %d, collection = %d, want %d", res.Total, c.NumDocs(), base+2)
	}

	// The counts round trip exactly: expanding the map into sorted
	// repeated tokens and recounting must reproduce the same content a
	// direct token append stores. The oracle presents each document's
	// tokens pre-sorted because the live Append path interns a
	// document's new terms in sorted order, and Checksum covers the
	// dictionary.
	oracle := serveCollection(t)
	if _, err := oracle.AddTokens(0, 3, []string{"earthquake", "earthquake", "rescue"}); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.AddTokens(2, 0, []string{"exports", "import", "surge"}); err != nil {
		t.Fatal(err)
	}
	if c.Checksum() != oracle.Checksum() {
		t.Fatal("count expansion did not reproduce AddStringCounts content")
	}
}

func TestIngestSinkCancelledContextKeepsBatchForRetry(t *testing.T) {
	c := serveCollection(t)
	s := storeOf(t, c, c.MineAllRegional(nil, 0))
	ing := connectorIngester(s)
	defer ing.Close()
	sink := fastSink(c, ing)
	base := c.NumDocs()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sink.Ingest(cancelled, []connector.Doc{{Stream: "lima", Time: 1, Text: "boat race"}}); err == nil {
		t.Fatal("Ingest with cancelled context succeeded")
	}
	// The document is residue inside the ingester; the next successful
	// call must land it exactly once, before its own batch.
	res, err := sink.Ingest(context.Background(), []connector.Doc{{Stream: "quito", Time: 2, Text: "border fair"}})
	if err != nil {
		t.Fatalf("follow-up Ingest: %v", err)
	}
	if res.Applied != 1 || res.Total != base+2 {
		t.Fatalf("follow-up result = %+v, want 1 applied and total %d", res, base+2)
	}
	if got := c.NumDocs(); got != base+2 {
		t.Fatalf("collection = %d docs, want %d (residue lost or duplicated)", got, base+2)
	}
}

// tailFeedDoc is the JSONL line shape the tail tests write.
func tailFeedLine(stream string, tm int, counts map[string]int) string {
	raw, _ := json.Marshal(connector.Doc{Stream: stream, Time: tm, Counts: counts})
	return string(raw) + "\n"
}

// bootTailed assembles one "process incarnation" of a WAL-backed,
// tail-connected store: fresh collection, WAL replay, mine, attach,
// dedicated ingester + sink, supervised tailer. It returns the pieces
// a test needs to observe and to crash (cancel + abandon).
type tailedProc struct {
	c    *stburst.Collection
	s    *stburst.Store
	w    *stburst.WAL
	ing  *stburst.Ingester
	sink *IngestSink
	sup  *connector.Supervisor
}

func bootTailed(t *testing.T, walDir, feed string) *tailedProc {
	t.Helper()
	ctx := context.Background()
	c := serveCollection(t)
	w, err := stburst.OpenWAL(walDir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if _, err := c.ReplayWAL(ctx, w); err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	s, err := c.MineStore(ctx, nil)
	if err != nil {
		t.Fatalf("MineStore: %v", err)
	}
	if _, err := s.AttachWAL(ctx, w); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	ing := connectorIngester(s)
	sink := fastSink(c, ing)
	sup := connector.NewSupervisor(connector.SupervisorConfig{
		BackoffBase: time.Millisecond,
		Logf:        func(string, ...any) {},
	})
	sup.Add(connector.NewTailSource(connector.TailConfig{
		Path:      feed,
		BatchDocs: 3,
		Poll:      2 * time.Millisecond,
	}, sink))
	sup.Start(ctx)
	return &tailedProc{c: c, s: s, w: w, ing: ing, sink: sink, sup: sup}
}

func TestTailCrashRecoveryChecksumOracle(t *testing.T) {
	// The acceptance property: kill -9 during active tailing, reboot,
	// and the recovered store holds every feed document exactly once —
	// asserted by checksum equality against a store that ingested the
	// same feed without ever crashing. Swept over several cut points
	// so the crash lands before, between and after checkpoint writes.
	const nDocs = 12
	var lines []string
	var docs []connector.Doc
	for i := 0; i < nDocs; i++ {
		stream := []string{"lima", "quito", "tokyo"}[i%3]
		counts := map[string]int{"flood": 1 + i%2, "rescue": 1, fmt.Sprintf("term%d", i): 1}
		lines = append(lines, tailFeedLine(stream, i%12, counts))
		docs = append(docs, connector.Doc{Stream: stream, Time: i % 12, Counts: counts})
	}

	// The never-crashed oracle, fed through the same sink code path.
	oracleC := serveCollection(t)
	oracleS := storeOf(t, oracleC, oracleC.MineAllRegional(nil, 0))
	oracleIng := connectorIngester(oracleS)
	if _, err := fastSink(oracleC, oracleIng).Ingest(context.Background(), docs); err != nil {
		t.Fatalf("oracle ingest: %v", err)
	}
	if err := oracleIng.Close(); err != nil {
		t.Fatal(err)
	}
	oracleSum := oracleC.Checksum()
	oracleDocs := oracleC.NumDocs()

	for _, cut := range []int{1, 4, 9} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			walDir := filepath.Join(dir, "wal")
			if err := os.MkdirAll(walDir, 0o755); err != nil {
				t.Fatal(err)
			}
			feed := filepath.Join(dir, "feed.jsonl")
			if err := os.WriteFile(feed, []byte(strings.Join(lines, "")), 0o644); err != nil {
				t.Fatal(err)
			}
			base := serveCollection(t).NumDocs()

			// First incarnation: tail until at least `cut` docs are
			// durable, then crash — cancel the supervisor and abandon
			// everything un-closed. The ingester is never closed and the
			// WAL is never cleanly shut, exactly like kill -9: only what
			// was fsync'd (WAL frames, checkpoint renames) survives.
			p1 := bootTailed(t, walDir, feed)
			deadline := time.Now().Add(10 * time.Second)
			for p1.sink.Docs() < base+cut && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if p1.sink.Docs() < base+cut {
				t.Fatalf("first incarnation never reached %d docs", base+cut)
			}
			p1.sup.Stop() // cancel + join; un-flushed residue dies with the process

			// Reboot: replay the WAL into a fresh collection, attach,
			// and resume the tailer from its checkpoint.
			p2 := bootTailed(t, walDir, feed)
			deadline = time.Now().Add(10 * time.Second)
			for p2.sink.Docs() < base+nDocs && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			// A moment for a would-be duplicate flush to land before the
			// equality check.
			time.Sleep(20 * time.Millisecond)
			p2.sup.Stop()
			if err := p2.ing.Close(); err != nil {
				t.Fatalf("closing ingester: %v", err)
			}

			if got := p2.c.NumDocs(); got != oracleDocs {
				t.Fatalf("recovered store has %d docs, oracle %d (lost or duplicated)", got, oracleDocs)
			}
			if p2.c.Checksum() != oracleSum {
				t.Fatal("recovered store checksum diverged from the never-crashed oracle")
			}
			if err := p2.w.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestServerConnectorsStatsAndMetrics(t *testing.T) {
	c := serveCollection(t)
	s := storeOf(t, c, c.MineAllRegional(nil, 0))
	srv := New(c, s, "")

	// Disabled by default: the stats block says so.
	_, body := get(t, srv, "/v1/stats")
	block, ok := body["connectors"].(map[string]any)
	if !ok || block["enabled"] != false {
		t.Fatalf("connectors block before enable = %v", body["connectors"])
	}

	dir := t.TempDir()
	feed := filepath.Join(dir, "feed.jsonl")
	if err := os.WriteFile(feed, []byte(tailFeedLine("lima", 1, map[string]int{"storm": 2})), 0o644); err != nil {
		t.Fatal(err)
	}
	ing := connectorIngester(s)
	defer ing.Close()
	sup := connector.NewSupervisor(connector.SupervisorConfig{Logf: func(string, ...any) {}})
	src := connector.NewTailSource(connector.TailConfig{Path: feed, Poll: 2 * time.Millisecond}, fastSink(c, ing))
	sup.Add(src)
	srv.EnableConnectors(sup)
	sup.Start(context.Background())
	defer sup.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for src.Stats().Docs < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	_, body = get(t, srv, "/v1/stats")
	block, ok = body["connectors"].(map[string]any)
	if !ok || block["enabled"] != true {
		t.Fatalf("connectors block = %v", body["connectors"])
	}
	sources, ok := block["sources"].([]any)
	if !ok || len(sources) != 1 {
		t.Fatalf("sources = %v, want one entry", block["sources"])
	}
	first := sources[0].(map[string]any)
	if first["name"] != src.Name() || first["state"] != "running" {
		t.Fatalf("source entry = %v", first)
	}
	if int(first["docs"].(float64)) != 1 {
		t.Fatalf("source docs = %v, want 1", first["docs"])
	}
	if _, hasLag := first["lag_bytes"]; !hasLag {
		t.Fatalf("tail source entry missing lag_bytes: %v", first)
	}

	// The per-connector gauge families are on /metrics with the source
	// name as the label.
	m := scrape(t, srv)
	label := `{connector="` + src.Name() + `"}`
	if got, ok := m["stserve_connector_docs_total"+label]; !ok || got != 1 {
		t.Errorf("stserve_connector_docs_total = %v (present=%v), want 1", got, ok)
	}
	for _, name := range []string{
		"stserve_connector_errors_total",
		"stserve_connector_restarts_total",
		"stserve_connector_lag_bytes",
	} {
		if _, ok := m[name+label]; !ok {
			t.Errorf("/metrics missing %s%s", name, label)
		}
	}
}
