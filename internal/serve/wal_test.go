package serve

import (
	"context"
	"net/http"
	"testing"

	"stburst"
)

// walServer wires a server over a mined store with a write-ahead log
// attached in a temp dir, plus one logged ingest so every WAL stat is
// nonzero.
func walServer(t *testing.T) (*Server, *stburst.WAL) {
	t.Helper()
	ctx := context.Background()
	c := serveCollection(t)
	store, err := c.MineStore(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := stburst.OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.AttachWAL(ctx, w); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Ingest(ctx, []stburst.IncomingDocument{
		{Stream: 0, Time: 8, Text: "aftershock damages harbor cranes"},
	}); err != nil {
		t.Fatal(err)
	}
	return New(c, store, ""), w
}

// TestStatsWALSection: /v1/stats carries a wal object — enabled=false
// without a log, full depth/sequence stats with one.
func TestStatsWALSection(t *testing.T) {
	c := serveCollection(t)
	bare := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	code, body := get(t, bare, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d, want 200", code)
	}
	wal, ok := body["wal"].(map[string]any)
	if !ok {
		t.Fatalf("stats wal field = %v, want an object", body["wal"])
	}
	if wal["enabled"] != false {
		t.Errorf("wal.enabled without a log = %v, want false", wal["enabled"])
	}

	s, w := walServer(t)
	defer w.Close()
	code, body = get(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d, want 200", code)
	}
	wal, ok = body["wal"].(map[string]any)
	if !ok {
		t.Fatalf("stats wal field = %v, want an object", body["wal"])
	}
	if wal["enabled"] != true {
		t.Errorf("wal.enabled = %v, want true", wal["enabled"])
	}
	if wal["last_seq"] != float64(1) || wal["batches"] != float64(1) {
		t.Errorf("wal sequence stats = %v, want last_seq 1, batches 1 after one ingest", wal)
	}
	if wal["segments"] != float64(1) {
		t.Errorf("wal.segments = %v, want 1", wal["segments"])
	}
	if b, _ := wal["bytes"].(float64); b <= 0 {
		t.Errorf("wal.bytes = %v, want > 0", wal["bytes"])
	}
	if sc, _ := wal["syncs"].(float64); sc < 1 {
		t.Errorf("wal.syncs = %v, want >= 1 under the default fsync policy", wal["syncs"])
	}
}

// TestMetricsWALGauges: the /metrics exposition carries the WAL gauges,
// zero without a log and tracking the log with one.
func TestMetricsWALGauges(t *testing.T) {
	c := serveCollection(t)
	bare := New(c, storeOf(t, c, c.MineAllRegional(nil, 0)), "")
	m := scrape(t, bare)
	for _, name := range []string{
		"stserve_wal_last_seq", "stserve_wal_batches", "stserve_wal_segments",
		"stserve_wal_bytes", "stserve_wal_syncs_total",
	} {
		v, ok := m[name]
		if !ok {
			t.Errorf("metric %s missing from the exposition", name)
		} else if v != 0 {
			t.Errorf("%s without a wal = %v, want 0", name, v)
		}
	}

	s, w := walServer(t)
	defer w.Close()
	m = scrape(t, s)
	if m["stserve_wal_last_seq"] != 1 || m["stserve_wal_batches"] != 1 {
		t.Errorf("wal gauges = last_seq %v, batches %v, want 1, 1 after one ingest",
			m["stserve_wal_last_seq"], m["stserve_wal_batches"])
	}
	if m["stserve_wal_segments"] != 1 {
		t.Errorf("stserve_wal_segments = %v, want 1", m["stserve_wal_segments"])
	}
	if m["stserve_wal_bytes"] <= 0 {
		t.Errorf("stserve_wal_bytes = %v, want > 0", m["stserve_wal_bytes"])
	}
	if m["stserve_wal_syncs_total"] < 1 {
		t.Errorf("stserve_wal_syncs_total = %v, want >= 1", m["stserve_wal_syncs_total"])
	}
}
