package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalLenContains(t *testing.T) {
	iv := Interval{Start: 3, End: 7}
	if got := iv.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	for _, tc := range []struct {
		t    int
		want bool
	}{{2, false}, {3, true}, {5, true}, {7, true}, {8, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{Start: 0, End: 2}, Interval{Start: 2, End: 4}, true},  // touch at 2
		{Interval{Start: 0, End: 2}, Interval{Start: 3, End: 4}, false}, // disjoint
		{Interval{Start: 0, End: 9}, Interval{Start: 3, End: 4}, true},  // nested
		{Interval{Start: 5, End: 5}, Interval{Start: 5, End: 5}, true},  // points
		{Interval{Start: 6, End: 8}, Interval{Start: 0, End: 5}, false}, // reversed order
	}
	for _, tc := range cases {
		if got := Intersects(tc.a, tc.b); got != tc.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := Intersects(tc.b, tc.a); got != tc.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestCommonSegment(t *testing.T) {
	if _, _, ok := CommonSegment(nil); ok {
		t.Fatal("empty set should have no common segment")
	}
	set := []Interval{{Start: 0, End: 10}, {Start: 4, End: 8}, {Start: 5, End: 12}}
	s, e, ok := CommonSegment(set)
	if !ok || s != 5 || e != 8 {
		t.Fatalf("got (%d,%d,%v), want (5,8,true)", s, e, ok)
	}
	set = append(set, Interval{Start: 9, End: 9})
	if _, _, ok := CommonSegment(set); ok {
		t.Fatal("set with empty intersection should report ok=false")
	}
}

// Lemma 1 of the paper: pairwise intersection of 1-D intervals is
// equivalent to a non-empty common intersection (Helly property).
func TestLemma1HellyProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		set := make([]Interval, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := int(raw[i]%20), int(raw[i+1]%20)
			if a > b {
				a, b = b, a
			}
			set = append(set, Interval{Start: a, End: b, Weight: 1})
		}
		_, _, common := CommonSegment(set)
		return PairwiseIntersect(set) == common
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWeightCliqueEmpty(t *testing.T) {
	if _, ok := MaxWeightClique(nil); ok {
		t.Fatal("empty input should report ok=false")
	}
}

func TestMaxWeightCliqueSingle(t *testing.T) {
	c, ok := MaxWeightClique([]Interval{{Start: 2, End: 5, Weight: 0.7, Stream: 3}})
	if !ok {
		t.Fatal("expected ok")
	}
	if len(c.Members) != 1 || c.Start != 2 || c.End != 5 || c.Weight != 0.7 {
		t.Fatalf("got %+v", c)
	}
}

func TestMaxWeightCliquePaperFigure2(t *testing.T) {
	// Figure 2 of the paper: streams D1..D4 with intervals
	//   D1: I1 (0.8), I2 (0.5)    D2: I3, I4    D3: I5, I7    D4: I6.
	// {I1, I3, I5, I6} overlap in a common segment and win with 2.1.
	intervals := []Interval{
		{Start: 2, End: 8, Weight: 0.8, Stream: 0},   // I1
		{Start: 12, End: 16, Weight: 0.5, Stream: 0}, // I2
		{Start: 3, End: 9, Weight: 0.4, Stream: 1},   // I3
		{Start: 13, End: 18, Weight: 0.6, Stream: 1}, // I4
		{Start: 4, End: 7, Weight: 0.5, Stream: 2},   // I5
		{Start: 5, End: 10, Weight: 0.4, Stream: 3},  // I6
		{Start: 14, End: 17, Weight: 0.3, Stream: 2}, // I7
	}
	c, ok := MaxWeightClique(intervals)
	if !ok {
		t.Fatal("expected ok")
	}
	if math.Abs(c.Weight-2.1) > 1e-9 {
		t.Fatalf("Weight = %v, want 2.1", c.Weight)
	}
	if len(c.Members) != 4 {
		t.Fatalf("clique size = %d, want 4", len(c.Members))
	}
	// Common segment is [max starts, min ends] = [5, 7] (t_x..t_y in the
	// figure).
	if c.Start != 5 || c.End != 7 {
		t.Fatalf("common segment [%d,%d], want [5,7]", c.Start, c.End)
	}
	streams := map[int]bool{}
	for _, m := range c.Members {
		streams[m.Stream] = true
	}
	if len(streams) != 4 {
		t.Fatalf("expected one interval per stream, got %v", streams)
	}
}

func TestMaxWeightCliqueMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		n := 1 + rng.Intn(9)
		intervals := make([]Interval, n)
		for i := range intervals {
			a := rng.Intn(15)
			b := a + rng.Intn(6)
			intervals[i] = Interval{Start: a, End: b, Weight: float64(1+rng.Intn(10)) / 2, Stream: i}
		}
		got, ok1 := MaxWeightClique(intervals)
		want, ok2 := MaxWeightCliqueBrute(intervals)
		if ok1 != ok2 {
			t.Fatalf("ok mismatch: %v vs %v", ok1, ok2)
		}
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("intervals %v:\nsweep weight %v members %v\nbrute weight %v members %v",
				intervals, got.Weight, got.Members, want.Weight, want.Members)
		}
		// Clique validity: members must pairwise intersect (Lemma 1) and
		// share the common segment.
		if !PairwiseIntersect(got.Members) {
			t.Fatalf("sweep returned a non-clique: %v", got.Members)
		}
		if _, _, ok := CommonSegment(got.Members); !ok {
			t.Fatalf("sweep clique has empty common segment: %v", got.Members)
		}
	}
}

func TestMaxWeightCliqueDeterministicEarliestStab(t *testing.T) {
	// Two disjoint equal-weight cliques: the earlier one must win.
	intervals := []Interval{
		{Start: 0, End: 1, Weight: 1, Stream: 0},
		{Start: 10, End: 11, Weight: 1, Stream: 1},
	}
	c, _ := MaxWeightClique(intervals)
	if c.Start != 0 {
		t.Fatalf("expected earliest clique, got %+v", c)
	}
}

func TestTopCliquesNonOverlappingExtraction(t *testing.T) {
	intervals := []Interval{
		{Start: 0, End: 4, Weight: 1.0, Stream: 0},
		{Start: 1, End: 5, Weight: 0.9, Stream: 1},
		{Start: 10, End: 14, Weight: 0.8, Stream: 0},
		{Start: 11, End: 13, Weight: 0.7, Stream: 2},
	}
	cliques := TopCliques(intervals, 0)
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques, want 2: %+v", len(cliques), cliques)
	}
	if math.Abs(cliques[0].Weight-1.9) > 1e-9 || math.Abs(cliques[1].Weight-1.5) > 1e-9 {
		t.Fatalf("weights %v, %v; want 1.9, 1.5", cliques[0].Weight, cliques[1].Weight)
	}
	// An interval may appear in at most one clique.
	seen := map[Interval]bool{}
	for _, c := range cliques {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("interval %v reported in two cliques", m)
			}
			seen[m] = true
		}
	}
}

func TestTopCliquesLimit(t *testing.T) {
	intervals := []Interval{
		{Start: 0, End: 0, Weight: 3, Stream: 0},
		{Start: 5, End: 5, Weight: 2, Stream: 0},
		{Start: 9, End: 9, Weight: 1, Stream: 0},
	}
	cliques := TopCliques(intervals, 2)
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques, want 2", len(cliques))
	}
	if cliques[0].Weight != 3 || cliques[1].Weight != 2 {
		t.Fatalf("cliques extracted out of weight order: %+v", cliques)
	}
}

func TestTopCliquesEmptyAndExhaustion(t *testing.T) {
	if got := TopCliques(nil, 5); got != nil {
		t.Fatalf("TopCliques(nil) = %v, want nil", got)
	}
	// Exhausts all intervals before hitting the limit.
	intervals := []Interval{{Start: 0, End: 2, Weight: 1, Stream: 0}}
	if got := TopCliques(intervals, 10); len(got) != 1 {
		t.Fatalf("got %d cliques, want 1", len(got))
	}
}

func TestTopCliquesDuplicateIntervals(t *testing.T) {
	// Identical intervals (same struct value) from different iterations
	// must be removed one at a time, not all at once.
	intervals := []Interval{
		{Start: 0, End: 2, Weight: 1, Stream: 0},
		{Start: 0, End: 2, Weight: 1, Stream: 0},
	}
	cliques := TopCliques(intervals, 0)
	if len(cliques) != 1 {
		t.Fatalf("got %d cliques, want 1 (both duplicates in one clique)", len(cliques))
	}
	if len(cliques[0].Members) != 2 {
		t.Fatalf("clique should contain both duplicates, got %d members", len(cliques[0].Members))
	}
}

// Property: greedy iterative extraction yields cliques with non-increasing
// weights, and no two cliques share an interval occurrence.
func TestTopCliquesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(14)
		intervals := make([]Interval, n)
		for i := range intervals {
			a := rng.Intn(20)
			intervals[i] = Interval{Start: a, End: a + rng.Intn(5), Weight: float64(1+rng.Intn(8)) / 4, Stream: rng.Intn(4)}
		}
		cliques := TopCliques(intervals, 0)
		total := 0
		prev := math.Inf(1)
		for _, c := range cliques {
			if c.Weight > prev+1e-9 {
				t.Fatalf("clique weights increased: %v", cliques)
			}
			prev = c.Weight
			if c.Weight <= 0 {
				t.Fatalf("non-positive clique reported: %+v", c)
			}
			if !PairwiseIntersect(c.Members) {
				t.Fatalf("non-clique reported: %+v", c)
			}
			total += len(c.Members)
		}
		if total > n {
			t.Fatalf("cliques use %d interval slots but only %d exist", total, n)
		}
	}
}

func BenchmarkMaxWeightClique(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	intervals := make([]Interval, 2000)
	for i := range intervals {
		a := rng.Intn(10000)
		intervals[i] = Interval{Start: a, End: a + rng.Intn(100), Weight: rng.Float64(), Stream: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightClique(intervals)
	}
}
