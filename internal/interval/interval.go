// Package interval provides closed integer intervals on the timeline,
// interval-graph utilities, and the maximum-weight clique algorithm for
// interval graphs (the paper's "maxClique", after Gupta, Lee and Leung,
// Networks 1982).
//
// STComb (§3 of the paper) reduces the Highest-Scoring Subset problem to
// the Maximum-Weight Clique problem on the intersection graph of the
// per-stream bursty intervals (Proposition 1). Because intervals on a line
// have the Helly property (Lemma 1), a clique is exactly a set of intervals
// sharing a common stab point, so the maximum-weight clique is found by a
// single sweep over interval endpoints in O(n log n).
package interval

import "sort"

// Interval is a closed interval [Start, End] of integer timestamps with an
// associated weight (the temporal burstiness score B_T of the interval) and
// the index of the document stream it was extracted from.
type Interval struct {
	Start  int     // first timestamp covered (inclusive)
	End    int     // last timestamp covered (inclusive)
	Weight float64 // burstiness score of the interval
	Stream int     // index of the originating document stream
}

// Len returns the number of timestamps covered by the interval.
func (iv Interval) Len() int { return iv.End - iv.Start + 1 }

// Contains reports whether timestamp t lies inside the closed interval.
func (iv Interval) Contains(t int) bool { return iv.Start <= t && t <= iv.End }

// Intersects reports whether two closed intervals share at least one
// timestamp.
func Intersects(a, b Interval) bool { return a.Start <= b.End && b.Start <= a.End }

// CommonSegment returns the intersection of all intervals in the set and
// reports whether it is non-empty. It returns (0, 0, false) for an empty
// set.
func CommonSegment(set []Interval) (start, end int, ok bool) {
	if len(set) == 0 {
		return 0, 0, false
	}
	start, end = set[0].Start, set[0].End
	for _, iv := range set[1:] {
		if iv.Start > start {
			start = iv.Start
		}
		if iv.End < end {
			end = iv.End
		}
	}
	return start, end, start <= end
}

// PairwiseIntersect reports whether every pair of intervals in the set
// intersects. By Lemma 1 of the paper (the Helly property in one
// dimension), this holds iff the whole set has a non-empty common segment;
// both predicates are exposed so the equivalence can be verified.
func PairwiseIntersect(set []Interval) bool {
	for i := range set {
		for j := i + 1; j < len(set); j++ {
			if !Intersects(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// Clique is a set of mutually intersecting intervals: a combinatorial
// spatiotemporal pattern before stream metadata is attached. Start and End
// delimit the common segment of all members and Weight is the sum of the
// member weights (Eq. 3 of the paper).
type Clique struct {
	Members []Interval
	Start   int
	End     int
	Weight  float64
}

// MaxWeightClique returns the maximum-weight clique of the intersection
// graph of the given intervals, in O(n log n) time, and reports whether any
// clique exists (false only for an empty input). The clique is realized as
// the set of intervals covering the best stab point; among equal-weight
// stab points the earliest is chosen, so the result is deterministic.
//
// Interval weights must be positive (temporal burstiness scores always
// are): with positive weights the heaviest clique is exactly the full set
// of intervals covering the heaviest stab point, which is what the sweep
// computes.
func MaxWeightClique(intervals []Interval) (Clique, bool) {
	if len(intervals) == 0 {
		return Clique{}, false
	}
	// Sweep events: weight enters at Start, leaves after End.
	type event struct {
		pos   int
		delta float64
	}
	events := make([]event, 0, 2*len(intervals))
	for _, iv := range intervals {
		events = append(events, event{iv.Start, iv.Weight}, event{iv.End + 1, -iv.Weight})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		// Removals before additions at the same coordinate never happen
		// for distinct roles (removal is at End+1), but keep ordering
		// stable for equal positions by applying additions first so the
		// running sum at pos includes all intervals covering pos.
		return events[i].delta > events[j].delta
	})
	var (
		cur      float64
		best     float64
		bestPos  int
		haveBest bool
	)
	for k := 0; k < len(events); {
		pos := events[k].pos
		for k < len(events) && events[k].pos == pos {
			cur += events[k].delta
			k++
		}
		if !haveBest || cur > best {
			best, bestPos, haveBest = cur, pos, true
		}
	}
	members := make([]Interval, 0, 4)
	for _, iv := range intervals {
		if iv.Contains(bestPos) {
			members = append(members, iv)
		}
	}
	start, end, _ := CommonSegment(members)
	return Clique{Members: members, Start: start, End: end, Weight: best}, true
}

// TopCliques iteratively applies MaxWeightClique, each time removing the
// intervals of the reported clique, exactly as §3 of the paper obtains
// multiple non-overlapping combinatorial patterns. Extraction stops after
// k cliques (k <= 0 means no limit), when no intervals remain, or when the
// best remaining clique has non-positive weight.
func TopCliques(intervals []Interval, k int) []Clique {
	remaining := make([]Interval, len(intervals))
	copy(remaining, intervals)
	var out []Clique
	for len(remaining) > 0 && (k <= 0 || len(out) < k) {
		c, ok := MaxWeightClique(remaining)
		if !ok || c.Weight <= 0 {
			break
		}
		out = append(out, c)
		taken := make(map[Interval]int, len(c.Members))
		for _, m := range c.Members {
			taken[m]++
		}
		next := remaining[:0]
		for _, iv := range remaining {
			if n := taken[iv]; n > 0 {
				taken[iv] = n - 1
				continue
			}
			next = append(next, iv)
		}
		remaining = next
	}
	return out
}

// MaxWeightCliqueBrute solves the maximum-weight clique problem by
// exhaustive subset enumeration. It exists as a testing oracle for
// MaxWeightClique and must only be used with small inputs.
func MaxWeightCliqueBrute(intervals []Interval) (Clique, bool) {
	n := len(intervals)
	if n == 0 {
		return Clique{}, false
	}
	if n > 20 {
		panic("interval: MaxWeightCliqueBrute input too large")
	}
	var best Clique
	found := false
	for mask := 1; mask < 1<<n; mask++ {
		var set []Interval
		var w float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, intervals[i])
				w += intervals[i].Weight
			}
		}
		if !PairwiseIntersect(set) {
			continue
		}
		if !found || w > best.Weight {
			start, end, _ := CommonSegment(set)
			best = Clique{Members: set, Start: start, End: end, Weight: w}
			found = true
		}
	}
	return best, found
}
