package discrepancy

import (
	"math"
	"math/rand"
	"testing"

	"stburst/internal/geo"
)

func TestMaxRectNoPositive(t *testing.T) {
	pts := []WeightedPoint{{0, 0, -1}, {1, 1, 0}}
	if _, ok := MaxRect(pts); ok {
		t.Fatal("no positive points: want ok=false")
	}
	if _, ok := MaxRect(nil); ok {
		t.Fatal("empty input: want ok=false")
	}
}

func TestMaxRectSinglePoint(t *testing.T) {
	r, ok := MaxRect([]WeightedPoint{{3, 4, 2.5}})
	if !ok {
		t.Fatal("expected ok")
	}
	if r.Score != 2.5 {
		t.Fatalf("Score = %v, want 2.5", r.Score)
	}
	if len(r.Points) != 1 || r.Points[0] != 0 {
		t.Fatalf("Points = %v, want [0]", r.Points)
	}
	want := geo.Rect{MinX: 3, MinY: 4, MaxX: 3, MaxY: 4}
	if r.Rect != want {
		t.Fatalf("Rect = %v, want %v", r.Rect, want)
	}
}

func TestMaxRectExcludesHeavyNegative(t *testing.T) {
	// Two positive points separated by a heavily negative one: the
	// optimum takes one positive point only.
	pts := []WeightedPoint{
		{0, 0, 2},
		{1, 0, -10},
		{2, 0, 3},
	}
	r, ok := MaxRect(pts)
	if !ok {
		t.Fatal("expected ok")
	}
	if r.Score != 3 {
		t.Fatalf("Score = %v, want 3", r.Score)
	}
}

func TestMaxRectBridgesLightNegative(t *testing.T) {
	// A small negative between two positives is worth including.
	pts := []WeightedPoint{
		{0, 0, 2},
		{1, 0, -0.5},
		{2, 0, 3},
	}
	r, ok := MaxRect(pts)
	if !ok {
		t.Fatal("expected ok")
	}
	if math.Abs(r.Score-4.5) > 1e-12 {
		t.Fatalf("Score = %v, want 4.5", r.Score)
	}
	if len(r.Points) != 3 {
		t.Fatalf("Points = %v, want all three", r.Points)
	}
}

func TestMaxRectNegativeInGapRowAndColumn(t *testing.T) {
	// The negative point lies strictly between the two positives in both
	// axes; any rectangle containing both positives must include it.
	pts := []WeightedPoint{
		{0, 0, 2},
		{2, 2, 2},
		{1, 1, -1},
	}
	r, ok := MaxRect(pts)
	if !ok {
		t.Fatal("expected ok")
	}
	if math.Abs(r.Score-3) > 1e-12 {
		t.Fatalf("Score = %v, want 3 (2+2-1)", r.Score)
	}
}

func TestMaxRectBlockerForcesSplit(t *testing.T) {
	// A -Inf blocker between the positives forbids the joint rectangle.
	pts := []WeightedPoint{
		{0, 0, 2},
		{2, 0, 3},
		{1, 0, math.Inf(-1)},
	}
	r, ok := MaxRect(pts)
	if !ok {
		t.Fatal("expected ok")
	}
	if r.Score != 3 {
		t.Fatalf("Score = %v, want 3", r.Score)
	}
	for _, i := range r.Points {
		if math.IsInf(pts[i].W, -1) {
			t.Fatal("reported rectangle contains a blocker")
		}
	}
}

func TestMaxRectBlockerColocated(t *testing.T) {
	// Blocker exactly on the only positive point: every rectangle is
	// poisoned; the reported score must be -Inf so callers reject it.
	pts := []WeightedPoint{
		{1, 1, 2},
		{1, 1, math.Inf(-1)},
	}
	r, ok := MaxRect(pts)
	if !ok {
		t.Fatal("expected ok (positive point exists)")
	}
	if !math.IsInf(r.Score, -1) {
		t.Fatalf("Score = %v, want -Inf", r.Score)
	}
}

func TestMaxRectMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 600; iter++ {
		n := 1 + rng.Intn(12)
		pts := make([]WeightedPoint, n)
		for i := range pts {
			pts[i] = WeightedPoint{
				X: float64(rng.Intn(6)),
				Y: float64(rng.Intn(6)),
				W: float64(rng.Intn(11) - 5),
			}
			if rng.Intn(12) == 0 {
				pts[i].W = math.Inf(-1)
			}
		}
		got, ok1 := MaxRect(pts)
		want, ok2 := MaxRectBrute(pts)
		if ok1 != ok2 {
			t.Fatalf("ok mismatch on %v: %v vs %v", pts, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		same := got.Score == want.Score ||
			(math.IsInf(got.Score, -1) && math.IsInf(want.Score, -1)) ||
			math.Abs(got.Score-want.Score) <= 1e-9
		if !same {
			t.Fatalf("pts %v:\nexact %v (rect %v)\nbrute %v (rect %v)",
				pts, got.Score, got.Rect, want.Score, want.Rect)
		}
	}
}

func TestMaxRectScoreEqualsMemberSum(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(20)
		pts := make([]WeightedPoint, n)
		for i := range pts {
			pts[i] = WeightedPoint{
				X: rng.Float64() * 10,
				Y: rng.Float64() * 10,
				W: rng.NormFloat64(),
			}
		}
		r, ok := MaxRect(pts)
		if !ok {
			continue
		}
		var sum float64
		for _, i := range r.Points {
			sum += pts[i].W
		}
		if math.Abs(sum-r.Score) > 1e-9 {
			t.Fatalf("score %v but members sum to %v (pts %v, rect %v)",
				r.Score, sum, pts, r.Rect)
		}
	}
}

func TestGridMaxRectBasic(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	pts := []WeightedPoint{
		{1, 1, 5},
		{1.2, 1.1, 3},
		{9, 9, -2},
	}
	r, ok := GridMaxRect(pts, bounds, 5)
	if !ok {
		t.Fatal("expected ok")
	}
	if r.Score != 8 {
		t.Fatalf("Score = %v, want 8", r.Score)
	}
	if len(r.Points) != 2 {
		t.Fatalf("Points = %v, want the two positives", r.Points)
	}
}

func TestGridMaxRectNoPositive(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if _, ok := GridMaxRect([]WeightedPoint{{1, 1, -3}}, bounds, 4); ok {
		t.Fatal("want ok=false with no positive points")
	}
	// Positive point outside bounds does not count.
	if _, ok := GridMaxRect([]WeightedPoint{{11, 1, 3}}, bounds, 4); ok {
		t.Fatal("want ok=false when positives are out of bounds")
	}
}

func TestGridMaxRectBlockedCell(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	pts := []WeightedPoint{
		{0.5, 0.5, 2},
		{2.5, 0.5, math.Inf(-1)}, // blocks the middle cell
		{3.5, 0.5, 3},
	}
	r, ok := GridMaxRect(pts, bounds, 4)
	if !ok {
		t.Fatal("expected ok")
	}
	if r.Score != 3 {
		t.Fatalf("Score = %v, want 3 (blocked cell must not be bridged)", r.Score)
	}
}

func TestGridMaxRectSingleCellDegenerate(t *testing.T) {
	// Zero-area bounds (all points identical) must not divide by zero.
	bounds := geo.Rect{MinX: 2, MinY: 2, MaxX: 2, MaxY: 2}
	r, ok := GridMaxRect([]WeightedPoint{{2, 2, 1.5}}, bounds, 3)
	if !ok || r.Score != 1.5 {
		t.Fatalf("got %+v ok=%v, want score 1.5", r, ok)
	}
}

func TestGridMaxRectMatchesExactWhenGridFine(t *testing.T) {
	// With integer coordinates and a fine grid, grid aggregation loses
	// nothing and must match the exact optimum.
	rng := rand.New(rand.NewSource(33))
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(10)
		pts := make([]WeightedPoint, n)
		for i := range pts {
			pts[i] = WeightedPoint{
				X: float64(rng.Intn(8)) + 0.5,
				Y: float64(rng.Intn(8)) + 0.5,
				W: float64(rng.Intn(9) - 4),
			}
		}
		g, okG := GridMaxRect(pts, bounds, 8)
		e, okE := MaxRect(pts)
		if okG != okE {
			// GridMaxRect counts out-of-bounds positives differently;
			// our points are always in bounds, so this should not happen.
			t.Fatalf("ok mismatch: grid %v exact %v", okG, okE)
		}
		if !okG {
			continue
		}
		if g.Score <= 0 && e.Score <= 0 {
			// Both rejected by R-Bursty (Score <= 0); the grid variant may
			// report an empty zero-score rectangle where the exact variant
			// reports the least-bad point-anchored one. Equivalent.
			continue
		}
		if math.Abs(g.Score-e.Score) > 1e-9 {
			t.Fatalf("pts %v: grid %v exact %v", pts, g.Score, e.Score)
		}
	}
}

func TestLocate(t *testing.T) {
	s := []float64{1, 3, 5}
	cases := []struct {
		v       float64
		idx     int
		gap, ok bool
	}{
		{1, 0, false, true},
		{3, 1, false, true},
		{5, 2, false, true},
		{2, 0, true, true},
		{4, 1, true, true},
		{0.5, 0, false, false},
		{5.5, 0, false, false},
	}
	for _, tc := range cases {
		idx, gap, ok := locate(s, tc.v)
		if idx != tc.idx || gap != tc.gap || ok != tc.ok {
			t.Errorf("locate(%v) = (%d,%v,%v), want (%d,%v,%v)",
				tc.v, idx, gap, ok, tc.idx, tc.gap, tc.ok)
		}
	}
}

func BenchmarkMaxRectSparse(b *testing.B) {
	// 181 streams, ~8 positive: the Topix-like regime.
	rng := rand.New(rand.NewSource(34))
	pts := make([]WeightedPoint, 181)
	for i := range pts {
		w := -rng.Float64() * 0.1
		if i%23 == 0 {
			w = rng.Float64() * 5
		}
		pts[i] = WeightedPoint{X: rng.Float64() * 100, Y: rng.Float64() * 100, W: w}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxRect(pts)
	}
}

func BenchmarkMaxRectDense(b *testing.B) {
	// 181 streams, all non-zero: the artificial-data regime.
	rng := rand.New(rand.NewSource(35))
	pts := make([]WeightedPoint, 181)
	for i := range pts {
		pts[i] = WeightedPoint{X: rng.Float64() * 100, Y: rng.Float64() * 100, W: rng.NormFloat64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxRect(pts)
	}
}

func BenchmarkGridMaxRect128k(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	pts := make([]WeightedPoint, 128000)
	for i := range pts {
		pts[i] = WeightedPoint{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, W: rng.NormFloat64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GridMaxRect(pts, bounds, 24)
	}
}
