// Package discrepancy finds maximum-weight axis-oriented rectangles over
// weighted planar point sets. It is the module the paper's R-Bursty
// algorithm (Algorithm 1) invokes to retrieve the single rectangle with
// the highest r-score, playing the role of the maximum bichromatic
// discrepancy algorithm of Dobkin, Gunopulos and Maass [5].
//
// Two implementations are provided:
//
//   - MaxRect: exact. It exploits the fact that some optimal rectangle has
//     all four sides passing through positive-weight points (shrinking a
//     side that touches no positive point can only drop non-positive
//     weight). The search is therefore restricted to coordinates of
//     positive points, with non-positive points (including the -Inf
//     "blockers" R-Bursty plants to forbid already-reported streams)
//     bucketed into the exact columns/rows and the gaps between them.
//     Cost is O(P²·(P + gaps) + P·n) for P positive points among n total,
//     which is fast in practice because real term frequencies are sparse
//     across streams.
//
//   - GridMaxRect: aggregated. Points are summed into a G×G uniform grid
//     and the optimum over whole-cell rectangles is found in O(n + G³).
//     This is the granularity mechanism §2 of the paper endorses for very
//     large stream populations and is what keeps STLocal near-linear in
//     the 128000-stream scalability sweep (Fig. 8).
package discrepancy

import (
	"math"
	"sort"

	"stburst/internal/geo"
)

// WeightedPoint is a stream location carrying a burstiness weight
// B(t, D_x[i]) (Eq. 7 of the paper). A weight of math.Inf(-1) marks a
// blocker: no reported rectangle may contain it.
type WeightedPoint struct {
	X, Y float64
	W    float64
}

// Rectangle is a maximum-weight rectangle result. Points holds the indices
// (into the input slice) of all points lying inside Rect.
type Rectangle struct {
	Rect   geo.Rect
	Score  float64
	Points []int
}

// MaxRect returns the maximum-weight axis-oriented rectangle over pts.
// It reports false when pts contains no positive-weight point, in which
// case no rectangle can score positively and R-Bursty terminates.
// The returned score can still be non-positive when blockers or negative
// points are unavoidable; callers decide what to do with it.
func MaxRect(pts []WeightedPoint) (Rectangle, bool) {
	// Collect coordinates of positive points; the optimum snaps to them.
	var xsPos, ysPos []float64
	for _, p := range pts {
		if p.W > 0 {
			xsPos = append(xsPos, p.X)
			ysPos = append(ysPos, p.Y)
		}
	}
	if len(xsPos) == 0 {
		return Rectangle{}, false
	}
	xs := dedupSorted(xsPos)
	ys := dedupSorted(ysPos)
	px, py := len(xs), len(ys)

	// Column position of a point: exact column index c in [0,px), or a gap
	// index g in [0,px-1) meaning strictly between xs[g] and xs[g+1], or
	// outside. Same for rows.
	type placed struct {
		col, row       int
		colGap, rowGap bool
		w              float64
	}
	// rowPts[j]: points with y exactly ys[j]. rowGapPts[j]: points with
	// ys[j] < y < ys[j+1]. Points outside [ys[0], ys[py-1]] or
	// [xs[0], xs[px-1]] can never fall in a candidate rectangle.
	rowPts := make([][]placed, py)
	rowGapPts := make([][]placed, py) // index j holds gap (j, j+1)
	for _, p := range pts {
		col, colGap, okx := locate(xs, p.X)
		if !okx {
			continue
		}
		row, rowGap, oky := locate(ys, p.Y)
		if !oky {
			continue
		}
		pl := placed{col: col, row: row, colGap: colGap, rowGap: rowGap, w: p.W}
		if rowGap {
			rowGapPts[row] = append(rowGapPts[row], pl)
		} else {
			rowPts[row] = append(rowPts[row], pl)
		}
	}

	colW := make([]float64, px)
	gapW := make([]float64, maxInt(px-1, 0))
	var (
		best               float64 = math.Inf(-1)
		bc1, bc2, br1, br2 int
		found              bool
	)
	add := func(list []placed) {
		for _, pl := range list {
			if pl.colGap {
				gapW[pl.col] += pl.w
			} else {
				colW[pl.col] += pl.w
			}
		}
	}
	for b := 0; b < py; b++ {
		for i := range colW {
			colW[i] = 0
		}
		for i := range gapW {
			gapW[i] = 0
		}
		for t := b; t < py; t++ {
			add(rowPts[t])
			if t > b {
				add(rowGapPts[t-1])
			}
			// Kadane over columns, bridging gap weights between
			// consecutive columns.
			cur := math.Inf(-1)
			start := 0
			for c := 0; c < px; c++ {
				w := colW[c]
				if c == 0 {
					cur = w
					start = 0
				} else {
					ext := cur + gapW[c-1] + w
					if w >= ext || math.IsInf(cur, -1) {
						cur = w
						start = c
					} else {
						cur = ext
					}
				}
				if cur > best {
					best = cur
					bc1, bc2, br1, br2 = start, c, b, t
					found = true
				}
			}
		}
	}
	if !found {
		// Only possible when every candidate evaluates to -Inf (each
		// positive point shares its exact location with a blocker).
		// Report the degenerate rectangle of the first positive point.
		r := geo.Rect{MinX: xs[0], MaxX: xs[0], MinY: ys[0], MaxY: ys[0]}
		return Rectangle{Rect: r, Score: math.Inf(-1), Points: pointsInside(pts, r)}, true
	}
	r := geo.Rect{MinX: xs[bc1], MaxX: xs[bc2], MinY: ys[br1], MaxY: ys[br2]}
	return Rectangle{Rect: r, Score: best, Points: pointsInside(pts, r)}, true
}

// locate returns the position of v relative to the sorted unique slice s:
// (i, false, true) when v == s[i]; (i, true, true) when s[i] < v < s[i+1];
// and ok=false when v lies outside [s[0], s[len-1]].
func locate(s []float64, v float64) (int, bool, bool) {
	i := sort.SearchFloat64s(s, v)
	if i < len(s) && s[i] == v {
		return i, false, true
	}
	if i == 0 || i == len(s) {
		return 0, false, false
	}
	return i - 1, true, true
}

func dedupSorted(v []float64) []float64 {
	sort.Float64s(v)
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func pointsInside(pts []WeightedPoint, r geo.Rect) []int {
	var idx []int
	for i, p := range pts {
		if r.Contains(geo.Point{X: p.X, Y: p.Y}) {
			idx = append(idx, i)
		}
	}
	return idx
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MaxRectBrute solves the same problem by enumerating every rectangle
// bounded by point coordinates. It is a testing oracle; O(n⁵).
func MaxRectBrute(pts []WeightedPoint) (Rectangle, bool) {
	hasPos := false
	for _, p := range pts {
		if p.W > 0 {
			hasPos = true
			break
		}
	}
	if !hasPos {
		return Rectangle{}, false
	}
	if len(pts) > 40 {
		panic("discrepancy: MaxRectBrute input too large")
	}
	var xs, ys []float64
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	xs, ys = dedupSorted(xs), dedupSorted(ys)
	best := Rectangle{Score: math.Inf(-1)}
	found := false
	for i := 0; i < len(xs); i++ {
		for j := i; j < len(xs); j++ {
			for k := 0; k < len(ys); k++ {
				for l := k; l < len(ys); l++ {
					r := geo.Rect{MinX: xs[i], MaxX: xs[j], MinY: ys[k], MaxY: ys[l]}
					var score float64
					contained := false
					for _, p := range pts {
						if r.Contains(geo.Point{X: p.X, Y: p.Y}) {
							score += p.W
							contained = true
						}
					}
					if contained && score > best.Score {
						best = Rectangle{Rect: r, Score: score, Points: pointsInside(pts, r)}
						found = true
					}
				}
			}
		}
	}
	if !found {
		// All candidates contain a blocker; mirror MaxRect's behaviour.
		r := geo.Rect{MinX: xs[0], MaxX: xs[0], MinY: ys[0], MaxY: ys[0]}
		return Rectangle{Rect: r, Score: math.Inf(-1), Points: pointsInside(pts, r)}, true
	}
	return best, true
}

// GridMaxRect aggregates pts into a grid×grid uniform partition of bounds
// and returns the maximum-weight rectangle made of whole cells. It reports
// false when no positive-weight point lies inside bounds. Cells containing
// a blocker aggregate to -Inf and are never bridged.
func GridMaxRect(pts []WeightedPoint, bounds geo.Rect, grid int) (Rectangle, bool) {
	if grid < 1 {
		grid = 1
	}
	w := bounds.Width()
	h := bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	cell := make([][]float64, grid)
	for i := range cell {
		cell[i] = make([]float64, grid)
	}
	hasPos := false
	cellOf := func(p WeightedPoint) (int, int, bool) {
		if !bounds.Contains(geo.Point{X: p.X, Y: p.Y}) {
			return 0, 0, false
		}
		cx := int((p.X - bounds.MinX) / w * float64(grid))
		cy := int((p.Y - bounds.MinY) / h * float64(grid))
		if cx == grid {
			cx = grid - 1
		}
		if cy == grid {
			cy = grid - 1
		}
		return cx, cy, true
	}
	for _, p := range pts {
		cx, cy, ok := cellOf(p)
		if !ok {
			continue
		}
		cell[cy][cx] += p.W
		if p.W > 0 {
			hasPos = true
		}
	}
	if !hasPos {
		return Rectangle{}, false
	}
	// Row-pair + Kadane over the dense grid.
	col := make([]float64, grid)
	best := math.Inf(-1)
	var bc1, bc2, br1, br2 int
	for b := 0; b < grid; b++ {
		for i := range col {
			col[i] = 0
		}
		for t := b; t < grid; t++ {
			for c := 0; c < grid; c++ {
				col[c] += cell[t][c]
			}
			cur := math.Inf(-1)
			start := 0
			for c := 0; c < grid; c++ {
				if c == 0 || col[c] >= cur+col[c] || math.IsInf(cur, -1) {
					cur = col[c]
					start = c
				} else {
					cur += col[c]
				}
				if cur > best {
					best = cur
					bc1, bc2, br1, br2 = start, c, b, t
				}
			}
		}
	}
	r := geo.Rect{
		MinX: bounds.MinX + float64(bc1)*w/float64(grid),
		MaxX: bounds.MinX + float64(bc2+1)*w/float64(grid),
		MinY: bounds.MinY + float64(br1)*h/float64(grid),
		MaxY: bounds.MinY + float64(br2+1)*h/float64(grid),
	}
	// Collect member points by cell index so boundary semantics match the
	// aggregation (half-open cells), not the closed geo.Rect test.
	var idx []int
	for i, p := range pts {
		cx, cy, ok := cellOf(p)
		if !ok {
			continue
		}
		if bc1 <= cx && cx <= bc2 && br1 <= cy && cy <= br2 {
			idx = append(idx, i)
		}
	}
	return Rectangle{Rect: r, Score: best, Points: idx}, true
}
