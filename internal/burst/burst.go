// Package burst extracts bursty temporal intervals from a single term's
// frequency series. It reimplements the discrepancy-based framework of the
// authors' earlier work (Lappas et al., "On burstiness-aware search for
// document sequences", KDD 2009 — reference [14] of the VLDB'12 paper),
// which STComb uses to obtain, in linear time, the set of non-overlapping
// bursty intervals per stream, and additionally provides Kleinberg's
// two-state burst automaton (KDD 2002 — reference [13]) as an alternative
// detector: §3 notes the methodology is compatible with any framework that
// reports non-overlapping bursty intervals.
package burst

import (
	"math"

	"stburst/internal/maxseq"
)

// Interval is a bursty temporal interval [Start, End] (inclusive
// timestamps) with its burstiness score.
type Interval struct {
	Start int
	End   int
	Score float64
}

// Detector extracts non-overlapping bursty intervals from a frequency
// series. Implementations must return intervals sorted by Start and
// pairwise disjoint.
type Detector interface {
	Detect(series []float64) []Interval
}

// Temporal computes B_T(I) of Eq. 1: the discrepancy-normalized temporal
// burstiness of the inclusive interval [l, r] of the series. The result is
// in [-1, 1], and in [0, 1] for the maximal intervals the detector
// reports. It returns 0 when the series has no mass.
func Temporal(series []float64, l, r int) float64 {
	var total, part float64
	for i, y := range series {
		total += y
		if i >= l && i <= r {
			part += y
		}
	}
	if total == 0 {
		return 0
	}
	return part/total - float64(r-l+1)/float64(len(series))
}

// Discrepancy is the KDD'09-style detector. The burstiness of an interval
// I is B_T(I) = Σ_{i∈I} y_i/total − |I|/|Y| (Eq. 1), so assigning each
// timestamp the weight y_i/total − 1/|Y| makes every interval's weight sum
// equal its burstiness; the non-overlapping maximal bursty intervals are
// then exactly the Ruzzo–Tompa maximal segments, found in linear time.
type Discrepancy struct {
	// MinScore drops intervals whose burstiness is at or below this
	// threshold. The zero value keeps every positive-burstiness interval.
	MinScore float64
	// MinMass drops series whose total frequency is below this value: a
	// term observed once or twice in a stream carries no burst structure
	// (its single observation trivially scores B_T ≈ 1), yet such
	// near-empty streams would otherwise dominate cliques. The zero
	// value keeps every non-empty series.
	MinMass float64
}

// Detect implements Detector.
func (d Discrepancy) Detect(series []float64) []Interval {
	var total float64
	for _, y := range series {
		total += y
	}
	if total <= 0 || len(series) == 0 || total < d.MinMass {
		return nil
	}
	base := 1 / float64(len(series))
	weights := make([]float64, len(series))
	for i, y := range series {
		weights[i] = y/total - base
	}
	segs := maxseq.Maximals(weights)
	out := make([]Interval, 0, len(segs))
	for _, s := range segs {
		if s.Score > d.MinScore {
			out = append(out, Interval{Start: s.Start, End: s.End - 1, Score: s.Score})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Kleinberg is the two-state batch burst automaton of Kleinberg (KDD'02).
// The series value at timestamp i is interpreted as the number of relevant
// events r_i out of a per-timestamp total d_i; state q1 emits at rate
// S·p0 where p0 is the global rate, and entering the burst state costs
// Gamma·ln(L). The optimal state sequence is found by Viterbi decoding and
// every maximal run of the burst state becomes an interval whose score is
// the total emission-cost saving of q1 over q0 across the run.
type Kleinberg struct {
	// S is the rate multiplier of the burst state; values <= 1 are
	// replaced by the customary default 2.
	S float64
	// Gamma scales the cost of entering the burst state; values <= 0 are
	// replaced by the customary default 1.
	Gamma float64
	// Totals optionally supplies d_i per timestamp. When nil, every
	// timestamp uses the same total Σ_i y_i, which reduces the model to a
	// relative-rate automaton over the series' own mass.
	Totals []float64
}

// Detect implements Detector.
func (k Kleinberg) Detect(series []float64) []Interval {
	n := len(series)
	if n == 0 {
		return nil
	}
	s := k.S
	if s <= 1 {
		s = 2
	}
	gamma := k.Gamma
	if gamma <= 0 {
		gamma = 1
	}
	var sumR, sumD float64
	for i, y := range series {
		sumR += y
		if k.Totals != nil {
			sumD += k.Totals[i]
		}
	}
	if sumR <= 0 {
		return nil
	}
	if k.Totals == nil {
		sumD = sumR * float64(n)
	}
	p0 := sumR / sumD
	p1 := math.Min(p0*s, 0.999999)
	if p1 <= p0 {
		return nil // rates saturated; no burst state distinguishable
	}
	enterCost := gamma * math.Log(float64(n))

	// cost(q, i): negative log-likelihood of emitting r_i of d_i at the
	// state's rate (binomial coefficient omitted — identical across
	// states, so it cancels in the comparison).
	cost := func(p, r, d float64) float64 {
		return -(r*math.Log(p) + (d-r)*math.Log(1-p))
	}
	di := func(i int) float64 {
		if k.Totals != nil {
			return math.Max(k.Totals[i], series[i])
		}
		return sumR
	}

	const inf = math.MaxFloat64
	// Viterbi over states {0, 1}.
	type back struct{ prev0 bool }
	c0, c1 := 0.0, enterCost
	trace := make([][2]back, n)
	for i := 0; i < n; i++ {
		e0 := cost(p0, series[i], di(i))
		e1 := cost(p1, series[i], di(i))
		// Into state 0: from 0 (free) or from 1 (free).
		n0, n1 := inf, inf
		var b0, b1 back
		if c0 <= c1 {
			n0, b0 = c0+e0, back{prev0: true}
		} else {
			n0, b0 = c1+e0, back{prev0: false}
		}
		// Into state 1: from 1 (free) or from 0 (pay enterCost).
		if c1 <= c0+enterCost {
			n1, b1 = c1+e1, back{prev0: false}
		} else {
			n1, b1 = c0+enterCost+e1, back{prev0: true}
		}
		c0, c1 = n0, n1
		trace[i] = [2]back{b0, b1}
	}
	// Backtrack from the cheaper final state.
	states := make([]bool, n) // true = burst state
	cur := c1 < c0
	for i := n - 1; i >= 0; i-- {
		states[i] = cur
		if cur {
			cur = !trace[i][1].prev0
		} else {
			cur = !trace[i][0].prev0
		}
	}
	// Runs of the burst state become intervals scored by the emission
	// saving of q1 over q0.
	var out []Interval
	for i := 0; i < n; {
		if !states[i] {
			i++
			continue
		}
		j := i
		var score float64
		for j < n && states[j] {
			score += cost(p0, series[j], di(j)) - cost(p1, series[j], di(j))
			j++
		}
		if score > 0 {
			out = append(out, Interval{Start: i, End: j - 1, Score: score})
		}
		i = j
	}
	return out
}
