package burst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTemporalBounds(t *testing.T) {
	series := []float64{0, 0, 10, 10, 0}
	// Whole series: part == total, |I| == |Y| → B_T = 0.
	if got := Temporal(series, 0, 4); math.Abs(got) > 1e-12 {
		t.Fatalf("whole-series burstiness = %v, want 0", got)
	}
	// The burst core.
	got := Temporal(series, 2, 3)
	want := 1.0 - 2.0/5.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("B_T = %v, want %v", got, want)
	}
	// Empty-mass series.
	if got := Temporal([]float64{0, 0}, 0, 1); got != 0 {
		t.Fatalf("zero-mass series B_T = %v, want 0", got)
	}
}

// Property (from §3 of the paper): B_T(I) of any interval of a
// non-negative series lies in [-1, 1], and the detector's reported
// intervals score in (0, 1].
func TestTemporalRange(t *testing.T) {
	f := func(raw []uint8, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		series := make([]float64, len(raw))
		for i, v := range raw {
			series[i] = float64(v)
		}
		l := int(a) % len(series)
		r := l + int(b)%(len(series)-l)
		bt := Temporal(series, l, r)
		return bt >= -1-1e-12 && bt <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscrepancyEmptyAndFlat(t *testing.T) {
	d := Discrepancy{}
	if got := d.Detect(nil); got != nil {
		t.Fatalf("nil series: got %v", got)
	}
	if got := d.Detect([]float64{0, 0, 0}); got != nil {
		t.Fatalf("zero series: got %v", got)
	}
	// A perfectly flat positive series has zero discrepancy everywhere.
	if got := d.Detect([]float64{3, 3, 3, 3}); got != nil {
		t.Fatalf("flat series should have no bursty intervals, got %v", got)
	}
}

func TestDiscrepancySingleBurst(t *testing.T) {
	series := []float64{1, 1, 1, 20, 22, 1, 1, 1}
	got := Discrepancy{}.Detect(series)
	if len(got) != 1 {
		t.Fatalf("got %d intervals (%v), want 1", len(got), got)
	}
	iv := got[0]
	if iv.Start != 3 || iv.End != 4 {
		t.Fatalf("interval [%d,%d], want [3,4]", iv.Start, iv.End)
	}
	wantScore := Temporal(series, 3, 4)
	if math.Abs(iv.Score-wantScore) > 1e-12 {
		t.Fatalf("score %v, want B_T = %v", iv.Score, wantScore)
	}
	if iv.Score <= 0 || iv.Score > 1 {
		t.Fatalf("score %v outside (0,1]", iv.Score)
	}
}

func TestDiscrepancyTwoBursts(t *testing.T) {
	series := []float64{9, 9, 0, 0, 0, 0, 9, 9}
	got := Discrepancy{}.Detect(series)
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 intervals", got)
	}
	if got[0].Start != 0 || got[0].End != 1 || got[1].Start != 6 || got[1].End != 7 {
		t.Fatalf("intervals %v, want [0,1] and [6,7]", got)
	}
}

func TestDiscrepancyMinScore(t *testing.T) {
	series := []float64{1, 1, 1, 20, 22, 1, 1, 1}
	if got := (Discrepancy{MinScore: 0.99}).Detect(series); got != nil {
		t.Fatalf("high threshold should suppress all intervals, got %v", got)
	}
}

// Property: detector output is sorted, disjoint, scores equal B_T, and the
// intervals stay within the series bounds.
func TestDiscrepancyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(50)
		series := make([]float64, n)
		for i := range series {
			if rng.Intn(3) == 0 {
				series[i] = float64(rng.Intn(30))
			}
		}
		ivs := Discrepancy{}.Detect(series)
		prevEnd := -1
		for _, iv := range ivs {
			if iv.Start < 0 || iv.End >= n || iv.Start > iv.End {
				t.Fatalf("series %v: bad interval %+v", series, iv)
			}
			if iv.Start <= prevEnd {
				t.Fatalf("series %v: overlapping/unsorted intervals %v", series, ivs)
			}
			prevEnd = iv.End
			want := Temporal(series, iv.Start, iv.End)
			if math.Abs(iv.Score-want) > 1e-9 {
				t.Fatalf("series %v: score %v != B_T %v", series, iv.Score, want)
			}
			if iv.Score <= 0 || iv.Score > 1+1e-12 {
				t.Fatalf("series %v: score %v outside (0,1]", series, iv.Score)
			}
		}
	}
}

func TestKleinbergEmptyAndFlat(t *testing.T) {
	k := Kleinberg{}
	if got := k.Detect(nil); got != nil {
		t.Fatalf("nil series: got %v", got)
	}
	if got := k.Detect([]float64{0, 0, 0}); got != nil {
		t.Fatalf("zero series: got %v", got)
	}
}

func TestKleinbergSingleBurst(t *testing.T) {
	series := []float64{1, 1, 1, 40, 45, 42, 1, 1, 1, 1}
	got := Kleinberg{}.Detect(series)
	if len(got) != 1 {
		t.Fatalf("got %v, want one interval", got)
	}
	iv := got[0]
	if iv.Start > 3 || iv.End < 5 {
		t.Fatalf("interval [%d,%d] should cover the burst [3,5]", iv.Start, iv.End)
	}
	if iv.Score <= 0 {
		t.Fatalf("score %v, want positive", iv.Score)
	}
}

func TestKleinbergQuietSeriesNoBurst(t *testing.T) {
	series := []float64{5, 5, 5, 5, 5, 5}
	if got := (Kleinberg{}).Detect(series); got != nil {
		t.Fatalf("uniform series should yield no bursts, got %v", got)
	}
}

func TestKleinbergWithTotals(t *testing.T) {
	// The relative rate is flat even though raw counts spike: with totals
	// supplied, no burst should be found.
	series := []float64{1, 2, 8, 1}
	totals := []float64{10, 20, 80, 10}
	if got := (Kleinberg{Totals: totals}).Detect(series); got != nil {
		t.Fatalf("rate-flat series should yield no bursts, got %v", got)
	}
	// Now a genuine rate spike.
	series = []float64{1, 1, 40, 1}
	totals = []float64{100, 100, 100, 100}
	got := (Kleinberg{Totals: totals}).Detect(series)
	if len(got) != 1 || got[0].Start != 2 || got[0].End != 2 {
		t.Fatalf("got %v, want single burst at [2,2]", got)
	}
}

func TestKleinbergInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(40)
		series := make([]float64, n)
		for i := range series {
			series[i] = float64(rng.Intn(10))
			if rng.Intn(10) == 0 {
				series[i] += 50
			}
		}
		ivs := Kleinberg{S: 2, Gamma: 1}.Detect(series)
		prevEnd := -1
		for _, iv := range ivs {
			if iv.Start < 0 || iv.End >= n || iv.Start > iv.End {
				t.Fatalf("series %v: bad interval %+v", series, iv)
			}
			if iv.Start <= prevEnd {
				t.Fatalf("series %v: overlapping intervals %v", series, ivs)
			}
			prevEnd = iv.End
			if iv.Score <= 0 {
				t.Fatalf("series %v: non-positive score %v", series, iv.Score)
			}
		}
	}
}

func TestKleinbergHigherSIsStricter(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	series := make([]float64, 60)
	for i := range series {
		series[i] = float64(rng.Intn(6))
	}
	series[30] = 25
	loose := Kleinberg{S: 1.5, Gamma: 0.5}.Detect(series)
	strict := Kleinberg{S: 6, Gamma: 3}.Detect(series)
	looseCover, strictCover := 0, 0
	for _, iv := range loose {
		looseCover += iv.End - iv.Start + 1
	}
	for _, iv := range strict {
		strictCover += iv.End - iv.Start + 1
	}
	if strictCover > looseCover {
		t.Fatalf("stricter parameters covered more timestamps (%d > %d)", strictCover, looseCover)
	}
}

func TestDetectorInterfaces(t *testing.T) {
	var _ Detector = Discrepancy{}
	var _ Detector = Kleinberg{}
}

func BenchmarkDiscrepancyDetect(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	series := make([]float64, 365)
	for i := range series {
		series[i] = rng.ExpFloat64() * 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discrepancy{}.Detect(series)
	}
}

func BenchmarkKleinbergDetect(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	series := make([]float64, 365)
	for i := range series {
		series[i] = rng.ExpFloat64() * 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kleinberg{}.Detect(series)
	}
}
