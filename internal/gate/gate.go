// Package gate implements the stgate scatter-gather coordinator: one
// HTTP front over a set of shard-serving stserve members, each holding
// the pattern bundles of one vocabulary shard (stmine -shards) over the
// full corpus.
//
// The gateway keeps a health-checked member table (periodic /v1/healthz
// polls, with backoff for members that stay down), refuses to serve
// while the member set does not form exactly one consistent partition —
// every shard index present exactly once, all members reporting the
// same shard count, partition scheme, corpus fingerprint and store
// generation — and fans queries out under per-shard timeouts:
//
//	POST /v1/search          scatter-gather retrieval; pages are
//	                         bit-identical to an unsharded stserve
//	GET  /v1/patterns/{term} proxied to the member owning the term
//	GET  /v1/stats           aggregated cluster statistics
//	GET  /v1/generation      the cluster's common store generation
//	GET  /v1/healthz         gateway readiness + member table
//	GET  /metrics            Prometheus text exposition
//
// The failure policy is strict: a request that cannot be answered
// exactly — a member down or unreachable, a mixed-generation member
// set, a truncated sub-response — is a 503, never a silently partial
// page.
package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stburst"
	"stburst/internal/textproc"
)

const (
	// DefaultPollInterval is the member health poll cadence.
	DefaultPollInterval = 2 * time.Second
	// DefaultShardTimeout bounds every upstream request to one member.
	DefaultShardTimeout = 5 * time.Second
	// downAfter is the number of consecutive failures (polls or request
	// path) after which a member counts as down rather than degraded.
	downAfter = 3
	// maxBackoffShift caps the poll backoff for down members at
	// interval << maxBackoffShift (8x).
	maxBackoffShift = 3
)

// Config configures a Gateway.
type Config struct {
	// Members are the base URLs of the shard-serving stserve instances,
	// e.g. "http://10.0.0.1:8080". Order is irrelevant: shard ownership
	// comes from each member's reported identity, not its position.
	Members []string
	// PollInterval is the health poll cadence (DefaultPollInterval when
	// zero).
	PollInterval time.Duration
	// ShardTimeout bounds each upstream request (DefaultShardTimeout
	// when zero).
	ShardTimeout time.Duration
	// Client is the HTTP client for upstream traffic; nil builds one
	// with pooled connections per member.
	Client *http.Client
}

// Gateway is the scatter-gather coordinator. It implements http.Handler.
type Gateway struct {
	members   []*member
	client    *http.Client
	pollEvery time.Duration
	timeout   time.Duration
	// tok mirrors the collection-side tokenizer (collections always use
	// the default pipeline), so the gateway splits query text into
	// exactly the terms the members' dictionaries hold — the basis for
	// routing terms to shards.
	tok      *textproc.Tokenizer
	mux      *http.ServeMux
	obs      *observer
	started  time.Time
	requests atomic.Int64
	searches atomic.Int64
}

// New builds a gateway over the configured members. It does not poll:
// call Refresh (or start Run) before serving traffic.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("gate: no members configured")
	}
	g := &Gateway{
		pollEvery: cfg.PollInterval,
		timeout:   cfg.ShardTimeout,
		client:    cfg.Client,
		tok:       textproc.NewTokenizer(),
		mux:       http.NewServeMux(),
		started:   time.Now(),
	}
	if g.pollEvery <= 0 {
		g.pollEvery = DefaultPollInterval
	}
	if g.timeout <= 0 {
		g.timeout = DefaultShardTimeout
	}
	if g.client == nil {
		g.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * len(cfg.Members),
			MaxIdleConnsPerHost: 4,
		}}
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Members {
		u := strings.TrimRight(raw, "/")
		if u == "" {
			return nil, fmt.Errorf("gate: empty member URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("gate: duplicate member %s", u)
		}
		seen[u] = true
		g.members = append(g.members, &member{url: u})
	}
	// The route set matches stserve's mux patterns, so per-route metrics
	// and load reports line up across the whole cluster.
	g.mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /v1/stats", g.handleStats)
	g.mux.HandleFunc("GET /v1/generation", g.handleGeneration)
	g.mux.HandleFunc("POST /v1/search", g.handleSearch)
	g.mux.HandleFunc("GET /v1/patterns/{term}", g.handlePatterns)
	g.mux.HandleFunc("POST /v1/documents", g.handleDocuments)
	// Standing queries live on an unsharded stserve: the coordinator
	// could fan CRUD out, but alert matching runs inside each member's
	// ingest path and a per-shard view of a cross-shard predicate would
	// fire partial (wrong) alerts. Answer 501 with the redirect story
	// rather than 404, so clients learn the surface exists elsewhere.
	g.mux.HandleFunc("POST /v1/subscriptions", g.handleSubscriptionsUnsupported)
	g.mux.HandleFunc("GET /v1/subscriptions", g.handleSubscriptionsUnsupported)
	g.mux.HandleFunc("GET /v1/subscriptions/{id}", g.handleSubscriptionsUnsupported)
	g.mux.HandleFunc("DELETE /v1/subscriptions/{id}", g.handleSubscriptionsUnsupported)
	g.mux.HandleFunc("GET /v1/alerts/stream", g.handleSubscriptionsUnsupported)
	g.obs = newObserver(g)
	g.mux.HandleFunc("GET /metrics", g.obs.handleMetrics)
	return g, nil
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	g.obs.instrument(g.mux, w, r)
}

// shardHealth is the membership block of stserve's /v1/healthz body.
type shardHealth struct {
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	Shard       int    `json:"shard"`
	Shards      int    `json:"shards"`
	Scheme      string `json:"scheme"`
}

// memberState is the gateway's judgement of one member.
type memberState int

const (
	stateDown     memberState = iota // never polled OK, or >= downAfter consecutive failures
	stateDegraded                    // recent failures, last known identity still standing
	stateUp
)

func (s memberState) String() string {
	switch s {
	case stateUp:
		return "up"
	case stateDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// member is one shard server and the gateway's view of it.
type member struct {
	url string

	mu       sync.Mutex
	known    bool // at least one successful poll ever
	health   shardHealth
	fails    int // consecutive failures (polls and request path)
	nextPoll time.Time
	lastErr  string
}

func (m *member) state() memberState {
	switch {
	case !m.known || m.fails >= downAfter:
		return stateDown
	case m.fails > 0:
		return stateDegraded
	default:
		return stateUp
	}
}

// recordOK installs a fresh health report and clears the failure streak.
func (m *member) recordOK(h shardHealth) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.known = true
	m.health = h
	m.fails = 0
	m.lastErr = ""
	m.nextPoll = time.Time{}
}

// recordFail notes one failure (poll or request path). Once the member
// is down, its poll schedule backs off exponentially, capped at
// interval << maxBackoffShift — a crashed member must not be hammered,
// but a restarted one must be noticed within a few intervals.
func (m *member) recordFail(msg string, interval time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fails++
	m.lastErr = msg
	if m.fails >= downAfter {
		shift := m.fails - downAfter
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		m.nextPoll = time.Now().Add(interval << shift)
	}
}

func (m *member) due(now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !now.Before(m.nextPoll)
}

// memberView is one member's state snapshot.
type memberView struct {
	URL    string
	State  memberState
	Known  bool
	Health shardHealth
	Err    string
}

func (m *member) view() memberView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return memberView{URL: m.url, State: m.state(), Known: m.known, Health: m.health, Err: m.lastErr}
}

// clusterView is one consistent judgement of the whole member set,
// taken per request. ok means the members form exactly one servable
// partition; otherwise reason says what is wrong.
type clusterView struct {
	ok          bool
	reason      string
	shards      int
	generation  uint64
	fingerprint string
	scheme      string
	owners      []*member // shard index -> member
	members     []memberView
}

// snapshot judges the member table: every member must be live (up or
// degraded — a degraded member's last known identity stands), the
// reported shard count must equal the member count, shard indexes must
// cover 0..N-1 exactly once, and generation, corpus fingerprint and
// partition scheme must agree across the set. Anything else refuses
// service rather than merging answers from different corpora or
// mining generations.
func (g *Gateway) snapshot() clusterView {
	v := clusterView{members: make([]memberView, len(g.members))}
	for i, m := range g.members {
		v.members[i] = m.view()
	}
	for _, mv := range v.members {
		if mv.State == stateDown {
			why := mv.Err
			if why == "" {
				why = "not yet polled"
			}
			v.reason = fmt.Sprintf("member %s is down (%s)", mv.URL, why)
			return v
		}
	}
	first := v.members[0].Health
	if first.Shards != len(g.members) {
		v.reason = fmt.Sprintf("partition has %d shards but the gateway has %d members", first.Shards, len(g.members))
		return v
	}
	owners := make([]*member, first.Shards)
	for i, mv := range v.members {
		h := mv.Health
		switch {
		case h.Shards != first.Shards || h.Scheme != first.Scheme:
			v.reason = fmt.Sprintf("mixed partitions: %s reports %d shards (%q), %s reports %d (%q)",
				v.members[0].URL, first.Shards, first.Scheme, mv.URL, h.Shards, h.Scheme)
			return v
		case h.Fingerprint != first.Fingerprint:
			v.reason = fmt.Sprintf("mixed corpora: %s and %s serve different corpus fingerprints", v.members[0].URL, mv.URL)
			return v
		case h.Generation != first.Generation:
			v.reason = fmt.Sprintf("mixed generations: %s is at %d, %s at %d",
				v.members[0].URL, first.Generation, mv.URL, h.Generation)
			return v
		case h.Shard < 0 || h.Shard >= len(owners):
			v.reason = fmt.Sprintf("member %s reports shard %d outside the %d-shard partition", mv.URL, h.Shard, len(owners))
			return v
		case owners[h.Shard] != nil:
			v.reason = fmt.Sprintf("members %s and %s both serve shard %d", owners[h.Shard].url, mv.URL, h.Shard)
			return v
		}
		owners[h.Shard] = g.members[i]
	}
	v.ok = true
	v.shards = first.Shards
	v.generation = first.Generation
	v.fingerprint = first.Fingerprint
	v.scheme = first.Scheme
	v.owners = owners
	return v
}

// Refresh polls every member once, concurrently, ignoring any down-state
// backoff — the boot-time and test entry point.
func (g *Gateway) Refresh(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range g.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			g.poll(ctx, m)
		}(m)
	}
	wg.Wait()
}

// Run polls the member table every PollInterval until ctx is cancelled.
// Down members are skipped while inside their backoff window.
func (g *Gateway) Run(ctx context.Context) {
	t := time.NewTicker(g.pollEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		var wg sync.WaitGroup
		for _, m := range g.members {
			if !m.due(now) {
				continue
			}
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				g.poll(ctx, m)
			}(m)
		}
		wg.Wait()
	}
}

// poll refreshes one member's health from its /v1/healthz.
func (g *Gateway) poll(ctx context.Context, m *member) {
	ctx, cancel := context.WithTimeout(ctx, g.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/healthz", nil)
	if err != nil {
		m.recordFail(err.Error(), g.pollEvery)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		m.recordFail(err.Error(), g.pollEvery)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		m.recordFail("reading healthz: "+err.Error(), g.pollEvery)
		return
	}
	if resp.StatusCode != http.StatusOK {
		m.recordFail(fmt.Sprintf("healthz = %d", resp.StatusCode), g.pollEvery)
		return
	}
	var h shardHealth
	if err := json.Unmarshal(body, &h); err != nil {
		m.recordFail("decoding healthz: "+err.Error(), g.pollEvery)
		return
	}
	if h.Shards < 1 {
		// A pre-shard stserve (or something else entirely) answers OK
		// without an identity; the gateway cannot place it in a partition.
		m.recordFail("healthz reports no shard identity", g.pollEvery)
		return
	}
	m.recordOK(h)
}

// do issues one upstream request to a member under the shard timeout,
// recording it in the per-member instruments. A transport failure counts
// against the member's health (the request path notices a dead member
// before the next poll does).
func (g *Gateway) do(ctx context.Context, m *member, method, path, rawQuery string, body []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, g.timeout)
	defer cancel()
	u := m.url + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	g.obs.upstream(m.url).reqs.Inc()
	resp, err := g.client.Do(req)
	if err != nil {
		g.obs.upstream(m.url).errs.Inc()
		m.recordFail(err.Error(), g.pollEvery)
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		g.obs.upstream(m.url).errs.Inc()
		m.recordFail("reading response: "+err.Error(), g.pollEvery)
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// writeJSON mirrors the stserve encoder: buffer first so an encoding
// failure is a clean 500, two-space indentation.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("gate: encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"internal: response encoding failed"}`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := buf.WriteTo(w); err != nil {
		log.Printf("gate: writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// relay copies an upstream response through verbatim.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		log.Printf("gate: relaying response: %v", err)
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := g.snapshot()
	members := make([]map[string]any, len(v.members))
	for i, mv := range v.members {
		members[i] = map[string]any{
			"url":        mv.URL,
			"state":      mv.State.String(),
			"shard":      mv.Health.Shard,
			"generation": mv.Health.Generation,
		}
		if mv.Err != "" {
			members[i]["error"] = mv.Err
		}
	}
	if !v.ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "unavailable",
			"reason":  v.reason,
			"members": members,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"generation":  v.generation,
		"fingerprint": v.fingerprint,
		"shards":      v.shards,
		"scheme":      v.scheme,
		"members":     members,
	})
}

func (g *Gateway) handleGeneration(w http.ResponseWriter, r *http.Request) {
	v := g.snapshot()
	if !v.ok {
		writeError(w, http.StatusServiceUnavailable, v.reason)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"generation": v.generation})
}

// handleStats aggregates the members' /v1/stats into one cluster view:
// corpus-wide facts from shard 0 (every member serves the full corpus,
// so they agree), the cluster identity the gateway enforces, and one
// entry per member. The strict policy applies here too — a member that
// cannot answer fails the whole aggregation.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	v := g.snapshot()
	if !v.ok {
		writeError(w, http.StatusServiceUnavailable, v.reason)
		return
	}
	type memberStats struct {
		m    *member
		data map[string]any
		err  error
	}
	stats := make([]memberStats, len(v.owners))
	var wg sync.WaitGroup
	for i, m := range v.owners {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			stats[i].m = m
			status, raw, err := g.do(r.Context(), m, http.MethodGet, "/v1/stats", "", nil)
			if err != nil {
				stats[i].err = err
				return
			}
			if status != http.StatusOK {
				stats[i].err = fmt.Errorf("stats = %d", status)
				return
			}
			stats[i].err = json.Unmarshal(raw, &stats[i].data)
		}(i, m)
	}
	wg.Wait()
	for i, ms := range stats {
		if ms.err != nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("shard %d (%s): %v", i, ms.m.url, ms.err))
			return
		}
	}
	members := make([]map[string]any, len(stats))
	for i, ms := range stats {
		members[i] = map[string]any{
			"url":      ms.m.url,
			"shard":    i,
			"requests": ms.data["requests"],
			"searches": ms.data["searches"],
		}
	}
	base := stats[0].data
	writeJSON(w, http.StatusOK, map[string]any{
		"docs":       base["docs"],
		"streams":    base["streams"],
		"timeline":   base["timeline"],
		"generation": v.generation,
		"cluster": map[string]any{
			"shards":      v.shards,
			"scheme":      v.scheme,
			"fingerprint": v.fingerprint,
			"generation":  v.generation,
			"members":     members,
		},
		"uptime_seconds": time.Since(g.started).Seconds(),
		"requests":       g.requests.Load(),
		"searches":       g.searches.Load(),
	})
}

// handlePatterns proxies the lookup to the member owning the term. The
// term is normalized exactly as the members' pattern lookup normalizes
// it (first token of the default pipeline, the raw string when nothing
// survives), so the routing hash always lands on the shard whose bundle
// holds the term.
func (g *Gateway) handlePatterns(w http.ResponseWriter, r *http.Request) {
	v := g.snapshot()
	if !v.ok {
		writeError(w, http.StatusServiceUnavailable, v.reason)
		return
	}
	term := r.PathValue("term")
	norm := term
	if toks := g.tok.Tokenize(term); len(toks) > 0 {
		norm = toks[0]
	}
	owner := v.owners[stburst.TermShard(norm, v.shards)]
	status, body, err := g.do(r.Context(), owner, http.MethodGet,
		"/v1/patterns/"+url.PathEscape(term), r.URL.RawQuery, nil)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("shard %d (%s): %v", v.memberShard(owner), owner.url, err))
		return
	}
	relay(w, status, body)
}

// memberShard reports the shard index a member owns in this view (for
// error messages; -1 when absent).
func (v *clusterView) memberShard(m *member) int {
	for i, o := range v.owners {
		if o == m {
			return i
		}
	}
	return -1
}

// handleDocuments refuses writes: shard members serve immutable shard
// bundles (stserve rejects -ingest for them), so there is no write
// surface for the gateway to front.
func (g *Gateway) handleDocuments(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusForbidden,
		"the gateway is read-only: shard members serve immutable shard bundles; re-mine with stmine -shards to update the cluster")
}

func (g *Gateway) handleSubscriptionsUnsupported(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotImplemented,
		"subscriptions are not supported on a sharded cluster: alert matching runs in the ingest path and shard-local views of a cross-shard predicate would fire partial alerts; register on an unsharded stserve -subscriptions instead")
}
