package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stburst"
	"stburst/internal/index"
	"stburst/internal/serve"
)

// gateCollection builds a corpus with two localized multi-week events
// over a background hum, so all three miners produce patterns and
// multi-term conjunctive queries return hits. Streams 0-1 and 2-3 sit
// in two distant city pairs for Region filtering.
func gateCollection(t *testing.T) *stburst.Collection {
	t.Helper()
	col := stburst.NewCollection([]stburst.StreamInfo{
		{Name: "lima", Location: stburst.Point{X: 0, Y: 0}},
		{Name: "quito", Location: stburst.Point{X: 1, Y: 1}},
		{Name: "tokyo", Location: stburst.Point{X: 50, Y: 40}},
		{Name: "osaka", Location: stburst.Point{X: 52, Y: 41}},
		{Name: "cairo", Location: stburst.Point{X: -40, Y: 30}},
	}, 12)
	add := func(s, w int, text string) {
		t.Helper()
		if _, err := col.AddText(s, w, text); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 12; w++ {
		add(0, w, "markets calm trading outlook")
		add(1, w, "football weather matches outlook")
		add(2, w, "exports quarterly report revenue")
		add(3, w, "shipping ports revenue")
		add(4, w, "culture museums heritage")
	}
	for w := 4; w <= 6; w++ {
		for i := 0; i < 3; i++ {
			add(0, w, "earthquake rescue tremors damage")
			add(1, w, "earthquake rescue aftershock damage")
		}
		add(0, w, "earthquake rescue")
	}
	for w := 7; w <= 9; w++ {
		for i := 0; i < 3; i++ {
			add(2, w, "flood relief rains damage")
			add(3, w, "flood relief evacuation damage")
		}
	}
	return col
}

// shardStores splits a mined store into n shard stores through the real
// bundle pipeline: Save -> SplitSets -> WriteBundleSharded -> LoadStore,
// exactly what stmine -shards and a booting stserve do.
func shardStores(t *testing.T, col *stburst.Collection, store *stburst.Store, n int) []*stburst.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snaps, gen, err := index.ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	names := map[int]string{}
	sets := make([]*index.PatternSet, len(snaps))
	for i, snap := range snaps {
		sets[i] = snap.Set
		for j, id := range snap.Set.Terms() {
			names[id] = snap.Terms[j]
		}
	}
	term := func(id int) string { return names[id] }
	parts, err := index.SplitSets(sets, term, n)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*stburst.Store, n)
	for i := range parts {
		var b bytes.Buffer
		info := index.ShardInfo{Shard: i, Shards: n, Scheme: index.ShardScheme, CorpusFingerprint: col.Checksum()}
		if err := index.WriteBundleSharded(&b, parts[i], term, gen, info); err != nil {
			t.Fatal(err)
		}
		if stores[i], err = stburst.LoadStore(&b, col); err != nil {
			t.Fatal(err)
		}
	}
	return stores
}

// bootGateway serves each store through a real serve.Server on its own
// listener and returns a polled gateway over them.
func bootGateway(t *testing.T, col *stburst.Collection, stores []*stburst.Store) *Gateway {
	t.Helper()
	urls := make([]string, len(stores))
	for i, st := range stores {
		srv := httptest.NewServer(serve.New(col, st, ""))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	g, err := New(Config{Members: urls, PollInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g.Refresh(context.Background())
	return g
}

// searchResp is the slice of the search response the oracle compares.
type searchResp struct {
	Count int       `json:"count"`
	More  bool      `json:"more"`
	Hits  []wireHit `json:"hits"`
}

func doSearch(t *testing.T, h http.Handler, q stburst.Query) (int, searchResp) {
	t.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var sr searchResp
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
			t.Fatalf("decoding search response: %v\n%s", err, rec.Body.String())
		}
	}
	return rec.Code, sr
}

// oracleSearch answers a query from the unsharded store, shaped as the
// HTTP layer would serialize it.
func oracleSearch(t *testing.T, store *stburst.Store, q stburst.Query) (int, searchResp) {
	t.Helper()
	page, err := store.Query(context.Background(), q)
	switch {
	case errors.Is(err, stburst.ErrKindNotResident):
		return http.StatusNotFound, searchResp{}
	case err != nil:
		return http.StatusBadRequest, searchResp{}
	}
	sr := searchResp{Count: len(page.Hits), More: page.More, Hits: make([]wireHit, len(page.Hits))}
	for i, h := range page.Hits {
		sr.Hits[i] = wireHit{Doc: h.Doc.ID, Kind: h.Kind.String(), Stream: h.Stream, Time: h.Doc.Time, Score: h.Score}
	}
	return http.StatusOK, sr
}

func sameResp(a, b searchResp) bool {
	if a.Count != b.Count || a.More != b.More || len(a.Hits) != len(b.Hits) {
		return false
	}
	for i := range a.Hits {
		if a.Hits[i] != b.Hits[i] {
			return false
		}
	}
	return true
}

// oracleQueries is the sweep: every term shape (single, multi, duplicate,
// unknown, stopword-only, pre-split Terms), paginated and thresholded,
// with and without spatiotemporal filters. Kind is crossed in the test.
func oracleQueries(t *testing.T, store *stburst.Store) []stburst.Query {
	qs := []stburst.Query{
		{Text: "earthquake"},
		{Text: "rescue", K: 1},
		{Text: "flood relief", K: 3},
		{Text: "earthquake rescue"},
		{Text: "earthquake rescue tremors", K: 100},
		{Text: "earthquake rescue earthquake"}, // duplicate token doubles its score contribution
		{Text: "earthquake damage", K: 2, Offset: 1},
		{Text: "earthquake unknownzz"},
		{Text: "the of"}, // nothing survives tokenization
		{Text: "earthquake rescue", K: 1, Offset: 2},
		{Text: "earthquake rescue", Offset: 500},
		{Terms: []string{"earthquake rescue", "damage"}, K: 5},
		{Terms: []string{"flood"}, K: 2},
		{
			Text:   "earthquake rescue damage",
			Region: &stburst.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2},
			K:      50,
		},
		{
			Text: "earthquake rescue damage",
			Time: &stburst.Timespan{Start: 4, End: 5},
			K:    50,
		},
		{
			Text:   "flood damage",
			Region: &stburst.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, // far from streams 2-3
			Time:   &stburst.Timespan{Start: 0, End: 2},                 // and before the event
			K:      50,
		},
	}
	// MinScore boundary cases derived from the real ranking: the
	// threshold exactly at a hit's score keeps it (engine keeps
	// score >= MinScore); one ulp above drops it.
	page, err := store.Query(context.Background(), stburst.Query{Text: "earthquake rescue", K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) >= 2 {
		s := page.Hits[1].Score
		qs = append(qs,
			stburst.Query{Text: "earthquake rescue", K: 100, MinScore: s},
			stburst.Query{Text: "earthquake rescue", K: 100, MinScore: math.Nextafter(s, math.Inf(1))},
		)
	}
	return qs
}

// TestGatewayMatchesUnshardedStore is the merge oracle: over 1-, 2- and
// 4-shard topologies, every query in the sweep, crossed with every kind,
// must come back byte-identical (hits, scores, order, count, More) to
// the unsharded Store.Query.
func TestGatewayMatchesUnshardedStore(t *testing.T) {
	col := gateCollection(t)
	store, err := col.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := oracleQueries(t, store)
	kinds := []stburst.Kind{stburst.KindAny, stburst.KindRegional, stburst.KindCombinatorial, stburst.KindTemporal}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("%dshard", shards), func(t *testing.T) {
			g := bootGateway(t, col, shardStores(t, col, store, shards))
			nonEmpty := 0
			for qi, base := range queries {
				for _, kind := range kinds {
					q := base
					q.Kind = kind
					wantCode, want := oracleSearch(t, store, q)
					gotCode, got := doSearch(t, g, q)
					if gotCode != wantCode {
						t.Errorf("query %d kind %v: gateway status %d, oracle %d", qi, kind, gotCode, wantCode)
						continue
					}
					if gotCode == http.StatusOK && !sameResp(got, want) {
						t.Errorf("query %d kind %v (%+v):\ngateway: %+v\noracle:  %+v", qi, kind, q, got, want)
					}
					if got.Count > 0 {
						nonEmpty++
					}
				}
			}
			if nonEmpty == 0 {
				t.Fatal("oracle sweep never produced a hit; the corpus is not exercising the merge")
			}
			// The sweep must exercise the cross-shard join, not just
			// single-owner forwarding, on real multi-shard topologies.
			if shards > 1 {
				if n := metricValue(t, g, `stgate_fanout_seconds_count{path="scatter"}`); n == 0 {
					t.Error("no query took the scatter path; the sweep is not covering the join")
				}
			}
		})
	}
}

// metricValue scrapes one series from the gateway's registry.
func metricValue(t *testing.T, g *Gateway, series string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestGatewayPatternsRoute: the gateway proxies pattern lookups to the
// owning shard, whose answer — found or 404 — is byte-identical to the
// unsharded server's, including the kind/from/to filters and the
// normalization of raw user input to a dictionary term.
func TestGatewayPatternsRoute(t *testing.T) {
	col := gateCollection(t)
	store, err := col.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := httptest.NewServer(serve.New(col, store, ""))
	defer ref.Close()
	g := bootGateway(t, col, shardStores(t, col, store, 3))

	paths := []string{
		"/v1/patterns/earthquake",
		"/v1/patterns/flood",
		"/v1/patterns/damage?kind=regional",
		"/v1/patterns/rescue?from=4&to=6",
		"/v1/patterns/EARTHQUAKE%20Rescue", // normalizes to "earthquake"
		"/v1/patterns/zzz-not-a-term",
	}
	for _, p := range paths {
		wantResp, err := http.Get(ref.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(wantResp.StatusCode)
		wantBody := readAll(t, wantResp)

		req := httptest.NewRequest(http.MethodGet, p, nil)
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, req)
		if rec.Code != wantResp.StatusCode {
			t.Errorf("%s: gateway status %d, unsharded %s", p, rec.Code, want)
			continue
		}
		if rec.Body.String() != wantBody {
			t.Errorf("%s: gateway body differs from the unsharded server\ngateway: %s\nwant:    %s", p, rec.Body.String(), wantBody)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestGatewayRefusesMixedGenerations: two shard bundles written at
// different store generations never serve together.
func TestGatewayRefusesMixedGenerations(t *testing.T) {
	col := gateCollection(t)
	store, err := col.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := shardStores(t, col, store, 2)
	// Rewrite shard 1's bundle at a later generation, as if it had been
	// re-mined after an ingest the other shard never saw.
	stores[1] = regenerateShard(t, col, store, 1, 2, 7, col.Checksum())
	g := bootGateway(t, col, stores)

	for _, p := range []string{"/v1/generation", "/v1/healthz"} {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d with mixed generations, want 503", p, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "mixed generations") {
			t.Errorf("GET %s body does not name the refusal: %s", p, rec.Body.String())
		}
	}
	code, _ := doSearch(t, g, stburst.Query{Text: "earthquake"})
	if code != http.StatusServiceUnavailable {
		t.Errorf("search = %d with mixed generations, want 503", code)
	}
}

// TestGatewayRefusesMixedCorpora: shard bundles mined from different
// corpora (different recorded fingerprints) never serve together.
func TestGatewayRefusesMixedCorpora(t *testing.T) {
	col := gateCollection(t)
	store, err := col.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := shardStores(t, col, store, 2)
	stores[1] = regenerateShard(t, col, store, 1, 2, 0, strings.Repeat("cd", 32))
	g := bootGateway(t, col, stores)

	code, _ := doSearch(t, g, stburst.Query{Text: "earthquake"})
	if code != http.StatusServiceUnavailable {
		t.Errorf("search = %d with mixed corpora, want 503", code)
	}
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "mixed corpora") {
		t.Errorf("healthz = %d %s, want 503 naming mixed corpora", rec.Code, rec.Body.String())
	}
}

// regenerateShard rewrites one shard's bundle with a chosen generation
// and corpus fingerprint.
func regenerateShard(t *testing.T, col *stburst.Collection, store *stburst.Store, shard, shards int, gen uint64, fp string) *stburst.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snaps, _, err := index.ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	names := map[int]string{}
	sets := make([]*index.PatternSet, len(snaps))
	for i, snap := range snaps {
		sets[i] = snap.Set
		for j, id := range snap.Set.Terms() {
			names[id] = snap.Terms[j]
		}
	}
	term := func(id int) string { return names[id] }
	parts, err := index.SplitSets(sets, term, shards)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	info := index.ShardInfo{Shard: shard, Shards: shards, Scheme: index.ShardScheme, CorpusFingerprint: fp}
	if err := index.WriteBundleSharded(&b, parts[shard], term, gen, info); err != nil {
		t.Fatal(err)
	}
	st, err := stburst.LoadStore(&b, col)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGatewayShardDown: losing a member degrades it after one failed
// poll (the member table still stands, but requests needing it fail
// strictly) and marks it down after three, refusing all reads.
func TestGatewayShardDown(t *testing.T) {
	col := gateCollection(t)
	store, err := col.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := shardStores(t, col, store, 2)
	urls := make([]string, len(stores))
	servers := make([]*httptest.Server, len(stores))
	for i, st := range stores {
		servers[i] = httptest.NewServer(serve.New(col, st, ""))
		urls[i] = servers[i].URL
	}
	defer servers[0].Close()
	g, err := New(Config{Members: urls, PollInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g.Refresh(ctx)

	// Pick a term owned by the shard about to die.
	victim := g.members[1].view().Health.Shard
	var term string
	for _, tm := range col.Terms() {
		if stburst.TermShard(tm, 2) == victim {
			term = tm
			break
		}
	}
	if term == "" {
		t.Fatal("no term owned by the victim shard")
	}
	if code, _ := doSearch(t, g, stburst.Query{Text: term}); code != http.StatusOK {
		t.Fatalf("healthy cluster search = %d, want 200", code)
	}

	servers[1].Close()
	g.Refresh(ctx)
	// One failure: degraded, the table still stands — but the strict
	// request path refuses queries that need the dead shard.
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Errorf("healthz after one failed poll = %d %s, want 200 with a degraded member", rec.Code, rec.Body.String())
	}
	if code, _ := doSearch(t, g, stburst.Query{Text: term}); code != http.StatusServiceUnavailable {
		t.Errorf("search needing the dead shard = %d, want 503", code)
	}

	g.Refresh(ctx)
	g.Refresh(ctx)
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "down") {
		t.Errorf("healthz after three failed polls = %d %s, want 503 naming the down member", rec.Code, rec.Body.String())
	}
	for _, p := range []string{"/v1/generation", "/v1/stats"} {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("GET %s with a down member = %d, want 503", p, rec.Code)
		}
	}
}

// TestGatewaySurface: the auxiliary routes — aggregated stats, cluster
// generation, the read-only write surface, bad queries, and the metrics
// exposition.
func TestGatewaySurface(t *testing.T) {
	col := gateCollection(t)
	store, err := col.MineStore(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := bootGateway(t, col, shardStores(t, col, store, 3))

	get := func(p string) (int, map[string]any) {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
		var body map[string]any
		json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body
	}

	code, stats := get("/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if got := stats["docs"]; got != float64(col.NumDocs()) {
		t.Errorf("stats docs = %v, want %d", got, col.NumDocs())
	}
	cluster, _ := stats["cluster"].(map[string]any)
	if cluster == nil || cluster["shards"] != float64(3) {
		t.Errorf("stats cluster block = %v, want shards 3", stats["cluster"])
	}
	if cluster != nil && cluster["fingerprint"] != col.Checksum() {
		t.Errorf("stats cluster fingerprint = %v, want the corpus checksum", cluster["fingerprint"])
	}
	if members, _ := cluster["members"].([]any); len(members) != 3 {
		t.Errorf("stats cluster members = %v, want 3 entries", cluster["members"])
	}

	code, gen := get("/v1/generation")
	if code != http.StatusOK || gen["generation"] != float64(store.Generation()) {
		t.Errorf("generation = %d %v, want 200 generation %d", code, gen, store.Generation())
	}

	code, hz := get("/v1/healthz")
	if code != http.StatusOK || hz["status"] != "ok" || hz["shards"] != float64(3) {
		t.Errorf("healthz = %d %v, want ok over 3 shards", code, hz)
	}

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/documents",
		strings.NewReader(`{"documents":[{"stream":"lima","time":1,"text":"x"}]}`)))
	if rec.Code != http.StatusForbidden {
		t.Errorf("documents = %d, want 403: the gateway is read-only", rec.Code)
	}

	// The standing-query surface answers 501 with a JSON reason — not
	// 404 — so clients learn the surface exists on unsharded stserve.
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/subscriptions"},
		{http.MethodGet, "/v1/subscriptions"},
		{http.MethodGet, "/v1/subscriptions/7"},
		{http.MethodDelete, "/v1/subscriptions/7"},
		{http.MethodGet, "/v1/alerts/stream"},
	} {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest(probe.method, probe.path, nil))
		if rec.Code != http.StatusNotImplemented {
			t.Errorf("%s %s = %d, want 501", probe.method, probe.path, rec.Code)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s %s body is not JSON: %v", probe.method, probe.path, err)
		}
		reason, _ := body["error"].(string)
		if !strings.Contains(reason, "unsharded stserve") {
			t.Errorf("%s %s reason %q does not point at unsharded stserve", probe.method, probe.path, reason)
		}
	}

	for _, bad := range []string{
		`{"text":"x","nope":1}`, // unknown field
		`{}`,                    // neither text nor terms
		`{"text":"x","terms":["y"]}`,
		`{"text":"x","k":-1}`,
	} {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(bad)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("search(%s) = %d, want 400", bad, rec.Code)
		}
	}

	doSearch(t, g, stburst.Query{Text: "earthquake rescue"})
	var buf bytes.Buffer
	if err := g.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`stgate_http_requests_total{route="POST /v1/search",code="2xx"}`,
		`stgate_http_requests_total{route="GET /v1/stats",code="2xx"}`,
		`stgate_members 3`,
		`stgate_members_down 0`,
		"stgate_upstream_requests_total",
		"stgate_fanout_seconds",
	} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("/metrics lacks %s", series)
		}
	}
}
