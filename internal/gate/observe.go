package gate

import (
	"log"
	"net/http"
	"sync"
	"time"

	"stburst/internal/metrics"
)

// observer is the gateway's metrics surface, shaped like stserve's so a
// cluster dashboard reads both with one set of queries: per-route
// request counters and latency histograms, fan-out latency by path
// (forward vs scatter), per-member upstream counters, and member-state
// gauges. Route instruments are created lazily on first hit; member
// instruments eagerly (the member set is fixed for the gateway's life).
type observer struct {
	s        *metrics.Registry
	inFlight *metrics.Gauge
	routes   sync.Map // mux pattern -> *routeInstruments
	fanouts  map[string]*metrics.Histogram
	members  map[string]*upstreamInstruments
	mu       sync.Mutex
	g        *Gateway
}

type routeInstruments struct {
	byClass [5]*metrics.Counter // 1xx..5xx
	latency *metrics.Histogram
}

// upstreamInstruments counts one member's upstream traffic.
type upstreamInstruments struct {
	reqs *metrics.Counter
	errs *metrics.Counter
}

var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

func newObserver(g *Gateway) *observer {
	o := &observer{s: metrics.NewRegistry(), g: g}
	o.inFlight = o.s.NewGauge("stgate_http_in_flight",
		"Requests currently being served.")
	o.s.NewGaugeFunc("stgate_uptime_seconds",
		"Seconds since the gateway was wired.",
		func() float64 { return time.Since(g.started).Seconds() })
	o.s.NewGaugeFunc("stgate_members",
		"Members in the gateway's table.",
		func() float64 { return float64(len(g.members)) })
	countState := func(want memberState) func() float64 {
		return func() float64 {
			n := 0
			for _, m := range g.members {
				m.mu.Lock()
				s := m.state()
				m.mu.Unlock()
				if s == want {
					n++
				}
			}
			return float64(n)
		}
	}
	o.s.NewGaugeFunc("stgate_members_degraded",
		"Members with recent failures whose last known identity still stands.",
		countState(stateDegraded))
	o.s.NewGaugeFunc("stgate_members_down",
		"Members never polled successfully or past the failure threshold.",
		countState(stateDown))
	o.fanouts = map[string]*metrics.Histogram{
		"forward": o.s.NewHistogram("stgate_fanout_seconds",
			"Upstream fan-out latency of a search, by dispatch path.",
			nil, metrics.L("path", "forward")),
		"scatter": o.s.NewHistogram("stgate_fanout_seconds",
			"Upstream fan-out latency of a search, by dispatch path.",
			nil, metrics.L("path", "scatter")),
	}
	o.members = make(map[string]*upstreamInstruments, len(g.members))
	for _, m := range g.members {
		o.members[m.url] = &upstreamInstruments{
			reqs: o.s.NewCounter("stgate_upstream_requests_total",
				"Requests sent to one member.", metrics.L("member", m.url)),
			errs: o.s.NewCounter("stgate_upstream_errors_total",
				"Transport failures talking to one member.", metrics.L("member", m.url)),
		}
	}
	return o
}

// fanout returns the fan-out histogram of one dispatch path.
func (o *observer) fanout(path string) *metrics.Histogram { return o.fanouts[path] }

// upstream returns one member's upstream instruments.
func (o *observer) upstream(url string) *upstreamInstruments { return o.members[url] }

// route returns (creating on first use) the instruments of one route.
func (o *observer) route(pattern string) *routeInstruments {
	if pattern == "" {
		pattern = "unmatched"
	}
	if ri, ok := o.routes.Load(pattern); ok {
		return ri.(*routeInstruments)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if ri, ok := o.routes.Load(pattern); ok { // lost the creation race
		return ri.(*routeInstruments)
	}
	ri := &routeInstruments{
		latency: o.s.NewHistogram("stgate_http_request_seconds",
			"Request latency by route.", nil, metrics.L("route", pattern)),
	}
	for i, class := range statusClasses {
		ri.byClass[i] = o.s.NewCounter("stgate_http_requests_total",
			"Requests served by route and status class.",
			metrics.L("route", pattern), metrics.L("code", class))
	}
	o.routes.Store(pattern, ri)
	return ri
}

// statusWriter records the response status; Unwrap keeps
// http.ResponseController working across the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument serves r through next, recording in-flight depth, status
// class and latency against the matched mux pattern.
func (o *observer) instrument(next http.Handler, w http.ResponseWriter, r *http.Request) {
	o.inFlight.Inc()
	defer o.inFlight.Dec()
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	next.ServeHTTP(sw, r)
	elapsed := time.Since(start).Seconds()
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	ri := o.route(r.Pattern)
	if cls := status/100 - 1; cls >= 0 && cls < len(ri.byClass) {
		ri.byClass[cls].Inc()
	}
	ri.latency.Observe(elapsed)
}

// handleMetrics answers GET /metrics with the Prometheus text format.
func (o *observer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := o.s.WriteText(w); err != nil {
		log.Printf("gate: writing /metrics: %v", err)
	}
}

// Registry exposes the gateway's metrics registry for in-process tests.
func (g *Gateway) Registry() *metrics.Registry { return g.obs.s }
