package gate

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"stburst"
)

// The search path must be bit-identical to an unsharded stserve over the
// same corpus and pattern sets. Two properties of the sharded layout
// make that reachable:
//
//   - Every member loads the full corpus; only the pattern bundle is
//     shard-filtered. A term's posting list (per-document score
//     log(freq+1) x burstiness) depends only on that term's own patterns,
//     so on the owning shard it is byte-identical to the unsharded list.
//   - The retrieval model is per-term decomposable: the aggregate score
//     is the sum of per-term scores in query-token order (Eq. 10), a
//     document qualifies iff every query term's posting list holds it,
//     and the Region/Time post-filter passes a document iff some single
//     query term has a pattern that overlaps it and intersects the
//     filter — a disjunction over terms.
//
// So the gateway answers a query whose tokens all hash to one shard by
// forwarding it verbatim (the owner computes exactly the unsharded
// answer), and a cross-shard query by fetching each distinct term's
// full per-term result from its owner — unfiltered for membership and
// scores, plus a filtered variant when the query carries Region/Time —
// then joining: intersect for membership, sum per-term scores in token
// order (float addition in the engine's order, so sums are
// bit-identical), pass the filter if any term's filtered list holds the
// document, and re-rank with the exported stburst.SortHits order.
// KindAny reproduces Store.Query's fan-out literally: each kind's
// ranking is truncated to Offset+K+1 before the merge and contributes
// its own More flag, then one sort and one pagination over the merged
// list.

// wireHit mirrors stserve's search hit JSON.
type wireHit struct {
	Doc    int     `json:"doc"`
	Kind   string  `json:"kind"`
	Stream string  `json:"stream"`
	Time   int     `json:"time"`
	Score  float64 `json:"score"`
}

// wireSearch is the slice of stserve's search response the join needs.
type wireSearch struct {
	Count int       `json:"count"`
	More  bool      `json:"more"`
	Hits  []wireHit `json:"hits"`
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	g.searches.Add(1)
	var q stburst.Query
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "invalid query body: "+err.Error())
		return
	}
	if err := q.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	v := g.snapshot()
	if !v.ok {
		writeError(w, http.StatusServiceUnavailable, v.reason)
		return
	}
	start := time.Now()

	// Tokenize exactly as the members resolve the query: Text through
	// ToLower+Tokenize (the engine's free-text path), Terms entry by
	// entry through Tokenize (resolveTerms), occurrence order and
	// duplicates preserved — the scoring fold depends on both.
	var toks []string
	if len(q.Terms) > 0 {
		for _, t := range q.Terms {
			toks = append(toks, g.tok.Tokenize(t)...)
		}
	} else {
		toks = g.tok.Tokenize(strings.ToLower(q.Text))
	}
	if len(toks) == 0 {
		// Nothing survives tokenization: any single member computes the
		// exact answer (an empty page under Eq. 10, or the store-level
		// 404 when the asked kind is not resident — that check precedes
		// term resolution). Let shard 0 speak for the cluster.
		g.forwardSearch(w, r, v, v.owners[0], q, start)
		return
	}

	home := stburst.TermShard(toks[0], v.shards)
	single := true
	for _, t := range toks[1:] {
		if stburst.TermShard(t, v.shards) != home {
			single = false
			break
		}
	}
	if single {
		g.forwardSearch(w, r, v, v.owners[home], q, start)
		return
	}
	g.scatterSearch(w, r, v, q, toks, start)
}

// forwardSearch relays the whole query to one member: every query term
// lives on its shard, so its answer is the unsharded answer.
func (g *Gateway) forwardSearch(w http.ResponseWriter, r *http.Request, v clusterView, m *member, q stburst.Query, start time.Time) {
	body, err := json.Marshal(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding query: "+err.Error())
		return
	}
	status, resp, err := g.do(r.Context(), m, http.MethodPost, "/v1/search", "", body)
	g.obs.fanout("forward").Observe(time.Since(start).Seconds())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("shard %d (%s): %v", v.memberShard(m), m.url, err))
		return
	}
	relay(w, status, resp)
}

// subKey identifies one per-term sub-query of the scatter.
type subKey struct {
	kind     stburst.Kind
	term     string
	filtered bool
}

// subResult is one sub-query's outcome.
type subResult struct {
	status int
	body   []byte
	resp   wireSearch
	err    error
}

// scatterSearch answers a cross-shard query by per-term fan-out and an
// exact join (see the package comment above).
func (g *Gateway) scatterSearch(w http.ResponseWriter, r *http.Request, v clusterView, q stburst.Query, toks []string, start time.Time) {
	kinds := stburst.Kinds()
	if q.Kind != stburst.KindAny {
		kinds = []stburst.Kind{q.Kind}
	}
	var terms []string // distinct, first-occurrence order
	seen := map[string]bool{}
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			terms = append(terms, t)
		}
	}
	filtered := q.Region != nil || q.Time != nil

	// Fan out: per kind and distinct term, the term's full unfiltered
	// ranking from its owner (membership + scores), plus the filtered
	// variant when the query restricts Region/Time.
	var jobs []subKey
	for _, kind := range kinds {
		for _, t := range terms {
			jobs = append(jobs, subKey{kind: kind, term: t})
			if filtered {
				jobs = append(jobs, subKey{kind: kind, term: t, filtered: true})
			}
		}
	}
	results := make(map[subKey]*subResult, len(jobs))
	for _, j := range jobs {
		results[j] = &subResult{}
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j subKey) {
			defer wg.Done()
			sub := stburst.Query{
				Terms: []string{j.term},
				Kind:  j.kind,
				K:     stburst.MaxK,
			}
			if j.filtered {
				if q.Region != nil {
					rr := *q.Region
					sub.Region = &rr
				}
				if q.Time != nil {
					tt := *q.Time
					sub.Time = &tt
				}
			}
			res := results[j]
			body, err := json.Marshal(sub)
			if err != nil {
				res.err = err
				return
			}
			owner := v.owners[stburst.TermShard(j.term, v.shards)]
			res.status, res.body, res.err = g.do(r.Context(), owner, http.MethodPost, "/v1/search", "", body)
			if res.err != nil || res.status != http.StatusOK {
				return
			}
			res.err = json.Unmarshal(res.body, &res.resp)
		}(j)
	}
	wg.Wait()
	g.obs.fanout("scatter").Observe(time.Since(start).Seconds())

	// The strict policy: any sub-failure refuses the query. A 404 means
	// the kind is not resident on the members — skipped under KindAny
	// (Store.Query skips non-resident kinds), relayed for a concrete
	// kind. A More-flagged sub-response would mean a posting list longer
	// than MaxK, whose tail the join cannot see.
	absent := map[stburst.Kind]bool{}
	for _, j := range jobs {
		res := results[j]
		if res.err != nil {
			owner := v.owners[stburst.TermShard(j.term, v.shards)]
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("shard %d (%s): %v", v.memberShard(owner), owner.url, res.err))
			return
		}
		switch {
		case res.status == http.StatusOK:
			if res.resp.More {
				writeError(w, http.StatusServiceUnavailable,
					fmt.Sprintf("term %q exceeds %d hits on its shard; the join cannot be exact", j.term, stburst.MaxK))
				return
			}
		case res.status == http.StatusNotFound && q.Kind == stburst.KindAny:
			absent[j.kind] = true
		case res.status == http.StatusNotFound:
			relay(w, res.status, res.body)
			return
		default:
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("shard answered %d for term %q", res.status, j.term))
			return
		}
	}

	k := q.K
	if k == 0 {
		k = stburst.DefaultK
	}
	// Store.Query's KindAny fan-out asks each kind for the first
	// Offset+K+1 of its own ranking (capped at MaxK) and ORs the
	// per-kind More flags; reproduce that literally from the full
	// per-kind joins.
	need := q.Offset + k + 1
	if need > stburst.MaxK {
		need = stburst.MaxK
	}
	var merged []stburst.Hit
	more := false
	queried := false
	for _, kind := range kinds {
		if absent[kind] {
			continue
		}
		queried = true
		full := joinKind(kind, toks, terms, results, filtered, q.MinScore)
		if q.Kind == stburst.KindAny {
			if len(full) > need {
				more = true
				full = full[:need]
			}
			merged = append(merged, full...)
		} else {
			merged = full
		}
	}
	if !queried {
		writeError(w, http.StatusNotFound, "kind not resident: store holds no indexes")
		return
	}
	if q.Kind == stburst.KindAny {
		stburst.SortHits(merged)
	}
	if q.Offset >= len(merged) {
		g.writePage(w, q, nil, false, start)
		return
	}
	end := q.Offset + k
	if end > len(merged) {
		end = len(merged)
	} else if end < len(merged) {
		more = true
	}
	g.writePage(w, q, merged[q.Offset:end], more, start)
}

// joinKind assembles one kind's full filtered ranking from the per-term
// sub-results: conjunction for membership, token-order score sums,
// disjunctive filter pass, MinScore threshold, then the canonical
// (score desc, doc asc) order via the exported merge.
func joinKind(kind stburst.Kind, toks, terms []string, results map[subKey]*subResult, filtered bool, minScore float64) []stburst.Hit {
	byTerm := make(map[string]map[int]wireHit, len(terms))
	for _, t := range terms {
		hits := results[subKey{kind: kind, term: t}].resp.Hits
		m := make(map[int]wireHit, len(hits))
		for _, h := range hits {
			m[h.Doc] = h
		}
		byTerm[t] = m
	}
	var pass map[int]bool
	if filtered {
		pass = map[int]bool{}
		for _, t := range terms {
			for _, h := range results[subKey{kind: kind, term: t, filtered: true}].resp.Hits {
				pass[h.Doc] = true
			}
		}
	}
	first := byTerm[terms[0]]
	var hits []stburst.Hit
	for doc, wh := range first {
		inAll := true
		for _, t := range terms[1:] {
			if _, ok := byTerm[t][doc]; !ok {
				inAll = false
				break
			}
		}
		if !inAll || (filtered && !pass[doc]) {
			continue
		}
		// The engine folds per-term scores left to right over the query
		// tokens, duplicates included; identical order means identical
		// float64 rounding means identical bytes on the wire.
		score := 0.0
		for _, t := range toks {
			score += byTerm[t][doc].Score
		}
		if score < minScore {
			continue
		}
		hits = append(hits, stburst.Hit{
			Doc:    stburst.Document{ID: doc, Time: wh.Time},
			Score:  score,
			Stream: wh.Stream,
			Kind:   kind,
		})
	}
	// Map iteration is unordered; establish doc order first so the
	// stable score sort leaves equal scores in ascending-doc order —
	// the same total order the engine's TopK emits.
	sort.Slice(hits, func(i, j int) bool { return hits[i].Doc.ID < hits[j].Doc.ID })
	stburst.SortHits(hits)
	return hits
}

// writePage emits a search response in stserve's exact shape.
func (g *Gateway) writePage(w http.ResponseWriter, q stburst.Query, hits []stburst.Hit, more bool, start time.Time) {
	out := make([]wireHit, len(hits))
	for i, h := range hits {
		out[i] = wireHit{Doc: h.Doc.ID, Kind: h.Kind.String(), Stream: h.Stream, Time: h.Doc.Time, Score: h.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":   q,
		"took_ms": float64(time.Since(start).Microseconds()) / 1000,
		"count":   len(out),
		"more":    more,
		"hits":    out,
	})
}
