package index

import (
	"encoding/hex"
	"fmt"

	"stburst/internal/burst"
	"stburst/internal/core"
)

// ShardScheme names the vocabulary partition function used by sharded
// bundles: FNV-1a (64-bit) over the canonical term string, modulo the
// shard count. The tag travels in every shard bundle so a gateway can
// refuse to route queries across members that partitioned differently.
const ShardScheme = "fnv1a64/term"

// maxShardSchemeLen bounds a stored scheme tag; longer length prefixes
// can only come from corrupted input and are rejected before allocating.
const maxShardSchemeLen = 64

// ShardInfo identifies which slice of a partitioned vocabulary a bundle
// holds. An unsharded artifact reads as the whole partition: shard 0 of
// 1 with no scheme. CorpusFingerprint is the hex SHA-256 checksum of the
// corpus the patterns were mined from ("" when unrecorded); members of
// one shard set share it, so mixing bundles mined from different corpora
// is detectable without decoding a single pattern.
type ShardInfo struct {
	Shard             int
	Shards            int
	Scheme            string
	CorpusFingerprint string
}

// Sharded reports whether the info describes a true slice of a larger
// partition rather than a whole (unsharded) store.
func (si ShardInfo) Sharded() bool { return si.Shards > 1 }

// validate rejects impossible shard coordinates before they are written
// to or trusted from disk.
func (si ShardInfo) validate() error {
	if si.Shards < 1 {
		return fmt.Errorf("index: shard count %d < 1", si.Shards)
	}
	if si.Shard < 0 || si.Shard >= si.Shards {
		return fmt.Errorf("index: shard index %d outside [0, %d)", si.Shard, si.Shards)
	}
	if len(si.Scheme) > maxShardSchemeLen {
		return fmt.Errorf("index: shard scheme tag longer than %d bytes", maxShardSchemeLen)
	}
	if si.Shards > 1 && si.Scheme == "" {
		return fmt.Errorf("index: sharded bundle needs a partition-scheme tag")
	}
	if si.CorpusFingerprint != "" {
		if fp, err := hex.DecodeString(si.CorpusFingerprint); err != nil || len(fp) != 32 {
			return fmt.Errorf("index: corpus fingerprint is not a hex SHA-256")
		}
	}
	return nil
}

// TermShard maps a canonical term string to its owning shard under
// ShardScheme: FNV-1a 64-bit over the term's bytes, modulo shards. Every
// component of the cluster — stmine splitting the vocabulary, stserve
// reporting identity, stgate routing point lookups — must agree on this
// function, so it is defined exactly once.
func TermShard(term string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(term); i++ {
		h ^= uint64(term[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// SplitSets partitions mined pattern sets into shards by TermShard over
// each term's canonical string (term resolves interned IDs, normally
// Dictionary.Term). Every shard receives one PatternSet per input kind,
// in the same kind order, even when a shard owns no terms of a kind —
// a shard bundle therefore always has the same member shape as the
// unsharded bundle it was split from. Pattern slices are shared with the
// input sets, not copied.
func SplitSets(sets []*PatternSet, term func(id int) string, shards int) ([][]*PatternSet, error) {
	if shards < 1 {
		return nil, fmt.Errorf("index: cannot split into %d shards", shards)
	}
	out := make([][]*PatternSet, shards)
	for _, s := range sets {
		switch s.Kind() {
		case KindRegional:
			parts := make([]map[int][]core.Window, shards)
			for i := range parts {
				parts[i] = make(map[int][]core.Window)
			}
			for id, ws := range s.AllWindows() {
				parts[TermShard(term(id), shards)][id] = ws
			}
			for i := range out {
				out[i] = append(out[i], NewWindowSet(parts[i]))
			}
		case KindCombinatorial:
			parts := make([]map[int][]core.CombPattern, shards)
			for i := range parts {
				parts[i] = make(map[int][]core.CombPattern)
			}
			for id, ps := range s.AllCombs() {
				parts[TermShard(term(id), shards)][id] = ps
			}
			for i := range out {
				out[i] = append(out[i], NewCombSet(parts[i]))
			}
		case KindTemporal:
			parts := make([]map[int][]burst.Interval, shards)
			for i := range parts {
				parts[i] = make(map[int][]burst.Interval)
			}
			for id, ivs := range s.AllTemporal() {
				parts[TermShard(term(id), shards)][id] = ivs
			}
			for i := range out {
				out[i] = append(out[i], NewTemporalSet(parts[i]))
			}
		default:
			return nil, fmt.Errorf("index: cannot split unknown pattern kind %d", s.Kind())
		}
	}
	return out, nil
}
