package index

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"path/filepath"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/interval"
)

// Snapshot binary format (".stb", little-endian throughout):
//
//	magic      [8]byte  "STBSNAP\x00"
//	version    uint32   currently 2
//	kind       uint32   PatternKind
//	generation uint64   store generation the snapshot was saved at
//	                    (version ≥ 2 only; a version-1 stream has no
//	                    generation field and reads as generation 0)
//	terms      uvarint  number of terms holding patterns
//	then, for each term in ascending writer-side interned-ID order:
//	  id       uvarint  the writer's interned term ID
//	  term     uvarint length + that many UTF-8 bytes
//	  count    uvarint  number of patterns of the term
//	  patterns kind-specific records (ints as zig-zag varints, floats as
//	           fixed 8-byte IEEE-754 bit patterns)
//	checksum    [32]byte raw SHA-256 over every preceding byte
//	fingerprint [32]byte raw SHA-256 — the PatternSet's canonical fingerprint
//
// The checksum catches any corruption of the encoded stream (including
// the term strings, which the canonical fingerprint does not cover); the
// fingerprint proves the decoded patterns are bit-identical to the mined
// set. Both must verify and no bytes may follow the footer; ReadSnapshot
// rejects anything else. See DESIGN.md for the full specification.

// snapshotMagic identifies a pattern-index snapshot stream.
const snapshotMagic = "STBSNAP\x00"

// SnapshotVersion is the codec version written by WriteSnapshot.
// ReadSnapshot also accepts the previous version 1 (the pre-generation
// format), decoding it as generation 0.
const SnapshotVersion = 2

// minSnapshotVersion is the oldest codec version ReadSnapshot accepts.
const minSnapshotVersion = 1

// maxSnapshotTermLen bounds a stored term string; longer length prefixes
// can only come from corrupted input and are rejected before allocating.
const maxSnapshotTermLen = 1 << 20

// Snapshot is a decoded pattern-index snapshot, still keyed by the
// *writer's* interned term IDs. Set holds the patterns exactly as they
// were mined; Terms gives the string of each ID in Set.Terms() order, so
// Remap can re-intern the patterns into another collection's dictionary.
// Generation is the store generation the snapshot was saved at (0 for a
// version-1 stream, which predates generations).
type Snapshot struct {
	Set        *PatternSet
	Terms      []string
	Generation uint64
}

// snapshotWriter serializes primitive values with the format's encodings,
// feeding every payload byte through the stream checksum.
type snapshotWriter struct {
	w   *bufio.Writer
	h   hash.Hash // nil once the payload ends and the footer begins
	buf [binary.MaxVarintLen64]byte
	err error
}

func (sw *snapshotWriter) bytes(p []byte) {
	if sw.err == nil {
		if sw.h != nil {
			sw.h.Write(p)
		}
		_, sw.err = sw.w.Write(p)
	}
}

func (sw *snapshotWriter) uvarint(v uint64) {
	sw.bytes(sw.buf[:binary.PutUvarint(sw.buf[:], v)])
}

func (sw *snapshotWriter) varint(v int) {
	sw.bytes(sw.buf[:binary.PutVarint(sw.buf[:], int64(v))])
}

func (sw *snapshotWriter) float(v float64) {
	binary.LittleEndian.PutUint64(sw.buf[:8], math.Float64bits(v))
	sw.bytes(sw.buf[:8])
}

func (sw *snapshotWriter) string(s string) {
	sw.uvarint(uint64(len(s)))
	sw.bytes([]byte(s))
}

// WriteSnapshot serializes a PatternSet to w in the versioned binary
// snapshot format, resolving each interned term ID to its string through
// term (normally Dictionary.Term). The trailing canonical SHA-256
// fingerprint lets ReadSnapshot verify the round trip bit for bit. The
// snapshot carries generation 0; use WriteSnapshotGen to record a store
// generation for cache-busting.
func WriteSnapshot(w io.Writer, s *PatternSet, term func(id int) string) error {
	return writeSnapshotVersion(w, s, term, 0, SnapshotVersion)
}

// WriteSnapshotGen is WriteSnapshot with an explicit store generation
// recorded in the v2 header.
func WriteSnapshotGen(w io.Writer, s *PatternSet, term func(id int) string, gen uint64) error {
	return writeSnapshotVersion(w, s, term, gen, SnapshotVersion)
}

// writeSnapshotVersion writes the snapshot at a specific codec version.
// Version 1 — kept so the cross-version tests can produce genuine legacy
// streams — has no generation field; gen is ignored there.
func writeSnapshotVersion(w io.Writer, s *PatternSet, term func(id int) string, gen uint64, version uint32) error {
	sw := &snapshotWriter{w: bufio.NewWriter(w), h: sha256.New()}
	sw.bytes([]byte(snapshotMagic))
	binary.LittleEndian.PutUint32(sw.buf[:4], version)
	sw.bytes(sw.buf[:4])
	binary.LittleEndian.PutUint32(sw.buf[:4], uint32(s.Kind()))
	sw.bytes(sw.buf[:4])
	if version >= 2 {
		binary.LittleEndian.PutUint64(sw.buf[:8], gen)
		sw.bytes(sw.buf[:8])
	}
	sw.uvarint(uint64(s.NumTerms()))
	for _, id := range s.Terms() {
		sw.uvarint(uint64(id))
		sw.string(term(id))
		switch s.Kind() {
		case KindRegional:
			ws := s.Windows(id)
			sw.uvarint(uint64(len(ws)))
			for _, p := range ws {
				sw.float(p.Rect.MinX)
				sw.float(p.Rect.MinY)
				sw.float(p.Rect.MaxX)
				sw.float(p.Rect.MaxY)
				sw.uvarint(uint64(len(p.Streams)))
				for _, x := range p.Streams {
					sw.varint(x)
				}
				sw.varint(p.Start)
				sw.varint(p.End)
				sw.float(p.Score)
			}
		case KindCombinatorial:
			ps := s.Combs(id)
			sw.uvarint(uint64(len(ps)))
			for _, p := range ps {
				sw.uvarint(uint64(len(p.Streams)))
				for _, x := range p.Streams {
					sw.varint(x)
				}
				sw.varint(p.Start)
				sw.varint(p.End)
				sw.float(p.Score)
				sw.uvarint(uint64(len(p.Intervals)))
				for _, iv := range p.Intervals {
					sw.varint(iv.Stream)
					sw.varint(iv.Start)
					sw.varint(iv.End)
					sw.float(iv.Weight)
				}
			}
		case KindTemporal:
			ivs := s.Temporal(id)
			sw.uvarint(uint64(len(ivs)))
			for _, iv := range ivs {
				sw.varint(iv.Start)
				sw.varint(iv.End)
				sw.float(iv.Score)
			}
		}
	}
	fp, err := hex.DecodeString(s.Fingerprint())
	if err != nil {
		return fmt.Errorf("index: encoding snapshot fingerprint: %w", err)
	}
	sum := sw.h.Sum(nil)
	sw.h = nil // the footer is not part of its own checksum
	sw.bytes(sum)
	sw.bytes(fp)
	if sw.err != nil {
		return fmt.Errorf("index: writing snapshot: %w", sw.err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("index: writing snapshot: %w", err)
	}
	return nil
}

// snapshotReader decodes primitive values, converting any mid-stream EOF
// into io.ErrUnexpectedEOF so truncation always reads as corruption, and
// feeding every consumed payload byte through the stream checksum.
type snapshotReader struct {
	r   *bufio.Reader
	h   hash.Hash // nil once the payload ends and the footer begins
	err error
}

// ReadByte implements io.ByteReader for binary.ReadUvarint/ReadVarint,
// folding the consumed byte into the checksum.
func (sr *snapshotReader) ReadByte() (byte, error) {
	b, err := sr.r.ReadByte()
	if err == nil && sr.h != nil {
		sr.h.Write([]byte{b})
	}
	return b, err
}

func (sr *snapshotReader) fail(err error) {
	if sr.err == nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		sr.err = err
	}
}

func (sr *snapshotReader) bytes(n int) []byte {
	if sr.err != nil {
		return nil
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(sr.r, p); err != nil {
		sr.fail(err)
		return nil
	}
	if sr.h != nil {
		sr.h.Write(p)
	}
	return p
}

func (sr *snapshotReader) uvarint() uint64 {
	if sr.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(sr)
	if err != nil {
		sr.fail(err)
	}
	return v
}

func (sr *snapshotReader) varint() int {
	if sr.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(sr)
	if err != nil {
		sr.fail(err)
	}
	return int(v)
}

func (sr *snapshotReader) float() float64 {
	p := sr.bytes(8)
	if p == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}

func (sr *snapshotReader) string() string {
	n := sr.uvarint()
	if sr.err == nil && n > maxSnapshotTermLen {
		sr.fail(fmt.Errorf("term length %d exceeds limit", n))
	}
	return string(sr.bytes(int(n)))
}

// count validates a length prefix and returns a safe preallocation size:
// corrupted prefixes must hit a decode error, never a huge allocation.
func (sr *snapshotReader) count() (n int, prealloc int) {
	v := sr.uvarint()
	if sr.err == nil && v > math.MaxInt32 {
		sr.fail(fmt.Errorf("element count %d exceeds limit", v))
	}
	if v > 4096 {
		return int(v), 4096
	}
	return int(v), int(v)
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot and verifies
// its integrity: the magic, version and kind must be valid, the decoded
// pattern content must reproduce the stored canonical SHA-256 fingerprint
// exactly, and no trailing bytes may follow the footer. Truncated or
// corrupted input yields an error, never a silently damaged index.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	sr := &snapshotReader{r: bufio.NewReader(r), h: sha256.New()}
	if magic := sr.bytes(len(snapshotMagic)); sr.err == nil && string(magic) != snapshotMagic {
		return nil, fmt.Errorf("index: not a pattern-index snapshot (bad magic %q)", magic)
	}
	var version, kindRaw uint32
	if p := sr.bytes(4); p != nil {
		version = binary.LittleEndian.Uint32(p)
	}
	if sr.err == nil && (version < minSnapshotVersion || version > SnapshotVersion) {
		return nil, fmt.Errorf("index: unsupported snapshot version %d (want %d..%d)", version, minSnapshotVersion, SnapshotVersion)
	}
	if p := sr.bytes(4); p != nil {
		kindRaw = binary.LittleEndian.Uint32(p)
	}
	kind := PatternKind(kindRaw)
	if sr.err == nil && kind != KindRegional && kind != KindCombinatorial && kind != KindTemporal {
		return nil, fmt.Errorf("index: unknown snapshot pattern kind %d", kindRaw)
	}
	var generation uint64
	if version >= 2 {
		// Version-1 streams predate generations and read as generation 0.
		if p := sr.bytes(8); p != nil {
			generation = binary.LittleEndian.Uint64(p)
		}
	}

	numTerms, _ := sr.count()
	var (
		windows  map[int][]core.Window
		combs    map[int][]core.CombPattern
		temporal map[int][]burst.Interval
		terms    []string
		lastID   = -1
	)
	switch kind {
	case KindRegional:
		windows = make(map[int][]core.Window)
	case KindCombinatorial:
		combs = make(map[int][]core.CombPattern)
	case KindTemporal:
		temporal = make(map[int][]burst.Interval)
	}
	for i := 0; i < numTerms && sr.err == nil; i++ {
		id := int(sr.uvarint())
		if sr.err == nil && id <= lastID {
			sr.fail(fmt.Errorf("term IDs not strictly ascending (%d after %d)", id, lastID))
			break
		}
		lastID = id
		terms = append(terms, sr.string())
		n, prealloc := sr.count()
		switch kind {
		case KindRegional:
			ws := make([]core.Window, 0, prealloc)
			for j := 0; j < n && sr.err == nil; j++ {
				var w core.Window
				w.Rect.MinX = sr.float()
				w.Rect.MinY = sr.float()
				w.Rect.MaxX = sr.float()
				w.Rect.MaxY = sr.float()
				ns, np := sr.count()
				w.Streams = make([]int, 0, np)
				for s := 0; s < ns && sr.err == nil; s++ {
					w.Streams = append(w.Streams, sr.varint())
				}
				w.Start = sr.varint()
				w.End = sr.varint()
				w.Score = sr.float()
				ws = append(ws, w)
			}
			windows[id] = ws
		case KindCombinatorial:
			ps := make([]core.CombPattern, 0, prealloc)
			for j := 0; j < n && sr.err == nil; j++ {
				var p core.CombPattern
				ns, np := sr.count()
				p.Streams = make([]int, 0, np)
				for s := 0; s < ns && sr.err == nil; s++ {
					p.Streams = append(p.Streams, sr.varint())
				}
				p.Start = sr.varint()
				p.End = sr.varint()
				p.Score = sr.float()
				ni, nip := sr.count()
				p.Intervals = make([]interval.Interval, 0, nip)
				for s := 0; s < ni && sr.err == nil; s++ {
					var iv interval.Interval
					iv.Stream = sr.varint()
					iv.Start = sr.varint()
					iv.End = sr.varint()
					iv.Weight = sr.float()
					p.Intervals = append(p.Intervals, iv)
				}
				ps = append(ps, p)
			}
			combs[id] = ps
		case KindTemporal:
			ivs := make([]burst.Interval, 0, prealloc)
			for j := 0; j < n && sr.err == nil; j++ {
				var iv burst.Interval
				iv.Start = sr.varint()
				iv.End = sr.varint()
				iv.Score = sr.float()
				ivs = append(ivs, iv)
			}
			temporal[id] = ivs
		}
	}
	sum := sr.h.Sum(nil)
	sr.h = nil // the footer is not part of its own checksum
	storedSum := sr.bytes(32)
	storedFP := sr.bytes(32)
	if sr.err != nil {
		return nil, fmt.Errorf("index: reading snapshot: %w", sr.err)
	}
	if _, err := sr.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("index: snapshot has trailing data after fingerprint footer")
	}
	if !bytes.Equal(sum, storedSum) {
		return nil, fmt.Errorf("index: snapshot corrupted: stream checksum mismatch")
	}

	var set *PatternSet
	switch kind {
	case KindRegional:
		set = NewWindowSet(windows)
	case KindCombinatorial:
		set = NewCombSet(combs)
	case KindTemporal:
		set = NewTemporalSet(temporal)
	}
	if got := set.Fingerprint(); got != hex.EncodeToString(storedFP) {
		return nil, fmt.Errorf("index: snapshot corrupted: content fingerprint %s does not match stored %s",
			got, hex.EncodeToString(storedFP))
	}
	return &Snapshot{Set: set, Terms: terms, Generation: generation}, nil
}

// WriteSnapshotFile saves a snapshot atomically: it writes to a temp
// file in the destination directory and renames over the target, so a
// crash or full disk mid-save never leaves a truncated snapshot for the
// next boot to trip over.
func WriteSnapshotFile(path string, s *PatternSet, term func(id int) string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, s, term); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp uses 0600; snapshots are mined by one user and served
	// by another, so widen to the conventional 0644 before publishing.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Validate checks every stored pattern against the shape of a target
// collection: stream indices must lie in [0, numStreams) and timestamps
// in [0, timeline). A snapshot can pass the checksum, fingerprint and
// vocabulary checks yet come from a structurally different corpus (fewer
// streams, shorter timeline); out-of-range references would otherwise
// surface later as index-out-of-range panics on the serving path.
func (s *PatternSet) Validate(numStreams, timeline int) error {
	checkTime := func(start, end int) error {
		if start < 0 || end < start || end >= timeline {
			return fmt.Errorf("index: pattern timeframe [%d,%d] outside timeline [0,%d)", start, end, timeline)
		}
		return nil
	}
	checkStream := func(x int) error {
		if x < 0 || x >= numStreams {
			return fmt.Errorf("index: pattern stream %d outside [0,%d)", x, numStreams)
		}
		return nil
	}
	for _, t := range s.terms {
		for _, w := range s.windows[t] {
			if err := checkTime(w.Start, w.End); err != nil {
				return err
			}
			for _, x := range w.Streams {
				if err := checkStream(x); err != nil {
					return err
				}
			}
		}
		for _, p := range s.combs[t] {
			if err := checkTime(p.Start, p.End); err != nil {
				return err
			}
			for _, x := range p.Streams {
				if err := checkStream(x); err != nil {
					return err
				}
			}
			for _, iv := range p.Intervals {
				if err := checkStream(iv.Stream); err != nil {
					return err
				}
				if err := checkTime(iv.Start, iv.End); err != nil {
					return err
				}
			}
		}
		for _, iv := range s.temporal[t] {
			if err := checkTime(iv.Start, iv.End); err != nil {
				return err
			}
		}
	}
	return nil
}

// Remap re-interns the snapshot's patterns into another dictionary:
// every stored term string is resolved through lookup (normally
// Dictionary.Lookup of the serving collection) and the pattern slices are
// re-keyed by the resolved IDs. When the serving dictionary interned the
// corpus in the writer's order — the mine-once/serve-many pipeline — the
// mapping is the identity and the remapped set fingerprints identically
// to the mined one. A stored term the dictionary does not know means the
// snapshot and collection disagree, and is an error.
func (snap *Snapshot) Remap(lookup func(term string) (int, bool)) (*PatternSet, error) {
	ids := snap.Set.Terms()
	mapped := make(map[int]int, len(ids)) // writer ID -> local ID
	used := make(map[int]string, len(ids))
	for i, id := range ids {
		term := snap.Terms[i]
		local, ok := lookup(term)
		if !ok {
			return nil, fmt.Errorf("index: snapshot term %q is not in the collection dictionary", term)
		}
		if prev, dup := used[local]; dup {
			return nil, fmt.Errorf("index: snapshot terms %q and %q both map to dictionary ID %d", prev, term, local)
		}
		used[local] = term
		mapped[id] = local
	}
	switch snap.Set.Kind() {
	case KindRegional:
		out := make(map[int][]core.Window, len(ids))
		for id, local := range mapped {
			out[local] = snap.Set.Windows(id)
		}
		return NewWindowSet(out), nil
	case KindCombinatorial:
		out := make(map[int][]core.CombPattern, len(ids))
		for id, local := range mapped {
			out[local] = snap.Set.Combs(id)
		}
		return NewCombSet(out), nil
	default:
		out := make(map[int][]burst.Interval, len(ids))
		for id, local := range mapped {
			out[local] = snap.Set.Temporal(id)
		}
		return NewTemporalSet(out), nil
	}
}
