package index

import (
	"math/rand"
	"testing"
)

func buildSmall() *Index {
	ix := New()
	// term 0: docs 1,2,3 with scores 5,3,1
	ix.Add(0, 1, 5)
	ix.Add(0, 2, 3)
	ix.Add(0, 3, 1)
	// term 1: docs 2,3,4 with scores 4,2,6
	ix.Add(1, 2, 4)
	ix.Add(1, 3, 2)
	ix.Add(1, 4, 6)
	ix.Finalize()
	return ix
}

func TestTopKSingleTerm(t *testing.T) {
	ix := buildSmall()
	got := ix.TopK([]int{0}, 2, MissingExcludes)
	if len(got) != 2 || got[0].Doc != 1 || got[1].Doc != 2 {
		t.Fatalf("got %+v, want docs 1,2", got)
	}
	if got[0].Score != 5 || got[1].Score != 3 {
		t.Fatalf("scores %+v", got)
	}
}

func TestTopKExcludesPartialMatches(t *testing.T) {
	ix := buildSmall()
	got := ix.TopK([]int{0, 1}, 10, MissingExcludes)
	// Only docs 2 (3+4=7) and 3 (1+2=3) appear in both lists.
	if len(got) != 2 || got[0].Doc != 2 || got[1].Doc != 3 {
		t.Fatalf("got %+v, want docs 2,3", got)
	}
	if got[0].Score != 7 || got[1].Score != 3 {
		t.Fatalf("scores %+v", got)
	}
}

func TestTopKMissingZeroKeepsPartialMatches(t *testing.T) {
	ix := buildSmall()
	got := ix.TopK([]int{0, 1}, 10, MissingZero)
	// All docs: 1→5, 2→7, 3→3, 4→6.
	want := []Result{{Doc: 2, Score: 7}, {Doc: 4, Score: 6}, {Doc: 1, Score: 5}, {Doc: 3, Score: 3}}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

func TestTopKUnknownTerm(t *testing.T) {
	ix := buildSmall()
	if got := ix.TopK([]int{99}, 5, MissingExcludes); got != nil {
		t.Fatalf("unknown term: got %v", got)
	}
	if got := ix.TopK([]int{0, 99}, 5, MissingExcludes); got != nil {
		t.Fatalf("conjunctive with unknown term: got %v", got)
	}
	// MissingZero ignores the unknown term.
	got := ix.TopK([]int{0, 99}, 1, MissingZero)
	if len(got) != 1 || got[0].Doc != 1 {
		t.Fatalf("got %+v, want doc 1", got)
	}
}

func TestTopKZeroK(t *testing.T) {
	ix := buildSmall()
	if got := ix.TopK([]int{0}, 0, MissingZero); got != nil {
		t.Fatalf("k=0: got %v", got)
	}
}

func TestTopKPanicsBeforeFinalize(t *testing.T) {
	ix := New()
	ix.Add(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.TopK([]int{0}, 1, MissingZero)
}

func TestAddPanicsAfterFinalize(t *testing.T) {
	ix := New()
	ix.Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Add(0, 1, 1)
}

func TestAddOverwrites(t *testing.T) {
	ix := New()
	ix.Add(0, 7, 1)
	ix.Add(0, 7, 9)
	ix.Finalize()
	if s, ok := ix.Score(0, 7); !ok || s != 9 {
		t.Fatalf("Score = (%v,%v), want (9,true)", s, ok)
	}
	if len(ix.Postings(0)) != 1 {
		t.Fatalf("duplicate Add created extra posting: %v", ix.Postings(0))
	}
}

func TestPostingsSorted(t *testing.T) {
	ix := New()
	ix.Add(0, 1, 2)
	ix.Add(0, 2, 8)
	ix.Add(0, 3, 5)
	ix.Finalize()
	ps := ix.Postings(0)
	for i := 1; i < len(ps); i++ {
		if ps[i].Score > ps[i-1].Score {
			t.Fatalf("postings unsorted: %v", ps)
		}
	}
	if ix.Terms() != 1 {
		t.Fatalf("Terms = %d", ix.Terms())
	}
}

func TestTopKMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 200; iter++ {
		ix := New()
		nTerms := 1 + rng.Intn(4)
		nDocs := 1 + rng.Intn(30)
		for term := 0; term < nTerms; term++ {
			for doc := 0; doc < nDocs; doc++ {
				if rng.Intn(3) == 0 {
					ix.Add(term, doc, float64(rng.Intn(100))/7)
				}
			}
		}
		ix.Finalize()
		var qterms []int
		for term := 0; term < nTerms; term++ {
			if rng.Intn(2) == 0 {
				qterms = append(qterms, term)
			}
		}
		if len(qterms) == 0 {
			qterms = []int{0}
		}
		k := 1 + rng.Intn(8)
		for _, policy := range []MissingPolicy{MissingExcludes, MissingZero} {
			got := ix.TopK(qterms, k, policy)
			want := ix.TopKNaive(qterms, k, policy)
			if len(got) != len(want) {
				t.Fatalf("iter %d policy %v: TA %v naive %v", iter, policy, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iter %d policy %v: TA %v naive %v", iter, policy, got, want)
				}
			}
		}
	}
}

func TestTopKEarlyTermination(t *testing.T) {
	// TA must not need to scan whole lists when k=1 and one doc dominates.
	ix := New()
	for doc := 0; doc < 1000; doc++ {
		ix.Add(0, doc, float64(1000-doc))
		ix.Add(1, doc, float64(1000-doc))
	}
	ix.Finalize()
	got := ix.TopK([]int{0, 1}, 1, MissingExcludes)
	if len(got) != 1 || got[0].Doc != 0 || got[0].Score != 2000 {
		t.Fatalf("got %+v", got)
	}
}

func BenchmarkTopKTA(b *testing.B) {
	rng := rand.New(rand.NewSource(92))
	ix := New()
	for term := 0; term < 3; term++ {
		for doc := 0; doc < 50000; doc++ {
			if rng.Intn(4) == 0 {
				ix.Add(term, doc, rng.Float64()*100)
			}
		}
	}
	ix.Finalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK([]int{0, 1, 2}, 10, MissingZero)
	}
}
