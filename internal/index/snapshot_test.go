package index

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/geo"
	"stburst/internal/interval"
)

// snapshotTerm resolves test term IDs to deterministic strings.
func snapshotTerm(id int) string { return fmt.Sprintf("term%03d", id) }

// snapshotLookup inverts snapshotTerm over a fixed ID universe.
func snapshotLookup(term string) (int, bool) {
	var id int
	if _, err := fmt.Sscanf(term, "term%03d", &id); err != nil {
		return 0, false
	}
	return id, true
}

func regionalSet() *PatternSet {
	return NewWindowSet(map[int][]core.Window{
		2: {
			{Rect: geo.Rect{MinX: -1.5, MinY: 0, MaxX: 3.25, MaxY: 8}, Streams: []int{0, 2, 5}, Start: 3, End: 9, Score: 12.5},
			{Rect: geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Streams: []int{1}, Start: 0, End: 0, Score: 0.125},
		},
		7: {
			{Rect: geo.Rect{MinX: -10, MinY: -20, MaxX: -5, MaxY: -15}, Streams: []int{3, 4}, Start: 11, End: 30, Score: 77.75},
		},
	})
}

func combSet() *PatternSet {
	return NewCombSet(map[int][]core.CombPattern{
		0: {
			{
				Streams: []int{1, 4}, Start: 5, End: 8, Score: 9.5,
				Intervals: []interval.Interval{
					{Stream: 1, Start: 4, End: 9, Weight: 5.25},
					{Stream: 4, Start: 5, End: 8, Weight: 4.25},
				},
			},
		},
		12: {
			{Streams: []int{0}, Start: 2, End: 2, Score: 1.5,
				Intervals: []interval.Interval{{Stream: 0, Start: 2, End: 2, Weight: 1.5}}},
			{Streams: []int{0, 1, 2}, Start: 6, End: 7, Score: 30,
				Intervals: []interval.Interval{
					{Stream: 0, Start: 6, End: 7, Weight: 10},
					{Stream: 1, Start: 5, End: 7, Weight: 12},
					{Stream: 2, Start: 6, End: 9, Weight: 8},
				}},
		},
	})
}

func temporalSet() *PatternSet {
	return NewTemporalSet(map[int][]burst.Interval{
		1: {{Start: 0, End: 4, Score: 2.5}, {Start: 9, End: 12, Score: 4.75}},
		3: {{Start: 20, End: 21, Score: 0.5}},
		9: {{Start: 7, End: 7, Score: 123.0625}},
	})
}

func allKindSets() map[string]*PatternSet {
	return map[string]*PatternSet{
		"regional":      regionalSet(),
		"combinatorial": combSet(),
		"temporal":      temporalSet(),
	}
}

// TestSnapshotRoundTrip saves and reloads a set of every kind and checks
// the canonical fingerprint survives byte for byte, before and after
// remapping through an identity dictionary.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, set := range allKindSets() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, set, snapshotTerm); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			if got, want := snap.Set.Fingerprint(), set.Fingerprint(); got != want {
				t.Errorf("decoded fingerprint %s, want %s", got, want)
			}
			if got, want := snap.Set.Kind(), set.Kind(); got != want {
				t.Errorf("decoded kind %v, want %v", got, want)
			}
			if got, want := snap.Set.NumPatterns(), set.NumPatterns(); got != want {
				t.Errorf("decoded %d patterns, want %d", got, want)
			}
			for i, id := range set.Terms() {
				if want := snapshotTerm(id); snap.Terms[i] != want {
					t.Errorf("term %d decoded as %q, want %q", id, snap.Terms[i], want)
				}
			}
			remapped, err := snap.Remap(snapshotLookup)
			if err != nil {
				t.Fatalf("Remap: %v", err)
			}
			if got, want := remapped.Fingerprint(), set.Fingerprint(); got != want {
				t.Errorf("remapped fingerprint %s, want %s", got, want)
			}
		})
	}
}

// TestSnapshotRejectsTruncation checks that every proper prefix of a
// valid snapshot fails to load.
func TestSnapshotRejectsTruncation(t *testing.T) {
	for name, set := range allKindSets() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, set, snapshotTerm); err != nil {
				t.Fatal(err)
			}
			full := buf.Bytes()
			for n := 0; n < len(full); n++ {
				if _, err := ReadSnapshot(bytes.NewReader(full[:n])); err == nil {
					t.Fatalf("truncation to %d of %d bytes loaded without error", n, len(full))
				}
			}
		})
	}
}

// TestSnapshotRejectsCorruption flips one byte at a time through a valid
// snapshot of every kind and checks that no altered stream loads: either
// decoding fails outright, or the stream checksum / canonical fingerprint
// verification catches the damage — including flips inside term strings,
// which only the checksum covers.
func TestSnapshotRejectsCorruption(t *testing.T) {
	for name, set := range allKindSets() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, set, snapshotTerm); err != nil {
				t.Fatal(err)
			}
			full := buf.Bytes()
			for i := range full {
				corrupt := bytes.Clone(full)
				corrupt[i] ^= 0xff
				if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
					t.Fatalf("flipping byte %d of %d loaded without error", i, len(full))
				}
			}
		})
	}
}

// TestSnapshotRejectsTrailingData checks extra bytes after the footer are
// rejected.
func TestSnapshotRejectsTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, temporalSet(), snapshotTerm); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0)
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("snapshot with trailing garbage loaded without error")
	}
}

// TestSnapshotRejectsHeaderDamage covers the explicit header checks: bad
// magic, unsupported version, unknown kind.
func TestSnapshotRejectsHeaderDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, temporalSet(), snapshotTerm); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	badMagic := bytes.Clone(full)
	badMagic[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(badMagic)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: got %v, want magic error", err)
	}

	badVersion := bytes.Clone(full)
	badVersion[8] = 99
	if _, err := ReadSnapshot(bytes.NewReader(badVersion)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: got %v, want version error", err)
	}

	badKind := bytes.Clone(full)
	badKind[12] = 42
	if _, err := ReadSnapshot(bytes.NewReader(badKind)); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("bad kind: got %v, want kind error", err)
	}
}

// TestSnapshotRejectsEmptyInput checks the degenerate streams.
func TestSnapshotRejectsEmptyInput(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("empty input loaded without error")
	}
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("junk input loaded without error")
	}
}

// TestSnapshotEmptySet round-trips an index with no patterns at all.
func TestSnapshotEmptySet(t *testing.T) {
	set := NewTemporalSet(map[int][]burst.Interval{})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, set, snapshotTerm); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Set.NumTerms() != 0 || snap.Set.NumPatterns() != 0 {
		t.Errorf("empty set decoded as %d terms / %d patterns", snap.Set.NumTerms(), snap.Set.NumPatterns())
	}
	if got, want := snap.Set.Fingerprint(), set.Fingerprint(); got != want {
		t.Errorf("fingerprint %s, want %s", got, want)
	}
}

// TestSnapshotRemapUnknownTerm checks that a dictionary missing a stored
// term rejects the snapshot instead of silently dropping patterns.
func TestSnapshotRemapUnknownTerm(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, regionalSet(), snapshotTerm); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Remap(func(string) (int, bool) { return 0, false }); err == nil {
		t.Error("remap through an empty dictionary succeeded; want error")
	}
	// Two stored terms colliding on one dictionary ID must also fail.
	if _, err := snap.Remap(func(string) (int, bool) { return 0, true }); err == nil {
		t.Error("remap with colliding IDs succeeded; want error")
	}
}

// TestSnapshotValidate checks the structural-fit validation that guards
// the serving path: stream indices and timestamps must fit the target
// collection's shape.
func TestSnapshotValidate(t *testing.T) {
	cases := []struct {
		name              string
		set               *PatternSet
		streams, timeline int
		ok                bool
	}{
		{"regional fits", regionalSet(), 6, 31, true},
		{"regional too few streams", regionalSet(), 5, 31, false},
		{"regional timeline too short", regionalSet(), 6, 30, false},
		{"comb fits", combSet(), 5, 10, true},
		{"comb interval stream out of range", combSet(), 4, 10, false},
		{"comb interval end out of range", combSet(), 5, 9, false},
		{"temporal fits", temporalSet(), 1, 22, true},
		{"temporal end out of range", temporalSet(), 1, 21, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.set.Validate(tc.streams, tc.timeline)
			if tc.ok && err != nil {
				t.Errorf("Validate(%d, %d) = %v, want nil", tc.streams, tc.timeline, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate(%d, %d) = nil, want error", tc.streams, tc.timeline)
			}
		})
	}
}

// TestSnapshotRemapPermutation remaps into a shuffled dictionary and
// checks patterns land under the right terms.
func TestSnapshotRemapPermutation(t *testing.T) {
	set := regionalSet()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, set, snapshotTerm); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Writer IDs 2 and 7 land on 100+id in the serving dictionary.
	remapped, err := snap.Remap(func(term string) (int, bool) {
		id, ok := snapshotLookup(term)
		return id + 100, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range set.Terms() {
		got := remapped.Windows(id + 100)
		want := set.Windows(id)
		if len(got) != len(want) {
			t.Fatalf("term %d: remapped to %d windows, want %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i].Score != want[i].Score || got[i].Start != want[i].Start {
				t.Errorf("term %d window %d: got %+v, want %+v", id, i, got[i], want[i])
			}
		}
	}
}
