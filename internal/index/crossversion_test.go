package index

import (
	"bytes"
	"testing"
)

// TestSnapshotCrossVersion: the v2 reader accepts a genuine version-1
// stream (no generation field) as generation 0 with identical content,
// and a v2 stream round-trips its generation.
func TestSnapshotCrossVersion(t *testing.T) {
	for _, set := range orderedSets() {
		var v1, v2 bytes.Buffer
		if err := writeSnapshotVersion(&v1, set, snapshotTerm, 0, 1); err != nil {
			t.Fatalf("writing v1 %v snapshot: %v", set.Kind(), err)
		}
		if err := WriteSnapshotGen(&v2, set, snapshotTerm, 42); err != nil {
			t.Fatalf("writing v2 %v snapshot: %v", set.Kind(), err)
		}
		if bytes.Equal(v1.Bytes(), v2.Bytes()) {
			t.Fatal("v1 and v2 streams are identical; the version plumbing is inert")
		}

		legacy, err := ReadSnapshot(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("reading v1 %v snapshot: %v", set.Kind(), err)
		}
		if legacy.Generation != 0 {
			t.Errorf("v1 %v snapshot decoded generation %d, want 0", set.Kind(), legacy.Generation)
		}
		if got, want := legacy.Set.Fingerprint(), set.Fingerprint(); got != want {
			t.Errorf("v1 %v snapshot content fingerprint %s, want %s", set.Kind(), got, want)
		}

		fresh, err := ReadSnapshot(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("reading v2 %v snapshot: %v", set.Kind(), err)
		}
		if fresh.Generation != 42 {
			t.Errorf("v2 %v snapshot decoded generation %d, want 42", set.Kind(), fresh.Generation)
		}
		if got, want := fresh.Set.Fingerprint(), set.Fingerprint(); got != want {
			t.Errorf("v2 %v snapshot content fingerprint %s, want %s", set.Kind(), got, want)
		}
	}
}

// TestBundleCrossVersion: a genuine version-1 bundle — v1 header, v1
// member snapshots — loads through the v2 reader as generation 0 with
// identical members, and the v1 stream is corruption-checked just as
// strictly.
func TestBundleCrossVersion(t *testing.T) {
	sets := orderedSets()
	var v1 bytes.Buffer
	if err := writeBundleVersion(&v1, sets, snapshotTerm, 0, 1); err != nil {
		t.Fatalf("writing v1 bundle: %v", err)
	}
	snaps, gen, err := ReadBundle(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("reading v1 bundle: %v", err)
	}
	if gen != 0 {
		t.Errorf("v1 bundle decoded generation %d, want 0", gen)
	}
	if len(snaps) != len(sets) {
		t.Fatalf("v1 bundle decoded %d members, want %d", len(snaps), len(sets))
	}
	for i, snap := range snaps {
		if got, want := snap.Set.Fingerprint(), sets[i].Fingerprint(); got != want {
			t.Errorf("v1 bundle member %v fingerprint %s, want %s", sets[i].Kind(), got, want)
		}
		if snap.Generation != 0 {
			t.Errorf("v1 bundle member %v carries generation %d", sets[i].Kind(), snap.Generation)
		}
	}

	// ReadStore sniffs and dispatches the legacy stream too.
	snaps, gen, err = ReadStore(bytes.NewReader(v1.Bytes()))
	if err != nil || len(snaps) != len(sets) || gen != 0 {
		t.Fatalf("ReadStore(v1 bundle) = %d members, gen %d, %v", len(snaps), gen, err)
	}

	// Every flipped byte of the v1 stream is still caught.
	full := v1.Bytes()
	for _, i := range []int{8, 20, len(full) / 2, len(full) - 1} {
		corrupt := bytes.Clone(full)
		corrupt[i] ^= 0xff
		if _, _, err := ReadBundle(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("v1 bundle with byte %d flipped loaded without error", i)
		}
	}
}

// TestBundleGenerationCovered: the v2 generation field is under the
// stream checksum — a flipped generation byte cannot smuggle a stale
// cache-busting token past the reader.
func TestBundleGenerationCovered(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, []*PatternSet{temporalSet()}, snapshotTerm, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// The generation sits at offset 16 (magic 8 + version 4 + count 4).
	for off := 16; off < 24; off++ {
		corrupt := bytes.Clone(full)
		corrupt[off] ^= 0xff
		if _, _, err := ReadBundle(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("flipped generation byte %d loaded without error", off)
		}
	}
}
