package index

import (
	"testing"

	"stburst/internal/burst"
	"stburst/internal/core"
	"stburst/internal/geo"
	"stburst/internal/interval"
)

func windowFixture() map[int][]core.Window {
	return map[int][]core.Window{
		3: {{Rect: geo.Rect{MaxX: 2, MaxY: 2}, Streams: []int{0, 1}, Start: 1, End: 4, Score: 2.5}},
		1: {
			{Rect: geo.Rect{MaxX: 1, MaxY: 1}, Streams: []int{0}, Start: 0, End: 2, Score: 1.5},
			{Rect: geo.Rect{MinX: 3, MaxX: 5, MaxY: 1}, Streams: []int{2}, Start: 5, End: 6, Score: 0.5},
		},
	}
}

func TestPatternSetAccessors(t *testing.T) {
	s := NewWindowSet(windowFixture())
	if s.Kind() != KindRegional || s.Kind().String() != "regional" {
		t.Fatalf("kind: %v", s.Kind())
	}
	if got := s.Terms(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("terms should be ascending: %v", got)
	}
	if s.NumTerms() != 2 || s.NumPatterns() != 3 {
		t.Fatalf("counts: %d terms, %d patterns", s.NumTerms(), s.NumPatterns())
	}
	if len(s.Windows(1)) != 2 || len(s.Windows(3)) != 1 || s.Windows(99) != nil {
		t.Fatal("window lookup")
	}
	if s.Combs(1) != nil || s.Temporal(1) != nil {
		t.Fatal("wrong-kind accessors must return nil")
	}
	if s.AllWindows() == nil || s.AllCombs() != nil || s.AllTemporal() != nil {
		t.Fatal("All* accessors")
	}
}

func TestPatternSetKinds(t *testing.T) {
	cs := NewCombSet(map[int][]core.CombPattern{
		2: {{Streams: []int{0, 1}, Start: 1, End: 2, Score: 0.9,
			Intervals: []interval.Interval{{Start: 0, End: 2, Weight: 0.5, Stream: 0}, {Start: 1, End: 3, Weight: 0.4, Stream: 1}}}},
	})
	if cs.Kind() != KindCombinatorial || cs.NumPatterns() != 1 || len(cs.Combs(2)) != 1 {
		t.Fatalf("comb set: %+v", cs)
	}
	ts := NewTemporalSet(map[int][]burst.Interval{
		5: {{Start: 2, End: 4, Score: 0.7}},
		6: {{Start: 0, End: 1, Score: 0.2}, {Start: 3, End: 3, Score: 0.1}},
	})
	if ts.Kind() != KindTemporal || ts.NumPatterns() != 3 || len(ts.Temporal(6)) != 2 {
		t.Fatalf("temporal set: %+v", ts)
	}
	if KindTemporal.String() != "temporal" || PatternKind(42).String() != "unknown" {
		t.Fatal("kind strings")
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	a := NewWindowSet(windowFixture())
	b := NewWindowSet(windowFixture())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical content must fingerprint equally")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint must be stable across calls")
	}
	// Any field perturbation must change the digest.
	perturbations := []func(m map[int][]core.Window){
		func(m map[int][]core.Window) { m[1][0].Score += 1e-12 },
		func(m map[int][]core.Window) { m[1][0].Start++ },
		func(m map[int][]core.Window) { m[1][0].Rect.MaxX += 0.5 },
		func(m map[int][]core.Window) { m[1][0].Streams = []int{1} },
		func(m map[int][]core.Window) { m[7] = m[3]; delete(m, 3) },
		func(m map[int][]core.Window) { m[1] = m[1][:1] },
	}
	for i, perturb := range perturbations {
		m := windowFixture()
		perturb(m)
		if NewWindowSet(m).Fingerprint() == a.Fingerprint() {
			t.Fatalf("perturbation %d did not change the fingerprint", i)
		}
	}
	// Kind participates in the digest: an empty window set and an empty
	// temporal set must differ.
	ew := NewWindowSet(nil)
	et := NewTemporalSet(nil)
	if ew.Fingerprint() == et.Fingerprint() {
		t.Fatal("kind must be part of the fingerprint")
	}
}
