package index

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"
)

// orderedSets returns one set of each kind in the canonical bundle
// member order.
func orderedSets() []*PatternSet {
	return []*PatternSet{regionalSet(), combSet(), temporalSet()}
}

// writeBundleBytes serializes the sets and returns the raw bundle.
func writeBundleBytes(t *testing.T, sets []*PatternSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBundle(&buf, sets, snapshotTerm, 7); err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	return buf.Bytes()
}

// TestBundleRoundTrip writes bundles of every member count and checks
// each member decodes to its exact fingerprint, kind and term strings.
func TestBundleRoundTrip(t *testing.T) {
	all := orderedSets()
	for _, sets := range [][]*PatternSet{
		all,
		{all[0]},
		{all[0], all[2]},
		{all[1], all[2]},
	} {
		full := writeBundleBytes(t, sets)
		snaps, gen, err := ReadBundle(bytes.NewReader(full))
		if err != nil {
			t.Fatalf("ReadBundle(%d members): %v", len(sets), err)
		}
		if gen != 7 {
			t.Errorf("decoded generation %d, want the written 7", gen)
		}
		if len(snaps) != len(sets) {
			t.Fatalf("decoded %d members, want %d", len(snaps), len(sets))
		}
		for i, snap := range snaps {
			if got, want := snap.Set.Kind(), sets[i].Kind(); got != want {
				t.Errorf("member %d kind %v, want %v", i, got, want)
			}
			if got, want := snap.Set.Fingerprint(), sets[i].Fingerprint(); got != want {
				t.Errorf("member %d fingerprint %s, want %s", i, got, want)
			}
			for j, id := range sets[i].Terms() {
				if want := snapshotTerm(id); snap.Terms[j] != want {
					t.Errorf("member %d term %d decoded as %q, want %q", i, id, snap.Terms[j], want)
				}
			}
		}
	}
}

// TestBundleWriteValidation: empty input, too many members, duplicate or
// out-of-order kinds are writer-side errors.
func TestBundleWriteValidation(t *testing.T) {
	all := orderedSets()
	var buf bytes.Buffer
	if err := WriteBundle(&buf, nil, snapshotTerm, 0); err == nil {
		t.Error("WriteBundle accepted zero members")
	}
	if err := WriteBundle(&buf, []*PatternSet{all[0], all[1], all[2], all[0]}, snapshotTerm, 0); err == nil {
		t.Error("WriteBundle accepted four members")
	}
	if err := WriteBundle(&buf, []*PatternSet{all[0], all[0]}, snapshotTerm, 0); err == nil {
		t.Error("WriteBundle accepted duplicate kinds")
	}
	if err := WriteBundle(&buf, []*PatternSet{all[2], all[0]}, snapshotTerm, 0); err == nil {
		t.Error("WriteBundle accepted out-of-order kinds")
	}
}

// TestBundleRejectsTruncation checks that every proper prefix of a valid
// bundle fails to load.
func TestBundleRejectsTruncation(t *testing.T) {
	full := writeBundleBytes(t, orderedSets())
	for n := 0; n < len(full); n++ {
		if _, _, err := ReadBundle(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded without error", n, len(full))
		}
	}
}

// TestBundleRejectsCorruption flips one byte at a time through a valid
// bundle — header, manifest, member payloads and footer — and checks no
// altered stream loads.
func TestBundleRejectsCorruption(t *testing.T) {
	full := writeBundleBytes(t, orderedSets())
	for i := range full {
		corrupt := bytes.Clone(full)
		corrupt[i] ^= 0xff
		if _, _, err := ReadBundle(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("flipping byte %d of %d loaded without error", i, len(full))
		}
	}
}

// TestBundleRejectsManifestFingerprintMismatch: a bundle whose manifest
// fingerprint disagrees with its (self-consistent) member is rejected by
// the manifest check itself — the attack the overall checksum cannot
// catch, because here the checksum is recomputed to match the tampered
// manifest.
func TestBundleRejectsManifestFingerprintMismatch(t *testing.T) {
	full := writeBundleBytes(t, []*PatternSet{temporalSet()})
	tampered := bytes.Clone(full)
	// Manifest entry starts at 24 (magic 8 + version 4 + count 4 +
	// generation 8); its fingerprint at +12. Flip a fingerprint byte,
	// then recompute the trailing checksum so only the manifest check
	// can object.
	tampered[24+12] ^= 0xff
	payload := tampered[:len(tampered)-sha256.Size]
	sum := sha256.Sum256(payload)
	copy(tampered[len(tampered)-sha256.Size:], sum[:])

	_, _, err := ReadBundle(bytes.NewReader(tampered))
	if err == nil {
		t.Fatal("bundle with mismatched manifest fingerprint loaded without error")
	}
	if !strings.Contains(err.Error(), "manifest") {
		t.Errorf("error %v does not name the manifest mismatch", err)
	}
}

// TestBundleRejectsTrailingData checks extra bytes after the checksum
// footer are rejected.
func TestBundleRejectsTrailingData(t *testing.T) {
	full := writeBundleBytes(t, orderedSets())
	if _, _, err := ReadBundle(bytes.NewReader(append(bytes.Clone(full), 0))); err == nil {
		t.Fatal("bundle with trailing garbage loaded without error")
	}
}

// TestBundleRejectsHeaderDamage covers the explicit header checks.
func TestBundleRejectsHeaderDamage(t *testing.T) {
	full := writeBundleBytes(t, orderedSets())

	badMagic := bytes.Clone(full)
	badMagic[0] = 'X'
	if _, _, err := ReadBundle(bytes.NewReader(badMagic)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: got %v, want magic error", err)
	}

	badVersion := bytes.Clone(full)
	badVersion[8] = 99
	if _, _, err := ReadBundle(bytes.NewReader(badVersion)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: got %v, want version error", err)
	}

	badCount := bytes.Clone(full)
	badCount[12] = 200
	if _, _, err := ReadBundle(bytes.NewReader(badCount)); err == nil || !strings.Contains(err.Error(), "count") {
		t.Errorf("bad count: got %v, want count error", err)
	}
}

// TestReadStoreDispatch: ReadStore accepts both a bundle and a bare
// snapshot, and rejects junk.
func TestReadStoreDispatch(t *testing.T) {
	bundle := writeBundleBytes(t, orderedSets())
	snaps, gen, err := ReadStore(bytes.NewReader(bundle))
	if err != nil || len(snaps) != 3 {
		t.Fatalf("ReadStore(bundle) = %d members, %v; want 3, nil", len(snaps), err)
	}
	if gen != 7 {
		t.Errorf("ReadStore(bundle) generation = %d, want the written 7", gen)
	}

	var buf bytes.Buffer
	if err := WriteSnapshotGen(&buf, regionalSet(), snapshotTerm, 3); err != nil {
		t.Fatal(err)
	}
	snaps, gen, err = ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("ReadStore(snapshot) = %d members, %v; want 1, nil", len(snaps), err)
	}
	if snaps[0].Set.Kind() != KindRegional {
		t.Errorf("snapshot dispatch decoded kind %v", snaps[0].Set.Kind())
	}
	if gen != 3 {
		t.Errorf("ReadStore(snapshot) generation = %d, want the snapshot's own 3", gen)
	}

	for _, junk := range []string{"", "tiny", "neither a snapshot nor a bundle"} {
		if _, _, err := ReadStore(strings.NewReader(junk)); err == nil {
			t.Errorf("ReadStore accepted %q", junk)
		}
	}
}
