package index

import (
	"sort"
)

// Posting is one document's entry in a term's posting list.
type Posting struct {
	Doc   int
	Score float64
}

// Result is one document in a top-k answer.
type Result struct {
	Doc   int
	Score float64
}

// MissingPolicy controls how a document absent from some query term's
// posting list contributes to the aggregate of Eq. 10.
type MissingPolicy int

const (
	// MissingExcludes drops documents that are absent from any query
	// term's list — the strict reading of Eq. 10/11, where burstiness is
	// -inf without a pattern overlap.
	MissingExcludes MissingPolicy = iota
	// MissingZero scores absent terms as zero, ranking documents that
	// match a subset of the query below full matches but keeping them.
	MissingZero
)

// Index is an inverted index over per-term document scores.
type Index struct {
	postings  map[int][]Posting
	random    map[int]map[int]float64
	finalized bool
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[int][]Posting),
		random:   make(map[int]map[int]float64),
	}
}

// Add records the score of doc for term. Scores must be non-negative:
// the Threshold Algorithm's early-termination bound relies on posting
// scores never increasing the aggregate of a document a list omits.
// Adding the same (term, doc) pair twice overwrites the previous score.
// Add must not be called after Finalize.
func (ix *Index) Add(term, doc int, score float64) {
	if ix.finalized {
		panic("index: Add after Finalize")
	}
	m, ok := ix.random[term]
	if !ok {
		m = make(map[int]float64)
		ix.random[term] = m
	}
	if _, dup := m[doc]; !dup {
		ix.postings[term] = append(ix.postings[term], Posting{Doc: doc})
	}
	m[doc] = score
}

// Finalize sorts every posting list by descending score (ties by doc ID)
// and freezes the index. It must be called before querying.
func (ix *Index) Finalize() {
	for term, list := range ix.postings {
		m := ix.random[term]
		for i := range list {
			list[i].Score = m[list[i].Doc]
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Score != list[j].Score {
				return list[i].Score > list[j].Score
			}
			return list[i].Doc < list[j].Doc
		})
		ix.postings[term] = list
	}
	ix.finalized = true
}

// Terms returns the number of terms with at least one posting.
func (ix *Index) Terms() int { return len(ix.postings) }

// Postings returns the (finalized) posting list of a term; nil when the
// term is unknown.
func (ix *Index) Postings(term int) []Posting { return ix.postings[term] }

// Score returns the per-term score of doc and whether it is present.
func (ix *Index) Score(term, doc int) (float64, bool) {
	s, ok := ix.random[term][doc]
	return s, ok
}

// CandidateBound returns an upper bound on the number of distinct
// documents a MissingExcludes query over terms can ever return: every
// hit must appear in each query term's posting list, so the shortest
// list bounds the result set (and a term with no postings zeroes it).
// The search layer uses it to size retrieval fetches and to answer
// pages offset past the last possible hit without fetching at all.
func (ix *Index) CandidateBound(terms []int) int {
	if len(terms) == 0 {
		return 0
	}
	bound := len(ix.postings[terms[0]])
	for _, t := range terms[1:] {
		if n := len(ix.postings[t]); n < bound {
			bound = n
		}
	}
	return bound
}

// TopK answers a multi-term top-k query with the Threshold Algorithm:
// round-robin sorted access over the query terms' posting lists, random
// access to complete each newly seen document's aggregate, and
// termination once the k-th best aggregate reaches the threshold (the sum
// of the scores at the current sorted-access frontier). Results are
// sorted by descending aggregate score, ties by doc ID. It panics if the
// index was not finalized.
func (ix *Index) TopK(terms []int, k int, policy MissingPolicy) []Result {
	if !ix.finalized {
		panic("index: TopK before Finalize")
	}
	if k <= 0 {
		return nil
	}
	lists := make([][]Posting, 0, len(terms))
	qterms := make([]int, 0, len(terms))
	for _, t := range terms {
		l := ix.postings[t]
		if len(l) == 0 {
			if policy == MissingExcludes {
				return nil // no document can match every term
			}
			continue
		}
		lists = append(lists, l)
		qterms = append(qterms, t)
	}
	if len(lists) == 0 {
		return nil
	}

	type cand struct {
		doc   int
		score float64
	}
	seen := make(map[int]bool)
	var top []cand // maintained sorted descending, at most k entries
	insert := func(c cand) {
		pos := sort.Search(len(top), func(i int) bool {
			if top[i].score != c.score {
				return top[i].score < c.score
			}
			return top[i].doc > c.doc
		})
		if pos >= k {
			return
		}
		top = append(top, cand{})
		copy(top[pos+1:], top[pos:])
		top[pos] = c
		if len(top) > k {
			top = top[:k]
		}
	}
	aggregate := func(doc int) (float64, bool) {
		var sum float64
		for _, t := range qterms {
			s, ok := ix.random[t][doc]
			if !ok {
				if policy == MissingExcludes {
					return 0, false
				}
				continue
			}
			sum += s
		}
		return sum, true
	}

	depth := 0
	frontier := make([]float64, len(lists))
	for {
		exhausted := true
		for li, l := range lists {
			if depth >= len(l) {
				// Frontier stays at the last (smallest) score.
				continue
			}
			exhausted = false
			p := l[depth]
			frontier[li] = p.Score
			if !seen[p.Doc] {
				seen[p.Doc] = true
				if s, ok := aggregate(p.Doc); ok {
					insert(cand{doc: p.Doc, score: s})
				}
			}
		}
		if exhausted {
			break
		}
		depth++
		// Threshold: the aggregate of the last score seen under sorted
		// access in each list. Any unseen document scores at most the
		// frontier in every list (scores are required to be
		// non-negative), so once the k-th best reaches the threshold no
		// unseen document can displace it.
		var threshold float64
		for _, f := range frontier {
			threshold += f
		}
		if len(top) == k && top[k-1].score >= threshold {
			break
		}
	}
	out := make([]Result, len(top))
	for i, c := range top {
		out[i] = Result{Doc: c.doc, Score: c.score}
	}
	return out
}

// TopKNaive answers the same query by exhaustively scoring every
// candidate document. It is the testing oracle for TopK.
func (ix *Index) TopKNaive(terms []int, k int, policy MissingPolicy) []Result {
	if k <= 0 {
		return nil
	}
	docs := make(map[int]bool)
	for _, t := range terms {
		for _, p := range ix.postings[t] {
			docs[p.Doc] = true
		}
	}
	var out []Result
	for doc := range docs {
		var sum float64
		ok := true
		for _, t := range terms {
			s, present := ix.random[t][doc]
			if !present {
				if policy == MissingExcludes {
					ok = false
					break
				}
				continue
			}
			sum += s
		}
		if ok {
			out = append(out, Result{Doc: doc, Score: sum})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if len(out) > k {
		out = out[:k]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
