package index

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCorpusFingerprint is a syntactically valid hex SHA-256 standing in
// for a real Collection checksum.
var testCorpusFingerprint = strings.Repeat("ab", 32)

func TestTermShardDeterministicAndInRange(t *testing.T) {
	terms := []string{"earthquake", "rescue", "flood", "term000", "a", "", "übergang"}
	for _, shards := range []int{1, 2, 3, 4, 7} {
		for _, term := range terms {
			got := TermShard(term, shards)
			if got < 0 || got >= shards {
				t.Fatalf("TermShard(%q, %d) = %d, outside [0, %d)", term, shards, got, shards)
			}
			if again := TermShard(term, shards); again != got {
				t.Fatalf("TermShard(%q, %d) not deterministic: %d then %d", term, shards, got, again)
			}
		}
	}
	for _, term := range terms {
		if got := TermShard(term, 1); got != 0 {
			t.Errorf("TermShard(%q, 1) = %d, want 0", term, got)
		}
	}
	// The partition must spread a real vocabulary: over 64 distinct terms
	// and 2 shards, both shards must own something.
	owned := map[int]bool{}
	for i := 0; i < 64; i++ {
		owned[TermShard(snapshotTerm(i), 2)] = true
	}
	if len(owned) != 2 {
		t.Errorf("TermShard sent 64 terms to a single shard of 2")
	}
}

// TestSplitSetsPartition splits all three kinds and checks the result is
// a true partition: every term lands on exactly the shard TermShard
// names, nothing is lost, nothing is duplicated, and every shard keeps
// one member per kind in ascending kind order.
func TestSplitSetsPartition(t *testing.T) {
	sets := []*PatternSet{regionalSet(), combSet(), temporalSet()}
	const shards = 3
	parts, err := SplitSets(sets, snapshotTerm, shards)
	if err != nil {
		t.Fatalf("SplitSets: %v", err)
	}
	if len(parts) != shards {
		t.Fatalf("SplitSets returned %d shards, want %d", len(parts), shards)
	}
	for si, part := range parts {
		if len(part) != len(sets) {
			t.Fatalf("shard %d holds %d member sets, want %d", si, len(part), len(sets))
		}
		for ki, s := range part {
			if s.Kind() != sets[ki].Kind() {
				t.Fatalf("shard %d member %d has kind %v, want %v", si, ki, s.Kind(), sets[ki].Kind())
			}
			for _, id := range s.Terms() {
				if want := TermShard(snapshotTerm(id), shards); want != si {
					t.Errorf("term %d (kind %v) landed on shard %d, TermShard says %d", id, s.Kind(), si, want)
				}
			}
		}
	}
	for ki, orig := range sets {
		totalTerms, totalPatterns := 0, 0
		for _, part := range parts {
			totalTerms += part[ki].NumTerms()
			totalPatterns += part[ki].NumPatterns()
		}
		if totalTerms != orig.NumTerms() || totalPatterns != orig.NumPatterns() {
			t.Errorf("kind %v: shards hold %d terms / %d patterns, original has %d / %d",
				orig.Kind(), totalTerms, totalPatterns, orig.NumTerms(), orig.NumPatterns())
		}
	}
	if _, err := SplitSets(sets, snapshotTerm, 0); err == nil {
		t.Error("SplitSets accepted 0 shards")
	}
}

func TestShardBundleRoundTrip(t *testing.T) {
	sets := []*PatternSet{regionalSet(), combSet(), temporalSet()}
	info := ShardInfo{Shard: 1, Shards: 3, Scheme: ShardScheme, CorpusFingerprint: testCorpusFingerprint}
	var buf bytes.Buffer
	if err := WriteBundleSharded(&buf, sets, snapshotTerm, 42, info); err != nil {
		t.Fatalf("WriteBundleSharded: %v", err)
	}

	snaps, gen, got, err := ReadBundleShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBundleShard: %v", err)
	}
	if gen != 42 {
		t.Errorf("generation = %d, want 42", gen)
	}
	if got != info {
		t.Errorf("ShardInfo = %+v, want %+v", got, info)
	}
	if len(snaps) != len(sets) {
		t.Fatalf("decoded %d members, want %d", len(snaps), len(sets))
	}
	for i, snap := range snaps {
		if snap.Set.Fingerprint() != sets[i].Fingerprint() {
			t.Errorf("member %d fingerprint changed across the round trip", i)
		}
	}

	// The shard-blind wrapper and the magic-sniffing store reader must
	// both accept the same stream.
	if _, gen2, err := ReadBundle(bytes.NewReader(buf.Bytes())); err != nil || gen2 != 42 {
		t.Errorf("ReadBundle on a v3 stream = gen %d, %v; want 42, nil", gen2, err)
	}
	if _, _, si, err := ReadStoreShard(bytes.NewReader(buf.Bytes())); err != nil || si != info {
		t.Errorf("ReadStoreShard = %+v, %v; want %+v, nil", si, err, info)
	}
}

// TestShardBundleEmptyMember checks a shard that owns no terms of a kind
// still round-trips: SplitSets always emits all kinds, so small shards
// routinely carry empty members.
func TestShardBundleEmptyMember(t *testing.T) {
	sets := []*PatternSet{NewWindowSet(nil), temporalSet()}
	info := ShardInfo{Shard: 0, Shards: 2, Scheme: ShardScheme}
	var buf bytes.Buffer
	if err := WriteBundleSharded(&buf, sets, snapshotTerm, 0, info); err != nil {
		t.Fatalf("WriteBundleSharded with empty member: %v", err)
	}
	snaps, _, got, err := ReadBundleShard(&buf)
	if err != nil {
		t.Fatalf("ReadBundleShard: %v", err)
	}
	if got != info {
		t.Errorf("ShardInfo = %+v, want %+v", got, info)
	}
	if snaps[0].Set.NumTerms() != 0 || snaps[1].Set.NumPatterns() == 0 {
		t.Errorf("empty/non-empty member shape lost: %d terms, %d patterns",
			snaps[0].Set.NumTerms(), snaps[1].Set.NumPatterns())
	}
}

func TestUnshardedBundleReadsAsWholePartition(t *testing.T) {
	sets := []*PatternSet{regionalSet()}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, sets, snapshotTerm, 7); err != nil {
		t.Fatal(err)
	}
	_, _, si, err := ReadBundleShard(&buf)
	if err != nil {
		t.Fatalf("ReadBundleShard on v2: %v", err)
	}
	if want := (ShardInfo{Shards: 1}); si != want {
		t.Errorf("v2 bundle ShardInfo = %+v, want %+v", si, want)
	}

	var snap bytes.Buffer
	if err := WriteSnapshotGen(&snap, temporalSet(), snapshotTerm, 3); err != nil {
		t.Fatal(err)
	}
	_, gen, si, err := ReadStoreShard(&snap)
	if err != nil {
		t.Fatalf("ReadStoreShard on bare snapshot: %v", err)
	}
	if gen != 3 || si != (ShardInfo{Shards: 1}) {
		t.Errorf("bare snapshot = gen %d, %+v; want 3, {Shards:1}", gen, si)
	}
}

func TestWriteBundleShardedRejectsBadInfo(t *testing.T) {
	sets := []*PatternSet{regionalSet()}
	cases := map[string]ShardInfo{
		"zero shards":       {Shard: 0, Shards: 0},
		"negative shard":    {Shard: -1, Shards: 2, Scheme: ShardScheme},
		"shard past count":  {Shard: 2, Shards: 2, Scheme: ShardScheme},
		"missing scheme":    {Shard: 0, Shards: 2},
		"oversized scheme":  {Shard: 0, Shards: 2, Scheme: strings.Repeat("x", maxShardSchemeLen+1)},
		"bad fingerprint":   {Shard: 0, Shards: 2, Scheme: ShardScheme, CorpusFingerprint: "not-hex"},
		"short fingerprint": {Shard: 0, Shards: 2, Scheme: ShardScheme, CorpusFingerprint: "abcd"},
	}
	for name, info := range cases {
		var buf bytes.Buffer
		if err := WriteBundleSharded(&buf, sets, snapshotTerm, 0, info); err == nil {
			t.Errorf("WriteBundleSharded accepted %s (%+v)", name, info)
		}
	}
}

// TestShardBundleRejectsCorruption flips every byte of a v3 stream in
// turn; the trailing checksum (which now also covers the shard block)
// must catch each one.
func TestShardBundleRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	info := ShardInfo{Shard: 2, Shards: 3, Scheme: ShardScheme, CorpusFingerprint: testCorpusFingerprint}
	if err := WriteBundleSharded(&buf, []*PatternSet{regionalSet(), temporalSet()}, snapshotTerm, 9, info); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := range good {
		bad := bytes.Clone(good)
		bad[i] ^= 0x01
		if _, _, _, err := ReadBundleShard(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d of %d accepted", i, len(good))
		}
	}
	// Truncation at any point must also fail.
	for _, cut := range []int{0, 8, 16, 24, 30, len(good) / 2, len(good) - 1} {
		if _, _, _, err := ReadBundleShard(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestWriteBundleShardedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.bundle")
	info := ShardInfo{Shard: 0, Shards: 2, Scheme: ShardScheme, CorpusFingerprint: testCorpusFingerprint}
	if err := WriteBundleShardedFile(path, []*PatternSet{combSet()}, snapshotTerm, 5, info); err != nil {
		t.Fatalf("WriteBundleShardedFile: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("bundle file mode = %v, want 0644", fi.Mode().Perm())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, gen, si, err := ReadStoreShard(f)
	if err != nil {
		t.Fatalf("ReadStoreShard: %v", err)
	}
	if gen != 5 || si != info {
		t.Errorf("file round trip = gen %d, %+v; want 5, %+v", gen, si, info)
	}
}
