package index

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"stburst/internal/burst"
	"stburst/internal/core"
)

// PatternKind identifies which miner produced the patterns in a
// PatternSet.
type PatternKind int

const (
	// KindRegional holds STLocal windows.
	KindRegional PatternKind = iota
	// KindCombinatorial holds STComb patterns.
	KindCombinatorial
	// KindTemporal holds merged-stream temporal bursty intervals.
	KindTemporal
)

// String returns the kind's name.
func (k PatternKind) String() string {
	switch k {
	case KindRegional:
		return "regional"
	case KindCombinatorial:
		return "combinatorial"
	case KindTemporal:
		return "temporal"
	}
	return "unknown"
}

// PatternSet is a cached, query-ready store of corpus-wide mined patterns
// keyed by interned term ID. It is immutable after construction and
// therefore safe for concurrent use by any number of goroutines: the
// search layer consults it on every engine build instead of re-mining,
// and readers may look terms up while other readers iterate.
//
// Exactly one of the three pattern maps is populated, according to Kind.
type PatternSet struct {
	kind     PatternKind
	windows  map[int][]core.Window
	combs    map[int][]core.CombPattern
	temporal map[int][]burst.Interval
	terms    []int // term IDs with at least one pattern, ascending
	patterns int   // total number of stored patterns
}

// NewWindowSet wraps per-term STLocal windows. The map is adopted, not
// copied; the caller must not mutate it afterwards.
func NewWindowSet(byTerm map[int][]core.Window) *PatternSet {
	s := &PatternSet{kind: KindRegional, windows: byTerm}
	for t, ws := range byTerm {
		s.terms = append(s.terms, t)
		s.patterns += len(ws)
	}
	sort.Ints(s.terms)
	return s
}

// NewCombSet wraps per-term STComb patterns. The map is adopted, not
// copied; the caller must not mutate it afterwards.
func NewCombSet(byTerm map[int][]core.CombPattern) *PatternSet {
	s := &PatternSet{kind: KindCombinatorial, combs: byTerm}
	for t, ps := range byTerm {
		s.terms = append(s.terms, t)
		s.patterns += len(ps)
	}
	sort.Ints(s.terms)
	return s
}

// NewTemporalSet wraps per-term temporal bursty intervals. The map is
// adopted, not copied; the caller must not mutate it afterwards.
func NewTemporalSet(byTerm map[int][]burst.Interval) *PatternSet {
	s := &PatternSet{kind: KindTemporal, temporal: byTerm}
	for t, ivs := range byTerm {
		s.terms = append(s.terms, t)
		s.patterns += len(ivs)
	}
	sort.Ints(s.terms)
	return s
}

// Kind returns which miner produced the set.
func (s *PatternSet) Kind() PatternKind { return s.kind }

// Terms returns the term IDs holding at least one pattern, in ascending
// order. The slice is shared; callers must not mutate it.
func (s *PatternSet) Terms() []int { return s.terms }

// NumTerms returns the number of terms with at least one pattern.
func (s *PatternSet) NumTerms() int { return len(s.terms) }

// NumPatterns returns the total number of stored patterns.
func (s *PatternSet) NumPatterns() int { return s.patterns }

// Windows returns the stored STLocal windows of a term (nil when the term
// has none or the set holds a different kind).
func (s *PatternSet) Windows(term int) []core.Window { return s.windows[term] }

// Combs returns the stored STComb patterns of a term (nil when the term
// has none or the set holds a different kind).
func (s *PatternSet) Combs(term int) []core.CombPattern { return s.combs[term] }

// Temporal returns the stored temporal intervals of a term (nil when the
// term has none or the set holds a different kind).
func (s *PatternSet) Temporal(term int) []burst.Interval { return s.temporal[term] }

// AllWindows returns the full per-term window map (nil for other kinds).
// The map is shared; callers must not mutate it.
func (s *PatternSet) AllWindows() map[int][]core.Window { return s.windows }

// AllCombs returns the full per-term pattern map (nil for other kinds).
// The map is shared; callers must not mutate it.
func (s *PatternSet) AllCombs() map[int][]core.CombPattern { return s.combs }

// AllTemporal returns the full per-term interval map (nil for other
// kinds). The map is shared; callers must not mutate it.
func (s *PatternSet) AllTemporal() map[int][]burst.Interval { return s.temporal }

// Fingerprint returns a hex SHA-256 digest over a canonical serialization
// of the whole set: terms in ascending order, patterns in stored order,
// every coordinate and score encoded by its exact bit pattern. Two sets
// fingerprint equally iff their contents are identical, so the determinism
// suite can assert byte-identical mining output across worker counts and
// repeated runs with a single comparison.
func (s *PatternSet) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wInt(int(s.kind))
	for _, t := range s.terms {
		wInt(t)
		switch s.kind {
		case KindRegional:
			ws := s.windows[t]
			wInt(len(ws))
			for _, w := range ws {
				wFloat(w.Rect.MinX)
				wFloat(w.Rect.MinY)
				wFloat(w.Rect.MaxX)
				wFloat(w.Rect.MaxY)
				wInt(len(w.Streams))
				for _, x := range w.Streams {
					wInt(x)
				}
				wInt(w.Start)
				wInt(w.End)
				wFloat(w.Score)
			}
		case KindCombinatorial:
			ps := s.combs[t]
			wInt(len(ps))
			for _, p := range ps {
				wInt(len(p.Streams))
				for _, x := range p.Streams {
					wInt(x)
				}
				wInt(p.Start)
				wInt(p.End)
				wFloat(p.Score)
				wInt(len(p.Intervals))
				for _, iv := range p.Intervals {
					wInt(iv.Stream)
					wInt(iv.Start)
					wInt(iv.End)
					wFloat(iv.Weight)
				}
			}
		case KindTemporal:
			ivs := s.temporal[t]
			wInt(len(ivs))
			for _, iv := range ivs {
				wInt(iv.Start)
				wInt(iv.End)
				wFloat(iv.Score)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
