// Package index holds the query-side data structures of the system: the
// inverted index with Threshold Algorithm top-k retrieval, the immutable
// corpus-wide pattern store, and the versioned snapshot codec that
// persists it.
//
// # Inverted index and the Threshold Algorithm
//
// Index maps each term to a posting list sorted by per-term document
// score. Multi-term top-k queries are answered by the Threshold Algorithm
// of Fagin, Lotem and Naor (PODS'01 — reference [6] of the paper) with
// sorted and random access and early termination on the threshold, as the
// bursty-document search engine of §5 requires. Build with Add + Finalize,
// query with TopK; TopKNaive is the exhaustive testing oracle.
//
// # Pattern store
//
// PatternSet is the immutable store behind stburst.PatternIndex: the
// per-term output of one corpus-wide miner (regional STLocal windows,
// combinatorial STComb patterns, or merged-stream temporal intervals),
// keyed by interned term ID. It is safe for unlimited concurrent readers
// and exposes Fingerprint, a canonical SHA-256 digest over the full
// content used by the determinism suite and the snapshot codec.
//
// # Snapshots
//
// WriteSnapshot and ReadSnapshot serialize a PatternSet together with its
// term strings into a versioned binary format guarded by two digests: a
// stream checksum over every encoded byte, and the canonical fingerprint
// proving the decoded patterns are bit-identical to the mined set.
// Snapshot.Remap re-interns the patterns into a serving collection's
// dictionary, completing the mine-once/serve-many pipeline
// (stmine -all -o → stserve). The byte layout is specified in DESIGN.md.
package index
