package index

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Bundle binary format (".bundle", little-endian throughout):
//
//	magic      [8]byte  "STBBNDL\x00"
//	version    uint32   2 (whole-vocabulary) or 3 (shard of a partition)
//	count      uint32   number of member snapshots (1..3)
//	generation uint64   store generation the bundle was saved at
//	                    (version ≥ 2 only; a version-1 stream has no
//	                    generation field and reads as generation 0)
//	shard block (version ≥ 3 only):
//	  shard       uint32   this bundle's shard index, in [0, shards)
//	  shards      uint32   total shard count of the partition (≥ 1)
//	  scheme      uint32 length + that many bytes, the partition-scheme
//	              tag (ShardScheme; ≤ 64 bytes)
//	  corpusfp    [32]byte raw SHA-256 of the mined corpus (all zero
//	              when unrecorded)
//	subscriptions block (version ≥ 4 only; version 4 always carries the
//	shard block too, degenerate shard 0 of 1 for an unsharded store):
//	  nsubs       uint32   number of persisted standing queries
//	  then, per subscription: uint32 length + that many bytes, an opaque
//	  JSON blob the store layer owns (the codec never interprets it)
//	then, for each member, one manifest entry:
//	  kind        uint32   PatternKind; entries in strictly ascending order
//	  length      uint64   byte length of the member's snapshot stream
//	  fingerprint [32]byte the member's canonical PatternSet fingerprint
//	members     count complete snapshot streams (the ".stb" format of
//	            snapshot.go), concatenated, each exactly length bytes
//	checksum    [32]byte raw SHA-256 over every preceding byte
//
// The manifest makes the bundle self-describing — a reader learns which
// kinds are present and their fingerprints without decoding a single
// pattern — and the trailing checksum covers the manifest itself, so a
// flipped kind, length or fingerprint is caught even though each member
// snapshot only self-verifies its own bytes. ReadBundle additionally
// checks every decoded member against its manifest entry: the kind and
// the canonical fingerprint must both match. See DESIGN.md for the full
// specification.

// bundleMagic identifies a pattern-index bundle stream.
const bundleMagic = "STBBNDL\x00"

// BundleVersion is the codec version written by WriteBundle. ReadBundle
// also accepts the previous version 1 (the pre-generation format),
// decoding it as generation 0.
const BundleVersion = 2

// ShardBundleVersion is the codec version written by WriteBundleSharded:
// version 2 plus the shard block (shard coordinates, partition-scheme
// tag and corpus fingerprint). Versions 1 and 2 read as the whole
// partition: shard 0 of 1.
const ShardBundleVersion = 3

// SubsBundleVersion is the codec version written by WriteBundleSubs:
// version 3's layout (the shard block is always present, degenerate for
// an unsharded store) plus a subscriptions block of opaque JSON blobs —
// the persisted standing queries. Versions 1..3 read as zero
// subscriptions, so every pre-subscription artifact stays loadable.
const SubsBundleVersion = 4

// minBundleVersion is the oldest codec version ReadBundle accepts.
const minBundleVersion = 1

// maxBundleMembers bounds the member count: one slot per pattern kind.
const maxBundleMembers = 3

// maxBundleSubs and maxBundleSubBytes bound the subscriptions block: a
// count or length beyond them can only come from corrupted input and is
// rejected before allocating.
const (
	maxBundleSubs     = 1 << 20
	maxBundleSubBytes = 1 << 20
)

// WriteBundle serializes the given pattern sets as one bundle: a
// manifest, then each set as an ordinary snapshot stream, then a stream
// checksum over the whole file. Sets must be non-empty, hold distinct
// kinds, and be ordered by ascending kind (the canonical regional,
// combinatorial, temporal order); term resolves interned IDs to strings
// as in WriteSnapshot. gen is the store generation recorded in the v2
// header (and in each member snapshot), the live-ingestion cache-busting
// token ReadBundle hands back; pass 0 for a freshly mined artifact.
func WriteBundle(w io.Writer, sets []*PatternSet, term func(id int) string, gen uint64) error {
	return writeBundleVersion(w, sets, term, gen, BundleVersion)
}

// WriteBundleSharded is WriteBundle for one shard of a partitioned
// vocabulary: it writes a version-3 bundle whose shard block records the
// shard's coordinates, the partition scheme and the shared corpus
// fingerprint, so a serving process (or a gateway aggregating several)
// can detect a mixed or foreign shard set before answering a single
// query. info is validated; a fingerprint, when present, must be a hex
// SHA-256 as produced by Collection.Checksum.
func WriteBundleSharded(w io.Writer, sets []*PatternSet, term func(id int) string, gen uint64, info ShardInfo) error {
	if err := info.validate(); err != nil {
		return err
	}
	return writeBundleShardVersion(w, sets, term, gen, ShardBundleVersion, info, nil)
}

// WriteBundleSubs writes a version-4 bundle: WriteBundleSharded's layout
// (info may be the degenerate whole-partition identity) plus the
// subscriptions block — one opaque JSON blob per persisted standing
// query, owned and interpreted entirely by the store layer. Readers of
// earlier formats never see the block; readers of this format get the
// blobs back byte-for-byte from ReadBundleSubs.
func WriteBundleSubs(w io.Writer, sets []*PatternSet, term func(id int) string, gen uint64, info ShardInfo, subs [][]byte) error {
	if err := info.validate(); err != nil {
		return err
	}
	if len(subs) > maxBundleSubs {
		return fmt.Errorf("index: bundle holds at most %d subscriptions, got %d", maxBundleSubs, len(subs))
	}
	for _, b := range subs {
		if len(b) > maxBundleSubBytes {
			return fmt.Errorf("index: bundle subscription record longer than %d bytes", maxBundleSubBytes)
		}
	}
	return writeBundleShardVersion(w, sets, term, gen, SubsBundleVersion, info, subs)
}

// writeBundleVersion writes the bundle at a specific codec version.
// Version 1 — kept so the cross-version tests can produce genuine legacy
// streams — has no generation field (gen is ignored) and version-1
// member snapshots.
func writeBundleVersion(w io.Writer, sets []*PatternSet, term func(id int) string, gen uint64, version uint32) error {
	return writeBundleShardVersion(w, sets, term, gen, version, ShardInfo{Shards: 1}, nil)
}

// writeBundleShardVersion is the single bundle encoder: versions 1 and 2
// ignore info, version 3 appends the shard block after the generation,
// version 4 appends the subscriptions block after the shard block.
func writeBundleShardVersion(w io.Writer, sets []*PatternSet, term func(id int) string, gen uint64, version uint32, info ShardInfo, subs [][]byte) error {
	if len(sets) == 0 || len(sets) > maxBundleMembers {
		return fmt.Errorf("index: bundle needs 1..%d member sets, got %d", maxBundleMembers, len(sets))
	}
	memberVersion := version
	if memberVersion > SnapshotVersion {
		memberVersion = SnapshotVersion
	}
	members := make([]*bytes.Buffer, len(sets))
	for i, s := range sets {
		if i > 0 && sets[i-1].Kind() >= s.Kind() {
			return fmt.Errorf("index: bundle members must be in ascending kind order (%v before %v)",
				sets[i-1].Kind(), s.Kind())
		}
		members[i] = &bytes.Buffer{}
		if err := writeSnapshotVersion(members[i], s, term, gen, memberVersion); err != nil {
			return fmt.Errorf("index: encoding bundle member %v: %w", s.Kind(), err)
		}
	}

	h := sha256.New()
	bw := bufio.NewWriter(w)
	out := io.MultiWriter(bw, h)
	var buf [8]byte
	if _, err := out.Write([]byte(bundleMagic)); err != nil {
		return fmt.Errorf("index: writing bundle: %w", err)
	}
	binary.LittleEndian.PutUint32(buf[:4], version)
	if _, err := out.Write(buf[:4]); err != nil {
		return fmt.Errorf("index: writing bundle: %w", err)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(sets)))
	if _, err := out.Write(buf[:4]); err != nil {
		return fmt.Errorf("index: writing bundle: %w", err)
	}
	if version >= 2 {
		binary.LittleEndian.PutUint64(buf[:8], gen)
		if _, err := out.Write(buf[:8]); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
	}
	if version >= ShardBundleVersion {
		binary.LittleEndian.PutUint32(buf[:4], uint32(info.Shard))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(info.Shards))
		if _, err := out.Write(buf[:8]); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(info.Scheme)))
		if _, err := out.Write(buf[:4]); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
		if _, err := out.Write([]byte(info.Scheme)); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
		var fp [32]byte // left all-zero when no fingerprint was recorded
		if info.CorpusFingerprint != "" {
			raw, err := hex.DecodeString(info.CorpusFingerprint)
			if err != nil || len(raw) != 32 {
				return fmt.Errorf("index: corpus fingerprint is not a hex SHA-256")
			}
			copy(fp[:], raw)
		}
		if _, err := out.Write(fp[:]); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
	}
	if version >= SubsBundleVersion {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(subs)))
		if _, err := out.Write(buf[:4]); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
		for _, b := range subs {
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(b)))
			if _, err := out.Write(buf[:4]); err != nil {
				return fmt.Errorf("index: writing bundle: %w", err)
			}
			if _, err := out.Write(b); err != nil {
				return fmt.Errorf("index: writing bundle: %w", err)
			}
		}
	}
	for i, s := range sets {
		binary.LittleEndian.PutUint32(buf[:4], uint32(s.Kind()))
		if _, err := out.Write(buf[:4]); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
		binary.LittleEndian.PutUint64(buf[:8], uint64(members[i].Len()))
		if _, err := out.Write(buf[:8]); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
		fp, err := hex.DecodeString(s.Fingerprint())
		if err != nil {
			return fmt.Errorf("index: encoding bundle fingerprint: %w", err)
		}
		if _, err := out.Write(fp); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
	}
	for _, m := range members {
		if _, err := out.Write(m.Bytes()); err != nil {
			return fmt.Errorf("index: writing bundle: %w", err)
		}
	}
	if _, err := bw.Write(h.Sum(nil)); err != nil { // the footer is not part of its own checksum
		return fmt.Errorf("index: writing bundle: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: writing bundle: %w", err)
	}
	return nil
}

// bundleManifestEntry is one decoded manifest record.
type bundleManifestEntry struct {
	kind        PatternKind
	length      uint64
	fingerprint [32]byte
}

// ReadBundle decodes a bundle written by WriteBundle and verifies its
// integrity end to end: the magic, version and member count must be
// valid, the manifest kinds strictly ascending, every member snapshot
// must decode (with its own checksum and fingerprint checks) to exactly
// its declared length, kind and manifest fingerprint, the trailing
// stream checksum must match, and no bytes may follow it. Truncated or
// corrupted input — including a tampered manifest — yields an error,
// never a silently damaged store. The returned generation is the store
// generation recorded in the v2 header; a version-1 bundle predates
// generations and reads as generation 0.
func ReadBundle(r io.Reader) ([]*Snapshot, uint64, error) {
	snaps, gen, _, err := ReadBundleShard(r)
	return snaps, gen, err
}

// ReadBundleShard is ReadBundle plus the bundle's shard identity: the
// shard block of a version-3+ stream, or shard 0 of 1 for the earlier
// whole-vocabulary versions.
func ReadBundleShard(r io.Reader) ([]*Snapshot, uint64, ShardInfo, error) {
	snaps, gen, si, _, err := ReadBundleSubs(r)
	return snaps, gen, si, err
}

// ReadBundleSubs is ReadBundleShard plus the persisted subscription
// blobs of a version-4 stream (nil for every earlier version), returned
// byte-for-byte as WriteBundleSubs stored them.
func ReadBundleSubs(r io.Reader) ([]*Snapshot, uint64, ShardInfo, [][]byte, error) {
	h := sha256.New()
	tr := io.TeeReader(r, h)
	info := ShardInfo{Shards: 1}
	fail := func(err error) ([]*Snapshot, uint64, ShardInfo, [][]byte, error) {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, ShardInfo{}, nil, fmt.Errorf("index: reading bundle: %w", err)
	}
	reject := func(format string, args ...any) ([]*Snapshot, uint64, ShardInfo, [][]byte, error) {
		return nil, 0, ShardInfo{}, nil, fmt.Errorf(format, args...)
	}

	var head [16]byte
	if _, err := io.ReadFull(tr, head[:]); err != nil {
		return fail(err)
	}
	if string(head[:8]) != bundleMagic {
		return reject("index: not a pattern-index bundle (bad magic %q)", head[:8])
	}
	version := binary.LittleEndian.Uint32(head[8:12])
	if version < minBundleVersion || version > SubsBundleVersion {
		return reject("index: unsupported bundle version %d (want %d..%d)", version, minBundleVersion, SubsBundleVersion)
	}
	count := binary.LittleEndian.Uint32(head[12:16])
	if count == 0 || count > maxBundleMembers {
		return reject("index: bundle member count %d outside [1, %d]", count, maxBundleMembers)
	}
	var generation uint64
	if version >= 2 {
		var g [8]byte
		if _, err := io.ReadFull(tr, g[:]); err != nil {
			return fail(err)
		}
		generation = binary.LittleEndian.Uint64(g[:])
	}
	if version >= ShardBundleVersion {
		var coords [12]byte // shard(4) + shards(4) + scheme length(4)
		if _, err := io.ReadFull(tr, coords[:]); err != nil {
			return fail(err)
		}
		info.Shard = int(binary.LittleEndian.Uint32(coords[:4]))
		info.Shards = int(binary.LittleEndian.Uint32(coords[4:8]))
		schemeLen := binary.LittleEndian.Uint32(coords[8:12])
		if schemeLen > maxShardSchemeLen {
			return reject("index: bundle shard scheme tag longer than %d bytes", maxShardSchemeLen)
		}
		scheme := make([]byte, schemeLen)
		if _, err := io.ReadFull(tr, scheme); err != nil {
			return fail(err)
		}
		info.Scheme = string(scheme)
		var fp [32]byte
		if _, err := io.ReadFull(tr, fp[:]); err != nil {
			return fail(err)
		}
		if fp != ([32]byte{}) {
			info.CorpusFingerprint = hex.EncodeToString(fp[:])
		}
		if err := info.validate(); err != nil {
			return reject("index: reading bundle: %v", err)
		}
	}
	var subs [][]byte
	if version >= SubsBundleVersion {
		var n [4]byte
		if _, err := io.ReadFull(tr, n[:]); err != nil {
			return fail(err)
		}
		nsubs := binary.LittleEndian.Uint32(n[:])
		if nsubs > maxBundleSubs {
			return reject("index: bundle subscription count %d exceeds %d", nsubs, maxBundleSubs)
		}
		subs = make([][]byte, nsubs)
		for i := range subs {
			if _, err := io.ReadFull(tr, n[:]); err != nil {
				return fail(err)
			}
			slen := binary.LittleEndian.Uint32(n[:])
			if slen > maxBundleSubBytes {
				return reject("index: bundle subscription record %d longer than %d bytes", i, maxBundleSubBytes)
			}
			subs[i] = make([]byte, slen)
			if _, err := io.ReadFull(tr, subs[i]); err != nil {
				return fail(err)
			}
		}
	}

	manifest := make([]bundleManifestEntry, count)
	for i := range manifest {
		var entry [44]byte // kind(4) + length(8) + fingerprint(32)
		if _, err := io.ReadFull(tr, entry[:]); err != nil {
			return fail(err)
		}
		kind := PatternKind(binary.LittleEndian.Uint32(entry[:4]))
		if kind != KindRegional && kind != KindCombinatorial && kind != KindTemporal {
			return reject("index: bundle manifest names unknown pattern kind %d", kind)
		}
		if i > 0 && manifest[i-1].kind >= kind {
			return reject("index: bundle manifest kinds not strictly ascending (%v after %v)",
				kind, manifest[i-1].kind)
		}
		manifest[i].kind = kind
		manifest[i].length = binary.LittleEndian.Uint64(entry[4:12])
		copy(manifest[i].fingerprint[:], entry[12:])
	}

	snaps := make([]*Snapshot, count)
	for i, entry := range manifest {
		snap, err := ReadSnapshot(io.LimitReader(tr, int64(entry.length)))
		if err != nil {
			return reject("index: reading bundle %v member: %w", entry.kind, err)
		}
		if got := snap.Set.Kind(); got != entry.kind {
			return reject("index: bundle %v member actually holds %v patterns", entry.kind, got)
		}
		if got := snap.Set.Fingerprint(); got != hex.EncodeToString(entry.fingerprint[:]) {
			return reject("index: bundle %v member fingerprint %.12s... does not match manifest %.12s...",
				entry.kind, got, hex.EncodeToString(entry.fingerprint[:]))
		}
		snaps[i] = snap
	}

	sum := h.Sum(nil)
	var stored [32]byte
	if _, err := io.ReadFull(r, stored[:]); err != nil { // footer: not tee'd into the checksum
		return fail(err)
	}
	if !bytes.Equal(sum, stored[:]) {
		return reject("index: bundle corrupted: stream checksum mismatch")
	}
	var trailing [1]byte
	if _, err := io.ReadFull(r, trailing[:]); err != io.EOF {
		return reject("index: bundle has trailing data after checksum footer")
	}
	return snaps, generation, info, subs, nil
}

// WriteBundleFile saves a bundle atomically: it writes to a temp file in
// the destination directory and renames over the target, so a crash or
// full disk mid-save never leaves a truncated bundle for the next boot
// to trip over.
func WriteBundleFile(path string, sets []*PatternSet, term func(id int) string, gen uint64) error {
	return writeBundleFileWith(path, func(w io.Writer) error {
		return WriteBundle(w, sets, term, gen)
	})
}

// WriteBundleShardedFile is WriteBundleFile for one shard bundle, with
// the same atomic temp-and-rename publication.
func WriteBundleShardedFile(path string, sets []*PatternSet, term func(id int) string, gen uint64, info ShardInfo) error {
	return writeBundleFileWith(path, func(w io.Writer) error {
		return WriteBundleSharded(w, sets, term, gen, info)
	})
}

// WriteBundleSubsFile is WriteBundleFile for a version-4 bundle carrying
// persisted subscriptions, with the same atomic temp-and-rename
// publication.
func WriteBundleSubsFile(path string, sets []*PatternSet, term func(id int) string, gen uint64, info ShardInfo, subs [][]byte) error {
	return writeBundleFileWith(path, func(w io.Writer) error {
		return WriteBundleSubs(w, sets, term, gen, info, subs)
	})
}

func writeBundleFileWith(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bundle-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp uses 0600; bundles are mined by one user and served by
	// another, so widen to the conventional 0644 before publishing.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadStore decodes either on-disk store artifact: a multi-member
// bundle (ReadBundle) or a bare single-index snapshot (ReadSnapshot),
// sniffed by magic. It is the boot-time entry point that lets a serving
// process accept whichever file the mining pipeline produced. The
// returned generation is the artifact's recorded store generation (the
// bundle header's for a bundle, the snapshot's own for a bare snapshot;
// 0 for any version-1 stream).
func ReadStore(r io.Reader) ([]*Snapshot, uint64, error) {
	snaps, gen, _, err := ReadStoreShard(r)
	return snaps, gen, err
}

// ReadStoreShard is ReadStore plus the artifact's shard identity. A bare
// snapshot or a pre-shard bundle reads as the whole partition (shard 0
// of 1).
func ReadStoreShard(r io.Reader) ([]*Snapshot, uint64, ShardInfo, error) {
	snaps, gen, si, _, err := ReadStoreSubs(r)
	return snaps, gen, si, err
}

// ReadStoreSubs is ReadStoreShard plus the artifact's persisted
// subscription blobs: those of a version-4 bundle, nil for every earlier
// bundle version and for bare snapshots.
func ReadStoreSubs(r io.Reader) ([]*Snapshot, uint64, ShardInfo, [][]byte, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(8)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, ShardInfo{}, nil, fmt.Errorf("index: input too short to be a snapshot or bundle")
		}
		return nil, 0, ShardInfo{}, nil, fmt.Errorf("index: reading store: %w", err)
	}
	switch string(magic) {
	case bundleMagic:
		return ReadBundleSubs(br)
	case snapshotMagic:
		snap, err := ReadSnapshot(br)
		if err != nil {
			return nil, 0, ShardInfo{}, nil, err
		}
		return []*Snapshot{snap}, snap.Generation, ShardInfo{Shards: 1}, nil, nil
	}
	return nil, 0, ShardInfo{}, nil, fmt.Errorf("index: not a pattern-index snapshot or bundle (bad magic %q)", magic)
}
