package baseline

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestIntervalsOfNoFill(t *testing.T) {
	w := []float64{-1, 2, 3, -1, -1, 4, -1}
	got := intervalsOf(w, 0)
	want := [][2]int{{1, 2}, {5, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIntervalsOfGapFill(t *testing.T) {
	w := []float64{1, -1, 1, -1, -1, -1, 1}
	// l=2: the single-zero gap is filled, the triple-zero gap is not.
	got := intervalsOf(w, 2)
	want := [][2]int{{0, 2}, {6, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIntervalsOfEdgesNotFilled(t *testing.T) {
	// Leading/trailing zero runs are never filled regardless of length.
	w := []float64{-1, 1, 1, -1}
	got := intervalsOf(w, 10)
	want := [][2]int{{1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIntervalsOfAllPositive(t *testing.T) {
	got := intervalsOf([]float64{1, 1, 1}, 0)
	want := [][2]int{{0, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestJaccard1D(t *testing.T) {
	cases := []struct {
		a1, a2, b1, b2 int
		want           float64
	}{
		{0, 4, 0, 4, 1},
		{0, 4, 5, 9, 0},
		{0, 4, 2, 6, 3.0 / 7.0},
		{0, 0, 0, 0, 1},
	}
	for _, tc := range cases {
		if got := jaccard1D(tc.a1, tc.a2, tc.b1, tc.b2); got != tc.want {
			t.Errorf("jaccard1D(%d,%d,%d,%d) = %v, want %v",
				tc.a1, tc.a2, tc.b1, tc.b2, got, tc.want)
		}
	}
}

func TestMineEmpty(t *testing.T) {
	b := Base{L: 2, Delta: 0.5}
	if got := b.Mine(nil, rand.New(rand.NewSource(1))); got != nil {
		t.Fatalf("empty surface: got %v", got)
	}
}

func TestMineMergesSimilarIntervals(t *testing.T) {
	// Two streams bursting over nearly identical timeframes must merge
	// into one pattern covering both streams.
	surface := [][]float64{
		{1, 1, 9, 9, 9, 1, 1, 1},
		{1, 1, 1, 9, 9, 9, 1, 1},
		{1, 1, 1, 1, 1, 1, 1, 1},
	}
	b := Base{L: 1, Delta: 0.4}
	pats := b.Mine(surface, rand.New(rand.NewSource(2)))
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	top := pats[0]
	if len(top.Streams) != 2 {
		t.Fatalf("top pattern streams %v, want both bursting streams", top.Streams)
	}
	if top.Streams[0] != 0 || top.Streams[1] != 1 {
		t.Fatalf("streams %v, want [0 1]", top.Streams)
	}
	// Merged timeframe is the intersection of the two bursts.
	if top.Start > top.End {
		t.Fatalf("inverted timeframe %+v", top)
	}
}

func TestMineKeepsDistantBurstsSeparate(t *testing.T) {
	surface := [][]float64{
		{1, 9, 9, 1, 1, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 1, 1, 9, 9, 1},
	}
	b := Base{L: 1, Delta: 0.5}
	pats := b.Mine(surface, rand.New(rand.NewSource(3)))
	if len(pats) != 2 {
		t.Fatalf("got %d patterns, want 2: %+v", len(pats), pats)
	}
	for _, p := range pats {
		if len(p.Streams) != 1 {
			t.Fatalf("patterns should not merge: %+v", pats)
		}
	}
}

func TestMineDeterministicGivenSeed(t *testing.T) {
	surface := [][]float64{
		{1, 8, 8, 1, 1, 1},
		{1, 1, 8, 8, 1, 1},
		{1, 1, 1, 8, 8, 1},
	}
	b := Base{L: 1, Delta: 0.3}
	a := b.Mine(surface, rand.New(rand.NewSource(7)))
	c := b.Mine(surface, rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("same seed gave different results: %+v vs %+v", a, c)
	}
}

func TestMineSortedByStreamCount(t *testing.T) {
	surface := [][]float64{
		{1, 9, 9, 1, 1, 1, 1, 1},
		{1, 9, 9, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 9, 1, 1},
	}
	b := Base{L: 1, Delta: 0.5}
	pats := b.Mine(surface, rand.New(rand.NewSource(4)))
	for i := 1; i < len(pats); i++ {
		if len(pats[i].Streams) > len(pats[i-1].Streams) {
			t.Fatalf("patterns not sorted by stream count: %+v", pats)
		}
	}
}
