// Package baseline implements Base, the comparison method of §6.2.2 of
// the paper: per-stream burstiness scores are binarized, short interior
// zero-gaps are filled, and the resulting per-stream bursty intervals are
// merged across streams whenever their Jaccard overlap reaches δ.
package baseline

import (
	"math/rand"
	"sort"

	"stburst/internal/expect"
)

// Pattern is one merged spatiotemporal pattern reported by Base: a
// timeframe and the set of streams whose intervals merged into it.
type Pattern struct {
	Streams []int // ascending stream indices
	Start   int   // inclusive
	End     int   // inclusive
}

// Base is the baseline miner. The paper tunes both parameters "to yield
// the best results"; see internal/exp for the tuning used in Table 2.
type Base struct {
	// L fills any interior run of zeros strictly shorter than L with
	// ones before interval extraction. Zero disables gap filling.
	L int
	// Delta is the Jaccard threshold for merging an interval into an
	// existing candidate.
	Delta float64
	// Baseline supplies E_x[i][t]; nil uses the running mean.
	Baseline expect.Factory
}

// Mine extracts patterns from a term's frequency surface. The paper
// processes streams "given a random order"; rng supplies that order and
// must be non-nil.
func (b Base) Mine(surface [][]float64, rng *rand.Rand) []Pattern {
	if len(surface) == 0 {
		return nil
	}
	factory := b.Baseline
	if factory == nil {
		factory = expect.NewRunningMean()
	}
	weights := expect.WeightSurface(surface, factory)

	order := rng.Perm(len(surface))
	type cand struct {
		streams map[int]struct{}
		start   int
		end     int
	}
	var cands []*cand
	for _, x := range order {
		for _, iv := range intervalsOf(weights[x], b.L) {
			merged := false
			for _, c := range cands {
				if jaccard1D(c.start, c.end, iv[0], iv[1]) >= b.Delta {
					// Merge: the intersection replaces the candidate.
					if iv[0] > c.start {
						c.start = iv[0]
					}
					if iv[1] < c.end {
						c.end = iv[1]
					}
					c.streams[x] = struct{}{}
					merged = true
					break
				}
			}
			if !merged {
				cands = append(cands, &cand{
					streams: map[int]struct{}{x: {}},
					start:   iv[0],
					end:     iv[1],
				})
			}
		}
	}
	out := make([]Pattern, 0, len(cands))
	for _, c := range cands {
		streams := make([]int, 0, len(c.streams))
		for x := range c.streams {
			streams = append(streams, x)
		}
		sort.Ints(streams)
		out = append(out, Pattern{Streams: streams, Start: c.start, End: c.end})
	}
	// Largest stream sets first: the "top" Base pattern.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Streams) != len(out[j].Streams) {
			return len(out[i].Streams) > len(out[j].Streams)
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// intervalsOf binarizes one stream's weights (positive → 1), fills
// interior zero-runs shorter than l, and returns the inclusive [start,
// end] index pairs of the remaining one-runs.
func intervalsOf(weights []float64, l int) [][2]int {
	n := len(weights)
	bits := make([]bool, n)
	for i, w := range weights {
		bits[i] = w > 0
	}
	if l > 0 {
		// Fill interior gaps: zero-runs shorter than l that are neither a
		// prefix nor a suffix of the sequence.
		i := 0
		for i < n {
			if bits[i] {
				i++
				continue
			}
			j := i
			for j < n && !bits[j] {
				j++
			}
			if i > 0 && j < n && j-i < l {
				for k := i; k < j; k++ {
					bits[k] = true
				}
			}
			i = j
		}
	}
	var out [][2]int
	for i := 0; i < n; {
		if !bits[i] {
			i++
			continue
		}
		j := i
		for j < n && bits[j] {
			j++
		}
		out = append(out, [2]int{i, j - 1})
		i = j
	}
	return out
}

// jaccard1D returns the Jaccard overlap of two inclusive integer
// intervals.
func jaccard1D(a1, a2, b1, b2 int) float64 {
	il := a1
	if b1 > il {
		il = b1
	}
	ir := a2
	if b2 < ir {
		ir = b2
	}
	inter := ir - il + 1
	if inter <= 0 {
		return 0
	}
	ul := a1
	if b1 < ul {
		ul = b1
	}
	ur := a2
	if b2 > ur {
		ur = b2
	}
	union := ur - ul + 1
	return float64(inter) / float64(union)
}
