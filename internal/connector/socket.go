package connector

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Framing selects how documents are delimited on a socket connection.
type Framing string

const (
	// FrameLine is newline-delimited JSON: one document per line, the
	// same shape the tail feed uses. The default.
	FrameLine Framing = "line"
	// FrameLength is length-prefixed JSON: a 4-byte big-endian payload
	// length followed by that many bytes of one JSON document.
	FrameLength Framing = "len"
)

// ParseFraming validates an operator-supplied framing name.
func ParseFraming(s string) (Framing, error) {
	switch Framing(s) {
	case FrameLine, FrameLength:
		return Framing(s), nil
	case "":
		return FrameLine, nil
	default:
		return "", fmt.Errorf("unknown framing %q (want %q or %q)", s, FrameLine, FrameLength)
	}
}

// SocketConfig configures a socket source.
type SocketConfig struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:9400". Port 0
	// picks a free port; WaitBound reports the bound address.
	Addr string
	// Framing is line- or length-framed JSONL (default FrameLine).
	Framing Framing
	// MaxConns bounds concurrent client connections (default 64); a
	// connection over the limit is closed immediately and counted as
	// an error.
	MaxConns int
	// MaxFrameBytes bounds one document frame (default 1MiB). An
	// overlong frame closes the connection — in line framing the
	// stream can no longer be trusted to resynchronize, and in length
	// framing the declared length is refused before the payload is
	// read.
	MaxFrameBytes int
	// BatchDocs is the per-connection flush threshold (default 64).
	BatchDocs int
	// FlushInterval bounds how long a partial batch may sit before it
	// is flushed even though the connection has gone quiet (default
	// 500ms).
	FlushInterval time.Duration
	// DrainTimeout bounds the final flush of buffered documents when
	// the source is shut down mid-connection (default 5s).
	DrainTimeout time.Duration
}

func (c *SocketConfig) defaults() {
	if c.Framing == "" {
		c.Framing = FrameLine
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 1 << 20
	}
	if c.BatchDocs <= 0 {
		c.BatchDocs = 64
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 500 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
}

// SocketSource accepts framed JSONL documents over TCP — the `stserve
// -listen-ingest` connector, modeled on a ZMQ-style subscriber: the
// sender fires documents and never waits for an application-level ack,
// so backpressure is TCP flow control (the reader stops reading while
// a flush blocks) and delivery across a crash is at-most-once. Each
// connection batches independently and flushes at BatchDocs, when the
// batch has sat for FlushInterval, and at disconnect.
type SocketSource struct {
	cfg  SocketConfig
	sink Sink
	tracker

	mu     sync.Mutex
	bound  net.Addr        // listener address once Run has bound it
	notify []chan struct{} // closed once bound becomes non-nil
}

// NewSocketSource builds a socket source over sink.
func NewSocketSource(cfg SocketConfig, sink Sink) *SocketSource {
	cfg.defaults()
	s := &SocketSource{cfg: cfg, sink: sink}
	s.lag.Store(-1) // lag is a tailer notion
	return s
}

func (s *SocketSource) Name() string { return "socket:" + s.cfg.Addr }

// Stats implements Source.
func (s *SocketSource) Stats() SourceStats { return s.snapshot(s.Name()) }

// WaitBound blocks until the listener is bound or ctx is done, then
// reports the bound address. Tests use it with ":0" configs.
func (s *SocketSource) WaitBound(ctx context.Context) (net.Addr, error) {
	s.mu.Lock()
	if s.bound != nil {
		a := s.bound
		s.mu.Unlock()
		return a, nil
	}
	ch := make(chan struct{})
	s.notify = append(s.notify, ch)
	s.mu.Unlock()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-ch:
		s.mu.Lock()
		a := s.bound
		s.mu.Unlock()
		return a, nil
	}
}

// Run listens and serves until ctx is cancelled, then stops accepting,
// waits for in-flight connections to drain their buffered documents,
// and returns nil. A listen failure is returned for the Supervisor to
// back off and retry (the port may be momentarily taken after a fast
// restart).
func (s *SocketSource) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.bound = ln.Addr()
	notify := s.notify
	s.notify = nil
	s.mu.Unlock()
	for _, ch := range notify {
		close(ch)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil // clean shutdown
			}
			return err
		}
		if s.conns.Load() >= int64(s.cfg.MaxConns) {
			s.fail(fmt.Sprintf("connection from %s refused: %d connections already open",
				conn.RemoteAddr(), s.cfg.MaxConns))
			conn.Close()
			continue
		}
		s.conns.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.conns.Add(-1)
			defer conn.Close()
			s.serveConn(ctx, conn)
		}()
	}
}

// serveConn reads one connection's frames into a batch and flushes at
// BatchDocs, on a FlushInterval tick, and at end of stream. The batch
// mutex is held across the sink call on purpose: while a flush blocks
// on the store, the reader blocks appending, stops reading the socket,
// and TCP flow control pushes back on the sender. The reader itself
// never sets mid-stream deadlines — a deadline poke from the shutdown
// watcher is the only thing that interrupts a blocking read, so a
// slow sender can never have a half-read frame torn by an idle timer.
func (s *SocketSource) serveConn(ctx context.Context, conn net.Conn) {
	var (
		batchMu sync.Mutex
		batch   []Doc
	)
	flush := func(fctx context.Context) bool {
		batchMu.Lock()
		defer batchMu.Unlock()
		if len(batch) == 0 {
			return true
		}
		if fctx.Err() != nil {
			// Shutdown drain: the run context is gone but the batch
			// holds accepted documents; give the sink a bounded window
			// to land them before the WAL closes.
			var cancel context.CancelFunc
			fctx, cancel = context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
			defer cancel()
		}
		res, err := s.sink.Ingest(fctx, batch)
		if err != nil {
			s.fail(fmt.Sprintf("flush of %d document(s) from %s: %v", len(batch), conn.RemoteAddr(), err))
			return false
		}
		s.docs.Add(int64(res.Applied))
		if res.Rejected > 0 {
			s.errors.Add(int64(res.Rejected))
			msg := fmt.Sprintf("%d document(s) rejected by the store", res.Rejected)
			s.lastErr.Store(&msg)
		}
		batch = batch[:0]
		return true
	}

	// Shutdown watcher: an expired deadline unblocks the reader
	// without tearing the connection down, so the drain flush below
	// still runs.
	stopWatch := context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Now())
	})
	defer stopWatch()

	// Idle flusher: a quiet connection's partial batch reaches the
	// store within FlushInterval.
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		tick := time.NewTicker(s.cfg.FlushInterval)
		defer tick.Stop()
		for {
			select {
			case <-connDone:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				flush(ctx)
			}
		}
	}()

	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		frame, err := s.readFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, net.ErrClosed) && ctx.Err() == nil {
				s.fail(fmt.Sprintf("connection from %s: %v", conn.RemoteAddr(), err))
			}
			flush(ctx)
			return
		}
		if len(frame) == 0 {
			continue // blank line or empty frame
		}
		var d Doc
		if err := json.Unmarshal(frame, &d); err != nil {
			s.fail(fmt.Sprintf("connection from %s: bad document: %v", conn.RemoteAddr(), err))
			continue
		}
		batchMu.Lock()
		batch = append(batch, d)
		full := len(batch) >= s.cfg.BatchDocs
		batchMu.Unlock()
		if full {
			if !flush(ctx) {
				return
			}
		}
	}
}

// readFrame reads one document frame per the configured framing. The
// returned slice is only valid until the next call.
func (s *SocketSource) readFrame(r *bufio.Reader) ([]byte, error) {
	switch s.cfg.Framing {
	case FrameLength:
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 {
			return nil, nil
		}
		if n > uint32(s.cfg.MaxFrameBytes) {
			return nil, fmt.Errorf("frame of %d bytes exceeds limit %d", n, s.cfg.MaxFrameBytes)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	default: // FrameLine
		line, err := r.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) && len(line) > 0 {
				return trimNL(line), nil // final unterminated line
			}
			return nil, err
		}
		if len(line) > s.cfg.MaxFrameBytes {
			return nil, fmt.Errorf("line of %d bytes exceeds limit %d", len(line), s.cfg.MaxFrameBytes)
		}
		return trimNL(line), nil
	}
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
