package connector

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// TailConfig configures a tailing-file source.
type TailConfig struct {
	// Path is the JSONL feed file to follow. It may not exist yet;
	// the tailer waits for it.
	Path string
	// CheckpointPath is where resume state is persisted. Defaults to
	// Path + ".checkpoint".
	CheckpointPath string
	// BatchDocs is how many documents accumulate before a flush
	// (default 64). Reaching end-of-file also flushes, so a slow feed
	// is never starved waiting for a full batch.
	BatchDocs int
	// Poll is how long the tailer sleeps at end-of-file before
	// re-checking for growth, truncation or rotation (default 250ms).
	Poll time.Duration
	// MaxLineBytes bounds a single feed line (default 1MiB). An
	// overlong line is counted as an error and skipped through the
	// next newline, so one corrupt record cannot buffer unboundedly.
	MaxLineBytes int
}

func (c *TailConfig) defaults() {
	if c.CheckpointPath == "" {
		c.CheckpointPath = c.Path + ".checkpoint"
	}
	if c.BatchDocs <= 0 {
		c.BatchDocs = 64
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
}

// TailSource follows a growing JSONL corpus file — the `stserve -tail`
// connector. It understands the corpusio file shape (an optional
// header line followed by one document per line), survives truncation
// and rotation of the feed file, and persists a byte-offset checkpoint
// after every durable flush so a restart resumes without loss or
// duplication (see Checkpoint for the dedupe arithmetic).
type TailSource struct {
	cfg  TailConfig
	sink Sink
	tracker
}

// NewTailSource builds a tailer over sink. Run does all the work.
func NewTailSource(cfg TailConfig, sink Sink) *TailSource {
	cfg.defaults()
	t := &TailSource{cfg: cfg, sink: sink}
	t.conns.Store(-1) // not a socket
	return t
}

func (t *TailSource) Name() string { return "tail:" + t.cfg.Path }

// Stats implements Source.
func (t *TailSource) Stats() SourceStats { return t.snapshot(t.Name()) }

// feedHeader is the corpusio header line shape; only Kind matters here
// — a first line that parses with a non-empty kind is metadata, not a
// document.
type feedHeader struct {
	Kind string `json:"kind"`
}

// Run tails the feed until ctx is cancelled. The loop is: read full
// lines, skip the header and any documents the resume arithmetic says
// are already applied, batch the rest, flush through the sink at
// BatchDocs or end-of-file, checkpoint after every flush. At
// end-of-file it watches for growth, truncation (size shrank below the
// read position) and rotation (a new inode under the same name);
// either reset restarts the file from offset zero with a fresh
// checkpoint baseline.
func (t *TailSource) Run(ctx context.Context) error {
	cp, ok, err := LoadCheckpoint(t.cfg.CheckpointPath)
	if err != nil {
		return err
	}
	skip := 0
	if ok {
		if d := t.sink.Docs() - cp.Docs; d > 0 {
			skip = d
		}
	} else {
		// First run (or the operator deleted the checkpoint): record
		// the store's baseline count *before* ingesting anything, so a
		// crash after the first flush but before the first post-flush
		// checkpoint still dedupes on the next boot.
		cp = Checkpoint{Offset: 0, Docs: t.sink.Docs()}
		if err := cp.Save(t.cfg.CheckpointPath); err != nil {
			return err
		}
	}

	f, err := t.open(ctx, &cp, &skip)
	if err != nil {
		return err
	}
	defer func() { f.Close() }()

	r := bufio.NewReaderSize(f, 64<<10)
	offset := cp.Offset // bytes consumed from the file so far
	var (
		pending    []byte // partial line carried across EOF waits
		discarding bool   // inside an overlong line, skipping to '\n'
		batch      []Doc
		batchEnd   int64 // offset just past the last line in batch
	)

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res, err := t.sink.Ingest(ctx, batch)
		if err != nil {
			return err
		}
		t.docs.Add(int64(res.Applied))
		if res.Rejected > 0 {
			t.errors.Add(int64(res.Rejected))
			msg := fmt.Sprintf("%d document(s) rejected by the store", res.Rejected)
			t.lastErr.Store(&msg)
		}
		cp = Checkpoint{Offset: batchEnd, Docs: res.Total}
		if err := cp.Save(t.cfg.CheckpointPath); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}

	for {
		chunk, err := r.ReadBytes('\n')
		offset += int64(len(chunk))
		pending = append(pending, chunk...)
		switch {
		case err == nil:
			line := pending
			pending = nil
			lineStart := offset - int64(len(line))
			if discarding {
				discarding = false
				continue
			}
			if lineStart == 0 {
				var h feedHeader
				if json.Unmarshal(line, &h) == nil && h.Kind != "" {
					continue // corpus header, not a document
				}
			}
			if len(line) <= 1 {
				continue // blank line
			}
			var d Doc
			if err := json.Unmarshal(line, &d); err != nil {
				t.fail(fmt.Sprintf("offset %d: bad feed line: %v", lineStart, err))
				continue
			}
			if skip > 0 {
				// Already applied before the last crash; advance the
				// checkpoint bookkeeping without re-ingesting.
				skip--
				cp = Checkpoint{Offset: offset, Docs: cp.Docs + 1}
				if skip == 0 {
					if err := cp.Save(t.cfg.CheckpointPath); err != nil {
						return err
					}
				}
				continue
			}
			batch = append(batch, d)
			batchEnd = offset
			if len(batch) >= t.cfg.BatchDocs {
				if err := flush(); err != nil {
					return err
				}
			}
		case err == io.EOF:
			if len(pending) > t.cfg.MaxLineBytes {
				t.fail(fmt.Sprintf("offset %d: line exceeds %d bytes; skipping to next newline",
					offset-int64(len(pending)), t.cfg.MaxLineBytes))
				pending = nil
				discarding = true
			}
			// Drain what we have before sleeping: end-of-file is the
			// flush trigger that keeps a drip feed's latency at one
			// poll interval, not one batch.
			if err := flush(); err != nil {
				return err
			}
			reset, err := t.watch(ctx, f, offset)
			if err != nil {
				return err
			}
			if reset {
				// Truncated or rotated: everything we know about the
				// old byte stream is void. Reopen at zero and
				// re-baseline the checkpoint at the store's current
				// count — the new file's lines are all new documents.
				f.Close()
				pending, discarding = nil, false
				cp = Checkpoint{Offset: 0, Docs: t.sink.Docs()}
				if err := cp.Save(t.cfg.CheckpointPath); err != nil {
					return err
				}
				skipZero := 0
				f, err = t.open(ctx, &cp, &skipZero)
				if err != nil {
					return err
				}
				offset = 0
			}
			r.Reset(f)
		default:
			return fmt.Errorf("tail %s: %w", t.cfg.Path, err)
		}
	}
}

// open opens the feed at cp.Offset, waiting (ctx-aware) for the file
// to exist. If the file is shorter than the checkpointed offset the
// feed was truncated while the tailer was down: the checkpoint is
// re-baselined to a fresh file exactly as a live truncation would.
func (t *TailSource) open(ctx context.Context, cp *Checkpoint, skip *int) (*os.File, error) {
	for {
		f, err := os.Open(t.cfg.Path)
		if err == nil {
			st, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, err
			}
			if st.Size() < cp.Offset {
				t.fail(fmt.Sprintf("feed truncated while down (size %d < checkpoint offset %d); restarting from 0",
					st.Size(), cp.Offset))
				*cp = Checkpoint{Offset: 0, Docs: t.sink.Docs()}
				*skip = 0
				if err := cp.Save(t.cfg.CheckpointPath); err != nil {
					f.Close()
					return nil, err
				}
			}
			if cp.Offset > 0 {
				if _, err := f.Seek(cp.Offset, io.SeekStart); err != nil {
					f.Close()
					return nil, err
				}
			}
			t.updateLag(st.Size(), cp.Offset)
			return f, nil
		}
		if !os.IsNotExist(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(t.cfg.Poll):
		}
	}
}

// watch sleeps one poll interval at end-of-file, then reports whether
// the feed must be reopened from scratch (truncated or rotated). A
// missing file keeps the old descriptor — its remaining bytes were
// already drained — and the next poll that finds a new file under the
// path reports rotation.
func (t *TailSource) watch(ctx context.Context, f *os.File, offset int64) (reset bool, err error) {
	select {
	case <-ctx.Done():
		return false, ctx.Err()
	case <-time.After(t.cfg.Poll):
	}
	st, err := os.Stat(t.cfg.Path)
	if err != nil {
		if os.IsNotExist(err) {
			t.lag.Store(0)
			return false, nil // deleted; wait for recreation
		}
		return false, err
	}
	if st.Size() < offset {
		t.fail(fmt.Sprintf("feed truncated (size %d < read position %d); restarting from 0", st.Size(), offset))
		return true, nil
	}
	if fst, err := f.Stat(); err == nil && !os.SameFile(fst, st) {
		t.fail("feed rotated (new file under the same name); restarting from 0")
		return true, nil
	}
	t.updateLag(st.Size(), offset)
	return false, nil
}

func (t *TailSource) updateLag(size, offset int64) {
	lag := size - offset
	if lag < 0 {
		lag = 0
	}
	t.lag.Store(lag)
}
