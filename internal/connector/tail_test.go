package connector

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"
)

// feedLine renders one doc line the way stgen/corpusio would.
func feedLine(stream string, tm, event int) string {
	raw, _ := json.Marshal(Doc{Stream: stream, Time: tm, Counts: map[string]int{"quake": 2, "fire": 1}, Event: event})
	return string(raw) + "\n"
}

const feedHeaderLine = `{"kind":"topix","streams":["lima","oslo"],"timeline":52}` + "\n"

// startTail runs a TailSource over sink until the returned stop func
// is called (waits for Run to return) — cancellation mid-stream is the
// in-test stand-in for a crash, since nothing after the last durable
// flush survives in either case.
func startTail(t *testing.T, cfg TailConfig, sink Sink) (src *TailSource, stop func() error) {
	t.Helper()
	src = NewTailSource(cfg, sink)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- src.Run(ctx) }()
	return src, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("tail Run did not return after cancel")
			return nil
		}
	}
}

func fastCfg(path string) TailConfig {
	return TailConfig{Path: path, BatchDocs: 4, Poll: 5 * time.Millisecond}
}

func appendFile(t *testing.T, path, body string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(body); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTailFollowsGrowingFile(t *testing.T) {
	path := t.TempDir() + "/feed.jsonl"
	appendFile(t, path, feedHeaderLine+feedLine("lima", 0, 0))
	sink := &memSink{base: 10}
	src, stop := startTail(t, fastCfg(path), sink)

	waitFor(t, func() bool { return sink.Docs() == 11 })
	// Grow the file after the tailer reached EOF, including a torn
	// write: the partial line must sit unconsumed until its newline
	// arrives.
	appendFile(t, path, feedLine("oslo", 1, 0))
	half := feedLine("lima", 2, 1)
	appendFile(t, path, half[:len(half)/2])
	waitFor(t, func() bool { return sink.Docs() == 12 })
	time.Sleep(30 * time.Millisecond) // several polls with the torn line pending
	if got := sink.Docs(); got != 12 {
		t.Fatalf("torn line was ingested early: docs=%d", got)
	}
	appendFile(t, path, half[len(half)/2:])
	waitFor(t, func() bool { return sink.Docs() == 13 })

	docs := sink.applied()
	if docs[2].Stream != "lima" || docs[2].Time != 2 || docs[2].Counts["quake"] != 2 {
		t.Fatalf("reassembled doc = %+v", docs[2])
	}
	// Lag refreshes on the poll tick; once the tailer is caught up it
	// must settle at zero.
	waitFor(t, func() bool { return src.Stats().Lag == 0 })
	if err := stop(); err != nil && err != context.Canceled {
		t.Fatalf("stop: %v", err)
	}
}

func TestTailResumeNoLossNoDup(t *testing.T) {
	// The core crash-recovery property, checked at every possible cut
	// point: kill the tailer after k flushed docs, restart it, and the
	// sink must end with every feed doc exactly once, in order.
	const nDocs = 10
	var body string
	body += feedHeaderLine
	for i := 0; i < nDocs; i++ {
		body += feedLine("lima", i, 0)
	}
	for cut := 1; cut <= nDocs; cut++ {
		path := fmt.Sprintf("%s/feed-%d.jsonl", t.TempDir(), cut)
		appendFile(t, path, body)
		sink := &memSink{base: 3}
		cfg := fastCfg(path)
		cfg.BatchDocs = 1 // flush per doc so the cut lands between flushes

		_, stop := startTail(t, cfg, sink)
		waitFor(t, func() bool { return sink.Docs() >= 3+cut })
		stop() // crash

		// Second incarnation finishes the feed.
		_, stop2 := startTail(t, cfg, sink)
		waitFor(t, func() bool { return sink.Docs() == 3+nDocs })
		time.Sleep(20 * time.Millisecond) // would catch late duplicates
		stop2()

		docs := sink.applied()
		if len(docs) != nDocs {
			t.Fatalf("cut=%d: %d docs ingested, want %d", cut, len(docs), nDocs)
		}
		for i, d := range docs {
			if d.Time != i {
				t.Fatalf("cut=%d: doc %d has time %d (lost or duplicated)", cut, i, d.Time)
			}
		}
	}
}

func TestTailResumeAfterCrashBeforeFirstCheckpointFlush(t *testing.T) {
	// A crash after docs were flushed but while the checkpoint file
	// still holds only the startup baseline must still dedupe: the
	// baseline records the pre-ingest store count.
	path := t.TempDir() + "/feed.jsonl"
	appendFile(t, path, feedHeaderLine+feedLine("lima", 0, 0)+feedLine("oslo", 1, 0))
	sink := &memSink{base: 5}
	cfg := fastCfg(path)

	_, stop := startTail(t, cfg, sink)
	waitFor(t, func() bool { return sink.Docs() == 7 })
	stop()
	// Roll the checkpoint back to what Run wrote at startup — as if
	// the crash hit after the flush's WAL append but before the
	// post-flush checkpoint rename landed.
	if err := (Checkpoint{Offset: 0, Docs: 5}).Save(path + ".checkpoint"); err != nil {
		t.Fatal(err)
	}

	_, stop2 := startTail(t, cfg, sink)
	appendFile(t, path, feedLine("lima", 2, 0))
	waitFor(t, func() bool { return sink.Docs() == 8 })
	time.Sleep(20 * time.Millisecond)
	stop2()
	if docs := sink.applied(); len(docs) != 3 {
		t.Fatalf("%d docs ingested, want 3 (dedupe failed)", len(docs))
	}
}

func TestTailTruncationRestartsFromZero(t *testing.T) {
	path := t.TempDir() + "/feed.jsonl"
	appendFile(t, path, feedHeaderLine+feedLine("lima", 0, 0)+feedLine("lima", 1, 0))
	sink := &memSink{}
	src, stop := startTail(t, fastCfg(path), sink)
	waitFor(t, func() bool { return sink.Docs() == 2 })

	// Truncate and rewrite shorter: the tailer must notice, reset, and
	// ingest the new content as new documents.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, feedHeaderLine+feedLine("oslo", 7, 0))
	waitFor(t, func() bool { return sink.Docs() == 3 })
	stop()

	docs := sink.applied()
	if docs[2].Stream != "oslo" || docs[2].Time != 7 {
		t.Fatalf("post-truncation doc = %+v", docs[2])
	}
	if src.Stats().Errors == 0 {
		t.Fatal("truncation was not counted as an error event")
	}
}

func TestTailRotationFollowsNewFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/feed.jsonl"
	appendFile(t, path, feedHeaderLine+feedLine("lima", 0, 0))
	sink := &memSink{}
	_, stop := startTail(t, fastCfg(path), sink)
	waitFor(t, func() bool { return sink.Docs() == 1 })

	// Rotate: move the old file away, write a fresh one (same size or
	// larger, so only the inode check can catch it).
	if err := os.Rename(path, dir+"/feed.jsonl.1"); err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, feedHeaderLine+feedLine("oslo", 3, 0)+feedLine("oslo", 4, 0))
	waitFor(t, func() bool { return sink.Docs() == 3 })
	stop()
	docs := sink.applied()
	if docs[1].Stream != "oslo" || docs[2].Time != 4 {
		t.Fatalf("post-rotation docs = %+v", docs[1:])
	}
}

func TestTailWaitsForMissingFile(t *testing.T) {
	path := t.TempDir() + "/late.jsonl"
	sink := &memSink{}
	_, stop := startTail(t, fastCfg(path), sink)
	time.Sleep(20 * time.Millisecond)
	appendFile(t, path, feedHeaderLine+feedLine("lima", 0, 0))
	waitFor(t, func() bool { return sink.Docs() == 1 })
	stop()
}

func TestTailSkipsBadLinesAndCountsThem(t *testing.T) {
	path := t.TempDir() + "/feed.jsonl"
	appendFile(t, path, feedHeaderLine+"{this is not json}\n"+feedLine("lima", 0, 0))
	sink := &memSink{}
	src, stop := startTail(t, fastCfg(path), sink)
	waitFor(t, func() bool { return sink.Docs() == 1 })
	stop()
	st := src.Stats()
	if st.Errors != 1 || st.LastError == "" {
		t.Fatalf("stats after bad line = %+v", st)
	}
}

func TestTailOverlongLineResyncs(t *testing.T) {
	path := t.TempDir() + "/feed.jsonl"
	long := make([]byte, 4096)
	for i := range long {
		long[i] = 'x'
	}
	appendFile(t, path, feedHeaderLine+string(long)+"\n"+feedLine("lima", 0, 0))
	sink := &memSink{}
	cfg := fastCfg(path)
	cfg.MaxLineBytes = 1024
	src, stop := startTail(t, cfg, sink)
	waitFor(t, func() bool { return sink.Docs() == 1 })
	stop()
	if src.Stats().Errors == 0 {
		t.Fatal("overlong line was not counted")
	}
}

func TestTailRejectedDocsAdvanceCheckpoint(t *testing.T) {
	// Validation rejects must not wedge the feed: the checkpoint moves
	// past them and a restart does not retry them forever.
	path := t.TempDir() + "/feed.jsonl"
	appendFile(t, path, feedHeaderLine+feedLine("nowhere", 0, 0)+feedLine("lima", 1, 0))
	sink := &memSink{rejectStream: "nowhere"}
	src, stop := startTail(t, fastCfg(path), sink)
	waitFor(t, func() bool { return sink.Docs() == 1 })
	stop()
	if st := src.Stats(); st.Errors != 1 {
		t.Fatalf("rejected doc not counted: %+v", st)
	}

	// Restart: the checkpoint's offset covers the rejected line's
	// bytes (it flushed in the same batch as the applied doc), so the
	// restart never revisits it — and the applied doc must not
	// duplicate.
	sink2 := &memSink{rejectStream: "nowhere", base: sink.Docs()}
	_, stop2 := startTail(t, fastCfg(path), sink2)
	appendFile(t, path, feedLine("oslo", 2, 0))
	waitFor(t, func() bool {
		for _, d := range sink2.applied() {
			if d.Stream == "oslo" {
				return true
			}
		}
		return false
	})
	time.Sleep(20 * time.Millisecond)
	stop2()
	for _, d := range sink2.applied() {
		if d.Stream == "lima" {
			t.Fatal("doc before checkpoint was re-ingested on restart")
		}
	}
}

func TestTailCorruptCheckpointRefusesToRun(t *testing.T) {
	path := t.TempDir() + "/feed.jsonl"
	appendFile(t, path, feedHeaderLine)
	writeFile(t, path+".checkpoint", "garbage")
	src := NewTailSource(fastCfg(path), &memSink{})
	if err := src.Run(context.Background()); err == nil {
		t.Fatal("Run succeeded over a corrupt checkpoint")
	}
}
