package connector

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

// memSink is an in-memory Sink for source tests: it appends accepted
// documents to a slice and exposes the running total, mimicking the
// serve layer's store-backed sink closely enough for resume
// arithmetic. base simulates documents that existed before the source
// started (the snapshot corpus). rejectStream drops matching docs as
// validation rejects. failN makes the next N Ingest calls return
// errFlush without applying, exercising source error paths.
type memSink struct {
	mu           sync.Mutex
	base         int
	docs         []Doc
	rejectStream string
	failN        int
	calls        int
}

var errFlush = errors.New("sink flush failed")

func (m *memSink) Ingest(ctx context.Context, docs []Doc) (SinkResult, error) {
	if err := ctx.Err(); err != nil {
		return SinkResult{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	if m.failN > 0 {
		m.failN--
		return SinkResult{}, errFlush
	}
	var res SinkResult
	for _, d := range docs {
		if m.rejectStream != "" && d.Stream == m.rejectStream {
			res.Rejected++
			continue
		}
		m.docs = append(m.docs, d)
		res.Applied++
	}
	res.Total = m.base + len(m.docs)
	return res, nil
}

func (m *memSink) Docs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base + len(m.docs)
}

func (m *memSink) applied() []Doc {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Doc(nil), m.docs...)
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := t.TempDir() + "/feed.checkpoint"
	if _, ok, err := LoadCheckpoint(path); err != nil || ok {
		t.Fatalf("missing checkpoint: ok=%v err=%v, want fresh start", ok, err)
	}
	want := Checkpoint{Offset: 12345, Docs: 67}
	if err := want.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, ok, err := LoadCheckpoint(path)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Offset != want.Offset || got.Docs != want.Docs {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	// Overwrite must be atomic-rename, not truncate-write.
	next := Checkpoint{Offset: 99999, Docs: 100}
	if err := next.Save(path); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _, _ = LoadCheckpoint(path)
	if got.Offset != 99999 {
		t.Fatalf("after overwrite: got %+v", got)
	}
}

func TestCheckpointCorruptIsHardError(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"garbage.checkpoint": "not json\n",
		"version.checkpoint": `{"version":99,"offset":1,"docs":1}`,
		"negative.checkpoint": `{"version":1,"offset":-5,"docs":1}`,
	} {
		path := dir + "/" + name
		writeFile(t, path, body)
		if _, _, err := LoadCheckpoint(path); err == nil {
			t.Errorf("%s: corrupt checkpoint loaded without error", name)
		}
	}
}

// flappySource fails a fixed number of runs before running clean, for
// supervisor restart tests.
type flappySource struct {
	name     string
	failures int
	mu       sync.Mutex
	runs     int
	ran      chan struct{} // receives one token per Run invocation
}

func (f *flappySource) Name() string      { return f.name }
func (f *flappySource) Stats() SourceStats { return SourceStats{Name: f.name, Lag: -1, Conns: -1} }

func (f *flappySource) Run(ctx context.Context) error {
	f.mu.Lock()
	f.runs++
	n := f.runs
	f.mu.Unlock()
	if f.ran != nil {
		f.ran <- struct{}{}
	}
	if n <= f.failures {
		return errors.New("synthetic failure")
	}
	<-ctx.Done()
	return ctx.Err()
}

func TestSupervisorRestartsWithBackoff(t *testing.T) {
	src := &flappySource{name: "flappy", failures: 3, ran: make(chan struct{}, 8)}
	sup := NewSupervisor(SupervisorConfig{
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        func(string, ...any) {},
	})
	sup.Add(src)
	if got := sup.StatAt(0).State; got != StateIdle {
		t.Fatalf("pre-start state = %q, want %q", got, StateIdle)
	}
	sup.Start(context.Background())
	// Four Run invocations: three failures, then the clean run that
	// blocks until Stop.
	for i := 0; i < 4; i++ {
		select {
		case <-src.ran:
		case <-time.After(5 * time.Second):
			t.Fatalf("run %d never started (restarts=%d)", i+1, sup.StatAt(0).Restarts)
		}
	}
	waitFor(t, func() bool { return sup.StatAt(0).State == StateRunning })
	if got := sup.StatAt(0).Restarts; got != 3 {
		t.Fatalf("restarts = %d, want 3", got)
	}
	sup.Stop()
	if got := sup.StatAt(0).State; got != StateStopped {
		t.Fatalf("post-stop state = %q, want %q", got, StateStopped)
	}
}

func TestSupervisorCleanExitStopsSupervision(t *testing.T) {
	src := &flappySource{name: "oneshot", failures: 0, ran: make(chan struct{}, 2)}
	sup := NewSupervisor(SupervisorConfig{Logf: func(string, ...any) {}})
	sup.Add(src)
	ctx, cancel := context.WithCancel(context.Background())
	sup.Start(ctx)
	<-src.ran
	cancel() // the clean run returns ctx.Err(); no restart must follow
	waitFor(t, func() bool { return sup.StatAt(0).State == StateStopped })
	if got := sup.StatAt(0).Restarts; got != 0 {
		t.Fatalf("restarts after clean exit = %d, want 0", got)
	}
	sup.Stop()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func writeFile(t *testing.T, path, body string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
