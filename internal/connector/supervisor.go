package connector

import (
	"context"
	"errors"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// Source lifecycle states as the supervisor reports them.
const (
	StateIdle    = "idle"    // added but Start not called yet
	StateRunning = "running" // Run is executing
	StateBackoff = "backoff" // Run failed; waiting to restart
	StateStopped = "stopped" // clean exit or supervisor stopped
)

// SourceState is one supervised source's full status: its own counters
// plus what the supervisor knows about it.
type SourceState struct {
	SourceStats
	State    string `json:"state"`
	Restarts int64  `json:"restarts"`
}

// SupervisorConfig tunes restart behavior; the zero value is usable.
type SupervisorConfig struct {
	// BackoffBase is the first restart delay (default 500ms); each
	// consecutive failure doubles it up to BackoffMax (default 30s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HealthyAfter is how long a source must run before a failure is
	// treated as fresh rather than consecutive, resetting the backoff
	// to BackoffBase (default 60s).
	HealthyAfter time.Duration
	// Logf receives restart decisions (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *SupervisorConfig) defaults() {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = time.Minute
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Supervisor owns a set of sources: it runs each in its own goroutine,
// restarts one that fails with capped exponential backoff, and folds
// their stats into one snapshot for /v1/stats and the metrics
// registry. Add every source before Start; Stop cancels and waits for
// every source to drain, which is the graceful-shutdown hook the
// server calls before closing the ingesters and the WAL.
type Supervisor struct {
	cfg     SupervisorConfig
	srcs    []*supervised
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

type supervised struct {
	src      Source
	restarts atomic.Int64
	state    atomic.Pointer[string]
}

func (sv *supervised) setState(s string) { sv.state.Store(&s) }

// NewSupervisor builds an empty supervisor.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	cfg.defaults()
	return &Supervisor{cfg: cfg}
}

// Add registers a source. Must be called before Start.
func (s *Supervisor) Add(src Source) {
	if s.started {
		panic("connector: Add after Start")
	}
	sv := &supervised{src: src}
	sv.setState(StateIdle)
	s.srcs = append(s.srcs, sv)
}

// NumSources reports how many sources are registered.
func (s *Supervisor) NumSources() int { return len(s.srcs) }

// Start launches every source. The supervisor derives its own context
// from ctx; Stop cancels it.
func (s *Supervisor) Start(ctx context.Context) {
	if s.started {
		panic("connector: Start called twice")
	}
	s.started = true
	ctx, s.cancel = context.WithCancel(ctx)
	for _, sv := range s.srcs {
		s.wg.Add(1)
		go s.run(ctx, sv)
	}
}

// Stop cancels every source and waits for them to drain. Safe to call
// once after Start; a supervisor that was never started is a no-op.
func (s *Supervisor) Stop() {
	if s.cancel == nil {
		return
	}
	s.cancel()
	s.wg.Wait()
}

// run is one source's supervision loop: run it, and on failure back
// off (doubling, capped) and run it again. A clean return — nil or the
// context's own error — ends supervision: the source finished or the
// supervisor is stopping.
func (s *Supervisor) run(ctx context.Context, sv *supervised) {
	defer s.wg.Done()
	backoff := s.cfg.BackoffBase
	for {
		sv.setState(StateRunning)
		started := time.Now()
		err := sv.src.Run(ctx)
		if ctx.Err() != nil || err == nil || errors.Is(err, context.Canceled) {
			sv.setState(StateStopped)
			return
		}
		if time.Since(started) >= s.cfg.HealthyAfter {
			backoff = s.cfg.BackoffBase
		}
		sv.restarts.Add(1)
		s.cfg.Logf("connector %s: %v; restarting in %s", sv.src.Name(), err, backoff)
		sv.setState(StateBackoff)
		select {
		case <-ctx.Done():
			sv.setState(StateStopped)
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// Stats snapshots every source in Add order. The slice order is stable
// across calls, so metric closures can capture an index.
func (s *Supervisor) Stats() []SourceState {
	out := make([]SourceState, len(s.srcs))
	for i := range s.srcs {
		out[i] = s.StatAt(i)
	}
	return out
}

// StatAt snapshots the i'th source (Add order).
func (s *Supervisor) StatAt(i int) SourceState {
	sv := s.srcs[i]
	st := SourceState{
		SourceStats: sv.src.Stats(),
		Restarts:    sv.restarts.Load(),
	}
	if p := sv.state.Load(); p != nil {
		st.State = *p
	}
	return st
}
