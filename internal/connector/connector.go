// Package connector pulls documents from external feeds into the
// WAL-backed ingest path. It is the subsystem behind `stserve -tail`
// and `stserve -listen-ingest`: each feed is a Source that parses its
// transport (a growing JSONL file, a framed TCP socket) into Doc
// values and hands batches to a Sink, and a Supervisor keeps the
// sources running, restarting a failed one with capped exponential
// backoff.
//
// The package knows nothing about stores, WALs or mining. The Sink —
// implemented by the serve layer on top of an Ingester — owns
// validation and durability; its Ingest call does not return until the
// batch is WAL-durable (or the context is cancelled), which is also
// how backpressure reaches the feed: a source blocked in Ingest stops
// reading its file or socket, and TCP flow control or file lag absorbs
// the rest.
//
// Delivery guarantees are per source and documented in DESIGN.md. The
// tailer is exactly-once across crashes when it is the store's only
// writer (byte-offset checkpoint + count-based dedupe on resume); the
// socket source is at-most-once across crashes (documents buffered but
// not yet flushed when the process dies are gone, and the sender is
// never asked to retransmit).
package connector

import (
	"context"
	"sync/atomic"
)

// Doc is one incoming document in source-interchange form: the shape a
// feed line carries before the serve layer resolves stream names and
// token counts into store IDs. Exactly one of Counts, Tokens or Text
// should be set; when several are, Counts wins, then Tokens. Event is
// the synthetic ground-truth label some generated corpora carry; sinks
// ignore it.
type Doc struct {
	Stream string         `json:"stream"`
	Time   int            `json:"time"`
	Text   string         `json:"text,omitempty"`
	Tokens []string       `json:"tokens,omitempty"`
	Counts map[string]int `json:"counts,omitempty"`
	Event  int            `json:"event,omitempty"`
}

// SinkResult reports one durably applied batch.
type SinkResult struct {
	// Applied is how many of the batch's documents were appended to
	// the store (and are WAL-durable).
	Applied int
	// Rejected is how many were dropped by validation — unknown
	// stream, out-of-range time. A bad document is counted and
	// skipped rather than wedging the feed behind it.
	Rejected int
	// Total is the store's document count immediately after this
	// batch applied. The tailer checkpoints it next to the byte
	// offset; the pair is what makes resume dedupe exact.
	Total int
}

// Sink is where sources deliver documents. Ingest blocks until the
// batch is durable — it retries transient store errors internally with
// its own backoff — and returns an error only when ctx is cancelled or
// the sink is permanently unable to accept writes (shutdown). Docs
// reports the store's current document count; sources use it with a
// saved checkpoint to compute how many already-applied documents to
// skip on resume.
type Sink interface {
	Ingest(ctx context.Context, docs []Doc) (SinkResult, error)
	Docs() int
}

// Source is one supervised feed. Run blocks, reading the feed and
// pushing batches into the sink, until ctx is cancelled (return nil or
// ctx.Err(); both mean a clean stop) or the feed fails in a way a
// restart might fix (return the error; the Supervisor backs off and
// calls Run again). Name is a stable identifier used as the metrics
// label and in /v1/stats. Stats is called concurrently with Run.
type Source interface {
	Name() string
	Run(ctx context.Context) error
	Stats() SourceStats
}

// SourceStats is a point-in-time snapshot of one source's counters.
// Gauges that do not apply to a source kind are -1: Lag is bytes not
// yet read by the tailer (-1 for sockets), Conns is active socket
// connections (-1 for the tailer).
type SourceStats struct {
	Name      string `json:"name"`
	Docs      int64  `json:"docs"`
	Errors    int64  `json:"errors"`
	Lag       int64  `json:"lag_bytes"`
	Conns     int64  `json:"connections"`
	LastError string `json:"last_error,omitempty"`
}

// tracker is the shared counter block embedded by both source kinds.
// Everything is atomic so Stats can be read while Run is hot.
type tracker struct {
	docs    atomic.Int64
	errors  atomic.Int64
	lag     atomic.Int64 // bytes; -1 when the source has no lag notion
	conns   atomic.Int64 // active connections; -1 when not applicable
	lastErr atomic.Pointer[string]
}

func (t *tracker) fail(msg string) {
	t.errors.Add(1)
	t.lastErr.Store(&msg)
}

func (t *tracker) snapshot(name string) SourceStats {
	st := SourceStats{
		Name:   name,
		Docs:   t.docs.Load(),
		Errors: t.errors.Load(),
		Lag:    t.lag.Load(),
		Conns:  t.conns.Load(),
	}
	if p := t.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	return st
}
