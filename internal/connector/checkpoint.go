package connector

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is the tailer's resume state, one small JSON object on
// disk next to the feed file. Offset is the byte position immediately
// after the last feed line whose documents are known durable; Docs is
// the store's total document count at that same instant (the sink's
// post-flush total). The pair makes resume exact: after WAL replay the
// store holds Docs plus however many documents were flushed after the
// checkpoint was last written, so the tailer re-reads from Offset and
// skips exactly (store count − Docs) documents before ingesting again.
type Checkpoint struct {
	Version int   `json:"version"`
	Offset  int64 `json:"offset"`
	Docs    int   `json:"docs"`
}

// checkpointVersion guards the on-disk shape; a reader refuses
// versions it does not understand rather than resuming from a
// misparsed offset.
const checkpointVersion = 1

// LoadCheckpoint reads a checkpoint file. A missing file is a fresh
// start (ok=false, no error). A present-but-unreadable file is a hard
// error: silently restarting from offset 0 would re-ingest the whole
// feed, which is exactly the duplication the checkpoint exists to
// prevent.
func LoadCheckpoint(path string) (cp Checkpoint, ok bool, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Checkpoint{Version: checkpointVersion}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("connector checkpoint %s: %w", path, err)
	}
	if err := json.Unmarshal(raw, &cp); err != nil {
		return Checkpoint{}, false, fmt.Errorf("connector checkpoint %s: %w (delete it to restart from the beginning)", path, err)
	}
	if cp.Version != checkpointVersion {
		return Checkpoint{}, false, fmt.Errorf("connector checkpoint %s: unsupported version %d", path, cp.Version)
	}
	if cp.Offset < 0 || cp.Docs < 0 {
		return Checkpoint{}, false, fmt.Errorf("connector checkpoint %s: negative offset or docs", path)
	}
	return cp, true, nil
}

// Save writes the checkpoint durably: temp file in the same directory,
// fsync, atomic rename, directory sync. A crash leaves either the old
// checkpoint or the new one, never a torn file — the same discipline
// the snapshot and WAL writers use.
func (cp Checkpoint) Save(path string) error {
	cp.Version = checkpointVersion
	raw, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
