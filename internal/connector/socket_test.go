package connector

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// startSocket runs a SocketSource on a free port and returns its
// address plus a stop func that cancels and waits for Run.
func startSocket(t *testing.T, cfg SocketConfig, sink Sink) (src *SocketSource, addr string, stop func()) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	src = NewSocketSource(cfg, sink)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- src.Run(ctx) }()
	bctx, bcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer bcancel()
	a, err := src.WaitBound(bctx)
	if err != nil {
		t.Fatalf("listener never bound: %v", err)
	}
	return src, a.String(), func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("socket Run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("socket Run did not return after cancel")
		}
	}
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func sendLine(t *testing.T, conn net.Conn, d Doc) {
	t.Helper()
	raw, _ := json.Marshal(d)
	if _, err := conn.Write(append(raw, '\n')); err != nil {
		t.Fatal(err)
	}
}

func TestSocketLineFraming(t *testing.T) {
	sink := &memSink{}
	_, addr, stop := startSocket(t, SocketConfig{BatchDocs: 2}, sink)
	defer stop()

	conn := dial(t, addr)
	sendLine(t, conn, Doc{Stream: "lima", Time: 1, Tokens: []string{"quake"}})
	sendLine(t, conn, Doc{Stream: "oslo", Time: 2, Tokens: []string{"fire"}})
	waitFor(t, func() bool { return sink.Docs() == 2 }) // batch-size flush

	// A final unterminated line lands via the disconnect flush.
	raw, _ := json.Marshal(Doc{Stream: "lima", Time: 3})
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, func() bool { return sink.Docs() == 3 })
	docs := sink.applied()
	if docs[0].Stream != "lima" || docs[1].Stream != "oslo" || docs[2].Time != 3 {
		t.Fatalf("applied docs = %+v", docs)
	}
}

func TestSocketIdleFlush(t *testing.T) {
	sink := &memSink{}
	_, addr, stop := startSocket(t, SocketConfig{BatchDocs: 100, FlushInterval: 20 * time.Millisecond}, sink)
	defer stop()
	conn := dial(t, addr)
	defer conn.Close()
	sendLine(t, conn, Doc{Stream: "lima", Time: 1})
	// Far below BatchDocs: only the idle ticker can deliver it.
	waitFor(t, func() bool { return sink.Docs() == 1 })
}

func TestSocketLengthFraming(t *testing.T) {
	sink := &memSink{}
	_, addr, stop := startSocket(t, SocketConfig{Framing: FrameLength, BatchDocs: 1}, sink)
	defer stop()
	conn := dial(t, addr)
	defer conn.Close()

	for i, d := range []Doc{{Stream: "lima", Time: 4}, {Stream: "oslo", Time: 5}} {
		raw, _ := json.Marshal(d)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
		if _, err := conn.Write(append(hdr[:], raw...)); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	waitFor(t, func() bool { return sink.Docs() == 2 })
	if docs := sink.applied(); docs[1].Time != 5 {
		t.Fatalf("applied docs = %+v", docs)
	}
}

func TestSocketOversizeFrameClosesConnection(t *testing.T) {
	sink := &memSink{}
	src, addr, stop := startSocket(t, SocketConfig{Framing: FrameLength, MaxFrameBytes: 64}, sink)
	defer stop()
	conn := dial(t, addr)
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30) // absurd declared length
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return src.Stats().Errors >= 1 })
	// The server must have closed its side without reading a payload.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after oversize frame")
	}
}

func TestSocketBadDocCountedGoodDocsFlow(t *testing.T) {
	sink := &memSink{}
	src, addr, stop := startSocket(t, SocketConfig{BatchDocs: 1}, sink)
	defer stop()
	conn := dial(t, addr)
	defer conn.Close()
	if _, err := conn.Write([]byte("{broken json\n")); err != nil {
		t.Fatal(err)
	}
	sendLine(t, conn, Doc{Stream: "lima", Time: 9})
	waitFor(t, func() bool { return sink.Docs() == 1 })
	if st := src.Stats(); st.Errors != 1 || st.LastError == "" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSocketConnLimit(t *testing.T) {
	sink := &memSink{}
	src, addr, stop := startSocket(t, SocketConfig{MaxConns: 1}, sink)
	defer stop()
	keep := dial(t, addr)
	defer keep.Close()
	waitFor(t, func() bool { return src.Stats().Conns == 1 })

	over := dial(t, addr)
	defer over.Close()
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := over.Read(buf); err == nil {
		t.Fatal("over-limit connection was not closed")
	}
	if st := src.Stats(); st.Errors == 0 {
		t.Fatalf("refused connection not counted: %+v", st)
	}
	// The accepted connection still works.
	sendLine(t, keep, Doc{Stream: "lima", Time: 1})
	waitFor(t, func() bool { return sink.Docs() == 1 })
}

func TestSocketShutdownDrainsBufferedDocs(t *testing.T) {
	sink := &memSink{}
	_, addr, stop := startSocket(t, SocketConfig{BatchDocs: 100, FlushInterval: time.Hour}, sink)
	conn := dial(t, addr)
	defer conn.Close()
	sendLine(t, conn, Doc{Stream: "lima", Time: 1})
	sendLine(t, conn, Doc{Stream: "oslo", Time: 2})
	// Give the reader a moment to buffer both, then shut down: the
	// drain flush must land them even though no flush trigger fired.
	waitFor(t, func() bool { return len(sink.applied()) >= 0 })
	time.Sleep(50 * time.Millisecond)
	stop()
	if got := sink.Docs(); got != 2 {
		t.Fatalf("docs after shutdown drain = %d, want 2", got)
	}
}
