// Package wal implements the per-store write-ahead log of the live
// ingestion path: ingest batches are framed, checksummed and fsync'd to
// disk *before* they apply to the in-memory collection, and replayed in
// order on boot so a crash loses no acknowledged batch.
//
// # On-disk layout
//
// A log is a directory of segment files named wal-%016x.stwal, where
// the hex field is the sequence number the segment's first frame will
// carry (lexicographic order == numeric order). Every segment starts
// with a 12-byte header:
//
//	offset  size  field
//	0       8     magic "STBWAL\x00\x00"
//	8       4     format version (little-endian uint32, currently 1)
//
// followed by zero or more frames, one per ingest batch:
//
//	offset  size  field
//	0       4     payload length L (little-endian uint32)
//	4       4     CRC32-C of the payload
//	8       4     CRC32-C of the first 8 header bytes
//	12      L     payload
//
// The payload is:
//
//	seq      uint64 (fixed, little-endian) — monotonic batch sequence
//	preGen   uint64 (fixed) — store generation just before the batch
//	baseDocs uint64 (fixed) — collection doc count just before the batch
//	ndocs    uvarint, then per document:
//	  stream uvarint
//	  time   uvarint
//	  nterms uvarint, then per term (ascending term order):
//	    len-prefixed term string, count uvarint
//
// Terms are written in sorted order, matching the deterministic
// interning of stream.Collection.Append, so a replayed batch assigns
// exactly the IDs the original did.
//
// # Crash model and recovery
//
// Appends go through a single write(2) followed (under SyncAlways) by
// fsync, so a crash leaves at most a torn *suffix* of the active
// segment. The scanner distinguishes a torn tail — fewer than 12 bytes
// remaining, a frame extending past EOF, or a payload-checksum mismatch
// on the very last bytes of the file — which it silently truncates,
// from mid-log damage — a corrupt frame with valid data after it, a
// header-checksum mismatch, a sequence gap or duplicate, or any
// anomaly in a sealed (non-final) segment — which is a hard error:
// under SyncAlways every earlier frame was durable before the next
// began, so mid-log damage means the disk lost acknowledged data and
// silently skipping it would un-acknowledge batches. (SyncNever trades
// exactly this guarantee away: page writeback is unordered, so a crash
// may persist a later frame but not an earlier one, which recovery
// then reports as corruption.)
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"stburst/internal/stream"
)

const (
	segMagic   = "STBWAL\x00\x00"
	segVersion = 1
	headerLen  = 12 // segment header: magic + version
	frameLen   = 12 // frame header: length + payload CRC + header CRC

	// maxPayload bounds a single frame; a length field beyond it with a
	// valid header checksum means the log was written by something else.
	maxPayload = 1 << 28

	segPrefix = "wal-"
	segSuffix = ".stwal"

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every appended frame before Append returns —
	// the durability contract the recovery guarantees assume.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: faster, but a crash may lose
	// or corrupt acknowledged batches (see the package comment).
	SyncNever
)

// Options configures a log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SegmentBytes rotates the active segment once it would exceed this
	// size (default DefaultSegmentBytes). A single oversized frame still
	// goes through — segments bound typical file size, not frame size.
	SegmentBytes int64
	// Injector, when non-nil, routes the active segment's writes and
	// fsyncs through a fault injector — test use only.
	Injector *Injector
}

// Batch is one logged ingest batch.
type Batch struct {
	// Seq is the batch's monotonic sequence number, consecutive across
	// the whole log.
	Seq uint64
	// PreGen is the store generation immediately before the batch
	// applied — recovery uses it to tell which batches a loaded bundle
	// already covers.
	PreGen uint64
	// BaseDocs is the collection's document count immediately before
	// the batch appended — a replay-position guard: replaying into a
	// collection of any other size would assign different document IDs.
	BaseDocs uint64
	// Docs is the batch itself, in append order.
	Docs []stream.AppendDoc
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	// LastSeq is the sequence number of the most recently appended (or
	// scanned) frame; 0 when the log has never held a frame.
	LastSeq uint64
	// Batches is the number of frames across all segments.
	Batches int
	// Segments is the number of segment files.
	Segments int
	// Bytes is the total size of all segments (headers included).
	Bytes int64
	// Syncs counts successful fsyncs of segment data since Open.
	Syncs uint64
}

// segMeta describes one sealed (read-only) segment.
type segMeta struct {
	name    string
	lastSeq uint64
	frames  int
	bytes   int64
}

// Log is an append-only write-ahead log over a directory of segment
// files. It is safe for concurrent use; appends serialize.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          *os.File // active segment
	activeName string
	activeSize int64 // valid bytes in the active segment
	frames     int   // frames in the active segment
	sealed     []segMeta
	lastSeq    uint64
	batches    int
	syncs      uint64
	err        error // sticky: set when a failed append cannot be rolled back
	buf        bytes.Buffer
}

// Open opens (creating if necessary) the log in dir, scans every
// segment, truncates a torn tail off the final one, and returns the log
// positioned after its last intact frame plus every scanned batch in
// sequence order — the batches a crashed process logged but may not
// have applied. Mid-log corruption or a sequence gap is a hard error
// (see the package comment for the classification).
func Open(dir string, opts Options) (*Log, []Batch, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{dir: dir, opts: opts}
	var pending []Batch
	var prevSeq uint64
	seenAny := false
	for i, name := range names {
		last := i == len(names)-1
		res, err := scanSegment(filepath.Join(dir, name), last, &prevSeq, &seenAny)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		pending = append(pending, res.batches...)
		l.batches += len(res.batches)
		if last {
			l.activeName = name
			l.activeSize = res.validEnd
			l.frames = len(res.batches)
		} else {
			l.sealed = append(l.sealed, segMeta{
				name:    name,
				lastSeq: res.lastSeq,
				frames:  len(res.batches),
				bytes:   res.validEnd,
			})
		}
	}
	l.lastSeq = prevSeq

	if l.activeName == "" {
		if err := l.createSegmentLocked(1); err != nil {
			return nil, nil, err
		}
		return l, nil, nil
	}

	// Re-adopt the last segment as the active one, truncating a torn
	// tail (or a torn 12-byte header) so the next append lands exactly
	// after the last intact frame — stale bytes beyond that point would
	// read as corruption after the next write.
	path := filepath.Join(dir, l.activeName)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if l.activeSize < headerLen {
		// The crash tore the segment header itself; no frame was ever in
		// this segment, so rewrite it in place.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn segment header: %w", err)
		}
		if err := writeSegmentHeader(f); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.activeSize = headerLen
	} else {
		size, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		if size > l.activeSize {
			if err := f.Truncate(l.activeSize); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
		if _, err := f.Seek(l.activeSize, 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	return l, pending, nil
}

// Append frames, checksums and (under SyncAlways) fsyncs one batch,
// returning its assigned sequence number. The frame is on stable
// storage when Append returns nil — the caller may acknowledge the
// batch and apply it. On error nothing is acknowledged: the partial
// frame is rolled back so the log stays appendable, and the same batch
// may be re-logged.
func (l *Log) Append(preGen, baseDocs uint64, docs []stream.AppendDoc) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.f == nil {
		return 0, errors.New("wal: log is closed")
	}
	seq := l.lastSeq + 1

	l.buf.Reset()
	encodePayload(&l.buf, seq, preGen, baseDocs, docs)
	payload := l.buf.Bytes()
	frame := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(frame[0:8], castagnoli))
	copy(frame[frameLen:], payload)

	if l.frames > 0 && l.activeSize+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}

	frameStart := l.activeSize
	if _, err := l.fwrite(frame); err != nil {
		l.rollbackLocked(frameStart)
		return 0, fmt.Errorf("wal: appending frame %d: %w", seq, err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.fsync(); err != nil {
			l.rollbackLocked(frameStart)
			return 0, fmt.Errorf("wal: syncing frame %d: %w", seq, err)
		}
	}
	l.activeSize += int64(len(frame))
	l.frames++
	l.batches++
	l.lastSeq = seq
	return seq, nil
}

// rollbackLocked discards a partially written frame so the active
// segment ends exactly after its last intact frame again. If the
// rollback itself fails the log is marked broken: every later Append
// returns the sticky error rather than interleaving frames with
// garbage.
func (l *Log) rollbackLocked(frameStart int64) {
	if err := l.f.Truncate(frameStart); err != nil {
		l.err = fmt.Errorf("wal: log unusable: failed to roll back a torn frame: %w", err)
		return
	}
	if _, err := l.f.Seek(frameStart, 0); err != nil {
		l.err = fmt.Errorf("wal: log unusable: failed to roll back a torn frame: %w", err)
	}
}

// Rotate seals the active segment and starts a new one. A segment with
// no frames yet is reused as-is. Store.Save calls this after a
// successful save so segment files stay bounded; rotation never
// discards frames (see Prune).
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if l.frames == 0 {
		return nil
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.sealed = append(l.sealed, segMeta{
		name:    l.activeName,
		lastSeq: l.lastSeq,
		frames:  l.frames,
		bytes:   l.activeSize,
	})
	l.f = nil
	return l.createSegmentLocked(l.lastSeq + 1)
}

// createSegmentLocked creates and syncs a fresh active segment whose
// name announces the sequence its first frame will carry.
func (l *Log) createSegmentLocked(firstSeq uint64) error {
	name := fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := writeSegmentHeader(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.activeName = name
	l.activeSize = headerLen
	l.frames = 0
	return nil
}

func writeSegmentHeader(f *os.File) error {
	var hdr [headerLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	return nil
}

// SealedBatches re-reads every sealed (rotated-away) segment and returns
// its batches in sequence order, plus the sequence number of the last
// sealed frame — the argument a caller passes to Prune once those
// batches are durable elsewhere. The active segment's frames are
// excluded: rotation has not sealed them yet. Sealed segments are
// immutable, so re-scanning them applies the same integrity checks the
// open-time scan did; any anomaly is a hard error.
func (l *Log) SealedBatches() ([]Batch, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var batches []Batch
	var prevSeq, last uint64
	seenAny := false
	for _, m := range l.sealed {
		res, err := scanSegment(filepath.Join(l.dir, m.name), false, &prevSeq, &seenAny)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: segment %s: %w", m.name, err)
		}
		batches = append(batches, res.batches...)
		last = res.lastSeq
	}
	return batches, last, nil
}

// Prune deletes sealed segments whose every frame has sequence number
// <= seq. The active segment is never deleted. Pruning is safe only
// once the logged batches are durable elsewhere — for this store, once
// the corpus file itself contains the appended documents; a bundle
// written by Store.Save does NOT (it persists patterns, not documents),
// which is why Save rotates instead of pruning.
func (l *Log) Prune(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var kept []segMeta
	var firstErr error
	for _, m := range l.sealed {
		if firstErr == nil && m.lastSeq <= seq {
			if err := os.Remove(filepath.Join(l.dir, m.name)); err != nil {
				firstErr = fmt.Errorf("wal: pruning %s: %w", m.name, err)
				kept = append(kept, m)
				continue
			}
			l.batches -= m.frames
			continue
		}
		kept = append(kept, m)
	}
	l.sealed = kept
	if firstErr != nil {
		return firstErr
	}
	return syncDir(l.dir)
}

// Stats returns a point-in-time summary of the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		LastSeq:  l.lastSeq,
		Batches:  l.batches,
		Segments: len(l.sealed),
		Bytes:    l.activeSize,
		Syncs:    l.syncs,
	}
	if l.f != nil || l.activeName != "" {
		st.Segments++
	}
	for _, m := range l.sealed {
		st.Bytes += m.bytes
	}
	return st
}

// Close syncs and closes the active segment. The log is unusable
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: closing: %w", err)
	}
	return nil
}

func (l *Log) fwrite(p []byte) (int, error) {
	if in := l.opts.Injector; in != nil {
		return in.write(l.f, p)
	}
	return l.f.Write(p)
}

func (l *Log) fsync() error {
	var err error
	if in := l.opts.Injector; in != nil {
		err = in.sync(l.f)
	} else {
		err = l.f.Sync()
	}
	if err == nil {
		l.syncs++
	}
	return err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}
	return nil
}

// listSegments returns the segment file names in dir in ascending
// first-sequence order. Files not matching the segment naming scheme
// are ignored.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		if len(hex) != 16 {
			continue
		}
		if _, err := strconv.ParseUint(hex, 16, 64); err != nil {
			continue
		}
		names = append(names, name)
	}
	// Zero-padded hex: lexicographic order is numeric order.
	sort.Strings(names)
	return names, nil
}

// segScan is the result of scanning one segment.
type segScan struct {
	batches  []Batch
	validEnd int64 // offset just past the last intact frame
	lastSeq  uint64
}

// scanSegment reads every frame of one segment, classifying anomalies
// per the package comment: a torn tail of the final segment truncates
// silently, everything else is a hard error. prevSeq/seenAny thread the
// sequence-continuity check across segments; the first frame of the
// whole log may carry any sequence (earlier segments may have been
// pruned), every later frame must follow its predecessor exactly.
func scanSegment(path string, last bool, prevSeq *uint64, seenAny *bool) (segScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, err
	}
	if len(data) < headerLen {
		if last {
			// A crash during segment creation tore the header; there is
			// nothing after it to lose.
			return segScan{validEnd: int64(len(data))}, nil
		}
		return segScan{}, errors.New("sealed segment is shorter than its header")
	}
	if string(data[:8]) != segMagic {
		return segScan{}, errors.New("not a wal segment (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != segVersion {
		return segScan{}, fmt.Errorf("unsupported wal segment version %d", v)
	}

	res := segScan{validEnd: headerLen}
	off := headerLen
	for {
		rem := len(data) - off
		if rem == 0 {
			return res, nil
		}
		if rem < frameLen {
			if last {
				return res, nil // torn frame header: a tail the crash cut short
			}
			return segScan{}, fmt.Errorf("torn frame header at offset %d of a sealed segment", off)
		}
		hdr := data[off : off+frameLen]
		if crc32.Checksum(hdr[0:8], castagnoli) != binary.LittleEndian.Uint32(hdr[8:12]) {
			// A pure truncation can never damage bytes it leaves behind,
			// so a bad header checksum is corruption even at the tail.
			return segScan{}, fmt.Errorf("corrupt frame header at offset %d", off)
		}
		plen := int(binary.LittleEndian.Uint32(hdr[0:4]))
		if plen > maxPayload {
			return segScan{}, fmt.Errorf("implausible frame length %d at offset %d", plen, off)
		}
		if rem-frameLen < plen {
			if last {
				return res, nil // frame extends past EOF: torn tail
			}
			return segScan{}, fmt.Errorf("frame at offset %d extends past the end of a sealed segment", off)
		}
		payload := data[off+frameLen : off+frameLen+plen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			if last && off+frameLen+plen == len(data) {
				// The final frame's payload is damaged and nothing follows
				// it: the torn-write the crash model predicts.
				return res, nil
			}
			return segScan{}, fmt.Errorf("corrupt frame payload at offset %d", off)
		}
		b, err := decodePayload(payload)
		if err != nil {
			return segScan{}, fmt.Errorf("undecodable frame at offset %d: %w", off, err)
		}
		if *seenAny {
			if b.Seq == *prevSeq {
				return segScan{}, fmt.Errorf("duplicate sequence number %d at offset %d", b.Seq, off)
			}
			if b.Seq != *prevSeq+1 {
				return segScan{}, fmt.Errorf("sequence gap at offset %d: frame %d follows frame %d", off, b.Seq, *prevSeq)
			}
		}
		*seenAny = true
		*prevSeq = b.Seq
		res.batches = append(res.batches, b)
		res.lastSeq = b.Seq
		off += frameLen + plen
		res.validEnd = int64(off)
	}
}

// encodePayload serializes one batch; see the package comment for the
// layout. Terms are written in sorted order so a replayed batch interns
// exactly as the original did.
func encodePayload(buf *bytes.Buffer, seq, preGen, baseDocs uint64, docs []stream.AppendDoc) {
	var fix [8]byte
	putFixed := func(v uint64) {
		binary.LittleEndian.PutUint64(fix[:], v)
		buf.Write(fix[:])
	}
	var varb [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		buf.Write(varb[:binary.PutUvarint(varb[:], v)])
	}
	putFixed(seq)
	putFixed(preGen)
	putFixed(baseDocs)
	putUvarint(uint64(len(docs)))
	var terms []string
	for _, d := range docs {
		putUvarint(uint64(d.Stream))
		putUvarint(uint64(d.Time))
		putUvarint(uint64(len(d.Counts)))
		terms = terms[:0]
		for t := range d.Counts {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		for _, t := range terms {
			putUvarint(uint64(len(t)))
			buf.WriteString(t)
			putUvarint(uint64(d.Counts[t]))
		}
	}
}

// decodePayload parses one checksum-verified frame payload.
func decodePayload(p []byte) (Batch, error) {
	d := payloadDecoder{p: p}
	var b Batch
	b.Seq = d.fixed64()
	b.PreGen = d.fixed64()
	b.BaseDocs = d.fixed64()
	ndocs := d.uvarint()
	if d.err == nil && ndocs > uint64(len(d.p)-d.off)+1 {
		return Batch{}, fmt.Errorf("document count %d exceeds frame size", ndocs)
	}
	if d.err == nil {
		b.Docs = make([]stream.AppendDoc, 0, ndocs)
	}
	for i := uint64(0); i < ndocs && d.err == nil; i++ {
		var doc stream.AppendDoc
		doc.Stream = int(d.uvarint())
		doc.Time = int(d.uvarint())
		nterms := d.uvarint()
		if d.err == nil && nterms > uint64(len(d.p)-d.off)+1 {
			return Batch{}, fmt.Errorf("term count %d exceeds frame size", nterms)
		}
		if d.err == nil {
			doc.Counts = make(map[string]int, nterms)
		}
		for j := uint64(0); j < nterms && d.err == nil; j++ {
			t := d.str()
			doc.Counts[t] = int(d.uvarint())
		}
		b.Docs = append(b.Docs, doc)
	}
	if d.err != nil {
		return Batch{}, d.err
	}
	if d.off != len(d.p) {
		return Batch{}, fmt.Errorf("%d trailing bytes after the last document", len(d.p)-d.off)
	}
	return b, nil
}

type payloadDecoder struct {
	p   []byte
	off int
	err error
}

func (d *payloadDecoder) fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.p) {
		d.err = errors.New("truncated fixed64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v
}

func (d *payloadDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p[d.off:])
	if n <= 0 {
		d.err = errors.New("truncated or overlong uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *payloadDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.p)-d.off) {
		d.err = errors.New("string length exceeds frame size")
		return ""
	}
	s := string(d.p[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
